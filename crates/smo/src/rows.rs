//! Kernel-row evaluation for the SMO solvers.
//!
//! SMO needs whole kernel rows `K(xᵢ, ·)`. LIBSVM computes them from sparse
//! (CSR) rows, its dense fork from contiguous dense rows — the paper
//! benchmarks both variants (Fig. 1a/1b), so both paths exist here behind
//! the [`KernelRows`] trait. Self-dot products are precomputed so the RBF
//! kernel can use `‖a−b‖² = ⟨a,a⟩ + ⟨b,b⟩ − 2⟨a,b⟩`, like LIBSVM does.

use plssvm_core::kernel::dot;
use plssvm_data::dense::DenseMatrix;
use plssvm_data::model::KernelSpec;
use plssvm_data::sparse::CsrMatrix;
use plssvm_data::Real;

/// Abstract kernel-row provider.
pub trait KernelRows<T: Real>: Sync {
    /// Number of training points.
    fn points(&self) -> usize;
    /// Writes `K(xᵢ, xⱼ)` for all `j` into `out` (length [`KernelRows::points`]).
    fn compute_row(&self, i: usize, out: &mut [T]);
    /// `K(xᵢ, xᵢ)`.
    fn diag(&self, i: usize) -> T;
}

fn finish<T: Real>(kernel: &KernelSpec<T>, ip: T, aa: T, bb: T) -> T {
    match *kernel {
        KernelSpec::Linear => ip,
        KernelSpec::Polynomial {
            degree,
            gamma,
            coef0,
        } => gamma.mul_add(ip, coef0).powi(degree),
        KernelSpec::Rbf { gamma } => {
            let dist_sq = (aa + bb - T::TWO * ip).max(T::ZERO);
            (-gamma * dist_sq).exp()
        }
        KernelSpec::Sigmoid { gamma, coef0 } => gamma.mul_add(ip, coef0).tanh(),
    }
}

/// Dense-row kernel evaluation (LIBSVM's dense fork).
pub struct DenseRows<T> {
    x: DenseMatrix<T>,
    kernel: KernelSpec<T>,
    self_dots: Vec<T>,
}

impl<T: Real> DenseRows<T> {
    /// Builds the provider, precomputing all self-dot products.
    pub fn new(x: DenseMatrix<T>, kernel: KernelSpec<T>) -> Self {
        let self_dots = (0..x.rows()).map(|i| dot(x.row(i), x.row(i))).collect();
        Self {
            x,
            kernel,
            self_dots,
        }
    }

    /// The training data.
    pub fn data(&self) -> &DenseMatrix<T> {
        &self.x
    }
}

impl<T: Real> KernelRows<T> for DenseRows<T> {
    fn points(&self) -> usize {
        self.x.rows()
    }

    fn compute_row(&self, i: usize, out: &mut [T]) {
        let a = self.x.row(i);
        let aa = self.self_dots[i];
        for (j, slot) in out.iter_mut().enumerate() {
            let ip = dot(a, self.x.row(j));
            *slot = finish(&self.kernel, ip, aa, self.self_dots[j]);
        }
    }

    fn diag(&self, i: usize) -> T {
        finish(
            &self.kernel,
            self.self_dots[i],
            self.self_dots[i],
            self.self_dots[i],
        )
    }
}

/// Sparse-row kernel evaluation (standard LIBSVM).
pub struct SparseRows<T> {
    csr: CsrMatrix<T>,
    kernel: KernelSpec<T>,
    self_dots: Vec<T>,
}

impl<T: Real> SparseRows<T> {
    /// Builds the provider from dense input (compressed internally).
    pub fn new(x: &DenseMatrix<T>, kernel: KernelSpec<T>) -> Self {
        let csr = CsrMatrix::from_dense(x);
        let self_dots = (0..csr.rows()).map(|i| csr.sparse_dot(i, i)).collect();
        Self {
            csr,
            kernel,
            self_dots,
        }
    }

    /// The underlying CSR matrix.
    pub fn csr(&self) -> &CsrMatrix<T> {
        &self.csr
    }
}

impl<T: Real> KernelRows<T> for SparseRows<T> {
    fn points(&self) -> usize {
        self.csr.rows()
    }

    fn compute_row(&self, i: usize, out: &mut [T]) {
        let aa = self.self_dots[i];
        for (j, slot) in out.iter_mut().enumerate() {
            let ip = self.csr.sparse_dot(i, j);
            *slot = finish(&self.kernel, ip, aa, self.self_dots[j]);
        }
    }

    fn diag(&self, i: usize) -> T {
        finish(
            &self.kernel,
            self.self_dots[i],
            self.self_dots[i],
            self.self_dots[i],
        )
    }
}

#[cfg(test)]
// index loops in these tests mirror the paper's subscript notation
#[allow(clippy::needless_range_loop)]
mod tests {
    use super::*;
    use plssvm_core::kernel::kernel_row;
    use plssvm_data::synthetic::{generate_planes, PlanesConfig};

    fn sample() -> DenseMatrix<f64> {
        generate_planes(&PlanesConfig::new(15, 6, 3)).unwrap().x
    }

    fn sparse_sample() -> DenseMatrix<f64> {
        // every second entry zeroed → genuinely sparse rows
        let mut x = sample();
        for p in 0..x.rows() {
            for f in 0..x.cols() {
                if (p + f) % 2 == 0 {
                    x.set(p, f, 0.0);
                }
            }
        }
        x
    }

    fn kernels() -> Vec<KernelSpec<f64>> {
        vec![
            KernelSpec::Linear,
            KernelSpec::Polynomial {
                degree: 3,
                gamma: 0.5,
                coef0: 1.0,
            },
            KernelSpec::Rbf { gamma: 0.4 },
            KernelSpec::Sigmoid {
                gamma: 0.3,
                coef0: 0.25,
            },
        ]
    }

    #[test]
    fn dense_rows_match_direct_evaluation() {
        let x = sample();
        for kernel in kernels() {
            let rows = DenseRows::new(x.clone(), kernel);
            let mut out = vec![0.0; x.rows()];
            for i in 0..x.rows() {
                rows.compute_row(i, &mut out);
                for j in 0..x.rows() {
                    let direct = kernel_row(&kernel, x.row(i), x.row(j));
                    assert!(
                        (out[j] - direct).abs() < 1e-10,
                        "{kernel:?} K[{i},{j}]: {} vs {direct}",
                        out[j]
                    );
                }
                assert!((rows.diag(i) - kernel_row(&kernel, x.row(i), x.row(i))).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn sparse_rows_match_dense_rows() {
        let x = sparse_sample();
        for kernel in kernels() {
            let dense = DenseRows::new(x.clone(), kernel);
            let sparse = SparseRows::new(&x, kernel);
            assert_eq!(dense.points(), sparse.points());
            let mut a = vec![0.0; x.rows()];
            let mut b = vec![0.0; x.rows()];
            for i in 0..x.rows() {
                dense.compute_row(i, &mut a);
                sparse.compute_row(i, &mut b);
                for j in 0..x.rows() {
                    assert!((a[j] - b[j]).abs() < 1e-10, "{kernel:?} K[{i},{j}]");
                }
            }
        }
    }

    #[test]
    fn csr_compression() {
        let x = sparse_sample();
        let csr = CsrMatrix::from_dense(&x);
        assert_eq!(csr.rows(), x.rows());
        let dense_nnz = x.as_slice().iter().filter(|v| **v != 0.0).count();
        assert_eq!(csr.nnz(), dense_nnz);
        assert!(csr.nnz() < x.rows() * x.cols());
    }

    #[test]
    fn sparse_dot_merges_indices() {
        let x = DenseMatrix::from_rows(vec![vec![1.0, 0.0, 2.0, 0.0], vec![0.0, 3.0, 4.0, 0.0]])
            .unwrap();
        let csr = CsrMatrix::from_dense(&x);
        assert_eq!(csr.sparse_dot(0, 1), 8.0); // only feature 2 overlaps
        assert_eq!(csr.sparse_dot(0, 0), 5.0);
        assert_eq!(csr.sparse_dot(1, 1), 25.0);
    }

    #[test]
    fn rbf_distance_identity_is_robust() {
        // identical points must give exactly k = 1 even with the dot-product
        // distance identity (max(0, ·) guards rounding)
        let x = sample();
        let rows = DenseRows::new(x.clone(), KernelSpec::Rbf { gamma: 10.0 });
        let mut out = vec![0.0; x.rows()];
        for i in 0..x.rows() {
            rows.compute_row(i, &mut out);
            assert!((out[i] - 1.0).abs() < 1e-12);
        }
    }
}
