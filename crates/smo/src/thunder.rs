//! A ThunderSVM-style batched working-set SMO solver.
//!
//! ThunderSVM accelerates SMO by processing a **working set** of the `q`
//! most violating points per outer iteration: the kernel rows of the whole
//! set are computed in bulk (on a GPU this is the flood of small compute
//! kernels the paper profiles — >1600 launches, each well under a
//! millisecond, §IV-C), the two-variable updates run *inside* the working
//! set against a local gradient, and the global gradient is then updated
//! in one pass. This is the "point groups" parallelization of SMO the
//! paper describes in §II-G.
//!
//! The row batch and the global gradient update are parallelized with
//! rayon (ThunderSVM's CPU mode uses OpenMP the same way). Kernel launch
//! counts are tracked so the profiling comparison of §IV-C can be
//! regenerated.

use rayon::prelude::*;

use plssvm_data::libsvm::LabeledData;
use plssvm_data::model::{KernelSpec, SvmModel};
use plssvm_data::{DataError, Real};

use crate::rows::{DenseRows, KernelRows};

const TAU: f64 = 1e-12;

/// Batched-SMO configuration.
#[derive(Debug, Clone)]
pub struct ThunderConfig<T> {
    /// Kernel function.
    pub kernel: KernelSpec<T>,
    /// Upper box bound `C`.
    pub cost: T,
    /// Global KKT violation tolerance.
    pub epsilon: T,
    /// Working set size `q` (ThunderSVM default 512).
    pub working_set_size: usize,
    /// Maximum two-variable updates per outer iteration (defaults to the
    /// working set size).
    pub inner_iterations: Option<usize>,
    /// Outer iteration cap; `None` = `max(1000, 10·m / q)·q`-ish safety
    /// bound, far above practical convergence.
    pub max_outer_iterations: Option<usize>,
}

impl<T: Real> Default for ThunderConfig<T> {
    fn default() -> Self {
        Self {
            kernel: KernelSpec::Linear,
            cost: T::ONE,
            epsilon: T::from_f64(1e-3),
            working_set_size: 512,
            inner_iterations: None,
            max_outer_iterations: None,
        }
    }
}

/// Result of a batched-SMO run.
#[derive(Debug)]
pub struct ThunderOutput<T> {
    /// The trained model.
    pub model: SvmModel<T>,
    /// Outer (working set) iterations.
    pub outer_iterations: usize,
    /// Total two-variable updates across all working sets.
    pub inner_iterations: usize,
    /// Kernel rows computed (each is one `O(m·d)` batch row).
    pub rows_computed: usize,
    /// Device kernel launches a GPU execution of this run would issue —
    /// ThunderSVM launches separate small kernels for the row batch, the
    /// local solve, the gradient update and the convergence reduction per
    /// outer iteration.
    pub kernel_launches: usize,
    /// Whether the global KKT criterion was met.
    pub converged: bool,
}

/// Kernel launches ThunderSVM issues per outer iteration (row-batch
/// kernel, working-set selection reductions, local SMO kernel, global
/// gradient update, convergence check).
pub const LAUNCHES_PER_OUTER: usize = 6;

/// The batched solver.
pub struct ThunderSolver<T> {
    config: ThunderConfig<T>,
}

impl<T: Real> ThunderSolver<T> {
    /// Creates a solver with the given configuration.
    pub fn new(config: ThunderConfig<T>) -> Result<Self, DataError> {
        config.kernel.validate()?;
        // the negated comparison deliberately rejects NaN as well
        #[allow(clippy::neg_cmp_op_on_partial_ord)]
        if !(config.cost.to_f64() > 0.0) {
            return Err(DataError::Invalid("C must be positive".into()));
        }
        #[allow(clippy::neg_cmp_op_on_partial_ord)]
        if !(config.epsilon.to_f64() > 0.0) {
            return Err(DataError::Invalid("epsilon must be positive".into()));
        }
        if config.working_set_size < 2 {
            return Err(DataError::Invalid(
                "working set needs at least two points".into(),
            ));
        }
        Ok(Self { config })
    }

    /// Trains on `data` with dense kernel rows.
    pub fn train(&self, data: &LabeledData<T>) -> Result<ThunderOutput<T>, DataError> {
        let rows = DenseRows::new(data.x.clone(), self.config.kernel);
        self.train_with_rows(data, &rows)
    }

    /// Trains with an explicit kernel-row provider.
    pub fn train_with_rows<R: KernelRows<T>>(
        &self,
        data: &LabeledData<T>,
        rows: &R,
    ) -> Result<ThunderOutput<T>, DataError> {
        let m = rows.points();
        if data.y.len() != m {
            return Err(DataError::Invalid("label/point count mismatch".into()));
        }
        let y: Vec<f64> = data.y.iter().map(|v| v.to_f64()).collect();
        let pos = y.iter().filter(|&&v| v > 0.0).count();
        if pos == 0 || pos == m {
            return Err(DataError::Invalid(
                "SMO needs at least one point of each class".into(),
            ));
        }
        let c = self.config.cost.to_f64();
        let eps = self.config.epsilon.to_f64();
        let q = self.config.working_set_size.min(m);
        let inner_budget = self.config.inner_iterations.unwrap_or(q);
        let max_outer = self
            .config
            .max_outer_iterations
            .unwrap_or_else(|| (20 * m / q + 1000).max(1000));

        let diag: Vec<f64> = (0..m).map(|i| rows.diag(i).to_f64()).collect();
        let mut alpha = vec![0.0f64; m];
        let mut grad = vec![-1.0f64; m];

        let mut outer = 0usize;
        let mut inner_total = 0usize;
        let mut rows_computed = 0usize;
        let mut converged = false;

        while outer < max_outer {
            // --- global convergence check (max violating pair) ---
            let mut gmax = f64::NEG_INFINITY;
            let mut gmin = f64::INFINITY;
            for t in 0..m {
                let v = -y[t] * grad[t];
                let in_up = if y[t] > 0.0 {
                    alpha[t] < c
                } else {
                    alpha[t] > 0.0
                };
                let in_low = if y[t] > 0.0 {
                    alpha[t] > 0.0
                } else {
                    alpha[t] < c
                };
                if in_up {
                    gmax = gmax.max(v);
                }
                if in_low {
                    gmin = gmin.min(v);
                }
            }
            if gmax - gmin < eps {
                converged = true;
                break;
            }
            outer += 1;

            // --- working set: q/2 most violating from I_up, q/2 from I_low ---
            let mut ups: Vec<(f64, usize)> = (0..m)
                .filter(|&t| {
                    if y[t] > 0.0 {
                        alpha[t] < c
                    } else {
                        alpha[t] > 0.0
                    }
                })
                .map(|t| (-y[t] * grad[t], t))
                .collect();
            let mut lows: Vec<(f64, usize)> = (0..m)
                .filter(|&t| {
                    if y[t] > 0.0 {
                        alpha[t] > 0.0
                    } else {
                        alpha[t] < c
                    }
                })
                .map(|t| (-y[t] * grad[t], t))
                .collect();
            ups.sort_by(|a, b| b.0.total_cmp(&a.0)); // descending violation
            lows.sort_by(|a, b| a.0.total_cmp(&b.0)); // ascending
            let mut ws: Vec<usize> = Vec::with_capacity(q);
            let mut in_ws = vec![false; m];
            for &(_, t) in ups.iter().take(q / 2).chain(lows.iter().take(q / 2)) {
                if !in_ws[t] {
                    in_ws[t] = true;
                    ws.push(t);
                }
            }
            if ws.len() < 2 {
                converged = true;
                break;
            }

            // --- bulk kernel rows of the working set (the GPU row batch) ---
            let ws_rows: Vec<Vec<T>> = ws
                .par_iter()
                .map(|&t| {
                    let mut buf = vec![T::ZERO; m];
                    rows.compute_row(t, &mut buf);
                    buf
                })
                .collect();
            rows_computed += ws.len();

            // --- local SMO on the working set ---
            // local gradient over ws, local kernel matrix from the rows
            let w = ws.len();
            let mut g_loc: Vec<f64> = ws.iter().map(|&t| grad[t]).collect();
            let a_old: Vec<f64> = ws.iter().map(|&t| alpha[t]).collect();
            let mut a_loc = a_old.clone();
            let k_loc = |u: usize, v: usize| ws_rows[u][ws[v]].to_f64();

            for _ in 0..inner_budget {
                // max violating pair within the set
                let mut lmax = f64::NEG_INFINITY;
                let mut li = usize::MAX;
                let mut lmin = f64::INFINITY;
                let mut lj = usize::MAX;
                for u in 0..w {
                    let t = ws[u];
                    let v = -y[t] * g_loc[u];
                    let in_up = if y[t] > 0.0 {
                        a_loc[u] < c
                    } else {
                        a_loc[u] > 0.0
                    };
                    let in_low = if y[t] > 0.0 {
                        a_loc[u] > 0.0
                    } else {
                        a_loc[u] < c
                    };
                    if in_up && v > lmax {
                        lmax = v;
                        li = u;
                    }
                    if in_low && v < lmin {
                        lmin = v;
                        lj = u;
                    }
                }
                if li == usize::MAX || lj == usize::MAX || lmax - lmin < eps {
                    break;
                }
                let (ti, tj) = (ws[li], ws[lj]);
                let k_ij = k_loc(li, lj);
                let (old_i, old_j) = (a_loc[li], a_loc[lj]);
                if y[ti] != y[tj] {
                    // QD[i]+QD[j]+2·Q_ij with Q_ij = yᵢyⱼK_ij = −K_ij here
                    let quad = (diag[ti] + diag[tj] - 2.0 * k_ij).max(TAU);
                    let delta = (-g_loc[li] - g_loc[lj]) / quad;
                    let diff = a_loc[li] - a_loc[lj];
                    a_loc[li] += delta;
                    a_loc[lj] += delta;
                    if diff > 0.0 {
                        if a_loc[lj] < 0.0 {
                            a_loc[lj] = 0.0;
                            a_loc[li] = diff;
                        }
                    } else if a_loc[li] < 0.0 {
                        a_loc[li] = 0.0;
                        a_loc[lj] = -diff;
                    }
                    if diff > 0.0 {
                        if a_loc[li] > c {
                            a_loc[li] = c;
                            a_loc[lj] = c - diff;
                        }
                    } else if a_loc[lj] > c {
                        a_loc[lj] = c;
                        a_loc[li] = c + diff;
                    }
                } else {
                    let quad = (diag[ti] + diag[tj] - 2.0 * k_ij).max(TAU);
                    let delta = (g_loc[li] - g_loc[lj]) / quad;
                    let sum = a_loc[li] + a_loc[lj];
                    a_loc[li] -= delta;
                    a_loc[lj] += delta;
                    if sum > c {
                        if a_loc[li] > c {
                            a_loc[li] = c;
                            a_loc[lj] = sum - c;
                        }
                    } else if a_loc[lj] < 0.0 {
                        a_loc[lj] = 0.0;
                        a_loc[li] = sum;
                    }
                    if sum > c {
                        if a_loc[lj] > c {
                            a_loc[lj] = c;
                            a_loc[li] = sum - c;
                        }
                    } else if a_loc[li] < 0.0 {
                        a_loc[li] = 0.0;
                        a_loc[lj] = sum;
                    }
                }
                // local gradient update within the working set
                let dai = a_loc[li] - old_i;
                let daj = a_loc[lj] - old_j;
                for u in 0..w {
                    let t = ws[u];
                    g_loc[u] += y[t] * (y[ti] * k_loc(li, u) * dai + y[tj] * k_loc(lj, u) * daj);
                }
                inner_total += 1;
            }

            // --- bulk global gradient update with the accumulated Δα ---
            let deltas: Vec<(usize, f64, usize)> = (0..w)
                .filter(|&u| (a_loc[u] - a_old[u]).abs() > 0.0)
                .map(|u| (ws[u], a_loc[u] - a_old[u], u))
                .collect();
            for &(t, _, u) in &deltas {
                alpha[t] = a_loc[u];
            }
            grad.par_iter_mut().enumerate().for_each(|(s, g)| {
                let mut acc = 0.0;
                for &(t, da, u) in &deltas {
                    acc += y[t] * ws_rows[u][s].to_f64() * da;
                }
                *g += y[s] * acc;
            });
        }

        // rho, objective, model — identical to plain SMO
        let mut ub = f64::INFINITY;
        let mut lb = f64::NEG_INFINITY;
        let mut sum_free = 0.0;
        let mut nr_free = 0usize;
        for t in 0..m {
            let yg = y[t] * grad[t];
            if alpha[t] >= c {
                if y[t] < 0.0 {
                    ub = ub.min(yg);
                } else {
                    lb = lb.max(yg);
                }
            } else if alpha[t] <= 0.0 {
                if y[t] > 0.0 {
                    ub = ub.min(yg);
                } else {
                    lb = lb.max(yg);
                }
            } else {
                nr_free += 1;
                sum_free += yg;
            }
        }
        let rho = if nr_free > 0 {
            sum_free / nr_free as f64
        } else {
            (ub + lb) / 2.0
        };

        let sv_indices: Vec<usize> = (0..m).filter(|&t| alpha[t] > 0.0).collect();
        if sv_indices.is_empty() {
            return Err(DataError::Invalid(
                "batched SMO produced no support vectors".into(),
            ));
        }
        let sv = data.x.select_rows(&sv_indices);
        let coef: Vec<T> = sv_indices
            .iter()
            .map(|&t| T::from_f64(alpha[t] * y[t]))
            .collect();
        let pos_sv = sv_indices.iter().filter(|&&t| y[t] > 0.0).count();
        let model = SvmModel {
            kernel: self.config.kernel,
            labels: data.label_map,
            rho: T::from_f64(rho),
            sv,
            coef,
            nr_sv: [pos_sv, sv_indices.len() - pos_sv],
            solver: None,
        };
        Ok(ThunderOutput {
            model,
            outer_iterations: outer,
            inner_iterations: inner_total,
            rows_computed,
            kernel_launches: outer * LAUNCHES_PER_OUTER,
            converged,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::{train_dense, SmoConfig};
    use plssvm_core::svm::accuracy;
    use plssvm_data::dense::DenseMatrix;
    use plssvm_data::synthetic::{generate_planes, PlanesConfig};

    fn planes(points: usize, seed: u64) -> LabeledData<f64> {
        generate_planes(
            &PlanesConfig::new(points, 6, seed)
                .with_cluster_sep(3.0)
                .with_flip_fraction(0.0),
        )
        .unwrap()
    }

    #[test]
    fn converges_on_separable_data() {
        let data = planes(120, 1);
        let solver = ThunderSolver::new(ThunderConfig {
            working_set_size: 16,
            ..Default::default()
        })
        .unwrap();
        let out = solver.train(&data).unwrap();
        assert!(out.converged);
        assert!(out.outer_iterations >= 1);
        let acc = accuracy(&out.model, &data);
        assert!(acc >= 0.97, "accuracy {acc}");
    }

    #[test]
    fn matches_plain_smo_objective() {
        let data = planes(70, 2);
        let smo = train_dense(&data, &SmoConfig::default()).unwrap();
        let thunder = ThunderSolver::new(ThunderConfig {
            working_set_size: 16,
            epsilon: 1e-5,
            ..Default::default()
        })
        .unwrap()
        .train(&data)
        .unwrap();
        // both solve the same convex dual → same rho up to tolerance
        assert!(
            (smo.model.rho - thunder.model.rho).abs() < 1e-2,
            "rho {} vs {}",
            smo.model.rho,
            thunder.model.rho
        );
        // predictions agree everywhere on the training set
        let a = plssvm_core::svm::predict(&smo.model, &data.x);
        let b = plssvm_core::svm::predict(&thunder.model, &data.x);
        let diff = a.iter().zip(&b).filter(|(x, y)| x != y).count();
        assert!(diff <= 1, "{diff} prediction differences");
    }

    #[test]
    fn launch_count_scales_with_outer_iterations() {
        let data = planes(100, 3);
        let out = ThunderSolver::new(ThunderConfig {
            working_set_size: 8,
            ..Default::default()
        })
        .unwrap()
        .train(&data)
        .unwrap();
        assert_eq!(
            out.kernel_launches,
            out.outer_iterations * LAUNCHES_PER_OUTER
        );
        assert!(out.rows_computed >= out.outer_iterations.min(1));
    }

    #[test]
    fn rbf_solves_xor() {
        let mut rows_v = Vec::new();
        let mut y = Vec::new();
        for i in 0..8 {
            for j in 0..8 {
                let (a, b) = (i as f64 / 4.0 - 1.0, j as f64 / 4.0 - 1.0);
                rows_v.push(vec![a, b]);
                y.push(if (a > 0.0) == (b > 0.0) { 1.0 } else { -1.0 });
            }
        }
        let data = LabeledData::new(DenseMatrix::from_rows(rows_v).unwrap(), y).unwrap();
        let out = ThunderSolver::new(ThunderConfig {
            kernel: KernelSpec::Rbf { gamma: 2.0 },
            cost: 10.0,
            working_set_size: 16,
            ..Default::default()
        })
        .unwrap()
        .train(&data)
        .unwrap();
        assert!(accuracy(&out.model, &data) >= 0.97);
    }

    #[test]
    fn dual_constraint_holds() {
        let data = planes(60, 4);
        let out = ThunderSolver::new(ThunderConfig {
            working_set_size: 10,
            ..Default::default()
        })
        .unwrap()
        .train(&data)
        .unwrap();
        let s: f64 = out.model.coef.iter().sum();
        assert!(s.abs() < 1e-8, "Σαy = {s}");
        for coef in &out.model.coef {
            assert!(coef.abs() <= 1.0 + 1e-9); // |α·y| ≤ C
        }
    }

    #[test]
    fn working_set_larger_than_data_is_clamped() {
        let data = planes(20, 5);
        let out = ThunderSolver::new(ThunderConfig {
            working_set_size: 512,
            ..Default::default()
        })
        .unwrap()
        .train(&data)
        .unwrap();
        assert!(out.converged);
    }

    #[test]
    fn invalid_configs_rejected() {
        assert!(ThunderSolver::<f64>::new(ThunderConfig {
            working_set_size: 1,
            ..Default::default()
        })
        .is_err());
        assert!(ThunderSolver::<f64>::new(ThunderConfig {
            cost: 0.0,
            ..Default::default()
        })
        .is_err());
        let solver = ThunderSolver::<f64>::new(ThunderConfig::default()).unwrap();
        let x = DenseMatrix::from_rows(vec![vec![1.0f64], vec![2.0]]).unwrap();
        let single = LabeledData::new(x, vec![1.0, 1.0]).unwrap();
        assert!(solver.train(&single).is_err());
    }

    #[test]
    fn outer_cap_respected() {
        let data = generate_planes(&PlanesConfig::new(100, 6, 6).with_cluster_sep(0.2)).unwrap();
        let out = ThunderSolver::new(ThunderConfig {
            working_set_size: 4,
            epsilon: 1e-10,
            max_outer_iterations: Some(2),
            ..Default::default()
        })
        .unwrap()
        .train(&data)
        .unwrap();
        assert_eq!(out.outer_iterations, 2);
        assert!(!out.converged);
    }
}
