//! Sequential Minimal Optimization baselines.
//!
//! The paper compares PLSSVM against two SMO-based implementations:
//! **LIBSVM 3.25** (sparse and dense variants, CPU) and **ThunderSVM**
//! (CPU and GPU). Neither is linkable from Rust, so this crate implements
//! both algorithm families from scratch:
//!
//! * [`solver`] — a faithful LIBSVM-style C-SVC solver: second-order
//!   working-set selection (WSS2), the exact two-variable analytic update
//!   with clipping, an LRU kernel-row [`cache`], and the KKT-violation
//!   stopping rule. Single-threaded like LIBSVM.
//! * [`rows`] — kernel-row evaluation over dense rows (LIBSVM's dense
//!   fork) or CSR sparse rows (standard LIBSVM).
//! * [`thunder`] — a ThunderSVM-style batched solver: per outer iteration
//!   a working set of the `q` most violating points is selected, its
//!   kernel rows are computed in parallel (on a GPU this is the flood of
//!   small kernel launches the paper profiles), the subproblem is solved
//!   locally, and the global gradient is updated in bulk.
//!
//! Both produce standard [`SvmModel`](plssvm_data::model::SvmModel)s and
//! share the prediction path of `plssvm-core`, so accuracies are directly
//! comparable with the LS-SVM.

#![warn(missing_docs)]

pub mod cache;
pub mod rows;
pub mod solver;
pub mod thunder;

pub use rows::{DenseRows, KernelRows, SparseRows};
pub use solver::{SmoConfig, SmoOutput, SmoSolver};
pub use thunder::{ThunderConfig, ThunderOutput, ThunderSolver};
