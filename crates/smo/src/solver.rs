//! The LIBSVM-style SMO solver for C-SVC.
//!
//! Solves the dual problem (the paper's Eq. 7/9)
//!
//! ```text
//! min ½·αᵀQα − eᵀα    s.t.  0 ≤ αᵢ ≤ C,  yᵀα = 0,    Qᵢⱼ = yᵢyⱼ·k(xᵢ,xⱼ)
//! ```
//!
//! with Platt's Sequential Minimal Optimization as implemented by LIBSVM:
//! second-order working-set selection (WSS2, Fan et al.), the exact
//! two-variable analytic update with box clipping, an LRU kernel-row cache,
//! and termination once the maximal KKT violation drops below ε. Like
//! LIBSVM, the solver is **single-threaded** — this is precisely the
//! "inherently sequential" structure the paper contrasts the LS-SVM
//! against (§II-G).

use plssvm_data::libsvm::LabeledData;
use plssvm_data::model::{KernelSpec, SvmModel};
use plssvm_data::{DataError, Real};

use crate::cache::{CacheStats, KernelCache};
use crate::rows::{DenseRows, KernelRows, SparseRows};

/// Numerical floor for the quadratic coefficient (LIBSVM's `TAU`).
const TAU: f64 = 1e-12;

/// SMO solver configuration. Defaults mirror `svm-train`:
/// `C = 1`, `ε = 1e-3`, 100 MB kernel cache.
#[derive(Debug, Clone)]
pub struct SmoConfig<T> {
    /// Kernel function.
    pub kernel: KernelSpec<T>,
    /// Upper box bound `C`.
    pub cost: T,
    /// KKT violation tolerance (LIBSVM `-e`).
    pub epsilon: T,
    /// Kernel cache budget in bytes (LIBSVM `-m`, default 100 MB).
    pub cache_bytes: usize,
    /// Iteration cap; `None` = `max(10 000, 100·m)` like LIBSVM.
    pub max_iterations: Option<usize>,
    /// LIBSVM's shrinking heuristic (`-h`, default on): periodically
    /// remove variables stuck at their bounds from the working set and
    /// reconstruct the gradient before the final convergence check.
    pub shrinking: bool,
    /// Per-class multipliers on `C` (LIBSVM `-wi`): index 0 applies to the
    /// `+1` class, index 1 to the `−1` class. Used to counter class
    /// imbalance by making minority-class errors more expensive.
    pub class_weights: [f64; 2],
}

impl<T: Real> Default for SmoConfig<T> {
    fn default() -> Self {
        Self {
            kernel: KernelSpec::Linear,
            cost: T::ONE,
            epsilon: T::from_f64(1e-3),
            cache_bytes: 100 << 20,
            max_iterations: None,
            shrinking: true,
            class_weights: [1.0, 1.0],
        }
    }
}

/// The result of an SMO training run.
#[derive(Debug)]
pub struct SmoOutput<T> {
    /// The trained model (only points with `αᵢ > 0` are support vectors).
    pub model: SvmModel<T>,
    /// SMO iterations (two-variable updates) performed.
    pub iterations: usize,
    /// Whether the KKT criterion was met within the iteration budget.
    pub converged: bool,
    /// Final dual objective `½αᵀQα − eᵀα`.
    pub objective: f64,
    /// Kernel cache statistics.
    pub cache: CacheStats,
}

/// A prepared SMO solver: labels + kernel-row provider.
pub struct SmoSolver<'a, T, R> {
    rows: &'a R,
    y: Vec<T>,
    config: SmoConfig<T>,
}

/// Trains with dense kernel rows (the paper's "LIBSVM-DENSE" baseline).
pub fn train_dense<T: Real>(
    data: &LabeledData<T>,
    config: &SmoConfig<T>,
) -> Result<SmoOutput<T>, DataError> {
    let rows = DenseRows::new(data.x.clone(), config.kernel);
    SmoSolver::new(&rows, data.y.clone(), config.clone())?.train(data)
}

/// Trains with CSR sparse kernel rows (the paper's "LIBSVM" baseline).
pub fn train_sparse<T: Real>(
    data: &LabeledData<T>,
    config: &SmoConfig<T>,
) -> Result<SmoOutput<T>, DataError> {
    let rows = SparseRows::new(&data.x, config.kernel);
    SmoSolver::new(&rows, data.y.clone(), config.clone())?.train(data)
}

impl<'a, T: Real, R: KernelRows<T>> SmoSolver<'a, T, R> {
    /// Creates a solver over `rows` with ±1 labels `y`.
    pub fn new(rows: &'a R, y: Vec<T>, config: SmoConfig<T>) -> Result<Self, DataError> {
        config.kernel.validate()?;
        if y.len() != rows.points() {
            return Err(DataError::Invalid(format!(
                "{} labels for {} points",
                y.len(),
                rows.points()
            )));
        }
        // the negated comparison deliberately rejects NaN as well
        #[allow(clippy::neg_cmp_op_on_partial_ord)]
        if !(config.cost.to_f64() > 0.0) {
            return Err(DataError::Invalid("C must be positive".into()));
        }
        #[allow(clippy::neg_cmp_op_on_partial_ord)]
        if !(config.epsilon.to_f64() > 0.0) {
            return Err(DataError::Invalid("epsilon must be positive".into()));
        }
        #[allow(clippy::neg_cmp_op_on_partial_ord)]
        if config.class_weights.iter().any(|w| !(*w > 0.0)) {
            return Err(DataError::Invalid("class weights must be positive".into()));
        }
        let pos = y.iter().filter(|v| v.to_f64() > 0.0).count();
        if pos == 0 || pos == y.len() {
            return Err(DataError::Invalid(
                "SMO needs at least one point of each class".into(),
            ));
        }
        Ok(Self { rows, y, config })
    }

    /// Runs SMO to convergence and assembles the model.
    pub fn train(&self, data: &LabeledData<T>) -> Result<SmoOutput<T>, DataError> {
        let m = self.rows.points();
        let c = self.config.cost.to_f64();
        let eps = self.config.epsilon.to_f64();
        let max_iterations = self
            .config
            .max_iterations
            .unwrap_or_else(|| (100 * m).max(10_000));

        let y: Vec<f64> = self.y.iter().map(|v| v.to_f64()).collect();
        // per-class box bound (LIBSVM -wi): C⁺ for y=+1, C⁻ for y=−1
        let c_of: Vec<f64> = y
            .iter()
            .map(|&yi| {
                c * if yi > 0.0 {
                    self.config.class_weights[0]
                } else {
                    self.config.class_weights[1]
                }
            })
            .collect();
        let diag: Vec<f64> = (0..m).map(|i| self.rows.diag(i).to_f64()).collect();
        let cache = KernelCache::<T>::new(m, self.config.cache_bytes);
        let row = |i: usize| cache.get(i, |out| self.rows.compute_row(i, out));

        let mut alpha = vec![0.0f64; m];
        let mut grad = vec![-1.0f64; m]; // G = Qα − e, α = 0

        // --- shrinking state (LIBSVM -h): `active` lists the positions
        // still in the working set; gradients of inactive positions go
        // stale and are reconstructed on demand ---
        let mut active: Vec<usize> = (0..m).collect();
        let mut is_active = vec![true; m];
        let mut shrunk = false;
        let mut unshrink = false;
        let shrink_interval = m.min(1000);
        let mut since_shrink = 0usize;

        // reconstructs stale gradients of the inactive positions from the
        // non-zero α rows: G_t = −1 + Σ_j y_t·y_j·α_j·K_jt
        let reconstruct_gradient = |grad: &mut [f64], is_active: &[bool], alpha: &[f64]| {
            let stale: Vec<usize> = (0..m).filter(|&t| !is_active[t]).collect();
            if stale.is_empty() {
                return;
            }
            for &t in &stale {
                grad[t] = -1.0;
            }
            for j in 0..m {
                if alpha[j] > 0.0 {
                    let row_j = row(j);
                    for &t in &stale {
                        grad[t] += y[t] * y[j] * alpha[j] * row_j[t].to_f64();
                    }
                }
            }
        };

        let mut iterations = 0usize;
        let mut converged = false;
        'outer: while iterations < max_iterations {
            // --- shrinking pass (LIBSVM do_shrinking) ---
            since_shrink += 1;
            if self.config.shrinking && since_shrink >= shrink_interval {
                since_shrink = 0;
                let mut gmax1 = f64::NEG_INFINITY; // max −y·G over I_up
                let mut gmax2 = f64::NEG_INFINITY; // max  y·G over I_low
                for &t in &active {
                    if y[t] > 0.0 {
                        if alpha[t] < c_of[t] {
                            gmax1 = gmax1.max(-grad[t]);
                        }
                        if alpha[t] > 0.0 {
                            gmax2 = gmax2.max(grad[t]);
                        }
                    } else {
                        if alpha[t] > 0.0 {
                            gmax1 = gmax1.max(grad[t]);
                        }
                        if alpha[t] < c_of[t] {
                            gmax2 = gmax2.max(-grad[t]);
                        }
                    }
                }
                if !unshrink && gmax1 + gmax2 <= eps * 10.0 {
                    // nearly converged: bring everything back once so the
                    // final iterations run on the true problem
                    unshrink = true;
                    reconstruct_gradient(&mut grad, &is_active, &alpha);
                    active = (0..m).collect();
                    is_active.fill(true);
                    shrunk = false;
                }
                let be_shrunk = |t: usize| -> bool {
                    if alpha[t] >= c_of[t] {
                        if y[t] > 0.0 {
                            -grad[t] > gmax1
                        } else {
                            -grad[t] > gmax2
                        }
                    } else if alpha[t] <= 0.0 {
                        if y[t] > 0.0 {
                            grad[t] > gmax2
                        } else {
                            grad[t] > gmax1
                        }
                    } else {
                        false
                    }
                };
                let before = active.len();
                active.retain(|&t| {
                    let keep = !be_shrunk(t);
                    if !keep {
                        is_active[t] = false;
                    }
                    keep
                });
                if active.len() < before {
                    shrunk = true;
                }
            }

            // --- WSS2 working set selection (Fan, Chen, Lin 2005) ---
            let mut gmax = f64::NEG_INFINITY;
            let mut i = usize::MAX;
            for &t in &active {
                if y[t] > 0.0 {
                    if alpha[t] < c_of[t] && -grad[t] >= gmax {
                        gmax = -grad[t];
                        i = t;
                    }
                } else if alpha[t] > 0.0 && grad[t] >= gmax {
                    gmax = grad[t];
                    i = t;
                }
            }
            let (j, gmax2) = if i == usize::MAX {
                (usize::MAX, f64::NEG_INFINITY)
            } else {
                let row_i = row(i);
                let mut gmax2 = f64::NEG_INFINITY;
                let mut obj_min = f64::INFINITY;
                let mut j = usize::MAX;
                for &t in &active {
                    let in_low = if y[t] > 0.0 {
                        alpha[t] > 0.0
                    } else {
                        alpha[t] < c_of[t]
                    };
                    if !in_low {
                        continue;
                    }
                    let neg_ygt = if y[t] > 0.0 { grad[t] } else { -grad[t] };
                    if neg_ygt >= gmax2 {
                        gmax2 = neg_ygt;
                    }
                    let grad_diff = gmax + neg_ygt;
                    if grad_diff > 0.0 {
                        let k_it = row_i[t].to_f64();
                        let quad = (diag[i] + diag[t] - 2.0 * k_it).max(TAU);
                        let obj = -(grad_diff * grad_diff) / quad;
                        if obj <= obj_min {
                            obj_min = obj;
                            j = t;
                        }
                    }
                }
                (j, gmax2)
            };
            if i == usize::MAX || j == usize::MAX || gmax + gmax2 < eps {
                if shrunk {
                    // converged on the shrunk problem: reconstruct and
                    // re-check on the full one (LIBSVM's retry path)
                    reconstruct_gradient(&mut grad, &is_active, &alpha);
                    active = (0..m).collect();
                    is_active.fill(true);
                    shrunk = false;
                    since_shrink = 0;
                    continue 'outer;
                }
                converged = true;
                break;
            }
            let row_i = row(i);

            // --- two-variable analytic update with clipping (LIBSVM) ---
            let row_j = row(j);
            let k_ij = row_i[j].to_f64();
            let (old_ai, old_aj) = (alpha[i], alpha[j]);
            let (ci, cj) = (c_of[i], c_of[j]);
            if y[i] != y[j] {
                // LIBSVM's QD[i]+QD[j]+2·Q_ij with Q_ij = yᵢyⱼK_ij = −K_ij here
                let quad = (diag[i] + diag[j] - 2.0 * k_ij).max(TAU);
                let delta = (-grad[i] - grad[j]) / quad;
                let diff = alpha[i] - alpha[j];
                alpha[i] += delta;
                alpha[j] += delta;
                if diff > 0.0 {
                    if alpha[j] < 0.0 {
                        alpha[j] = 0.0;
                        alpha[i] = diff;
                    }
                } else if alpha[i] < 0.0 {
                    alpha[i] = 0.0;
                    alpha[j] = -diff;
                }
                if diff > ci - cj {
                    if alpha[i] > ci {
                        alpha[i] = ci;
                        alpha[j] = ci - diff;
                    }
                } else if alpha[j] > cj {
                    alpha[j] = cj;
                    alpha[i] = cj + diff;
                }
            } else {
                let quad = (diag[i] + diag[j] - 2.0 * k_ij).max(TAU);
                let delta = (grad[i] - grad[j]) / quad;
                let sum = alpha[i] + alpha[j];
                alpha[i] -= delta;
                alpha[j] += delta;
                if sum > ci {
                    if alpha[i] > ci {
                        alpha[i] = ci;
                        alpha[j] = sum - ci;
                    }
                } else if alpha[j] < 0.0 {
                    alpha[j] = 0.0;
                    alpha[i] = sum;
                }
                if sum > cj {
                    if alpha[j] > cj {
                        alpha[j] = cj;
                        alpha[i] = sum - cj;
                    }
                } else if alpha[i] < 0.0 {
                    alpha[i] = 0.0;
                    alpha[j] = sum;
                }
            }

            // --- gradient update over the active set ---
            let dai = alpha[i] - old_ai;
            let daj = alpha[j] - old_aj;
            for &t in &active {
                grad[t] += y[t] * (y[i] * row_i[t].to_f64() * dai + y[j] * row_j[t].to_f64() * daj);
            }
            iterations += 1;
        }

        // the iteration budget may expire while shrunk — fix the stale
        // gradients so rho and the objective are computed on true values
        if shrunk {
            reconstruct_gradient(&mut grad, &is_active, &alpha);
        }

        // --- rho (LIBSVM calculate_rho) ---
        let mut ub = f64::INFINITY;
        let mut lb = f64::NEG_INFINITY;
        let mut sum_free = 0.0;
        let mut nr_free = 0usize;
        for t in 0..m {
            let yg = y[t] * grad[t];
            if alpha[t] >= c_of[t] {
                if y[t] < 0.0 {
                    ub = ub.min(yg);
                } else {
                    lb = lb.max(yg);
                }
            } else if alpha[t] <= 0.0 {
                if y[t] > 0.0 {
                    ub = ub.min(yg);
                } else {
                    lb = lb.max(yg);
                }
            } else {
                nr_free += 1;
                sum_free += yg;
            }
        }
        let rho = if nr_free > 0 {
            sum_free / nr_free as f64
        } else {
            (ub + lb) / 2.0
        };

        // objective = ½·Σ αᵢ(Gᵢ + pᵢ) with p = −e
        let objective: f64 = alpha
            .iter()
            .zip(&grad)
            .map(|(a, g)| a * (g - 1.0))
            .sum::<f64>()
            / 2.0;

        // --- assemble the model from the support vectors ---
        let sv_indices: Vec<usize> = (0..m).filter(|&t| alpha[t] > 0.0).collect();
        if sv_indices.is_empty() {
            return Err(DataError::Invalid(
                "SMO produced no support vectors (degenerate problem)".into(),
            ));
        }
        let sv = data.x.select_rows(&sv_indices);
        let coef: Vec<T> = sv_indices
            .iter()
            .map(|&t| T::from_f64(alpha[t] * y[t]))
            .collect();
        let pos_sv = sv_indices.iter().filter(|&&t| y[t] > 0.0).count();
        let model = SvmModel {
            kernel: self.config.kernel,
            labels: data.label_map,
            rho: T::from_f64(rho),
            sv,
            coef,
            nr_sv: [pos_sv, sv_indices.len() - pos_sv],
            solver: None,
        };
        Ok(SmoOutput {
            model,
            iterations,
            converged,
            objective,
            cache: cache.stats(),
        })
    }
}

#[cfg(test)]
// index loops in these tests mirror the paper's subscript notation
#[allow(clippy::needless_range_loop)]
mod tests {
    use super::*;
    use plssvm_core::svm::accuracy;
    use plssvm_data::dense::DenseMatrix;
    use plssvm_data::synthetic::{generate_planes, PlanesConfig};

    fn planes(points: usize, seed: u64) -> LabeledData<f64> {
        generate_planes(
            &PlanesConfig::new(points, 6, seed)
                .with_cluster_sep(3.0)
                .with_flip_fraction(0.0),
        )
        .unwrap()
    }

    #[test]
    fn separable_data_trained_to_high_accuracy() {
        let data = planes(100, 1);
        let out = train_dense(&data, &SmoConfig::default()).unwrap();
        assert!(out.converged);
        assert!(out.iterations > 0);
        let acc = accuracy(&out.model, &data);
        assert!(acc >= 0.97, "accuracy {acc}");
        // separable data needs few support vectors — the SMO selling point
        assert!(out.model.total_sv() < data.points() / 2);
    }

    #[test]
    fn sparse_and_dense_agree() {
        let data = planes(60, 2);
        let a = train_dense(&data, &SmoConfig::default()).unwrap();
        let b = train_sparse(&data, &SmoConfig::default()).unwrap();
        assert_eq!(a.iterations, b.iterations);
        assert!((a.model.rho - b.model.rho).abs() < 1e-10);
        assert!((a.objective - b.objective).abs() < 1e-10);
        assert_eq!(a.model.total_sv(), b.model.total_sv());
    }

    #[test]
    fn rbf_solves_xor() {
        let mut rows_v = Vec::new();
        let mut y = Vec::new();
        for i in 0..8 {
            for j in 0..8 {
                let (a, b) = (i as f64 / 4.0 - 1.0, j as f64 / 4.0 - 1.0);
                rows_v.push(vec![a, b]);
                y.push(if (a > 0.0) == (b > 0.0) { 1.0 } else { -1.0 });
            }
        }
        let data = LabeledData::new(DenseMatrix::from_rows(rows_v).unwrap(), y).unwrap();
        let cfg = SmoConfig {
            kernel: KernelSpec::Rbf { gamma: 2.0 },
            cost: 10.0,
            ..Default::default()
        };
        let out = train_dense(&data, &cfg).unwrap();
        assert!(accuracy(&out.model, &data) >= 0.97);
    }

    #[test]
    fn kkt_conditions_hold_at_solution() {
        // After convergence the maximal violation must be below epsilon:
        // recompute the gradient from scratch and check m(α) − M(α) < ε.
        let data = planes(50, 3);
        let cfg = SmoConfig::default();
        let out = train_dense(&data, &cfg).unwrap();
        assert!(out.converged);

        // reconstruct alpha (coef = α y) on the SV subset; non-SVs have α=0
        let rows = DenseRows::new(data.x.clone(), cfg.kernel);
        let m = data.points();
        let mut alpha = vec![0.0; m];
        // map SVs back to training indices by matching rows
        for (k, sv) in out.model.sv.rows_iter().enumerate() {
            let idx = (0..m).find(|&t| data.x.row(t) == sv).unwrap();
            alpha[idx] = out.model.coef[k] * data.y[idx]; // α = coef·y
            assert!(alpha[idx] > 0.0 && alpha[idx] <= cfg.cost + 1e-12);
        }
        let mut grad = vec![-1.0; m];
        let mut buf = vec![0.0; m];
        for t in 0..m {
            if alpha[t] != 0.0 {
                rows.compute_row(t, &mut buf);
                for s in 0..m {
                    grad[s] += data.y[s] * data.y[t] * buf[s] * alpha[t];
                }
            }
        }
        let c = cfg.cost;
        let mut up = f64::NEG_INFINITY;
        let mut low = f64::INFINITY;
        for t in 0..m {
            let v = -data.y[t] * grad[t];
            let in_up = if data.y[t] > 0.0 {
                alpha[t] < c
            } else {
                alpha[t] > 0.0
            };
            let in_low = if data.y[t] > 0.0 {
                alpha[t] > 0.0
            } else {
                alpha[t] < c
            };
            if in_up {
                up = up.max(v);
            }
            if in_low {
                low = low.min(v);
            }
        }
        assert!(up - low < cfg.epsilon + 1e-9, "violation {}", up - low);
    }

    #[test]
    fn dual_constraint_sum_alpha_y_zero() {
        let data = planes(40, 4);
        let out = train_dense(&data, &SmoConfig::default()).unwrap();
        // Σ αᵢyᵢ = Σ coefᵢ = 0 (model coefficients are αᵢyᵢ)
        let s: f64 = out.model.coef.iter().sum();
        assert!(s.abs() < 1e-9, "Σαy = {s}");
    }

    #[test]
    fn iteration_cap_respected() {
        let data = planes(80, 5);
        let cfg = SmoConfig {
            max_iterations: Some(3),
            ..Default::default()
        };
        let out = train_dense(&data, &cfg).unwrap();
        assert_eq!(out.iterations, 3);
        assert!(!out.converged);
    }

    #[test]
    fn objective_is_negative_at_solution() {
        // dual optimum of a non-trivial problem is < 0 (α ≠ 0)
        let data = planes(40, 6);
        let out = train_dense(&data, &SmoConfig::default()).unwrap();
        assert!(out.objective < 0.0);
    }

    #[test]
    fn smaller_cost_bounds_alphas() {
        let data = generate_planes(
            &PlanesConfig::new(60, 4, 7).with_cluster_sep(0.5), // hard overlap
        )
        .unwrap();
        let cfg = SmoConfig {
            cost: 0.1,
            ..Default::default()
        };
        let out = train_dense(&data, &cfg).unwrap();
        for (k, coef) in out.model.coef.iter().enumerate() {
            let a = coef.abs();
            assert!(a <= 0.1 + 1e-12, "α[{k}] = {a} exceeds C");
        }
    }

    #[test]
    fn degenerate_inputs_rejected() {
        let x = DenseMatrix::from_rows(vec![vec![1.0f64], vec![2.0]]).unwrap();
        let single_class = LabeledData::new(x.clone(), vec![1.0, 1.0]).unwrap();
        assert!(train_dense(&single_class, &SmoConfig::default()).is_err());

        let data = LabeledData::new(x, vec![1.0, -1.0]).unwrap();
        let bad_c = SmoConfig {
            cost: -1.0,
            ..Default::default()
        };
        assert!(train_dense(&data, &bad_c).is_err());
        let bad_eps = SmoConfig {
            epsilon: 0.0,
            ..Default::default()
        };
        assert!(train_dense(&data, &bad_eps).is_err());
    }

    #[test]
    fn shrinking_on_and_off_agree() {
        // shrinking is a pure optimization: the solution must match
        for seed in [1u64, 2, 3] {
            let data: LabeledData<f64> =
                generate_planes(&PlanesConfig::new(150, 6, seed).with_cluster_sep(1.0)).unwrap();
            // tight epsilon: both paths approach the unique dual optimum,
            // so the solutions must agree to solver tolerance (shrinking
            // changes the iteration *path*, not the limit)
            let cfg = |shrinking| SmoConfig {
                epsilon: 1e-6,
                shrinking,
                ..Default::default()
            };
            let on = train_dense(&data, &cfg(true)).unwrap();
            let off = train_dense(&data, &cfg(false)).unwrap();
            assert!(on.converged && off.converged);
            assert!(
                (on.model.rho - off.model.rho).abs() < 1e-4,
                "seed {seed}: rho {} vs {}",
                on.model.rho,
                off.model.rho
            );
            assert!(
                (on.objective - off.objective).abs() < 1e-6,
                "seed {seed}: obj {} vs {}",
                on.objective,
                off.objective
            );
            let a = plssvm_core::svm::predict(&on.model, &data.x);
            let b = plssvm_core::svm::predict(&off.model, &data.x);
            let diff = a.iter().zip(&b).filter(|(x, y)| x != y).count();
            assert!(diff <= 1, "seed {seed}: {diff} prediction differences");
        }
    }

    #[test]
    fn shrinking_actually_shrinks_on_bounded_problems() {
        // hard overlap + small C: many α hit the C bound and should be
        // removed from the working set; the solver must still converge to
        // the same answer (checked above); here we check it converges and
        // satisfies the dual constraints
        let data: LabeledData<f64> = generate_planes(
            &PlanesConfig::new(400, 4, 9)
                .with_cluster_sep(0.5)
                .with_flip_fraction(0.1),
        )
        .unwrap();
        let cfg = SmoConfig {
            cost: 0.5,
            shrinking: true,
            ..Default::default()
        };
        let out = train_dense(&data, &cfg).unwrap();
        assert!(out.converged);
        let bounded = out
            .model
            .coef
            .iter()
            .filter(|v| (v.abs() - 0.5).abs() < 1e-9)
            .count();
        assert!(bounded > 50, "expected many bounded SVs, got {bounded}");
        let s: f64 = out.model.coef.iter().sum();
        assert!(s.abs() < 1e-7);
    }

    #[test]
    fn class_weights_shift_the_boundary_toward_the_minority() {
        // imbalanced, overlapping data: 85% positive / 15% negative. With
        // uniform C the minority class gets sacrificed; weighting its C up
        // must recover minority recall.
        use rand::prelude::*;
        use rand::rngs::StdRng;
        let mut rng = StdRng::seed_from_u64(77);
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for i in 0..200 {
            let minority = i % 7 == 0; // ~15%
            let center = if minority { -0.6 } else { 0.6 };
            rows.push(vec![
                center + rng.random_range(-1.2..1.2),
                rng.random_range(-1.0..1.0),
            ]);
            labels.push(if minority { -1.0 } else { 1.0 });
        }
        let data = LabeledData::new(DenseMatrix::from_rows(rows).unwrap(), labels).unwrap();

        let recall_neg = |cfg: &SmoConfig<f64>| -> f64 {
            let out = train_dense(&data, cfg).unwrap();
            let preds = plssvm_core::svm::predict(&out.model, &data.x);
            let neg: Vec<usize> = (0..data.points()).filter(|&i| data.y[i] < 0.0).collect();
            let hit = neg.iter().filter(|&&i| preds[i] < 0.0).count();
            hit as f64 / neg.len() as f64
        };
        let uniform = recall_neg(&SmoConfig {
            cost: 0.2,
            ..Default::default()
        });
        let weighted = recall_neg(&SmoConfig {
            cost: 0.2,
            class_weights: [1.0, 8.0], // make −1 errors 8x more expensive
            ..Default::default()
        });
        assert!(
            weighted > uniform + 0.1,
            "minority recall {uniform:.2} -> {weighted:.2}"
        );

        // bounds respect the per-class C
        let out = train_dense(
            &data,
            &SmoConfig {
                cost: 0.2,
                class_weights: [1.0, 8.0],
                ..Default::default()
            },
        )
        .unwrap();
        for (k, sv) in out.model.sv.rows_iter().enumerate() {
            let idx = (0..data.points()).find(|&t| data.x.row(t) == sv).unwrap();
            let cap = 0.2 * if data.y[idx] > 0.0 { 1.0 } else { 8.0 };
            assert!(out.model.coef[k].abs() <= cap + 1e-9);
        }
    }

    #[test]
    fn invalid_class_weights_rejected() {
        let data: LabeledData<f64> = generate_planes(&PlanesConfig::new(20, 3, 1)).unwrap();
        let cfg = SmoConfig {
            class_weights: [1.0, 0.0],
            ..Default::default()
        };
        assert!(train_dense(&data, &cfg).is_err());
    }

    #[test]
    fn cache_reports_hits() {
        let data = planes(60, 8);
        let out = train_dense(&data, &SmoConfig::default()).unwrap();
        assert!(out.cache.hits > 0, "SMO revisits rows: {:?}", out.cache);
    }

    #[test]
    fn tiny_cache_still_converges() {
        let data = planes(50, 9);
        let big = train_dense(&data, &SmoConfig::default()).unwrap();
        let small = train_dense(
            &data,
            &SmoConfig {
                cache_bytes: 1, // one row only
                ..Default::default()
            },
        )
        .unwrap();
        assert!(small.converged);
        assert_eq!(big.iterations, small.iterations);
        assert!((big.model.rho - small.model.rho).abs() < 1e-10);
        assert!(small.cache.evictions > 0);
    }
}
