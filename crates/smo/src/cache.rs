//! LRU kernel-row cache (LIBSVM's `Cache`).
//!
//! SMO revisits the same working points many times; recomputing a kernel
//! row costs `O(m·d)`, so LIBSVM keeps recently used rows in a fixed-size
//! cache with least-recently-used eviction. This is the equivalent,
//! sized in bytes like LIBSVM's `-m` parameter (default 100 MB).

use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

use parking_lot::Mutex;

use plssvm_data::Real;

/// Cache statistics for instrumentation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Rows served from the cache.
    pub hits: u64,
    /// Rows that had to be computed.
    pub misses: u64,
    /// Rows evicted to stay within budget.
    pub evictions: u64,
}

struct Inner<T> {
    rows: HashMap<usize, (Arc<[T]>, u64)>,
    lru: BTreeMap<u64, usize>,
    stamp: u64,
    stats: CacheStats,
}

/// A byte-budgeted LRU cache of kernel rows.
pub struct KernelCache<T> {
    inner: Mutex<Inner<T>>,
    max_rows: usize,
    row_len: usize,
}

impl<T: Real> KernelCache<T> {
    /// Creates a cache for rows of `row_len` entries within `budget_bytes`
    /// (at least one row is always cached).
    pub fn new(row_len: usize, budget_bytes: usize) -> Self {
        let bytes_per_row = row_len * T::BYTES;
        let max_rows = (budget_bytes / bytes_per_row.max(1)).max(1);
        Self {
            inner: Mutex::new(Inner {
                rows: HashMap::new(),
                lru: BTreeMap::new(),
                stamp: 0,
                stats: CacheStats::default(),
            }),
            max_rows,
            row_len,
        }
    }

    /// Maximum number of rows the budget admits.
    pub fn capacity_rows(&self) -> usize {
        self.max_rows
    }

    /// Fetches row `i`, computing it with `compute` on a miss.
    pub fn get(&self, i: usize, compute: impl FnOnce(&mut [T])) -> Arc<[T]> {
        let mut inner = self.inner.lock();
        inner.stamp += 1;
        let stamp = inner.stamp;
        if let Some((row, old_stamp)) = inner.rows.get(&i).map(|(r, s)| (Arc::clone(r), *s)) {
            inner.lru.remove(&old_stamp);
            inner.lru.insert(stamp, i);
            inner.rows.insert(i, (Arc::clone(&row), stamp));
            inner.stats.hits += 1;
            return row;
        }
        inner.stats.misses += 1;
        // compute outside the map borrow but inside the lock: SMO is
        // single-threaded per solver, so this is not a contention point
        let mut buf = vec![T::ZERO; self.row_len];
        compute(&mut buf);
        let row: Arc<[T]> = buf.into();
        while inner.rows.len() >= self.max_rows {
            let (&oldest, &victim) = inner.lru.iter().next().expect("lru tracks every row");
            inner.lru.remove(&oldest);
            inner.rows.remove(&victim);
            inner.stats.evictions += 1;
        }
        inner.lru.insert(stamp, i);
        inner.rows.insert(i, (Arc::clone(&row), stamp));
        row
    }

    /// Current statistics.
    pub fn stats(&self) -> CacheStats {
        self.inner.lock().stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fill(v: f64) -> impl FnOnce(&mut [f64]) {
        move |out| out.fill(v)
    }

    #[test]
    fn computes_on_miss_serves_on_hit() {
        let cache = KernelCache::<f64>::new(4, 1024);
        let row = cache.get(0, fill(1.0));
        assert_eq!(&row[..], &[1.0; 4]);
        // second access must not recompute
        let row = cache.get(0, |_| panic!("recomputed a cached row"));
        assert_eq!(&row[..], &[1.0; 4]);
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.evictions), (1, 1, 0));
    }

    #[test]
    fn capacity_from_byte_budget() {
        // 4 entries/row × 8 B = 32 B per row; 100 B budget → 3 rows
        let cache = KernelCache::<f64>::new(4, 100);
        assert_eq!(cache.capacity_rows(), 3);
        // degenerate budgets still hold one row
        let cache = KernelCache::<f64>::new(1000, 1);
        assert_eq!(cache.capacity_rows(), 1);
    }

    #[test]
    fn lru_eviction_order() {
        let cache = KernelCache::<f64>::new(2, 2 * 2 * 8); // 2 rows
        cache.get(0, fill(0.0));
        cache.get(1, fill(1.0));
        cache.get(0, fill(99.0)); // touch 0 → 1 becomes LRU
        cache.get(2, fill(2.0)); // evicts 1
        cache.get(0, |_| panic!("0 was evicted but should be resident"));
        let mut recomputed = false;
        cache.get(1, |out| {
            recomputed = true;
            out.fill(1.0);
        });
        assert!(recomputed, "1 must have been evicted");
        assert!(cache.stats().evictions >= 1);
    }

    #[test]
    fn distinct_rows_are_distinct() {
        let cache = KernelCache::<f64>::new(3, 10_000);
        let a = cache.get(5, fill(5.0));
        let b = cache.get(7, fill(7.0));
        assert_eq!(&a[..], &[5.0; 3]);
        assert_eq!(&b[..], &[7.0; 3]);
    }
}
