//! Property-based tests of the SMO baselines: the KKT conditions and dual
//! feasibility must hold at every solution on random data.

use proptest::prelude::*;

use plssvm_data::dense::DenseMatrix;
use plssvm_data::libsvm::LabeledData;
use plssvm_data::model::KernelSpec;
use plssvm_smo::{SmoConfig, ThunderConfig, ThunderSolver};

fn labeled(max_points: usize, max_features: usize) -> impl Strategy<Value = LabeledData<f64>> {
    (4..max_points, 1..max_features)
        .prop_flat_map(|(m, d)| {
            (
                proptest::collection::vec(proptest::collection::vec(-3.0..3.0f64, d..=d), m..=m),
                proptest::collection::vec(prop_oneof![Just(1.0), Just(-1.0)], m..=m),
            )
        })
        .prop_filter("both classes present", |(_, y)| {
            y.iter().any(|&v| v > 0.0) && y.iter().any(|&v| v < 0.0)
        })
        .prop_map(|(rows, y)| LabeledData::new(DenseMatrix::from_rows(rows).unwrap(), y).unwrap())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// SMO solutions are dual-feasible: 0 ≤ α ≤ C and Σ αᵢyᵢ = 0, for both
    /// row providers and several kernels and costs.
    #[test]
    fn smo_solutions_are_dual_feasible(data in labeled(24, 6), c in 0.1..10.0f64, rbf in any::<bool>()) {
        let cfg = SmoConfig {
            kernel: if rbf {
                KernelSpec::Rbf { gamma: 0.5 }
            } else {
                KernelSpec::Linear
            },
            cost: c,
            ..Default::default()
        };
        for sparse in [false, true] {
            let out = if sparse {
                plssvm_smo::solver::train_sparse(&data, &cfg)
            } else {
                plssvm_smo::solver::train_dense(&data, &cfg)
            };
            let out = match out {
                Ok(o) => o,
                // degenerate random data can end with no support vectors
                Err(_) => continue,
            };
            // coefficients are αᵢyᵢ: |coef| ≤ C, and they sum to 0
            let mut sum = 0.0;
            for &coef in &out.model.coef {
                prop_assert!(coef.abs() <= c + 1e-9, "|{coef}| > C={c}");
                sum += coef;
            }
            prop_assert!(sum.abs() < 1e-7, "Σαy = {sum}");
            // dual objective at a feasible nonzero point is negative
            prop_assert!(out.objective <= 1e-12, "objective {}", out.objective);
        }
    }

    /// The batched (ThunderSVM-style) solver maintains the same dual
    /// feasibility invariants.
    #[test]
    fn thunder_solutions_are_dual_feasible(data in labeled(24, 5), ws in 4usize..16) {
        let solver = ThunderSolver::new(ThunderConfig {
            working_set_size: ws,
            ..Default::default()
        })
        .unwrap();
        let out = match solver.train(&data) {
            Ok(o) => o,
            Err(_) => return Ok(()),
        };
        let mut sum = 0.0;
        for &coef in &out.model.coef {
            prop_assert!(coef.abs() <= 1.0 + 1e-9);
            sum += coef;
        }
        prop_assert!(sum.abs() < 1e-7, "Σαy = {sum}");
        prop_assert!(out.kernel_launches >= out.outer_iterations);
    }

    /// Plain SMO and batched SMO agree in prediction on the training set
    /// once both converge (same convex problem).
    #[test]
    fn smo_and_thunder_agree(data in labeled(20, 4)) {
        let smo = plssvm_smo::solver::train_dense(&data, &SmoConfig {
            epsilon: 1e-5,
            ..Default::default()
        });
        let thunder = ThunderSolver::new(ThunderConfig {
            working_set_size: 8,
            epsilon: 1e-5,
            ..Default::default()
        })
        .unwrap()
        .train(&data);
        let (smo, thunder) = match (smo, thunder) {
            (Ok(a), Ok(b)) if a.converged && b.converged => (a, b),
            _ => return Ok(()),
        };
        let a = plssvm_core::svm::predict(&smo.model, &data.x);
        let b = plssvm_core::svm::predict(&thunder.model, &data.x);
        let diff = a.iter().zip(&b).filter(|(x, y)| x != y).count();
        // points on the margin may flip; the bulk must agree
        prop_assert!(diff * 10 <= data.points(), "{diff}/{} differ", data.points());
    }
}
