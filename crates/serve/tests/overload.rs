//! Overload-robustness harness for the serving stack.
//!
//! Two groups. The **deterministic** group runs the engine on a
//! [`ManualClock`] and pins the admission/deadline/drain semantics with
//! zero sleeps: watermark sheds answer `overloaded`, expired requests
//! answer `deadline_exceeded` without spending a batch slot, a draining
//! engine answers `shutting_down` while in-flight requests finish. The
//! **chaos** group drives a real TCP server with seeded adversarial
//! clients — stalled mid-line, byte-at-a-time, mid-line disconnect,
//! open-loop load far above capacity — and asserts the one invariant
//! that matters under overload: every request gets exactly one
//! structured reply, the server never wedges, and no admission slot
//! leaks.

use std::io::{BufRead, BufReader, Cursor, Write};
use std::net::{Shutdown, TcpListener, TcpStream};
use std::sync::atomic::AtomicBool;
use std::sync::Arc;
use std::time::Duration;

use plssvm_core::trace::Telemetry;
use plssvm_serve::{
    serve_lines, serve_tcp, ConnectionOptions, Engine, EngineConfig, ManualClock, Pending,
    ServeModel, ServerControl, SystemClock, DRAIN_ACK, ERR_CLIENT_TIMEOUT_LINE,
    ERR_LINE_TOO_LONG_LINE, ERR_REFUSED_LINE,
};

/// f(x) = x1 - x2 on two features.
const MODEL: &str = "svm_type c_svc\nkernel_type linear\nnr_class 2\ntotal_sv 2\nrho 0\nlabel 1 -1\nnr_sv 1 1\nSV\n1 1:1\n-1 2:1\n";

fn manual_engine(config: EngineConfig, telemetry: &Arc<Telemetry>) -> (Engine, Arc<ManualClock>) {
    let clock = Arc::new(ManualClock::new());
    let engine = Engine::new(
        ServeModel::from_text(MODEL).unwrap(),
        config,
        clock.clone(),
        Some(telemetry.clone() as _),
    );
    (engine, clock)
}

// ---------------------------------------------------------------------
// deterministic group: ManualClock, no sleeps
// ---------------------------------------------------------------------

#[test]
fn watermark_shed_answers_overloaded_and_queued_requests_still_complete() {
    let telemetry = Telemetry::shared();
    let (engine, clock) = manual_engine(
        EngineConfig {
            max_batch: 100,
            max_wait_us: 1_000,
            queue_watermark: 4,
            deadline_us: 0,
        },
        &telemetry,
    );
    // fill the queue to the watermark; nothing flushes (batch far from
    // full, clock frozen before max_wait)
    let queued: Vec<Pending> = (0..4)
        .map(|i| {
            engine
                .handle_line(&format!(r#"{{"id":{i},"features":[3,1]}}"#))
                .unwrap()
        })
        .collect();
    assert_eq!(engine.queue_depth(), 4);
    // the 5th request hits the watermark: shed, id echoed, counted once
    let shed = engine.handle_line(r#"{"id":99,"features":[1,0]}"#).unwrap();
    assert_eq!(
        engine.resolve(shed),
        r#"{"id":99,"error":"overloaded"}"#,
        "watermark shed must answer the structured overload error"
    );
    assert_eq!(
        engine.queue_depth(),
        4,
        "a shed request must not occupy a slot"
    );
    // the admitted requests are unharmed: advance past max_wait, flush
    clock.wait_for_parked(1);
    clock.advance(1_001);
    for (i, p) in queued.into_iter().enumerate() {
        assert_eq!(
            engine.resolve(p),
            format!(r#"{{"id":{i},"label":1,"decision":2.0}}"#)
        );
    }
    engine.shutdown();
    let serve = telemetry.report().serve;
    assert_eq!(serve.shed_overloaded, 1);
    assert_eq!(
        serve.requests, 4,
        "sheds are not counted as served requests"
    );
}

#[test]
fn expired_requests_answer_deadline_exceeded_without_spending_a_batch_slot() {
    let telemetry = Telemetry::shared();
    let (engine, clock) = manual_engine(
        EngineConfig {
            max_batch: 2,
            max_wait_us: 10_000,
            queue_watermark: 0,
            deadline_us: 500,
        },
        &telemetry,
    );
    // one request ages past its deadline before any batch can form
    let a = engine
        .handle_line(r#"{"id":"a","features":[3,1]}"#)
        .unwrap();
    clock.wait_for_parked(1);
    clock.advance(501); // strictly past enq + deadline → expired
    assert_eq!(
        engine.resolve(a),
        r#"{"id":"a","error":"deadline_exceeded"}"#
    );
    // a full batch submitted back-to-back flushes immediately and is
    // served normally — deadlines never slow down live work
    let b = engine
        .handle_line(r#"{"id":"b","features":[3,1]}"#)
        .unwrap();
    let c = engine
        .handle_line(r#"{"id":"c","features":[0,5]}"#)
        .unwrap();
    assert_eq!(engine.resolve(b), r#"{"id":"b","label":1,"decision":2.0}"#);
    assert_eq!(
        engine.resolve(c),
        r#"{"id":"c","label":-1,"decision":-5.0}"#
    );
    engine.shutdown();
    let serve = telemetry.report().serve;
    assert_eq!(serve.shed_deadline, 1);
    assert_eq!(
        serve.batches, 1,
        "the expired request must never form a batch"
    );
    assert_eq!(serve.batch_size_hist.get(&2), Some(&1));
    // an expired-but-admitted request still resolves, as an error
    assert_eq!(serve.requests, 3);
    assert_eq!(serve.request_errors, 1);
}

#[test]
fn deadline_purge_never_delays_live_requests_behind_expired_ones() {
    // an expired request at the queue head must not drag fresh survivors
    // out with it: the expired prefix is answered and the live request
    // stays queued on its own schedule
    let telemetry = Telemetry::shared();
    let (engine, clock) = manual_engine(
        EngineConfig {
            max_batch: 100,
            max_wait_us: 2_000,
            queue_watermark: 0,
            deadline_us: 1_000,
        },
        &telemetry,
    );
    let old = engine
        .handle_line(r#"{"id":"old","features":[3,1]}"#)
        .unwrap();
    clock.wait_for_parked(1);
    clock.advance(900); // old is 900µs in: not yet expired
    let young = engine
        .handle_line(r#"{"id":"young","features":[3,1]}"#)
        .unwrap();
    clock.wait_for_parked(1);
    clock.advance(200); // old: 1100µs > deadline; young: 200µs, live
    assert_eq!(
        engine.resolve(old),
        r#"{"id":"old","error":"deadline_exceeded"}"#
    );
    assert_eq!(
        engine.queue_depth(),
        1,
        "the live request must survive the purge"
    );
    clock.wait_for_parked(1);
    clock.advance(801); // young: 1001µs > deadline → now it expires too
    assert_eq!(
        engine.resolve(young),
        r#"{"id":"young","error":"deadline_exceeded"}"#
    );
    engine.shutdown();
    assert_eq!(telemetry.report().serve.shed_deadline, 2);
}

#[test]
fn draining_engine_finishes_inflight_and_sheds_new_work() {
    let telemetry = Telemetry::shared();
    let (engine, clock) = manual_engine(
        EngineConfig {
            max_batch: 100,
            max_wait_us: 1_000,
            queue_watermark: 0,
            deadline_us: 0,
        },
        &telemetry,
    );
    let inflight = engine.handle_line(r#"{"id":1,"features":[3,1]}"#).unwrap();
    engine.set_draining();
    // new work after the drain flip: structured shutting_down, id echoed
    let shed = engine.handle_line(r#"{"id":2,"features":[3,1]}"#).unwrap();
    assert_eq!(engine.resolve(shed), r#"{"id":2,"error":"shutting_down"}"#);
    // the request admitted before the flip still completes with a result
    clock.wait_for_parked(1);
    clock.advance(1_001);
    assert_eq!(
        engine.resolve(inflight),
        r#"{"id":1,"label":1,"decision":2.0}"#
    );
    engine.shutdown();
    let serve = telemetry.report().serve;
    assert_eq!(serve.shed_draining, 1);
    assert_eq!(serve.requests, 1);
}

/// Deterministic LCG so the seeded load is reproducible byte for byte.
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 33
    }
}

#[test]
fn seeded_overload_stream_gets_exactly_one_reply_per_request() {
    // an open-loop seeded stream far above the watermark through the
    // full pipeline (serve_lines): every non-ignored line must produce
    // exactly one reply, in order, each either a result or a structured
    // error — never silence, never a second line
    let engine = Engine::new(
        ServeModel::from_text(MODEL).unwrap(),
        EngineConfig {
            max_batch: 4,
            max_wait_us: 200,
            queue_watermark: 2,
            deadline_us: 0,
        },
        Arc::new(SystemClock::new()),
        None,
    );
    let mut rng = Lcg(0x5eed);
    let mut input = String::new();
    let mut expected_replies = 0usize;
    for i in 0..400 {
        match rng.next() % 6 {
            0 => input.push_str("# comment line\n"), // ignored
            1 => input.push('\n'),                   // ignored
            2 => {
                let (a, b) = (rng.next() % 9, rng.next() % 9);
                input.push_str(&format!("1 1:{a} 2:{b}\n"));
                expected_replies += 1;
            }
            3 => {
                let (a, b) = (rng.next() % 9, rng.next() % 9);
                input.push_str(&format!("{{\"id\":{i},\"features\":[{a},{b}]}}\n"));
                expected_replies += 1;
            }
            4 => {
                input.push_str("garbage ::: not a request\n"); // parse error
                expected_replies += 1;
            }
            _ => {
                let k = 1 + rng.next() % 7; // sometimes past the model width
                input.push_str(&format!("1 {k}:1\n"));
                expected_replies += 1;
            }
        }
    }
    let mut out: Vec<u8> = Vec::new();
    serve_lines(&engine, Cursor::new(input.into_bytes()), &mut out).unwrap();
    engine.shutdown();
    let out = String::from_utf8(out).unwrap();
    let replies: Vec<&str> = out.lines().collect();
    assert_eq!(
        replies.len(),
        expected_replies,
        "every request line must get exactly one reply"
    );
    for reply in replies {
        let structured = reply.starts_with('{') || reply.parse::<f64>().is_ok();
        assert!(structured, "unstructured reply line: {reply}");
    }
}

// ---------------------------------------------------------------------
// chaos group: real sockets, seeded adversarial clients
// ---------------------------------------------------------------------

struct TcpHarness {
    engine: Arc<Engine>,
    control: Arc<ServerControl>,
    telemetry: Arc<Telemetry>,
    stop: Arc<AtomicBool>,
    addr: std::net::SocketAddr,
    server: Option<std::thread::JoinHandle<std::io::Result<()>>>,
}

impl TcpHarness {
    fn start(
        config: EngineConfig,
        max_connections: usize,
        client_timeout: Option<Duration>,
    ) -> Self {
        let telemetry = Telemetry::shared();
        let engine = Arc::new(Engine::new(
            ServeModel::from_text(MODEL).unwrap(),
            config,
            Arc::new(SystemClock::new()),
            Some(telemetry.clone() as _),
        ));
        let control = Arc::new(ServerControl::new(max_connections));
        let stop = Arc::new(AtomicBool::new(false));
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = {
            let engine = engine.clone();
            let control = control.clone();
            let stop = stop.clone();
            std::thread::spawn(move || {
                serve_tcp(
                    &engine,
                    listener,
                    &control,
                    ConnectionOptions { client_timeout },
                    &stop,
                    &|| {},
                )
            })
        };
        Self {
            engine,
            control,
            telemetry,
            stop,
            addr,
            server: Some(server),
        }
    }

    fn connect(&self) -> TcpStream {
        let s = TcpStream::connect(self.addr).unwrap();
        s.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
        s
    }

    fn join_server(&mut self) {
        self.server
            .take()
            .unwrap()
            .join()
            .expect("server thread must not panic")
            .expect("serve_tcp must exit Ok on drain");
        assert_eq!(
            self.control.active_connections(),
            0,
            "admission slots must all be released after drain"
        );
    }

    /// Stops via the drain flag and joins; asserts a clean exit and that
    /// every admission slot was released.
    fn drain_and_join(mut self) {
        self.stop.store(true, std::sync::atomic::Ordering::SeqCst);
        self.join_server();
        self.engine.shutdown();
    }
}

fn roundtrip(stream: &mut TcpStream, line: &str) -> String {
    stream.write_all(line.as_bytes()).unwrap();
    stream.write_all(b"\n").unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut reply = String::new();
    reader.read_line(&mut reply).unwrap();
    reply.trim_end().to_string()
}

#[test]
fn connections_past_the_cap_get_one_refusal_line_then_eof() {
    let h = TcpHarness::start(
        EngineConfig {
            max_batch: 8,
            max_wait_us: 200,
            ..EngineConfig::default()
        },
        2,
        None,
    );
    // occupy both slots and prove they are live (roundtrip ⇒ registered)
    let mut a = h.connect();
    let mut b = h.connect();
    assert_eq!(roundtrip(&mut a, "1 1:3 2:1"), "1");
    assert_eq!(roundtrip(&mut b, "1 1:0 2:5"), "-1");
    // the third connection is refused with the structured line, then EOF
    let c = h.connect();
    let mut reader = BufReader::new(c);
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    assert_eq!(line.trim_end(), ERR_REFUSED_LINE);
    line.clear();
    assert_eq!(
        reader.read_line(&mut line).unwrap(),
        0,
        "refusal must close the connection"
    );
    // releasing a slot re-opens admission (the slot frees when the
    // server's reader observes the disconnect; retry until it does)
    drop(a);
    let mut d = loop {
        let mut d = h.connect();
        d.write_all(b"1 1:3 2:1\n").unwrap();
        let mut reader = BufReader::new(d.try_clone().unwrap());
        let mut reply = String::new();
        reader.read_line(&mut reply).unwrap();
        if reply.trim_end() == "1" {
            break d;
        }
        assert_eq!(
            reply.trim_end(),
            ERR_REFUSED_LINE,
            "only valid refusals allowed"
        );
    };
    assert_eq!(roundtrip(&mut d, "1:0 2:5"), "-1");
    assert!(h.telemetry.report().serve.refused_connections >= 1);
    drop(b);
    drop(d);
    h.drain_and_join();
}

#[test]
fn stalled_mid_line_client_gets_client_timeout_and_server_lives_on() {
    let h = TcpHarness::start(
        EngineConfig {
            max_batch: 8,
            max_wait_us: 200,
            ..EngineConfig::default()
        },
        4,
        Some(Duration::from_millis(100)),
    );
    // the stalled client: half a request line, then silence
    let stalled = h.connect();
    (&stalled).write_all(b"1 1:3").unwrap();
    let mut reader = BufReader::new(stalled.try_clone().unwrap());
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    assert_eq!(
        line.trim_end(),
        ERR_CLIENT_TIMEOUT_LINE,
        "a stalled client must get the structured timeout line"
    );
    line.clear();
    assert_eq!(
        reader.read_line(&mut line).unwrap(),
        0,
        "timeout must close the connection"
    );
    // the server is unharmed: a well-behaved client still roundtrips
    let mut ok = h.connect();
    assert_eq!(roundtrip(&mut ok, "1 1:3 2:1"), "1");
    drop(ok);
    h.drain_and_join();
}

#[test]
fn byte_at_a_time_client_is_served_and_mid_line_disconnect_never_wedges() {
    let h = TcpHarness::start(
        EngineConfig {
            max_batch: 8,
            max_wait_us: 200,
            ..EngineConfig::default()
        },
        4,
        Some(Duration::from_millis(500)),
    );
    // byte-at-a-time within the budget: a legal slow client, full service
    let slow = h.connect();
    for byte in b"1 1:3 2:1\n" {
        (&slow).write_all(std::slice::from_ref(byte)).unwrap();
        (&slow).flush().unwrap();
    }
    let mut reader = BufReader::new(slow.try_clone().unwrap());
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    assert_eq!(line.trim_end(), "1");
    drop(reader);
    drop(slow);
    // mid-line disconnect: partial line, write half closed — the partial
    // line is delivered at EOF and answered (here: a parse error), and
    // the server must not wedge or leak the slot
    let half = h.connect();
    (&half).write_all(b"1 1:").unwrap();
    half.shutdown(Shutdown::Write).unwrap();
    let mut reader = BufReader::new(half.try_clone().unwrap());
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    assert!(
        line.starts_with("{\"error\":"),
        "a torn final line must still get a structured reply, got {line:?}"
    );
    drop(reader);
    drop(half);
    // an abrupt full disconnect mid-line must also be survivable
    let abrupt = h.connect();
    (&abrupt).write_all(b"1 1:").unwrap();
    drop(abrupt);
    // server still answers
    let mut ok = h.connect();
    assert_eq!(roundtrip(&mut ok, "1:0 2:5"), "-1");
    drop(ok);
    h.drain_and_join();
}

#[test]
fn shutdown_control_line_acks_drains_and_serve_tcp_returns() {
    let mut h = TcpHarness::start(
        EngineConfig {
            max_batch: 8,
            max_wait_us: 200,
            ..EngineConfig::default()
        },
        4,
        None,
    );
    let mut a = h.connect();
    assert_eq!(roundtrip(&mut a, "1 1:3 2:1"), "1");
    // drain via the wire, not the signal: ack first, then the listener
    // closes and serve_tcp returns without the stop flag ever flipping
    let mut op = h.connect();
    assert_eq!(roundtrip(&mut op, "shutdown"), DRAIN_ACK);
    h.join_server();
    assert!(h.engine.is_draining());
    assert!(h.control.is_draining());
    h.engine.shutdown();
}

#[test]
fn open_loop_load_far_above_capacity_answers_every_request_exactly_once() {
    // 8 pipelined clients × 60 requests against a watermark of 8: well
    // past what the queue admits. The invariant: each client reads back
    // exactly one structured reply per request, in order, and the server
    // drains cleanly afterwards with zero leaked slots.
    const CLIENTS: usize = 8;
    const PER_CLIENT: usize = 60;
    let h = TcpHarness::start(
        EngineConfig {
            max_batch: 4,
            max_wait_us: 500,
            queue_watermark: 8,
            deadline_us: 2_000,
        },
        CLIENTS,
        Some(Duration::from_secs(10)),
    );
    let mut handles = Vec::new();
    for c in 0..CLIENTS {
        let stream = h.connect();
        handles.push(std::thread::spawn(move || {
            let mut rng = Lcg(0xc0ffee + c as u64);
            let reader = BufReader::new(stream.try_clone().unwrap());
            let writer = std::thread::spawn(move || {
                let mut stream = stream;
                // open loop: fire everything without waiting for replies
                for i in 0..PER_CLIENT {
                    let (a, b) = (rng.next() % 9, rng.next() % 9);
                    let line = format!("{{\"id\":\"{c}-{i}\",\"features\":[{a},{b}]}}\n");
                    stream.write_all(line.as_bytes()).unwrap();
                }
                stream.flush().unwrap();
                stream
            });
            let mut outcomes = Vec::with_capacity(PER_CLIENT);
            let mut lines = reader.lines();
            for i in 0..PER_CLIENT {
                let line = lines
                    .next()
                    .unwrap_or_else(|| panic!("client {c}: missing reply {i}"))
                    .unwrap();
                // ordered: each reply echoes the id we sent at that index
                assert!(
                    line.contains(&format!("\"id\":\"{c}-{i}\"")),
                    "client {c}: reply {i} out of order: {line}"
                );
                let class = if line.contains("\"label\":") {
                    "ok"
                } else if line.contains("\"error\":\"overloaded\"") {
                    "overloaded"
                } else if line.contains("\"error\":\"deadline_exceeded\"") {
                    "deadline_exceeded"
                } else if line.contains("\"error\":\"shutting_down\"") {
                    "shutting_down"
                } else {
                    panic!("client {c}: unstructured reply: {line}")
                };
                outcomes.push(class);
            }
            let _ = writer.join().unwrap();
            outcomes
        }));
    }
    let (mut ok, mut overloaded, mut expired, mut draining) = (0u64, 0u64, 0u64, 0u64);
    for handle in handles {
        let outcomes = handle.join().unwrap();
        assert_eq!(outcomes.len(), PER_CLIENT);
        for class in outcomes {
            match class {
                "ok" => ok += 1,
                "overloaded" => overloaded += 1,
                "deadline_exceeded" => expired += 1,
                _ => draining += 1,
            }
        }
    }
    assert_eq!(
        (ok + overloaded + expired + draining) as usize,
        CLIENTS * PER_CLIENT
    );
    // the client-side tallies must agree exactly with the server's
    // counters: every line accounted once, nothing double-counted
    let serve = h.telemetry.report().serve;
    assert_eq!(
        ok + expired,
        serve.requests,
        "admitted = served ok + expired"
    );
    assert_eq!(expired, serve.shed_deadline);
    assert_eq!(overloaded, serve.shed_overloaded);
    assert_eq!(draining, serve.shed_draining);
    assert_eq!(draining, 0, "nothing drained during the load phase");
    assert!(
        serve.requests >= 1,
        "the first request always finds an empty queue and is admitted"
    );
    h.drain_and_join();
}

#[test]
fn binary_garbage_and_oversized_lines_get_structured_errors_not_drops() {
    let h = TcpHarness::start(
        EngineConfig {
            max_batch: 8,
            max_wait_us: 200,
            ..EngineConfig::default()
        },
        4,
        Some(Duration::from_secs(5)),
    );
    // invalid UTF-8: lossily decoded, answered as a parse error
    let garbage = h.connect();
    (&garbage).write_all(&[0xFF, 0xFE, 0x80, b'\n']).unwrap();
    let mut reader = BufReader::new(garbage.try_clone().unwrap());
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    assert!(
        line.starts_with("{\"error\":"),
        "binary garbage must get a structured reply: {line:?}"
    );
    drop(reader);
    drop(garbage);
    // an endless unterminated line: the server answers line_too_long and
    // closes instead of buffering forever. The close can RST the tail of
    // the client's stream, so tolerate a torn read — the pinned-format
    // assertion lives in the net.rs unit test; here we prove no wedge.
    let big = h.connect();
    {
        let mut w = std::io::BufWriter::new(big.try_clone().unwrap());
        let chunk = vec![b'x'; 64 * 1024];
        for _ in 0..20 {
            // 20 × 64 KiB > MAX_LINE_BYTES (1 MiB)
            if w.write_all(&chunk).is_err() {
                break; // server already gave up on us — expected
            }
        }
        let _ = w.flush();
    }
    let mut reader = BufReader::new(big.try_clone().unwrap());
    let mut line = String::new();
    match reader.read_line(&mut line) {
        Ok(0) | Err(_) => {} // reply lost to the reset: still no wedge
        Ok(_) => assert_eq!(line.trim_end(), ERR_LINE_TOO_LONG_LINE),
    }
    drop(reader);
    drop(big);
    // the server survives both abusers
    let mut ok = h.connect();
    assert_eq!(roundtrip(&mut ok, "1 1:3 2:1"), "1");
    drop(ok);
    h.drain_and_join();
}
