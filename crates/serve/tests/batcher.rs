//! Deterministic micro-batcher tests: every timing behavior is driven by
//! the injected [`ManualClock`] — time only moves when the test says so,
//! and [`ManualClock::wait_for_parked`] gives a rendezvous with the
//! worker thread. No sleeps, no flaky timing margins.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use plssvm_serve::{Batcher, Clock, ManualClock, SystemClock, Ticket};

/// Shared log of every batch the worker processed.
type BatchLog = Arc<Mutex<Vec<Vec<u64>>>>;

/// Records every processed batch while echoing requests back.
fn echo_batcher(
    max_batch: usize,
    max_wait_us: u64,
    clock: Arc<ManualClock>,
) -> (Batcher<u64, u64>, BatchLog) {
    let batches: BatchLog = Arc::new(Mutex::new(Vec::new()));
    let seen = Arc::clone(&batches);
    let batcher = Batcher::new(
        max_batch,
        max_wait_us,
        clock,
        None,
        move |reqs: Vec<u64>| {
            seen.lock().unwrap().push(reqs.clone());
            reqs
        },
    );
    (batcher, batches)
}

#[test]
fn flushes_immediately_on_max_batch_without_time_moving() {
    let clock = Arc::new(ManualClock::new());
    let (batcher, batches) = echo_batcher(3, 1_000_000, Arc::clone(&clock));

    let tickets: Vec<Ticket<u64>> = (0..3).map(|i| batcher.submit(i)).collect();
    for (i, t) in tickets.iter().enumerate() {
        assert_eq!(t.wait(), Some(i as u64));
    }
    // the deadline is far in the future and time never advanced: the
    // flush can only have been size-triggered
    assert_eq!(clock.now_us(), 0);
    assert_eq!(batches.lock().unwrap().as_slice(), &[vec![0, 1, 2]]);
    batcher.shutdown();
}

#[test]
fn holds_partial_batch_until_deadline_then_flushes() {
    let clock = Arc::new(ManualClock::new());
    let (batcher, batches) = echo_batcher(100, 1_000, Arc::clone(&clock));

    let ticket = batcher.submit(7);
    // 999 µs: one tick before the deadline — the batch must NOT flush.
    // now < deadline holds no matter how threads interleave, so this
    // assertion is race-free.
    clock.advance(999);
    clock.wait_for_parked(1);
    assert!(ticket.is_pending(), "flushed before its deadline");
    assert!(batches.lock().unwrap().is_empty());

    // the 1000th µs crosses the deadline: flush happens
    clock.advance(1);
    assert_eq!(ticket.wait(), Some(7));
    assert_eq!(batches.lock().unwrap().as_slice(), &[vec![7]]);
    batcher.shutdown();
}

#[test]
fn oversized_backlog_flushes_fifo_within_and_across_batches() {
    let clock = Arc::new(ManualClock::new());
    let (batcher, batches) = echo_batcher(2, 500, Arc::clone(&clock));

    let tickets: Vec<Ticket<u64>> = (0..5).map(|i| batcher.submit(i)).collect();
    // the lone 5th request needs its deadline to pass
    clock.advance(500);
    for (i, t) in tickets.iter().enumerate() {
        assert_eq!(t.wait(), Some(i as u64), "response routed to wrong ticket");
    }
    // FIFO across batches: concatenating the batches reproduces the
    // submission order exactly, and no batch exceeds max_batch
    let batches = batches.lock().unwrap();
    let flat: Vec<u64> = batches.iter().flatten().copied().collect();
    assert_eq!(flat, vec![0, 1, 2, 3, 4]);
    assert!(batches.iter().all(|b| b.len() <= 2));
    batcher.shutdown();
}

#[test]
fn deadline_tracks_oldest_request_not_newest() {
    let clock = Arc::new(ManualClock::new());
    let (batcher, _batches) = echo_batcher(100, 1_000, Arc::clone(&clock));

    let old = batcher.submit(1);
    clock.wait_for_parked(1);
    clock.advance(900);
    // a late arrival must NOT extend the oldest request's deadline
    let young = batcher.submit(2);
    clock.advance(100);
    assert_eq!(old.wait(), Some(1));
    assert_eq!(young.wait(), Some(2));
    batcher.shutdown();
}

#[test]
fn shutdown_drains_queued_requests_without_deadline() {
    let clock = Arc::new(ManualClock::new());
    let (batcher, _) = echo_batcher(100, u64::MAX / 2, Arc::clone(&clock));

    let tickets: Vec<Ticket<u64>> = (0..4).map(|i| batcher.submit(i)).collect();
    // time never reaches the (enormous) deadline: only the shutdown
    // drain can flush these
    batcher.shutdown();
    for (i, t) in tickets.iter().enumerate() {
        assert_eq!(t.wait(), Some(i as u64), "request dropped on shutdown");
    }
    // post-shutdown submissions are refused with a closed ticket
    assert_eq!(batcher.submit(99).wait(), None);
}

#[test]
fn processor_panic_closes_its_batch_and_worker_survives() {
    let clock: Arc<ManualClock> = Arc::new(ManualClock::new());
    let batcher = Batcher::new(
        1,
        0,
        clock as Arc<dyn plssvm_serve::Clock>,
        None,
        |reqs: Vec<u64>| {
            if reqs.contains(&13) {
                panic!("poison request");
            }
            reqs
        },
    );
    assert_eq!(batcher.submit(1).wait(), Some(1));
    // the poisoned batch is closed (None), not hung
    assert_eq!(batcher.submit(13).wait(), None);
    // and the worker thread survived to serve the next request
    assert_eq!(batcher.submit(2).wait(), Some(2));
    batcher.shutdown();
}

#[test]
fn arity_mismatch_closes_unanswered_tickets() {
    let clock: Arc<dyn plssvm_serve::Clock> = Arc::new(ManualClock::new());
    // a buggy processor returning one response for a two-request batch
    let batcher = Batcher::new(2, u64::MAX / 2, clock, None, |reqs: Vec<u64>| vec![reqs[0]]);
    let a = batcher.submit(10);
    let b = batcher.submit(20);
    assert_eq!(a.wait(), Some(10));
    assert_eq!(b.wait(), None, "unanswered ticket must close, not hang");
    batcher.shutdown();
}

/// Seeded interleaved-submitter stress: several client threads pipeline
/// requests concurrently; every response must route back to exactly the
/// ticket that submitted it, in per-thread FIFO order.
#[test]
fn concurrent_submitters_get_correctly_routed_responses() {
    // MMIX LCG, fixed seeds -> reproducible payload schedule
    fn lcg(state: &mut u64) -> u64 {
        *state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        *state >> 33
    }

    for seed in [1u64, 42, 0xDEAD_BEEF] {
        let clock = Arc::new(SystemClock::new());
        let processed = Arc::new(AtomicUsize::new(0));
        let counter = Arc::clone(&processed);
        // identity-with-bookkeeping processor
        let batcher = Arc::new(Batcher::new(8, 200, clock, None, move |reqs: Vec<u64>| {
            counter.fetch_add(reqs.len(), Ordering::SeqCst);
            reqs
        }));

        const THREADS: u64 = 4;
        const PER_THREAD: u64 = 50;
        std::thread::scope(|s| {
            for t in 0..THREADS {
                let batcher = Arc::clone(&batcher);
                let mut rng = seed ^ (t + 1);
                s.spawn(move || {
                    // pipeline: submit a window of requests, then wait in
                    // submission order
                    let mut window: Vec<(u64, Ticket<u64>)> = Vec::new();
                    for i in 0..PER_THREAD {
                        let payload = (t << 32) | (i << 16) | (lcg(&mut rng) & 0xFFFF);
                        window.push((payload, batcher.submit(payload)));
                        if window.len() >= 6 {
                            let (expect, ticket) = window.remove(0);
                            assert_eq!(ticket.wait(), Some(expect), "cross-routed response");
                        }
                    }
                    for (expect, ticket) in window {
                        assert_eq!(ticket.wait(), Some(expect), "cross-routed response");
                    }
                });
            }
        });
        assert_eq!(
            processed.load(Ordering::SeqCst),
            (THREADS * PER_THREAD) as usize
        );
        batcher.shutdown();
    }
}
