//! Hot-reload tests: swapping models mid-stream must never drop a
//! request, never answer from a half-loaded model, and must reject torn
//! or garbage model files while the old model keeps serving. The
//! kill-during-swap cases re-exec this test binary as a child that
//! aborts at an injected stage of the model rewrite (the PR 5
//! crash-injection pattern), then assert the surviving model file is
//! always a complete, servable generation.

use std::path::{Path, PathBuf};
use std::process::Command;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use plssvm_core::trace::Telemetry;
use plssvm_data::write_atomic;
use plssvm_serve::{
    attempt_reload, BreakerConfig, Engine, EngineConfig, ManualClock, ManualTrigger, ReloadAttempt,
    ReloadBreaker, ServeModel, SystemClock,
};

/// Model A: f(x) = x1 − x2, so `1 1:1` answers `1`.
const MODEL_A: &str = "svm_type c_svc\nkernel_type linear\nnr_class 2\ntotal_sv 2\nrho 0\nlabel 1 -1\nnr_sv 1 1\nSV\n1 1:1\n-1 2:1\n";
/// Model B: f(x) = x2 − x1, so `1 1:1` answers `-1`.
const MODEL_B: &str = "svm_type c_svc\nkernel_type linear\nnr_class 2\ntotal_sv 2\nrho 0\nlabel 1 -1\nnr_sv 1 1\nSV\n1 2:1\n-1 1:1\n";

/// Marks a spawned process as the kill-during-swap child.
const STAGE_ENV: &str = "PLSSVM_SERVE_CRASH_STAGE";
/// Scratch directory handed to the child.
const DIR_ENV: &str = "PLSSVM_SERVE_CRASH_DIR";

fn scratch_dir(label: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "plssvm-serve-reload-{}-{label}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn engine_from(model: &str) -> Engine {
    Engine::new(
        ServeModel::from_text(model).unwrap(),
        EngineConfig {
            max_batch: 4,
            max_wait_us: 200,
            ..EngineConfig::default()
        },
        Arc::new(SystemClock::new()),
        None,
    )
}

/// Swap models while four client threads hammer the engine: every
/// request gets exactly one answer, every answer comes from a complete
/// model (A's or B's — a half-loaded model would error or crash), and
/// per client the answers flip from A to B at most once (a batch formed
/// after the install can never be served by the old generation).
#[test]
fn hot_swap_mid_stream_drops_and_mixes_nothing() {
    let dir = scratch_dir("midstream");
    let path = dir.join("model.txt");
    write_atomic(&path, MODEL_A.as_bytes()).unwrap();

    let engine = Arc::new(engine_from(MODEL_A));
    let done = Arc::new(AtomicUsize::new(0));

    std::thread::scope(|s| {
        for _ in 0..4 {
            let engine = Arc::clone(&engine);
            let done = Arc::clone(&done);
            s.spawn(move || {
                let mut answers = Vec::with_capacity(100);
                for _ in 0..100 {
                    let r = engine.respond_line("1 1:1").unwrap();
                    assert!(r == "1" || r == "-1", "unexpected response: {r}");
                    answers.push(r);
                    done.fetch_add(1, Ordering::SeqCst);
                }
                assert_eq!(answers.len(), 100, "a request was dropped");
                // monotone flip: once a client sees the new model, it
                // never sees the old one again
                let first_b = answers.iter().position(|a| a == "-1");
                if let Some(i) = first_b {
                    assert!(
                        answers[i..].iter().all(|a| a == "-1"),
                        "old generation answered after the new one: {answers:?}"
                    );
                }
            });
        }
        // let the stream run, then swap mid-flight
        while done.load(Ordering::SeqCst) < 50 {
            std::thread::yield_now();
        }
        write_atomic(&path, MODEL_B.as_bytes()).unwrap();
        attempt_reload(&engine, &path).unwrap();
    });

    // after the install, the new model serves — always
    assert_eq!(engine.generation(), 2);
    assert_eq!(engine.respond_line("1 1:1").as_deref(), Some("-1"));
    engine.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Garbage and truncated model files are rejected by validation; the old
/// model keeps serving and a later good file still swaps in.
#[test]
fn torn_and_garbage_files_are_rejected_while_old_model_serves() {
    let dir = scratch_dir("torn");
    let path = dir.join("model.txt");
    write_atomic(&path, MODEL_A.as_bytes()).unwrap();
    let engine = Arc::new(engine_from(MODEL_A));

    let (trigger, handle) = ManualTrigger::new();
    let watcher = plssvm_serve::spawn_watcher(Arc::clone(&engine), path.clone(), Box::new(trigger));

    // torn file: the first half of a valid model (header survives, the
    // SV block is cut mid-row)
    std::fs::write(&path, &MODEL_B.as_bytes()[..MODEL_B.len() / 2]).unwrap();
    handle.fire();
    // garbage file
    std::fs::write(&path, b"\x00\xff not a model \xfe").unwrap();
    handle.fire();
    drop(handle);
    watcher.join().unwrap();

    assert_eq!(
        engine.generation(),
        1,
        "rejected reloads must not bump the generation"
    );
    assert_eq!(engine.respond_line("1 1:1").as_deref(), Some("1"));

    // recovery: a complete file swaps in fine afterwards
    write_atomic(&path, MODEL_B.as_bytes()).unwrap();
    attempt_reload(&engine, &path).unwrap();
    assert_eq!(engine.respond_line("1 1:1").as_deref(), Some("-1"));
    engine.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------------
// Reload-failure storms: the circuit breaker on a ManualClock.
// ---------------------------------------------------------------------------

/// A reload-failure storm must engage the breaker at the threshold, back
/// off exponentially (emitting telemetry), keep the old generation
/// serving bit-identically throughout, and recover fully — counters
/// reset — the moment a good file lands after the window.
#[test]
fn reload_failure_storm_engages_breaker_and_recovers() {
    let dir = scratch_dir("storm");
    let path = dir.join("model.txt");
    write_atomic(&path, MODEL_A.as_bytes()).unwrap();

    let telemetry = Telemetry::shared();
    let clock = Arc::new(ManualClock::new());
    let engine = Engine::new(
        ServeModel::from_text(MODEL_A).unwrap(),
        EngineConfig {
            max_batch: 1,
            max_wait_us: 0,
            ..EngineConfig::default()
        },
        clock.clone(),
        Some(telemetry.clone() as _),
    );
    let probe = engine.respond_line("1 1:1").unwrap();
    assert_eq!(probe, "1");

    let mut breaker = ReloadBreaker::new(BreakerConfig {
        threshold: 3,
        base_backoff_us: 1_000_000,
        max_backoff_us: 4_000_000,
    });
    std::fs::write(&path, b"\x00garbage, not a model\xff").unwrap();

    // failures below the threshold: plain rejections, no backoff yet
    for expected_failures in 1..3u64 {
        assert!(matches!(
            breaker.attempt(&engine, &path),
            ReloadAttempt::Rejected(_)
        ));
        assert_eq!(breaker.consecutive_failures(), expected_failures);
        assert_eq!(
            engine.respond_line("1 1:1").unwrap(),
            probe,
            "old model must keep serving bit-identically"
        );
    }
    assert!(telemetry.report().serve.reload_backoffs.is_empty());

    // the threshold-th failure opens the breaker: 1s window at t=0
    assert!(matches!(
        breaker.attempt(&engine, &path),
        ReloadAttempt::Rejected(_)
    ));
    assert!(matches!(
        breaker.attempt(&engine, &path),
        ReloadAttempt::Suppressed {
            until_us: 1_000_000
        }
    ));
    // suppressed attempts never touch the file: even a vanished file
    // cannot produce an error inside the window
    std::fs::remove_file(&path).unwrap();
    assert!(matches!(
        breaker.attempt(&engine, &path),
        ReloadAttempt::Suppressed { .. }
    ));
    std::fs::write(&path, b"\x00garbage, not a model\xff").unwrap();

    // the window elapses: next failure doubles the backoff (2s)…
    clock.advance(1_000_000);
    assert!(matches!(
        breaker.attempt(&engine, &path),
        ReloadAttempt::Rejected(_)
    ));
    clock.advance(1_999_999);
    assert!(matches!(
        breaker.attempt(&engine, &path),
        ReloadAttempt::Suppressed {
            until_us: 3_000_000
        }
    ));
    // …and the one after caps at max_backoff (4s, not 8s)
    clock.advance(1);
    assert!(matches!(
        breaker.attempt(&engine, &path),
        ReloadAttempt::Rejected(_)
    ));
    assert_eq!(breaker.consecutive_failures(), 5);
    assert_eq!(
        engine.generation(),
        1,
        "no failed reload may bump the generation"
    );
    assert_eq!(engine.respond_line("1 1:1").unwrap(), probe);

    // a good file after the window recovers and fully resets the breaker
    clock.advance(4_000_000);
    write_atomic(&path, MODEL_B.as_bytes()).unwrap();
    assert!(matches!(
        breaker.attempt(&engine, &path),
        ReloadAttempt::Installed(2)
    ));
    assert_eq!(breaker.consecutive_failures(), 0);
    assert_eq!(engine.respond_line("1 1:1").as_deref(), Some("-1"));

    // the reset is total: a fresh failure starts the count from one
    std::fs::write(&path, b"\x00garbage again\xff").unwrap();
    assert!(matches!(
        breaker.attempt(&engine, &path),
        ReloadAttempt::Rejected(_)
    ));
    assert_eq!(breaker.consecutive_failures(), 1);

    // the backoff audit trail: exactly the three windows, doubling to the cap
    let samples = telemetry.report().serve.reload_backoffs;
    let trail: Vec<(u64, u64)> = samples
        .iter()
        .map(|s| (s.consecutive_failures, s.backoff_us))
        .collect();
    assert_eq!(trail, vec![(3, 1_000_000), (4, 2_000_000), (5, 4_000_000)]);
    engine.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------------
// Kill-during-swap: re-exec this binary, abort mid-rewrite.
// ---------------------------------------------------------------------------

fn run_child(stage: &str, dir: &Path) {
    let path = dir.join("model.txt");
    match stage {
        // crash while the temp file is being written: the model path must
        // be untouched (write_atomic never opens it directly)
        "temp" => {
            let tmp = dir.join(format!(".model.txt.tmp.{}.0", std::process::id()));
            std::fs::write(&tmp, &MODEL_B.as_bytes()[..MODEL_B.len() / 3]).unwrap();
            std::process::abort();
        }
        // crash right after the atomic write completed: the rename is
        // durable, the new model is fully in place
        "rename" => {
            write_atomic(&path, MODEL_B.as_bytes()).unwrap();
            std::process::abort();
        }
        other => panic!("unknown stage '{other}'"),
    }
}

/// Child dispatcher: an immediate pass in normal runs; with the marker
/// environment set it performs the staged rewrite and dies by abort.
#[test]
fn child_entry() {
    if let (Ok(stage), Ok(dir)) = (std::env::var(STAGE_ENV), std::env::var(DIR_ENV)) {
        run_child(&stage, Path::new(&dir));
        panic!("kill-during-swap child completed without crashing");
    }
}

fn spawn_crashing_child(stage: &str, dir: &Path) {
    let exe = std::env::current_exe().unwrap();
    let status = Command::new(exe)
        .args(["child_entry", "--exact", "--test-threads=1"])
        .env(STAGE_ENV, stage)
        .env(DIR_ENV, dir)
        .status()
        .unwrap();
    assert!(
        status.code().is_none(),
        "child at stage '{stage}' should die by signal (abort), got {status:?}"
    );
}

/// A writer killed mid-temp-write leaves the model path untouched: the
/// old model keeps serving, and a reload attempt re-installs the same
/// complete old model (never a torn one).
#[test]
fn killed_during_temp_write_leaves_old_model_serving() {
    let dir = scratch_dir("kill-temp");
    let path = dir.join("model.txt");
    write_atomic(&path, MODEL_A.as_bytes()).unwrap();

    spawn_crashing_child("temp", &dir);

    assert_eq!(
        std::fs::read_to_string(&path).unwrap(),
        MODEL_A,
        "model path must be untouched"
    );
    let engine = engine_from(MODEL_A);
    // a reload triggered by the (leftover) directory activity still
    // loads a complete model — the old one
    attempt_reload(&engine, &path).unwrap();
    assert_eq!(engine.respond_line("1 1:1").as_deref(), Some("1"));
    engine.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// A writer killed right after the atomic rename leaves the complete new
/// model in place: the reload installs it.
#[test]
fn killed_after_rename_serves_complete_new_model() {
    let dir = scratch_dir("kill-rename");
    let path = dir.join("model.txt");
    write_atomic(&path, MODEL_A.as_bytes()).unwrap();

    spawn_crashing_child("rename", &dir);

    assert_eq!(
        std::fs::read_to_string(&path).unwrap(),
        MODEL_B,
        "rename must be complete"
    );
    let engine = engine_from(MODEL_A);
    attempt_reload(&engine, &path).unwrap();
    assert_eq!(engine.respond_line("1 1:1").as_deref(), Some("-1"));
    engine.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}
