//! Wire-protocol mutation corpus (the PR 4 LCG pattern extended to the
//! serving layer): mutated request lines must produce structured
//! per-request errors — never a panic, never a wedged engine. After
//! every hostile input the engine must still answer a known-good query.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

use plssvm_serve::{parse_line, Engine, EngineConfig, ServeModel, SystemClock};

/// Deterministic 64-bit LCG (MMIX constants); no external RNG crates.
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 33
    }

    fn below(&mut self, bound: usize) -> usize {
        (self.next() % bound.max(1) as u64) as usize
    }
}

/// f(x) = x1 − x2 over 2 features; `1 1:1` answers `1`.
const MODEL: &str = "svm_type c_svc\nkernel_type linear\nnr_class 2\ntotal_sv 2\nrho 0\nlabel 1 -1\nnr_sv 1 1\nSV\n1 1:1\n-1 2:1\n";

/// Valid LIBSVM-format request lines.
const LIBSVM_SEED: &str = "\
1 1:0.5 2:1.25
-1 2:-2e-1
1:1e3 2:-1
-1
# comment
";

/// Valid JSON-format request lines.
const JSON_SEED: &str = "\
{\"id\": 1, \"features\": [0.5, -1.5]}
{\"features\": [2]}
{\"id\": \"r-2\", \"features\": [], \"meta\": {\"k\": [1, null, true]}}
{\"id\": -3.5, \"features\": [1e2, -0.25]}
";

/// Hostile wire tokens: overflowing indices, non-finite values,
/// truncated pairs, malformed JSON, deep nesting, huge length claims.
const NASTY_TOKENS: &[&str] = &[
    "4294967295:1",
    "18446744073709551615:1",
    "16777217:1",
    "1:1e999999999",
    "nan",
    "nan:nan",
    ":",
    "1:",
    ":1",
    "0:1",
    "-1:5",
    "1:1:1",
    "0x41",
    "{",
    "}",
    "{\"features\"",
    "{\"features\":}",
    "{\"features\":[}",
    "{\"features\":[1,]}",
    "{\"features\":[1,2],}",
    "{\"id\":}",
    "{\"id\":\"unterminated",
    "{\"id\":\"\\u12\"}",
    "{\"features\":[1], \"features\":[2,3]}",
    "{\"features\":[1e999]}",
    "null",
    "[1,2]",
    "\"just a string\"",
];

fn mutate(seed: &str, rng: &mut Lcg) -> String {
    let mut bytes = seed.as_bytes().to_vec();
    match rng.below(6) {
        // flip a random byte
        0 => {
            if !bytes.is_empty() {
                let i = rng.below(bytes.len());
                bytes[i] ^= 1 << rng.below(8);
            }
        }
        // truncate at a random point
        1 => {
            let i = rng.below(bytes.len() + 1);
            bytes.truncate(i);
        }
        // splice a hostile token at a random position
        2 => {
            let tok = NASTY_TOKENS[rng.below(NASTY_TOKENS.len())];
            let i = rng.below(bytes.len() + 1);
            bytes.splice(i..i, tok.bytes());
        }
        // replace a whole line with a hostile token
        3 => {
            let mut lines: Vec<&str> = seed.lines().collect();
            if !lines.is_empty() {
                let i = rng.below(lines.len());
                lines[i] = NASTY_TOKENS[rng.below(NASTY_TOKENS.len())];
            }
            bytes = lines.join("\n").into_bytes();
        }
        // duplicate a random line
        4 => {
            let mut lines: Vec<&str> = seed.lines().collect();
            if !lines.is_empty() {
                let i = rng.below(lines.len());
                lines.insert(i, lines[i]);
            }
            bytes = lines.join("\n").into_bytes();
        }
        // concatenate two random lines (joins a JSON object to a LIBSVM row)
        _ => {
            let mut lines: Vec<String> = seed.lines().map(str::to_owned).collect();
            if lines.len() >= 2 {
                let i = rng.below(lines.len() - 1);
                let tail = lines.remove(i + 1);
                lines[i].push_str(&tail);
            }
            bytes = lines.join("\n").into_bytes();
        }
    }
    String::from_utf8_lossy(&bytes).into_owned()
}

fn engine() -> Engine {
    Engine::new(
        ServeModel::from_text(MODEL).unwrap(),
        EngineConfig {
            max_batch: 1,
            max_wait_us: 0,
            ..EngineConfig::default()
        },
        Arc::new(SystemClock::new()),
        None,
    )
}

#[test]
fn mutated_wire_lines_never_panic_and_never_wedge_the_engine() {
    let prev_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));

    let e = engine();
    let mut failures = Vec::new();
    for (seed_name, seed) in [("libsvm", LIBSVM_SEED), ("json", JSON_SEED)] {
        let mut rng = Lcg(0x0005_e12e ^ seed.len() as u64);
        for round in 0..300 {
            let mutant = mutate(seed, &mut rng);
            for line in mutant.lines() {
                // the parser alone must never panic
                if catch_unwind(AssertUnwindSafe(|| {
                    let _ = parse_line(line);
                }))
                .is_err()
                {
                    failures.push(format!(
                        "parse_line panicked on seed '{seed_name}' round {round}: {line:?}"
                    ));
                    continue;
                }
                // the full engine round-trip must answer (or skip) the
                // line without panicking or hanging
                if catch_unwind(AssertUnwindSafe(|| {
                    let _ = e.respond_line(line);
                }))
                .is_err()
                {
                    failures.push(format!(
                        "engine panicked on seed '{seed_name}' round {round}: {line:?}"
                    ));
                }
            }
        }
        // the engine survived the whole corpus and still serves
        assert_eq!(e.respond_line("1 1:1").as_deref(), Some("1"));
    }
    e.shutdown();

    std::panic::set_hook(prev_hook);
    assert!(failures.is_empty(), "{}", failures.join("\n"));
}

#[test]
fn hostile_one_liners_get_structured_errors_not_wedges() {
    let e = engine();
    for &tok in NASTY_TOKENS {
        let response = e.respond_line(tok);
        // every hostile token must either be ignored (never the case for
        // these, but allowed by contract) or answered with one line —
        // malformed ones with a structured error object
        if let Some(r) = &response {
            assert!(!r.is_empty(), "empty response for {tok:?}");
            assert!(!r.contains('\n'), "multi-line response for {tok:?}");
        }
        // and the engine keeps serving after each one
        assert_eq!(
            e.respond_line("1 1:1").as_deref(),
            Some("1"),
            "engine wedged after {tok:?}"
        );
    }
    e.shutdown();
}

#[test]
fn error_responses_are_themselves_valid_protocol_lines() {
    let e = engine();
    // a malformed JSON request echoes its id inside a JSON error object
    let r = e
        .respond_line("{\"id\": 7, \"features\": [1, \"x\"]}")
        .unwrap();
    assert!(r.starts_with("{\"id\":7,\"error\":"), "{r}");
    // out-of-range feature indices are per-request errors with the model
    // width in the message
    let r = e.respond_line("1 9:1").unwrap();
    assert!(r.contains("expects 2 features"), "{r}");
    e.shutdown();
}
