//! Reload under storage faults: a degraded disk (short reads, bit rot,
//! EIO) at the model path must be *rejected like garbage* — the old
//! generation keeps serving, every rejection lands in the telemetry
//! audit trail, a failure storm opens the reload breaker, and the first
//! clean read after the faults clear installs the new model and fully
//! resets the breaker.

use std::path::PathBuf;
use std::sync::Arc;

use plssvm_core::trace::Telemetry;
use plssvm_data::vfs::{FaultKind, FaultPlan, FaultVfs, OpClass};
use plssvm_data::write_atomic;
use plssvm_serve::{
    attempt_reload_with, BreakerConfig, Engine, EngineConfig, ManualClock, ReloadAttempt,
    ReloadBreaker, ServeModel,
};

/// Model A: f(x) = x1 − x2, so `1 1:1` answers `1`.
const MODEL_A: &str = "svm_type c_svc\nkernel_type linear\nnr_class 2\ntotal_sv 2\nrho 0\nlabel 1 -1\nnr_sv 1 1\nSV\n1 1:1\n-1 2:1\n";
/// Model B: f(x) = x2 − x1, so `1 1:1` answers `-1`.
const MODEL_B: &str = "svm_type c_svc\nkernel_type linear\nnr_class 2\ntotal_sv 2\nrho 0\nlabel 1 -1\nnr_sv 1 1\nSV\n1 2:1\n-1 1:1\n";

fn scratch_dir(label: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "plssvm-serve-reload-faults-{}-{label}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn engine_on(clock: Arc<ManualClock>, telemetry: Arc<Telemetry>) -> Engine {
    Engine::new(
        ServeModel::from_text(MODEL_A).unwrap(),
        EngineConfig {
            max_batch: 1,
            max_wait_us: 0,
            ..EngineConfig::default()
        },
        clock,
        Some(telemetry),
    )
}

/// A persistently torn read (short read / bit rot) at the model path is
/// rejected on every attempt: the generation never moves and the old
/// model keeps answering.
#[test]
fn torn_reads_never_install_and_the_old_model_keeps_serving() {
    let dir = scratch_dir("torn");
    let path = dir.join("model.txt");
    write_atomic(&path, MODEL_B.as_bytes()).unwrap();

    let telemetry = Telemetry::shared();
    let engine = engine_on(Arc::new(ManualClock::new()), Arc::clone(&telemetry));

    for kind in [FaultKind::ShortRead, FaultKind::BitRot, FaultKind::Eio] {
        let vfs =
            FaultVfs::new(FaultPlan::new().fault(kind, OpClass::Read, 0, Some("model"), true));
        let attempt = attempt_reload_with(&engine, &vfs, &path);
        assert!(
            attempt.is_err(),
            "{kind:?}: damaged read must be rejected, got {attempt:?}"
        );
        assert!(vfs.total_injected() >= 1, "{kind:?}: fault must have fired");
    }
    assert_eq!(engine.generation(), 1, "no damaged model may install");
    assert_eq!(
        engine.respond_line("1 1:1").as_deref(),
        Some("1"),
        "the old generation must keep serving"
    );

    // every rejection is in the audit trail, none accepted
    let report = telemetry.report();
    let rejected = report.serve.reloads.iter().filter(|r| !r.accepted).count();
    assert_eq!(rejected, 3, "{:?}", report.serve.reloads);
    assert!(report.serve.reloads.iter().all(|r| !r.accepted));

    engine.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// A read-fault storm drives the breaker exactly like a garbage-file
/// storm: threshold rejections open it (backoff telemetry), attempts
/// inside the window are suppressed without touching the disk, and the
/// first clean read after the clock passes the window installs the new
/// model and resets the breaker.
#[test]
fn read_fault_storm_opens_the_breaker_and_a_clean_read_resets_it() {
    let dir = scratch_dir("storm");
    let path = dir.join("model.txt");
    write_atomic(&path, MODEL_B.as_bytes()).unwrap();

    let clock = Arc::new(ManualClock::new());
    let telemetry = Telemetry::shared();
    let engine = engine_on(Arc::clone(&clock), Arc::clone(&telemetry));

    // exactly three transient read faults on the model path, then clean
    let plan = FaultPlan::new()
        .fault(FaultKind::ShortRead, OpClass::Read, 0, Some("model"), false)
        .fault(FaultKind::BitRot, OpClass::Read, 1, Some("model"), false)
        .fault(FaultKind::Eio, OpClass::Read, 2, Some("model"), false);
    let vfs = FaultVfs::new(plan);

    let config = BreakerConfig {
        threshold: 3,
        base_backoff_us: 1_000_000,
        max_backoff_us: 60_000_000,
    };
    let mut breaker = ReloadBreaker::new(config);

    for i in 0..3 {
        let attempt = breaker.attempt_with(&engine, &vfs, &path);
        assert!(
            matches!(attempt, ReloadAttempt::Rejected(_)),
            "attempt {i}: expected rejection, got {attempt:?}"
        );
    }
    assert_eq!(breaker.consecutive_failures(), 3);

    // breaker open: suppressed without consuming a read operation
    let reads_before = vfs.ops(OpClass::Read);
    match breaker.attempt_with(&engine, &vfs, &path) {
        ReloadAttempt::Suppressed { until_us } => assert_eq!(until_us, 1_000_000),
        other => panic!("expected suppression inside the window, got {other:?}"),
    }
    assert_eq!(
        vfs.ops(OpClass::Read),
        reads_before,
        "a suppressed attempt must not touch the disk"
    );
    assert_eq!(engine.generation(), 1);

    // past the backoff window the faults are exhausted: clean install
    clock.advance(1_000_000);
    match breaker.attempt_with(&engine, &vfs, &path) {
        ReloadAttempt::Installed(generation) => assert_eq!(generation, 2),
        other => panic!("expected install after faults cleared, got {other:?}"),
    }
    assert_eq!(breaker.consecutive_failures(), 0, "success resets fully");
    assert_eq!(
        engine.respond_line("1 1:1").as_deref(),
        Some("-1"),
        "the new generation must serve"
    );

    let report = telemetry.report();
    assert_eq!(
        report.serve.reloads.iter().filter(|r| !r.accepted).count(),
        3
    );
    assert_eq!(
        report.serve.reloads.iter().filter(|r| r.accepted).count(),
        1
    );
    assert_eq!(
        report.serve.reload_backoffs.len(),
        1,
        "{:?}",
        report.serve.reload_backoffs
    );
    assert_eq!(report.serve.reload_backoffs[0].consecutive_failures, 3);
    assert_eq!(vfs.total_injected(), 3);

    engine.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Seeded chaos at the serve loader: whatever a random plan injects,
/// an attempt either installs the genuine new model or rejects with a
/// structured error — the serving generation is never corrupt.
#[test]
fn seeded_read_chaos_never_installs_a_corrupt_model() {
    let dir = scratch_dir("seeded");
    let path = dir.join("model.txt");
    write_atomic(&path, MODEL_B.as_bytes()).unwrap();

    for seed in 0..16u64 {
        let telemetry = Telemetry::shared();
        let engine = engine_on(Arc::new(ManualClock::new()), Arc::clone(&telemetry));
        let vfs = FaultVfs::new(FaultPlan::seeded(seed, 16));
        for _ in 0..8 {
            match attempt_reload_with(&engine, &vfs, &path) {
                Ok(_) => {
                    // an accepted reload must be the genuine article
                    assert_eq!(engine.respond_line("1 1:1").as_deref(), Some("-1"));
                }
                Err(e) => {
                    assert!(!e.is_empty(), "rejections carry a structured reason");
                    // old or previously installed generation still serves
                    let r = engine.respond_line("1 1:1").unwrap();
                    assert!(r == "1" || r == "-1", "unexpected response: {r}");
                }
            }
        }
        engine.shutdown();
    }
    let _ = std::fs::remove_dir_all(&dir);
}
