//! The serving engine: wire lines in, response lines out.
//!
//! [`Engine`] owns the model slot, the micro-batcher and the telemetry
//! hooks. Requests flow `handle_line` → (micro-batch queue) → the
//! panelized prediction path → `resolve`. The model lives behind a
//! generation-counted `Arc` swap: [`Engine::install`] replaces the slot
//! only after the new model fully loaded and validated, and an in-flight
//! batch keeps its own `Arc` clone — so a hot reload never drops a
//! request and never exposes a half-loaded model.
//!
//! Requests stay *sparse* until their batch is formed, then densify
//! against whatever model generation is current at that moment. A reload
//! that changes the feature count therefore turns stale-shaped requests
//! into structured per-request errors instead of panics.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

use plssvm_core::trace::{MetricsSink, ServeRequestSample, ServeShedKind};
use plssvm_data::dense::DenseMatrix;

use crate::batcher::{Batcher, BatcherConfig, Shed, Ticket};
use crate::clock::Clock;
use crate::model::{Prediction, ServeModel};
use crate::protocol::{
    format_response, parse_line, ParsedLine, Query, QueryFormat, ERR_DEADLINE, ERR_OVERLOADED,
    ERR_SHUTTING_DOWN,
};

/// Micro-batching and admission knobs.
#[derive(Debug, Clone, Copy)]
pub struct EngineConfig {
    /// Flush a batch as soon as this many requests are queued.
    pub max_batch: usize,
    /// Flush a batch once its oldest request has waited this long (µs).
    pub max_wait_us: u64,
    /// Shed requests with `overloaded` once this many are already
    /// queued; `0` disables shedding (unbounded queue, PR 7 behavior).
    pub queue_watermark: usize,
    /// Answer `deadline_exceeded` to any request that queued strictly
    /// longer than this (µs) without spending a batch slot on it; `0`
    /// disables deadlines.
    pub deadline_us: u64,
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self {
            max_batch: 64,
            max_wait_us: 2_000,
            queue_watermark: 1_024,
            deadline_us: 0,
        }
    }
}

/// A model generation: the loaded model plus its install counter.
#[derive(Debug)]
pub struct Generation {
    /// Monotone install counter (1 = the model the engine started with).
    pub id: u64,
    /// The loaded, validated model.
    pub model: ServeModel,
}

type Job = Vec<(usize, f64)>;
type Outcome = Result<Prediction, String>;

/// A submitted request waiting for its response.
#[derive(Debug)]
pub enum Pending {
    /// The line failed to parse: answer immediately, nothing was queued.
    Immediate {
        /// Wire format the line was recognized as.
        format: QueryFormat,
        /// Request id, if one was parseable.
        id: Option<String>,
        /// The parse error.
        message: String,
    },
    /// The request is queued in the micro-batcher.
    Queued {
        /// Wire format to answer in.
        format: QueryFormat,
        /// Request id to echo.
        id: Option<String>,
        /// The response slot its batch will fill.
        ticket: Ticket<Outcome>,
        /// Submission timestamp (clock µs) for latency accounting.
        submitted_us: u64,
    },
    /// The request was shed at admission (queue watermark hit, or the
    /// server is draining): answer immediately with the structured
    /// overload error. Already counted as a shed, not a served request.
    Shed {
        /// Wire format to answer in.
        format: QueryFormat,
        /// Request id to echo.
        id: Option<String>,
        /// Why it was shed (selects the error message).
        kind: ServeShedKind,
    },
}

/// The batched inference engine.
pub struct Engine {
    batcher: Batcher<Job, Outcome>,
    slot: Arc<Mutex<Arc<Generation>>>,
    clock: Arc<dyn Clock>,
    metrics: Option<Arc<dyn MetricsSink>>,
    draining: AtomicBool,
}

impl Engine {
    /// Builds an engine serving `model` with the given batching knobs.
    pub fn new(
        model: ServeModel,
        config: EngineConfig,
        clock: Arc<dyn Clock>,
        metrics: Option<Arc<dyn MetricsSink>>,
    ) -> Self {
        let slot = Arc::new(Mutex::new(Arc::new(Generation { id: 1, model })));
        let process_slot = Arc::clone(&slot);
        let batcher_config = BatcherConfig {
            max_batch: config.max_batch,
            max_wait_us: config.max_wait_us,
            queue_watermark: config.queue_watermark,
            deadline_us: config.deadline_us,
        };
        let batcher = Batcher::with_config(
            batcher_config,
            Arc::clone(&clock),
            metrics.clone(),
            Some(Box::new(|_job: Job| Err(ERR_DEADLINE.to_string()))),
            move |jobs: Vec<Job>| {
                // snapshot the generation ONCE per batch: every request in
                // the batch is answered by the same fully-loaded model
                let generation = Arc::clone(&lock_slot(&process_slot));
                process_batch(&generation.model, jobs)
            },
        );
        Self {
            batcher,
            slot,
            clock,
            metrics,
            draining: AtomicBool::new(false),
        }
    }

    /// Parses one wire line. `None` means the line needs no response
    /// (blank/comment); otherwise resolve the returned [`Pending`] —
    /// in submission order — to get the response line.
    pub fn handle_line(&self, line: &str) -> Option<Pending> {
        match parse_line(line) {
            ParsedLine::Ignored => None,
            ParsedLine::Error {
                format,
                id,
                message,
            } => Some(Pending::Immediate {
                format,
                id,
                message,
            }),
            ParsedLine::Query(q) => Some(self.submit(q)),
        }
    }

    /// Queues a parsed request into the micro-batcher, or sheds it when
    /// the server is draining or the queue is at its watermark. Sheds
    /// are counted here (at the decision point), exactly once.
    pub fn submit(&self, query: Query) -> Pending {
        let Query {
            id,
            entries,
            format,
        } = query;
        if self.draining.load(Ordering::SeqCst) {
            return self.shed(format, id, ServeShedKind::ShuttingDown);
        }
        let submitted_us = self.clock.now_us();
        match self.batcher.try_submit(entries) {
            Ok(ticket) => Pending::Queued {
                format,
                id,
                ticket,
                submitted_us,
            },
            Err(Shed::Overloaded { .. }) => self.shed(format, id, ServeShedKind::Overloaded),
            Err(Shed::ShuttingDown) => self.shed(format, id, ServeShedKind::ShuttingDown),
        }
    }

    fn shed(&self, format: QueryFormat, id: Option<String>, kind: ServeShedKind) -> Pending {
        if let Some(metrics) = &self.metrics {
            metrics.record_serve_shed(kind);
        }
        Pending::Shed { format, id, kind }
    }

    /// Blocks until the request's batch completes and formats its
    /// response line (no trailing newline). Records request telemetry.
    pub fn resolve(&self, pending: Pending) -> String {
        match pending {
            Pending::Immediate {
                format,
                id,
                message,
            } => {
                self.record_request(0, false);
                format_response(format, id.as_deref(), &Err(message))
            }
            Pending::Queued {
                format,
                id,
                ticket,
                submitted_us,
            } => {
                let outcome = ticket
                    .wait()
                    .unwrap_or_else(|| Err("internal error: request dropped by server".into()));
                let latency = self.clock.now_us().saturating_sub(submitted_us);
                self.record_request(latency, outcome.is_ok());
                format_response(format, id.as_deref(), &outcome)
            }
            Pending::Shed { format, id, kind } => {
                let message = match kind {
                    // connection refusals never reach here (they are
                    // handled before a request exists), but a capacity
                    // refusal is still "overloaded" if one ever did
                    ServeShedKind::Overloaded | ServeShedKind::RefusedConnection => ERR_OVERLOADED,
                    ServeShedKind::DeadlineExceeded => ERR_DEADLINE,
                    ServeShedKind::ShuttingDown => ERR_SHUTTING_DOWN,
                };
                format_response(format, id.as_deref(), &Err(message.to_string()))
            }
        }
    }

    /// Convenience: `handle_line` + `resolve` in one call (used by tests
    /// and the stdin serving mode's degenerate single-thread path).
    pub fn respond_line(&self, line: &str) -> Option<String> {
        self.handle_line(line).map(|p| self.resolve(p))
    }

    /// Atomically installs a new model generation and returns its id.
    /// In-flight batches finish on the generation they snapshotted.
    pub fn install(&self, model: ServeModel) -> u64 {
        let mut slot = lock_slot(&self.slot);
        let id = slot.id + 1;
        *slot = Arc::new(Generation { id, model });
        id
    }

    /// The currently-installed generation id.
    pub fn generation(&self) -> u64 {
        lock_slot(&self.slot).id
    }

    /// `(kind, features, total_sv)` of the current model, for status
    /// messages.
    pub fn model_info(&self) -> (&'static str, usize, usize) {
        let g = Arc::clone(&lock_slot(&self.slot));
        (g.model.kind(), g.model.features(), g.model.total_sv())
    }

    /// The engine's clock (shared with the batcher).
    pub fn clock(&self) -> &Arc<dyn Clock> {
        &self.clock
    }

    /// The engine's metrics sink, if any (the reload watcher records its
    /// accept/reject audit trail through it).
    pub fn metrics(&self) -> Option<&Arc<dyn MetricsSink>> {
        self.metrics.as_ref()
    }

    /// Requests currently waiting in the micro-batch queue.
    pub fn queue_depth(&self) -> usize {
        self.batcher.queue_depth()
    }

    /// Flips the engine to draining: every request submitted from now
    /// on is shed with `shutting_down`, while requests already queued
    /// finish on their generation. Idempotent; the batcher keeps running
    /// until [`Engine::shutdown`] so in-flight tickets still resolve.
    pub fn set_draining(&self) {
        self.draining.store(true, Ordering::SeqCst);
    }

    /// Whether [`Engine::set_draining`] has been called.
    pub fn is_draining(&self) -> bool {
        self.draining.load(Ordering::SeqCst)
    }

    /// Stops the batcher, draining all queued requests first.
    pub fn shutdown(&self) {
        self.batcher.shutdown();
    }

    fn record_request(&self, latency_us: u64, ok: bool) {
        if let Some(metrics) = &self.metrics {
            metrics.record_serve_request(ServeRequestSample { latency_us, ok });
        }
    }
}

fn lock_slot(slot: &Mutex<Arc<Generation>>) -> std::sync::MutexGuard<'_, Arc<Generation>> {
    slot.lock().unwrap_or_else(|e| e.into_inner())
}

/// Densifies the sparse jobs against `model` and predicts the valid ones
/// in one panel call; out-of-range jobs get per-request errors.
fn process_batch(model: &ServeModel, jobs: Vec<Job>) -> Vec<Outcome> {
    let features = model.features();
    let mut outcomes: Vec<Option<Outcome>> = Vec::with_capacity(jobs.len());
    let mut valid: Vec<usize> = Vec::with_capacity(jobs.len());
    for (j, job) in jobs.iter().enumerate() {
        match job.iter().map(|(i, _)| *i).max() {
            Some(max) if max >= features => outcomes.push(Some(Err(format!(
                "query uses feature index {} but the model expects {features} features",
                max + 1
            )))),
            _ => {
                valid.push(j);
                outcomes.push(None);
            }
        }
    }
    if !valid.is_empty() {
        let mut x = DenseMatrix::<f64>::zeros(valid.len(), features);
        for (row, &j) in valid.iter().enumerate() {
            for &(i, v) in &jobs[j] {
                x.set(row, i, v);
            }
        }
        match model.predict_batch(&x) {
            Ok(preds) => {
                for (&j, p) in valid.iter().zip(preds) {
                    outcomes[j] = Some(Ok(p));
                }
            }
            Err(e) => {
                for &j in &valid {
                    outcomes[j] = Some(Err(e.clone()));
                }
            }
        }
    }
    outcomes
        .into_iter()
        .map(|o| o.unwrap_or_else(|| Err("internal error: unprocessed job".into())))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::SystemClock;

    const BINARY: &str = "svm_type c_svc\nkernel_type linear\nnr_class 2\ntotal_sv 2\nrho 0\nlabel 1 -1\nnr_sv 1 1\nSV\n1 1:1\n-1 2:1\n";

    fn engine() -> Engine {
        Engine::new(
            ServeModel::from_text(BINARY).unwrap(),
            EngineConfig {
                max_batch: 1,
                max_wait_us: 0,
                ..EngineConfig::default()
            },
            Arc::new(SystemClock::new()),
            None,
        )
    }

    #[test]
    fn serves_libsvm_and_json_lines() {
        let e = engine();
        // f(x) = x1 - x2
        assert_eq!(e.respond_line("1 1:3 2:1").as_deref(), Some("1"));
        assert_eq!(e.respond_line("1:0 2:5").as_deref(), Some("-1"));
        assert_eq!(
            e.respond_line(r#"{"id":7,"features":[3,1]}"#).as_deref(),
            Some(r#"{"id":7,"label":1,"decision":2.0}"#)
        );
        assert_eq!(e.respond_line("# comment"), None);
        assert_eq!(e.respond_line(""), None);
        e.shutdown();
    }

    #[test]
    fn malformed_and_out_of_range_requests_get_structured_errors() {
        let e = engine();
        let r = e.respond_line("garbage line ::").unwrap();
        assert!(r.starts_with(r#"{"error":"#), "{r}");
        // feature index past the model's width: caught at densify time
        let r = e.respond_line("1 5:1").unwrap();
        assert!(r.contains("expects 2 features"), "{r}");
        // the engine still serves fine afterwards
        assert_eq!(e.respond_line("1 1:1").as_deref(), Some("1"));
        e.shutdown();
    }

    #[test]
    fn install_swaps_generation_and_flips_answers() {
        let e = engine();
        assert_eq!(e.generation(), 1);
        assert_eq!(e.respond_line("1 1:3").as_deref(), Some("1"));
        // a model with swapped support vectors: f(x) = x2 - x1
        let flipped = BINARY.replace("1 1:1\n-1 2:1\n", "1 2:1\n-1 1:1\n");
        let gen = e.install(ServeModel::from_text(&flipped).unwrap());
        assert_eq!(gen, 2);
        assert_eq!(e.generation(), 2);
        assert_eq!(e.respond_line("1 1:3").as_deref(), Some("-1"));
        let (kind, features, total_sv) = e.model_info();
        assert_eq!((kind, features, total_sv), ("binary", 2, 2));
        e.shutdown();
    }

    #[test]
    fn shutdown_sheds_later_submissions_without_hanging() {
        let e = engine();
        e.shutdown();
        let r = e.respond_line("1 1:1").unwrap();
        assert_eq!(r, r#"{"error":"shutting_down"}"#);
    }

    #[test]
    fn draining_engine_sheds_new_requests_but_parse_errors_stay_parse_errors() {
        let e = engine();
        e.set_draining();
        assert!(e.is_draining());
        // new well-formed requests: structured shutting_down, id echoed
        assert_eq!(
            e.respond_line(r#"{"id":3,"features":[1,0]}"#).as_deref(),
            Some(r#"{"id":3,"error":"shutting_down"}"#)
        );
        assert_eq!(
            e.respond_line("1 1:1").as_deref(),
            Some(r#"{"error":"shutting_down"}"#)
        );
        // malformed lines still answer with their parse error
        let r = e.respond_line("garbage ::").unwrap();
        assert!(r.contains("error") && !r.contains("shutting_down"), "{r}");
        // comments still need no reply
        assert_eq!(e.respond_line("# c"), None);
        e.shutdown();
    }
}
