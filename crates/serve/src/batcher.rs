//! The bounded micro-batching queue: requests coalesce until `max_batch`
//! of them are pending or the oldest has waited `max_wait_us`, then flush
//! as one batch into the panelized prediction path.
//!
//! The design is testable-first, split in two layers:
//!
//! * [`BatchQueue`] — a *pure* state machine. `push` and `poll` take the
//!   current time as an explicit argument and never block, so every
//!   flush-on-max-batch vs flush-on-deadline interleaving is pinned by a
//!   plain unit test with hand-picked timestamps.
//! * [`Batcher`] — the threaded wrapper: one worker thread drives the
//!   queue against an injected [`Clock`], submitters get a [`Ticket`]
//!   (one-shot slot) their response is routed back through. With a
//!   [`crate::clock::ManualClock`] the worker's timing behavior is
//!   deterministic; with the [`crate::clock::SystemClock`] it serves real
//!   traffic.
//!
//! Ordering guarantee: batches preserve FIFO submission order, both
//! within a batch (queue order) and across batches (an earlier request is
//! never flushed later than a later one).
//!
//! Overload policy (both knobs default off in [`Batcher::new`], on via
//! [`BatcherConfig`]):
//!
//! * **Watermark shed** — [`Batcher::try_submit`] refuses once the queue
//!   holds `queue_watermark` requests, so the backlog (and therefore
//!   worst-case queueing latency) is bounded instead of growing without
//!   limit under sustained overload.
//! * **Dequeue-time deadlines** — a request that already waited longer
//!   than `deadline_us` when its batch is taken is split into
//!   [`Flush::expired`] and answered through the `expire` hook without
//!   ever occupying a batch slot, so overload never wastes compute on
//!   answers nobody is waiting for.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

use plssvm_core::trace::{MetricsSink, ServeBatchSample, ServeShedKind};

use crate::clock::Clock;

/// Batching and admission knobs for a [`Batcher`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatcherConfig {
    /// Flush when this many requests are pending (clamped to ≥ 1).
    pub max_batch: usize,
    /// Flush when the oldest pending request is this old (clock µs).
    pub max_wait_us: u64,
    /// Shed new submissions once the queue already holds this many
    /// requests; `0` disables the watermark (unbounded queue).
    pub queue_watermark: usize,
    /// Per-request queueing deadline in clock µs, enforced at dequeue
    /// time: a request that waited *strictly longer* than this is
    /// expired instead of batched. `0` disables deadlines.
    pub deadline_us: u64,
}

impl Default for BatcherConfig {
    fn default() -> Self {
        Self {
            max_batch: 64,
            max_wait_us: 2_000,
            queue_watermark: 1_024,
            deadline_us: 0,
        }
    }
}

/// Why [`Batcher::try_submit`] refused a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Shed {
    /// The queue is at or above its watermark; `depth` is the observed
    /// backlog at refusal time.
    Overloaded {
        /// Queue depth observed when the request was shed.
        depth: usize,
    },
    /// The batcher is shutting down (draining); no new work is admitted.
    ShuttingDown,
}

/// What [`BatchQueue::poll`] decided.
#[derive(Debug, PartialEq, Eq)]
pub enum QueuePoll<R> {
    /// A batch is due: process it now.
    Ready(Flush<R>),
    /// Requests are pending but the batch is neither full nor overdue —
    /// wait until the contained deadline (µs) unless new work arrives.
    WaitUntil(u64),
    /// Nothing is queued.
    Empty,
}

/// One flushed batch plus its queue bookkeeping.
#[derive(Debug, PartialEq, Eq)]
pub struct Flush<R> {
    /// The coalesced requests, in FIFO submission order. May be empty
    /// when a poll woke only to expire overdue requests.
    pub items: Vec<R>,
    /// Requests that waited past their deadline, in FIFO order; they are
    /// answered `deadline_exceeded` and never occupy a batch slot.
    pub expired: Vec<R>,
    /// How long the oldest request in the batch queued, in clock µs.
    pub oldest_wait_us: u64,
    /// Requests still queued after this batch was taken.
    pub remaining: usize,
}

/// The pure micro-batching state machine (no threads, no clock — time is
/// an argument).
#[derive(Debug)]
pub struct BatchQueue<R> {
    items: VecDeque<(R, u64)>,
    max_batch: usize,
    max_wait_us: u64,
    deadline_us: u64,
}

impl<R> BatchQueue<R> {
    /// A queue flushing at `max_batch` requests (clamped to ≥ 1) or when
    /// the oldest pending request is `max_wait_us` old, with no
    /// per-request deadline.
    pub fn new(max_batch: usize, max_wait_us: u64) -> Self {
        Self::with_deadline(max_batch, max_wait_us, 0)
    }

    /// Like [`BatchQueue::new`], but a request that queued strictly
    /// longer than `deadline_us` is expired at dequeue time (`0`
    /// disables deadlines).
    pub fn with_deadline(max_batch: usize, max_wait_us: u64, deadline_us: u64) -> Self {
        Self {
            items: VecDeque::new(),
            max_batch: max_batch.max(1),
            max_wait_us,
            deadline_us,
        }
    }

    /// The instant (clock µs) at which a request enqueued at `enq` goes
    /// from "late" to "expired": strictly past its deadline, so a wake
    /// scheduled exactly here always observes the expiry.
    fn expiry_at(&self, enq: u64) -> u64 {
        debug_assert!(self.deadline_us > 0);
        enq.saturating_add(self.deadline_us).saturating_add(1)
    }

    /// Enqueues a request observed at `now_us`.
    pub fn push(&mut self, item: R, now_us: u64) {
        self.items.push_back((item, now_us));
    }

    /// Number of queued requests.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Decides, at `now_us`, whether a batch is due: full (`max_batch`
    /// pending), overdue (oldest pending request past `max_wait_us`), or
    /// — with deadlines on — the oldest request strictly past
    /// `deadline_us` (it must be expired promptly, not left to rot until
    /// the flush timer fires).
    pub fn poll(&mut self, now_us: u64) -> QueuePoll<R> {
        let Some((_, oldest)) = self.items.front() else {
            return QueuePoll::Empty;
        };
        let flush_at = oldest.saturating_add(self.max_wait_us);
        let expiry_at = if self.deadline_us > 0 {
            self.expiry_at(*oldest)
        } else {
            u64::MAX
        };
        if self.items.len() >= self.max_batch || now_us >= flush_at.min(expiry_at) {
            QueuePoll::Ready(self.take_batch(now_us, false))
        } else {
            QueuePoll::WaitUntil(flush_at.min(expiry_at))
        }
    }

    /// Takes a batch immediately regardless of the flush timer (shutdown
    /// drain). Requests already past their deadline still expire.
    pub fn flush_now(&mut self, now_us: u64) -> QueuePoll<R> {
        if self.items.is_empty() {
            QueuePoll::Empty
        } else {
            QueuePoll::Ready(self.take_batch(now_us, true))
        }
    }

    fn take_batch(&mut self, now_us: u64, force: bool) -> Flush<R> {
        // enqueue timestamps are non-decreasing (one monotonic clock), so
        // everything expired sits in a prefix of the FIFO
        let mut expired = Vec::new();
        if self.deadline_us > 0 {
            while let Some((_, enq)) = self.items.front() {
                if now_us >= self.expiry_at(*enq) {
                    expired.push(self.items.pop_front().expect("front exists").0);
                } else {
                    break;
                }
            }
        }
        // after expiring the prefix, the survivors may be neither full
        // nor overdue (the wake was for the expiry alone): leave them
        // queued rather than flushing an undersized batch early
        let due = force
            || self.items.len() >= self.max_batch
            || self
                .items
                .front()
                .is_some_and(|(_, enq)| now_us >= enq.saturating_add(self.max_wait_us));
        let n = if due {
            self.items.len().min(self.max_batch)
        } else {
            0
        };
        let mut items = Vec::with_capacity(n);
        let mut oldest_wait_us = 0;
        for i in 0..n {
            let (item, enqueued) = self.items.pop_front().expect("n <= len");
            if i == 0 {
                oldest_wait_us = now_us.saturating_sub(enqueued);
            }
            items.push(item);
        }
        Flush {
            items,
            expired,
            oldest_wait_us,
            remaining: self.items.len(),
        }
    }
}

#[derive(Debug)]
enum TicketSlot<S> {
    Pending,
    Done(S),
    /// The batcher dropped the request without an answer (processor
    /// panic, or shutdown before submission) — the submitter sees `None`.
    Closed,
}

#[derive(Debug)]
struct TicketState<S> {
    slot: Mutex<TicketSlot<S>>,
    cv: Condvar,
}

/// A one-shot response slot: the submitter blocks on [`Ticket::wait`],
/// the batcher worker fills it when the request's batch completes.
#[derive(Debug)]
pub struct Ticket<S> {
    state: Arc<TicketState<S>>,
}

impl<S> Clone for Ticket<S> {
    fn clone(&self) -> Self {
        Self {
            state: Arc::clone(&self.state),
        }
    }
}

impl<S> Default for Ticket<S> {
    fn default() -> Self {
        Self::new()
    }
}

impl<S> Ticket<S> {
    /// A fresh, unfilled ticket.
    pub fn new() -> Self {
        Self {
            state: Arc::new(TicketState {
                slot: Mutex::new(TicketSlot::Pending),
                cv: Condvar::new(),
            }),
        }
    }

    /// A ticket that is already closed (used when submitting after
    /// shutdown).
    pub fn closed() -> Self {
        let t = Self::new();
        t.close();
        t
    }

    /// Blocks until the response arrives; `None` means the request was
    /// dropped without an answer (processor panic or shutdown race) —
    /// callers turn that into a structured internal error, never a hang.
    pub fn wait(&self) -> Option<S> {
        let mut slot = self.state.slot.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            match std::mem::replace(&mut *slot, TicketSlot::Pending) {
                TicketSlot::Done(v) => return Some(v),
                TicketSlot::Closed => {
                    *slot = TicketSlot::Closed;
                    return None;
                }
                TicketSlot::Pending => {
                    slot = self.state.cv.wait(slot).unwrap_or_else(|e| e.into_inner());
                }
            }
        }
    }

    /// Non-blocking probe: `true` while neither filled nor closed (lets
    /// deterministic tests assert "no flush has happened yet").
    pub fn is_pending(&self) -> bool {
        matches!(
            *self.state.slot.lock().unwrap_or_else(|e| e.into_inner()),
            TicketSlot::Pending
        )
    }

    fn fill(&self, v: S) {
        let mut slot = self.state.slot.lock().unwrap_or_else(|e| e.into_inner());
        *slot = TicketSlot::Done(v);
        self.state.cv.notify_all();
    }

    fn close(&self) {
        let mut slot = self.state.slot.lock().unwrap_or_else(|e| e.into_inner());
        if matches!(*slot, TicketSlot::Pending) {
            *slot = TicketSlot::Closed;
        }
        self.state.cv.notify_all();
    }
}

type Process<R, S> = dyn Fn(Vec<R>) -> Vec<S> + Send + Sync;
type Expire<R, S> = dyn Fn(R) -> S + Send + Sync;

struct BatcherShared<R, S> {
    queue: Mutex<BatchQueue<(R, Ticket<S>)>>,
    watermark: usize,
    clock: Arc<dyn Clock>,
    process: Box<Process<R, S>>,
    /// Maps an expired request to its `deadline_exceeded` response;
    /// absent (deadline off), expired tickets would be closed instead.
    expire: Option<Box<Expire<R, S>>>,
    metrics: Option<Arc<dyn MetricsSink>>,
    shutdown: AtomicBool,
}

/// The threaded micro-batcher: submit requests from any thread, a single
/// worker coalesces them through a [`BatchQueue`] and routes each
/// response back through the submitter's [`Ticket`].
pub struct Batcher<R, S> {
    shared: Arc<BatcherShared<R, S>>,
    worker: Mutex<Option<JoinHandle<()>>>,
}

impl<R: Send + 'static, S: Send + 'static> Batcher<R, S> {
    /// Spawns the worker. `process` maps a batch of requests to exactly
    /// one response per request, in order; if it panics or returns the
    /// wrong arity, the affected tickets are *closed* (submitters see
    /// `None`) instead of hanging.
    pub fn new(
        max_batch: usize,
        max_wait_us: u64,
        clock: Arc<dyn Clock>,
        metrics: Option<Arc<dyn MetricsSink>>,
        process: impl Fn(Vec<R>) -> Vec<S> + Send + Sync + 'static,
    ) -> Self {
        let config = BatcherConfig {
            max_batch,
            max_wait_us,
            queue_watermark: 0,
            deadline_us: 0,
        };
        Self::with_config(config, clock, metrics, None, process)
    }

    /// Like [`Batcher::new`], but with the full admission policy: a
    /// queue watermark for [`Batcher::try_submit`] and a per-request
    /// deadline. `expire` maps a request that waited past its deadline
    /// to the response its submitter receives (e.g. a structured
    /// `deadline_exceeded` error); pass `None` only with deadlines off.
    pub fn with_config(
        config: BatcherConfig,
        clock: Arc<dyn Clock>,
        metrics: Option<Arc<dyn MetricsSink>>,
        expire: Option<Box<Expire<R, S>>>,
        process: impl Fn(Vec<R>) -> Vec<S> + Send + Sync + 'static,
    ) -> Self {
        let shared = Arc::new(BatcherShared {
            queue: Mutex::new(BatchQueue::with_deadline(
                config.max_batch,
                config.max_wait_us,
                config.deadline_us,
            )),
            watermark: config.queue_watermark,
            clock,
            process: Box::new(process),
            expire,
            metrics,
            shutdown: AtomicBool::new(false),
        });
        let worker_shared = Arc::clone(&shared);
        let worker = std::thread::Builder::new()
            .name("plssvm-batcher".into())
            .spawn(move || worker_loop(&worker_shared))
            .expect("spawn batcher worker");
        Self {
            shared,
            worker: Mutex::new(Some(worker)),
        }
    }

    /// Enqueues a request; the returned ticket resolves when its batch is
    /// processed. After [`Batcher::shutdown`] the ticket is immediately
    /// closed.
    pub fn submit(&self, req: R) -> Ticket<S> {
        if self.shared.shutdown.load(Ordering::SeqCst) {
            return Ticket::closed();
        }
        let ticket = Ticket::new();
        {
            let mut queue = self.lock_queue();
            queue.push((req, ticket.clone()), self.shared.clock.now_us());
        }
        self.shared.clock.wake();
        ticket
    }

    /// Admission-controlled submit: refuses instead of queueing when the
    /// batcher is draining ([`Shed::ShuttingDown`]) or the queue is at
    /// its watermark ([`Shed::Overloaded`]). The refusal is immediate —
    /// a shed request never holds a queue slot or a batch slot, which is
    /// what keeps admitted-request latency bounded under overload.
    pub fn try_submit(&self, req: R) -> Result<Ticket<S>, Shed> {
        if self.shared.shutdown.load(Ordering::SeqCst) {
            return Err(Shed::ShuttingDown);
        }
        let ticket = Ticket::new();
        {
            let mut queue = self.lock_queue();
            let depth = queue.len();
            if self.shared.watermark > 0 && depth >= self.shared.watermark {
                return Err(Shed::Overloaded { depth });
            }
            queue.push((req, ticket.clone()), self.shared.clock.now_us());
        }
        self.shared.clock.wake();
        Ok(ticket)
    }

    /// Requests currently queued (not yet flushed into a batch).
    pub fn queue_depth(&self) -> usize {
        self.lock_queue().len()
    }

    /// Stops accepting new requests, drains everything already queued
    /// (no request is dropped), and joins the worker. Idempotent.
    pub fn shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.clock.wake();
        let handle = self.worker.lock().unwrap_or_else(|e| e.into_inner()).take();
        if let Some(handle) = handle {
            let _ = handle.join();
        }
    }

    fn lock_queue(&self) -> std::sync::MutexGuard<'_, BatchQueue<(R, Ticket<S>)>> {
        self.shared.queue.lock().unwrap_or_else(|e| e.into_inner())
    }
}

impl<R, S> Drop for Batcher<R, S> {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.clock.wake();
        let handle = self.worker.lock().unwrap_or_else(|e| e.into_inner()).take();
        if let Some(handle) = handle {
            let _ = handle.join();
        }
    }
}

fn worker_loop<R, S>(shared: &BatcherShared<R, S>) {
    loop {
        let shutting_down = shared.shutdown.load(Ordering::SeqCst);
        // sample the wake counter BEFORE polling: a submit landing after
        // the poll bumps it, so the wait below returns immediately
        let seen = shared.clock.wake_count();
        let now = shared.clock.now_us();
        let action = {
            let mut queue = shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            if shutting_down {
                queue.flush_now(now)
            } else {
                queue.poll(now)
            }
        };
        match action {
            QueuePoll::Ready(flush) => run_batch(shared, flush),
            QueuePoll::WaitUntil(deadline) => shared.clock.wait_until(seen, Some(deadline)),
            QueuePoll::Empty => {
                if shutting_down {
                    return;
                }
                shared.clock.wait_until(seen, None);
            }
        }
    }
}

fn run_batch<R, S>(shared: &BatcherShared<R, S>, flush: Flush<(R, Ticket<S>)>) {
    let Flush {
        items,
        expired,
        oldest_wait_us,
        remaining,
    } = flush;
    for (req, ticket) in expired {
        match &shared.expire {
            Some(expire) => ticket.fill(expire(req)),
            // deadline configured but no expiry mapper: close (→
            // structured internal error) rather than hang the submitter
            None => ticket.close(),
        }
        if let Some(metrics) = &shared.metrics {
            metrics.record_serve_shed(ServeShedKind::DeadlineExceeded);
        }
    }
    if items.is_empty() {
        // the wake was for expiries alone — no batch ran, so no batch
        // sample: batch metrics only ever describe real processor calls
        return;
    }
    let batch_size = items.len();
    let (requests, tickets): (Vec<R>, Vec<Ticket<S>>) = items.into_iter().unzip();
    let started = shared.clock.now_us();
    let result = catch_unwind(AssertUnwindSafe(|| (shared.process)(requests)));
    let process_us = shared.clock.now_us().saturating_sub(started);
    match result {
        Ok(responses) => {
            let mut responses = responses.into_iter();
            for ticket in &tickets {
                match responses.next() {
                    Some(r) => ticket.fill(r),
                    // arity bug in the processor: close instead of hanging
                    None => ticket.close(),
                }
            }
        }
        Err(_) => {
            // the processor panicked: every submitter gets a closed
            // ticket (→ structured internal error), the worker survives
            for ticket in &tickets {
                ticket.close();
            }
        }
    }
    if let Some(metrics) = &shared.metrics {
        metrics.record_serve_batch(ServeBatchSample {
            batch_size,
            queue_depth: remaining,
            queued_us: oldest_wait_us,
            process_us,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn queue_flushes_on_max_batch_regardless_of_time() {
        let mut q = BatchQueue::new(3, 1_000);
        q.push("a", 0);
        q.push("b", 0);
        assert_eq!(q.poll(0), QueuePoll::WaitUntil(1_000));
        q.push("c", 0);
        match q.poll(0) {
            QueuePoll::Ready(f) => {
                assert_eq!(f.items, vec!["a", "b", "c"]);
                assert_eq!(f.remaining, 0);
                assert_eq!(f.oldest_wait_us, 0);
            }
            other => panic!("expected Ready, got {other:?}"),
        }
        assert_eq!(q.poll(0), QueuePoll::Empty);
    }

    #[test]
    fn queue_flushes_on_deadline_exactly() {
        let mut q = BatchQueue::new(10, 500);
        q.push(1, 100);
        assert_eq!(q.poll(100), QueuePoll::WaitUntil(600));
        assert_eq!(q.poll(599), QueuePoll::WaitUntil(600));
        match q.poll(600) {
            QueuePoll::Ready(f) => {
                assert_eq!(f.items, vec![1]);
                assert_eq!(f.oldest_wait_us, 500);
            }
            other => panic!("expected Ready, got {other:?}"),
        }
    }

    #[test]
    fn oversized_backlog_drains_in_fifo_chunks() {
        let mut q = BatchQueue::new(2, 100);
        for i in 0..5 {
            q.push(i, 0);
        }
        let mut batches = Vec::new();
        while let QueuePoll::Ready(f) = q.poll(1_000) {
            batches.push(f.items);
        }
        assert_eq!(batches, vec![vec![0, 1], vec![2, 3], vec![4]]);
    }

    #[test]
    fn deadline_follows_oldest_pending_request() {
        let mut q = BatchQueue::new(10, 200);
        q.push("old", 50);
        q.push("new", 240);
        // deadline is the OLDEST request's enqueue + max_wait
        assert_eq!(q.poll(240), QueuePoll::WaitUntil(250));
        match q.poll(250) {
            QueuePoll::Ready(f) => {
                assert_eq!(f.items, vec!["old", "new"]);
                assert_eq!(f.oldest_wait_us, 200);
            }
            other => panic!("expected Ready, got {other:?}"),
        }
    }

    #[test]
    fn flush_now_drains_without_deadline() {
        let mut q = BatchQueue::new(10, 1_000_000);
        assert_eq!(q.flush_now(0), QueuePoll::Empty);
        q.push(7, 0);
        match q.flush_now(1) {
            QueuePoll::Ready(f) => assert_eq!(f.items, vec![7]),
            other => panic!("expected Ready, got {other:?}"),
        }
    }

    #[test]
    fn deadline_expires_strictly_after_wait_exceeds_budget() {
        let mut q = BatchQueue::with_deadline(10, 1_000, 200);
        q.push("r", 100);
        // the queue must wake at the expiry instant (enq + deadline + 1),
        // which beats the flush timer (enq + max_wait)
        assert_eq!(q.poll(100), QueuePoll::WaitUntil(301));
        // waited EXACTLY the deadline: still live, still only waiting
        assert_eq!(q.poll(300), QueuePoll::WaitUntil(301));
        match q.poll(301) {
            QueuePoll::Ready(f) => {
                assert_eq!(f.expired, vec!["r"]);
                assert!(f.items.is_empty());
                assert_eq!(f.remaining, 0);
            }
            other => panic!("expected Ready, got {other:?}"),
        }
        assert_eq!(q.poll(302), QueuePoll::Empty);
    }

    #[test]
    fn expired_prefix_splits_from_live_batch() {
        let mut q = BatchQueue::with_deadline(10, 50, 200);
        q.push("dead1", 0);
        q.push("dead2", 10);
        q.push("live", 250);
        // at 300: both old requests are strictly past 200µs of waiting,
        // "live" (waited 50 = its flush timer) flushes as a normal batch
        match q.poll(300) {
            QueuePoll::Ready(f) => {
                assert_eq!(f.expired, vec!["dead1", "dead2"]);
                assert_eq!(f.items, vec!["live"]);
                assert_eq!(f.oldest_wait_us, 50);
                assert_eq!(f.remaining, 0);
            }
            other => panic!("expected Ready, got {other:?}"),
        }
    }

    #[test]
    fn expiry_wake_leaves_fresh_survivors_queued() {
        let mut q = BatchQueue::with_deadline(10, 500, 100);
        q.push("dead", 0);
        q.push("fresh", 90);
        // 101: "dead" expires; "fresh" (waited 11µs of its 500µs flush
        // window) must NOT be flushed early just because the wake fired
        match q.poll(101) {
            QueuePoll::Ready(f) => {
                assert_eq!(f.expired, vec!["dead"]);
                assert!(f.items.is_empty());
                assert_eq!(f.remaining, 1);
            }
            other => panic!("expected Ready, got {other:?}"),
        }
        // the next poll re-arms on the survivor's own deadlines
        assert_eq!(q.poll(101), QueuePoll::WaitUntil(191));
    }

    #[test]
    fn flush_now_still_expires_overdue_requests() {
        let mut q = BatchQueue::with_deadline(10, 1_000_000, 100);
        q.push("dead", 0);
        q.push("live", 150);
        match q.flush_now(200) {
            QueuePoll::Ready(f) => {
                assert_eq!(f.expired, vec!["dead"]);
                assert_eq!(f.items, vec!["live"]);
            }
            other => panic!("expected Ready, got {other:?}"),
        }
    }

    #[test]
    fn deadline_equal_to_max_wait_flushes_instead_of_expiring() {
        // the flush timer fires at enq+max_wait, the expiry strictly
        // after (enq+deadline+1): an on-time flush wins the race
        let mut q = BatchQueue::with_deadline(10, 200, 200);
        q.push("r", 0);
        assert_eq!(q.poll(0), QueuePoll::WaitUntil(200));
        match q.poll(200) {
            QueuePoll::Ready(f) => {
                assert_eq!(f.items, vec!["r"]);
                assert!(f.expired.is_empty());
            }
            other => panic!("expected Ready, got {other:?}"),
        }
    }

    #[test]
    fn ticket_roundtrip_and_close() {
        let t = Ticket::new();
        t.fill(42);
        assert_eq!(t.wait(), Some(42));
        let t: Ticket<i32> = Ticket::new();
        t.close();
        assert_eq!(t.wait(), None);
        // close after fill does not destroy the response
        let t = Ticket::new();
        t.fill(7);
        t.close();
        assert_eq!(t.wait(), Some(7));
    }
}
