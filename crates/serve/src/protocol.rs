//! The newline-delimited wire protocol.
//!
//! Each request is one line, in either of two formats, auto-detected per
//! line:
//!
//! * **JSON** — a line starting with `{`:
//!   `{"id": 17, "features": [0.5, -1.0, 2.0]}`. The `id` is optional and
//!   echoed back verbatim; unknown keys are tolerated and skipped. The
//!   `features` array is dense, feature 0 first.
//! * **LIBSVM** — anything else: `label idx:val idx:val ...` with 1-based
//!   indices, exactly the training/test file row format. The label is
//!   ignored for inference (but must parse); lines whose first token
//!   already contains `:` are treated as label-free feature lists.
//!
//! Blank lines and `#` comment lines are ignored (no response line).
//! Responses preserve request order. LIBSVM-format requests get the same
//! bare output `svm-predict` writes (a label, or a regression value);
//! JSON requests get a JSON object; malformed lines get a structured
//! `{"error": "..."}` line — never a panic, never a dropped connection.

use plssvm_core::trace::{json_f64, json_str};
use plssvm_data::MAX_FEATURE_INDEX;

use crate::model::Prediction;

/// Error message for requests shed at the admission watermark.
pub const ERR_OVERLOADED: &str = "overloaded";
/// Error message for requests that queued past their deadline.
pub const ERR_DEADLINE: &str = "deadline_exceeded";
/// Error message for requests arriving while the server drains.
pub const ERR_SHUTTING_DOWN: &str = "shutting_down";
/// The acknowledgement line sent in response to the `shutdown` control
/// line before the drain begins.
pub const DRAIN_ACK: &str = r#"{"ok":"draining"}"#;

/// An out-of-band control line (not an inference request).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Control {
    /// `shutdown` — begin a graceful drain (the in-band equivalent of
    /// SIGTERM, used by tests and orchestration scripts).
    Shutdown,
}

/// Recognizes control lines. Deliberately **not** part of
/// [`parse_line`]: control is a transport-level concern the connection
/// loop checks first, so the protocol corpus tests (which replay
/// arbitrary mutated lines through the engine) can never trigger a
/// drain by accident.
pub fn parse_control(line: &str) -> Option<Control> {
    match line.trim() {
        "shutdown" => Some(Control::Shutdown),
        _ => None,
    }
}

/// Which wire format a request arrived in (echoed in the response).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryFormat {
    /// A `{...}` JSON object line.
    Json,
    /// A LIBSVM data row.
    Libsvm,
}

/// A parsed inference request.
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    /// Raw JSON token of the request's `id`, echoed back verbatim.
    pub id: Option<String>,
    /// Sparse features: 0-based `(index, value)` pairs. Densification
    /// happens at batch time against the *current* model, so a reload
    /// that changes the feature count yields per-request errors instead
    /// of stale-shape panics.
    pub entries: Vec<(usize, f64)>,
    /// The format the request arrived in.
    pub format: QueryFormat,
}

/// Outcome of parsing one input line.
#[derive(Debug, Clone, PartialEq)]
pub enum ParsedLine {
    /// A well-formed request.
    Query(Query),
    /// Blank or comment line: no response is emitted.
    Ignored,
    /// A malformed line: answer with a structured error, keep serving.
    Error {
        /// Format the line was recognized as (best effort).
        format: QueryFormat,
        /// The request id if it was parseable before the error.
        id: Option<String>,
        /// Human-readable parse failure.
        message: String,
    },
}

/// Parses one wire line (without its trailing newline).
pub fn parse_line(line: &str) -> ParsedLine {
    let trimmed = line.trim();
    if trimmed.is_empty() || trimmed.starts_with('#') {
        return ParsedLine::Ignored;
    }
    if trimmed.starts_with('{') {
        match parse_json_query(trimmed) {
            Ok(q) => ParsedLine::Query(q),
            Err((id, message)) => ParsedLine::Error {
                format: QueryFormat::Json,
                id,
                message,
            },
        }
    } else {
        match parse_libsvm_query(trimmed) {
            Ok(q) => ParsedLine::Query(q),
            Err(message) => ParsedLine::Error {
                format: QueryFormat::Libsvm,
                id: None,
                message,
            },
        }
    }
}

/// Formats the response line (no trailing newline) for a request.
///
/// LIBSVM requests answer exactly like `svm-predict` output rows: the
/// bare label for classifiers, the bare value for SVR. JSON requests and
/// all errors answer with a JSON object.
pub fn format_response(
    format: QueryFormat,
    id: Option<&str>,
    result: &Result<Prediction, String>,
) -> String {
    match (format, result) {
        (QueryFormat::Libsvm, Ok(Prediction::Label(l)))
        | (QueryFormat::Libsvm, Ok(Prediction::LabelWithDecision(l, _))) => l.to_string(),
        (QueryFormat::Libsvm, Ok(Prediction::Value(v))) => format!("{v}"),
        (_, Err(message)) => {
            let mut out = String::from("{");
            if let Some(id) = id {
                out.push_str(&format!("\"id\":{id},"));
            }
            out.push_str(&format!("\"error\":{}}}", json_str(message)));
            out
        }
        (QueryFormat::Json, Ok(pred)) => {
            let mut out = String::from("{");
            if let Some(id) = id {
                out.push_str(&format!("\"id\":{id},"));
            }
            match pred {
                Prediction::Label(l) => out.push_str(&format!("\"label\":{l}")),
                Prediction::LabelWithDecision(l, d) => {
                    out.push_str(&format!("\"label\":{l},\"decision\":{}", json_f64(*d)));
                }
                Prediction::Value(v) => out.push_str(&format!("\"value\":{}", json_f64(*v))),
            }
            out.push('}');
            out
        }
    }
}

fn parse_libsvm_query(line: &str) -> Result<Query, String> {
    let mut tokens = line.split_whitespace().peekable();
    let first = tokens.peek().copied().ok_or("empty request line")?;
    if !first.contains(':') {
        // a label is present; inference ignores it but a garbage token is
        // a malformed line, not a silently-dropped one
        let label = tokens.next().expect("peeked");
        if label.parse::<f64>().is_err() {
            return Err(format!("invalid label '{label}'"));
        }
    }
    let mut entries = Vec::new();
    for tok in tokens {
        let (idx, val) = tok
            .split_once(':')
            .ok_or_else(|| format!("expected index:value, got '{tok}'"))?;
        let idx: usize = idx
            .parse()
            .map_err(|_| format!("invalid feature index '{idx}'"))?;
        if idx == 0 {
            return Err("feature indices are 1-based; got index 0".into());
        }
        if idx > MAX_FEATURE_INDEX {
            return Err(format!(
                "feature index {idx} exceeds the supported maximum {MAX_FEATURE_INDEX}"
            ));
        }
        let val: f64 = val
            .parse()
            .map_err(|_| format!("invalid feature value '{val}'"))?;
        if !val.is_finite() {
            return Err(format!("non-finite feature value '{val}'"));
        }
        entries.push((idx - 1, val));
    }
    Ok(Query {
        id: None,
        entries,
        format: QueryFormat::Libsvm,
    })
}

// ---------------------------------------------------------------------------
// Minimal JSON object reader (the workspace is dependency-free by design;
// this covers exactly what the wire protocol needs: one flat object with
// an optional scalar `id`, a numeric `features` array, and skippable
// unknown values of any shape).
// ---------------------------------------------------------------------------

/// Nesting depth cap while skipping unknown values — corpus fuzzing must
/// not be able to blow the stack with `[[[[...]]]]`.
const MAX_SKIP_DEPTH: usize = 64;

struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

type JsonError = (Option<String>, String);

fn parse_json_query(line: &str) -> Result<Query, JsonError> {
    let mut id: Option<String> = None;
    let mut features: Option<Vec<f64>> = None;
    let mut c = Cursor {
        bytes: line.as_bytes(),
        pos: 0,
    };
    let fail = |id: &Option<String>, msg: String| (id.clone(), msg);

    c.expect(b'{').map_err(|m| fail(&id, m))?;
    c.skip_ws();
    if !c.eat(b'}') {
        loop {
            let key = c.parse_string().map_err(|m| fail(&id, m))?;
            c.expect(b':').map_err(|m| fail(&id, m))?;
            match key.as_str() {
                "id" => {
                    let raw = c.raw_value().map_err(|m| fail(&id, m))?;
                    id = Some(raw);
                }
                "features" => {
                    features = Some(c.parse_number_array().map_err(|m| fail(&id, m))?);
                }
                _ => {
                    c.raw_value().map_err(|m| fail(&id, m))?;
                }
            }
            c.skip_ws();
            if c.eat(b',') {
                continue;
            }
            c.expect(b'}').map_err(|m| fail(&id, m))?;
            break;
        }
    }
    c.skip_ws();
    if c.pos != c.bytes.len() {
        return Err(fail(&id, "trailing content after JSON object".into()));
    }
    let features = features.ok_or_else(|| fail(&id, "missing \"features\" array".into()))?;
    if features.len() > MAX_FEATURE_INDEX {
        return Err(fail(
            &id,
            format!(
                "features array length {} exceeds the supported maximum {MAX_FEATURE_INDEX}",
                features.len()
            ),
        ));
    }
    for v in &features {
        if !v.is_finite() {
            return Err(fail(&id, "non-finite feature value".into()));
        }
    }
    Ok(Query {
        id,
        entries: features.into_iter().enumerate().collect(),
        format: QueryFormat::Json,
    })
}

impl<'a> Cursor<'a> {
    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\r' | b'\n'))
        {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> bool {
        if self.peek() == Some(b) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.eat(b) {
            Ok(())
        } else {
            Err(match self.bytes.get(self.pos) {
                Some(&got) => format!("expected '{}', found '{}'", b as char, got as char),
                None => format!("expected '{}', found end of line", b as char),
            })
        }
    }

    fn parse_string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.bytes.get(self.pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| "invalid \\u escape".to_string())?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| format!("invalid \\u escape '{hex}'"))?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        other => {
                            return Err(format!(
                                "invalid escape '\\{}'",
                                other.map(|&b| b as char).unwrap_or(' ')
                            ))
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // copy the full UTF-8 code point, not byte by byte
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| "invalid UTF-8".to_string())?;
                    let ch = s.chars().next().ok_or("unterminated string")?;
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<f64, String> {
        self.skip_ws();
        let start = self.pos;
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            self.pos += 1;
        }
        if start == self.pos {
            return Err("expected a number".into());
        }
        let tok = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        tok.parse::<f64>()
            .map_err(|_| format!("invalid number '{tok}'"))
    }

    fn parse_number_array(&mut self) -> Result<Vec<f64>, String> {
        self.expect(b'[')?;
        let mut out = Vec::new();
        if self.eat(b']') {
            return Ok(out);
        }
        loop {
            out.push(self.parse_number()?);
            if self.eat(b',') {
                continue;
            }
            self.expect(b']')?;
            return Ok(out);
        }
    }

    /// Skips one JSON value of any shape, returning its raw text (used to
    /// echo `id` back verbatim and to tolerate unknown keys).
    fn raw_value(&mut self) -> Result<String, String> {
        self.skip_ws();
        let start = self.pos;
        self.skip_value(0)?;
        let raw = &self.bytes[start..self.pos];
        Ok(std::str::from_utf8(raw)
            .map_err(|_| "invalid UTF-8".to_string())?
            .trim()
            .to_string())
    }

    fn skip_value(&mut self, depth: usize) -> Result<(), String> {
        if depth > MAX_SKIP_DEPTH {
            return Err("JSON nesting too deep".into());
        }
        match self.peek() {
            Some(b'"') => {
                self.parse_string()?;
                Ok(())
            }
            Some(b'{') => {
                self.pos += 1;
                if self.eat(b'}') {
                    return Ok(());
                }
                loop {
                    self.parse_string()?;
                    self.expect(b':')?;
                    self.skip_value(depth + 1)?;
                    if self.eat(b',') {
                        continue;
                    }
                    return self.expect(b'}');
                }
            }
            Some(b'[') => {
                self.pos += 1;
                if self.eat(b']') {
                    return Ok(());
                }
                loop {
                    self.skip_value(depth + 1)?;
                    if self.eat(b',') {
                        continue;
                    }
                    return self.expect(b']');
                }
            }
            Some(b't') => self.expect_word("true"),
            Some(b'f') => self.expect_word("false"),
            Some(b'n') => self.expect_word("null"),
            Some(_) => {
                self.parse_number()?;
                Ok(())
            }
            None => Err("expected a value, found end of line".into()),
        }
    }

    fn expect_word(&mut self, word: &str) -> Result<(), String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(())
        } else {
            Err(format!("expected '{word}'"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn query(line: &str) -> Query {
        match parse_line(line) {
            ParsedLine::Query(q) => q,
            other => panic!("expected Query for {line:?}, got {other:?}"),
        }
    }

    fn error(line: &str) -> (QueryFormat, Option<String>, String) {
        match parse_line(line) {
            ParsedLine::Error {
                format,
                id,
                message,
            } => (format, id, message),
            other => panic!("expected Error for {line:?}, got {other:?}"),
        }
    }

    #[test]
    fn libsvm_line_with_and_without_label() {
        let q = query("1 1:0.5 3:-2");
        assert_eq!(q.format, QueryFormat::Libsvm);
        assert_eq!(q.entries, vec![(0, 0.5), (2, -2.0)]);
        // label-free: first token already contains ':'
        let q = query("1:0.5 2:1.5");
        assert_eq!(q.entries, vec![(0, 0.5), (1, 1.5)]);
        // zero-entry rows are legal LIBSVM (all features zero)
        let q = query("-1");
        assert_eq!(q.entries, vec![]);
    }

    #[test]
    fn libsvm_malformed_lines_are_structured_errors() {
        assert!(error("abc 1:0.5").2.contains("invalid label"));
        assert!(error("1 0:5").2.contains("1-based"));
        assert!(error("1 2:xyz").2.contains("invalid feature value"));
        assert!(error("1 x:1").2.contains("invalid feature index"));
        assert!(error("1 17000000:1").2.contains("maximum"));
        assert!(error("1 1:inf").2.contains("non-finite"));
        assert!(error("1 notapair").2.contains("index:value"));
    }

    #[test]
    fn json_line_roundtrip_with_id_and_unknown_keys() {
        let q = query(r#"{"id": 17, "features": [0.5, -1, 2e0], "meta": {"a": [1, null]}}"#);
        assert_eq!(q.format, QueryFormat::Json);
        assert_eq!(q.id.as_deref(), Some("17"));
        assert_eq!(q.entries, vec![(0, 0.5), (1, -1.0), (2, 2.0)]);
        // string ids echo with their quotes
        let q = query(r#"{"features": [], "id": "req-1"}"#);
        assert_eq!(q.id.as_deref(), Some("\"req-1\""));
        assert_eq!(q.entries, vec![]);
        // no id is fine
        assert_eq!(query(r#"{"features":[1]}"#).id, None);
    }

    #[test]
    fn json_malformed_lines_are_structured_errors() {
        let (f, _, m) = error(r#"{"features": [1, 2"#);
        assert_eq!(f, QueryFormat::Json);
        assert!(!m.is_empty());
        // id survives when parsed before the failure, so the error can be routed
        let (_, id, m) = error(r#"{"id": 9, "features": [1, "x"]}"#);
        assert_eq!(id.as_deref(), Some("9"));
        assert!(m.contains("number"));
        assert!(error(r#"{}"#).2.contains("missing \"features\""));
        assert!(error(r#"{"features": [1]} extra"#).2.contains("trailing"));
        assert!(error(r#"{"features": [1e999]}"#).2.contains("non-finite"));
        let deep = format!(
            r#"{{"x": {}1{}, "features": [1]}}"#,
            "[".repeat(100),
            "]".repeat(100)
        );
        assert!(error(&deep).2.contains("nesting"));
    }

    #[test]
    fn blank_and_comment_lines_are_ignored() {
        assert_eq!(parse_line(""), ParsedLine::Ignored);
        assert_eq!(parse_line("   \t"), ParsedLine::Ignored);
        assert_eq!(parse_line("# comment"), ParsedLine::Ignored);
    }

    #[test]
    fn control_lines_are_transport_level_only() {
        assert_eq!(parse_control("shutdown"), Some(Control::Shutdown));
        assert_eq!(parse_control("  shutdown \t"), Some(Control::Shutdown));
        assert_eq!(parse_control("shutdown now"), None);
        assert_eq!(parse_control("1 1:0.5"), None);
        // parse_line must NOT recognize it — it falls through to LIBSVM
        // parsing (and errors there), so replayed corpora cannot drain
        // an engine by accident
        assert!(matches!(parse_line("shutdown"), ParsedLine::Error { .. }));
    }

    #[test]
    fn responses_match_cli_output_for_libsvm_format() {
        // bit-identical to svm-predict's output rows
        let r = format_response(QueryFormat::Libsvm, None, &Ok(Prediction::Label(-1)));
        assert_eq!(r, "-1");
        let r = format_response(
            QueryFormat::Libsvm,
            None,
            &Ok(Prediction::LabelWithDecision(1, 0.25)),
        );
        assert_eq!(r, "1");
        let v = 0.30000000000000004_f64;
        let r = format_response(QueryFormat::Libsvm, None, &Ok(Prediction::Value(v)));
        assert_eq!(r, format!("{v}"));
    }

    #[test]
    fn responses_serialize_json_format() {
        let r = format_response(
            QueryFormat::Json,
            Some("17"),
            &Ok(Prediction::LabelWithDecision(1, 0.5)),
        );
        assert_eq!(r, r#"{"id":17,"label":1,"decision":0.5}"#);
        let r = format_response(QueryFormat::Json, None, &Ok(Prediction::Label(2)));
        assert_eq!(r, r#"{"label":2}"#);
        let r = format_response(
            QueryFormat::Json,
            Some("\"a\""),
            &Ok(Prediction::Value(1.5)),
        );
        assert_eq!(r, r#"{"id":"a","value":1.5}"#);
        let r = format_response(QueryFormat::Json, None, &Err("bad \"line\"".to_string()));
        assert_eq!(r, r#"{"error":"bad \"line\""}"#);
        let r = format_response(QueryFormat::Libsvm, None, &Err("nope".to_string()));
        assert_eq!(r, r#"{"error":"nope"}"#);
    }
}
