//! PLSSVM serving layer: a long-lived batched inference service.
//!
//! The crate turns any model the CLI can produce — binary, multiclass or
//! SVR, any kernel — into a server that accepts concurrent requests over
//! a newline-delimited wire protocol ([`protocol`]), coalesces them
//! through a bounded micro-batching queue ([`batcher`]) into the
//! panelized prediction path, and supports hot model reloads with zero
//! dropped requests ([`reload`]).
//!
//! Everything timing-dependent is built against the injectable
//! [`clock::Clock`] so batching deadlines and reload behavior are
//! deterministically testable without sleeps.

#![warn(missing_docs)]

pub mod batcher;
pub mod clock;
pub mod engine;
pub mod model;
pub mod net;
pub mod protocol;
pub mod reload;

pub use batcher::{BatchQueue, Batcher, Flush, QueuePoll, Ticket};
pub use clock::{Clock, ManualClock, SystemClock};
pub use engine::{Engine, EngineConfig};
pub use model::{Prediction, ServeModel};
pub use net::{serve_lines, serve_tcp};
pub use protocol::{parse_line, ParsedLine, Query, QueryFormat};
pub use reload::{attempt_reload, spawn_watcher, ManualTrigger, PollTrigger, ReloadTrigger};
