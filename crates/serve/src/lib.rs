//! PLSSVM serving layer: a long-lived batched inference service.
//!
//! The crate turns any model the CLI can produce — binary, multiclass or
//! SVR, any kernel — into a server that accepts concurrent requests over
//! a newline-delimited wire protocol ([`protocol`]), coalesces them
//! through a bounded micro-batching queue ([`batcher`]) into the
//! panelized prediction path, and supports hot model reloads with zero
//! dropped requests ([`reload`]).
//!
//! The serving path is overload-hardened: connection admission and
//! graceful drain live in [`admission`], queue watermark shedding and
//! dequeue-time deadlines in [`batcher`], and slow-client read budgets
//! in [`net`] — every refused or expired request is answered with a
//! structured error line, never a silent drop.
//!
//! Everything timing-dependent is built against the injectable
//! [`clock::Clock`] so batching deadlines and reload behavior are
//! deterministically testable without sleeps.

#![warn(missing_docs)]

pub mod admission;
pub mod batcher;
pub mod clock;
pub mod engine;
pub mod model;
pub mod net;
pub mod protocol;
pub mod reload;

pub use admission::{ConnGuard, ServerControl};
pub use batcher::{BatchQueue, Batcher, BatcherConfig, Flush, QueuePoll, Shed, Ticket};
pub use clock::{Clock, ManualClock, SystemClock};
pub use engine::{Engine, EngineConfig, Pending};
pub use model::{Prediction, ServeModel};
pub use net::{
    serve_connection, serve_lines, serve_tcp, ConnectionOptions, TimedRead,
    ERR_CLIENT_TIMEOUT_LINE, ERR_LINE_TOO_LONG_LINE, ERR_REFUSED_DRAINING_LINE, ERR_REFUSED_LINE,
    MAX_LINE_BYTES,
};
pub use protocol::{
    parse_control, parse_line, Control, ParsedLine, Query, QueryFormat, DRAIN_ACK, ERR_DEADLINE,
    ERR_OVERLOADED, ERR_SHUTTING_DOWN,
};
pub use reload::{
    attempt_reload, attempt_reload_with, spawn_watcher, spawn_watcher_with_breaker, BreakerConfig,
    ManualTrigger, PollTrigger, ReloadAttempt, ReloadBreaker, ReloadTrigger,
};
