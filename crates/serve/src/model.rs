//! Model loading and dispatch for the serving layer.
//!
//! [`ServeModel`] wraps any model the CLI toolchain can produce — a
//! binary classifier, a multiclass container, or an ε-SVR — behind one
//! `predict_batch` entry point. Dispatch mirrors `svm-predict` exactly
//! (container header → multiclass, `svm_type epsilon_svr` → regression,
//! otherwise binary), and models are always evaluated in `f64` like the
//! CLI does, so served predictions are bit-identical to offline ones.

use plssvm_core::multiclass::MultiClassModel;
use plssvm_core::regression::try_predict_values;
use plssvm_core::try_predict_decision_values;
use plssvm_data::dense::DenseMatrix;
use plssvm_data::model::{peek_svm_type, SvmModel, SvrModel};

/// One served prediction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Prediction {
    /// A class label (multiclass models).
    Label(i32),
    /// A class label plus the raw decision value (binary models).
    LabelWithDecision(i32, f64),
    /// A regression value (SVR models).
    Value(f64),
}

/// A loaded model of any kind the CLI can produce, ready to serve.
#[derive(Debug, Clone)]
pub enum ServeModel {
    /// A binary LS-SVM classifier.
    Binary(SvmModel<f64>),
    /// A multiclass container (one-vs-one or one-vs-rest).
    Multiclass(MultiClassModel<f64>),
    /// An ε-SVR regression model.
    Svr(SvrModel<f64>),
}

impl ServeModel {
    /// Parses a model from its text representation, dispatching on the
    /// model kind the same way `svm-predict` does.
    pub fn from_text(content: &str) -> Result<Self, String> {
        let model = if content.starts_with("plssvm_multiclass") {
            ServeModel::Multiclass(
                MultiClassModel::<f64>::from_container_string(content)
                    .map_err(|e| format!("multiclass model: {e}"))?,
            )
        } else if peek_svm_type(content) == Some("epsilon_svr") {
            ServeModel::Svr(
                SvrModel::<f64>::from_model_string(content)
                    .map_err(|e| format!("svr model: {e}"))?,
            )
        } else {
            ServeModel::Binary(
                SvmModel::<f64>::from_model_string(content).map_err(|e| format!("model: {e}"))?,
            )
        };
        if model.features() == 0 {
            return Err("model has zero features".into());
        }
        if model.total_sv() == 0 {
            return Err("model has no support vectors".into());
        }
        Ok(model)
    }

    /// Loads and validates a model file.
    pub fn load(path: impl AsRef<std::path::Path>) -> Result<Self, String> {
        Self::load_with(&plssvm_data::RealVfs, path.as_ref())
    }

    /// [`ServeModel::load`] through an explicit
    /// [`Vfs`](plssvm_data::vfs::Vfs), so reload harnesses can inject
    /// torn/short reads and bit rot at the loader. Damage surfaces as a
    /// structured rejection (parse/validation failure), never a panic.
    pub fn load_with(
        vfs: &dyn plssvm_data::vfs::Vfs,
        path: &std::path::Path,
    ) -> Result<Self, String> {
        let content = vfs
            .read_to_string(path)
            .map_err(|e| format!("read {}: {e}", path.display()))?;
        Self::from_text(&content)
    }

    /// Expected number of features per query row.
    pub fn features(&self) -> usize {
        match self {
            ServeModel::Binary(m) => m.features(),
            ServeModel::Multiclass(m) => m.models.first().map(|(_, m)| m.features()).unwrap_or(0),
            ServeModel::Svr(m) => m.features(),
        }
    }

    /// Total number of support vectors (summed over binary submodels).
    pub fn total_sv(&self) -> usize {
        match self {
            ServeModel::Binary(m) => m.total_sv(),
            ServeModel::Multiclass(m) => m.models.iter().map(|(_, m)| m.total_sv()).sum(),
            ServeModel::Svr(m) => m.total_sv(),
        }
    }

    /// Human-readable model kind for status messages.
    pub fn kind(&self) -> &'static str {
        match self {
            ServeModel::Binary(_) => "binary",
            ServeModel::Multiclass(_) => "multiclass",
            ServeModel::Svr(_) => "svr",
        }
    }

    /// Predicts one dense batch through the panelized prediction path,
    /// returning a structured error (never panicking) on degenerate
    /// batches.
    pub fn predict_batch(&self, x: &DenseMatrix<f64>) -> Result<Vec<Prediction>, String> {
        match self {
            ServeModel::Binary(m) => {
                let decisions = try_predict_decision_values(m, x).map_err(|e| e.to_string())?;
                Ok(decisions
                    .into_iter()
                    .map(|d| Prediction::LabelWithDecision(m.decide(d), d))
                    .collect())
            }
            ServeModel::Multiclass(m) => Ok(m
                .try_predict(x)
                .map_err(|e| e.to_string())?
                .into_iter()
                .map(Prediction::Label)
                .collect()),
            ServeModel::Svr(m) => Ok(try_predict_values(m, x)
                .map_err(|e| e.to_string())?
                .into_iter()
                .map(Prediction::Value)
                .collect()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const BINARY: &str = "svm_type c_svc\nkernel_type linear\nnr_class 2\ntotal_sv 2\nrho 0\nlabel 1 -1\nnr_sv 1 1\nSV\n1 1:1\n-1 2:1\n";
    const SVR: &str =
        "svm_type epsilon_svr\nkernel_type linear\nnr_class 2\ntotal_sv 1\nrho -1\nSV\n2 1:1 2:0\n";

    #[test]
    fn dispatches_binary_and_predicts_with_decision() {
        let m = ServeModel::from_text(BINARY).unwrap();
        assert_eq!(m.kind(), "binary");
        assert_eq!(m.features(), 2);
        // f(x) = x1 - x2
        let x = DenseMatrix::from_vec(2, 2, vec![3.0, 1.0, 0.0, 5.0]);
        let p = m.predict_batch(&x).unwrap();
        assert_eq!(
            p,
            vec![
                Prediction::LabelWithDecision(1, 2.0),
                Prediction::LabelWithDecision(-1, -5.0)
            ]
        );
    }

    #[test]
    fn dispatches_svr_and_predicts_values() {
        let m = ServeModel::from_text(SVR).unwrap();
        assert_eq!(m.kind(), "svr");
        // f(x) = 2·x1 + 1
        let x = DenseMatrix::from_vec(1, 2, vec![3.0, 9.0]);
        assert_eq!(m.predict_batch(&x).unwrap(), vec![Prediction::Value(7.0)]);
    }

    #[test]
    fn dispatches_multiclass_container() {
        use plssvm_core::prelude::*;
        use plssvm_data::synthetic::{generate_blobs, BlobsConfig};

        let data = generate_blobs::<f64>(&BlobsConfig::new(30, 4, 3, 5)).unwrap();
        let trained = train_multiclass(
            &data,
            &LsSvm::new().with_epsilon(1e-6),
            MultiClassStrategy::OneVsOne,
        )
        .unwrap();
        let m = ServeModel::from_text(&trained.to_container_string()).unwrap();
        assert_eq!(m.kind(), "multiclass");
        assert_eq!(m.features(), 4);
        let x = data.x.select_rows(&[0, 1]);
        let served = m.predict_batch(&x).unwrap();
        let direct = trained.predict(&x);
        let served_labels: Vec<i32> = served
            .iter()
            .map(|p| match p {
                Prediction::Label(l) => *l,
                other => panic!("multiclass must serve labels, got {other:?}"),
            })
            .collect();
        assert_eq!(served_labels, direct);
    }

    #[test]
    fn degenerate_batches_are_structured_errors() {
        let m = ServeModel::from_text(BINARY).unwrap();
        let empty = DenseMatrix::<f64>::zeros(0, 2);
        assert!(m.predict_batch(&empty).unwrap_err().contains("empty"));
        let wrong = DenseMatrix::<f64>::zeros(1, 3);
        assert!(m.predict_batch(&wrong).unwrap_err().contains("expects 2"));
    }

    #[test]
    fn garbage_model_text_is_rejected() {
        assert!(ServeModel::from_text("not a model").is_err());
        assert!(ServeModel::from_text("").is_err());
        // truncated mid-header
        assert!(ServeModel::from_text("svm_type c_svc\nkernel_type linear\n").is_err());
    }
}
