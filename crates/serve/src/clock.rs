//! Injectable time source for the serving layer.
//!
//! Every timing-dependent behavior in this crate — micro-batch deadlines,
//! queue waits, request latencies — runs against the [`Clock`] trait, so
//! tests drive time deterministically with a [`ManualClock`] (no sleeps)
//! while production uses the wall-clock [`SystemClock`].
//!
//! The trait couples a microsecond clock with a wakeable wait primitive.
//! The lost-wakeup race is closed by a *wake generation counter*: a waiter
//! samples [`Clock::wake_count`] **before** inspecting the state it is
//! about to wait on, then passes the sampled value to
//! [`Clock::wait_until`]. Any [`Clock::wake`] that lands between the
//! sample and the wait bumps the counter, so the wait returns immediately
//! instead of sleeping through the notification.

use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

/// A monotonic microsecond clock plus a wakeable, deadline-aware wait.
pub trait Clock: Send + Sync {
    /// Microseconds since the clock's origin.
    fn now_us(&self) -> u64;

    /// The current wake generation counter.
    fn wake_count(&self) -> u64;

    /// Bumps the wake counter and wakes every waiter (new work arrived,
    /// or shutdown was requested).
    fn wake(&self);

    /// Blocks until the wake counter moves past `seen` or — when
    /// `deadline_us` is given — the clock reaches the deadline. Spurious
    /// returns are allowed; callers re-inspect their state in a loop.
    fn wait_until(&self, seen: u64, deadline_us: Option<u64>);
}

/// The production clock: wall time from [`Instant`], waits on a condvar.
#[derive(Debug)]
pub struct SystemClock {
    origin: Instant,
    wakes: Mutex<u64>,
    cv: Condvar,
}

impl SystemClock {
    /// A clock whose origin is "now".
    pub fn new() -> Self {
        Self {
            origin: Instant::now(),
            wakes: Mutex::new(0),
            cv: Condvar::new(),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, u64> {
        self.wakes.lock().unwrap_or_else(|e| e.into_inner())
    }
}

impl Default for SystemClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for SystemClock {
    fn now_us(&self) -> u64 {
        self.origin.elapsed().as_micros() as u64
    }

    fn wake_count(&self) -> u64 {
        *self.lock()
    }

    fn wake(&self) {
        *self.lock() += 1;
        self.cv.notify_all();
    }

    fn wait_until(&self, seen: u64, deadline_us: Option<u64>) {
        let mut wakes = self.lock();
        loop {
            if *wakes != seen {
                return;
            }
            match deadline_us {
                Some(deadline) => {
                    let now = self.now_us();
                    if now >= deadline {
                        return;
                    }
                    let (next, _) = self
                        .cv
                        .wait_timeout(wakes, Duration::from_micros(deadline - now))
                        .unwrap_or_else(|e| e.into_inner());
                    wakes = next;
                }
                None => {
                    wakes = self.cv.wait(wakes).unwrap_or_else(|e| e.into_inner());
                }
            }
        }
    }
}

#[derive(Debug, Default)]
struct ManualState {
    now_us: u64,
    wakes: u64,
    parked: usize,
}

/// The test clock: time only moves when the test calls
/// [`ManualClock::advance`], and [`ManualClock::wait_for_parked`] gives
/// tests a rendezvous ("the worker is now blocked waiting") so every
/// deadline interleaving can be pinned without a single sleep.
#[derive(Debug, Default)]
pub struct ManualClock {
    state: Mutex<ManualState>,
    /// Wakes threads blocked in [`Clock::wait_until`].
    waiters: Condvar,
    /// Wakes tests blocked in [`ManualClock::wait_for_parked`].
    observers: Condvar,
}

impl ManualClock {
    /// A clock starting at t = 0 µs.
    pub fn new() -> Self {
        Self::default()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, ManualState> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Moves time forward and re-evaluates every waiter's deadline.
    pub fn advance(&self, us: u64) {
        let mut s = self.lock();
        s.now_us += us;
        self.waiters.notify_all();
        // a waiter whose deadline just passed will unpark; observers may
        // be watching for the park count to settle afterwards
        self.observers.notify_all();
    }

    /// Blocks (in real time) until at least `n` threads are parked inside
    /// [`Clock::wait_until`] — the rendezvous deterministic tests use
    /// before advancing time or asserting "nothing happened yet".
    pub fn wait_for_parked(&self, n: usize) {
        let mut s = self.lock();
        while s.parked < n {
            s = self.observers.wait(s).unwrap_or_else(|e| e.into_inner());
        }
    }
}

impl Clock for ManualClock {
    fn now_us(&self) -> u64 {
        self.lock().now_us
    }

    fn wake_count(&self) -> u64 {
        self.lock().wakes
    }

    fn wake(&self) {
        let mut s = self.lock();
        s.wakes += 1;
        self.waiters.notify_all();
    }

    fn wait_until(&self, seen: u64, deadline_us: Option<u64>) {
        let mut s = self.lock();
        loop {
            if s.wakes != seen {
                return;
            }
            if let Some(deadline) = deadline_us {
                if s.now_us >= deadline {
                    return;
                }
            }
            s.parked += 1;
            self.observers.notify_all();
            s = self.waiters.wait(s).unwrap_or_else(|e| e.into_inner());
            s.parked -= 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn manual_clock_only_moves_on_advance() {
        let c = ManualClock::new();
        assert_eq!(c.now_us(), 0);
        c.advance(250);
        assert_eq!(c.now_us(), 250);
        c.advance(0);
        assert_eq!(c.now_us(), 250);
    }

    #[test]
    fn wait_returns_immediately_when_wake_already_happened() {
        // the lost-wakeup guard: wake() lands after the caller sampled the
        // counter but before it waits — the wait must not block
        let c = ManualClock::new();
        let seen = c.wake_count();
        c.wake();
        c.wait_until(seen, None); // would hang forever on a lost wakeup
    }

    #[test]
    fn wait_returns_immediately_past_deadline() {
        let c = ManualClock::new();
        c.advance(100);
        let seen = c.wake_count();
        c.wait_until(seen, Some(100)); // now == deadline → no block
        c.wait_until(seen, Some(50)); // now past deadline → no block
    }

    #[test]
    fn advance_releases_deadline_waiters() {
        let c = Arc::new(ManualClock::new());
        let c2 = Arc::clone(&c);
        let t = std::thread::spawn(move || {
            let seen = c2.wake_count();
            c2.wait_until(seen, Some(1_000));
            c2.now_us()
        });
        c.wait_for_parked(1);
        c.advance(999);
        // deadline not reached: the waiter re-parks
        c.wait_for_parked(1);
        c.advance(1);
        assert_eq!(t.join().unwrap(), 1_000);
    }

    #[test]
    fn wake_releases_indefinite_waiters() {
        let c = Arc::new(ManualClock::new());
        let c2 = Arc::clone(&c);
        let t = std::thread::spawn(move || {
            let seen = c2.wake_count();
            c2.wait_until(seen, None);
        });
        c.wait_for_parked(1);
        c.wake();
        t.join().unwrap();
    }

    #[test]
    fn system_clock_wake_interrupts_wait() {
        let c = Arc::new(SystemClock::new());
        let c2 = Arc::clone(&c);
        let seen = c.wake_count();
        let t = std::thread::spawn(move || c2.wait_until(seen, None));
        c.wake();
        t.join().unwrap();
        // deadline path terminates on its own
        let seen = c.wake_count();
        c.wait_until(seen, Some(c.now_us() + 100));
    }
}
