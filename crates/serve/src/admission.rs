//! Connection admission and drain coordination for the TCP front-end.
//!
//! [`ServerControl`] is the shared control plane a server loop and its
//! per-connection readers hang off:
//!
//! * **Connection cap** — [`ServerControl::register`] admits at most
//!   `max_connections` concurrent connections; past the cap the accept
//!   loop refuses with a structured one-line JSON error instead of
//!   spawning an unbounded thread. The returned [`ConnGuard`] is RAII:
//!   dropping it (reader exit, panic included) releases the slot, so the
//!   cap can never leak.
//! * **Graceful drain** — [`ServerControl::begin_drain`] (idempotent;
//!   wired to SIGTERM/SIGINT and the `shutdown` control line) flips the
//!   server to draining: the accept loop stops, every registered
//!   connection's read half is shut down so blocked readers wake to EOF,
//!   and lines still buffered in userspace are answered
//!   `shutting_down` while in-flight requests finish on their
//!   generation.
//!
//! The registry keeps a second handle (`try_clone`) to each admitted
//! socket purely so drain can interrupt readers blocked in `read` — the
//! reader owns the primary handle and its lifecycle.

use std::collections::HashMap;
use std::net::{Shutdown, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;

/// Shared admission/drain state for one server instance.
#[derive(Debug)]
pub struct ServerControl {
    max_connections: usize,
    next_id: AtomicU64,
    conns: Mutex<HashMap<u64, TcpStream>>,
    active: AtomicU64,
    draining: AtomicBool,
}

impl ServerControl {
    /// A control plane admitting at most `max_connections` concurrent
    /// connections; `0` means unlimited.
    pub fn new(max_connections: usize) -> Self {
        Self {
            max_connections,
            next_id: AtomicU64::new(0),
            conns: Mutex::new(HashMap::new()),
            active: AtomicU64::new(0),
            draining: AtomicBool::new(false),
        }
    }

    /// A control plane with no connection cap (stdin mode, unit tests).
    pub fn unlimited() -> Self {
        Self::new(0)
    }

    /// Tries to admit a connection. `stream`, when given, is a *second*
    /// handle to the connection's socket kept so [`begin_drain`]
    /// (`ServerControl::begin_drain`) can wake its blocked reader; pass
    /// `None` for non-socket transports. Returns `None` when the server
    /// is at its cap or draining — the caller refuses the connection.
    pub fn register(&self, stream: Option<TcpStream>) -> Option<ConnGuard<'_>> {
        if self.draining.load(Ordering::SeqCst) {
            return None;
        }
        let id = self.next_id.fetch_add(1, Ordering::SeqCst);
        let mut conns = self.conns.lock().unwrap_or_else(|e| e.into_inner());
        if self.max_connections > 0
            && self.active.load(Ordering::SeqCst) >= self.max_connections as u64
        {
            return None;
        }
        self.active.fetch_add(1, Ordering::SeqCst);
        if let Some(stream) = stream {
            conns.insert(id, stream);
        }
        // a drain that raced past the check above re-sweeps after
        // insertion, so this connection still gets its read-half wakeup
        drop(conns);
        if self.draining.load(Ordering::SeqCst) {
            self.shutdown_registered_reads();
        }
        Some(ConnGuard { control: self, id })
    }

    /// Connections currently admitted (guards alive).
    pub fn active_connections(&self) -> usize {
        self.active.load(Ordering::SeqCst) as usize
    }

    /// Whether drain has begun.
    pub fn is_draining(&self) -> bool {
        self.draining.load(Ordering::SeqCst)
    }

    /// Flips the server to draining (idempotent; first caller wins) and
    /// wakes every admitted connection's blocked reader by shutting down
    /// its socket read half. Readers then drain their userspace buffer —
    /// those lines are answered `shutting_down` — and exit on EOF.
    pub fn begin_drain(&self) {
        if self.draining.swap(true, Ordering::SeqCst) {
            return;
        }
        self.shutdown_registered_reads();
    }

    fn shutdown_registered_reads(&self) {
        let conns = self.conns.lock().unwrap_or_else(|e| e.into_inner());
        for stream in conns.values() {
            // best-effort: a peer that already disconnected errors here,
            // and its reader is already waking to that same error
            let _ = stream.shutdown(Shutdown::Read);
        }
    }

    fn deregister(&self, id: u64) {
        let mut conns = self.conns.lock().unwrap_or_else(|e| e.into_inner());
        conns.remove(&id);
        self.active.fetch_sub(1, Ordering::SeqCst);
    }
}

/// RAII admission slot: holds one unit of the connection cap, released
/// on drop no matter how the connection handler exits.
#[derive(Debug)]
pub struct ConnGuard<'a> {
    control: &'a ServerControl,
    id: u64,
}

impl Drop for ConnGuard<'_> {
    fn drop(&mut self) {
        self.control.deregister(self.id);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cap_admits_exactly_max_and_guards_release_slots() {
        let control = ServerControl::new(2);
        let a = control.register(None).expect("slot 1");
        let b = control.register(None).expect("slot 2");
        assert!(control.register(None).is_none(), "third must be refused");
        assert_eq!(control.active_connections(), 2);
        drop(a);
        assert_eq!(control.active_connections(), 1);
        let c = control.register(None).expect("freed slot reusable");
        drop(b);
        drop(c);
        assert_eq!(control.active_connections(), 0);
    }

    #[test]
    fn unlimited_control_never_refuses_until_drain() {
        let control = ServerControl::unlimited();
        let guards: Vec<_> = (0..100)
            .map(|_| control.register(None).expect("unlimited"))
            .collect();
        assert_eq!(control.active_connections(), 100);
        control.begin_drain();
        assert!(control.is_draining());
        assert!(
            control.register(None).is_none(),
            "draining refuses new connections"
        );
        drop(guards);
        assert_eq!(control.active_connections(), 0);
    }

    #[test]
    fn begin_drain_is_idempotent() {
        let control = ServerControl::new(1);
        assert!(!control.is_draining());
        control.begin_drain();
        control.begin_drain();
        assert!(control.is_draining());
    }
}
