//! Hot model reload.
//!
//! The watcher rides the repo's atomic model writes (`write_atomic`:
//! temp file + fsync + rename): the model path always holds either the
//! old complete model or the new complete one, never a torn file. The
//! reload sequence is **load off the serving thread → validate → swap
//! the generation `Arc`**, so requests keep being answered by the old
//! model until the new one is fully ready, and a reload that fails to
//! parse or validate is *rejected* (recorded in the telemetry audit
//! trail) while the old model keeps serving.
//!
//! Change detection is abstracted behind [`ReloadTrigger`] so tests
//! drive reloads deterministically ([`ManualTrigger`]) while production
//! polls the file signature ([`PollTrigger`]).
//!
//! A *reload failure storm* — a deploy loop repeatedly writing garbage,
//! or a file that flaps — is contained by [`ReloadBreaker`]: after
//! `threshold` consecutive rejections the breaker suppresses further
//! load attempts for an exponentially growing backoff window (emitting
//! `serve_reload_backoff` telemetry), so the server is not stuck
//! re-parsing a broken multi-megabyte model file at every poll tick
//! while the old generation keeps serving. One successful reload fully
//! resets the breaker.

use std::path::{Path, PathBuf};
use std::sync::mpsc;
use std::sync::Arc;
use std::time::{Duration, SystemTime};

use plssvm_core::trace::{ServeReloadBackoffSample, ServeReloadSample};

use crate::engine::Engine;
use crate::model::ServeModel;

/// Blocks until the watched model may have changed.
pub trait ReloadTrigger: Send {
    /// Returns `true` when a reload should be attempted, `false` to stop
    /// watching.
    fn wait(&mut self) -> bool;
}

/// `(mtime, len)` — cheap change signature of the model file.
type Signature = Option<(SystemTime, u64)>;

fn signature(path: &Path) -> Signature {
    std::fs::metadata(path)
        .ok()
        .and_then(|m| m.modified().ok().map(|t| (t, m.len())))
}

/// Production trigger: polls the model file's `(mtime, len)` signature.
pub struct PollTrigger {
    path: PathBuf,
    interval: Duration,
    last: Signature,
}

impl PollTrigger {
    /// Watches `path`, checking every `interval`. The signature at
    /// construction time counts as "already seen" (the server just
    /// loaded that model).
    pub fn new(path: impl Into<PathBuf>, interval: Duration) -> Self {
        let path = path.into();
        let last = signature(&path);
        Self {
            path,
            interval,
            last,
        }
    }
}

impl ReloadTrigger for PollTrigger {
    fn wait(&mut self) -> bool {
        loop {
            std::thread::sleep(self.interval);
            let sig = signature(&self.path);
            if sig != self.last {
                self.last = sig;
                // a vanished file still triggers: attempt_reload records
                // the rejection in the audit trail
                return true;
            }
        }
    }
}

/// Test trigger: fires exactly when the test says so; dropping the
/// handle stops the watcher.
pub struct ManualTrigger {
    rx: mpsc::Receiver<()>,
}

/// Fires the paired [`ManualTrigger`].
pub struct ManualTriggerHandle {
    tx: mpsc::Sender<()>,
}

impl ManualTrigger {
    /// A trigger plus the handle that fires it.
    pub fn new() -> (Self, ManualTriggerHandle) {
        let (tx, rx) = mpsc::channel();
        (Self { rx }, ManualTriggerHandle { tx })
    }
}

impl ManualTriggerHandle {
    /// Makes the watcher attempt one reload.
    pub fn fire(&self) {
        let _ = self.tx.send(());
    }
}

impl ReloadTrigger for ManualTrigger {
    fn wait(&mut self) -> bool {
        self.rx.recv().is_ok()
    }
}

/// Attempts one reload: load + validate the model file, then atomically
/// install it. On any failure the old model keeps serving and the
/// rejection is recorded. Returns the new generation id on success.
pub fn attempt_reload(engine: &Engine, path: &Path) -> Result<u64, String> {
    attempt_reload_with(engine, &plssvm_data::RealVfs, path)
}

/// [`attempt_reload`] through an explicit [`Vfs`](plssvm_data::vfs::Vfs):
/// fault harnesses inject short reads / bit rot at the loader and the
/// damage is rejected like any other invalid model, never installed.
pub fn attempt_reload_with(
    engine: &Engine,
    vfs: &dyn plssvm_data::vfs::Vfs,
    path: &Path,
) -> Result<u64, String> {
    match ServeModel::load_with(vfs, path) {
        Ok(model) => {
            let detail = format!(
                "installed {} model, {} features, {} SVs",
                model.kind(),
                model.features(),
                model.total_sv()
            );
            let generation = engine.install(model);
            record(engine, generation, true, detail);
            Ok(generation)
        }
        Err(e) => {
            record(engine, engine.generation(), false, e.clone());
            Err(e)
        }
    }
}

fn record(engine: &Engine, generation: u64, accepted: bool, detail: String) {
    if let Some(metrics) = engine.metrics() {
        metrics.record_serve_reload(ServeReloadSample {
            generation,
            accepted,
            detail,
        });
    }
}

/// Circuit-breaker knobs for reload failure storms.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BreakerConfig {
    /// Consecutive failures at which the breaker engages.
    pub threshold: u64,
    /// Backoff window after the `threshold`-th consecutive failure
    /// (clock µs); doubles with each further failure.
    pub base_backoff_us: u64,
    /// Upper bound on the backoff window (clock µs).
    pub max_backoff_us: u64,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        Self {
            threshold: 3,
            base_backoff_us: 1_000_000,
            max_backoff_us: 60_000_000,
        }
    }
}

/// What one [`ReloadBreaker::attempt`] did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReloadAttempt {
    /// The new model installed; contains the new generation id.
    Installed(u64),
    /// The file failed to load/validate; the old generation serves.
    Rejected(String),
    /// The breaker is open: no load was attempted. Contains the clock
    /// instant (µs) at which attempts resume.
    Suppressed {
        /// Clock µs until which further attempts are suppressed.
        until_us: u64,
    },
}

/// Reload circuit breaker: wraps [`attempt_reload`] with
/// consecutive-failure counting and exponential backoff against the
/// engine's [`Clock`](crate::clock::Clock) — deterministic on a
/// [`ManualClock`](crate::clock::ManualClock).
#[derive(Debug)]
pub struct ReloadBreaker {
    config: BreakerConfig,
    consecutive_failures: u64,
    blocked_until_us: u64,
}

impl ReloadBreaker {
    /// A closed (pass-through) breaker.
    pub fn new(config: BreakerConfig) -> Self {
        Self {
            config,
            consecutive_failures: 0,
            blocked_until_us: 0,
        }
    }

    /// Consecutive failed reloads since the last success.
    pub fn consecutive_failures(&self) -> u64 {
        self.consecutive_failures
    }

    /// One trigger firing: attempts a reload unless the breaker is in a
    /// backoff window. Failures past the threshold open the breaker
    /// exponentially and emit [`ServeReloadBackoffSample`] telemetry;
    /// one success closes it fully.
    pub fn attempt(&mut self, engine: &Engine, path: &Path) -> ReloadAttempt {
        self.attempt_with(engine, &plssvm_data::RealVfs, path)
    }

    /// [`ReloadBreaker::attempt`] through an explicit
    /// [`Vfs`](plssvm_data::vfs::Vfs), so a scheduled fault plan drives
    /// the breaker's open/backoff/reset states deterministically.
    pub fn attempt_with(
        &mut self,
        engine: &Engine,
        vfs: &dyn plssvm_data::vfs::Vfs,
        path: &Path,
    ) -> ReloadAttempt {
        let now = engine.clock().now_us();
        if now < self.blocked_until_us {
            return ReloadAttempt::Suppressed {
                until_us: self.blocked_until_us,
            };
        }
        match attempt_reload_with(engine, vfs, path) {
            Ok(generation) => {
                self.consecutive_failures = 0;
                self.blocked_until_us = 0;
                ReloadAttempt::Installed(generation)
            }
            Err(e) => {
                self.consecutive_failures += 1;
                if self.consecutive_failures >= self.config.threshold {
                    let doublings = (self.consecutive_failures - self.config.threshold).min(63);
                    let backoff_us = self
                        .config
                        .base_backoff_us
                        .saturating_mul(1u64 << doublings)
                        .min(self.config.max_backoff_us);
                    self.blocked_until_us = now.saturating_add(backoff_us);
                    if let Some(metrics) = engine.metrics() {
                        metrics.record_serve_reload_backoff(ServeReloadBackoffSample {
                            consecutive_failures: self.consecutive_failures,
                            backoff_us,
                        });
                    }
                }
                ReloadAttempt::Rejected(e)
            }
        }
    }
}

/// Spawns the watcher thread: every trigger firing attempts one reload,
/// gated by a [`ReloadBreaker`] with the given config. The thread exits
/// when the trigger reports `false` (handle dropped).
pub fn spawn_watcher_with_breaker(
    engine: Arc<Engine>,
    path: PathBuf,
    mut trigger: Box<dyn ReloadTrigger>,
    config: BreakerConfig,
) -> std::thread::JoinHandle<()> {
    std::thread::Builder::new()
        .name("plssvm-reload".into())
        .spawn(move || {
            let mut breaker = ReloadBreaker::new(config);
            while trigger.wait() {
                // rejection already recorded; the old model keeps serving
                let _ = breaker.attempt(&engine, &path);
            }
        })
        .expect("spawn reload watcher")
}

/// [`spawn_watcher_with_breaker`] with the default breaker config.
pub fn spawn_watcher(
    engine: Arc<Engine>,
    path: PathBuf,
    trigger: Box<dyn ReloadTrigger>,
) -> std::thread::JoinHandle<()> {
    spawn_watcher_with_breaker(engine, path, trigger, BreakerConfig::default())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::SystemClock;
    use crate::engine::EngineConfig;

    const BINARY: &str = "svm_type c_svc\nkernel_type linear\nnr_class 2\ntotal_sv 2\nrho 0\nlabel 1 -1\nnr_sv 1 1\nSV\n1 1:1\n-1 2:1\n";

    fn tmpdir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("plssvm_serve_reload_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn engine() -> Engine {
        Engine::new(
            ServeModel::from_text(BINARY).unwrap(),
            EngineConfig {
                max_batch: 1,
                max_wait_us: 0,
                ..EngineConfig::default()
            },
            Arc::new(SystemClock::new()),
            None,
        )
    }

    #[test]
    fn attempt_reload_accepts_valid_and_rejects_garbage() {
        let dir = tmpdir("attempt");
        let path = dir.join("model.txt");
        let e = engine();

        std::fs::write(&path, BINARY.replace("1 1:1\n-1 2:1\n", "1 2:1\n-1 1:1\n")).unwrap();
        assert_eq!(attempt_reload(&e, &path), Ok(2));
        assert_eq!(e.respond_line("1 1:3").as_deref(), Some("-1"));

        // garbage file: rejected, generation unchanged, old model serves
        std::fs::write(&path, "definitely not a model\n").unwrap();
        assert!(attempt_reload(&e, &path).is_err());
        assert_eq!(e.generation(), 2);
        assert_eq!(e.respond_line("1 1:3").as_deref(), Some("-1"));

        // missing file: also a structured rejection
        std::fs::remove_file(&path).unwrap();
        assert!(attempt_reload(&e, &path).is_err());
        assert_eq!(e.generation(), 2);

        e.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn manual_trigger_drives_watcher_and_stops_on_drop() {
        let dir = tmpdir("watcher");
        let path = dir.join("model.txt");
        std::fs::write(&path, BINARY.replace("1 1:1\n-1 2:1\n", "1 2:1\n-1 1:1\n")).unwrap();

        let e = Arc::new(engine());
        let (trigger, handle) = ManualTrigger::new();
        let watcher = spawn_watcher(Arc::clone(&e), path.clone(), Box::new(trigger));

        handle.fire();
        // the trigger is async; wait for the generation to move
        while e.generation() < 2 {
            std::thread::yield_now();
        }
        assert_eq!(e.respond_line("1 1:3").as_deref(), Some("-1"));

        drop(handle);
        watcher.join().unwrap();
        e.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn poll_trigger_sees_signature_changes() {
        let dir = tmpdir("poll");
        let path = dir.join("model.txt");
        std::fs::write(&path, BINARY).unwrap();
        let mut trigger = PollTrigger::new(&path, Duration::from_millis(1));
        // grow the file so the length component flips even when the
        // filesystem's mtime granularity is coarse
        std::fs::write(&path, format!("{BINARY}\n")).unwrap();
        assert!(trigger.wait());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
