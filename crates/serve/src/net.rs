//! Transport: newline-delimited serving over stdin/stdout or TCP.
//!
//! Both modes share [`serve_connection`]: a reader thread parses and
//! submits lines into the engine while the writer resolves responses in
//! strict FIFO submission order — so the micro-batcher can coalesce
//! requests that are still streaming in, yet clients always receive
//! answers in the order they sent requests.
//!
//! The transport is where overload hardening meets the outside world:
//!
//! * Reads go through [`read_request_line`], which enforces a per-line
//!   byte cap and a per-line time budget — a slowloris peer dribbling
//!   bytes or an endless unterminated line gets a structured error and
//!   a close, never a pinned thread.
//! * [`serve_tcp`] admits connections through a
//!   [`ServerControl`](crate::admission::ServerControl): past
//!   `--max-connections` the accept loop answers one structured JSON
//!   error line and closes instead of spawning an unbounded thread.
//! * The `shutdown` control line (or the `stop` flag, wired to
//!   SIGTERM/SIGINT) begins a graceful drain: the accept loop stops,
//!   blocked readers wake to EOF, buffered lines answer
//!   `shutting_down`, in-flight requests finish, and `serve_tcp`
//!   returns `Ok` after every connection thread joined.

use std::io::{BufRead, BufReader, ErrorKind, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;
use std::time::{Duration, Instant};

use plssvm_core::trace::ServeShedKind;

use crate::admission::ServerControl;
use crate::engine::{Engine, Pending};
use crate::protocol::{parse_control, Control, DRAIN_ACK};

/// How many submitted-but-unresolved requests one connection may have in
/// flight before its reader blocks (bounds memory per connection).
const PIPELINE_DEPTH: usize = 1024;

/// Per-line byte cap: a peer streaming an endless unterminated line is
/// answered with a structured error instead of growing a buffer forever.
pub const MAX_LINE_BYTES: usize = 1 << 20;

/// The final response line sent when a client exhausted its per-line
/// read budget (`--client-timeout-ms`).
pub const ERR_CLIENT_TIMEOUT_LINE: &str = r#"{"error":"client_timeout"}"#;

/// The final response line sent when a request line exceeded
/// [`MAX_LINE_BYTES`].
pub const ERR_LINE_TOO_LONG_LINE: &str = r#"{"error":"line_too_long"}"#;

/// The refusal line sent to a connection past `--max-connections`.
pub const ERR_REFUSED_LINE: &str = r#"{"error":"overloaded","reason":"max_connections"}"#;

/// The refusal line sent to a connection accepted mid-drain.
pub const ERR_REFUSED_DRAINING_LINE: &str = r#"{"error":"shutting_down"}"#;

/// A buffered reader whose blocking reads can be bounded in time.
///
/// The default implementation is a no-op (in-memory readers and stdin
/// cannot time out); the [`TcpStream`]-backed implementation arms the
/// socket's read timeout so [`read_request_line`] can enforce a per-line
/// budget against a stalled peer.
pub trait TimedRead: BufRead {
    /// Bounds how long one underlying read may block. `None` disables.
    fn set_read_timeout(&mut self, _timeout: Option<Duration>) -> std::io::Result<()> {
        Ok(())
    }
}

impl TimedRead for BufReader<TcpStream> {
    fn set_read_timeout(&mut self, timeout: Option<Duration>) -> std::io::Result<()> {
        self.get_ref().set_read_timeout(timeout)
    }
}

impl<T: AsRef<[u8]>> TimedRead for std::io::Cursor<T> {}
impl TimedRead for std::io::StdinLock<'_> {}
impl TimedRead for BufReader<std::io::Stdin> {}
impl TimedRead for std::io::Empty {}
impl<T: TimedRead + ?Sized> TimedRead for &mut T {
    fn set_read_timeout(&mut self, timeout: Option<Duration>) -> std::io::Result<()> {
        (**self).set_read_timeout(timeout)
    }
}

/// Outcome of reading one request line.
#[derive(Debug, PartialEq, Eq)]
pub enum LineRead {
    /// One complete line (trailing `\n`/`\r` stripped). A final
    /// unterminated line at EOF is also delivered this way.
    Line(String),
    /// Clean end of stream.
    Eof,
    /// The per-line time budget ran out mid-line (stalled client).
    TimedOut,
    /// The line exceeded [`MAX_LINE_BYTES`] without a newline.
    TooLong,
}

/// Reads one newline-terminated request line under a time budget.
///
/// `budget` bounds the wall-clock time one *line* may take to arrive in
/// full; the caller must also have armed the transport's own read
/// timeout (see [`TimedRead::set_read_timeout`]) so no single blocking
/// read can exceed it either. Invalid UTF-8 is replaced (the parse layer
/// then rejects it as a malformed request) — a binary-garbage client
/// gets a structured error, never a dropped connection.
pub fn read_request_line(
    input: &mut impl TimedRead,
    budget: Option<Duration>,
) -> std::io::Result<LineRead> {
    let start = Instant::now();
    let mut buf: Vec<u8> = Vec::new();
    loop {
        if budget.is_some_and(|b| start.elapsed() > b) {
            return Ok(LineRead::TimedOut);
        }
        let available = match input.fill_buf() {
            Ok(bytes) => bytes,
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                return Ok(LineRead::TimedOut)
            }
            Err(e) => return Err(e),
        };
        if available.is_empty() {
            return Ok(if buf.is_empty() {
                LineRead::Eof
            } else {
                LineRead::Line(finish_line(buf))
            });
        }
        match available.iter().position(|&b| b == b'\n') {
            Some(nl) => {
                if buf.len().saturating_add(nl) > MAX_LINE_BYTES {
                    return Ok(LineRead::TooLong);
                }
                buf.extend_from_slice(&available[..nl]);
                input.consume(nl + 1);
                return Ok(LineRead::Line(finish_line(buf)));
            }
            None => {
                let n = available.len();
                if buf.len().saturating_add(n) > MAX_LINE_BYTES {
                    return Ok(LineRead::TooLong);
                }
                buf.extend_from_slice(available);
                input.consume(n);
            }
        }
    }
}

fn finish_line(buf: Vec<u8>) -> String {
    let mut line = String::from_utf8_lossy(&buf).into_owned();
    while line.ends_with(['\n', '\r']) {
        line.pop();
    }
    line
}

/// Per-connection transport knobs.
#[derive(Debug, Clone, Copy, Default)]
pub struct ConnectionOptions {
    /// Per-line read budget (and socket write timeout): a client that
    /// stalls mid-line longer than this gets `client_timeout` and a
    /// close. `None` disables (stdin mode, tests).
    pub client_timeout: Option<Duration>,
}

/// What the reader thread hands the writer: either a submitted request
/// to resolve, or a transport-level line to emit verbatim (drain acks,
/// timeout errors) — routed through the same FIFO so replies never
/// reorder.
enum ReaderMsg {
    Pending(Pending),
    Verbatim(&'static str),
}

/// Serves one line stream: requests from `input`, responses to `output`,
/// one line each, FIFO. Returns when `input` reaches EOF, the client
/// times out or overflows a line (after a final structured error line),
/// a `shutdown` control line arrives (after its ack), or on the first
/// I/O error.
pub fn serve_connection<R, W>(
    engine: &Engine,
    input: R,
    mut output: W,
    opts: ConnectionOptions,
    control: &ServerControl,
) -> std::io::Result<()>
where
    R: TimedRead + Send,
    W: Write,
{
    std::thread::scope(|s| {
        let (tx, rx) = mpsc::sync_channel::<ReaderMsg>(PIPELINE_DEPTH);
        let reader = s.spawn(move || -> std::io::Result<()> {
            let mut input = input;
            input.set_read_timeout(opts.client_timeout)?;
            loop {
                let line = match read_request_line(&mut input, opts.client_timeout)? {
                    LineRead::Line(line) => line,
                    LineRead::Eof => return Ok(()),
                    LineRead::TimedOut => {
                        let _ = tx.send(ReaderMsg::Verbatim(ERR_CLIENT_TIMEOUT_LINE));
                        return Ok(());
                    }
                    LineRead::TooLong => {
                        let _ = tx.send(ReaderMsg::Verbatim(ERR_LINE_TOO_LONG_LINE));
                        return Ok(());
                    }
                };
                // control lines are transport-level: ack through the FIFO
                // (so it lands after every earlier response), start the
                // drain, and stop reading — this connection is done
                if let Some(Control::Shutdown) = parse_control(&line) {
                    let _ = tx.send(ReaderMsg::Verbatim(DRAIN_ACK));
                    engine.set_draining();
                    control.begin_drain();
                    return Ok(());
                }
                if let Some(pending) = engine.handle_line(&line) {
                    if tx.send(ReaderMsg::Pending(pending)).is_err() {
                        // writer side failed; stop reading
                        return Ok(());
                    }
                }
            }
        });
        // drain-then-flush: resolve every response that is already
        // available before paying for a flush, so pipelined streams cost
        // one flush per burst while a lone request still flushes
        // immediately before the writer blocks again
        let mut write_result: std::io::Result<()> = Ok(());
        'serve: while let Ok(first) = rx.recv() {
            let mut msg = first;
            loop {
                let response;
                let line = match msg {
                    ReaderMsg::Pending(pending) => {
                        response = engine.resolve(pending);
                        response.as_str()
                    }
                    ReaderMsg::Verbatim(line) => line,
                };
                if let Err(e) = output
                    .write_all(line.as_bytes())
                    .and_then(|()| output.write_all(b"\n"))
                {
                    write_result = Err(e);
                    break 'serve;
                }
                match rx.try_recv() {
                    Ok(next) => msg = next,
                    Err(_) => break,
                }
            }
            if let Err(e) = output.flush() {
                write_result = Err(e);
                break;
            }
        }
        let read_result = reader.join().unwrap_or(Ok(()));
        write_result.and(read_result)
    })
}

/// [`serve_connection`] with no timeout and a private, unlimited
/// [`ServerControl`] — the stdin/stdout mode and the single-stream test
/// entry point. A `shutdown` control line still drains the engine (new
/// submissions shed `shutting_down`) and ends the stream.
pub fn serve_lines<R, W>(engine: &Engine, input: R, output: W) -> std::io::Result<()>
where
    R: TimedRead + Send,
    W: Write,
{
    let control = ServerControl::unlimited();
    serve_connection(
        engine,
        input,
        output,
        ConnectionOptions::default(),
        &control,
    )
}

/// Accept loop: serves each TCP connection on its own thread (all
/// connections share the engine and therefore the micro-batcher, so
/// concurrent clients coalesce into shared batches).
///
/// Admission goes through `control`: connections past the cap get one
/// structured refusal line and a close. Setting `stop` (the CLI wires it
/// to SIGTERM/SIGINT) — or a `shutdown` control line on any connection —
/// begins a graceful drain: the engine sheds new requests as
/// `shutting_down`, blocked readers wake, and this function returns `Ok`
/// once every connection thread has joined. `on_disconnect` runs when a
/// connection closes (the CLI snapshots metrics there).
pub fn serve_tcp(
    engine: &Engine,
    listener: TcpListener,
    control: &ServerControl,
    opts: ConnectionOptions,
    stop: &AtomicBool,
    on_disconnect: &(dyn Fn() + Sync),
) -> std::io::Result<()> {
    listener.set_nonblocking(true)?;
    std::thread::scope(|s| {
        loop {
            if stop.load(Ordering::SeqCst) {
                engine.set_draining();
                control.begin_drain();
            }
            if control.is_draining() {
                // engine-side shedding must be on before we stop
                // accepting, whichever path initiated the drain
                engine.set_draining();
                return Ok(());
            }
            match listener.accept() {
                Ok((stream, _peer)) => {
                    let _ = stream.set_nodelay(true);
                    match control.register(stream.try_clone().ok()) {
                        Some(guard) => {
                            s.spawn(move || {
                                let _guard = guard;
                                let Ok(read_half) = stream.try_clone() else {
                                    return;
                                };
                                if let Some(t) = opts.client_timeout {
                                    // a peer that never reads its replies
                                    // must not wedge the writer either
                                    let _ = stream.set_write_timeout(Some(t));
                                }
                                // buffered write half: serve_connection
                                // flushes at every pipeline drain, so
                                // responses still leave promptly while
                                // bursts cost one syscall each
                                let _ = serve_connection(
                                    engine,
                                    BufReader::new(read_half),
                                    std::io::BufWriter::new(stream),
                                    opts,
                                    control,
                                );
                                on_disconnect();
                            });
                        }
                        None => refuse_connection(engine, control, stream),
                    }
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(10));
                }
                Err(e) => return Err(e),
            }
        }
        // thread::scope joins the per-connection threads here: by the
        // time serve_tcp returns, no reader/writer is still running
    })
}

/// Answers a connection the cap (or a drain) refused: one structured
/// JSON line, best-effort with a short write timeout, then close.
fn refuse_connection(engine: &Engine, control: &ServerControl, mut stream: TcpStream) {
    let _ = stream.set_write_timeout(Some(Duration::from_millis(250)));
    let line = if control.is_draining() {
        ERR_REFUSED_DRAINING_LINE
    } else {
        ERR_REFUSED_LINE
    };
    let _ = stream.write_all(line.as_bytes());
    let _ = stream.write_all(b"\n");
    if let Some(metrics) = engine.metrics() {
        metrics.record_serve_shed(ServeShedKind::RefusedConnection);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::SystemClock;
    use crate::engine::EngineConfig;
    use crate::model::ServeModel;
    use crate::protocol::ERR_SHUTTING_DOWN;
    use std::io::Cursor;
    use std::sync::Arc;

    const BINARY: &str = "svm_type c_svc\nkernel_type linear\nnr_class 2\ntotal_sv 2\nrho 0\nlabel 1 -1\nnr_sv 1 1\nSV\n1 1:1\n-1 2:1\n";

    fn engine(max_batch: usize, max_wait_us: u64) -> Engine {
        Engine::new(
            ServeModel::from_text(BINARY).unwrap(),
            EngineConfig {
                max_batch,
                max_wait_us,
                ..EngineConfig::default()
            },
            Arc::new(SystemClock::new()),
            None,
        )
    }

    #[test]
    fn serve_lines_answers_fifo_and_skips_comments() {
        // batching on (max_batch 8): responses must still come back in
        // submission order
        let e = engine(8, 200);
        let input = "1 1:3 2:1\n# comment\n1:0 2:5\n\nbad ::\n{\"id\":1,\"features\":[1,0]}\n";
        let mut out = Vec::new();
        serve_lines(&e, Cursor::new(input), &mut out).unwrap();
        e.shutdown();
        let out = String::from_utf8(out).unwrap();
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 4, "{out}");
        assert_eq!(lines[0], "1");
        assert_eq!(lines[1], "-1");
        assert!(lines[2].starts_with("{\"error\":"));
        assert_eq!(lines[3], "{\"id\":1,\"label\":1,\"decision\":1.0}");
    }

    #[test]
    fn serve_tcp_roundtrips_concurrent_connections() {
        use std::io::{BufRead, Write};
        use std::net::TcpStream;

        let e = Arc::new(engine(16, 500));
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let stop = Arc::new(AtomicBool::new(false));
        let control = Arc::new(ServerControl::unlimited());

        let e2 = Arc::clone(&e);
        let stop2 = Arc::clone(&stop);
        let control2 = Arc::clone(&control);
        let server = std::thread::spawn(move || {
            serve_tcp(
                &e2,
                listener,
                &control2,
                ConnectionOptions::default(),
                &stop2,
                &|| {},
            )
            .unwrap();
        });

        let clients: Vec<_> = (0..3)
            .map(|c| {
                std::thread::spawn(move || {
                    let stream = TcpStream::connect(addr).unwrap();
                    let mut reader = BufReader::new(stream.try_clone().unwrap());
                    let mut write = stream;
                    let mut answers = Vec::new();
                    for i in 0..20 {
                        // alternate positive / negative queries per client
                        let line = if (c + i) % 2 == 0 {
                            "1 1:3\n"
                        } else {
                            "1 2:3\n"
                        };
                        write.write_all(line.as_bytes()).unwrap();
                        let mut resp = String::new();
                        reader.read_line(&mut resp).unwrap();
                        answers.push(resp.trim().to_string());
                        let expect = if (c + i) % 2 == 0 { "1" } else { "-1" };
                        assert_eq!(resp.trim(), expect, "client {c} request {i}");
                    }
                    answers.len()
                })
            })
            .collect();
        for c in clients {
            assert_eq!(c.join().unwrap(), 20);
        }
        stop.store(true, Ordering::SeqCst);
        server.join().unwrap();
        assert_eq!(control.active_connections(), 0, "connection guard leak");
        e.shutdown();
    }

    /// A reader that yields some data, then fails with `TimedOut` — the
    /// deterministic stand-in for a stalled socket.
    struct StallingReader {
        data: Cursor<Vec<u8>>,
        stalled: bool,
    }

    impl std::io::Read for StallingReader {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            let n = std::io::Read::read(&mut self.data, buf)?;
            if n == 0 {
                self.stalled = true;
                return Err(std::io::Error::new(ErrorKind::TimedOut, "stalled peer"));
            }
            Ok(n)
        }
    }

    impl BufRead for StallingReader {
        fn fill_buf(&mut self) -> std::io::Result<&[u8]> {
            if self.data.position() as usize >= self.data.get_ref().len() {
                self.stalled = true;
                return Err(std::io::Error::new(ErrorKind::TimedOut, "stalled peer"));
            }
            self.data.fill_buf()
        }
        fn consume(&mut self, amt: usize) {
            self.data.consume(amt);
        }
    }

    impl TimedRead for StallingReader {}

    #[test]
    fn read_request_line_handles_eof_partial_and_timeout() {
        let mut c = Cursor::new(b"full line\npartial".to_vec());
        assert_eq!(
            read_request_line(&mut c, None).unwrap(),
            LineRead::Line("full line".into())
        );
        // a final unterminated line still parses (read_line semantics)
        assert_eq!(
            read_request_line(&mut c, None).unwrap(),
            LineRead::Line("partial".into())
        );
        assert_eq!(read_request_line(&mut c, None).unwrap(), LineRead::Eof);

        // a stall mid-line surfaces as TimedOut, not an error
        let mut s = StallingReader {
            data: Cursor::new(b"1 1:3\nhalf a li".to_vec()),
            stalled: false,
        };
        assert_eq!(
            read_request_line(&mut s, None).unwrap(),
            LineRead::Line("1 1:3".into())
        );
        assert_eq!(read_request_line(&mut s, None).unwrap(), LineRead::TimedOut);
        assert!(s.stalled);
    }

    #[test]
    fn read_request_line_caps_line_length() {
        let mut huge = vec![b'x'; MAX_LINE_BYTES + 10];
        huge.push(b'\n');
        let mut c = Cursor::new(huge);
        assert_eq!(read_request_line(&mut c, None).unwrap(), LineRead::TooLong);
    }

    #[test]
    fn read_request_line_replaces_invalid_utf8() {
        let mut c = Cursor::new(b"\xff\xfe 1:1\n".to_vec());
        match read_request_line(&mut c, None).unwrap() {
            LineRead::Line(l) => assert!(l.contains('\u{fffd}')),
            other => panic!("expected Line, got {other:?}"),
        }
    }

    #[test]
    fn stalled_client_gets_final_timeout_line() {
        let e = engine(1, 0);
        let input = StallingReader {
            data: Cursor::new(b"1 1:3\n{\"id\":2,\"feat".to_vec()),
            stalled: false,
        };
        let mut out = Vec::new();
        let control = ServerControl::unlimited();
        serve_connection(&e, input, &mut out, ConnectionOptions::default(), &control).unwrap();
        e.shutdown();
        let out = String::from_utf8(out).unwrap();
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines, vec!["1", ERR_CLIENT_TIMEOUT_LINE], "{out}");
    }

    #[test]
    fn shutdown_control_line_acks_drains_and_ends_stream() {
        let e = engine(8, 200);
        let control = ServerControl::unlimited();
        let input = Cursor::new("1 1:3\nshutdown\n1 2:9\n".as_bytes().to_vec());
        let mut out = Vec::new();
        serve_connection(&e, input, &mut out, ConnectionOptions::default(), &control).unwrap();
        let out = String::from_utf8(out).unwrap();
        let lines: Vec<&str> = out.lines().collect();
        // the request before shutdown is answered, the ack follows, and
        // the line after shutdown is never read
        assert_eq!(lines, vec!["1", DRAIN_ACK], "{out}");
        assert!(control.is_draining());
        assert!(e.is_draining());
        // a later stream on the same engine sheds with shutting_down
        let input = Cursor::new("1 1:3\n".as_bytes().to_vec());
        let mut out = Vec::new();
        serve_connection(&e, input, &mut out, ConnectionOptions::default(), &control).unwrap();
        let out = String::from_utf8(out).unwrap();
        assert_eq!(out.trim(), format!("{{\"error\":\"{ERR_SHUTTING_DOWN}\"}}"));
        e.shutdown();
    }
}
