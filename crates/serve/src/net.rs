//! Transport: newline-delimited serving over stdin/stdout or TCP.
//!
//! Both modes share [`serve_lines`]: a reader thread parses and submits
//! lines into the engine while the writer resolves responses in strict
//! FIFO submission order — so the micro-batcher can coalesce requests
//! that are still streaming in, yet clients always receive answers in
//! the order they sent requests.

use std::io::{BufRead, BufReader, ErrorKind, Write};
use std::net::TcpListener;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;
use std::time::Duration;

use crate::engine::{Engine, Pending};

/// How many submitted-but-unresolved requests one connection may have in
/// flight before its reader blocks (bounds memory per connection).
const PIPELINE_DEPTH: usize = 1024;

/// Serves one line stream: requests from `input`, responses to `output`,
/// one line each, FIFO. Returns when `input` reaches EOF (or the first
/// I/O error on either side).
pub fn serve_lines<R, W>(engine: &Engine, input: R, mut output: W) -> std::io::Result<()>
where
    R: BufRead + Send,
    W: Write,
{
    std::thread::scope(|s| {
        let (tx, rx) = mpsc::sync_channel::<Pending>(PIPELINE_DEPTH);
        let reader = s.spawn(move || -> std::io::Result<()> {
            // manual read_line loop: one reused buffer instead of a
            // fresh String per request
            let mut input = input;
            let mut line = String::new();
            loop {
                line.clear();
                if input.read_line(&mut line)? == 0 {
                    return Ok(());
                }
                let trimmed = line.trim_end_matches(['\n', '\r']);
                if let Some(pending) = engine.handle_line(trimmed) {
                    if tx.send(pending).is_err() {
                        // writer side failed; stop reading
                        return Ok(());
                    }
                }
            }
        });
        // drain-then-flush: resolve every response that is already
        // available before paying for a flush, so pipelined streams cost
        // one flush per burst while a lone request still flushes
        // immediately before the writer blocks again
        let mut write_result: std::io::Result<()> = Ok(());
        'serve: while let Ok(first) = rx.recv() {
            let mut pending = first;
            loop {
                let response = engine.resolve(pending);
                if let Err(e) = output
                    .write_all(response.as_bytes())
                    .and_then(|()| output.write_all(b"\n"))
                {
                    write_result = Err(e);
                    break 'serve;
                }
                match rx.try_recv() {
                    Ok(next) => pending = next,
                    Err(_) => break,
                }
            }
            if let Err(e) = output.flush() {
                write_result = Err(e);
                break;
            }
        }
        let read_result = reader.join().unwrap_or(Ok(()));
        write_result.and(read_result)
    })
}

/// Accept loop: serves each TCP connection on its own thread (all
/// connections share the engine and therefore the micro-batcher, so
/// concurrent clients coalesce into shared batches). `stop` makes the
/// loop exit after in-flight connections finish; `on_disconnect` runs
/// when a connection closes (the CLI snapshots metrics there).
pub fn serve_tcp(
    engine: &Engine,
    listener: TcpListener,
    stop: &AtomicBool,
    on_disconnect: &(dyn Fn() + Sync),
) -> std::io::Result<()> {
    listener.set_nonblocking(true)?;
    std::thread::scope(|s| {
        loop {
            if stop.load(Ordering::SeqCst) {
                return Ok(());
            }
            match listener.accept() {
                Ok((stream, _peer)) => {
                    let _ = stream.set_nodelay(true);
                    s.spawn(move || {
                        let Ok(read_half) = stream.try_clone() else {
                            return;
                        };
                        // buffered write half: serve_lines flushes at
                        // every pipeline drain, so responses still leave
                        // promptly while bursts cost one syscall each
                        let _ = serve_lines(
                            engine,
                            BufReader::new(read_half),
                            std::io::BufWriter::new(stream),
                        );
                        on_disconnect();
                    });
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(10));
                }
                Err(e) => return Err(e),
            }
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::SystemClock;
    use crate::engine::EngineConfig;
    use crate::model::ServeModel;
    use std::io::Cursor;
    use std::sync::Arc;

    const BINARY: &str = "svm_type c_svc\nkernel_type linear\nnr_class 2\ntotal_sv 2\nrho 0\nlabel 1 -1\nnr_sv 1 1\nSV\n1 1:1\n-1 2:1\n";

    fn engine(max_batch: usize, max_wait_us: u64) -> Engine {
        Engine::new(
            ServeModel::from_text(BINARY).unwrap(),
            EngineConfig {
                max_batch,
                max_wait_us,
            },
            Arc::new(SystemClock::new()),
            None,
        )
    }

    #[test]
    fn serve_lines_answers_fifo_and_skips_comments() {
        // batching on (max_batch 8): responses must still come back in
        // submission order
        let e = engine(8, 200);
        let input = "1 1:3 2:1\n# comment\n1:0 2:5\n\nbad ::\n{\"id\":1,\"features\":[1,0]}\n";
        let mut out = Vec::new();
        serve_lines(&e, Cursor::new(input), &mut out).unwrap();
        e.shutdown();
        let out = String::from_utf8(out).unwrap();
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 4, "{out}");
        assert_eq!(lines[0], "1");
        assert_eq!(lines[1], "-1");
        assert!(lines[2].starts_with("{\"error\":"));
        assert_eq!(lines[3], "{\"id\":1,\"label\":1,\"decision\":1.0}");
    }

    #[test]
    fn serve_tcp_roundtrips_concurrent_connections() {
        use std::io::{BufRead, Write};
        use std::net::TcpStream;

        let e = Arc::new(engine(16, 500));
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let stop = Arc::new(AtomicBool::new(false));

        let e2 = Arc::clone(&e);
        let stop2 = Arc::clone(&stop);
        let server = std::thread::spawn(move || {
            serve_tcp(&e2, listener, &stop2, &|| {}).unwrap();
        });

        let clients: Vec<_> = (0..3)
            .map(|c| {
                std::thread::spawn(move || {
                    let stream = TcpStream::connect(addr).unwrap();
                    let mut reader = BufReader::new(stream.try_clone().unwrap());
                    let mut write = stream;
                    let mut answers = Vec::new();
                    for i in 0..20 {
                        // alternate positive / negative queries per client
                        let line = if (c + i) % 2 == 0 {
                            "1 1:3\n"
                        } else {
                            "1 2:3\n"
                        };
                        write.write_all(line.as_bytes()).unwrap();
                        let mut resp = String::new();
                        reader.read_line(&mut resp).unwrap();
                        answers.push(resp.trim().to_string());
                        let expect = if (c + i) % 2 == 0 { "1" } else { "-1" };
                        assert_eq!(resp.trim(), expect, "client {c} request {i}");
                    }
                    answers.len()
                })
            })
            .collect();
        for c in clients {
            assert_eq!(c.join().unwrap(), 20);
        }
        stop.store(true, Ordering::SeqCst);
        server.join().unwrap();
        e.shutdown();
    }
}
