//! Smoke tests of the `figures` experiment binary.

use std::process::Command;

fn run(args: &[&str]) -> (bool, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_figures"))
        .args(args)
        .output()
        .expect("spawn figures");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

#[test]
fn list_names_every_experiment() {
    let (ok, stdout, _) = run(&["--list"]);
    assert!(ok);
    for id in [
        "table1",
        "fig1a",
        "fig1b",
        "fig1c",
        "fig1d",
        "fig2a",
        "fig2b",
        "fig3",
        "fig4a",
        "fig4b",
        "sat6",
        "profiling",
        "cov",
        "ablation",
        "multinode",
        "precision",
    ] {
        assert!(stdout.lines().any(|l| l == id), "missing {id}:\n{stdout}");
    }
}

#[test]
fn runs_a_small_experiment_and_writes_csv() {
    let (ok, stdout, stderr) = run(&["fig3", "--scale", "small"]);
    assert!(ok, "{stderr}");
    assert!(stdout.contains("## fig3"), "{stdout}");
    assert!(stdout.contains("epsilon"), "{stdout}");
    assert!(std::path::Path::new("bench_results/fig3.csv").exists());
}

#[test]
fn unknown_experiment_fails_cleanly() {
    let (ok, _, stderr) = run(&["fig9"]);
    assert!(!ok);
    assert!(stderr.contains("unknown experiment"), "{stderr}");
    let (ok, _, stderr) = run(&[]);
    assert!(!ok);
    assert!(stderr.contains("usage"), "{stderr}");
    let (ok, _, stderr) = run(&["fig3", "--scale", "galactic"]);
    assert!(!ok);
    assert!(stderr.contains("--scale"), "{stderr}");
}
