//! `serve_bench` — load benchmark of the `svm-serve` micro-batching
//! engine: batched throughput vs sequential single-request serving on a
//! synthetic 16k-row workload.
//!
//! Two modes run identical request streams against the same model over a
//! real TCP loopback connection (the production wire path, syscalls and
//! all):
//!
//! * `single`   — one client, `max_batch = 1`, strict request-response:
//!   every request pays a full write/read round trip over the socket.
//! * `batched`  — concurrent clients each *streaming* their shard down
//!   the wire; the server's reader pipeline keeps many requests in
//!   flight, and the bounded queue coalesces them (`max_batch = 512`)
//!   so the round-trip and wake-up costs are amortized across batches.
//!
//! Each mode runs three repetitions and reports its best (the standard
//! defense against scheduler noise on a shared box; `--smoke` runs one).
//! Writes `bench_results/serve_latency.csv` (`mode,metric,value` rows:
//! throughput, p50/p99/mean latency, batch-size distribution) and
//! asserts batched throughput is at least 5x single-request throughput
//! unless `--smoke` (CI's quick leg) is given.
//!
//! `serve_bench overload` instead runs the **overload sweep**: it
//! estimates the serving capacity of one pipelined connection, then
//! offers paced open-loop load at 1×/2×/4× that capacity against a
//! bounded queue (`--queue-watermark`-style admission plus a dequeue
//! deadline) and reports, per multiplier, offered load vs goodput, the
//! shed rate, and the p99 latency of the requests that were admitted
//! and served — `bench_results/serve_overload.csv`. Every request must
//! come back with exactly one structured reply; above capacity the
//! server is expected to shed rather than stall.

use std::io::{BufRead, BufReader, Write};
use std::net::{Shutdown, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use plssvm_bench::results_path;
use plssvm_bench::stats::{mean, percentile};
use plssvm_core::svm::LsSvm;
use plssvm_core::trace::{MetricsSink, Telemetry};
use plssvm_data::synthetic::{generate_planes, PlanesConfig};
use plssvm_serve::{
    serve_tcp, ConnectionOptions, Engine, EngineConfig, ServeModel, ServerControl, SystemClock,
};

/// Total requests per mode (the "16k-row synthetic workload").
const REQUESTS: usize = 16_384;
/// Quick CI smoke variant.
const SMOKE_REQUESTS: usize = 2_048;
/// Pipelining clients in batched mode.
const CLIENTS: usize = 2;

/// Trains the small serving model (32 points x 4 features, linear): the
/// per-row predict cost is tiny, so the benchmark isolates the serving
/// layer's per-request overhead — exactly what batching amortizes.
fn build_model() -> ServeModel {
    let data = generate_planes::<f64>(
        &PlanesConfig::new(32, 4, 99)
            .with_cluster_sep(3.0)
            .with_flip_fraction(0.0),
    )
    .expect("generate training data");
    let out = LsSvm::new()
        .with_epsilon(1e-6)
        .train(&data)
        .expect("train serving model");
    ServeModel::from_text(&out.model.to_model_string()).expect("load serving model")
}

/// Pre-renders the request stream as newline-terminated LIBSVM wire
/// lines (cycled rows of a fresh synthetic query set, so parsing cost is
/// part of the measurement but allocation of the stream itself is not).
fn build_requests(n: usize) -> Vec<String> {
    let queries = generate_planes::<f64>(
        &PlanesConfig::new(512, 4, 1234)
            .with_cluster_sep(3.0)
            .with_flip_fraction(0.0),
    )
    .expect("generate query data");
    (0..n)
        .map(|i| {
            let row = i % queries.points();
            let mut line = String::with_capacity(96);
            line.push('1');
            for j in 0..queries.features() {
                line.push_str(&format!(" {}:{:.3}", j + 1, queries.x.get(row, j)));
            }
            line.push('\n');
            line
        })
        .collect()
}

fn engine(model: ServeModel, config: EngineConfig) -> (Engine, Arc<Telemetry>) {
    let telemetry = Telemetry::shared();
    let e = Engine::new(
        model,
        config,
        Arc::new(SystemClock::new()),
        Some(Arc::clone(&telemetry) as Arc<dyn MetricsSink>),
    );
    (e, telemetry)
}

struct ModeResult {
    wall_s: f64,
    latencies_us: Vec<f64>,
}

/// Starts a server on an ephemeral loopback port, runs `clients` against
/// it (the closure does its own timing, after connection setup), then
/// shuts the server down cleanly.
fn with_server<T, F>(config: EngineConfig, clients: F) -> (T, Arc<Telemetry>)
where
    F: FnOnce(std::net::SocketAddr) -> T,
{
    let (engine, telemetry) = engine(build_model(), config);
    let engine = Arc::new(engine);
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let addr = listener.local_addr().expect("local addr");
    let stop = Arc::new(AtomicBool::new(false));
    let control = Arc::new(ServerControl::unlimited());
    let server = {
        let engine = Arc::clone(&engine);
        let stop = Arc::clone(&stop);
        let control = Arc::clone(&control);
        std::thread::spawn(move || {
            serve_tcp(
                &engine,
                listener,
                &control,
                ConnectionOptions::default(),
                &stop,
                &|| {},
            )
        })
    };
    let result = clients(addr);
    stop.store(true, Ordering::SeqCst);
    server.join().expect("server thread").expect("serve_tcp");
    engine.shutdown();
    (result, telemetry)
}

/// The latency modes measure the unbounded-queue serving path exactly as
/// PR 7 shipped it: no watermark, no deadline.
fn latency_config(max_batch: usize, max_wait_us: u64) -> EngineConfig {
    EngineConfig {
        max_batch,
        max_wait_us,
        queue_watermark: 0,
        deadline_us: 0,
    }
}

/// Connects and completes one warm-up round trip so connection setup,
/// accept-poll latency, and server thread spawn never count against the
/// measured mode.
fn connect_warm(addr: std::net::SocketAddr) -> (TcpStream, BufReader<TcpStream>) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.set_nodelay(true).expect("nodelay");
    let mut reader = BufReader::new(stream.try_clone().expect("clone stream"));
    stream.write_all(b"1 1:0\n").expect("warmup write");
    let mut line = String::new();
    reader.read_line(&mut line).expect("warmup read");
    assert!(!line.trim().is_empty(), "warmup got no response");
    (stream, reader)
}

/// Strict request-response over one connection: write a line, block for
/// its answer, repeat. Every request pays the full wire round trip.
fn run_single(requests: &[String]) -> (ModeResult, Arc<Telemetry>) {
    with_server(latency_config(1, 0), |addr| {
        let (mut stream, mut reader) = connect_warm(addr);
        let mut lat = Vec::with_capacity(requests.len());
        let mut line = String::new();
        let start = Instant::now();
        for req in requests {
            let t0 = Instant::now();
            stream.write_all(req.as_bytes()).expect("write");
            line.clear();
            reader.read_line(&mut line).expect("read");
            assert!(!line.trim().is_empty());
            lat.push(t0.elapsed().as_secs_f64() * 1e6);
        }
        ModeResult {
            wall_s: start.elapsed().as_secs_f64(),
            latencies_us: lat,
        }
    })
}

/// Streaming clients: each shard goes down the wire as fast as the
/// socket accepts it while responses are drained concurrently — the
/// server-side pipeline keeps the batcher's queue full, so requests
/// coalesce within and across connections.
fn run_batched(requests: &[String]) -> (ModeResult, Arc<Telemetry>) {
    let shard = requests.len() / CLIENTS;
    with_server(latency_config(512, 500), |addr| {
        // every connection is up and warmed before the timer starts
        let conns: Vec<(TcpStream, BufReader<TcpStream>)> =
            (0..CLIENTS).map(|_| connect_warm(addr)).collect();
        let start = Instant::now();
        let latencies_us: Vec<f64> = std::thread::scope(|s| {
            let handles: Vec<_> = conns
                .into_iter()
                .enumerate()
                .map(|(c, (stream, mut reader))| {
                    let lines = &requests[c * shard..(c + 1) * shard];
                    s.spawn(move || {
                        // responses come back in FIFO send order, so
                        // per-request latency is computed after the run by
                        // zipping send and completion timestamp vectors —
                        // no cross-thread channel inside the hot loop
                        let mut done = Vec::with_capacity(lines.len());
                        std::thread::scope(|inner| {
                            // buffered streaming writer: a real pipelined
                            // client does not pay one syscall per request
                            let raw = stream.try_clone().expect("clone stream");
                            let mut writer = std::io::BufWriter::new(stream);
                            let sender = inner.spawn(move || {
                                let mut sent = Vec::with_capacity(lines.len());
                                for line in lines {
                                    sent.push(Instant::now());
                                    writer.write_all(line.as_bytes()).expect("write");
                                }
                                writer.flush().expect("flush");
                                raw.shutdown(Shutdown::Write).ok();
                                sent
                            });
                            let mut line = String::new();
                            for _ in 0..lines.len() {
                                line.clear();
                                reader.read_line(&mut line).expect("read");
                                assert!(!line.trim().is_empty());
                                done.push(Instant::now());
                            }
                            let sent = sender.join().expect("sender thread");
                            sent.iter()
                                .zip(&done)
                                .map(|(s, d)| d.duration_since(*s).as_secs_f64() * 1e6)
                                .collect::<Vec<f64>>()
                        })
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("client thread"))
                .collect()
        });
        ModeResult {
            wall_s: start.elapsed().as_secs_f64(),
            latencies_us,
        }
    })
}

fn push_mode_rows(csv: &mut String, mode: &str, r: &ModeResult, telemetry: &Telemetry) {
    let n = r.latencies_us.len();
    let rps = n as f64 / r.wall_s;
    csv.push_str(&format!("{mode},requests,{n}\n"));
    csv.push_str(&format!("{mode},wall_s,{:.6}\n", r.wall_s));
    csv.push_str(&format!("{mode},throughput_rps,{rps:.1}\n"));
    csv.push_str(&format!(
        "{mode},p50_us,{:.1}\n",
        percentile(&r.latencies_us, 50.0)
    ));
    csv.push_str(&format!(
        "{mode},p99_us,{:.1}\n",
        percentile(&r.latencies_us, 99.0)
    ));
    csv.push_str(&format!("{mode},mean_us,{:.1}\n", mean(&r.latencies_us)));
    let serve = &telemetry.report().serve;
    csv.push_str(&format!("{mode},batches,{}\n", serve.batches));
    csv.push_str(&format!(
        "{mode},mean_batch_size,{:.2}\n",
        serve.mean_batch_size()
    ));
    csv.push_str(&format!(
        "{mode},max_queue_depth,{}\n",
        serve.max_queue_depth
    ));
    for (size, count) in &serve.batch_size_hist {
        csv.push_str(&format!("{mode},batch_size_{size},{count}\n"));
    }
}

/// Runs a mode `reps` times and keeps the fastest repetition.
fn best_of<F>(reps: usize, label: &str, mut run: F) -> (ModeResult, Arc<Telemetry>)
where
    F: FnMut() -> (ModeResult, Arc<Telemetry>),
{
    let mut best: Option<(ModeResult, Arc<Telemetry>)> = None;
    for rep in 1..=reps {
        let (r, t) = run();
        println!(
            "  {label} rep {rep}/{reps}: {:.3} s, {:.0} req/s",
            r.wall_s,
            r.latencies_us.len() as f64 / r.wall_s
        );
        if best.as_ref().is_none_or(|(b, _)| r.wall_s < b.wall_s) {
            best = Some((r, t));
        }
    }
    best.expect("at least one repetition")
}

// ---------------------------------------------------------------------------
// Overload sweep: paced open-loop load above capacity.
// ---------------------------------------------------------------------------

/// One paced open-loop measurement point.
struct OverloadPoint {
    multiplier: f64,
    offered_rps: f64,
    goodput_rps: f64,
    shed_rate: f64,
    admitted_p99_us: f64,
    ok: usize,
    overloaded: usize,
    expired: usize,
}

/// The bounded-queue server the overload sweep runs against: a small
/// batch budget, a tight watermark, and a dequeue deadline — the
/// configuration an operator would run to keep tail latency bounded.
fn overload_config() -> EngineConfig {
    EngineConfig {
        max_batch: 64,
        max_wait_us: 200,
        queue_watermark: 256,
        deadline_us: 5_000,
    }
}

/// Estimates the sustainable *goodput* of one pipelined connection under
/// the bounded-queue overload config: stream `requests` unpaced and
/// count only the requests actually served — the rate the watermarked
/// queue can sustain is the capacity the sweep's multipliers scale.
fn estimate_capacity(requests: &[String]) -> f64 {
    let (rps, _) = with_server(overload_config(), |addr| {
        let (stream, mut reader) = connect_warm(addr);
        let start = Instant::now();
        let raw = stream.try_clone().expect("clone stream");
        let served = std::thread::scope(|s| {
            let mut writer = std::io::BufWriter::new(stream);
            s.spawn(move || {
                for line in requests {
                    writer.write_all(line.as_bytes()).expect("write");
                }
                writer.flush().expect("flush");
                raw.shutdown(Shutdown::Write).ok();
            });
            let mut line = String::new();
            let mut served = 0usize;
            for _ in 0..requests.len() {
                line.clear();
                reader.read_line(&mut line).expect("read");
                if !line.starts_with('{') {
                    served += 1;
                }
            }
            served
        });
        served.max(1) as f64 / start.elapsed().as_secs_f64()
    });
    rps
}

/// Offers `requests` at `offered_rps` (paced open loop: the sender holds
/// the schedule even when replies lag) and classifies every reply.
fn run_overload_point(requests: &[String], multiplier: f64, offered_rps: f64) -> OverloadPoint {
    let (point, _) = with_server(overload_config(), |addr| {
        let (stream, mut reader) = connect_warm(addr);
        let raw = stream.try_clone().expect("clone stream");
        let interval = Duration::from_secs_f64(1.0 / offered_rps);
        let start = Instant::now();
        let (sent, done, replies) = std::thread::scope(|s| {
            let mut writer = std::io::BufWriter::new(stream);
            let sender = s.spawn(move || {
                let mut sent = Vec::with_capacity(requests.len());
                for (i, line) in requests.iter().enumerate() {
                    // hold the offered schedule: sleep for coarse gaps,
                    // spin out the sub-millisecond remainder
                    let target = start + interval.mul_f64(i as f64);
                    loop {
                        let now = Instant::now();
                        if now >= target {
                            break;
                        }
                        let remaining = target - now;
                        if remaining > Duration::from_millis(1) {
                            std::thread::sleep(remaining - Duration::from_millis(1));
                        } else {
                            std::hint::spin_loop();
                        }
                    }
                    sent.push(Instant::now());
                    writer.write_all(line.as_bytes()).expect("write");
                    writer.flush().expect("flush");
                }
                raw.shutdown(Shutdown::Write).ok();
                sent
            });
            let mut done = Vec::with_capacity(requests.len());
            let mut replies = Vec::with_capacity(requests.len());
            let mut line = String::new();
            for _ in 0..requests.len() {
                line.clear();
                let read = reader.read_line(&mut line).expect("read");
                assert!(read > 0, "server closed before answering every request");
                done.push(Instant::now());
                replies.push(line.trim_end().to_string());
            }
            (sender.join().expect("sender"), done, replies)
        });
        let wall_s = start.elapsed().as_secs_f64();
        let (mut ok, mut overloaded, mut expired) = (0usize, 0usize, 0usize);
        let mut ok_latencies = Vec::with_capacity(replies.len());
        for ((reply, s), d) in replies.iter().zip(&sent).zip(&done) {
            if reply.contains("\"error\":\"overloaded\"") {
                overloaded += 1;
            } else if reply.contains("\"error\":\"deadline_exceeded\"") {
                expired += 1;
            } else {
                assert!(
                    !reply.starts_with('{'),
                    "unexpected error reply under overload: {reply}"
                );
                ok += 1;
                ok_latencies.push(d.duration_since(*s).as_secs_f64() * 1e6);
            }
        }
        OverloadPoint {
            multiplier,
            offered_rps,
            goodput_rps: ok as f64 / wall_s,
            shed_rate: (overloaded + expired) as f64 / replies.len() as f64,
            admitted_p99_us: percentile(&ok_latencies, 99.0),
            ok,
            overloaded,
            expired,
        }
    });
    point
}

fn run_overload_sweep(smoke: bool) {
    let n = if smoke { SMOKE_REQUESTS } else { REQUESTS };
    let requests = build_requests(n);
    let capacity = estimate_capacity(&requests);
    println!("serve_bench overload: capacity estimate {capacity:.0} req/s ({n} requests/point)");

    let mut csv = String::from("multiplier,offered_rps,goodput_rps,shed_rate,admitted_p99_us\n");
    let mut points = Vec::new();
    for multiplier in [1.0, 2.0, 4.0] {
        let p = run_overload_point(&requests, multiplier, capacity * multiplier);
        println!(
            "  {multiplier:.0}x: offered {:.0} rps, goodput {:.0} rps, shed {:.1}% \
             (overloaded {}, deadline {}), admitted p99 {:.0} us, ok {}",
            p.offered_rps,
            p.goodput_rps,
            p.shed_rate * 100.0,
            p.overloaded,
            p.expired,
            p.admitted_p99_us,
            p.ok,
        );
        csv.push_str(&format!(
            "{:.0},{:.1},{:.1},{:.4},{:.1}\n",
            p.multiplier, p.offered_rps, p.goodput_rps, p.shed_rate, p.admitted_p99_us
        ));
        points.push(p);
    }
    let path = results_path("serve_overload.csv");
    plssvm_data::write_atomic(&path, csv.as_bytes()).expect("write csv");
    println!("wrote {}", path.display());

    // every point answered all n requests (asserted inline); above
    // capacity the server must shed rather than queue without bound
    if !smoke {
        let at_4x = points.last().expect("three points");
        assert!(
            at_4x.overloaded + at_4x.expired > 0,
            "4x capacity must shed with a 256-deep watermark"
        );
        assert!(
            at_4x.ok > 0,
            "the server must keep some goodput while shedding"
        );
        println!("SUCCESS: sheds above capacity, goodput stays nonzero");
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    if std::env::args().any(|a| a == "overload") {
        run_overload_sweep(smoke);
        return;
    }
    let n = if smoke { SMOKE_REQUESTS } else { REQUESTS };
    let reps = if smoke { 1 } else { 3 };
    let requests = build_requests(n);

    println!("serve_bench: {n} requests per mode ({CLIENTS} clients batched, best of {reps})");
    let (single, single_t) = best_of(reps, "single ", || run_single(&requests));
    let (batched, batched_t) = best_of(reps, "batched", || run_batched(&requests));
    let speedup = single.wall_s / batched.wall_s;
    println!("  speedup: {speedup:.2}x");

    let mut csv = String::from("mode,metric,value\n");
    push_mode_rows(&mut csv, "single", &single, &single_t);
    push_mode_rows(&mut csv, "batched", &batched, &batched_t);
    csv.push_str(&format!("summary,speedup,{speedup:.2}\n"));
    let path = results_path("serve_latency.csv");
    plssvm_data::write_atomic(&path, csv.as_bytes()).expect("write csv");
    println!("wrote {}", path.display());

    if !smoke {
        assert!(
            speedup >= 5.0,
            "batched serving must be at least 5x single-request throughput, got {speedup:.2}x"
        );
        println!("SUCCESS: batched >= 5x single-request throughput");
    }
}
