//! `figures` — regenerates the paper's tables and figures.
//!
//! ```text
//! figures <id>... [--scale small|medium]
//! figures all [--scale small|medium]
//! figures --list
//! ```
//!
//! Output: aligned tables on stdout plus CSV files under `bench_results/`.
//! See `EXPERIMENTS.md` for the experiment index and a recorded run.

use std::process::ExitCode;

use plssvm_bench::figures::{self, Scale, ALL_IDS};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args.iter().any(|a| a == "-h" || a == "--help") {
        eprintln!(
            "usage: figures <id>... [--scale small|medium]\n       figures all\n       figures --list\nids: {}",
            ALL_IDS.join(", ")
        );
        return ExitCode::from(2);
    }
    if args.iter().any(|a| a == "--list") {
        for id in ALL_IDS {
            println!("{id}");
        }
        return ExitCode::SUCCESS;
    }

    let mut scale = Scale::Medium;
    let mut ids: Vec<String> = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--scale" => match it.next().and_then(|s| Scale::parse(s)) {
                Some(s) => scale = s,
                None => {
                    eprintln!("figures: --scale needs 'small' or 'medium'");
                    return ExitCode::FAILURE;
                }
            },
            "all" => ids.extend(ALL_IDS.iter().map(|s| s.to_string())),
            other => ids.push(other.to_string()),
        }
    }

    let mut failed = false;
    for id in &ids {
        match figures::run(id, scale) {
            Some(report) => println!("{report}"),
            None => {
                eprintln!("figures: unknown experiment '{id}' (try --list)");
                failed = true;
            }
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
