//! Small statistics helpers for the measurement harness.

/// Arithmetic mean (0 for an empty slice).
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Population standard deviation.
pub fn std_dev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    (xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64).sqrt()
}

/// Coefficient of variation `σ/μ` — the paper's run-to-run stability
/// metric (§IV-C reports 0.11 for PLSSVM vs 0.37 for ThunderSVM on GPUs).
pub fn coefficient_of_variation(xs: &[f64]) -> f64 {
    let m = mean(xs);
    if m == 0.0 {
        0.0
    } else {
        std_dev(xs) / m
    }
}

/// Nearest-rank percentile (`p` in `[0, 100]`); 0 for an empty slice.
/// Sorts a copy, so callers can pass raw latency samples.
pub fn percentile(xs: &[f64], p: f64) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let mut sorted = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// Least squares fit of `y = a·x^b` through log-log regression.
/// Returns `(a, b)`. Requires positive data.
pub fn fit_power_law(xs: &[f64], ys: &[f64]) -> (f64, f64) {
    assert_eq!(xs.len(), ys.len());
    assert!(xs.len() >= 2, "need at least two points");
    let lx: Vec<f64> = xs.iter().map(|x| x.ln()).collect();
    let ly: Vec<f64> = ys.iter().map(|y| y.ln()).collect();
    let mx = mean(&lx);
    let my = mean(&ly);
    let sxy: f64 = lx.iter().zip(&ly).map(|(x, y)| (x - mx) * (y - my)).sum();
    let sxx: f64 = lx.iter().map(|x| (x - mx) * (x - mx)).sum();
    let b = if sxx == 0.0 { 0.0 } else { sxy / sxx };
    let a = (my - b * mx).exp();
    (a, b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_std() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
        assert_eq!(std_dev(&[5.0]), 0.0);
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((std_dev(&xs) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn cov_is_scale_free() {
        let a = [1.0, 2.0, 3.0];
        let b = [10.0, 20.0, 30.0];
        assert!((coefficient_of_variation(&a) - coefficient_of_variation(&b)).abs() < 1e-12);
        assert_eq!(coefficient_of_variation(&[0.0, 0.0]), 0.0);
    }

    #[test]
    fn power_law_recovers_exact_fit() {
        let xs = [1.0f64, 2.0, 4.0, 8.0];
        let ys: Vec<f64> = xs.iter().map(|x| 3.0 * x.powf(1.5)).collect();
        let (a, b) = fit_power_law(&xs, &ys);
        assert!((a - 3.0).abs() < 1e-9);
        assert!((b - 1.5).abs() < 1e-9);
    }

    #[test]
    fn power_law_constant_data() {
        let (a, b) = fit_power_law(&[1.0, 2.0], &[5.0, 5.0]);
        assert!(b.abs() < 1e-9);
        assert!((a - 5.0).abs() < 1e-9);
    }
}
