//! Experiment harness for the PLSSVM reproduction.
//!
//! One module per concern:
//!
//! * [`protocol`] — the paper's ε-search measurement protocol (§IV-B):
//!   decrease ε by ×0.1 starting from 0.1 until the model reaches ≥ 97 %
//!   training accuracy or the accuracy converges in its first three
//!   decimals.
//! * [`workmodel`] — closed-form predictions of the device backend's
//!   counted work (FLOPs, traffic, transfers, launches, peak memory) for
//!   arbitrary problem sizes. Validated against the *executed* counters in
//!   tests, then evaluated at paper scale where functional execution is
//!   infeasible on this machine.
//! * [`stats`] — means, standard deviations, coefficients of variation.
//! * [`figures`] — one driver per table/figure of the paper; see
//!   `EXPERIMENTS.md` for the index and `src/bin/figures.rs` for the CLI.

#![warn(missing_docs)]

pub mod figures;
pub mod protocol;
pub mod stats;
pub mod workmodel;

/// Where figure drivers write their CSV outputs.
pub const RESULTS_DIR: &str = "bench_results";

/// Ensures the results directory exists and returns the path for a file.
pub fn results_path(name: &str) -> std::path::PathBuf {
    let dir = std::path::Path::new(RESULTS_DIR);
    std::fs::create_dir_all(dir).ok();
    dir.join(name)
}
