//! Shared infrastructure for the figure drivers.

use std::fmt::Write as _;
use std::time::{Duration, Instant};

use plssvm_core::backend::BackendSelection;
use plssvm_core::svm::{accuracy, LsSvm, TrainOutput};
use plssvm_core::trace::Telemetry;
use plssvm_data::libsvm::LabeledData;
use plssvm_data::model::KernelSpec;
use plssvm_data::synthetic::{generate_planes, PlanesConfig};

/// How much work a driver performs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Tiny sizes for tests and smoke runs (seconds in total).
    Small,
    /// The default: the largest sweeps this single-core host completes in
    /// a few minutes, plus paper-scale model evaluations.
    Medium,
}

impl Scale {
    /// Parses `small` / `medium`.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "small" => Some(Scale::Small),
            "medium" => Some(Scale::Medium),
            _ => None,
        }
    }
}

/// A rendered experiment: aligned text plus CSV side outputs.
#[derive(Debug, Clone)]
pub struct FigureReport {
    /// Experiment id (`fig1a`, `table1`, …).
    pub id: String,
    /// Human title.
    pub title: String,
    /// The rendered tables/notes.
    pub body: String,
    /// CSV files written (paths relative to the working directory).
    pub csv_files: Vec<String>,
}

impl std::fmt::Display for FigureReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "## {} — {}\n", self.id, self.title)?;
        writeln!(f, "{}", self.body)?;
        if !self.csv_files.is_empty() {
            writeln!(f, "CSV: {}", self.csv_files.join(", "))?;
        }
        Ok(())
    }
}

/// A simple aligned table builder that doubles as a CSV writer.
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// A table with the given column headers.
    pub fn new(headers: &[&str]) -> Self {
        Self {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header count).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Renders with aligned columns.
    pub fn to_aligned(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        let _ = writeln!(out, "{}", fmt_row(&self.headers, &widths));
        let _ = writeln!(
            out,
            "{}",
            widths
                .iter()
                .map(|w| "-".repeat(*w))
                .collect::<Vec<_>>()
                .join("  ")
        );
        for row in &self.rows {
            let _ = writeln!(out, "{}", fmt_row(row, &widths));
        }
        out
    }

    /// Renders as CSV.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{}", self.headers.join(","));
        for row in &self.rows {
            let _ = writeln!(out, "{}", row.join(","));
        }
        out
    }

    /// Writes the CSV into `bench_results/` and returns the path string.
    pub fn write_csv(&self, name: &str) -> String {
        let path = crate::results_path(name);
        plssvm_data::write_atomic(&path, self.to_csv().as_bytes()).ok();
        path.display().to_string()
    }
}

/// Formats seconds compactly (µs → minutes).
pub fn fmt_secs(s: f64) -> String {
    if s < 1e-3 {
        format!("{:.1}us", s * 1e6)
    } else if s < 1.0 {
        format!("{:.2}ms", s * 1e3)
    } else if s < 120.0 {
        format!("{s:.2}s")
    } else {
        format!("{:.1}min", s / 60.0)
    }
}

/// The standard planes data set of the evaluation (fresh generation per
/// seed, as the paper regenerates data per run).
pub fn planes_data(points: usize, features: usize, seed: u64) -> LabeledData<f64> {
    generate_planes(&PlanesConfig::new(points, features, seed)).unwrap()
}

/// Trains an LS-SVM and measures the wall-clock of the `train` call.
///
/// Always attaches a unified telemetry sink, so `out.telemetry` is `Some`
/// and the figure drivers read the [`plssvm_core::trace`] counters instead
/// of backend-private bookkeeping.
pub fn timed_lssvm_train(
    data: &LabeledData<f64>,
    kernel: KernelSpec<f64>,
    epsilon: f64,
    backend: BackendSelection,
) -> (TrainOutput<f64>, Duration) {
    let trainer = LsSvm::new()
        .with_kernel(kernel)
        .with_epsilon(epsilon)
        .with_backend(backend)
        .with_metrics(Telemetry::shared());
    let t0 = Instant::now();
    let out = trainer.train(data).expect("training failed");
    (out, t0.elapsed())
}

/// Measures CG iteration counts over a grid of feasible sizes at the
/// standard post-knee ε = 1e-6 (Fig. 3 shows the iteration count is flat
/// beyond this), then returns the count at the largest grid size — the
/// paper observes iteration counts to be nearly independent of `m`
/// (30.5 → 26 from 2¹⁰ to 2¹⁵ points) and to grow only mildly with `d`,
/// so this is the value the paper-scale models use.
pub fn measured_iterations(points: usize, features: usize, seed: u64) -> usize {
    let data = planes_data(points, features, seed);
    let (out, _) = timed_lssvm_train(
        &data,
        KernelSpec::Linear,
        1e-6,
        BackendSelection::openmp(None),
    );
    out.iterations
}

/// LS-SVM training accuracy helper.
pub fn train_accuracy(out: &TrainOutput<f64>, data: &LabeledData<f64>) -> f64 {
    accuracy(&out.model, data)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_alignment_and_csv() {
        let mut t = Table::new(&["m", "time"]);
        t.row(vec!["64".into(), "1.5s".into()]);
        t.row(vec!["1024".into(), "12.0s".into()]);
        let s = t.to_aligned();
        assert!(s.contains("   m"), "{s}");
        assert!(s.lines().count() == 4);
        let csv = t.to_csv();
        assert_eq!(csv.lines().next().unwrap(), "m,time");
        assert_eq!(csv.lines().count(), 3);
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn table_checks_arity() {
        let mut t = Table::new(&["a", "b"]);
        t.row(vec!["1".into()]);
    }

    #[test]
    fn fmt_secs_ranges() {
        assert_eq!(fmt_secs(5e-6), "5.0us");
        assert_eq!(fmt_secs(0.0123), "12.30ms");
        assert_eq!(fmt_secs(3.5), "3.50s");
        assert_eq!(fmt_secs(600.0), "10.0min");
    }

    #[test]
    fn scale_parse() {
        assert_eq!(Scale::parse("small"), Some(Scale::Small));
        assert_eq!(Scale::parse("medium"), Some(Scale::Medium));
        assert_eq!(Scale::parse("huge"), None);
    }

    #[test]
    fn measured_iterations_reasonable() {
        let iters = measured_iterations(128, 16, 7);
        assert!((2..=128).contains(&iters), "{iters}");
    }
}
