//! §IV-C — run-to-run stability: coefficient of variation of the
//! training time.
//!
//! The paper regenerates the synthetic data for every repetition and
//! reports the averaged coefficient of variation per implementation:
//! PLSSVM 0.26 (CPU) / 0.11 (GPU) vs ThunderSVM 0.92/0.37 and LIBSVM
//! 0.60/0.66 — the LS-SVM's iteration count barely depends on the data
//! realization, SMO's does. This driver reproduces that protocol and
//! additionally reports the CoV of the *solver iteration count*, which is
//! the underlying algorithmic quantity and is free of host scheduler
//! noise (this box has a single shared core).

use std::time::Instant;

use plssvm_core::backend::BackendSelection;
use plssvm_core::svm::LsSvm;
use plssvm_core::trace::{spans, Telemetry};
use plssvm_data::model::KernelSpec;
use plssvm_smo::{SmoConfig, ThunderConfig, ThunderSolver};

use crate::figures::common::{planes_data, FigureReport, Scale, Table};
use crate::stats::coefficient_of_variation;

/// One repetition: wall time and solver iterations. The PLSSVM row reads
/// both from the unified telemetry (the `train` span and the CG sample
/// count); the SMO baselines have no telemetry and are timed directly.
fn run_once(method: &str, m: usize, d: usize, seed: u64) -> (f64, f64) {
    let data = planes_data(m, d, seed);
    if method == "plssvm" {
        let out = LsSvm::new()
            .with_kernel(KernelSpec::Linear)
            .with_epsilon(1e-6)
            .with_backend(BackendSelection::openmp(None))
            .with_metrics(Telemetry::shared())
            .train(&data)
            .unwrap();
        let report = out.telemetry.expect("telemetry attached");
        return (
            report.span(spans::TRAIN).as_secs_f64(),
            report.iterations() as f64,
        );
    }
    let t0 = Instant::now();
    let iterations = match method {
        "libsvm" => {
            plssvm_smo::solver::train_sparse(&data, &SmoConfig::default())
                .unwrap()
                .iterations
        }
        "libsvm-dense" => {
            plssvm_smo::solver::train_dense(&data, &SmoConfig::default())
                .unwrap()
                .iterations
        }
        "thundersvm" => {
            ThunderSolver::new(ThunderConfig {
                working_set_size: 64,
                ..Default::default()
            })
            .unwrap()
            .train(&data)
            .unwrap()
            .inner_iterations
        }
        _ => unreachable!(),
    };
    (t0.elapsed().as_secs_f64(), iterations as f64)
}

/// Runs the stability study.
pub fn run(scale: Scale) -> FigureReport {
    let (m, d, reps) = match scale {
        Scale::Small => (96, 16, 4),
        Scale::Medium => (256, 64, 10),
    };
    let mut table = Table::new(&[
        "method",
        "mean time",
        "time CoV",
        "mean iterations",
        "iteration CoV",
        "runs",
    ]);
    for method in ["plssvm", "thundersvm", "libsvm", "libsvm-dense"] {
        // fresh data per repetition, like the paper
        let results: Vec<(f64, f64)> = (0..reps)
            .map(|r| run_once(method, m, d, 9000 + r as u64))
            .collect();
        let times: Vec<f64> = results.iter().map(|r| r.0).collect();
        let iters: Vec<f64> = results.iter().map(|r| r.1).collect();
        table.row(vec![
            method.into(),
            format!("{:.4}s", crate::stats::mean(&times)),
            format!("{:.2}", coefficient_of_variation(&times)),
            format!("{:.1}", crate::stats::mean(&iters)),
            format!("{:.2}", coefficient_of_variation(&iters)),
            reps.to_string(),
        ]);
    }
    let csv = table.write_csv("cov.csv");
    FigureReport {
        id: "cov".into(),
        title: format!("run-to-run stability, {m} points x {d} features, fresh data per run"),
        body: format!(
            "{}\nPaper CoVs (CPU wall time): PLSSVM 0.26, ThunderSVM 0.92, LIBSVM \
             0.60, LIBSVM-DENSE 0.66 — the SMO methods vary far more across data \
             realizations than the LS-SVM. The iteration-CoV column isolates the \
             algorithmic effect: the CG iteration count moves little across data \
             realizations while the SMO update counts swing; wall-clock on a \
             busy single-core host adds scheduler noise on top.\n",
            table.to_aligned()
        ),
        csv_files: vec![csv],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cov_reports_all_methods_with_iteration_column() {
        let r = run(Scale::Small);
        for m in ["plssvm", "thundersvm", "libsvm", "libsvm-dense"] {
            assert!(r.body.contains(m), "{}", r.body);
        }
        assert!(r.body.contains("iteration CoV"));
        assert_eq!(r.csv_files.len(), 1);
    }

    #[test]
    fn lssvm_iteration_count_is_more_stable_than_smo() {
        // the algorithmic claim behind the paper's CoV table, measured on
        // iteration counts (noise-free): CG varies less than SMO updates
        let reps = 6;
        let cov_of = |method: &str| {
            let iters: Vec<f64> = (0..reps)
                .map(|r| run_once(method, 96, 16, 500 + r as u64).1)
                .collect();
            coefficient_of_variation(&iters)
        };
        let plssvm = cov_of("plssvm");
        let libsvm = cov_of("libsvm-dense");
        assert!(
            plssvm < libsvm,
            "CG iteration CoV {plssvm:.3} should undercut SMO's {libsvm:.3}"
        );
    }
}
