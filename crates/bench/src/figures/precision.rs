//! Single vs double precision — the paper's §III claim: "support
//! switching between double and single precision floating point types by
//! changing a single template parameter" (all of the paper's measurements
//! use FP64).
//!
//! Executed study: the identical training problem in `f32` and `f64` on
//! the simulated A100 (whose FP32 peak is 2× its FP64 peak — consumer
//! cards would show 32–64×). Reports iterations, accuracy, residual
//! quality and simulated device time per precision.

use plssvm_core::backend::BackendSelection;
use plssvm_core::svm::{accuracy, LsSvm};
use plssvm_data::model::KernelSpec;
use plssvm_data::synthetic::{generate_planes, PlanesConfig};
use plssvm_simgpu::{hw, Backend as DeviceApi};

use crate::figures::common::{fmt_secs, FigureReport, Scale, Table};

fn run_precision<T>(m: usize, d: usize, eps: f64) -> (usize, bool, f64, f64, f64)
where
    T: plssvm_simgpu::device::AtomicScalar,
{
    let data = generate_planes::<T>(&PlanesConfig::new(m, d, 555)).unwrap();
    let out = LsSvm::<T>::new()
        .with_kernel(KernelSpec::Linear)
        .with_epsilon(T::from_f64(eps))
        .with_backend(BackendSelection::sim_gpu(hw::A100, DeviceApi::Cuda))
        .train(&data)
        .unwrap();
    let report = out.device.unwrap();
    (
        out.iterations,
        out.converged,
        out.relative_residual,
        accuracy(&out.model, &data),
        report.sim_parallel_time_s,
    )
}

/// Runs the precision comparison.
pub fn run(scale: Scale) -> FigureReport {
    let (m, d) = match scale {
        Scale::Small => (128, 32),
        Scale::Medium => (512, 128),
    };
    let mut table = Table::new(&[
        "precision",
        "epsilon",
        "iterations",
        "converged",
        "rel. residual",
        "accuracy",
        "sim time (A100)",
    ]);
    for eps in [1e-3, 1e-6] {
        let (it64, conv64, res64, acc64, t64) = run_precision::<f64>(m, d, eps);
        table.row(vec![
            "f64".into(),
            format!("{eps:.0e}"),
            it64.to_string(),
            conv64.to_string(),
            format!("{res64:.2e}"),
            format!("{:.2}%", 100.0 * acc64),
            fmt_secs(t64),
        ]);
        // f32 cannot meaningfully go below its ~1e-7 epsilon; 1e-6 is the
        // practical floor the CG residual can certify
        let (it32, conv32, res32, acc32, t32) = run_precision::<f32>(m, d, eps);
        table.row(vec![
            "f32".into(),
            format!("{eps:.0e}"),
            it32.to_string(),
            conv32.to_string(),
            format!("{res32:.2e}"),
            format!("{:.2}%", 100.0 * acc32),
            fmt_secs(t32),
        ]);
    }
    let csv = table.write_csv("precision.csv");
    FigureReport {
        id: "precision".into(),
        title: format!("f32 vs f64 training ({m} x {d}, simulated A100)"),
        body: format!(
            "{}\nThe same code runs in both precisions (the paper's single template \
             parameter). On the A100 the FP32 peak is 2x the FP64 peak, so the \
             simulated time roughly halves; on consumer GPUs (1/32-1/64 FP64 \
             rate) the gap would be dramatic — the reason the paper benchmarks \
             Table I's consumer cards so much slower. Per CG iteration f32 is \
             cheaper, but at equal epsilon it may need *more* iterations (rounding \
             limits the achievable residual), so FP64 — the paper's choice — is \
             the safer default. Accuracy is unaffected on this data.\n",
            table.to_aligned()
        ),
        csv_files: vec![csv],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn precision_report_shape() {
        let r = run(Scale::Small);
        assert!(r.body.contains("f64"));
        assert!(r.body.contains("f32"));
        assert_eq!(r.csv_files.len(), 1);
    }

    #[test]
    fn f32_is_cheaper_per_iteration() {
        // at equal epsilon f32 may *iterate more* (rounding limits the
        // achievable residual), so the fair comparison is per iteration:
        // half the bytes and twice the peak must make each matvec cheaper
        let (it64, _, _, _, t64) = run_precision::<f64>(128, 32, 1e-3);
        let (it32, _, _, _, t32) = run_precision::<f32>(128, 32, 1e-3);
        let per64 = t64 / it64 as f64;
        let per32 = t32 / it32 as f64;
        assert!(
            per32 < per64,
            "f32 {per32:.2e}s/iter should undercut f64 {per64:.2e}s/iter"
        );
    }

    #[test]
    fn f32_and_f64_reach_comparable_accuracy() {
        let (_, _, _, acc64, _) = run_precision::<f64>(96, 16, 1e-5);
        let (_, _, _, acc32, _) = run_precision::<f32>(96, 16, 1e-5);
        assert!((acc64 - acc32).abs() < 0.03, "{acc64} vs {acc32}");
    }
}
