//! Table I — runtimes of the device backends (CUDA, OpenCL, SYCL) across
//! the hardware catalog for 2¹⁵ data points × 2¹² features.
//!
//! Evaluated through the validated work model on each catalog device's
//! published roofline with the fitted per-backend efficiency profiles
//! (`plssvm_simgpu::hw`). The SYCL column uses hipSYCL on NVIDIA/AMD and
//! DPC++ on Intel, exactly as the paper's measurements did. CUDA cells are
//! `-` on non-NVIDIA hardware (Table I's dashes).

use plssvm_data::model::KernelSpec;
use plssvm_simgpu::{hw, Backend as DeviceApi};

use crate::figures::common::{fmt_secs, measured_iterations, FigureReport, Scale, Table};
use crate::workmodel::LsSvmWorkModel;

/// Runs the Table I experiment.
pub fn run(scale: Scale) -> FigureReport {
    let iters = match scale {
        Scale::Small => measured_iterations(128, 32, 5),
        Scale::Medium => measured_iterations(512, 128, 5),
    };
    let calls = LsSvmWorkModel::matvec_calls(iters);
    let (m, d) = (1usize << 15, 1usize << 12);
    let model = LsSvmWorkModel::new(m, d, KernelSpec::Linear);

    let mut table = Table::new(&["hardware", "CUDA", "OpenCL", "SYCL"]);
    for spec in hw::TABLE1_GPUS {
        let sycl = if spec.name.contains("Intel") {
            DeviceApi::SyclDpcpp
        } else {
            DeviceApi::SyclHip
        };
        let cell = |api: DeviceApi| -> String {
            if api.supports(spec) {
                fmt_secs(model.sim_time_s(spec, api, calls))
            } else {
                "-".into()
            }
        };
        table.row(vec![
            spec.name.to_string(),
            cell(DeviceApi::Cuda),
            cell(DeviceApi::OpenCl),
            cell(sycl),
        ]);
    }
    let csv = table.write_csv("table1.csv");
    FigureReport {
        id: "table1".into(),
        title: "backend x hardware runtimes, 2^15 points x 2^12 features (modeled)".into(),
        body: format!(
            "{}\n{calls} matvec calls ({iters} CG iterations measured at a feasible \
             size). Shape targets from the paper: CUDA fastest on NVIDIA, OpenCL \
             close behind; hipSYCL >3x slower on pre-Volta (compute capability \
             < 7.0); DPC++ ~2x slower than OpenCL on the Intel iGPU; consumer \
             cards (GTX 1080 Ti, RTX 3080) pay their 1/32-1/64 FP64 rate.\n",
            table.to_aligned()
        ),
        csv_files: vec![csv],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seconds(cell: &str) -> f64 {
        // fmt_secs inverse for the formats used here
        if let Some(min) = cell.strip_suffix("min") {
            min.parse::<f64>().unwrap() * 60.0
        } else {
            cell.strip_suffix('s').unwrap().parse::<f64>().unwrap()
        }
    }

    #[test]
    fn table_shape_matches_paper() {
        let r = run(Scale::Small);
        let rows: Vec<Vec<&str>> = r
            .body
            .lines()
            .skip(2)
            .take(6)
            .map(|l| {
                l.split("  ")
                    .filter(|c| !c.trim().is_empty())
                    .map(|c| c.trim())
                    .collect()
            })
            .collect();
        assert_eq!(rows.len(), 6, "{}", r.body);

        // AMD and Intel rows have '-' for CUDA
        let amd = rows.iter().find(|r| r[0].contains("Radeon")).unwrap();
        assert_eq!(amd[1], "-");
        let intel = rows.iter().find(|r| r[0].contains("Intel")).unwrap();
        assert_eq!(intel[1], "-");

        // V100 faster than P100, P100 faster than GTX 1080 Ti (CUDA column)
        let get = |name: &str| {
            let row = rows.iter().find(|r| r[0].contains(name)).unwrap();
            seconds(row[1])
        };
        assert!(get("V100") < get("P100"));
        assert!(get("P100") < get("GTX 1080 Ti"));

        // hipSYCL penalty on pre-Volta: P100 SYCL / CUDA ratio > 3
        let p100 = rows.iter().find(|r| r[0].contains("P100")).unwrap();
        assert!(seconds(p100[3]) / seconds(p100[1]) > 3.0, "{p100:?}");
        // ...but mild on V100
        let v100 = rows.iter().find(|r| r[0].contains("V100")).unwrap();
        assert!(seconds(v100[3]) / seconds(v100[1]) < 2.5, "{v100:?}");

        // Intel iGPU slowest overall (OpenCL column)
        let intel_t = seconds(intel[2]);
        for row in &rows {
            if !row[0].contains("Intel") {
                assert!(seconds(row[2]) < intel_t);
            }
        }
    }
}
