//! CPU tiling ablation: the blocked, SIMD-dispatched matvec engine vs the
//! scalar row sweep it replaced.
//!
//! The blocked engine (`plssvm_core::backend::cpu_blocked`) evaluates the
//! kernel on `MR×NR` panels with independent register accumulators and
//! walks the implicit matrix in cache-sized tiles; the symmetric schedule
//! additionally restricts the walk to the upper triangle, halving the
//! kernel evaluations. Since PR 8 the panel primitives dispatch to
//! explicit SIMD micro-kernels (`plssvm_core::simd`), so the study now
//! separates four effects on one `K·v` matvec of the linear kernel:
//!
//! 1. scalar baseline — the pre-blocking parallel backend loop: one
//!    `kernel_row` per `(i, j)` pair over the full matrix;
//! 2. blocked, full schedule — panels + tiles, no symmetry, scalar tier;
//! 3. `scalar-panel-*` — blocked symmetric schedule pinned to the scalar
//!    tier (bit-identical to the pre-SIMD engine), at several tile edges;
//! 4. `simd-panel-*` — the same symmetric 64×64 schedule on every SIMD
//!    tier the host supports, plus the auto-dispatched default.
//!
//! Each row reports achieved GFLOP/s against a single-core roofline
//! (`plssvm_simgpu::hw::GpuSpec::peak_flops`) built from the CI host's
//! nominal clock and the tier's FMA width.
//!
//! Reproduce with
//! `cargo run --release -p plssvm-bench --bin figures -- ablation_cpu_tiling`.

use std::time::Instant;

use plssvm_core::backend::parallel::ParallelBackend;
use plssvm_core::backend::CpuTilingConfig;
use plssvm_core::kernel::kernel_row;
use plssvm_core::simd::Isa;
use plssvm_data::dense::DenseMatrix;
use plssvm_data::model::KernelSpec;
use plssvm_simgpu::hw::{GpuSpec, Precision};

use crate::figures::common::{planes_data, FigureReport, Scale, Table};

/// Nominal single-core clock of the CI host (Intel Xeon @ 2.10 GHz), used
/// for the roofline peak. A different host shifts every `peak_frac` by the
/// same factor, so the relative comparison across tiers stands regardless.
const NOMINAL_GHZ: f64 = 2.1;

fn time_it(mut f: impl FnMut()) -> f64 {
    let t0 = Instant::now();
    f();
    t0.elapsed().as_secs_f64()
}

/// Single-core roofline for one ISA tier, expressed as a simgpu
/// [`GpuSpec`]: one fused multiply-add pipe of the tier's f64 width per
/// cycle (`lanes × 2` FLOP/cycle) at the nominal clock. Bandwidth and
/// capacity are the host's nominal single-channel figures; only the
/// compute peak enters this study.
fn host_roofline(isa: Isa) -> GpuSpec {
    let fp64_tflops = NOMINAL_GHZ * 1e9 * 2.0 * isa.lanes_f64() as f64 / 1e12;
    GpuSpec {
        name: "host-core",
        fp64_tflops,
        fp32_tflops: 2.0 * fp64_tflops,
        mem_bandwidth_gbs: 12.8,
        memory_gib: 16.0,
        link_bandwidth_gbs: 0.0,
        launch_overhead_us: 0.0,
        compute_capability: 0.0,
    }
}

/// Physical FLOPs of `evals` linear-kernel evaluations folded into the
/// matvec: a d-length FMA dot (2d) plus the `·v` accumulate (2).
fn matvec_flops(evals: u128, d: usize) -> f64 {
    evals as f64 * (2.0 * d as f64 + 2.0)
}

/// The pre-blocking matvec: a scalar `kernel_row` per matrix entry, full
/// `n²` sweep (kept here as the measured baseline).
fn scalar_row_matvec(
    data: &DenseMatrix<f64>,
    kernel: &KernelSpec<f64>,
    v: &[f64],
    out: &mut [f64],
) {
    let n = v.len();
    for (i, slot) in out.iter_mut().enumerate() {
        let ri = data.row(i);
        let mut acc = 0.0;
        for (j, &vj) in v.iter().enumerate().take(n) {
            acc += kernel_row(kernel, ri, data.row(j)) * vj;
        }
        *slot = acc;
    }
}

/// Runs the study on an `m × d` problem. When `assert_blocked_wins` is
/// set (the small-scale smoke run in CI), the blocked scalar path must
/// not lose to the scalar row sweep — this pins the tile auto-clamping
/// fix for the small-n regression (`blocked-nosym` used to run 0.63× at
/// tile 64 before `CpuTilingConfig::effective_for`).
fn run_sized(m: usize, d: usize, assert_blocked_wins: bool) -> FigureReport {
    let data = planes_data(m, d, 777);
    let n = m - 1;
    let v: Vec<f64> = (0..n).map(|i| ((i as f64) * 0.37).sin()).collect();
    let kernel = KernelSpec::Linear;

    let mut table = Table::new(&[
        "variant",
        "n",
        "d",
        "tile",
        "symmetry",
        "isa",
        "seconds",
        "speedup",
        "gflops",
        "roofline_gflops",
        "peak_frac",
        "kernel_evals",
    ]);

    // --- baseline: scalar full-row sweep ---
    let mut reference = vec![0.0; n];
    let t_scalar = time_it(|| scalar_row_matvec(&data.x, &kernel, &v, &mut reference));
    let scalar_evals = n as u128 * n as u128;
    let scalar_gflops = matvec_flops(scalar_evals, d) / t_scalar / 1e9;
    let scalar_peak = host_roofline(Isa::Scalar).peak_flops(Precision::F64) / 1e9;
    table.row(vec![
        "scalar-rows".into(),
        n.to_string(),
        d.to_string(),
        "-".into(),
        "false".into(),
        "scalar".into(),
        format!("{t_scalar:.6}"),
        "1.00".into(),
        format!("{scalar_gflops:.2}"),
        format!("{scalar_peak:.1}"),
        format!("{:.2}", scalar_gflops / scalar_peak),
        scalar_evals.to_string(),
    ]);

    // --- blocked variants: scalar-pinned sweep, then SIMD tiers ---
    let mut variants: Vec<(String, CpuTilingConfig)> = vec![(
        "blocked-nosym".to_string(),
        CpuTilingConfig::default()
            .with_symmetry(false)
            .with_isa(Isa::Scalar),
    )];
    variants.extend([16usize, 32, 64, 128, 256].into_iter().map(|edge| {
        (
            format!("scalar-panel-{edge}"),
            CpuTilingConfig::new(edge, edge).with_isa(Isa::Scalar),
        )
    }));
    for isa in Isa::available().into_iter().filter(|i| i.is_simd()) {
        variants.push((
            format!("simd-panel-{isa}"),
            CpuTilingConfig::new(64, 64).with_isa(isa),
        ));
    }
    // the dispatched default: whatever `Isa::select()` resolves on this host
    variants.push(("panel-auto".to_string(), CpuTilingConfig::new(64, 64)));

    let mut max_dev = 0.0f64;
    let mut scalar_panel = (0.0f64, 0.0f64); // (seconds, speedup) of scalar-panel-64
    let mut best_simd: Option<(String, f64)> = None; // (variant, seconds)
    let mut blocked_nosym_speedup = 0.0f64;
    for (name, tiling) in variants {
        let backend =
            ParallelBackend::new(data.x.clone(), kernel, 1.0, None, tiling).expect("valid tiling");
        let isa = tiling.resolved_isa();
        let mut out = vec![0.0; n];
        let t = time_it(|| backend.kernel_matvec(&v, &mut out));
        for (a, b) in reference.iter().zip(&out) {
            max_dev = max_dev.max((a - b).abs());
        }
        let speedup = t_scalar / t;
        let evals = backend.matvec_evals();
        let gflops = matvec_flops(evals, d) / t / 1e9;
        let peak = host_roofline(isa).peak_flops(Precision::F64) / 1e9;
        if name == "scalar-panel-64" {
            scalar_panel = (t, speedup);
        }
        if name == "blocked-nosym" {
            blocked_nosym_speedup = speedup;
        }
        if name.starts_with("simd-panel") && best_simd.as_ref().is_none_or(|(_, tb)| t < *tb) {
            best_simd = Some((name.clone(), t));
        }
        table.row(vec![
            name,
            n.to_string(),
            d.to_string(),
            tiling.row_tile.to_string(),
            tiling.symmetry.to_string(),
            isa.name().into(),
            format!("{t:.6}"),
            format!("{speedup:.2}"),
            format!("{gflops:.2}"),
            format!("{peak:.1}"),
            format!("{:.2}", gflops / peak),
            evals.to_string(),
        ]);
    }

    let mut body = String::new();
    body.push_str(&format!(
        "### Blocked CPU matvec vs scalar baseline (executed, {m} x {d} linear K·v)\n"
    ));
    body.push_str(&table.to_aligned());
    body.push_str(&format!(
        "Scalar-panel default (64x64, symmetric, forced-scalar tier — bit-identical \
         to the pre-SIMD engine) speedup {:.2}x over the scalar row sweep; max abs \
         deviation across all variants {max_dev:.2e}. The symmetric rows also show \
         the kernel-evaluation halving (n(n+1)/2 vs n²) that unified telemetry \
         reports per matvec.\n",
        scalar_panel.1
    ));
    if let Some((best_name, best_t)) = &best_simd {
        body.push_str(&format!(
            "SIMD dispatch: {best_name} runs {:.2}x the scalar-panel engine \
             ({:.2}x the scalar row sweep). Roofline peaks assume one FMA pipe \
             of the tier's f64 width at {NOMINAL_GHZ} GHz nominal.\n",
            scalar_panel.0 / best_t,
            t_scalar / best_t,
        ));
    } else {
        body.push_str("SIMD dispatch: no vector tier available on this host.\n");
    }
    body.push_str(&widen_probe_note(d));
    if assert_blocked_wins {
        // Small-n smoke contract: with tile auto-clamping the blocked path
        // must never lose to the scalar row sweep (0.9 leaves room for
        // timer noise on shared runners; the regression this pins was
        // 0.63x).
        assert!(
            blocked_nosym_speedup >= 0.9,
            "blocked-nosym fell below the scalar row sweep at n={n} \
             (speedup {blocked_nosym_speedup:.2}x < 0.9x): tile auto-clamping regressed"
        );
        assert!(
            scalar_panel.1 >= 0.9,
            "scalar-panel-64 fell below the scalar row sweep at n={n} \
             (speedup {:.2}x < 0.9x): tile auto-clamping regressed",
            scalar_panel.1
        );
    }
    let csv = table.write_csv("ablation_cpu_tiling.csv");

    FigureReport {
        id: "ablation_cpu_tiling".into(),
        title: "blocked CPU matvec engine: panels, tiles, symmetry and SIMD dispatch".into(),
        body,
        csv_files: vec![csv],
    }
}

/// Panel-widening probe: times an MR-doubled (8×4) fused AVX-512 panel
/// against two dispatched 4×4 panels over the same 8×4 row block. The
/// fused shape halves the `b`-row load traffic per FMA but needs 32 f64
/// accumulators — exactly the AVX-512 register file, leaving none for
/// loads (and twice the AVX2 file). The measured ratio decides whether
/// widening `PANEL_MR` pays; see EXPERIMENTS.md for the verdict.
fn widen_probe_note(d: usize) -> String {
    #[cfg(target_arch = "x86_64")]
    {
        if Isa::Avx512.supported() {
            let rows: Vec<Vec<f64>> = (0..12)
                .map(|r| (0..d).map(|c| ((r * d + c) as f64 * 0.173).sin()).collect())
                .collect();
            let a: [&[f64]; 8] = std::array::from_fn(|i| rows[i].as_slice());
            let b: [&[f64]; 4] = std::array::from_fn(|j| rows[8 + j].as_slice());
            let reps = if cfg!(debug_assertions) {
                2_000
            } else {
                (16_000_000 / d.max(1)).clamp(10_000, 200_000)
            };
            let mut fused = [[0.0f64; 4]; 8];
            let t_fused = time_it(|| {
                for _ in 0..reps {
                    unsafe { widen_probe::panel_dot_8x4_avx512(&a, &b, &mut fused) };
                    std::hint::black_box(&fused);
                }
            });
            let ra_lo: Vec<&[f64]> = a[..4].to_vec();
            let ra_hi: Vec<&[f64]> = a[4..].to_vec();
            let rb: Vec<&[f64]> = b.to_vec();
            let t_pair = time_it(|| {
                for _ in 0..reps {
                    let lo = plssvm_core::simd::panel_dot(Isa::Avx512, &ra_lo, &rb);
                    let hi = plssvm_core::simd::panel_dot(Isa::Avx512, &ra_hi, &rb);
                    std::hint::black_box((lo, hi));
                }
            });
            // correctness sanity: the fused panel must agree with dispatch
            let lo = plssvm_core::simd::panel_dot(Isa::Avx512, &ra_lo, &rb);
            for (i, row) in lo.iter().enumerate() {
                for (j, &want) in row.iter().enumerate() {
                    assert!(
                        (fused[i][j] - want).abs() <= 1e-9 * want.abs().max(1.0),
                        "widen probe mismatch at [{i}][{j}]"
                    );
                }
            }
            return format!(
                "Panel-widening probe (avx512, d={d}): fused 8x4 {:.2}x vs two \
                 dispatched 4x4 panels ({:.3}s vs {:.3}s over {reps} reps).\n",
                t_pair / t_fused,
                t_fused,
                t_pair
            );
        }
    }
    let _ = d;
    "Panel-widening probe: skipped (needs avx512).\n".to_string()
}

#[cfg(target_arch = "x86_64")]
mod widen_probe {
    //! One-off fused 8×4 f64 micro-kernel for the widening experiment.
    //! Mirrors the 4×4 structure in `plssvm_core::simd` (vector FMA chain,
    //! fixed-order lane reduction, scalar `mul_add` tail) but holds the
    //! full 8×4 accumulator block live across the depth loop.
    use std::arch::x86_64::*;

    /// # Safety
    /// Caller must ensure the CPU supports AVX-512F and all row slices
    /// share one length.
    #[target_feature(enable = "avx512f")]
    pub unsafe fn panel_dot_8x4_avx512(a: &[&[f64]; 8], b: &[&[f64]; 4], out: &mut [[f64; 4]; 8]) {
        const W: usize = 8;
        let d = b[0].len();
        let chunks = d / W;
        let mut acc = [[_mm512_setzero_pd(); 4]; 8];
        for c in 0..chunks {
            let base = c * W;
            let vb: [__m512d; 4] =
                std::array::from_fn(|j| _mm512_loadu_pd(b[j].as_ptr().add(base)));
            for (i, acc_row) in acc.iter_mut().enumerate() {
                let va = _mm512_loadu_pd(a[i].as_ptr().add(base));
                for (slot, &vbj) in acc_row.iter_mut().zip(&vb) {
                    *slot = _mm512_fmadd_pd(va, vbj, *slot);
                }
            }
        }
        for (i, acc_row) in acc.iter().enumerate() {
            for (j, vec_acc) in acc_row.iter().enumerate() {
                let mut lanes = [0.0f64; W];
                _mm512_storeu_pd(lanes.as_mut_ptr(), *vec_acc);
                let mut sum = lanes[0];
                for &lane in &lanes[1..] {
                    sum += lane;
                }
                for k in chunks * W..d {
                    sum = a[i][k].mul_add(b[j][k], sum);
                }
                out[i][j] = sum;
            }
        }
    }
}

/// Runs the CPU tiling study.
pub fn run(scale: Scale) -> FigureReport {
    let (m, d) = match scale {
        Scale::Small => (1024, 64),
        Scale::Medium => (16384, 128),
    };
    // the small-scale run doubles as the CI smoke gate for the small-n
    // tile-clamping fix; the medium run is the committed figure
    run_sized(m, d, scale == Scale::Small)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cpu_tiling_study_runs_and_reports() {
        // tiny size: the unit test runs unoptimized, so no timing asserts
        let r = run_sized(96, 8, false);
        assert_eq!(r.id, "ablation_cpu_tiling");
        assert!(r.body.contains("scalar-rows"), "{}", r.body);
        assert!(r.body.contains("scalar-panel-64"), "{}", r.body);
        assert!(r.body.contains("panel-auto"), "{}", r.body);
        assert!(r.body.contains("max abs deviation"), "{}", r.body);
        assert!(r.body.contains("Panel-widening probe"), "{}", r.body);
        assert_eq!(r.csv_files.len(), 1);
        // n = 95: the symmetric rows must report n(n+1)/2 evaluations
        assert!(
            r.body.contains(&(95u128 * 96 / 2).to_string()),
            "{}",
            r.body
        );
    }

    #[test]
    fn simd_rows_present_when_host_has_vector_tiers() {
        let r = run_sized(64, 16, false);
        for isa in Isa::available() {
            if isa.is_simd() {
                assert!(r.body.contains(&format!("simd-panel-{isa}")), "{}", r.body);
            }
        }
    }

    #[test]
    fn roofline_scales_with_lane_width() {
        let s = host_roofline(Isa::Scalar).peak_flops(Precision::F64);
        let a2 = host_roofline(Isa::Avx2).peak_flops(Precision::F64);
        let a5 = host_roofline(Isa::Avx512).peak_flops(Precision::F64);
        assert_eq!(a2, 4.0 * s);
        assert_eq!(a5, 8.0 * s);
    }
}
