//! CPU tiling ablation: the blocked, SIMD-friendly matvec engine vs the
//! scalar row sweep it replaced.
//!
//! The blocked engine (`plssvm_core::backend::cpu_blocked`) evaluates the
//! kernel on `MR×NR` panels with independent register accumulators (so the
//! compiler can vectorize across the panel) and walks the implicit matrix
//! in cache-sized tiles; the symmetric schedule additionally restricts the
//! walk to the upper triangle, halving the kernel evaluations. This study
//! measures all three effects on one `K·v` matvec of the linear kernel:
//!
//! 1. scalar baseline — the pre-blocking parallel backend loop: one
//!    `kernel_row` per `(i, j)` pair over the full matrix;
//! 2. blocked, full schedule — panels + tiles, no symmetry;
//! 3. blocked, symmetric schedule — the default, at several tile edges.
//!
//! Reproduce with
//! `cargo run --release -p plssvm-bench --bin figures -- ablation_cpu_tiling`.

use std::time::Instant;

use plssvm_core::backend::parallel::ParallelBackend;
use plssvm_core::backend::CpuTilingConfig;
use plssvm_core::kernel::kernel_row;
use plssvm_data::dense::DenseMatrix;
use plssvm_data::model::KernelSpec;

use crate::figures::common::{planes_data, FigureReport, Scale, Table};

fn time_it(mut f: impl FnMut()) -> f64 {
    let t0 = Instant::now();
    f();
    t0.elapsed().as_secs_f64()
}

/// The pre-blocking matvec: a scalar `kernel_row` per matrix entry, full
/// `n²` sweep (kept here as the measured baseline).
fn scalar_row_matvec(
    data: &DenseMatrix<f64>,
    kernel: &KernelSpec<f64>,
    v: &[f64],
    out: &mut [f64],
) {
    let n = v.len();
    for (i, slot) in out.iter_mut().enumerate() {
        let ri = data.row(i);
        let mut acc = 0.0;
        for (j, &vj) in v.iter().enumerate().take(n) {
            acc += kernel_row(kernel, ri, data.row(j)) * vj;
        }
        *slot = acc;
    }
}

/// Runs the study on an `m × d` problem.
fn run_sized(m: usize, d: usize) -> FigureReport {
    let data = planes_data(m, d, 777);
    let n = m - 1;
    let v: Vec<f64> = (0..n).map(|i| ((i as f64) * 0.37).sin()).collect();
    let kernel = KernelSpec::Linear;

    let mut table = Table::new(&[
        "variant",
        "n",
        "d",
        "tile",
        "symmetry",
        "seconds",
        "speedup",
        "kernel_evals",
    ]);

    // --- baseline: scalar full-row sweep ---
    let mut reference = vec![0.0; n];
    let t_scalar = time_it(|| scalar_row_matvec(&data.x, &kernel, &v, &mut reference));
    table.row(vec![
        "scalar-rows".into(),
        n.to_string(),
        d.to_string(),
        "-".into(),
        "false".into(),
        format!("{t_scalar:.6}"),
        "1.00".into(),
        (n as u128 * n as u128).to_string(),
    ]);

    // --- blocked variants ---
    let mut max_dev = 0.0f64;
    let mut default_speedup = 0.0f64;
    let variants: Vec<(String, CpuTilingConfig)> = std::iter::once((
        "blocked-nosym".to_string(),
        CpuTilingConfig::default().with_symmetry(false),
    ))
    .chain([16usize, 32, 64, 128, 256].into_iter().map(|edge| {
        (
            format!("blocked-sym-{edge}"),
            CpuTilingConfig::new(edge, edge),
        )
    }))
    .collect();
    for (name, tiling) in variants {
        let backend =
            ParallelBackend::new(data.x.clone(), kernel, 1.0, None, tiling).expect("valid tiling");
        let mut out = vec![0.0; n];
        let t = time_it(|| backend.kernel_matvec(&v, &mut out));
        for (a, b) in reference.iter().zip(&out) {
            max_dev = max_dev.max((a - b).abs());
        }
        let speedup = t_scalar / t;
        if name == "blocked-sym-64" {
            default_speedup = speedup;
        }
        table.row(vec![
            name,
            n.to_string(),
            d.to_string(),
            tiling.row_tile.to_string(),
            tiling.symmetry.to_string(),
            format!("{t:.6}"),
            format!("{speedup:.2}"),
            backend.matvec_evals().to_string(),
        ]);
    }

    let mut body = String::new();
    body.push_str(&format!(
        "### Blocked CPU matvec vs scalar baseline (executed, {m} x {d} linear K·v)\n"
    ));
    body.push_str(&table.to_aligned());
    body.push_str(&format!(
        "Default tiling (64x64, symmetric) speedup {default_speedup:.2}x over the scalar \
         row sweep; max abs deviation across all variants {max_dev:.2e}. The \
         symmetric rows also show the kernel-evaluation halving (n(n+1)/2 vs n²) \
         that unified telemetry reports per matvec.\n"
    ));
    let csv = table.write_csv("ablation_cpu_tiling.csv");

    FigureReport {
        id: "ablation_cpu_tiling".into(),
        title: "blocked CPU matvec engine: panels, tiles and symmetry".into(),
        body,
        csv_files: vec![csv],
    }
}

/// Runs the CPU tiling study.
pub fn run(scale: Scale) -> FigureReport {
    let (m, d) = match scale {
        Scale::Small => (1024, 64),
        Scale::Medium => (16384, 128),
    };
    run_sized(m, d)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cpu_tiling_study_runs_and_reports() {
        // tiny size: the unit test runs unoptimized
        let r = run_sized(96, 8);
        assert_eq!(r.id, "ablation_cpu_tiling");
        assert!(r.body.contains("scalar-rows"), "{}", r.body);
        assert!(r.body.contains("blocked-sym-64"), "{}", r.body);
        assert!(r.body.contains("max abs deviation"), "{}", r.body);
        assert_eq!(r.csv_files.len(), 1);
        // n = 95: the symmetric rows must report n(n+1)/2 evaluations
        assert!(
            r.body.contains(&(95u128 * 96 / 2).to_string()),
            "{}",
            r.body
        );
    }
}
