//! Figure 3 — runtime, accuracy and CG iteration count as a function of
//! the relative-residual ε (the CG termination criterion).
//!
//! Fully functional: one training run per ε ∈ {1e-1 … 1e-15} on a fixed
//! data set. The paper's observations to reproduce: (a) runtime tracks the
//! iteration count, (b) the iteration count is flat for loose ε, jumps at
//! a knee, then grows by ~2 per decade, (c) accuracy saturates shortly
//! after the knee, and (d) tightening ε by eight orders of magnitude costs
//! well under ~2× runtime — "the exact choice is not critical" (§IV-F).

use plssvm_core::backend::BackendSelection;
use plssvm_data::model::KernelSpec;

use crate::figures::common::{
    fmt_secs, planes_data, timed_lssvm_train, train_accuracy, FigureReport, Scale, Table,
};

/// Runs the ε sweep.
pub fn run(scale: Scale) -> FigureReport {
    let (m, d, max_exp) = match scale {
        Scale::Small => (128, 32, 8),
        Scale::Medium => (512, 128, 15),
    };
    let data = planes_data(m, d, 42);
    let mut table = Table::new(&["epsilon", "iterations", "runtime", "train accuracy"]);
    let mut rows = Vec::new();
    for exp in 1..=max_exp {
        let eps = 10f64.powi(-exp);
        let (out, t) = timed_lssvm_train(
            &data,
            KernelSpec::Linear,
            eps,
            BackendSelection::openmp(None),
        );
        let acc = train_accuracy(&out, &data);
        rows.push((eps, out.iterations, t.as_secs_f64(), acc));
        table.row(vec![
            format!("1e-{exp:02}"),
            out.iterations.to_string(),
            fmt_secs(t.as_secs_f64()),
            format!("{:.2}%", 100.0 * acc),
        ]);
    }
    let csv = table.write_csv("fig3.csv");

    // headline numbers of the paper's discussion
    let first = rows.first().unwrap();
    let last = rows.last().unwrap();
    let growth = last.2 / rows[rows.len().min(9) - 1].2.max(1e-12);
    FigureReport {
        id: "fig3".into(),
        title: format!("runtime/accuracy/iterations vs CG epsilon ({m} points x {d} features)"),
        body: format!(
            "{}\nIterations grow from {} (ε=1e-1) to {} (tightest); runtime from the \
             post-knee region to the tightest ε grows only {growth:.2}x (the paper: \
             ~1.83x over eight decades). Accuracy saturates at {:.2}%.\n",
            table.to_aligned(),
            first.1,
            last.1,
            100.0 * last.3,
        ),
        csv_files: vec![csv],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_shows_monotone_iterations_and_saturating_accuracy() {
        let r = run(Scale::Small);
        assert!(r.body.contains("1e-01"));
        assert!(r.body.contains("1e-08"));
        // parse iteration column: must be non-decreasing
        let iters: Vec<usize> = r
            .body
            .lines()
            .filter(|l| l.trim_start().starts_with("1e-"))
            .map(|l| {
                l.split_whitespace()
                    .nth(1)
                    .unwrap()
                    .parse::<usize>()
                    .unwrap()
            })
            .collect();
        assert!(iters.len() >= 8);
        for w in iters.windows(2) {
            assert!(w[1] >= w[0], "iterations not monotone: {iters:?}");
        }
    }
}
