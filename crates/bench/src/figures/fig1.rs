//! Figure 1 — runtime comparison PLSSVM vs LIBSVM (sparse/dense) vs
//! ThunderSVM, on CPU (measured) and GPU (modeled at paper scale).
//!
//! * 1a: CPU runtime vs number of data points (fixed features)
//! * 1b: CPU runtime vs number of features (fixed points)
//! * 1c: GPU runtime vs number of data points (fixed features)
//! * 1d: GPU runtime vs number of features (fixed points)
//!
//! CPU rows follow the paper's ε protocol (train until ≥ 97 % training
//! accuracy) with real wall-clock on this host at reduced sizes. GPU rows
//! evaluate the validated work models at the paper's sizes, with solver
//! iteration counts measured at feasible sizes (the paper itself observes
//! the CG iteration count to be nearly size-independent, §IV-C).

use plssvm_core::backend::BackendSelection;
use plssvm_data::model::KernelSpec;
use plssvm_simgpu::{hw, Backend as DeviceApi};
use plssvm_smo::{SmoConfig, ThunderConfig, ThunderSolver};

use crate::figures::common::{
    fmt_secs, planes_data, timed_lssvm_train, train_accuracy, FigureReport, Scale, Table,
};
use crate::protocol::epsilon_search;
use crate::workmodel::{LsSvmWorkModel, ThunderWorkModel};

/// The four CPU competitors of Fig. 1a/1b.
const CPU_METHODS: &[&str] = &["plssvm", "thundersvm", "libsvm", "libsvm-dense"];

fn cpu_method_time(method: &str, points: usize, features: usize, seed: u64) -> (f64, f64, usize) {
    let data = planes_data(points, features, seed);
    let result = epsilon_search(|eps| match method {
        "plssvm" => {
            let (out, _) = timed_lssvm_train(
                &data,
                KernelSpec::Linear,
                eps,
                BackendSelection::openmp(None),
            );
            (train_accuracy(&out, &data), out.iterations)
        }
        "libsvm" | "libsvm-dense" => {
            let cfg = SmoConfig {
                kernel: KernelSpec::Linear,
                epsilon: eps,
                ..Default::default()
            };
            let out = if method == "libsvm" {
                plssvm_smo::solver::train_sparse(&data, &cfg)
            } else {
                plssvm_smo::solver::train_dense(&data, &cfg)
            }
            .expect("smo training");
            (
                plssvm_core::svm::accuracy(&out.model, &data),
                out.iterations,
            )
        }
        "thundersvm" => {
            let cfg = ThunderConfig {
                kernel: KernelSpec::Linear,
                epsilon: eps,
                working_set_size: 64,
                ..Default::default()
            };
            let out = ThunderSolver::new(cfg)
                .unwrap()
                .train(&data)
                .expect("thunder training");
            (
                plssvm_core::svm::accuracy(&out.model, &data),
                out.outer_iterations,
            )
        }
        _ => unreachable!(),
    });
    (
        result.chosen.time.as_secs_f64(),
        result.chosen.accuracy,
        result.chosen.iterations,
    )
}

fn cpu_sweep(
    id: &str,
    title: &str,
    sizes: &[(usize, usize)], // (points, features)
    vary_points: bool,
) -> FigureReport {
    let mut table = Table::new(&[
        if vary_points { "points" } else { "features" },
        "plssvm (1t)",
        "plssvm (128t model)",
        "thundersvm",
        "libsvm",
        "libsvm-dense",
        "plssvm acc",
    ]);
    // The paper's CPU comparison gives PLSSVM 128 OpenMP threads while
    // LIBSVM is single-threaded; this host has one core, so the many-core
    // column is the measured time divided by the Amdahl speedup fitted in
    // fig4a — that is where the paper's crossover comes from.
    let threads_speedup = crate::figures::fig4::cg_speedup(128);
    for (idx, &(m, d)) in sizes.iter().enumerate() {
        let mut cells = vec![if vary_points { m } else { d }.to_string()];
        let mut acc = 0.0;
        for method in CPU_METHODS {
            let (t, a, _) = cpu_method_time(method, m, d, 1000 + idx as u64);
            if *method == "plssvm" {
                acc = a;
                cells.push(fmt_secs(t));
                cells.push(fmt_secs(t / threads_speedup));
            } else {
                cells.push(fmt_secs(t));
            }
        }
        cells.push(format!("{:.1}%", 100.0 * acc));
        table.row(cells);
    }
    let csv = table.write_csv(&format!("{id}.csv"));
    FigureReport {
        id: id.into(),
        title: title.into(),
        body: format!(
            "{}\nProtocol: ε search ×0.1 until ≥97 % training accuracy (paper §IV-B).\n\
             Measured wall-clock on this host (single core), linear kernel. The \
             '128t model' column divides the measured PLSSVM time by the Amdahl \
             speedup ({threads_speedup:.0}x at 128 threads): the paper runs PLSSVM with \
             OpenMP on 2x64 cores against single-threaded LIBSVM, which is what \
             produces its CPU crossover at ~2^11 points.\n",
            table.to_aligned()
        ),
        csv_files: vec![csv],
    }
}

/// Fig. 1a — CPU, runtime vs data points (paper: 2⁶…2¹⁵ points, 2¹⁰
/// features; scaled here).
pub fn run_fig1a(scale: Scale) -> FigureReport {
    let (d, exps): (usize, Vec<u32>) = match scale {
        Scale::Small => (16, vec![5, 6, 7]),
        Scale::Medium => (64, vec![6, 7, 8, 9, 10, 11]),
    };
    let sizes: Vec<(usize, usize)> = exps.iter().map(|&e| (1usize << e, d)).collect();
    cpu_sweep(
        "fig1a",
        &format!("CPU runtime vs #points ({d} features)"),
        &sizes,
        true,
    )
}

/// Fig. 1b — CPU, runtime vs features (paper: 2⁴…2¹⁴ features, 2¹³
/// points; scaled here).
pub fn run_fig1b(scale: Scale) -> FigureReport {
    let (m, exps): (usize, Vec<u32>) = match scale {
        Scale::Small => (64, vec![3, 4, 5]),
        Scale::Medium => (256, vec![4, 5, 6, 7, 8]),
    };
    let sizes: Vec<(usize, usize)> = exps.iter().map(|&e| (m, 1usize << e)).collect();
    cpu_sweep(
        "fig1b",
        &format!("CPU runtime vs #features ({m} points)"),
        &sizes,
        false,
    )
}

/// Measures the batched solver's *total updates per data point* `u` at
/// feasible sizes. Batched SMO performs `≈ u·m` two-variable updates in
/// total, so its outer iteration count at any working set size `q` is
/// `u·m/q` — this is the law the paper's own profiling implies (≈1600
/// launches at `m = 2¹⁴` ⇒ `u ≈ 8-20`), and it is what makes the GPU
/// comparison extrapolate sanely.
pub(crate) fn thunder_updates_per_point(scale: Scale) -> f64 {
    let sizes: Vec<usize> = match scale {
        Scale::Small => vec![64, 128],
        Scale::Medium => vec![128, 256, 512],
    };
    let ws = 64usize;
    let mut us = Vec::new();
    for (i, &m) in sizes.iter().enumerate() {
        let data = planes_data(m, 32, 400 + i as u64);
        let out = ThunderSolver::new(ThunderConfig {
            kernel: KernelSpec::Linear,
            working_set_size: ws,
            ..Default::default()
        })
        .unwrap()
        .train(&data)
        .expect("thunder");
        us.push((out.outer_iterations.max(1) * ws) as f64 / m as f64);
    }
    crate::stats::mean(&us)
}

/// CG iterations for the paper-scale models, measured at a feasible size.
fn cg_iterations(scale: Scale) -> usize {
    match scale {
        Scale::Small => crate::figures::common::measured_iterations(128, 32, 7),
        Scale::Medium => crate::figures::common::measured_iterations(512, 128, 7),
    }
}

fn gpu_sweep(
    id: &str,
    title: &str,
    sizes: &[(usize, usize)],
    vary_points: bool,
    scale: Scale,
) -> FigureReport {
    let iters = cg_iterations(scale);
    let calls = LsSvmWorkModel::matvec_calls(iters);
    let u = thunder_updates_per_point(scale);
    let mut table = Table::new(&[
        if vary_points { "points" } else { "features" },
        "plssvm (A100)",
        "thundersvm (A100)",
        "speedup",
    ]);
    for &(m, d) in sizes {
        let t_ls = LsSvmWorkModel::new(m, d, KernelSpec::Linear).sim_time_s(
            &hw::A100,
            DeviceApi::Cuda,
            calls,
        );
        let thunder = ThunderWorkModel::new(m, d);
        let outer = thunder.outer_iterations(u);
        let t_th = thunder.sim_time_s(&hw::A100, outer);
        table.row(vec![
            if vary_points { m } else { d }.to_string(),
            fmt_secs(t_ls),
            fmt_secs(t_th),
            format!("{:.1}x", t_th / t_ls),
        ]);
    }
    let csv = table.write_csv(&format!("{id}.csv"));
    FigureReport {
        id: id.into(),
        title: title.into(),
        body: format!(
            "{}\nModeled at paper scale on a simulated A100 (CUDA profile): \
             LS-SVM with {iters} CG iterations (measured at a feasible size; the \
             paper reports the count to be nearly size-independent); ThunderSVM \
             priced at its profiled 2.4 % of FP64 peak with its outer iterations \
             from the total-updates law u·m/q, u = {u:.1} measured from executed \
             batched-SMO runs. Paper reference points: 10 s vs 72 s at 2^14 \
             points (7.2x) and 17 s vs 241 s at 2^11 features (14.2x).\n",
            table.to_aligned()
        ),
        csv_files: vec![csv],
    }
}

/// Fig. 1c — GPU, runtime vs data points (paper: 2⁸…2¹⁵ points, 2¹²
/// features).
pub fn run_fig1c(scale: Scale) -> FigureReport {
    let exps: Vec<u32> = match scale {
        Scale::Small => vec![8, 10, 12],
        Scale::Medium => vec![8, 9, 10, 11, 12, 13, 14, 15],
    };
    let sizes: Vec<(usize, usize)> = exps.iter().map(|&e| (1usize << e, 1 << 12)).collect();
    gpu_sweep(
        "fig1c",
        "GPU runtime vs #points (2^12 features)",
        &sizes,
        true,
        scale,
    )
}

/// Fig. 1d — GPU, runtime vs features (paper: 2⁶…2¹⁴ features, 2¹⁵
/// points).
pub fn run_fig1d(scale: Scale) -> FigureReport {
    let exps: Vec<u32> = match scale {
        Scale::Small => vec![6, 8, 10],
        Scale::Medium => vec![6, 7, 8, 9, 10, 11, 12, 13, 14],
    };
    let sizes: Vec<(usize, usize)> = exps.iter().map(|&e| (1usize << 15, 1 << e)).collect();
    gpu_sweep(
        "fig1d",
        "GPU runtime vs #features (2^15 points)",
        &sizes,
        false,
        scale,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig1a_small_produces_all_columns() {
        let r = run_fig1a(Scale::Small);
        assert_eq!(r.id, "fig1a");
        for m in ["plssvm", "thundersvm", "libsvm", "libsvm-dense"] {
            assert!(r.body.contains(m), "{}", r.body);
        }
        // three sizes → header + separator + 3 rows
        assert!(r.body.lines().count() >= 5);
    }

    #[test]
    fn fig1c_small_shows_plssvm_ahead() {
        let r = run_fig1c(Scale::Small);
        // at 2^12 points the modeled speedup must be > 1 (the paper's
        // headline: PLSSVM clearly ahead of ThunderSVM on GPUs)
        let last = r
            .body
            .lines()
            .rfind(|l| l.starts_with(" "))
            .unwrap()
            .to_string();
        assert!(last.contains('x'), "{last}");
    }

    #[test]
    fn thunder_updates_per_point_in_plausible_range() {
        let u = thunder_updates_per_point(Scale::Small);
        // the paper's profiling implies u ≈ 8-20 on planes-like data
        assert!((1.0..200.0).contains(&u), "u = {u}");
    }
}
