//! Figure 4 — strong scaling on a many-core CPU (4a) and on multiple
//! GPUs (4b).
//!
//! This host exposes a single CPU core, so 4a pairs a measured single-core
//! baseline with a documented scaling model: the `cg` component follows
//! Amdahl's law with a serial fraction fitted to the paper's observed
//! 74.7× speedup on 256 threads; `read`/`write` scale to ~16 cores and
//! *degrade* past one socket (64 cores), as the paper reports. Any
//! additional cores present are measured for real.
//!
//! 4b evaluates the validated multi-device work model at the paper's size
//! (2¹⁶ points × 2¹⁴ features) for 1–4 simulated A100s — simulated time,
//! parallel speedup and the exact per-device memory accounting — and
//! cross-checks the speedup shape with a small functional run.

use plssvm_core::backend::BackendSelection;
use plssvm_data::model::KernelSpec;
use plssvm_simgpu::{hw, Backend as DeviceApi};

use crate::figures::common::{
    fmt_secs, planes_data, timed_lssvm_train, FigureReport, Scale, Table,
};
use crate::workmodel::LsSvmWorkModel;

/// Amdahl serial fraction of the `cg` component, fitted to the paper's
/// 74.7× parallel speedup on 256 threads: `f = (256/74.7 − 1)/255`.
pub const CG_SERIAL_FRACTION: f64 = (256.0 / 74.7 - 1.0) / 255.0;

/// Modeled `cg` speedup at `t` threads.
pub fn cg_speedup(t: usize) -> f64 {
    1.0 / (CG_SERIAL_FRACTION + (1.0 - CG_SERIAL_FRACTION) / t as f64)
}

/// Modeled `read`/`write` speedup: ideal to 16 threads, flat to one
/// socket (64), degrading beyond (the paper's two-socket effect).
pub fn io_speedup(t: usize) -> f64 {
    let base = (t.min(16)) as f64;
    if t <= 64 {
        base
    } else {
        base / ((t as f64 / 64.0).sqrt())
    }
}

/// Fig. 4a — CPU strong scaling of the components.
pub fn run_fig4a(scale: Scale) -> FigureReport {
    let (m, d) = match scale {
        Scale::Small => (128, 32),
        Scale::Medium => (512, 128),
    };
    let data = planes_data(m, d, 4001);

    // real measurements for every power-of-two thread count the host has;
    // the 1-thread run doubles as the baseline for the modeled curve
    let host_threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut measured = Table::new(&["threads", "cg (measured)", "speedup"]);
    let mut base_cg = 0.0f64;
    let mut t = 1usize;
    while t <= host_threads {
        let (out, _) = timed_lssvm_train(
            &data,
            KernelSpec::Linear,
            1e-6,
            BackendSelection::openmp(Some(t)),
        );
        let ct = out.times.cg.as_secs_f64();
        if t == 1 {
            base_cg = ct;
        }
        measured.row(vec![
            t.to_string(),
            fmt_secs(ct),
            format!("{:.2}x", base_cg / ct),
        ]);
        t *= 2;
    }

    // modeled scaling to 256 threads
    let mut modeled = Table::new(&["threads", "cg", "cg speedup", "read/write speedup"]);
    for e in 0..=8u32 {
        let t = 1usize << e;
        modeled.row(vec![
            t.to_string(),
            fmt_secs(base_cg / cg_speedup(t)),
            format!("{:.1}x", cg_speedup(t)),
            format!("{:.1}x", io_speedup(t)),
        ]);
    }
    let csv = modeled.write_csv("fig4a.csv");
    FigureReport {
        id: "fig4a".into(),
        title: format!("CPU strong scaling ({m} points x {d} features)"),
        body: format!(
            "Measured on this host ({host_threads} core(s)):\n{}\n\
             Modeled to 256 threads (Amdahl fraction {CG_SERIAL_FRACTION:.4} fitted to the \
             paper's 74.7x at 256 threads; read/write saturate at 16 and degrade \
             past one socket):\n{}",
            measured.to_aligned(),
            modeled.to_aligned()
        ),
        csv_files: vec![csv],
    }
}

/// Fig. 4b — multi-GPU scaling and memory (paper: 2¹⁶ × 2¹⁴ on 4×A100).
pub fn run_fig4b(scale: Scale) -> FigureReport {
    let iters = match scale {
        Scale::Small => crate::figures::common::measured_iterations(128, 32, 9),
        Scale::Medium => crate::figures::common::measured_iterations(512, 128, 9),
    };
    let calls = LsSvmWorkModel::matvec_calls(iters);
    let (m, d) = (1usize << 16, 1usize << 14);
    let gib = |b: u64| b as f64 / (1u64 << 30) as f64;

    let t1 =
        LsSvmWorkModel::new(m, d, KernelSpec::Linear).sim_time_s(&hw::A100, DeviceApi::Cuda, calls);
    let mut table = Table::new(&["GPUs", "sim time", "speedup", "memory/GPU"]);
    for devices in 1..=4usize {
        let model = LsSvmWorkModel::new(m, d, KernelSpec::Linear).with_devices(devices);
        let t = model.sim_time_s(&hw::A100, DeviceApi::Cuda, calls);
        table.row(vec![
            devices.to_string(),
            fmt_secs(t),
            format!("{:.2}x", t1 / t),
            format!("{:.2} GiB", gib(model.peak_memory_per_device())),
        ]);
    }

    // functional cross-check at a small size (executed, not modeled)
    let data = planes_data(256, 64, 4002);
    let (single, _) = timed_lssvm_train(
        &data,
        KernelSpec::Linear,
        1e-6,
        BackendSelection::sim_gpu(hw::A100, DeviceApi::Cuda),
    );
    let (quad, _) = timed_lssvm_train(
        &data,
        KernelSpec::Linear,
        1e-6,
        BackendSelection::sim_multi_gpu(hw::A100, DeviceApi::Cuda, 4),
    );
    let s1 = single.device.unwrap();
    let s4 = quad.device.unwrap();
    let functional = format!(
        "Functional cross-check (256x64, executed; at this toy size the fixed \
         per-iteration transfers dominate, so the speedup is transfer-bound — \
         the memory split is exact at any size): \
         1 GPU {} / 4 GPUs {} simulated => speedup {:.2}x; memory/GPU {:.1} KiB -> {:.1} KiB\n",
        fmt_secs(s1.sim_parallel_time_s),
        fmt_secs(s4.sim_parallel_time_s),
        s1.sim_parallel_time_s / s4.sim_parallel_time_s,
        s1.peak_memory_per_device_bytes as f64 / 1024.0,
        s4.peak_memory_per_device_bytes as f64 / 1024.0,
    );
    let csv = table.write_csv("fig4b.csv");
    FigureReport {
        id: "fig4b".into(),
        title: "multi-GPU scaling, 2^16 points x 2^14 features (modeled, validated model)".into(),
        body: format!(
            "{}\n{functional}\
             Paper: 3.71x on four A100s; 8.15 GiB -> 2.14 GiB per GPU (factor 3.6, \
             not the optimal 4, because the CG vectors are replicated).\n",
            table.to_aligned()
        ),
        csv_files: vec![csv],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn amdahl_fit_hits_paper_speedup() {
        assert!((cg_speedup(256) - 74.7).abs() < 0.5);
        assert!((cg_speedup(1) - 1.0).abs() < 1e-12);
        assert!(cg_speedup(16) > 14.0);
    }

    #[test]
    fn io_speedup_degrades_past_socket() {
        assert_eq!(io_speedup(1), 1.0);
        assert_eq!(io_speedup(16), 16.0);
        assert_eq!(io_speedup(64), 16.0);
        assert!(io_speedup(256) < io_speedup(64));
    }

    #[test]
    fn fig4b_small_runs() {
        let r = run_fig4b(Scale::Small);
        assert!(r.body.contains("GPUs"));
        assert!(r.body.contains("Functional cross-check"));
        // 4 modeled rows
        assert!(r.body.contains("3."), "{}", r.body);
    }
}
