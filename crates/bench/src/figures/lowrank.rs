//! Low-rank solver ablation: randomized Nyström vs exact CG.
//!
//! Trains the same LS-SVM (RBF kernel, planes data) once with the exact
//! guarded CG solver and once per rank with the randomized low-rank
//! solver, and reports wall-clock speedup, the Nyström assembly/solve
//! split, the direct-solve relative residual, and any escalation work
//! (Nyström-PCG iterations). Accuracy columns confirm that every rank
//! trains a model as good as exact CG — the solvers share the same
//! epsilon-driven termination, so rank buys time, not accuracy.
//!
//! Reproduce with
//! `cargo run --release -p plssvm-bench --bin figures -- ablation_lowrank`.

use std::sync::Arc;
use std::time::Instant;

use plssvm_core::backend::BackendSelection;
use plssvm_core::lowrank::{LandmarkStrategy, SolverSelection};
use plssvm_core::svm::{accuracy, LsSvm, TrainOutput};
use plssvm_core::trace::Telemetry;
use plssvm_data::libsvm::LabeledData;
use plssvm_data::model::KernelSpec;

use crate::figures::common::{planes_data, FigureReport, Scale, Table};

/// Hyperparameters of the study: a moderately small ridge (cost 100)
/// makes the kernel spectrum — exactly what Nyström captures — dominate
/// the conditioning, and a smooth RBF width (small gamma) gives that
/// spectrum the fast decay the low-rank path targets. At gamma = 1/d
/// the Gram matrix of this data set is numerically full-rank and a
/// k ≪ m sketch buys nothing (the conformance suite covers that regime
/// for correctness); at 1e-4 a few hundred landmarks capture it almost
/// exactly, which is precisely the workload the solver exists for.
const COST: f64 = 100.0;
const EPSILON: f64 = 1e-6;
const GAMMA: f64 = 1e-4;

fn train_with(
    data: &LabeledData<f64>,
    kernel: KernelSpec<f64>,
    solver: SolverSelection,
) -> (TrainOutput<f64>, f64) {
    let trainer = LsSvm::new()
        .with_kernel(kernel)
        .with_cost(COST)
        .with_epsilon(EPSILON)
        .with_backend(BackendSelection::openmp(None))
        .with_solver(solver)
        .with_metrics(Arc::new(Telemetry::new()));
    let t0 = Instant::now();
    let out = trainer.train(data).expect("training failed");
    let secs = t0.elapsed().as_secs_f64();
    (out, secs)
}

/// Runs the study on an `m × d` problem over the given landmark counts.
fn run_sized(m: usize, d: usize, ranks: &[usize]) -> FigureReport {
    let data = planes_data(m, d, 777);
    let kernel = KernelSpec::Rbf { gamma: GAMMA };

    let mut table = Table::new(&[
        "solver",
        "rank",
        "strategy",
        "m",
        "d",
        "seconds",
        "speedup",
        "assembly_s",
        "solve_s",
        "direct_rel_residual",
        "pcg_iterations",
        "cg_iterations",
        "escalations",
        "accuracy",
    ]);

    // --- baseline: exact guarded CG ---
    let (exact, t_exact) = train_with(&data, kernel, SolverSelection::Exact);
    table.row(vec![
        "exact".into(),
        "-".into(),
        "-".into(),
        m.to_string(),
        d.to_string(),
        format!("{t_exact:.4}"),
        "1.00".into(),
        "-".into(),
        "-".into(),
        format!("{:.3e}", exact.relative_residual),
        "-".into(),
        exact.iterations.to_string(),
        exact.escalations.len().to_string(),
        format!("{:.4}", accuracy(&exact.model, &data)),
    ]);

    // --- low-rank sweep (uniform landmarks, plus one leverage row) ---
    let mut best_speedup = 0.0f64;
    let mut best_rank = 0usize;
    let mut runs: Vec<(usize, LandmarkStrategy)> = ranks
        .iter()
        .map(|&k| (k, LandmarkStrategy::Uniform))
        .collect();
    if let Some(&mid) = ranks.get(ranks.len() / 2) {
        runs.push((mid, LandmarkStrategy::Leverage));
    }
    for (rank, strategy) in runs {
        let (out, t) = train_with(
            &data,
            kernel,
            SolverSelection::LowRank {
                rank,
                seed: 42,
                strategy,
            },
        );
        let sample = out
            .telemetry
            .as_ref()
            .and_then(|r| r.lowrank.clone())
            .expect("low-rank telemetry sample");
        let speedup = t_exact / t;
        if strategy == LandmarkStrategy::Uniform && speedup > best_speedup {
            best_speedup = speedup;
            best_rank = rank;
        }
        table.row(vec![
            "lowrank".into(),
            rank.to_string(),
            strategy.as_str().into(),
            m.to_string(),
            d.to_string(),
            format!("{t:.4}"),
            format!("{speedup:.2}"),
            format!("{:.4}", sample.assembly_wall.as_secs_f64()),
            format!("{:.4}", sample.solve_wall.as_secs_f64()),
            format!("{:.3e}", sample.direct_relative_residual),
            sample.pcg_iterations.to_string(),
            out.iterations.to_string(),
            out.escalations.len().to_string(),
            format!("{:.4}", accuracy(&out.model, &data)),
        ]);
    }

    let mut body = String::new();
    body.push_str(&format!(
        "### Randomized Nyström solver vs exact CG (executed, {m} x {d} RBF \
         gamma {GAMMA:.0e}, cost {COST}, epsilon {EPSILON:.0e})\n"
    ));
    body.push_str(&table.to_aligned());
    body.push_str(&format!(
        "Best uniform-landmark speedup {best_speedup:.2}x over exact CG at rank \
         {best_rank} (k/m = {:.3}). Assembly is O(m·k·d + m·k²) and the k x k \
         Cholesky solve is O(k³), so ranks far below m amortize in a single \
         direct solve; when the direct residual misses epsilon the recorded \
         escalation reruns the solve as Nyström-preconditioned CG with exact \
         matvecs, and the accuracy column shows every rank matches the exact \
         model regardless.\n",
        best_rank as f64 / m as f64
    ));
    let csv = table.write_csv("ablation_lowrank.csv");

    FigureReport {
        id: "ablation_lowrank".into(),
        title: "randomized low-rank (Nyström) solver vs exact CG".into(),
        body,
        csv_files: vec![csv],
    }
}

/// Runs the low-rank ablation.
pub fn run(scale: Scale) -> FigureReport {
    let (m, d, ranks): (usize, usize, Vec<usize>) = match scale {
        Scale::Small => (1024, 64, vec![16, 32, 64, 128]),
        Scale::Medium => (16384, 128, vec![32, 64, 128, 256, 512]),
    };
    run_sized(m, d, &ranks)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lowrank_study_runs_and_reports() {
        // tiny size: the unit test runs unoptimized
        let r = run_sized(96, 8, &[8, 16]);
        assert_eq!(r.id, "ablation_lowrank");
        assert!(r.body.contains("exact"), "{}", r.body);
        assert!(r.body.contains("lowrank"), "{}", r.body);
        assert!(r.body.contains("leverage"), "{}", r.body);
        assert!(
            r.body.contains("Best uniform-landmark speedup"),
            "{}",
            r.body
        );
        assert_eq!(r.csv_files.len(), 1);
    }
}
