//! One driver per table/figure of the paper's evaluation (§IV).
//!
//! Every driver returns a [`common::FigureReport`] (markdown-ish text plus
//! CSV files under `bench_results/`). The `figures` binary dispatches on
//! experiment ids; `EXPERIMENTS.md` records a full run.
//!
//! Sizes are scaled down from the paper (this host has a single CPU core);
//! where functional execution is infeasible the drivers evaluate the
//! validated closed-form work models of [`crate::workmodel`] at paper
//! scale and clearly label those rows as *modeled*.

pub mod ablation;
pub mod common;
pub mod cov;
pub mod cpu_tiling;
pub mod fig1;
pub mod fig2;
pub mod fig3;
pub mod fig4;
pub mod lowrank;
pub mod multinode;
pub mod precision;
pub mod profiling;
pub mod sat6;
pub mod table1;

pub use common::{FigureReport, Scale};

/// Every experiment id the `figures` binary accepts.
pub const ALL_IDS: &[&str] = &[
    "table1",
    "fig1a",
    "fig1b",
    "fig1c",
    "fig1d",
    "fig2a",
    "fig2b",
    "fig3",
    "fig4a",
    "fig4b",
    "sat6",
    "profiling",
    "cov",
    "ablation",
    "ablation_cpu_tiling",
    "ablation_lowrank",
    "multinode",
    "precision",
];

/// Runs one experiment by id.
pub fn run(id: &str, scale: Scale) -> Option<FigureReport> {
    Some(match id {
        "table1" => table1::run(scale),
        "fig1a" => fig1::run_fig1a(scale),
        "fig1b" => fig1::run_fig1b(scale),
        "fig1c" => fig1::run_fig1c(scale),
        "fig1d" => fig1::run_fig1d(scale),
        "fig2a" => fig2::run_fig2a(scale),
        "fig2b" => fig2::run_fig2b(scale),
        "fig3" => fig3::run(scale),
        "fig4a" => fig4::run_fig4a(scale),
        "fig4b" => fig4::run_fig4b(scale),
        "sat6" => sat6::run(scale),
        "profiling" => profiling::run(scale),
        "cov" => cov::run(scale),
        "ablation" => ablation::run(scale),
        "ablation_cpu_tiling" => cpu_tiling::run(scale),
        "ablation_lowrank" => lowrank::run(scale),
        "multinode" => multinode::run(scale),
        "precision" => precision::run(scale),
        _ => return None,
    })
}
