//! §IV-C profiling claims — kernel launch counts and fraction of peak.
//!
//! The paper's Nsight observations: PLSSVM spawns only a handful of
//! distinct compute kernels, its implicit matvec reaching >3.1 TFLOP/s
//! (32 % of the A100's FP64 peak), while ThunderSVM issues >1600 tiny
//! kernels with its best kernel at ~233 GFLOP/s (2.4 % of peak).
//!
//! The PLSSVM side is *executed* on the simulated A100 and read from the
//! unified [`plssvm_core::trace`] counters; the ThunderSVM side runs the
//! batched solver functionally (counting its launches) and converts to
//! the paper's scenario size via the measured outer-iteration growth.

use plssvm_core::backend::BackendSelection;
use plssvm_data::model::KernelSpec;
use plssvm_simgpu::{hw, Backend as DeviceApi, Precision};
use plssvm_smo::thunder::LAUNCHES_PER_OUTER;
use plssvm_smo::{ThunderConfig, ThunderSolver};

use crate::figures::common::{planes_data, timed_lssvm_train, FigureReport, Scale, Table};
use crate::workmodel::ThunderWorkModel;

/// Runs the profiling comparison.
pub fn run(scale: Scale) -> FigureReport {
    // The fraction-of-peak number is launch-overhead-bound at toy sizes
    // (6 µs dispatch vs µs-scale kernels), so medium uses a problem large
    // enough for the matvec kernel to dominate its own launch cost.
    let (m, d) = match scale {
        Scale::Small => (128, 32),
        Scale::Medium => (1024, 512),
    };
    let data = planes_data(m, d, 77);
    let (out, _) = timed_lssvm_train(
        &data,
        KernelSpec::Linear,
        1e-6,
        BackendSelection::sim_gpu(hw::A100, DeviceApi::Cuda),
    );
    let report = out.telemetry.as_ref().expect("telemetry attached");
    let matvec = &report.kernels["svm_kernel"];
    let achieved_tflops = matvec.achieved_flops() / 1e12;
    let peak_frac = matvec.achieved_flops() / hw::A100.peak_flops(Precision::F64);

    // ThunderSVM launches: one executed run at a feasible size plus the
    // total-updates law u·m/q for the paper's profiled scenario (2^14
    // points — the paper counted >1600 launches there).
    let measured = {
        let data = planes_data(256, 32, 600);
        ThunderSolver::new(ThunderConfig {
            working_set_size: 64,
            ..Default::default()
        })
        .unwrap()
        .train(&data)
        .unwrap()
    };
    let u = crate::figures::fig1::thunder_updates_per_point(scale);
    let paper_m = 1usize << 14;
    let thunder_model = ThunderWorkModel::new(paper_m, 1 << 12);
    let thunder_launches = thunder_model.outer_iterations(u) * LAUNCHES_PER_OUTER;

    let mut table = Table::new(&["metric", "PLSSVM", "ThunderSVM"]);
    table.row(vec![
        "distinct compute kernels".into(),
        report.kernels.len().to_string(),
        format!("many tiny ({LAUNCHES_PER_OUTER}/outer iter)"),
    ]);
    table.row(vec![
        "kernel launches (this run)".into(),
        report.total_launches().to_string(),
        format!("{} (measured m=256)", measured.kernel_launches),
    ]);
    table.row(vec![
        "launches at paper scenario (m=2^14)".to_string(),
        (1 + crate::workmodel::LsSvmWorkModel::matvec_calls(out.iterations)).to_string(),
        format!("~{thunder_launches} (paper measured >1600)"),
    ]);
    table.row(vec![
        "matvec throughput".into(),
        format!("{achieved_tflops:.2} TFLOP/s"),
        "~0.233 TFLOP/s (paper)".into(),
    ]);
    table.row(vec![
        "fraction of FP64 peak".into(),
        format!("{:.1}%", 100.0 * peak_frac),
        "2.4% (paper)".into(),
    ]);
    let csv = table.write_csv("profiling.csv");
    FigureReport {
        id: "profiling".into(),
        title: "kernel launches and fraction of peak (paper §IV-C)".into(),
        body: format!(
            "{}\nPLSSVM numbers read from the unified telemetry counters of an \
             executed simulated-A100 run ({m}x{d}); ThunderSVM launch count from the total-updates law \
             (u = {u:.1} updates/point measured from executed batched-SMO runs). \
             Paper: 3 kernels at 32% of peak vs >1600 launches at 2.4%. At small \
             problem sizes the achieved fraction is bounded by the 6 µs launch \
             overhead rather than the arithmetic.\n",
            table.to_aligned()
        ),
        csv_files: vec![csv],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plssvm_has_few_kernels_and_a_bounded_peak_fraction() {
        let r = run(Scale::Small);
        // few distinct kernels (the paper's "only 3 compute kernels")
        let line = r
            .body
            .lines()
            .find(|l| l.contains("distinct compute kernels"))
            .unwrap();
        let plssvm_kernels: usize = line
            .split_whitespace()
            .filter_map(|t| t.parse().ok())
            .next()
            .unwrap();
        assert!(plssvm_kernels <= 3, "{line}");

        // the PLSSVM fraction-of-peak cell parses and cannot exceed the
        // fitted 32 % ceiling (launch overhead only lowers it)
        let line = r
            .body
            .lines()
            .find(|l| l.contains("fraction of FP64 peak"))
            .unwrap();
        let frac: f64 = line
            .split_whitespace()
            .find(|t| t.ends_with('%'))
            .unwrap()
            .trim_end_matches('%')
            .parse()
            .unwrap();
        assert!(frac > 0.0 && frac <= 32.0 + 1e-9, "{line}");

        // ThunderSVM's modeled launches at the paper scenario are in the
        // same ballpark as the paper's >1600 (within ~5x either way)
        let line = r
            .body
            .lines()
            .find(|l| l.contains("launches at paper scenario"))
            .unwrap();
        let launches: f64 = line
            .split('~')
            .nth(1)
            .unwrap()
            .split_whitespace()
            .next()
            .unwrap()
            .parse()
            .unwrap();
        assert!(
            (320.0..16_000.0).contains(&launches),
            "thunder launches {launches}"
        );
    }
}
