//! Multi-node multi-GPU scaling with heterogeneous load balancing — the
//! paper's §V *long-term* goal ("extend all PLSSVM kernels to support
//! multi-node multi-GPU execution including load balancing on
//! heterogeneous hardware"), built and measured here as an extension.
//!
//! Three studies:
//! 1. strong scaling over 1–4 nodes × 4 A100s (16 GPUs) at paper-plus
//!    scale, on an InfiniBand-class vs a commodity-Ethernet interconnect
//!    (modeled through the validated cluster work model);
//! 2. heterogeneous load balancing: an A100+P100 mixed node with the
//!    throughput-weighted feature split vs the naive even split;
//! 3. an executed small-scale cross-check (the functional cluster backend
//!    really runs and its counters price the same way).

use plssvm_core::backend::simgpu::TilingConfig;
use plssvm_core::backend::BackendSelection;
use plssvm_data::model::KernelSpec;
use plssvm_simgpu::{hw, Backend as DeviceApi, Interconnect, NodeConfig};

use crate::figures::common::{
    fmt_secs, measured_iterations, planes_data, timed_lssvm_train, FigureReport, Scale, Table,
};
use crate::workmodel::{ClusterWorkModel, LsSvmWorkModel};

/// Runs the multi-node studies.
pub fn run(scale: Scale) -> FigureReport {
    let iters = match scale {
        Scale::Small => measured_iterations(128, 32, 17),
        Scale::Medium => measured_iterations(512, 128, 17),
    };
    let calls = LsSvmWorkModel::matvec_calls(iters);
    let mut body = String::new();
    let mut csvs = Vec::new();

    // --- 1: strong scaling across nodes (modeled) ---
    let (m, d) = (1usize << 16, 1usize << 14);
    let mut t1 = Table::new(&[
        "nodes x GPUs",
        "HDR InfiniBand",
        "speedup",
        "10 GbE",
        "speedup",
    ]);
    let t_base = ClusterWorkModel::homogeneous(
        m,
        d,
        hw::A100,
        DeviceApi::Cuda,
        1,
        4,
        Interconnect::HDR_INFINIBAND,
    )
    .sim_time_s(calls);
    for nodes in 1..=4usize {
        let t_ib = ClusterWorkModel::homogeneous(
            m,
            d,
            hw::A100,
            DeviceApi::Cuda,
            nodes,
            4,
            Interconnect::HDR_INFINIBAND,
        )
        .sim_time_s(calls);
        let t_eth = ClusterWorkModel::homogeneous(
            m,
            d,
            hw::A100,
            DeviceApi::Cuda,
            nodes,
            4,
            Interconnect::TEN_GBE,
        )
        .sim_time_s(calls);
        t1.row(vec![
            format!("{nodes} x 4 A100"),
            fmt_secs(t_ib),
            format!("{:.2}x", t_base / t_ib),
            fmt_secs(t_eth),
            format!("{:.2}x", t_base / t_eth),
        ]);
    }
    body.push_str(&format!(
        "### 1. Multi-node strong scaling (modeled, 2^16 x 2^14, {calls} matvec calls)\n{}Per iteration one ring allreduce of the partial result vector (n x 8 B \
         = 0.5 MiB) crosses nodes. At this compute-heavy problem size even \
         10 GbE barely dents the near-linear scaling — the LS-SVM's \
         communication volume is tiny relative to its O(m^2 d) arithmetic, \
         which is exactly what makes the paper's §V multi-node goal \
         attractive. The network would only bind for much smaller problems \
         or far larger node counts.\n\n",
        t1.to_aligned()
    ));
    csvs.push(t1.write_csv("multinode_scaling.csv"));

    // --- 2: heterogeneous load balancing (modeled) ---
    let mut t2 = Table::new(&["configuration", "even split", "balanced split", "gain"]);
    for (name, devices) in [
        (
            "A100 + P100",
            vec![(hw::A100, DeviceApi::Cuda), (hw::P100, DeviceApi::Cuda)],
        ),
        (
            "A100 + V100 + P100",
            vec![
                (hw::A100, DeviceApi::Cuda),
                (hw::V100, DeviceApi::Cuda),
                (hw::P100, DeviceApi::Cuda),
            ],
        ),
        (
            "A100 + Radeon VII (OpenCL)",
            vec![
                (hw::A100, DeviceApi::Cuda),
                (hw::RADEON_VII, DeviceApi::OpenCl),
            ],
        ),
    ] {
        let base = ClusterWorkModel {
            points: 1 << 14,
            features: 1 << 12,
            tiling: TilingConfig::default(),
            nodes: vec![devices],
            interconnect: Interconnect::HDR_INFINIBAND,
            balance: false,
        };
        let even = base.sim_time_s(calls);
        let balanced = ClusterWorkModel {
            balance: true,
            ..base
        }
        .sim_time_s(calls);
        t2.row(vec![
            name.into(),
            fmt_secs(even),
            fmt_secs(balanced),
            format!("{:.2}x", even / balanced),
        ]);
    }
    body.push_str(&format!(
        "### 2. Heterogeneous load balancing (modeled, 2^14 x 2^12)\n{}The throughput-weighted feature split relieves the slowest device; the \
         even split is bounded by it.\n\n",
        t2.to_aligned()
    ));
    csvs.push(t2.write_csv("multinode_balance.csv"));

    // --- 3: executed cross-check at small scale ---
    let data = planes_data(
        match scale {
            Scale::Small => 64,
            Scale::Medium => 256,
        },
        32,
        18,
    );
    let (out, _) = timed_lssvm_train(
        &data,
        KernelSpec::Linear,
        1e-8,
        BackendSelection::SimCluster {
            nodes: vec![
                NodeConfig {
                    devices: vec![(hw::A100, DeviceApi::Cuda), (hw::P100, DeviceApi::Cuda)],
                },
                NodeConfig::homogeneous(hw::V100, DeviceApi::Cuda, 2),
            ],
            interconnect: Interconnect::HDR_INFINIBAND,
            tiling: TilingConfig::default(),
            balance: true,
        },
    );
    let report = out.device.unwrap();
    body.push_str(&format!(
        "### 3. Executed cross-check ({} x 32, 2 nodes / 4 mixed GPUs)\n\
         trained functionally in {} CG iterations; device time {}, network time {} \
         over {} collectives; per-device feature shares follow throughput. \
         Results are identical to the single-device run (asserted in the test \
         suite).\n",
        data.points(),
        out.iterations,
        fmt_secs(report.sim_parallel_time_s),
        fmt_secs(report.network_time_s),
        report.network_collectives,
    ));

    FigureReport {
        id: "multinode".into(),
        title: "multi-node multi-GPU scaling + heterogeneous balancing (§V extension)".into(),
        body,
        csv_files: csvs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn multinode_report_sections() {
        let r = run(Scale::Small);
        assert!(r.body.contains("Multi-node strong scaling"));
        assert!(r.body.contains("Heterogeneous load balancing"));
        assert!(r.body.contains("Executed cross-check"));
        assert_eq!(r.csv_files.len(), 2);
        // balancing gains appear (>1.0x somewhere)
        assert!(r.body.contains("x"), "{}", r.body);
    }
}
