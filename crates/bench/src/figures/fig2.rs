//! Figure 2 — runtime breakdown of the PLSSVM components (read,
//! transform, cg, write, total) on the device backend.
//!
//! Functional runs at reduced sizes measure real wall-clock per component
//! through a full file-based pipeline (the paper's four training steps).
//! The CG share grows with the problem until it dominates (the paper
//! reports 92 % at 2¹⁵ points).

use std::path::Path;

use plssvm_core::backend::BackendSelection;
use plssvm_core::svm::LsSvm;
use plssvm_core::timing::ComponentTimes;
use plssvm_core::trace::Telemetry;
use plssvm_data::model::KernelSpec;
use plssvm_data::write_libsvm_file;
use plssvm_simgpu::{hw, Backend as DeviceApi};

use crate::figures::common::{fmt_secs, planes_data, FigureReport, Scale, Table};

fn component_run(points: usize, features: usize, seed: u64) -> (ComponentTimes, usize) {
    let dir = std::env::temp_dir().join("plssvm_bench_fig2");
    std::fs::create_dir_all(&dir).ok();
    let train_path = dir.join(format!("train_{points}_{features}.dat"));
    let model_path = dir.join(format!("model_{points}_{features}.dat"));
    let data = planes_data(points, features, seed);
    write_libsvm_file(&train_path, &data, true).unwrap();

    let out = LsSvm::<f64>::new()
        .with_kernel(KernelSpec::Linear)
        .with_epsilon(1e-6)
        .with_backend(BackendSelection::sim_gpu(hw::A100, DeviceApi::Cuda))
        .with_metrics(Telemetry::shared())
        .train_from_file(&train_path, Some(Path::new(&model_path)))
        .expect("training");
    std::fs::remove_file(&train_path).ok();
    std::fs::remove_file(&model_path).ok();
    // project the paper's component breakdown from the unified timing spans
    let report = out.telemetry.expect("telemetry attached");
    (ComponentTimes::from_spans(&report.spans), out.iterations)
}

fn sweep(id: &str, title: &str, sizes: &[(usize, usize)], vary_points: bool) -> FigureReport {
    let mut table = Table::new(&[
        if vary_points { "points" } else { "features" },
        "read",
        "transform",
        "cg",
        "write",
        "total",
        "cg share",
    ]);
    for (i, &(m, d)) in sizes.iter().enumerate() {
        let (t, _) = component_run(m, d, 2000 + i as u64);
        table.row(vec![
            if vary_points { m } else { d }.to_string(),
            fmt_secs(t.read.as_secs_f64()),
            fmt_secs(t.transform.as_secs_f64()),
            fmt_secs(t.cg.as_secs_f64()),
            fmt_secs(t.write.as_secs_f64()),
            fmt_secs(t.total.as_secs_f64()),
            format!("{:.0}%", 100.0 * t.cg_fraction()),
        ]);
    }
    let csv = table.write_csv(&format!("{id}.csv"));
    FigureReport {
        id: id.into(),
        title: title.into(),
        body: format!(
            "{}\nFull file-based pipeline on the simulated-A100 backend; real \
             wall-clock per component (the paper's read/transform/cg/write \
             split, §IV-E). The CG share grows toward the paper's 92 % as the \
             problem grows.\n",
            table.to_aligned()
        ),
        csv_files: vec![csv],
    }
}

/// Fig. 2a — components vs number of data points.
pub fn run_fig2a(scale: Scale) -> FigureReport {
    let (d, exps): (usize, Vec<u32>) = match scale {
        Scale::Small => (32, vec![5, 6, 7]),
        Scale::Medium => (128, vec![6, 7, 8, 9, 10]),
    };
    let sizes: Vec<(usize, usize)> = exps.iter().map(|&e| (1usize << e, d)).collect();
    sweep(
        "fig2a",
        &format!("component runtimes vs #points ({d} features)"),
        &sizes,
        true,
    )
}

/// Fig. 2b — components vs number of features.
pub fn run_fig2b(scale: Scale) -> FigureReport {
    let (m, exps): (usize, Vec<u32>) = match scale {
        Scale::Small => (64, vec![4, 5, 6]),
        Scale::Medium => (512, vec![4, 5, 6, 7, 8]),
    };
    let sizes: Vec<(usize, usize)> = exps.iter().map(|&e| (m, 1usize << e)).collect();
    sweep(
        "fig2b",
        &format!("component runtimes vs #features ({m} points)"),
        &sizes,
        false,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig2a_small_has_all_components() {
        let r = run_fig2a(Scale::Small);
        for c in ["read", "transform", "cg", "write", "total", "cg share"] {
            assert!(r.body.contains(c), "{}", r.body);
        }
    }

    #[test]
    fn cg_dominates_at_the_largest_size() {
        // the shape claim: cg share grows with the problem
        let (small, _) = component_run(32, 16, 1);
        let (large, _) = component_run(256, 64, 1);
        assert!(
            large.cg_fraction() > small.cg_fraction(),
            "cg share should grow: {:.2} -> {:.2}",
            small.cg_fraction(),
            large.cg_fraction()
        );
    }
}
