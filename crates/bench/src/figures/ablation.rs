//! Ablation studies for the design choices of §III-C.
//!
//! The paper motivates several implementation decisions without isolating
//! them; these studies quantify each one:
//!
//! 1. **Tiling size** (§III-C-1/3/4) — modeled global traffic and time on
//!    the simulated A100 for several tile edge lengths.
//! 2. **`q⃗` caching** (§III-C-2) — implicit matvec with the cached `q`
//!    (one kernel evaluation per entry) vs the naive Eq. 16 (three
//!    evaluations per entry), executed.
//! 3. **Triangular mirroring** (§III-C-1) — exploiting symmetry halves the
//!    kernel evaluations; executed serial comparison.
//! 4. **Data layout** — row-major (AoS) vs column-major (SoA) kernel
//!    matvec on the *CPU*; the SoA layout is chosen for GPU coalescing
//!    (§III-A), and on a cache-based CPU core the row-major layout wins —
//!    which is exactly why the layouts are swapped per backend.
//! 5. **Explicit-w factorization** (future work in §V) — for the linear
//!    kernel `K·v = X·(Xᵀv)` costs `O(m·d)` instead of `O(m²·d)`; executed.

use std::time::Instant;

use plssvm_core::backend::serial::SerialBackend;
use plssvm_core::backend::simgpu::TilingConfig;
use plssvm_core::kernel::{dot, kernel_soa};
use plssvm_data::dense::SoAMatrix;
use plssvm_data::model::KernelSpec;
use plssvm_simgpu::{hw, Backend as DeviceApi};

use crate::figures::common::{fmt_secs, planes_data, FigureReport, Scale, Table};
use crate::workmodel::LsSvmWorkModel;

fn time_it(mut f: impl FnMut()) -> f64 {
    let t0 = Instant::now();
    f();
    t0.elapsed().as_secs_f64()
}

/// Runs all ablations.
pub fn run(scale: Scale) -> FigureReport {
    let (m, d) = match scale {
        Scale::Small => (128, 32),
        Scale::Medium => (768, 128),
    };
    let data = planes_data(m, d, 1234);
    let soa = SoAMatrix::from_dense(&data.x, 64);
    let n = m - 1;
    let v: Vec<f64> = (0..n).map(|i| ((i as f64) * 0.37).sin()).collect();
    let kernel = KernelSpec::Linear;
    let mut body = String::new();
    let mut csvs = Vec::new();

    // --- 1: tiling sweep (modeled A100 traffic/time) ---
    let iters = 28;
    let calls = LsSvmWorkModel::matvec_calls(iters);
    let mut t1 = Table::new(&["tile", "matvec traffic/call", "modeled run time"]);
    for (tb, ib) in [(4usize, 1usize), (16, 1), (16, 4), (16, 8), (32, 4)] {
        let tiling = TilingConfig {
            thread_block: tb,
            internal_block: ib,
            feature_chunk: 64,
        };
        let mut model = LsSvmWorkModel::new(1 << 14, 1 << 10, kernel);
        model.tiling = tiling;
        let w = model.device_work(0);
        t1.row(vec![
            format!("{}x{}={}", tb, ib, tiling.tile()),
            format!("{:.1} MiB", w.matvec_bytes as f64 / (1 << 20) as f64),
            fmt_secs(model.sim_time_s(&hw::A100, DeviceApi::Cuda, calls)),
        ]);
    }
    body.push_str("### 1. Tiling size (modeled, 2^14 x 2^10 on A100)\n");
    body.push_str(&t1.to_aligned());
    body.push_str("Larger tiles reuse each loaded feature chunk for more entries, cutting global traffic.\n\n");
    csvs.push(t1.write_csv("ablation_tiling.csv"));

    // --- 2: q caching (executed) ---
    let backend = SerialBackend::new(data.x.clone(), kernel, 1.0);
    let params = backend.params().clone();
    let mut out = vec![0.0; n];
    let t_cached = time_it(|| {
        backend.kernel_matvec(&v, &mut out);
        params.apply_corrections(&v, &mut out);
    });
    let last = m - 1;
    let t_naive = time_it(|| {
        // naive Eq. 16: three kernel evaluations per entry, no cached q
        for (i, slot) in out.iter_mut().enumerate() {
            let mut acc = 0.0;
            for (j, &vj) in v.iter().enumerate() {
                let e = kernel_soa(&kernel, &soa, i, j) + if i == j { 1.0 } else { 0.0 }
                    - kernel_soa(&kernel, &soa, last, j)
                    - kernel_soa(&kernel, &soa, i, last)
                    + kernel_soa(&kernel, &soa, last, last)
                    + 1.0;
                acc += e * vj;
            }
            *slot = acc;
        }
    });
    let mut t2 = Table::new(&["variant", "matvec time", "kernel evals/entry"]);
    t2.row(vec![
        "cached q (paper)".into(),
        fmt_secs(t_cached),
        "1".into(),
    ]);
    t2.row(vec![
        "naive Eq. 16".into(),
        fmt_secs(t_naive),
        "3 (+k_mm)".into(),
    ]);
    body.push_str(&format!(
        "### 2. q-vector caching (executed, {m} x {d})\n{}speedup {:.2}x (paper's §III-C-2 motivation: 3 scalar products -> 1).\n\n",
        t2.to_aligned(),
        t_naive / t_cached
    ));
    csvs.push(t2.write_csv("ablation_qcache.csv"));

    // --- 3: triangular mirroring (executed) ---
    let t_tri = time_it(|| backend.kernel_matvec(&v, &mut out));
    let t_full = time_it(|| {
        for (i, slot) in out.iter_mut().enumerate() {
            let mut acc = 0.0;
            for (j, &vj) in v.iter().enumerate() {
                acc += kernel_soa(&kernel, &soa, i, j) * vj;
            }
            *slot = acc;
        }
    });
    let mut t3 = Table::new(&["variant", "matvec time"]);
    t3.row(vec!["triangular + mirror".into(), fmt_secs(t_tri)]);
    t3.row(vec!["full matrix".into(), fmt_secs(t_full)]);
    body.push_str(&format!(
        "### 3. Triangular mirroring (executed)\n{}speedup {:.2}x (ideal 2x; mirroring writes cost some of it back).\n\n",
        t3.to_aligned(),
        t_full / t_tri
    ));
    csvs.push(t3.write_csv("ablation_triangular.csv"));

    // --- 4: data layout on the CPU (executed) ---
    let t_soa = time_it(|| {
        for (i, slot) in out.iter_mut().enumerate() {
            let mut acc = 0.0;
            for (j, &vj) in v.iter().enumerate() {
                acc += soa.dot(i, j) * vj;
            }
            *slot = acc;
        }
    });
    let t_aos = time_it(|| {
        for (i, slot) in out.iter_mut().enumerate() {
            let ri = data.x.row(i);
            let mut acc = 0.0;
            for (j, &vj) in v.iter().enumerate() {
                acc += dot(ri, data.x.row(j)) * vj;
            }
            *slot = acc;
        }
    });
    let mut t4 = Table::new(&["layout", "matvec time"]);
    t4.row(vec![
        "SoA (column-major, device layout)".into(),
        fmt_secs(t_soa),
    ]);
    t4.row(vec!["AoS (row-major, host layout)".into(), fmt_secs(t_aos)]);
    body.push_str(&format!(
        "### 4. Data layout on a CPU core (executed)\n{}On a cache-based core the row-major layout is {:.2}x faster — the SoA \
         layout exists for GPU memory coalescing (§III-A), which is why PLSSVM \
         transforms the data only for the device backends.\n\n",
        t4.to_aligned(),
        t_soa / t_aos
    ));
    csvs.push(t4.write_csv("ablation_layout.csv"));

    // --- 5: explicit-w factorization for the linear kernel (executed) ---
    let t_implicit = t_tri;
    let mut w_vec = vec![0.0; d];
    let mut out_w = vec![0.0; n];
    let t_factored = time_it(|| {
        // w = Xᵀ v over the first n points, then out = X w
        w_vec.fill(0.0);
        for (f, w) in w_vec.iter_mut().enumerate() {
            let col = soa.feature_column(f);
            let mut acc = 0.0;
            for (j, &vj) in v.iter().enumerate() {
                acc += col[j] * vj;
            }
            *w = acc;
        }
        for (i, slot) in out_w.iter_mut().enumerate() {
            let mut acc = 0.0;
            for (f, &wf) in w_vec.iter().enumerate() {
                acc += soa.get(i, f) * wf;
            }
            *slot = acc;
        }
    });
    // correctness: factored result equals implicit result
    backend.kernel_matvec(&v, &mut out);
    let max_err = out
        .iter()
        .zip(&out_w)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f64, f64::max);
    let mut t5 = Table::new(&["variant", "matvec time", "complexity"]);
    t5.row(vec![
        "implicit K·v (paper)".into(),
        fmt_secs(t_implicit),
        "O(m^2 d)".into(),
    ]);
    t5.row(vec![
        "factored X(X^T v)".into(),
        fmt_secs(t_factored),
        "O(m d)".into(),
    ]);
    body.push_str(&format!(
        "### 5. Explicit-w factorization, linear kernel only (executed)\n{}speedup {:.0}x at max abs deviation {max_err:.2e} — the \"implicit \
         matrix-vector multiplication implementations available\" the paper's \
         §V names as future work; it changes the complexity class but only \
         exists for the linear kernel.\n",
        t5.to_aligned(),
        t_implicit / t_factored
    ));
    csvs.push(t5.write_csv("ablation_factored.csv"));

    // --- 6: sparse CG backend (the §V extension) vs density (executed) ---
    use plssvm_core::backend::sparse::SparseBackend;
    let mut t6 = Table::new(&["density", "dense backend", "sparse backend", "ratio"]);
    for keep_every in [1usize, 3, 10] {
        let mut x = data.x.clone();
        for p in 0..x.rows() {
            for f in 0..x.cols() {
                if (p + f) % keep_every != 0 {
                    x.set(p, f, 0.0);
                }
            }
        }
        let density = 1.0 / keep_every as f64;
        let dense_b = SerialBackend::new(x.clone(), kernel, 1.0);
        let sparse_b = SparseBackend::new(&x, kernel, 1.0, Some(1)).unwrap();
        let mut out_d = vec![0.0; n];
        let mut out_s = vec![0.0; n];
        let t_dense = time_it(|| dense_b.kernel_matvec(&v, &mut out_d));
        let t_sparse = time_it(|| sparse_b.kernel_matvec(&v, &mut out_s));
        t6.row(vec![
            format!("{:.0}%", 100.0 * density),
            fmt_secs(t_dense),
            fmt_secs(t_sparse),
            format!("{:.2}x", t_dense / t_sparse),
        ]);
    }
    body.push_str(&format!(
        "### 6. Sparse CG backend vs data density (executed, {m} x {d})\n{}The paper (§V) names sparse data structures for the CG solver as future \
         work and recommends ThunderSVM for very sparse data in the meantime; \
         the CSR backend removes that caveat once the density drops low enough \
         for the index-merge to beat the dense FMA stream.\n",
        t6.to_aligned()
    ));
    csvs.push(t6.write_csv("ablation_sparse.csv"));

    // --- 7: Jacobi-preconditioned CG (solver extension, executed) ---
    use plssvm_core::backend::BackendSelection;
    use plssvm_core::svm::LsSvm;
    let weights: Vec<f64> = (0..m)
        .map(|i| if i % 4 == 0 { 1e-4 } else { 1.0 })
        .collect();
    // LIBSVM's default γ = 1/d keeps kernel structure at this dimension
    // (a large γ drives K → I, where nothing needs preconditioning)
    let trainer = |pc: bool| {
        LsSvm::new()
            .with_kernel(KernelSpec::Rbf {
                gamma: 1.0 / d as f64,
            })
            .with_epsilon(1e-8)
            .with_sample_weights(weights.clone())
            .with_jacobi_preconditioner(pc)
            .with_backend(BackendSelection::openmp(None))
    };
    let plain = trainer(false).train(&data).expect("plain CG");
    let pcg = trainer(true).train(&data).expect("PCG");
    let mut t7 = Table::new(&["solver", "CG iterations", "converged"]);
    t7.row(vec![
        "plain CG (paper)".into(),
        plain.iterations.to_string(),
        plain.converged.to_string(),
    ]);
    t7.row(vec![
        "Jacobi PCG".into(),
        pcg.iterations.to_string(),
        pcg.converged.to_string(),
    ]);
    body.push_str(&format!(
        "### 7. Jacobi-preconditioned CG (executed, weighted LS-SVM with a          10^4-spread ridge, {m} x {d})
{}Per-sample weights (the robust weighted LS-SVM) put orders of magnitude          on diag(Q̃); the diagonal preconditioner removes exactly that, cutting          the iteration count — plain CG is what the paper uses and is optimal          for its unweighted, well-scaled benchmarks.
",
        t7.to_aligned()
    ));
    csvs.push(t7.write_csv("ablation_pcg.csv"));

    FigureReport {
        id: "ablation".into(),
        title: "design choice ablations (§III-C + §V)".into(),
        body,
        csv_files: csvs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ablations_run_and_report_all_sections() {
        let r = run(Scale::Small);
        for s in [
            "Tiling size",
            "q-vector caching",
            "Triangular mirroring",
            "Data layout",
            "Explicit-w factorization",
            "Sparse CG backend",
            "Jacobi-preconditioned CG",
        ] {
            assert!(r.body.contains(s), "missing section {s}");
        }
        assert_eq!(r.csv_files.len(), 7);
        // the factored path must be numerically equivalent
        assert!(r.body.contains("max abs deviation"));
    }
}
