//! §IV-D — the SAT-6 airborne real-world data set.
//!
//! The original imagery is not redistributable, so this driver runs the
//! identical pipeline on the SAT-6-like generator of `plssvm-data`:
//! 4-channel image patches, man-made vs natural labels in the paper's
//! class ratio, features scaled to [-1, 1] with `svm-scale` semantics,
//! RBF kernel (the kernel the paper found best on SAT-6), train/test
//! split, accuracy on held-out data. PLSSVM (LS-SVM) is compared against
//! the ThunderSVM-style solver — the paper reports 23.5 min / 95 % vs
//! 40.6 min / 94 %, i.e. a 1.73× runtime advantage at slightly higher
//! accuracy.

use std::time::Instant;

use plssvm_core::backend::BackendSelection;
use plssvm_core::svm::{accuracy, LsSvm};
use plssvm_data::model::KernelSpec;
use plssvm_data::sat6::{generate_sat6, Sat6Config};
use plssvm_data::scale::ScalingParams;
use plssvm_data::split::train_test_split;
use plssvm_smo::{ThunderConfig, ThunderSolver};

use crate::figures::common::{fmt_secs, FigureReport, Scale, Table};

/// Runs the SAT-6-like comparison.
pub fn run(scale: Scale) -> FigureReport {
    // SAT-6 real size: 324k train / 81k test patches of 28x28x4 = 3136
    // features. Scaled for a single host core.
    let (points, image_size) = match scale {
        Scale::Small => (120, 8),
        Scale::Medium => (700, 14),
    };
    let mut data = generate_sat6::<f64>(&Sat6Config::new(points, 7).with_image_size(image_size))
        .expect("sat6 generation");

    // the paper scales all features to [-1, 1] with svm-scale
    let params = ScalingParams::fit(&data.x, -1.0, 1.0).unwrap();
    params.apply(&mut data.x).unwrap();
    // SAT-6 uses a fixed train/test split (324k/81k = 80/20)
    let (train, test) = train_test_split(&data, 0.2, true, 11).unwrap();

    let gamma = 1.0 / train.features() as f64;
    let kernel = KernelSpec::Rbf { gamma };

    let t0 = Instant::now();
    let ls = LsSvm::new()
        .with_kernel(kernel)
        .with_epsilon(1e-6)
        .with_backend(BackendSelection::openmp(None))
        .train(&train)
        .expect("lssvm training");
    let t_ls = t0.elapsed().as_secs_f64();

    let t0 = Instant::now();
    let th = ThunderSolver::new(ThunderConfig {
        kernel,
        working_set_size: 128,
        ..Default::default()
    })
    .unwrap()
    .train(&train)
    .expect("thunder training");
    let t_th = t0.elapsed().as_secs_f64();

    let mut table = Table::new(&["method", "train time", "test accuracy", "train accuracy"]);
    table.row(vec![
        "plssvm (rbf)".into(),
        fmt_secs(t_ls),
        format!("{:.1}%", 100.0 * accuracy(&ls.model, &test)),
        format!("{:.1}%", 100.0 * accuracy(&ls.model, &train)),
    ]);
    table.row(vec![
        "thundersvm (rbf)".into(),
        fmt_secs(t_th),
        format!("{:.1}%", 100.0 * accuracy(&th.model, &test)),
        format!("{:.1}%", 100.0 * accuracy(&th.model, &train)),
    ]);
    let csv = table.write_csv("sat6.csv");

    // Paper scale, modeled: 324 000 train patches × 3136 features, RBF, on
    // one A100. The per-CG-iteration device cost comes from the validated
    // work model; the total depends on SAT-6's CG iteration count, which
    // only the real data would reveal — the paper's 23.5 min corresponds
    // to a handful of iterations at this per-iteration cost.
    let model = crate::workmodel::LsSvmWorkModel::new(
        324_000,
        3136,
        KernelSpec::Rbf {
            gamma: 1.0 / 3136.0,
        },
    );
    let per_iter = model.sim_time_s(&hw_a100(), plssvm_simgpu::Backend::Cuda, 1)
        - model.sim_time_s(&hw_a100(), plssvm_simgpu::Backend::Cuda, 0);
    let paper_total_s = 23.5 * 60.0;
    let implied_iters = paper_total_s / per_iter;
    let scale_note = format!(
        "Paper scale (modeled, 324k x 3136 on one A100): one CG iteration costs \
         {} simulated; the paper's 23.5 min total implies ≈{:.0} CG iterations — \
         consistent with the well-conditioned real-world data the paper \
         describes. At the reduced CPU scale above the comparison inverts \
         (SMO's iteration count is small at small m; its growth with m is what \
         the LS-SVM wins on, exactly as in Fig. 1).\n",
        fmt_secs(per_iter),
        implied_iters
    );

    FigureReport {
        id: "sat6".into(),
        title: format!(
            "SAT-6-like image classification ({} train / {} test patches, {} features)",
            train.points(),
            test.points(),
            train.features()
        ),
        body: format!(
            "{}\nThunderSVM/PLSSVM runtime ratio: {:.2}x (paper on the real SAT-6 at \
             full scale: 1.73x, 95% vs 94% test accuracy).\n{scale_note}",
            table.to_aligned(),
            t_th / t_ls
        ),
        csv_files: vec![csv],
    }
}

fn hw_a100() -> plssvm_simgpu::GpuSpec {
    plssvm_simgpu::hw::A100
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sat6_small_reaches_useful_accuracy() {
        let r = run(Scale::Small);
        assert!(r.body.contains("plssvm (rbf)"));
        assert!(r.body.contains("thundersvm (rbf)"));
        // parse the PLSSVM test accuracy
        let line = r.body.lines().find(|l| l.contains("plssvm")).unwrap();
        let acc: f64 = line
            .split_whitespace()
            .find(|t| t.ends_with('%'))
            .unwrap()
            .trim_end_matches('%')
            .parse()
            .unwrap();
        assert!(acc >= 75.0, "test accuracy too low: {acc}% \n{}", r.body);
    }
}
