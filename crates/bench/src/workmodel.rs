//! Closed-form device work models.
//!
//! The paper's GPU experiments run at sizes (up to 2¹⁶ points × 2¹⁴
//! features) whose functional execution is infeasible on this machine
//! (~10¹³ FLOPs per CG iteration on one host core). The simulated device,
//! however, prices work purely from its counters — so we can *predict*
//! those counters in closed form and price them through exactly the same
//! roofline. [`LsSvmWorkModel`] mirrors the tally statements of
//! `plssvm_core::backend::simgpu` term by term; a test in that spirit
//! (`model_matches_executed_counters`) asserts exact equality against real
//! executed runs at feasible sizes, which is what justifies evaluating the
//! model at paper scale.
//!
//! [`ThunderWorkModel`] prices the ThunderSVM baseline the same way, using
//! the paper's own profiling observations (≈ 2.4 % of FP64 peak, ≥ 6 tiny
//! kernel launches per outer iteration).

use plssvm_core::backend::simgpu::TilingConfig;
use plssvm_core::kernel::kernel_flops;
use plssvm_data::model::KernelSpec;
use plssvm_simgpu::perf::{kernel_time_s, transfer_time_s, TRANSFER_LATENCY_S};
use plssvm_simgpu::{backend_profile, Backend as DeviceApi, GpuSpec, Precision};

/// Predicted per-device counters for one LS-SVM training run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeviceWork {
    /// FLOPs of the single `q_kernel` launch.
    pub q_flops: u64,
    /// Global traffic (bytes) of the `q_kernel` launch.
    pub q_bytes: u64,
    /// FLOPs of one `svm_kernel` launch (one matvec call).
    pub matvec_flops: u64,
    /// Global traffic (bytes) of one `svm_kernel` launch.
    pub matvec_bytes: u64,
    /// Bytes uploaded at setup (the data part).
    pub h2d_setup: u64,
    /// Bytes downloaded at setup (the q vector).
    pub d2h_setup: u64,
    /// Bytes uploaded per matvec call (the direction vector).
    pub h2d_per_call: u64,
    /// Bytes downloaded per matvec call (the partial result).
    pub d2h_per_call: u64,
    /// FLOPs of the final `w_kernel` launch (linear kernel only, 0 else).
    pub w_flops: u64,
    /// Global traffic (bytes) of the `w_kernel` launch.
    pub w_bytes: u64,
    /// Bytes uploaded for the `w_kernel` (the α vector; 0 for non-linear).
    pub h2d_w: u64,
    /// Bytes downloaded from the `w_kernel` (this device's w chunk).
    pub d2h_w: u64,
    /// Peak device memory in bytes.
    pub peak_memory: u64,
}

/// The LS-SVM device work model.
#[derive(Debug, Clone)]
pub struct LsSvmWorkModel {
    /// Training points `m`.
    pub points: usize,
    /// Features `d`.
    pub features: usize,
    /// Kernel function (with placeholder hyperparameters — only the kind
    /// affects the counts).
    pub kernel: KernelSpec<f64>,
    /// Kernel tiling.
    pub tiling: TilingConfig,
    /// Device count (feature split).
    pub devices: usize,
}

impl LsSvmWorkModel {
    /// A model with default tiling on one device.
    pub fn new(points: usize, features: usize, kernel: KernelSpec<f64>) -> Self {
        Self {
            points,
            features,
            kernel,
            tiling: TilingConfig::default(),
            devices: 1,
        }
    }

    /// Sets the device count.
    pub fn with_devices(mut self, devices: usize) -> Self {
        self.devices = devices.max(1);
        self
    }

    /// Matvec calls CG performs for `iterations` plus the periodic exact
    /// residual refreshes (`plssvm_core::cg` refreshes every 50).
    pub fn matvec_calls(iterations: usize) -> usize {
        iterations + iterations / 50
    }

    /// Feature count of device `k` under the contiguous split.
    fn device_features(&self, k: usize) -> usize {
        let base = self.features / self.devices;
        let extra = self.features % self.devices;
        base + usize::from(k < extra)
    }

    /// Predicts the counters of device `k` (bytes assume FP64).
    pub fn device_work(&self, k: usize) -> DeviceWork {
        self.device_work_for(self.device_features(k))
    }

    /// Predicts the counters of a device holding `d_features` features of
    /// the split (the building block for heterogeneous clusters).
    pub fn device_work_for(&self, d_features: usize) -> DeviceWork {
        const B: u64 = 8; // FP64 bytes
        let n = self.points - 1;
        let tile = self.tiling.tile();
        let padded = self.points.div_ceil(tile) * tile;
        let d = d_features as u64;
        // one full kernel evaluation over this device's d features
        let fe_d = kernel_flops(&self.kernel, d as usize);

        // --- q_kernel: blocks over 0..=n ---
        let mut q_flops = 0u64;
        let mut q_bytes = 0u64;
        let q_blocks = (n + 1).div_ceil(tile);
        for blk in 0..q_blocks {
            let i0 = blk * tile;
            let rows = ((i0 + tile).min(n + 1) - i0) as u64;
            q_flops += rows * fe_d;
            q_bytes += (rows + 1) * d * B; // reads
            q_bytes += rows * B; // writes
        }

        // --- svm_kernel: triangular blocks over 0..n ---
        let mut matvec_flops = 0u64;
        let mut matvec_bytes = 0u64;
        let blocks = n.div_ceil(tile);
        for bx in 0..blocks {
            let i0 = bx * tile;
            let rows = ((i0 + tile).min(n) - i0) as u64;
            if rows == 0 {
                continue;
            }
            for by in 0..=bx {
                let j0 = by * tile;
                let cols = ((j0 + tile).min(n) - j0) as u64;
                if cols == 0 {
                    continue;
                }
                let entries = if bx == by {
                    rows * (rows + 1) / 2
                } else {
                    rows * cols
                };
                matvec_flops += entries * (fe_d + 4);
                matvec_bytes += ((rows + cols) * d + rows + cols) * B; // reads
                matvec_bytes += 2 * entries * B; // atomic writes
            }
        }

        // --- w_kernel (training epilogue, linear kernel only) ---
        let m = n as u64 + 1;
        let (w_flops, w_bytes, h2d_w, d2h_w) = if matches!(self.kernel, KernelSpec::Linear) {
            (d * 2 * m, (d * m + m) * B + d * B, m * B, d * B)
        } else {
            (0, 0, 0, 0)
        };

        let data_bytes = padded as u64 * d * B;
        // data stays resident; the peak is the larger of the q buffer, the
        // per-call v + out pair, or the w phase's α + w buffers
        let transient = (n as u64 + 1)
            .max(2 * n as u64)
            .max(if w_flops > 0 { m + d } else { 0 });
        DeviceWork {
            q_flops,
            q_bytes,
            matvec_flops,
            matvec_bytes,
            h2d_setup: data_bytes,
            d2h_setup: (n as u64 + 1) * B,
            h2d_per_call: n as u64 * B,
            d2h_per_call: n as u64 * B,
            w_flops,
            w_bytes,
            h2d_w,
            d2h_w,
            peak_memory: data_bytes + transient * B,
        }
    }

    /// Simulated wall-clock of a full training run (setup + `matvec_calls`
    /// iterations), assuming devices run concurrently: the slowest device
    /// bounds the time, exactly like
    /// `MultiDeviceContext::sim_parallel_time_s`.
    pub fn sim_time_s(&self, spec: &GpuSpec, api: DeviceApi, matvec_calls: usize) -> f64 {
        let profile = backend_profile(api, spec);
        (0..self.devices)
            .map(|k| {
                let w = self.device_work(k);
                let t_q = kernel_time_s(spec, &profile, Precision::F64, w.q_flops, w.q_bytes);
                let t_mv = kernel_time_s(
                    spec,
                    &profile,
                    Precision::F64,
                    w.matvec_flops,
                    w.matvec_bytes,
                );
                let t_setup =
                    transfer_time_s(spec, w.h2d_setup) + transfer_time_s(spec, w.d2h_setup);
                let t_call =
                    transfer_time_s(spec, w.h2d_per_call) + transfer_time_s(spec, w.d2h_per_call);
                let t_w = if w.w_flops > 0 {
                    kernel_time_s(spec, &profile, Precision::F64, w.w_flops, w.w_bytes)
                        + transfer_time_s(spec, w.h2d_w)
                        + transfer_time_s(spec, w.d2h_w)
                } else {
                    0.0
                };
                t_setup + t_q + matvec_calls as f64 * (t_mv + t_call) + t_w
            })
            .fold(0.0, f64::max)
    }

    /// Predicted peak device memory (max over devices), in bytes.
    pub fn peak_memory_per_device(&self) -> u64 {
        (0..self.devices)
            .map(|k| self.device_work(k).peak_memory)
            .max()
            .unwrap_or(0)
    }

    /// Total kernel launches for a run (per device: one `q_kernel`, one
    /// `svm_kernel` per matvec call, and for the linear kernel one final
    /// `w_kernel`).
    pub fn kernel_launches(&self, matvec_calls: usize) -> usize {
        let w = usize::from(matches!(self.kernel, KernelSpec::Linear));
        self.devices * (1 + matvec_calls + w)
    }
}

/// Multi-node cluster work model — prices the §V "multi-node multi-GPU
/// with heterogeneous load balancing" extension at arbitrary scale,
/// mirroring `SimGpuBackend::new_cluster` (validated against its executed
/// counters in tests).
#[derive(Debug, Clone)]
pub struct ClusterWorkModel {
    /// Training points `m`.
    pub points: usize,
    /// Features `d`.
    pub features: usize,
    /// Kernel tiling.
    pub tiling: TilingConfig,
    /// Devices per node.
    pub nodes: Vec<Vec<(GpuSpec, DeviceApi)>>,
    /// Inter-node network.
    pub interconnect: plssvm_simgpu::Interconnect,
    /// Throughput-weighted feature split (heterogeneous load balancing).
    pub balance: bool,
}

impl ClusterWorkModel {
    /// A homogeneous cluster of `nodes` nodes × `devices_per_node` GPUs.
    pub fn homogeneous(
        points: usize,
        features: usize,
        spec: GpuSpec,
        api: DeviceApi,
        nodes: usize,
        devices_per_node: usize,
        interconnect: plssvm_simgpu::Interconnect,
    ) -> Self {
        Self {
            points,
            features,
            tiling: TilingConfig::default(),
            nodes: vec![vec![(spec, api); devices_per_node]; nodes],
            interconnect,
            balance: true,
        }
    }

    fn devices(&self) -> Vec<&(GpuSpec, DeviceApi)> {
        self.nodes.iter().flatten().collect()
    }

    /// The per-device feature allocation (identical arithmetic to the
    /// executed backend — both use `plssvm_data::dense::weighted_allocation`).
    pub fn feature_split(&self) -> Vec<usize> {
        let devices = self.devices();
        if self.balance {
            let weights: Vec<f64> = devices
                .iter()
                .map(|(spec, api)| {
                    let profile = backend_profile(*api, spec);
                    spec.peak_flops(Precision::F64) * profile.compute_efficiency
                })
                .collect();
            plssvm_data::dense::weighted_allocation(self.features, &weights)
        } else {
            let n = devices.len();
            (0..n)
                .map(|k| self.features / n + usize::from(k < self.features % n))
                .collect()
        }
    }

    /// Simulated wall-clock of a training run: slowest device bounds the
    /// device time; inter-node partial combinations add `matvec_calls + 1`
    /// ring allreduces (one for the q vector).
    pub fn sim_time_s(&self, matvec_calls: usize) -> f64 {
        let base = LsSvmWorkModel::new(self.points, self.features, KernelSpec::Linear);
        let split = self.feature_split();
        let device_time = self
            .devices()
            .iter()
            .zip(&split)
            .map(|((spec, api), &d)| {
                let profile = backend_profile(*api, spec);
                let w = LsSvmWorkModel {
                    tiling: self.tiling,
                    ..base.clone()
                }
                .device_work_for(d);
                let t_q = kernel_time_s(spec, &profile, Precision::F64, w.q_flops, w.q_bytes);
                let t_mv = kernel_time_s(
                    spec,
                    &profile,
                    Precision::F64,
                    w.matvec_flops,
                    w.matvec_bytes,
                );
                let t_w = if w.w_flops > 0 {
                    kernel_time_s(spec, &profile, Precision::F64, w.w_flops, w.w_bytes)
                        + transfer_time_s(spec, w.h2d_w)
                        + transfer_time_s(spec, w.d2h_w)
                } else {
                    0.0
                };
                let t_setup =
                    transfer_time_s(spec, w.h2d_setup) + transfer_time_s(spec, w.d2h_setup);
                let t_call =
                    transfer_time_s(spec, w.h2d_per_call) + transfer_time_s(spec, w.d2h_per_call);
                t_setup + t_q + matvec_calls as f64 * (t_mv + t_call) + t_w
            })
            .fold(0.0, f64::max);
        let n = (self.points - 1) as u64;
        let nodes = self.nodes.len();
        let network = self.interconnect.allreduce_time_s((n + 1) * 8, nodes)
            + matvec_calls as f64 * self.interconnect.allreduce_time_s(n * 8, nodes);
        device_time + network
    }
}

/// ThunderSVM GPU cost model, fitted to the paper's profiling (§IV-C):
/// the most compute-intense kernel reaches ≈ 233 GFLOP/s (2.4 % of the
/// A100's FP64 peak) and a training run issues a plethora of sub-ms
/// launches.
#[derive(Debug, Clone)]
pub struct ThunderWorkModel {
    /// Training points `m`.
    pub points: usize,
    /// Features `d`.
    pub features: usize,
    /// Working set size `q`.
    pub working_set: usize,
    /// Fraction of FP64 peak ThunderSVM's kernels achieve (paper: 0.024).
    pub peak_fraction: f64,
}

impl ThunderWorkModel {
    /// A model with ThunderSVM defaults.
    pub fn new(points: usize, features: usize) -> Self {
        Self {
            points,
            features,
            working_set: 512,
            peak_fraction: 0.024,
        }
    }

    /// Outer iterations implied by a *total-updates* law: batched SMO
    /// performs `≈ u·m` two-variable updates in total (`u` measured from
    /// executed runs), so a working set of size `q` needs `u·m/q` outer
    /// iterations. This matches the paper's own profiling: ~1600 launches
    /// at `m = 2¹⁴` ⇒ ~270 outer iterations ⇒ `u ≈ 270·512/2¹⁴ ≈ 8.4`.
    pub fn outer_iterations(&self, updates_per_point: f64) -> usize {
        let q = self.working_set.min(self.points) as f64;
        ((updates_per_point * self.points as f64) / q)
            .ceil()
            .max(1.0) as usize
    }

    /// FLOPs of one outer iteration: the row batch (`q` kernel rows of
    /// length `m`, 2·d FLOPs each) plus the bulk gradient update.
    pub fn flops_per_outer(&self) -> f64 {
        let m = self.points as f64;
        let d = self.features as f64;
        let q = self.working_set.min(self.points) as f64;
        q * m * 2.0 * d + q * m * 2.0
    }

    /// Simulated time of `outer` iterations on `spec`: arithmetic at the
    /// fitted peak fraction plus per-launch overheads
    /// ([`plssvm_smo::thunder::LAUNCHES_PER_OUTER`] tiny kernels each).
    pub fn sim_time_s(&self, spec: &GpuSpec, outer: usize) -> f64 {
        let rate = spec.peak_flops(Precision::F64) * self.peak_fraction;
        let compute = outer as f64 * self.flops_per_outer() / rate;
        let launches = (outer * plssvm_smo::thunder::LAUNCHES_PER_OUTER) as f64;
        let overhead = launches * (spec.launch_overhead_us * 1e-6 + TRANSFER_LATENCY_S);
        compute + overhead
    }

    /// ThunderSVM's device memory: the dense data, a transposed working
    /// copy (ThunderSVM keeps both CSR and dense-transposed forms — the
    /// paper measured 13.08 GiB where the raw data is 8 GiB) and the
    /// kernel-row cache.
    pub fn memory_bytes(&self) -> u64 {
        let data = (self.points * self.features * 8) as u64;
        let cache = (self.working_set.min(self.points) * self.points * 8) as u64;
        data + data / 2 + cache + (4 * self.points * 8) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use plssvm_core::backend::BackendSelection;
    use plssvm_core::svm::LsSvm;
    use plssvm_data::synthetic::{generate_planes, PlanesConfig};
    use plssvm_simgpu::hw;

    /// The load-bearing test: the closed-form model must match the
    /// counters of real executed runs *exactly* — this is what licenses
    /// evaluating it at paper scale.
    #[test]
    fn model_matches_executed_counters() {
        for (points, features, devices, kernel) in [
            (33usize, 7usize, 1usize, KernelSpec::Linear),
            (64, 16, 1, KernelSpec::Linear),
            (50, 12, 3, KernelSpec::Linear),
            (41, 5, 1, KernelSpec::Rbf { gamma: 0.5 }),
            (
                37,
                6,
                1,
                KernelSpec::Polynomial {
                    degree: 3,
                    gamma: 0.5,
                    coef0: 1.0,
                },
            ),
        ] {
            let data = generate_planes::<f64>(&PlanesConfig::new(points, features, 11)).unwrap();
            let out = LsSvm::new()
                .with_kernel(kernel)
                .with_epsilon(1e-10)
                .with_backend(BackendSelection::sim_multi_gpu(
                    hw::A100,
                    plssvm_simgpu::Backend::Cuda,
                    devices,
                ))
                .train(&data)
                .unwrap();
            let report = out.device.unwrap();
            let calls = LsSvmWorkModel::matvec_calls(out.iterations);
            let model = LsSvmWorkModel::new(points, features, kernel).with_devices(devices);

            assert_eq!(report.per_device.len(), devices);
            for (k, dev) in report.per_device.iter().enumerate() {
                let w = model.device_work(k);
                let q = &dev.per_kernel["q_kernel"];
                assert_eq!(q.launches, 1);
                assert_eq!(q.flops, u128::from(w.q_flops), "q flops dev {k}");
                assert_eq!(q.global_bytes, u128::from(w.q_bytes), "q bytes dev {k}");

                let mv = &dev.per_kernel["svm_kernel"];
                assert_eq!(mv.launches as usize, calls, "matvec calls dev {k}");
                assert_eq!(
                    mv.flops,
                    u128::from(w.matvec_flops) * calls as u128,
                    "matvec flops dev {k} ({points}x{features}, {devices} devices)"
                );
                assert_eq!(
                    mv.global_bytes,
                    u128::from(w.matvec_bytes) * calls as u128,
                    "matvec bytes dev {k}"
                );

                if w.w_flops > 0 {
                    let wk = &dev.per_kernel["w_kernel"];
                    assert_eq!(wk.launches, 1, "w_kernel launches dev {k}");
                    assert_eq!(wk.flops, u128::from(w.w_flops), "w flops dev {k}");
                    assert_eq!(wk.global_bytes, u128::from(w.w_bytes), "w bytes dev {k}");
                } else {
                    assert!(!dev.per_kernel.contains_key("w_kernel"));
                }

                assert_eq!(
                    dev.h2d_bytes,
                    u128::from(w.h2d_setup + w.h2d_per_call * calls as u64 + w.h2d_w),
                    "h2d dev {k}"
                );
                assert_eq!(
                    dev.d2h_bytes,
                    u128::from(w.d2h_setup + w.d2h_per_call * calls as u64 + w.d2h_w),
                    "d2h dev {k}"
                );
                assert_eq!(
                    dev.peak_allocated_bytes as u64, w.peak_memory,
                    "peak memory dev {k}"
                );
            }
            // simulated time agrees with the device-recorded total
            let t_model = model.sim_time_s(&hw::A100, plssvm_simgpu::Backend::Cuda, calls);
            let t_real = report.sim_parallel_time_s;
            assert!(
                (t_model - t_real).abs() / t_real < 1e-9,
                "sim time {t_model} vs {t_real}"
            );
        }
    }

    #[test]
    fn multi_device_splits_work() {
        let model = LsSvmWorkModel::new(1024, 64, KernelSpec::Linear).with_devices(4);
        let total: u64 = (0..4).map(|k| model.device_work(k).matvec_flops).sum();
        let single = LsSvmWorkModel::new(1024, 64, KernelSpec::Linear).device_work(0);
        // the per-entry "+4" output FMAs are replicated per device, so the
        // split total slightly exceeds the single-device count
        assert!(total >= single.matvec_flops);
        assert!((total as f64) < single.matvec_flops as f64 * 1.2);
        // per-device memory shrinks roughly 4x (data dominates)
        assert!(model.peak_memory_per_device() < single.peak_memory / 2);
    }

    #[test]
    fn paper_scale_memory_numbers() {
        // Fig. 4b discussion: 2^16 points × 2^14 features, FP64.
        // Paper: 8.15 GiB on one GPU, 2.14 GiB per GPU on four.
        let gib = |b: u64| b as f64 / (1u64 << 30) as f64;
        let single = LsSvmWorkModel::new(1 << 16, 1 << 14, KernelSpec::Linear);
        let quad = single.clone().with_devices(4);
        let m1 = gib(single.peak_memory_per_device());
        let m4 = gib(quad.peak_memory_per_device());
        assert!((m1 - 8.15).abs() < 0.3, "single-GPU memory {m1} GiB");
        assert!((m4 - 2.14).abs() < 0.3, "quad-GPU memory {m4} GiB");
        // reduction factor ≈ 3.6-3.8, not the optimal 4 (shared vectors)
        let factor = m1 / m4;
        assert!((3.4..4.0).contains(&factor), "reduction factor {factor}");

        // ThunderSVM on the same data: paper reports 13.08 GiB
        let thunder = ThunderWorkModel::new(1 << 16, 1 << 14);
        let mt = gib(thunder.memory_bytes());
        assert!((mt - 13.08).abs() < 1.2, "thunder memory {mt} GiB");
    }

    #[test]
    fn multi_gpu_speedup_shape() {
        // Fig. 4b: 4 GPUs give ~3.71x on 2^16 × 2^14.
        let calls = LsSvmWorkModel::matvec_calls(30);
        let t1 = LsSvmWorkModel::new(1 << 16, 1 << 14, KernelSpec::Linear).sim_time_s(
            &hw::A100,
            DeviceApi::Cuda,
            calls,
        );
        let t4 = LsSvmWorkModel::new(1 << 16, 1 << 14, KernelSpec::Linear)
            .with_devices(4)
            .sim_time_s(&hw::A100, DeviceApi::Cuda, calls);
        let speedup = t1 / t4;
        assert!(
            (3.2..4.0).contains(&speedup),
            "4-GPU speedup {speedup} out of the paper's range"
        );
    }

    #[test]
    fn thunder_is_slower_than_lssvm_at_paper_scale() {
        // Fig. 1c/1d territory: 2^14 points × 2^12 features — the paper
        // reports PLSSVM 10 s vs ThunderSVM 72 s on the A100.
        let m = 1 << 14;
        let d = 1 << 12;
        let ls = LsSvmWorkModel::new(m, d, KernelSpec::Linear);
        let t_ls = ls.sim_time_s(&hw::A100, DeviceApi::Cuda, LsSvmWorkModel::matvec_calls(28));
        // total-updates law with the u measured from our executed batched
        // SMO runs (≈ 19 updates per point on planes data)
        let thunder = ThunderWorkModel::new(m, d);
        let outer = thunder.outer_iterations(19.0);
        let t_th = thunder.sim_time_s(&hw::A100, outer);
        assert!(
            t_th / t_ls > 3.0,
            "ThunderSVM ({t_th:.1}s) should trail PLSSVM ({t_ls:.1}s) clearly"
        );
    }

    #[test]
    fn cluster_model_matches_executed_cluster() {
        use plssvm_core::backend::BackendSelection;
        use plssvm_core::svm::LsSvm;
        use plssvm_simgpu::{Interconnect, NodeConfig};

        let data = generate_planes::<f64>(&PlanesConfig::new(40, 12, 33)).unwrap();
        let nodes = vec![
            NodeConfig::homogeneous(hw::A100, plssvm_simgpu::Backend::Cuda, 1),
            NodeConfig {
                devices: vec![(hw::P100, plssvm_simgpu::Backend::Cuda)],
            },
        ];
        let out = LsSvm::new()
            .with_epsilon(1e-10)
            .with_backend(BackendSelection::SimCluster {
                nodes: nodes.clone(),
                interconnect: Interconnect::HDR_INFINIBAND,
                tiling: plssvm_core::backend::simgpu::TilingConfig::default(),
                balance: true,
            })
            .train(&data)
            .unwrap();
        let report = out.device.unwrap();
        assert_eq!(report.nodes, 2);

        let model = ClusterWorkModel {
            points: 40,
            features: 12,
            tiling: plssvm_core::backend::simgpu::TilingConfig::default(),
            nodes: vec![
                vec![(hw::A100, plssvm_simgpu::Backend::Cuda)],
                vec![(hw::P100, plssvm_simgpu::Backend::Cuda)],
            ],
            interconnect: Interconnect::HDR_INFINIBAND,
            balance: true,
        };
        // the split matches the executed backend's exactly
        let split = model.feature_split();
        assert_eq!(split.iter().sum::<usize>(), 12);
        assert!(split[0] > split[1]); // A100 gets more features

        // total simulated time (device + network) matches
        let calls = LsSvmWorkModel::matvec_calls(out.iterations);
        let t_model = model.sim_time_s(calls);
        let t_real = report.total_sim_time_s();
        assert!(
            (t_model - t_real).abs() / t_real < 1e-9,
            "cluster sim time {t_model} vs {t_real}"
        );
    }

    #[test]
    fn heterogeneous_balancing_beats_even_split() {
        use plssvm_simgpu::Interconnect;
        // A100 + P100 in one node: the balanced split must be faster than
        // the even split (the slow P100 is relieved of half its work)
        let base = ClusterWorkModel {
            points: 1 << 14,
            features: 1 << 12,
            tiling: TilingConfig::default(),
            nodes: vec![vec![
                (hw::A100, DeviceApi::Cuda),
                (hw::P100, DeviceApi::Cuda),
            ]],
            interconnect: Interconnect::HDR_INFINIBAND,
            balance: true,
        };
        let balanced = base.sim_time_s(30);
        let even = ClusterWorkModel {
            balance: false,
            ..base
        }
        .sim_time_s(30);
        assert!(
            balanced < even * 0.85,
            "balanced {balanced:.2}s vs even {even:.2}s"
        );
    }

    #[test]
    fn multinode_scaling_is_near_linear_on_fast_network() {
        use plssvm_simgpu::Interconnect;
        let calls = LsSvmWorkModel::matvec_calls(30);
        let t = |nodes: usize, net: Interconnect| {
            ClusterWorkModel::homogeneous(
                1 << 16,
                1 << 14,
                hw::A100,
                DeviceApi::Cuda,
                nodes,
                4,
                net,
            )
            .sim_time_s(calls)
        };
        let t1 = t(1, Interconnect::HDR_INFINIBAND);
        let t4 = t(4, Interconnect::HDR_INFINIBAND);
        let speedup = t1 / t4;
        assert!((3.5..4.01).contains(&speedup), "16-GPU speedup {speedup}");
        // a slow network erodes the scaling
        let t4_slow = t(4, Interconnect::TEN_GBE);
        assert!(t4_slow > t4);
    }

    #[test]
    fn launch_counts() {
        let model = LsSvmWorkModel::new(100, 10, KernelSpec::Linear).with_devices(2);
        // per device: q_kernel + 25 svm_kernels + w_kernel (linear)
        assert_eq!(model.kernel_launches(25), 2 * 27);
        let rbf = LsSvmWorkModel::new(100, 10, KernelSpec::Rbf { gamma: 0.5 });
        assert_eq!(rbf.kernel_launches(25), 26); // no w_kernel
        assert_eq!(LsSvmWorkModel::matvec_calls(49), 49);
        assert_eq!(LsSvmWorkModel::matvec_calls(50), 51);
        assert_eq!(LsSvmWorkModel::matvec_calls(125), 127);
    }
}
