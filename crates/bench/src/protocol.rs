//! The paper's measurement protocol (§IV-B).
//!
//! "We start with 0.1 and increment the epsilon in steps of ×0.1 (i.e.,
//! 0.01, 0.001, etc.) until an accuracy of more than 97 % was reached on
//! the training data. If the training data was non-separable … we compared
//! the runs that converged in accuracy in the first three digits."

use std::time::{Duration, Instant};

/// One trained-and-measured run at a fixed ε.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProtocolRun {
    /// The ε used.
    pub epsilon: f64,
    /// Training accuracy reached.
    pub accuracy: f64,
    /// Wall-clock of the training call.
    pub time: Duration,
    /// Solver iterations (CG or SMO, whatever the trainer reports).
    pub iterations: usize,
}

/// Outcome of the ε search.
#[derive(Debug, Clone, PartialEq)]
pub struct ProtocolResult {
    /// The accepted run.
    pub chosen: ProtocolRun,
    /// Every run performed during the search, in ε order.
    pub runs: Vec<ProtocolRun>,
    /// True if the 97 % target was reached (false: accuracy-convergence
    /// stop on non-separable data).
    pub reached_target: bool,
}

/// Target training accuracy of the protocol.
pub const TARGET_ACCURACY: f64 = 0.97;

/// Smallest ε the search will try before giving up.
pub const MIN_EPSILON: f64 = 1e-12;

/// Runs the ε search. `train` maps an ε to `(accuracy, iterations)`;
/// timing is recorded around each call.
pub fn epsilon_search(mut train: impl FnMut(f64) -> (f64, usize)) -> ProtocolResult {
    let mut runs = Vec::new();
    let mut epsilon = 0.1;
    loop {
        let t0 = Instant::now();
        let (accuracy, iterations) = train(epsilon);
        let run = ProtocolRun {
            epsilon,
            accuracy,
            time: t0.elapsed(),
            iterations,
        };
        runs.push(run);
        if accuracy > TARGET_ACCURACY {
            return ProtocolResult {
                chosen: run,
                runs,
                reached_target: true,
            };
        }
        // accuracy converged in the first three decimals → non-separable
        if runs.len() >= 2 {
            let prev = runs[runs.len() - 2].accuracy;
            if (accuracy - prev).abs() < 5e-4 {
                return ProtocolResult {
                    chosen: run,
                    runs,
                    reached_target: false,
                };
            }
        }
        epsilon *= 0.1;
        if epsilon < MIN_EPSILON {
            return ProtocolResult {
                chosen: run,
                runs,
                reached_target: false,
            };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stops_at_target_accuracy() {
        // accuracy improves with tighter epsilon: 0.5, 0.9, 0.98
        let accs = [0.5, 0.9, 0.98, 1.0];
        let mut i = 0;
        let r = epsilon_search(|_| {
            let a = accs[i];
            i += 1;
            (a, 10 * i)
        });
        assert!(r.reached_target);
        assert_eq!(r.runs.len(), 3);
        assert_eq!(r.chosen.accuracy, 0.98);
        assert!((r.chosen.epsilon - 1e-3).abs() < 1e-15);
        assert_eq!(r.chosen.iterations, 30);
    }

    #[test]
    fn stops_on_three_digit_convergence() {
        // plateaus at 0.912 — never reaches 97 %
        let accs = [0.80, 0.90, 0.912, 0.9121, 0.95];
        let mut i = 0;
        let r = epsilon_search(|_| {
            let a = accs[i];
            i += 1;
            (a, 1)
        });
        assert!(!r.reached_target);
        assert_eq!(r.runs.len(), 4); // stops when 0.9121 ≈ 0.912
        assert!((r.chosen.accuracy - 0.9121).abs() < 1e-12);
    }

    #[test]
    fn gives_up_below_min_epsilon() {
        // oscillating accuracy never converging nor reaching target
        let mut flip = false;
        let r = epsilon_search(|_| {
            flip = !flip;
            (if flip { 0.5 } else { 0.6 }, 1)
        });
        assert!(!r.reached_target);
        assert!(r.chosen.epsilon >= MIN_EPSILON / 10.0);
        assert!(r.runs.len() >= 10);
    }

    #[test]
    fn epsilon_sequence_is_powers_of_ten() {
        let mut count = 0;
        let r = epsilon_search(|_| {
            count += 1;
            (if count >= 3 { 0.99 } else { 0.3 * count as f64 }, 1)
        });
        let eps: Vec<f64> = r.runs.iter().map(|r| r.epsilon).collect();
        assert!((eps[0] - 0.1).abs() < 1e-15);
        assert!((eps[1] - 0.01).abs() < 1e-15);
        assert!((eps[2] - 0.001).abs() < 1e-15);
    }
}
