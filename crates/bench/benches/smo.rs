//! The SMO baselines: LIBSVM-style (sparse and dense rows) and the
//! ThunderSVM-style batched solver vs the LS-SVM.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

use plssvm_core::svm::LsSvm;
use plssvm_data::synthetic::{generate_planes, PlanesConfig};
use plssvm_smo::{SmoConfig, ThunderConfig, ThunderSolver};

fn bench_solvers(c: &mut Criterion) {
    let mut group = c.benchmark_group("solver_comparison");
    group.sample_size(10);
    for &m in &[128usize, 512] {
        let data = generate_planes::<f64>(&PlanesConfig::new(m, 32, 5)).unwrap();
        group.bench_with_input(BenchmarkId::new("plssvm", m), &m, |bench, _| {
            let trainer = LsSvm::new().with_epsilon(1e-3);
            bench.iter(|| black_box(trainer.train(&data).unwrap().iterations))
        });
        group.bench_with_input(BenchmarkId::new("libsvm_sparse", m), &m, |bench, _| {
            bench.iter(|| {
                black_box(
                    plssvm_smo::solver::train_sparse(&data, &SmoConfig::default())
                        .unwrap()
                        .iterations,
                )
            })
        });
        group.bench_with_input(BenchmarkId::new("libsvm_dense", m), &m, |bench, _| {
            bench.iter(|| {
                black_box(
                    plssvm_smo::solver::train_dense(&data, &SmoConfig::default())
                        .unwrap()
                        .iterations,
                )
            })
        });
        group.bench_with_input(BenchmarkId::new("thundersvm", m), &m, |bench, _| {
            let solver = ThunderSolver::new(ThunderConfig {
                working_set_size: 64,
                ..Default::default()
            })
            .unwrap();
            bench.iter(|| black_box(solver.train(&data).unwrap().outer_iterations))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_solvers);
criterion_main!(benches);
