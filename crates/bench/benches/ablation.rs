//! Criterion versions of the §III-C design-choice ablations (see also
//! `figures ablation` for the annotated text report).

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use plssvm_core::backend::serial::SerialBackend;
use plssvm_core::kernel::{dot, kernel_soa};
use plssvm_data::dense::SoAMatrix;
use plssvm_data::model::KernelSpec;
use plssvm_data::synthetic::{generate_planes, PlanesConfig};

fn bench_ablations(c: &mut Criterion) {
    let m = 256usize;
    let d = 64usize;
    let data = generate_planes::<f64>(&PlanesConfig::new(m, d, 6)).unwrap();
    let soa = SoAMatrix::from_dense(&data.x, 64);
    let n = m - 1;
    let v: Vec<f64> = (0..n).map(|i| (i as f64 * 0.2).cos()).collect();
    let kernel = KernelSpec::Linear;
    let backend = SerialBackend::new(data.x.clone(), kernel, 1.0);
    let mut out = vec![0.0; n];

    let mut group = c.benchmark_group("ablation");
    group.sample_size(10);

    group.bench_function("q_cached_triangular", |b| {
        b.iter(|| {
            backend.kernel_matvec(black_box(&v), &mut out);
            black_box(out[0])
        })
    });

    group.bench_function("full_matrix_no_mirror", |b| {
        b.iter(|| {
            for (i, slot) in out.iter_mut().enumerate() {
                let mut acc = 0.0;
                for (j, &vj) in v.iter().enumerate() {
                    acc += kernel_soa(&kernel, &soa, i, j) * vj;
                }
                *slot = acc;
            }
            black_box(out[0])
        })
    });

    group.bench_function("layout_aos_row_major", |b| {
        b.iter(|| {
            for (i, slot) in out.iter_mut().enumerate() {
                let ri = data.x.row(i);
                let mut acc = 0.0;
                for (j, &vj) in v.iter().enumerate() {
                    acc += dot(ri, data.x.row(j)) * vj;
                }
                *slot = acc;
            }
            black_box(out[0])
        })
    });

    group.bench_function("factored_linear_xxtv", |b| {
        let mut w = vec![0.0; d];
        b.iter(|| {
            w.fill(0.0);
            for (f, wf) in w.iter_mut().enumerate() {
                let col = soa.feature_column(f);
                *wf = v.iter().zip(col).map(|(a, b)| a * b).sum();
            }
            for (i, slot) in out.iter_mut().enumerate() {
                *slot = w
                    .iter()
                    .enumerate()
                    .map(|(f, &wf)| soa.get(i, f) * wf)
                    .sum();
            }
            black_box(out[0])
        })
    });

    group.finish();
}

criterion_group!(benches, bench_ablations);
criterion_main!(benches);
