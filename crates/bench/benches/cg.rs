//! Full CG training solves (the paper's `cg` component) per backend and
//! per tolerance.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

use plssvm_core::backend::BackendSelection;
use plssvm_core::svm::LsSvm;
use plssvm_core::trace::Telemetry;
use plssvm_data::synthetic::{generate_planes, PlanesConfig};
use plssvm_simgpu::{hw, Backend as DeviceApi};

fn bench_cg_backends(c: &mut Criterion) {
    let mut group = c.benchmark_group("cg_solve");
    group.sample_size(10);
    let data = generate_planes::<f64>(&PlanesConfig::new(256, 32, 3)).unwrap();
    for (name, selection) in [
        ("serial", BackendSelection::Serial),
        ("openmp", BackendSelection::openmp(None)),
        (
            "simgpu_cuda",
            BackendSelection::sim_gpu(hw::A100, DeviceApi::Cuda),
        ),
    ] {
        group.bench_function(BenchmarkId::new("backend", name), |bench| {
            let trainer = LsSvm::new()
                .with_epsilon(1e-6)
                .with_backend(selection.clone());
            bench.iter(|| black_box(trainer.train(&data).unwrap().iterations))
        });
    }
    group.finish();
}

/// Telemetry must be pay-for-what-you-use: the disabled path adds one
/// branch per matvec and should stay within noise (<5 %) of the baseline;
/// the enabled path shows the full recording cost for comparison.
fn bench_cg_telemetry_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("cg_telemetry");
    group.sample_size(10);
    let data = generate_planes::<f64>(&PlanesConfig::new(256, 32, 5)).unwrap();
    group.bench_function("disabled", |bench| {
        let trainer = LsSvm::new().with_epsilon(1e-6);
        bench.iter(|| black_box(trainer.train(&data).unwrap().iterations))
    });
    group.bench_function("enabled", |bench| {
        bench.iter(|| {
            let trainer = LsSvm::new()
                .with_epsilon(1e-6)
                .with_metrics(Telemetry::shared());
            black_box(trainer.train(&data).unwrap().iterations)
        })
    });
    group.finish();
}

fn bench_cg_epsilon(c: &mut Criterion) {
    let mut group = c.benchmark_group("cg_epsilon");
    group.sample_size(10);
    let data = generate_planes::<f64>(&PlanesConfig::new(256, 32, 4)).unwrap();
    for exp in [2i32, 6, 10] {
        group.bench_function(BenchmarkId::new("eps", format!("1e-{exp}")), |bench| {
            let trainer = LsSvm::new().with_epsilon(10f64.powi(-exp));
            bench.iter(|| black_box(trainer.train(&data).unwrap().iterations))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_cg_backends,
    bench_cg_telemetry_overhead,
    bench_cg_epsilon
);
criterion_main!(benches);
