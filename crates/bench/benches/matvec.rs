//! The implicit `Q̃` matrix–vector product — the paper's hot kernel —
//! across all backends.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

use plssvm_core::backend::{BackendSelection, Prepared};
use plssvm_core::cg::LinOp;
use plssvm_data::dense::SoAMatrix;
use plssvm_data::model::KernelSpec;
use plssvm_data::synthetic::{generate_planes, PlanesConfig};
use plssvm_simgpu::{hw, Backend as DeviceApi};

fn kernel_name(k: &KernelSpec<f64>) -> &'static str {
    k.name()
}

fn bench_matvec(c: &mut Criterion) {
    let mut group = c.benchmark_group("q_tilde_matvec");
    group.sample_size(10);
    let m = 256usize;
    let d = 64usize;
    let data = generate_planes::<f64>(&PlanesConfig::new(m, d, 2)).unwrap();
    let soa = SoAMatrix::from_dense(&data.x, 64);
    let n = m - 1;
    let v: Vec<f64> = (0..n).map(|i| (i as f64 * 0.1).sin()).collect();

    for (name, selection) in [
        ("serial", BackendSelection::Serial),
        ("openmp", BackendSelection::openmp(None)),
        (
            "simgpu_cuda",
            BackendSelection::sim_gpu(hw::A100, DeviceApi::Cuda),
        ),
        (
            "simgpu_4dev",
            BackendSelection::sim_multi_gpu(hw::A100, DeviceApi::Cuda, 4),
        ),
    ] {
        for kernel in [KernelSpec::Linear, KernelSpec::Rbf { gamma: 0.1 }] {
            if matches!(kernel, KernelSpec::Rbf { .. }) && name == "simgpu_4dev" {
                continue; // multi-device is linear-only, as in the paper
            }
            let prepared = Prepared::new(&selection, &data.x, Some(&soa), &kernel, 1.0).unwrap();
            let mut out = vec![0.0; n];
            group.bench_with_input(
                BenchmarkId::new(format!("{name}/{}", kernel_name(&kernel)), m),
                &m,
                |bench, _| {
                    bench.iter(|| {
                        prepared.apply(black_box(&v), &mut out);
                        black_box(out[0])
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_matvec);
criterion_main!(benches);
