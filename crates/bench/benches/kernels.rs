//! Microbenchmarks of the three kernel functions (§II-E) over both
//! memory layouts.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

use plssvm_core::kernel::{kernel_row, kernel_soa};
use plssvm_data::dense::SoAMatrix;
use plssvm_data::model::KernelSpec;
use plssvm_data::synthetic::{generate_planes, PlanesConfig};

fn bench_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernel_eval");
    group.sample_size(20);
    for &d in &[64usize, 1024] {
        let data = generate_planes::<f64>(&PlanesConfig::new(4, d, 1)).unwrap();
        let soa = SoAMatrix::from_dense(&data.x, 1);
        let a = data.x.row(0).to_vec();
        let b = data.x.row(1).to_vec();
        for (name, kernel) in [
            ("linear", KernelSpec::Linear),
            (
                "polynomial",
                KernelSpec::Polynomial {
                    degree: 3,
                    gamma: 0.5,
                    coef0: 1.0,
                },
            ),
            ("rbf", KernelSpec::Rbf { gamma: 0.5 }),
        ] {
            group.bench_with_input(
                BenchmarkId::new(format!("{name}/row_major"), d),
                &d,
                |bench, _| bench.iter(|| kernel_row(&kernel, black_box(&a), black_box(&b))),
            );
            group.bench_with_input(
                BenchmarkId::new(format!("{name}/soa"), d),
                &d,
                |bench, _| bench.iter(|| kernel_soa(&kernel, black_box(&soa), 0, 1)),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_kernels);
criterion_main!(benches);
