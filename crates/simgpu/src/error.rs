//! Error type for device operations.

use std::fmt;

/// Errors produced by the simulated device.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimGpuError {
    /// A device allocation exceeded the remaining global memory.
    OutOfMemory {
        /// Bytes the allocation asked for.
        requested: usize,
        /// Bytes still free on the device.
        available: usize,
        /// Total device memory in bytes.
        capacity: usize,
    },
    /// A structurally invalid kernel launch (empty grid, zero block size…).
    InvalidLaunch(String),
    /// A host↔device transfer with mismatched buffer sizes.
    TransferSizeMismatch {
        /// Elements in the source.
        src: usize,
        /// Elements in the destination.
        dst: usize,
    },
    /// The device suffered an (injected) fail-stop fault and no longer
    /// accepts work. Permanent: every later launch fails the same way.
    DeviceFailed {
        /// Device ordinal within its context.
        device: usize,
        /// Launch-attempt index (since fault-plan install) that tripped.
        launch: u64,
    },
    /// A launch timed out due to an (injected) transient fault. Retrying
    /// the launch may succeed once the transient window has passed.
    TransientTimeout {
        /// Device ordinal within its context.
        device: usize,
        /// Launch-attempt index (since fault-plan install) that timed out.
        launch: u64,
    },
    /// A device-selection API was asked for a device that does not exist.
    DeviceIndexOutOfRange {
        /// Requested device ordinal.
        index: usize,
        /// Devices actually present in the context.
        count: usize,
    },
}

impl fmt::Display for SimGpuError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimGpuError::OutOfMemory {
                requested,
                available,
                capacity,
            } => write!(
                f,
                "device out of memory: requested {requested} B, {available} B of {capacity} B free"
            ),
            SimGpuError::InvalidLaunch(msg) => write!(f, "invalid kernel launch: {msg}"),
            SimGpuError::TransferSizeMismatch { src, dst } => {
                write!(
                    f,
                    "transfer size mismatch: {src} source vs {dst} destination elements"
                )
            }
            SimGpuError::DeviceFailed { device, launch } => {
                write!(f, "device {device} failed (fail-stop) at launch {launch}")
            }
            SimGpuError::TransientTimeout { device, launch } => {
                write!(
                    f,
                    "device {device} timed out (transient) at launch {launch}"
                )
            }
            SimGpuError::DeviceIndexOutOfRange { index, count } => {
                write!(
                    f,
                    "device index {index} out of range: context has {count} device(s)"
                )
            }
        }
    }
}

impl std::error::Error for SimGpuError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_contains_numbers() {
        let e = SimGpuError::OutOfMemory {
            requested: 100,
            available: 10,
            capacity: 50,
        };
        let s = e.to_string();
        assert!(s.contains("100") && s.contains("10") && s.contains("50"));
        assert!(SimGpuError::InvalidLaunch("x".into())
            .to_string()
            .contains('x'));
        let s = SimGpuError::TransferSizeMismatch { src: 1, dst: 2 }.to_string();
        assert!(s.contains('1') && s.contains('2'));
        let s = SimGpuError::DeviceFailed {
            device: 3,
            launch: 7,
        }
        .to_string();
        assert!(s.contains('3') && s.contains('7') && s.contains("fail-stop"));
        let s = SimGpuError::TransientTimeout {
            device: 2,
            launch: 9,
        }
        .to_string();
        assert!(s.contains('2') && s.contains('9') && s.contains("transient"));
        let s = SimGpuError::DeviceIndexOutOfRange { index: 5, count: 4 }.to_string();
        assert!(s.contains('5') && s.contains('4'));
    }
}
