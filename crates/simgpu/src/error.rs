//! Error type for device operations.

use std::fmt;

/// Errors produced by the simulated device.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimGpuError {
    /// A device allocation exceeded the remaining global memory.
    OutOfMemory {
        /// Bytes the allocation asked for.
        requested: usize,
        /// Bytes still free on the device.
        available: usize,
        /// Total device memory in bytes.
        capacity: usize,
    },
    /// A structurally invalid kernel launch (empty grid, zero block size…).
    InvalidLaunch(String),
    /// A host↔device transfer with mismatched buffer sizes.
    TransferSizeMismatch {
        /// Elements in the source.
        src: usize,
        /// Elements in the destination.
        dst: usize,
    },
}

impl fmt::Display for SimGpuError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimGpuError::OutOfMemory {
                requested,
                available,
                capacity,
            } => write!(
                f,
                "device out of memory: requested {requested} B, {available} B of {capacity} B free"
            ),
            SimGpuError::InvalidLaunch(msg) => write!(f, "invalid kernel launch: {msg}"),
            SimGpuError::TransferSizeMismatch { src, dst } => {
                write!(
                    f,
                    "transfer size mismatch: {src} source vs {dst} destination elements"
                )
            }
        }
    }
}

impl std::error::Error for SimGpuError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_contains_numbers() {
        let e = SimGpuError::OutOfMemory {
            requested: 100,
            available: 10,
            capacity: 50,
        };
        let s = e.to_string();
        assert!(s.contains("100") && s.contains("10") && s.contains("50"));
        assert!(SimGpuError::InvalidLaunch("x".into())
            .to_string()
            .contains('x'));
        let s = SimGpuError::TransferSizeMismatch { src: 1, dst: 2 }.to_string();
        assert!(s.contains('1') && s.contains('2'));
    }
}
