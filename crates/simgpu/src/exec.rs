//! The kernel launch engine.
//!
//! Kernels are written against the CUDA execution model (§III-C of the
//! paper): a launch spawns a 2D **grid** of thread blocks. In this
//! simulation one closure invocation corresponds to one *thread block*; the
//! `blocksize × blocksize` threads of a block (and their register-level
//! tiling) appear as loops inside the closure — which is also exactly how
//! the tiled algorithm is formulated in the paper. Blocks execute in
//! parallel on the host thread pool, mirroring how a GPU schedules blocks
//! independently.
//!
//! Kernels report the work they perform through [`KernelCtx`]; after all
//! blocks complete, the launch converts the tallies into simulated time via
//! the roofline model and files them under the kernel's name.

use std::sync::atomic::{AtomicU64, Ordering};

use rayon::prelude::*;

use crate::device::SimDevice;
use crate::error::SimGpuError;
use crate::hw::Precision;
use crate::perf::kernel_time_s;

/// The block layout of a kernel launch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Grid {
    /// Blocks along x.
    pub x: usize,
    /// Blocks along y.
    pub y: usize,
}

impl Grid {
    /// A 1D grid of `n` blocks.
    pub fn one_d(n: usize) -> Self {
        Self { x: n, y: 1 }
    }

    /// A 2D grid.
    pub fn two_d(x: usize, y: usize) -> Self {
        Self { x, y }
    }

    /// Total number of blocks.
    pub fn blocks(&self) -> usize {
        self.x * self.y
    }
}

/// Identity of one thread block inside the grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockId {
    /// Block index along x.
    pub x: usize,
    /// Block index along y.
    pub y: usize,
}

/// Launch parameters.
#[derive(Debug, Clone)]
pub struct LaunchConfig {
    /// Kernel name for the per-kernel counters (profiling view).
    pub name: &'static str,
    /// The grid to spawn.
    pub grid: Grid,
    /// Arithmetic precision, selecting the peak in the roofline.
    pub precision: Precision,
}

impl LaunchConfig {
    /// Convenience constructor.
    pub fn new(name: &'static str, grid: Grid, precision: Precision) -> Self {
        Self {
            name,
            grid,
            precision,
        }
    }
}

/// Work tally shared by all blocks of one launch.
///
/// Counts are batched per block (one atomic update per counter per block),
/// so the tally adds no meaningful contention.
#[derive(Debug, Default)]
pub struct KernelCtx {
    flops: AtomicU64,
    global_read_bytes: AtomicU64,
    global_write_bytes: AtomicU64,
}

impl KernelCtx {
    /// Records `n` floating point operations.
    #[inline]
    pub fn add_flops(&self, n: u64) {
        self.flops.fetch_add(n, Ordering::Relaxed);
    }

    /// Records `n` bytes read from global memory.
    #[inline]
    pub fn add_global_read(&self, n: u64) {
        self.global_read_bytes.fetch_add(n, Ordering::Relaxed);
    }

    /// Records `n` bytes written to global memory.
    #[inline]
    pub fn add_global_write(&self, n: u64) {
        self.global_write_bytes.fetch_add(n, Ordering::Relaxed);
    }
}

/// Totals of one completed launch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LaunchStats {
    /// Floating point operations executed.
    pub flops: u64,
    /// Global memory traffic in bytes (reads + writes).
    pub global_bytes: u64,
    /// Simulated execution time in seconds.
    pub sim_time_s: f64,
}

impl SimDevice {
    /// Launches a kernel: runs `kernel` once per block (in parallel),
    /// tallies the reported work and records simulated time.
    pub fn launch<F>(&self, cfg: &LaunchConfig, kernel: F) -> Result<LaunchStats, SimGpuError>
    where
        F: Fn(BlockId, &KernelCtx) + Sync,
    {
        if cfg.grid.blocks() == 0 {
            return Err(SimGpuError::InvalidLaunch(format!(
                "kernel '{}' launched with an empty grid",
                cfg.name
            )));
        }
        // Injected-fault gate: fail-stop/transient faults abort the launch
        // before any work runs; slow-device faults stretch simulated time.
        let slowdown = self.state.fault_check(self.id())?;
        let ctx = KernelCtx::default();
        let grid = cfg.grid;
        (0..grid.blocks()).into_par_iter().for_each(|i| {
            let id = BlockId {
                x: i % grid.x,
                y: i / grid.x,
            };
            kernel(id, &ctx);
        });

        let flops = ctx.flops.load(Ordering::Relaxed);
        let global_bytes = ctx.global_read_bytes.load(Ordering::Relaxed)
            + ctx.global_write_bytes.load(Ordering::Relaxed);
        let sim_time_s = kernel_time_s(
            &self.state.spec,
            &self.state.profile,
            cfg.precision,
            flops,
            global_bytes,
        ) * slowdown;
        self.state
            .perf
            .lock()
            .record_launch(cfg.name, flops, global_bytes, sim_time_s);
        Ok(LaunchStats {
            flops,
            global_bytes,
            sim_time_s,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hw::{Backend, A100};

    fn device() -> SimDevice {
        SimDevice::new(A100, Backend::Cuda)
    }

    #[test]
    fn grid_helpers() {
        assert_eq!(Grid::one_d(5), Grid { x: 5, y: 1 });
        assert_eq!(Grid::two_d(3, 4).blocks(), 12);
    }

    #[test]
    fn empty_grid_rejected() {
        let dev = device();
        let cfg = LaunchConfig::new("noop", Grid::two_d(0, 3), Precision::F64);
        assert!(matches!(
            dev.launch(&cfg, |_, _| {}),
            Err(SimGpuError::InvalidLaunch(_))
        ));
    }

    #[test]
    fn every_block_runs_exactly_once() {
        let dev = device();
        let grid = Grid::two_d(7, 5);
        let seen = dev.alloc_atomic::<f64>(grid.blocks()).unwrap();
        let cfg = LaunchConfig::new("count", grid, Precision::F64);
        dev.launch(&cfg, |blk, _| {
            assert!(blk.x < 7 && blk.y < 5);
            seen.add(blk.y * 7 + blk.x, 1.0);
        })
        .unwrap();
        assert!(seen.read_to_host().iter().all(|&v| v == 1.0));
    }

    #[test]
    fn tallies_sum_over_blocks() {
        let dev = device();
        let cfg = LaunchConfig::new("tally", Grid::one_d(10), Precision::F64);
        let stats = dev
            .launch(&cfg, |_, ctx| {
                ctx.add_flops(100);
                ctx.add_global_read(8);
                ctx.add_global_write(4);
            })
            .unwrap();
        assert_eq!(stats.flops, 1000);
        assert_eq!(stats.global_bytes, 120);
        assert!(stats.sim_time_s > 0.0);
    }

    #[test]
    fn launches_recorded_per_kernel() {
        let dev = device();
        let cfg_a = LaunchConfig::new("a", Grid::one_d(1), Precision::F64);
        let cfg_b = LaunchConfig::new("b", Grid::one_d(1), Precision::F64);
        dev.launch(&cfg_a, |_, ctx| ctx.add_flops(5)).unwrap();
        dev.launch(&cfg_a, |_, ctx| ctx.add_flops(5)).unwrap();
        dev.launch(&cfg_b, |_, _| {}).unwrap();
        let r = dev.perf_report();
        assert_eq!(r.kernel_launches, 3);
        assert_eq!(r.per_kernel["a"].launches, 2);
        assert_eq!(r.per_kernel["a"].flops, 10);
        assert_eq!(r.per_kernel["b"].launches, 1);
        assert_eq!(r.total_flops, 10);
    }

    #[test]
    fn sim_time_uses_roofline() {
        let dev = device();
        // Compute-bound: 9.7e12 flops at 32 % of 9.7 TFLOP/s → 3.125 s
        let cfg = LaunchConfig::new("compute", Grid::one_d(1), Precision::F64);
        let stats = dev
            .launch(&cfg, |_, ctx| ctx.add_flops(9_700_000_000_000))
            .unwrap();
        assert!((stats.sim_time_s - 1.0 / 0.32).abs() < 1e-3);
    }

    #[test]
    fn injected_faults_gate_launches() {
        use crate::fault::FaultPlan;
        let dev = device();
        dev.install_fault_plan(&FaultPlan::new().transient(0, 1, 1).slow(0, 2, 3.0));
        let cfg = LaunchConfig::new("faulty", Grid::one_d(1), Precision::F64);
        // attempt 0: nominal
        let base = dev.launch(&cfg, |_, c| c.add_flops(1_000_000_000)).unwrap();
        // attempt 1: transient timeout, no work recorded
        assert!(matches!(
            dev.launch(&cfg, |_, _| {}),
            Err(SimGpuError::TransientTimeout {
                device: 0,
                launch: 1
            })
        ));
        // attempt 2: succeeds again, but 3x slower
        let slowed = dev.launch(&cfg, |_, c| c.add_flops(1_000_000_000)).unwrap();
        assert!((slowed.sim_time_s - 3.0 * base.sim_time_s).abs() < 1e-12 * base.sim_time_s);
        assert_eq!(dev.fault_attempts(), 3);
        assert_eq!(dev.perf_report().kernel_launches, 2);
        dev.clear_faults();
        assert_eq!(dev.fault_attempts(), 0);
    }

    #[test]
    fn fail_stop_is_permanent_at_launch_level() {
        use crate::fault::FaultPlan;
        let dev = device();
        dev.install_fault_plan(&FaultPlan::new().fail_stop(0, 0));
        let cfg = LaunchConfig::new("dead", Grid::one_d(1), Precision::F64);
        for _ in 0..3 {
            assert!(matches!(
                dev.launch(&cfg, |_, _| {}),
                Err(SimGpuError::DeviceFailed { device: 0, .. })
            ));
        }
        assert!(dev.has_failed());
        assert_eq!(dev.perf_report().kernel_launches, 0);
    }

    #[test]
    fn kernel_can_use_device_buffers() {
        let dev = device();
        let input = dev
            .copy_to_device(&(0..64).map(|i| i as f64).collect::<Vec<_>>())
            .unwrap();
        let output = dev.alloc_atomic::<f64>(1).unwrap();
        let cfg = LaunchConfig::new("reduce", Grid::one_d(8), Precision::F64);
        // each block sums its 8-element tile
        dev.launch(&cfg, |blk, ctx| {
            let tile = &input.as_slice()[blk.x * 8..(blk.x + 1) * 8];
            let s: f64 = tile.iter().sum();
            output.add(0, s);
            ctx.add_flops(8);
            ctx.add_global_read(8 * 8);
        })
        .unwrap();
        assert_eq!(output.get(0), (0..64).sum::<i64>() as f64);
    }
}
