//! Performance counters and the roofline timing model.
//!
//! Every kernel launch and transfer on a [`crate::SimDevice`] is accounted
//! here. The counters are exact (derived from the executed code), the
//! *simulated time* is a roofline estimate:
//!
//! ```text
//! t_kernel   = launch_overhead + max(flops / (peak_flops · eff_c),
//!                                    bytes / (bandwidth · eff_b))
//! t_transfer = link_latency + bytes / link_bandwidth
//! ```
//!
//! This is what lets the repository regenerate the *shape* of the paper's
//! GPU results (Table I, Fig. 1c/1d, Fig. 4b) without GPU silicon: the
//! counted work is identical to what the real kernels would do, and the
//! peaks come from the hardware catalog in [`crate::hw`].

use std::collections::BTreeMap;

use crate::hw::{BackendProfile, GpuSpec, Precision};

/// Counters aggregated for one kernel name.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct KernelStats {
    /// Number of launches of this kernel.
    pub launches: u64,
    /// Floating point operations across all launches.
    pub flops: u128,
    /// Global memory traffic (read + write) in bytes across all launches.
    pub global_bytes: u128,
    /// Accumulated simulated execution time in seconds.
    pub sim_time_s: f64,
}

impl KernelStats {
    /// Achieved arithmetic throughput in FLOP/s (0 if no time elapsed).
    pub fn achieved_flops(&self) -> f64 {
        if self.sim_time_s > 0.0 {
            self.flops as f64 / self.sim_time_s
        } else {
            0.0
        }
    }
}

/// Mutable counter state owned by a device (behind a lock).
#[derive(Debug, Default)]
pub(crate) struct PerfCounters {
    pub kernel_launches: u64,
    pub total_flops: u128,
    pub global_bytes: u128,
    pub h2d_bytes: u128,
    pub d2h_bytes: u128,
    pub sim_compute_time_s: f64,
    pub sim_transfer_time_s: f64,
    pub per_kernel: BTreeMap<String, KernelStats>,
}

impl PerfCounters {
    pub(crate) fn record_launch(
        &mut self,
        name: &str,
        flops: u64,
        global_bytes: u64,
        sim_time_s: f64,
    ) {
        self.kernel_launches += 1;
        self.total_flops += u128::from(flops);
        self.global_bytes += u128::from(global_bytes);
        self.sim_compute_time_s += sim_time_s;
        let entry = self.per_kernel.entry(name.to_owned()).or_default();
        entry.launches += 1;
        entry.flops += u128::from(flops);
        entry.global_bytes += u128::from(global_bytes);
        entry.sim_time_s += sim_time_s;
    }

    pub(crate) fn record_transfer(&mut self, to_device: bool, bytes: u64, sim_time_s: f64) {
        if to_device {
            self.h2d_bytes += u128::from(bytes);
        } else {
            self.d2h_bytes += u128::from(bytes);
        }
        self.sim_transfer_time_s += sim_time_s;
    }
}

/// Immutable snapshot of a device's counters.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PerfReport {
    /// Total kernel launches on the device.
    pub kernel_launches: u64,
    /// Total FLOPs executed by kernels.
    pub total_flops: u128,
    /// Total global memory traffic of kernels in bytes.
    pub global_bytes: u128,
    /// Host→device transferred bytes.
    pub h2d_bytes: u128,
    /// Device→host transferred bytes.
    pub d2h_bytes: u128,
    /// Simulated seconds spent in kernels.
    pub sim_compute_time_s: f64,
    /// Simulated seconds spent in transfers.
    pub sim_transfer_time_s: f64,
    /// Currently allocated device memory in bytes.
    pub allocated_bytes: usize,
    /// High-water mark of allocated device memory in bytes.
    pub peak_allocated_bytes: usize,
    /// Per-kernel breakdown, keyed by kernel name.
    pub per_kernel: BTreeMap<String, KernelStats>,
}

impl PerfReport {
    /// Simulated seconds of device activity (kernels + transfers).
    pub fn sim_total_time_s(&self) -> f64 {
        self.sim_compute_time_s + self.sim_transfer_time_s
    }

    /// Fraction of the device's peak the named kernel achieved.
    pub fn peak_fraction(&self, kernel: &str, spec: &GpuSpec, precision: Precision) -> f64 {
        self.per_kernel
            .get(kernel)
            .map(|k| k.achieved_flops() / spec.peak_flops(precision))
            .unwrap_or(0.0)
    }

    /// Peak allocated memory in GiB (the unit of the paper's Fig. 4b text).
    pub fn peak_allocated_gib(&self) -> f64 {
        self.peak_allocated_bytes as f64 / (1u64 << 30) as f64
    }
}

/// Roofline estimate for one kernel launch, in seconds. Public so that
/// analytic work models (the paper-scale experiment harness) can price
/// predicted work with exactly the same formula the executed kernels use.
pub fn kernel_time_s(
    spec: &GpuSpec,
    profile: &BackendProfile,
    precision: Precision,
    flops: u64,
    global_bytes: u64,
) -> f64 {
    let compute = flops as f64 / (spec.peak_flops(precision) * profile.compute_efficiency);
    let memory =
        global_bytes as f64 / (spec.mem_bandwidth_gbs * 1e9 * profile.bandwidth_efficiency);
    let overhead = spec.launch_overhead_us * profile.launch_overhead_factor * 1e-6;
    overhead + compute.max(memory)
}

/// Link latency for one host↔device transfer (fixed PCIe round trip cost).
pub const TRANSFER_LATENCY_S: f64 = 10e-6;

/// Roofline estimate for one host↔device transfer, in seconds.
pub fn transfer_time_s(spec: &GpuSpec, bytes: u64) -> f64 {
    TRANSFER_LATENCY_S + bytes as f64 / (spec.link_bandwidth_gbs * 1e9)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hw::{backend_profile, Backend, A100};

    #[test]
    fn roofline_compute_bound() {
        let profile = backend_profile(Backend::Cuda, &A100);
        // 9.7e12 flops at 32 % efficiency → ~1/0.32 s, far above memory time
        let t = kernel_time_s(&A100, &profile, Precision::F64, 9_700_000_000_000, 8);
        assert!((t - 1.0 / 0.32).abs() < 1e-3, "t = {t}");
    }

    #[test]
    fn roofline_memory_bound() {
        let profile = backend_profile(Backend::Cuda, &A100);
        // 1555 GB at 80 % efficiency → 1/0.8 s
        let t = kernel_time_s(&A100, &profile, Precision::F64, 8, 1_555_000_000_000);
        assert!((t - 1.0 / 0.8).abs() < 1e-3, "t = {t}");
    }

    #[test]
    fn launch_overhead_floors_empty_kernels() {
        let profile = backend_profile(Backend::Cuda, &A100);
        let t = kernel_time_s(&A100, &profile, Precision::F64, 0, 0);
        assert!((t - 6e-6).abs() < 1e-12);
    }

    #[test]
    fn transfer_time_includes_latency() {
        let t = transfer_time_s(&A100, 0);
        assert_eq!(t, TRANSFER_LATENCY_S);
        let t = transfer_time_s(&A100, 25_000_000_000);
        assert!((t - (1.0 + TRANSFER_LATENCY_S)).abs() < 1e-9);
    }

    #[test]
    fn counters_accumulate_per_kernel() {
        let mut c = PerfCounters::default();
        c.record_launch("matvec", 100, 10, 0.5);
        c.record_launch("matvec", 100, 10, 0.5);
        c.record_launch("q", 7, 3, 0.25);
        assert_eq!(c.kernel_launches, 3);
        assert_eq!(c.total_flops, 207);
        assert_eq!(c.global_bytes, 23);
        let k = &c.per_kernel["matvec"];
        assert_eq!(k.launches, 2);
        assert_eq!(k.flops, 200);
        assert_eq!(k.achieved_flops(), 200.0);
    }

    #[test]
    fn transfers_tracked_by_direction() {
        let mut c = PerfCounters::default();
        c.record_transfer(true, 100, 0.1);
        c.record_transfer(false, 50, 0.2);
        assert_eq!(c.h2d_bytes, 100);
        assert_eq!(c.d2h_bytes, 50);
        assert!((c.sim_transfer_time_s - 0.3).abs() < 1e-12);
    }

    #[test]
    fn report_helpers() {
        let mut per_kernel = BTreeMap::new();
        per_kernel.insert(
            "matvec".to_owned(),
            KernelStats {
                launches: 1,
                flops: (3.104e12) as u128,
                global_bytes: 0,
                sim_time_s: 1.0,
            },
        );
        let r = PerfReport {
            sim_compute_time_s: 1.0,
            sim_transfer_time_s: 0.5,
            peak_allocated_bytes: 1 << 30,
            per_kernel,
            ..Default::default()
        };
        assert_eq!(r.sim_total_time_s(), 1.5);
        assert_eq!(r.peak_allocated_gib(), 1.0);
        // 3.104 TFLOP/s on a 9.7 TFLOP/s device = 32 % of peak (the paper's
        // reported kernel efficiency)
        let frac = r.peak_fraction("matvec", &A100, Precision::F64);
        assert!((frac - 0.32).abs() < 1e-6, "frac = {frac}");
        assert_eq!(r.peak_fraction("nope", &A100, Precision::F64), 0.0);
    }
}
