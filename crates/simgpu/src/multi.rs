//! Multi-device contexts (§III-C-5).
//!
//! The paper distributes the linear-kernel computation across up to four
//! GPUs by splitting every data point *feature-wise*; the partial result
//! vectors of the devices are then summed on the host. A
//! [`MultiDeviceContext`] owns the simulated devices of one such system
//! (homogeneous, like the quad-A100 node of §IV-A) and aggregates their
//! counters.
//!
//! Because the real devices run concurrently, the simulated wall-clock of a
//! multi-device phase is the **maximum** over the devices' accumulated
//! times, not the sum — [`MultiDeviceContext::sim_parallel_time_s`].

use crate::device::SimDevice;
use crate::error::SimGpuError;
use crate::fault::FaultPlan;
use crate::hw::{Backend, GpuSpec};
use crate::perf::PerfReport;

/// A homogeneous group of simulated devices.
pub struct MultiDeviceContext {
    devices: Vec<SimDevice>,
}

impl MultiDeviceContext {
    /// Creates `n` devices of the given hardware type and backend.
    ///
    /// # Panics
    /// Panics if `n == 0` or the backend cannot drive the hardware.
    pub fn new(spec: GpuSpec, backend: Backend, n: usize) -> Self {
        assert!(n >= 1, "need at least one device");
        Self {
            devices: (0..n)
                .map(|id| SimDevice::with_id(spec.clone(), backend, id))
                .collect(),
        }
    }

    /// Number of devices in the context.
    pub fn len(&self) -> usize {
        self.devices.len()
    }

    /// True if the context holds no devices (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.devices.is_empty()
    }

    /// The devices.
    pub fn devices(&self) -> &[SimDevice] {
        &self.devices
    }

    /// Device `i`, or [`SimGpuError::DeviceIndexOutOfRange`] if the context
    /// has no such device (no panicking index path).
    pub fn device(&self, i: usize) -> Result<&SimDevice, SimGpuError> {
        self.devices
            .get(i)
            .ok_or(SimGpuError::DeviceIndexOutOfRange {
                index: i,
                count: self.devices.len(),
            })
    }

    /// Installs `plan` on every device of the context (each device keeps
    /// only the events addressed to its ordinal) and arms the per-device
    /// launch-attempt counters. Fails without installing anything if the
    /// plan addresses a device the context does not have.
    pub fn install_fault_plan(&self, plan: &FaultPlan) -> Result<(), SimGpuError> {
        if let Some(max) = plan.max_device() {
            if max >= self.devices.len() {
                return Err(SimGpuError::DeviceIndexOutOfRange {
                    index: max,
                    count: self.devices.len(),
                });
            }
        }
        for d in &self.devices {
            d.install_fault_plan(plan);
        }
        Ok(())
    }

    /// Removes fault plans from every device.
    pub fn clear_faults(&self) {
        for d in &self.devices {
            d.clear_faults();
        }
    }

    /// Per-device performance snapshots.
    pub fn reports(&self) -> Vec<PerfReport> {
        self.devices.iter().map(|d| d.perf_report()).collect()
    }

    /// Simulated wall-clock of the context assuming all devices ran their
    /// recorded work concurrently (kernels + transfers): the slowest device
    /// determines the elapsed time.
    pub fn sim_parallel_time_s(&self) -> f64 {
        self.devices
            .iter()
            .map(|d| d.perf_report().sim_total_time_s())
            .fold(0.0, f64::max)
    }

    /// Largest per-device peak memory, in bytes (the paper reports
    /// "memory used per GPU" in Fig. 4b's discussion).
    pub fn peak_memory_per_device_bytes(&self) -> usize {
        self.devices
            .iter()
            .map(|d| d.peak_allocated_bytes())
            .max()
            .unwrap_or(0)
    }

    /// Resets the performance counters of every device.
    pub fn reset_perf(&self) {
        for d in &self.devices {
            d.reset_perf();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::{Grid, LaunchConfig};
    use crate::hw::{Precision, A100};

    #[test]
    fn creates_n_devices_with_ids() {
        let ctx = MultiDeviceContext::new(A100, Backend::Cuda, 4);
        assert_eq!(ctx.len(), 4);
        assert!(!ctx.is_empty());
        for (i, d) in ctx.devices().iter().enumerate() {
            assert_eq!(d.id(), i);
        }
    }

    #[test]
    #[should_panic(expected = "at least one device")]
    fn zero_devices_panics() {
        let _ = MultiDeviceContext::new(A100, Backend::Cuda, 0);
    }

    #[test]
    fn devices_have_independent_memory() {
        let ctx = MultiDeviceContext::new(A100, Backend::Cuda, 2);
        let _buf = ctx.device(0).unwrap().alloc::<f64>(100).unwrap();
        assert_eq!(ctx.device(0).unwrap().allocated_bytes(), 800);
        assert_eq!(ctx.device(1).unwrap().allocated_bytes(), 0);
        assert_eq!(ctx.peak_memory_per_device_bytes(), 800);
    }

    #[test]
    fn parallel_time_is_max_not_sum() {
        let ctx = MultiDeviceContext::new(A100, Backend::Cuda, 2);
        let cfg = LaunchConfig::new("work", Grid::one_d(1), Precision::F64);
        // device 0 does twice the work of device 1
        ctx.device(0)
            .unwrap()
            .launch(&cfg, |_, c| c.add_flops(2_000_000_000_000))
            .unwrap();
        ctx.device(1)
            .unwrap()
            .launch(&cfg, |_, c| c.add_flops(1_000_000_000_000))
            .unwrap();
        let t0 = ctx.device(0).unwrap().perf_report().sim_total_time_s();
        let t1 = ctx.device(1).unwrap().perf_report().sim_total_time_s();
        assert!(t0 > t1);
        assert_eq!(ctx.sim_parallel_time_s(), t0);
    }

    #[test]
    fn out_of_range_device_is_an_error_not_a_panic() {
        let ctx = MultiDeviceContext::new(A100, Backend::Cuda, 2);
        assert!(ctx.device(1).is_ok());
        assert_eq!(
            ctx.device(2).unwrap_err(),
            crate::SimGpuError::DeviceIndexOutOfRange { index: 2, count: 2 }
        );
        assert_eq!(
            ctx.device(usize::MAX).unwrap_err(),
            crate::SimGpuError::DeviceIndexOutOfRange {
                index: usize::MAX,
                count: 2
            }
        );
    }

    #[test]
    fn fault_plan_installs_on_matching_devices_only() {
        use crate::fault::FaultPlan;
        let ctx = MultiDeviceContext::new(A100, Backend::Cuda, 2);
        ctx.install_fault_plan(&FaultPlan::new().fail_stop(1, 0))
            .unwrap();
        let cfg = LaunchConfig::new("w", Grid::one_d(1), Precision::F64);
        assert!(ctx.device(0).unwrap().launch(&cfg, |_, _| {}).is_ok());
        assert!(matches!(
            ctx.device(1).unwrap().launch(&cfg, |_, _| {}),
            Err(crate::SimGpuError::DeviceFailed { device: 1, .. })
        ));
        ctx.clear_faults();
        assert!(ctx.device(1).unwrap().launch(&cfg, |_, _| {}).is_ok());
    }

    #[test]
    fn fault_plan_addressing_missing_device_is_rejected() {
        use crate::fault::FaultPlan;
        let ctx = MultiDeviceContext::new(A100, Backend::Cuda, 2);
        let err = ctx
            .install_fault_plan(&FaultPlan::new().fail_stop(5, 0))
            .unwrap_err();
        assert_eq!(
            err,
            crate::SimGpuError::DeviceIndexOutOfRange { index: 5, count: 2 }
        );
        // nothing was installed
        assert_eq!(ctx.device(0).unwrap().fault_attempts(), 0);
    }

    #[test]
    fn reset_clears_all_devices() {
        let ctx = MultiDeviceContext::new(A100, Backend::Cuda, 2);
        let cfg = LaunchConfig::new("w", Grid::one_d(1), Precision::F64);
        for d in ctx.devices() {
            d.launch(&cfg, |_, c| c.add_flops(10)).unwrap();
        }
        ctx.reset_perf();
        assert!(ctx.reports().iter().all(|r| r.kernel_launches == 0));
        assert_eq!(ctx.sim_parallel_time_s(), 0.0);
    }
}
