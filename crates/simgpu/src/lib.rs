//! A simulated GPGPU device substrate.
//!
//! The PLSSVM paper runs its solver on real GPUs through four backends
//! (OpenMP, CUDA, OpenCL, SYCL). This environment has no GPU, so this crate
//! provides the substitution described in `DESIGN.md`: a **software device**
//! that
//!
//! 1. executes kernels written against the CUDA execution model — a grid of
//!    thread blocks with per-block shared memory — on host threads
//!    ([`exec`]),
//! 2. accounts device **global memory** exactly (allocation, peak usage,
//!    out-of-memory failures — needed for the paper's Fig. 4b memory
//!    numbers) ([`device`]),
//! 3. counts the work kernels perform — FLOPs, global-memory traffic,
//!    kernel launches, host↔device transfers ([`perf`]), and
//! 4. converts counted work into **simulated wall-clock time** with a
//!    roofline model over a catalog of real hardware specifications
//!    ([`hw`]), so the paper's cross-hardware tables keep their shape.
//!
//! Functional results are computed exactly (the kernels really run); only
//! the *time* is modeled.
//!
//! Because the devices are simulated, failure scenarios real hardware
//! cannot reproduce deterministically become first-class test fixtures:
//! [`fault`] schedules fail-stop, transient-timeout and slow-device faults
//! at exact launch indices.

#![warn(missing_docs)]

pub mod cluster;
pub mod device;
pub mod error;
pub mod exec;
pub mod fault;
pub mod hw;
pub mod multi;
pub mod perf;

pub use cluster::{ClusterContext, Interconnect, NodeConfig};
pub use device::{AtomicBuffer, DeviceBuffer, SimDevice};
pub use error::SimGpuError;
pub use exec::{BlockId, Grid, KernelCtx, LaunchConfig};
pub use fault::{FaultEvent, FaultKind, FaultPlan};
pub use hw::{backend_profile, Backend, BackendProfile, GpuSpec, Precision};
pub use multi::MultiDeviceContext;
pub use perf::{KernelStats, PerfReport};
