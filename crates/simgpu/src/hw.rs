//! Hardware catalog and backend performance profiles.
//!
//! The paper evaluates the same kernels on seven accelerators (Table I and
//! §IV-A) through up to three device backends. The simulated device cannot
//! reproduce absolute silicon behaviour, so we use each card's *published*
//! peak arithmetic throughput and memory bandwidth in a roofline model,
//! combined with per-backend efficiency factors fitted to the paper's own
//! measurements (e.g. the CUDA matvec kernel reaching 32 % of FP64 peak on
//! the A100, hipSYCL being >3× slower on pre-Volta NVIDIA GPUs, DPC++
//! being ~2× slower than OpenCL on the Intel iGPU).

/// Floating point precision of a kernel, selecting which peak applies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Precision {
    /// 32-bit IEEE-754 (`float`).
    F32,
    /// 64-bit IEEE-754 (`double`) — all paper measurements use this.
    F64,
}

/// Published specifications of one accelerator.
#[derive(Debug, Clone, PartialEq)]
pub struct GpuSpec {
    /// Marketing name, as printed in the paper's tables.
    pub name: &'static str,
    /// Peak FP64 throughput in TFLOP/s.
    pub fp64_tflops: f64,
    /// Peak FP32 throughput in TFLOP/s.
    pub fp32_tflops: f64,
    /// Peak global-memory bandwidth in GB/s.
    pub mem_bandwidth_gbs: f64,
    /// Global memory capacity in GiB.
    pub memory_gib: f64,
    /// Host↔device interconnect bandwidth in GB/s (PCIe for all catalog
    /// entries — the paper explicitly does not use NVLink).
    pub link_bandwidth_gbs: f64,
    /// Fixed overhead per kernel launch in microseconds.
    pub launch_overhead_us: f64,
    /// CUDA compute capability (0.0 for non-NVIDIA devices). Used for the
    /// paper's observation that hipSYCL maps poorly to capability < 7.0.
    pub compute_capability: f64,
}

impl GpuSpec {
    /// Peak throughput for the given precision, in FLOP/s.
    pub fn peak_flops(&self, precision: Precision) -> f64 {
        match precision {
            Precision::F32 => self.fp32_tflops * 1e12,
            Precision::F64 => self.fp64_tflops * 1e12,
        }
    }

    /// Global memory capacity in bytes.
    pub fn memory_bytes(&self) -> usize {
        (self.memory_gib * (1u64 << 30) as f64) as usize
    }
}

/// NVIDIA A100 (SXM4 40 GB) — the paper's main GPU (§IV-A).
pub const A100: GpuSpec = GpuSpec {
    name: "NVIDIA A100",
    fp64_tflops: 9.7,
    fp32_tflops: 19.5,
    mem_bandwidth_gbs: 1555.0,
    memory_gib: 40.0,
    link_bandwidth_gbs: 25.0,
    launch_overhead_us: 6.0,
    compute_capability: 8.0,
};

/// NVIDIA V100 (16 GB PCIe).
pub const V100: GpuSpec = GpuSpec {
    name: "NVIDIA V100",
    fp64_tflops: 7.0,
    fp32_tflops: 14.0,
    mem_bandwidth_gbs: 900.0,
    memory_gib: 16.0,
    link_bandwidth_gbs: 14.0,
    launch_overhead_us: 7.0,
    compute_capability: 7.0,
};

/// NVIDIA P100 (16 GB PCIe).
pub const P100: GpuSpec = GpuSpec {
    name: "NVIDIA P100",
    fp64_tflops: 4.7,
    fp32_tflops: 9.3,
    mem_bandwidth_gbs: 732.0,
    memory_gib: 16.0,
    link_bandwidth_gbs: 14.0,
    launch_overhead_us: 8.0,
    compute_capability: 6.0,
};

/// NVIDIA GeForce GTX 1080 Ti — consumer card, FP64 at 1/32 of FP32.
pub const GTX_1080_TI: GpuSpec = GpuSpec {
    name: "NVIDIA GTX 1080 Ti",
    fp64_tflops: 0.354,
    fp32_tflops: 11.3,
    mem_bandwidth_gbs: 484.0,
    memory_gib: 11.0,
    link_bandwidth_gbs: 12.0,
    launch_overhead_us: 8.0,
    compute_capability: 6.1,
};

/// NVIDIA GeForce RTX 3080 — consumer card, FP64 at 1/64 of FP32.
pub const RTX_3080: GpuSpec = GpuSpec {
    name: "NVIDIA RTX 3080",
    fp64_tflops: 0.465,
    fp32_tflops: 29.8,
    mem_bandwidth_gbs: 760.0,
    memory_gib: 10.0,
    link_bandwidth_gbs: 25.0,
    launch_overhead_us: 6.0,
    compute_capability: 8.6,
};

/// AMD Radeon VII — strong FP64 for a consumer card (1/4 of FP32).
pub const RADEON_VII: GpuSpec = GpuSpec {
    name: "AMD Radeon VII",
    fp64_tflops: 3.36,
    fp32_tflops: 13.44,
    mem_bandwidth_gbs: 1024.0,
    memory_gib: 16.0,
    link_bandwidth_gbs: 14.0,
    launch_overhead_us: 10.0,
    compute_capability: 0.0,
};

/// Intel UHD Graphics P630 (Gen9 iGPU) — shares DDR4 with the host.
pub const INTEL_P630: GpuSpec = GpuSpec {
    name: "Intel UHD Graphics Gen9 P630",
    fp64_tflops: 0.1152, // 24 EU × 2 FLOP × 8 SIMD(FP32)/2 × 1.2 GHz / 2
    fp32_tflops: 0.4608,
    mem_bandwidth_gbs: 41.6,
    memory_gib: 8.0,
    link_bandwidth_gbs: 20.0, // shared memory, effectively a memcpy
    launch_overhead_us: 15.0,
    compute_capability: 0.0,
};

/// All catalog GPUs in the order Table I lists them.
pub const TABLE1_GPUS: &[&GpuSpec] = &[
    &GTX_1080_TI,
    &RTX_3080,
    &P100,
    &V100,
    &RADEON_VII,
    &INTEL_P630,
];

/// The device backend whose execution characteristics are being simulated.
///
/// These are the paper's four device backends; `OpenMp` is handled by the
/// real CPU implementation in `plssvm-core` and never reaches this crate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Backend {
    /// NVIDIA CUDA.
    Cuda,
    /// Khronos OpenCL.
    OpenCl,
    /// SYCL via hipSYCL (NVIDIA and AMD targets in the paper).
    SyclHip,
    /// SYCL via Intel DPC++ (the Intel iGPU target in the paper).
    SyclDpcpp,
}

impl Backend {
    /// Backend name as printed in reports.
    pub fn name(&self) -> &'static str {
        match self {
            Backend::Cuda => "CUDA",
            Backend::OpenCl => "OpenCL",
            Backend::SyclHip => "SYCL (hipSYCL)",
            Backend::SyclDpcpp => "SYCL (DPC++)",
        }
    }

    /// Whether this backend can drive the given device at all (CUDA is
    /// NVIDIA-only; everything else is portable). Mirrors the `—` entries
    /// of Table I.
    pub fn supports(&self, spec: &GpuSpec) -> bool {
        match self {
            Backend::Cuda => spec.compute_capability > 0.0,
            _ => true,
        }
    }
}

/// Efficiency factors applied on top of the hardware roofline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BackendProfile {
    /// Fraction of peak arithmetic throughput the tuned implicit-matvec
    /// kernel achieves through this backend.
    pub compute_efficiency: f64,
    /// Fraction of peak memory bandwidth achieved.
    pub bandwidth_efficiency: f64,
    /// Multiplier on the device's kernel launch overhead (runtime stacks
    /// differ in dispatch cost).
    pub launch_overhead_factor: f64,
}

/// The efficiency profile of `backend` on `spec`.
///
/// The base numbers are fitted to the paper's own measurements:
/// §IV-C reports the CUDA implicit-matvec kernel at 32 % of the A100's FP64
/// peak; Table I shows OpenCL within ~5 % of CUDA, hipSYCL slightly slower
/// on compute capability ≥ 7.0 but **over 3× slower** on older NVIDIA GPUs,
/// and DPC++ about 2× slower than OpenCL on the Intel iGPU.
pub fn backend_profile(backend: Backend, spec: &GpuSpec) -> BackendProfile {
    let cc = spec.compute_capability;
    match backend {
        Backend::Cuda => BackendProfile {
            compute_efficiency: 0.32,
            bandwidth_efficiency: 0.80,
            launch_overhead_factor: 1.0,
        },
        Backend::OpenCl => BackendProfile {
            compute_efficiency: 0.30,
            bandwidth_efficiency: 0.78,
            launch_overhead_factor: 1.3,
        },
        Backend::SyclHip => {
            if cc > 0.0 && cc < 7.0 {
                // The paper: "for GPUs with an older compute capability,
                // hipSYCL is over three times slower than CUDA or OpenCL".
                BackendProfile {
                    compute_efficiency: 0.09,
                    bandwidth_efficiency: 0.40,
                    launch_overhead_factor: 2.0,
                }
            } else {
                BackendProfile {
                    compute_efficiency: 0.27,
                    bandwidth_efficiency: 0.72,
                    launch_overhead_factor: 1.6,
                }
            }
        }
        Backend::SyclDpcpp => BackendProfile {
            compute_efficiency: 0.15,
            bandwidth_efficiency: 0.60,
            launch_overhead_factor: 1.8,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peak_flops_scales_with_precision() {
        assert_eq!(A100.peak_flops(Precision::F64), 9.7e12);
        assert_eq!(A100.peak_flops(Precision::F32), 19.5e12);
    }

    #[test]
    fn memory_bytes_is_gib() {
        assert_eq!(A100.memory_bytes(), 40 * (1usize << 30));
    }

    #[test]
    fn cuda_only_on_nvidia() {
        assert!(Backend::Cuda.supports(&A100));
        assert!(Backend::Cuda.supports(&GTX_1080_TI));
        assert!(!Backend::Cuda.supports(&RADEON_VII));
        assert!(!Backend::Cuda.supports(&INTEL_P630));
        assert!(Backend::OpenCl.supports(&RADEON_VII));
        assert!(Backend::SyclHip.supports(&INTEL_P630));
    }

    #[test]
    fn hipsycl_penalized_on_old_nvidia() {
        let old = backend_profile(Backend::SyclHip, &P100);
        let new = backend_profile(Backend::SyclHip, &V100);
        // >3x slower on cc < 7.0 per the paper
        assert!(new.compute_efficiency / old.compute_efficiency >= 3.0);
        // AMD GPUs are not penalized
        let amd = backend_profile(Backend::SyclHip, &RADEON_VII);
        assert_eq!(amd.compute_efficiency, new.compute_efficiency);
    }

    #[test]
    fn cuda_fastest_backend_on_nvidia() {
        for spec in [&A100, &V100, &P100, &GTX_1080_TI, &RTX_3080] {
            let cuda = backend_profile(Backend::Cuda, spec);
            for b in [Backend::OpenCl, Backend::SyclHip] {
                let p = backend_profile(b, spec);
                assert!(cuda.compute_efficiency >= p.compute_efficiency);
            }
        }
    }

    #[test]
    fn table1_order_and_names() {
        let names: Vec<&str> = TABLE1_GPUS.iter().map(|g| g.name).collect();
        assert_eq!(names[0], "NVIDIA GTX 1080 Ti");
        assert_eq!(names.len(), 6);
    }

    #[test]
    fn backend_names() {
        assert_eq!(Backend::Cuda.name(), "CUDA");
        assert_eq!(Backend::SyclDpcpp.name(), "SYCL (DPC++)");
    }
}
