//! Deterministic fault injection for the simulated device substrate.
//!
//! Real multi-GPU systems fail in ways a paper benchmark never shows:
//! a device drops off the bus mid-solve (fail-stop), a launch times out
//! once and then works again (transient), or one device silently runs at a
//! fraction of its rated throughput (straggler). Because this substrate is
//! a simulation, those scenarios can be reproduced *deterministically*: a
//! [`FaultPlan`] schedules faults at exact per-device **launch-attempt
//! indices** (no wall clock, no randomness at injection time), so a failing
//! run can be replayed bit-for-bit.
//!
//! Plans are installed on a device (or every device of a
//! [`crate::MultiDeviceContext`] / [`crate::ClusterContext`]) and take
//! effect inside [`crate::SimDevice::launch`]: the launch-attempt counter
//! starts at 0 when the plan is installed, and an event with
//! `at_launch = k` activates on the `k`-th subsequent attempt.

use std::fmt;

/// The kind of fault a [`FaultEvent`] injects.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultKind {
    /// Fail-stop: from the trigger on, every launch fails with
    /// [`crate::SimGpuError::DeviceFailed`]. Permanent.
    FailStop,
    /// Transient timeout: the next `failures` launch attempts fail with
    /// [`crate::SimGpuError::TransientTimeout`], after which the device
    /// works again — the scenario retry-with-backoff recovers from.
    Transient {
        /// Number of consecutive launch attempts that time out.
        failures: u32,
    },
    /// Slow-device degradation: from the trigger on, simulated kernel time
    /// is multiplied by `factor` (> 1 = slower). Launches still succeed;
    /// only the straggler detector notices.
    Slow {
        /// Multiplier applied to simulated kernel time.
        factor: f64,
    },
}

/// One scheduled fault: `kind` fires on device `device` at launch-attempt
/// index `at_launch` (0-based, counted from plan installation).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultEvent {
    /// Device ordinal within the context the plan is installed on.
    pub device: usize,
    /// 0-based launch-attempt index at which the fault activates.
    pub at_launch: u64,
    /// What happens.
    pub kind: FaultKind,
}

/// A deterministic fault schedule over the devices of one context.
///
/// Build explicitly with the [`FaultPlan::fail_stop`] /
/// [`FaultPlan::transient`] / [`FaultPlan::slow`] builder methods, parse a
/// textual spec with [`FaultPlan::parse`], or generate a reproducible
/// pseudo-random plan with [`FaultPlan::seeded`].
///
/// ```
/// use plssvm_simgpu::FaultPlan;
///
/// let plan = FaultPlan::new().fail_stop(1, 6).transient(0, 3, 2);
/// let same = FaultPlan::parse(&plan.to_spec()).unwrap();
/// assert_eq!(plan, same);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// An empty plan (no faults).
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a fail-stop of `device` at launch-attempt `at_launch`.
    pub fn fail_stop(mut self, device: usize, at_launch: u64) -> Self {
        self.events.push(FaultEvent {
            device,
            at_launch,
            kind: FaultKind::FailStop,
        });
        self
    }

    /// Adds `failures` consecutive transient timeouts on `device` starting
    /// at launch-attempt `at_launch`.
    pub fn transient(mut self, device: usize, at_launch: u64, failures: u32) -> Self {
        self.events.push(FaultEvent {
            device,
            at_launch,
            kind: FaultKind::Transient { failures },
        });
        self
    }

    /// Slows `device` down by `factor` from launch-attempt `at_launch` on.
    pub fn slow(mut self, device: usize, at_launch: u64, factor: f64) -> Self {
        self.events.push(FaultEvent {
            device,
            at_launch,
            kind: FaultKind::Slow { factor },
        });
        self
    }

    /// All scheduled events, in insertion order.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// True if the plan schedules nothing.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The largest device ordinal any event targets.
    pub fn max_device(&self) -> Option<usize> {
        self.events.iter().map(|e| e.device).max()
    }

    /// The `(at_launch, kind)` pairs targeting one device.
    pub fn events_for(&self, device: usize) -> Vec<(u64, FaultKind)> {
        self.events
            .iter()
            .filter(|e| e.device == device)
            .map(|e| (e.at_launch, e.kind))
            .collect()
    }

    /// Number of devices the plan fail-stops (each counted once).
    pub fn fail_stopped_devices(&self) -> usize {
        let mut devs: Vec<usize> = self
            .events
            .iter()
            .filter(|e| e.kind == FaultKind::FailStop)
            .map(|e| e.device)
            .collect();
        devs.sort_unstable();
        devs.dedup();
        devs.len()
    }

    /// Generates a reproducible pseudo-random plan for a context of
    /// `devices` devices, with triggers in `0..max_launch`. The generator
    /// (a splitmix64 stream seeded with `seed`) guarantees device 0 is
    /// never fail-stopped, so at least one device always survives.
    pub fn seeded(seed: u64, devices: usize, max_launch: u64) -> Self {
        assert!(devices >= 1, "need at least one device");
        let mut state = seed;
        let mut next = move || {
            // splitmix64: deterministic, dependency-free
            state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        let mut plan = Self::new();
        let count = 1 + (next() % 3) as usize;
        for _ in 0..count {
            let at_launch = next() % max_launch.max(1);
            match next() % 3 {
                0 if devices > 1 => {
                    // never device 0: keep at least one survivor
                    let device = 1 + (next() as usize % (devices - 1));
                    plan = plan.fail_stop(device, at_launch);
                }
                1 => {
                    let device = next() as usize % devices;
                    let failures = 1 + (next() % 3) as u32;
                    plan = plan.transient(device, at_launch, failures);
                }
                _ => {
                    let device = next() as usize % devices;
                    let factor = 2.0 + (next() % 7) as f64;
                    plan = plan.slow(device, at_launch, factor);
                }
            }
        }
        plan
    }

    /// Parses a textual plan: `;`- or `,`-separated events of the form
    /// `fail:DEV@LAUNCH`, `transient:DEV@LAUNCH[xCOUNT]` and
    /// `slow:DEV@LAUNCH[xFACTOR]`, e.g. `fail:1@6;transient:0@3x2`.
    /// `COUNT` defaults to 1 and `FACTOR` to 4.0 when omitted.
    pub fn parse(spec: &str) -> Result<Self, String> {
        let mut plan = Self::new();
        for ev in spec
            .split([';', ','])
            .map(str::trim)
            .filter(|s| !s.is_empty())
        {
            let (kind, rest) = ev
                .split_once(':')
                .ok_or_else(|| format!("fault event '{ev}' is missing ':'"))?;
            let (dev, tail) = rest
                .split_once('@')
                .ok_or_else(|| format!("fault event '{ev}' is missing '@LAUNCH'"))?;
            let device: usize = dev
                .trim()
                .parse()
                .map_err(|_| format!("bad device ordinal in '{ev}'"))?;
            let (launch, param) = match tail.split_once('x') {
                Some((l, p)) => (l, Some(p)),
                None => (tail, None),
            };
            let at_launch: u64 = launch
                .trim()
                .parse()
                .map_err(|_| format!("bad launch index in '{ev}'"))?;
            plan = match kind.trim() {
                "fail" => {
                    if param.is_some() {
                        return Err(format!("'fail' takes no parameter in '{ev}'"));
                    }
                    plan.fail_stop(device, at_launch)
                }
                "transient" => {
                    let failures: u32 = match param {
                        Some(p) => p
                            .trim()
                            .parse()
                            .map_err(|_| format!("bad failure count in '{ev}'"))?,
                        None => 1,
                    };
                    plan.transient(device, at_launch, failures)
                }
                "slow" => {
                    let factor: f64 = match param {
                        Some(p) => p
                            .trim()
                            .parse()
                            .map_err(|_| format!("bad slowdown factor in '{ev}'"))?,
                        None => 4.0,
                    };
                    plan.slow(device, at_launch, factor)
                }
                other => {
                    return Err(format!(
                        "unknown fault kind '{other}' (expected fail, transient or slow)"
                    ))
                }
            };
        }
        Ok(plan)
    }

    /// The textual spec of this plan; [`FaultPlan::parse`] round-trips it.
    pub fn to_spec(&self) -> String {
        self.events
            .iter()
            .map(|e| match e.kind {
                FaultKind::FailStop => format!("fail:{}@{}", e.device, e.at_launch),
                FaultKind::Transient { failures } => {
                    format!("transient:{}@{}x{}", e.device, e.at_launch, failures)
                }
                FaultKind::Slow { factor } => {
                    format!("slow:{}@{}x{}", e.device, e.at_launch, factor)
                }
            })
            .collect::<Vec<_>>()
            .join(";")
    }
}

impl fmt::Display for FaultPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_spec())
    }
}

/// Per-device runtime fault state, driven by [`super::SimDevice::launch`].
#[derive(Debug, Default)]
pub(crate) struct FaultState {
    /// Not-yet-activated `(at_launch, kind)` events for this device.
    pending: Vec<(u64, FaultKind)>,
    /// Launch attempts observed since the plan was installed.
    attempts: u64,
    /// Fail-stop has tripped.
    failed: bool,
    /// Transient timeouts still owed.
    transient_remaining: u32,
    /// Current simulated-time multiplier (1.0 = nominal).
    slow_factor: f64,
}

impl FaultState {
    pub(crate) fn new(pending: Vec<(u64, FaultKind)>) -> Self {
        Self {
            pending,
            attempts: 0,
            failed: false,
            transient_remaining: 0,
            slow_factor: 1.0,
        }
    }

    pub(crate) fn attempts(&self) -> u64 {
        self.attempts
    }

    pub(crate) fn failed(&self) -> bool {
        self.failed
    }

    /// Advances the attempt counter and reports the verdict for this
    /// launch: `Err` if it must fail, `Ok(slowdown)` otherwise.
    pub(crate) fn check(&mut self, device: usize) -> Result<f64, crate::SimGpuError> {
        let launch = self.attempts;
        self.attempts += 1;
        let mut i = 0;
        while i < self.pending.len() {
            if self.pending[i].0 <= launch {
                match self.pending.swap_remove(i).1 {
                    FaultKind::FailStop => self.failed = true,
                    FaultKind::Transient { failures } => self.transient_remaining += failures,
                    FaultKind::Slow { factor } => self.slow_factor *= factor,
                }
            } else {
                i += 1;
            }
        }
        if self.failed {
            return Err(crate::SimGpuError::DeviceFailed { device, launch });
        }
        if self.transient_remaining > 0 {
            self.transient_remaining -= 1;
            return Err(crate::SimGpuError::TransientTimeout { device, launch });
        }
        Ok(self.slow_factor)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_and_spec_round_trip() {
        let plan = FaultPlan::new()
            .fail_stop(1, 6)
            .transient(0, 3, 2)
            .slow(2, 0, 4.0);
        assert_eq!(plan.events().len(), 3);
        assert_eq!(plan.max_device(), Some(2));
        assert_eq!(plan.fail_stopped_devices(), 1);
        let round = FaultPlan::parse(&plan.to_spec()).unwrap();
        assert_eq!(plan, round);
        assert_eq!(format!("{plan}"), plan.to_spec());
    }

    #[test]
    fn parse_defaults_and_errors() {
        let plan = FaultPlan::parse("transient:0@3; slow:1@2").unwrap();
        assert_eq!(plan.events()[0].kind, FaultKind::Transient { failures: 1 });
        assert_eq!(plan.events()[1].kind, FaultKind::Slow { factor: 4.0 });
        assert!(FaultPlan::parse("").unwrap().is_empty());
        assert!(FaultPlan::parse("nope:0@1").is_err());
        assert!(FaultPlan::parse("fail:x@1").is_err());
        assert!(FaultPlan::parse("fail:0").is_err());
        assert!(FaultPlan::parse("fail:0@1x2").is_err());
    }

    #[test]
    fn seeded_plans_are_reproducible_and_leave_a_survivor() {
        for seed in 0..50u64 {
            let a = FaultPlan::seeded(seed, 4, 10);
            let b = FaultPlan::seeded(seed, 4, 10);
            assert_eq!(a, b);
            assert!(!a.is_empty());
            assert!(a.fail_stopped_devices() < 4);
            assert!(a
                .events()
                .iter()
                .all(|e| e.kind != FaultKind::FailStop || e.device != 0));
        }
        // single device: fail-stop is never generated at all
        let solo = FaultPlan::seeded(7, 1, 10);
        assert_eq!(solo.fail_stopped_devices(), 0);
    }

    #[test]
    fn fault_state_sequences_are_deterministic() {
        let plan = FaultPlan::new().transient(0, 2, 2).slow(0, 5, 3.0);
        let run = || {
            let mut fs = FaultState::new(plan.events_for(0));
            (0..8)
                .map(|_| match fs.check(0) {
                    Ok(f) => format!("ok{f}"),
                    Err(e) => format!("{e:?}"),
                })
                .collect::<Vec<_>>()
        };
        let a = run();
        assert_eq!(a, run());
        assert_eq!(a[0], "ok1");
        assert!(a[2].contains("TransientTimeout"));
        assert!(a[3].contains("TransientTimeout"));
        assert_eq!(a[4], "ok1");
        assert_eq!(a[5], "ok3");
    }

    #[test]
    fn fail_stop_is_permanent() {
        let mut fs = FaultState::new(vec![(1, FaultKind::FailStop)]);
        assert!(fs.check(3).is_ok());
        for _ in 0..4 {
            assert!(matches!(
                fs.check(3),
                Err(crate::SimGpuError::DeviceFailed { device: 3, .. })
            ));
        }
        assert!(fs.failed());
        assert_eq!(fs.attempts(), 5);
    }
}
