//! Multi-node cluster modeling — the paper's §V long-term goal:
//! "extend all PLSSVM kernels to support multi-node multi-GPU execution
//! including load balancing on heterogeneous hardware".
//!
//! A [`ClusterContext`] groups simulated devices into **nodes**. Devices
//! within a node communicate through the host (as in the single-node
//! multi-GPU path); partial results across nodes are combined with a
//! ring **allreduce** over a modeled [`Interconnect`]. Nothing about the
//! functional computation changes — only the time accounting gains a
//! network term.

use crate::device::SimDevice;
use crate::error::SimGpuError;
use crate::fault::FaultPlan;
use crate::hw::{Backend, GpuSpec};
use crate::perf::PerfReport;

/// A network between nodes (InfiniBand-class defaults).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Interconnect {
    /// Per-link bandwidth in GB/s.
    pub bandwidth_gbs: f64,
    /// Per-message latency in microseconds.
    pub latency_us: f64,
}

impl Interconnect {
    /// 200 Gb/s HDR InfiniBand: 25 GB/s, ~2 µs.
    pub const HDR_INFINIBAND: Interconnect = Interconnect {
        bandwidth_gbs: 25.0,
        latency_us: 2.0,
    };

    /// 10 GbE commodity Ethernet: 1.25 GB/s, ~30 µs.
    pub const TEN_GBE: Interconnect = Interconnect {
        bandwidth_gbs: 1.25,
        latency_us: 30.0,
    };

    /// Time of a ring allreduce of `bytes` across `nodes` participants:
    /// `2·(N−1)/N · bytes / bw + 2·(N−1)·latency` (the standard
    /// bandwidth-optimal ring cost). Zero for a single node.
    pub fn allreduce_time_s(&self, bytes: u64, nodes: usize) -> f64 {
        if nodes <= 1 {
            return 0.0;
        }
        let n = nodes as f64;
        2.0 * (n - 1.0) / n * bytes as f64 / (self.bandwidth_gbs * 1e9)
            + 2.0 * (n - 1.0) * self.latency_us * 1e-6
    }
}

/// One node's hardware: a set of (possibly mixed) devices.
#[derive(Debug, Clone)]
pub struct NodeConfig {
    /// The devices installed in this node.
    pub devices: Vec<(GpuSpec, Backend)>,
}

impl NodeConfig {
    /// A homogeneous node with `count` devices of one kind.
    pub fn homogeneous(spec: GpuSpec, api: Backend, count: usize) -> Self {
        Self {
            devices: vec![(spec, api); count],
        }
    }
}

/// A group of simulated devices organized into nodes with a modeled
/// interconnect.
pub struct ClusterContext {
    devices: Vec<SimDevice>,
    /// `node_of[i]` = node index of device `i`.
    node_of: Vec<usize>,
    nodes: usize,
    interconnect: Interconnect,
}

impl ClusterContext {
    /// Builds the cluster. Panics if any node is empty, no nodes are
    /// given, or a backend cannot drive its device.
    pub fn new(nodes: &[NodeConfig], interconnect: Interconnect) -> Self {
        assert!(!nodes.is_empty(), "need at least one node");
        let mut devices = Vec::new();
        let mut node_of = Vec::new();
        for (n, node) in nodes.iter().enumerate() {
            assert!(!node.devices.is_empty(), "node {n} has no devices");
            for (spec, api) in &node.devices {
                node_of.push(n);
                devices.push(SimDevice::with_id(spec.clone(), *api, devices.len()));
            }
        }
        Self {
            devices,
            node_of,
            nodes: nodes.len(),
            interconnect,
        }
    }

    /// Total device count across all nodes.
    pub fn len(&self) -> usize {
        self.devices.len()
    }

    /// True if the cluster has no devices (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.devices.is_empty()
    }

    /// Number of nodes.
    pub fn nodes(&self) -> usize {
        self.nodes
    }

    /// The devices, cluster-wide.
    pub fn devices(&self) -> &[SimDevice] {
        &self.devices
    }

    /// The node a device belongs to.
    pub fn node_of(&self, device: usize) -> usize {
        self.node_of[device]
    }

    /// Device `i`, or [`SimGpuError::DeviceIndexOutOfRange`] if the cluster
    /// has no such device (no panicking index path).
    pub fn device(&self, i: usize) -> Result<&SimDevice, SimGpuError> {
        self.devices
            .get(i)
            .ok_or(SimGpuError::DeviceIndexOutOfRange {
                index: i,
                count: self.devices.len(),
            })
    }

    /// Installs `plan` cluster-wide (device ordinals are cluster-wide too).
    /// Fails without installing anything if the plan addresses a device the
    /// cluster does not have.
    pub fn install_fault_plan(&self, plan: &FaultPlan) -> Result<(), SimGpuError> {
        if let Some(max) = plan.max_device() {
            if max >= self.devices.len() {
                return Err(SimGpuError::DeviceIndexOutOfRange {
                    index: max,
                    count: self.devices.len(),
                });
            }
        }
        for d in &self.devices {
            d.install_fault_plan(plan);
        }
        Ok(())
    }

    /// Removes fault plans from every device.
    pub fn clear_faults(&self) {
        for d in &self.devices {
            d.clear_faults();
        }
    }

    /// The modeled interconnect.
    pub fn interconnect(&self) -> Interconnect {
        self.interconnect
    }

    /// Per-device performance snapshots.
    pub fn reports(&self) -> Vec<PerfReport> {
        self.devices.iter().map(|d| d.perf_report()).collect()
    }

    /// Simulated wall-clock of the device work assuming all devices ran
    /// concurrently (network time is tracked separately by the caller,
    /// per collective).
    pub fn sim_parallel_time_s(&self) -> f64 {
        self.devices
            .iter()
            .map(|d| d.perf_report().sim_total_time_s())
            .fold(0.0, f64::max)
    }

    /// Largest per-device peak memory in bytes.
    pub fn peak_memory_per_device_bytes(&self) -> usize {
        self.devices
            .iter()
            .map(|d| d.peak_allocated_bytes())
            .max()
            .unwrap_or(0)
    }

    /// Load-balancing weights for a compute-bound feature split: each
    /// device receives features proportionally to its achievable FP64
    /// throughput (peak × backend efficiency) — the "load balancing on
    /// heterogeneous hardware" of §V.
    pub fn balanced_feature_weights(&self) -> Vec<f64> {
        self.devices
            .iter()
            .map(|d| {
                let profile = crate::hw::backend_profile(d.backend(), d.spec());
                d.spec().peak_flops(crate::hw::Precision::F64) * profile.compute_efficiency
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hw::{A100, V100};

    #[test]
    fn allreduce_cost_shape() {
        let net = Interconnect::HDR_INFINIBAND;
        assert_eq!(net.allreduce_time_s(1 << 20, 1), 0.0);
        let t2 = net.allreduce_time_s(1 << 20, 2);
        let t4 = net.allreduce_time_s(1 << 20, 4);
        assert!(t2 > 0.0);
        // ring allreduce bandwidth term grows like (N-1)/N → sublinear
        assert!(t4 < 2.0 * t2);
        // slower network costs more
        let slow = Interconnect::TEN_GBE.allreduce_time_s(1 << 20, 4);
        assert!(slow > t4);
    }

    #[test]
    fn cluster_construction_and_topology() {
        let cluster = ClusterContext::new(
            &[
                NodeConfig::homogeneous(A100, Backend::Cuda, 2),
                NodeConfig::homogeneous(V100, Backend::Cuda, 2),
            ],
            Interconnect::HDR_INFINIBAND,
        );
        assert_eq!(cluster.len(), 4);
        assert_eq!(cluster.nodes(), 2);
        assert_eq!(cluster.node_of(0), 0);
        assert_eq!(cluster.node_of(3), 1);
        assert_eq!(cluster.devices()[3].spec().name, "NVIDIA V100");
    }

    #[test]
    fn balanced_weights_favour_faster_devices() {
        let cluster = ClusterContext::new(
            &[NodeConfig {
                devices: vec![(A100, Backend::Cuda), (V100, Backend::Cuda)],
            }],
            Interconnect::HDR_INFINIBAND,
        );
        let w = cluster.balanced_feature_weights();
        assert_eq!(w.len(), 2);
        // A100 (9.7 TF) should receive ~9.7/7.0 times the V100's share
        let ratio = w[0] / w[1];
        assert!((ratio - 9.7 / 7.0).abs() < 1e-9, "{ratio}");
    }

    #[test]
    fn cluster_device_selection_and_faults() {
        let cluster = ClusterContext::new(
            &[NodeConfig::homogeneous(A100, Backend::Cuda, 2)],
            Interconnect::HDR_INFINIBAND,
        );
        assert!(cluster.device(1).is_ok());
        assert_eq!(
            cluster.device(9).unwrap_err(),
            SimGpuError::DeviceIndexOutOfRange { index: 9, count: 2 }
        );
        assert!(cluster
            .install_fault_plan(&FaultPlan::new().fail_stop(7, 0))
            .is_err());
        cluster
            .install_fault_plan(&FaultPlan::new().slow(0, 0, 2.0))
            .unwrap();
        cluster.clear_faults();
        assert_eq!(cluster.device(0).unwrap().fault_attempts(), 0);
    }

    #[test]
    #[should_panic(expected = "no devices")]
    fn empty_node_panics() {
        let _ = ClusterContext::new(
            &[NodeConfig { devices: vec![] }],
            Interconnect::HDR_INFINIBAND,
        );
    }
}
