//! The simulated device: global memory, buffers and transfers.
//!
//! A [`SimDevice`] owns a global-memory budget (the catalog card's HBM
//! capacity), performance counters, and a backend profile. Host↔device
//! copies are real `memcpy`s — the data genuinely lives in separate
//! buffers, so code cannot accidentally bypass the device model — and every
//! transfer and allocation is accounted, which yields the paper's per-GPU
//! memory numbers (Fig. 4b) for free.

use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use plssvm_data::Real;

use crate::error::SimGpuError;
use crate::fault::{FaultPlan, FaultState};
use crate::hw::{backend_profile, Backend, BackendProfile, GpuSpec};
use crate::perf::{transfer_time_s, PerfCounters, PerfReport};

#[derive(Debug, Default)]
struct MemState {
    allocated: usize,
    peak: usize,
}

pub(crate) struct DeviceState {
    pub(crate) spec: GpuSpec,
    pub(crate) backend: Backend,
    pub(crate) profile: BackendProfile,
    mem: Mutex<MemState>,
    pub(crate) perf: Mutex<PerfCounters>,
    /// `Some` once a [`FaultPlan`] is installed; `None` devices are
    /// fault-free and skip all fault bookkeeping.
    faults: Mutex<Option<FaultState>>,
}

impl DeviceState {
    fn alloc_bytes(&self, bytes: usize) -> Result<(), SimGpuError> {
        let mut mem = self.mem.lock();
        let capacity = self.spec.memory_bytes();
        let available = capacity - mem.allocated;
        if bytes > available {
            return Err(SimGpuError::OutOfMemory {
                requested: bytes,
                available,
                capacity,
            });
        }
        mem.allocated += bytes;
        mem.peak = mem.peak.max(mem.allocated);
        Ok(())
    }

    fn free_bytes(&self, bytes: usize) {
        let mut mem = self.mem.lock();
        mem.allocated = mem.allocated.saturating_sub(bytes);
    }

    /// Launch-time fault gate: advances the attempt counter and returns the
    /// simulated-time multiplier, or the injected failure. `Ok(1.0)` and no
    /// bookkeeping when no plan is installed.
    pub(crate) fn fault_check(&self, device: usize) -> Result<f64, SimGpuError> {
        match self.faults.lock().as_mut() {
            None => Ok(1.0),
            Some(fs) => fs.check(device),
        }
    }
}

/// One simulated accelerator.
///
/// Cloning is cheap and shares the underlying device (like holding two
/// handles to the same CUDA context).
///
/// ```
/// use plssvm_simgpu::{hw, Backend, Grid, LaunchConfig, Precision, SimDevice};
///
/// let dev = SimDevice::new(hw::A100, Backend::Cuda);
/// let input = dev.copy_to_device(&[1.0f64; 64])?;
/// let sum = dev.alloc_atomic::<f64>(1)?;
/// let cfg = LaunchConfig::new("reduce", Grid::one_d(8), Precision::F64);
/// dev.launch(&cfg, |blk, ctx| {
///     let tile = &input.as_slice()[blk.x * 8..(blk.x + 1) * 8];
///     sum.add(0, tile.iter().sum());
///     ctx.add_flops(8);
/// })?;
/// assert_eq!(sum.get(0), 64.0);
/// assert_eq!(dev.perf_report().kernel_launches, 1);
/// # Ok::<(), plssvm_simgpu::SimGpuError>(())
/// ```
#[derive(Clone)]
pub struct SimDevice {
    pub(crate) state: Arc<DeviceState>,
    id: usize,
}

impl std::fmt::Debug for SimDevice {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimDevice")
            .field("id", &self.id)
            .field("spec", &self.state.spec.name)
            .field("backend", &self.state.backend.name())
            .finish()
    }
}

impl SimDevice {
    /// Creates a device of the given hardware type driven by `backend`.
    ///
    /// # Panics
    /// Panics if the backend cannot drive the hardware (CUDA on non-NVIDIA
    /// — the `—` cells of Table I). Use [`Backend::supports`] to check.
    pub fn new(spec: GpuSpec, backend: Backend) -> Self {
        Self::with_id(spec, backend, 0)
    }

    /// Creates a device with an explicit id (for multi-device contexts).
    pub fn with_id(spec: GpuSpec, backend: Backend, id: usize) -> Self {
        assert!(
            backend.supports(&spec),
            "{} cannot drive {}",
            backend.name(),
            spec.name
        );
        let profile = backend_profile(backend, &spec);
        Self {
            state: Arc::new(DeviceState {
                spec,
                backend,
                profile,
                mem: Mutex::new(MemState::default()),
                perf: Mutex::new(PerfCounters::default()),
                faults: Mutex::new(None),
            }),
            id,
        }
    }

    /// The device id within its context.
    pub fn id(&self) -> usize {
        self.id
    }

    /// The hardware specification of this device.
    pub fn spec(&self) -> &GpuSpec {
        &self.state.spec
    }

    /// The backend driving this device.
    pub fn backend(&self) -> Backend {
        self.state.backend
    }

    /// Allocates a zero-initialized device buffer of `len` elements.
    pub fn alloc<T: Real>(&self, len: usize) -> Result<DeviceBuffer<T>, SimGpuError> {
        let bytes = len * T::BYTES;
        self.state.alloc_bytes(bytes)?;
        Ok(DeviceBuffer {
            data: vec![T::ZERO; len].into_boxed_slice(),
            state: Arc::clone(&self.state),
            bytes,
        })
    }

    /// Allocates a device buffer and uploads `src` into it (tracked H2D).
    pub fn copy_to_device<T: Real>(&self, src: &[T]) -> Result<DeviceBuffer<T>, SimGpuError> {
        let mut buf = self.alloc(src.len())?;
        buf.write_from_host(src)?;
        Ok(buf)
    }

    /// Allocates a zeroed atomically-updatable buffer (the simulated
    /// equivalent of a buffer written with `atomicAdd`).
    pub fn alloc_atomic<T: AtomicScalar>(
        &self,
        len: usize,
    ) -> Result<AtomicBuffer<T>, SimGpuError> {
        let bytes = len * T::BYTES;
        self.state.alloc_bytes(bytes)?;
        Ok(AtomicBuffer {
            data: (0..len).map(|_| T::atomic_zero()).collect(),
            state: Arc::clone(&self.state),
            bytes,
        })
    }

    /// Currently allocated device memory in bytes.
    pub fn allocated_bytes(&self) -> usize {
        self.state.mem.lock().allocated
    }

    /// High-water mark of device memory in bytes.
    pub fn peak_allocated_bytes(&self) -> usize {
        self.state.mem.lock().peak
    }

    /// Snapshot of all performance counters.
    pub fn perf_report(&self) -> PerfReport {
        let perf = self.state.perf.lock();
        let mem = self.state.mem.lock();
        PerfReport {
            kernel_launches: perf.kernel_launches,
            total_flops: perf.total_flops,
            global_bytes: perf.global_bytes,
            h2d_bytes: perf.h2d_bytes,
            d2h_bytes: perf.d2h_bytes,
            sim_compute_time_s: perf.sim_compute_time_s,
            sim_transfer_time_s: perf.sim_transfer_time_s,
            allocated_bytes: mem.allocated,
            peak_allocated_bytes: mem.peak,
            per_kernel: perf.per_kernel.clone(),
        }
    }

    /// Clears performance counters (keeps allocations and peak memory).
    pub fn reset_perf(&self) {
        *self.state.perf.lock() = PerfCounters::default();
    }

    /// Installs the events of `plan` that target this device (matched by
    /// [`SimDevice::id`]). Resets the launch-attempt counter to 0, so
    /// triggers are relative to the moment of installation. Installing an
    /// empty or non-matching plan still arms the counter.
    pub fn install_fault_plan(&self, plan: &FaultPlan) {
        *self.state.faults.lock() = Some(FaultState::new(plan.events_for(self.id)));
    }

    /// Removes any installed fault plan; the device behaves nominally again.
    pub fn clear_faults(&self) {
        *self.state.faults.lock() = None;
    }

    /// Launch attempts (successful or faulted) observed since the fault
    /// plan was installed. 0 when no plan is installed.
    pub fn fault_attempts(&self) -> u64 {
        self.state
            .faults
            .lock()
            .as_ref()
            .map_or(0, |fs| fs.attempts())
    }

    /// True once an injected fail-stop has tripped on this device.
    pub fn has_failed(&self) -> bool {
        self.state
            .faults
            .lock()
            .as_ref()
            .is_some_and(|fs| fs.failed())
    }
}

/// A plain device-global buffer.
///
/// Kernels read it through [`DeviceBuffer::as_slice`]; writes from the host
/// go through the tracked [`DeviceBuffer::write_from_host`].
pub struct DeviceBuffer<T> {
    data: Box<[T]>,
    state: Arc<DeviceState>,
    bytes: usize,
}

impl<T> std::fmt::Debug for DeviceBuffer<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DeviceBuffer")
            .field("len", &self.data.len())
            .field("bytes", &self.bytes)
            .finish()
    }
}

impl<T: Real> DeviceBuffer<T> {
    /// Number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if the buffer holds no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Device-side view of the data (for kernels).
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// Uploads host data into the buffer (tracked H2D transfer).
    pub fn write_from_host(&mut self, src: &[T]) -> Result<(), SimGpuError> {
        if src.len() != self.data.len() {
            return Err(SimGpuError::TransferSizeMismatch {
                src: src.len(),
                dst: self.data.len(),
            });
        }
        self.data.copy_from_slice(src);
        let bytes = self.bytes;
        let t = transfer_time_s(&self.state.spec, bytes as u64);
        self.state
            .perf
            .lock()
            .record_transfer(true, bytes as u64, t);
        Ok(())
    }

    /// Downloads the buffer to the host (tracked D2H transfer).
    pub fn read_to_host(&self) -> Vec<T> {
        let bytes = self.bytes;
        let t = transfer_time_s(&self.state.spec, bytes as u64);
        self.state
            .perf
            .lock()
            .record_transfer(false, bytes as u64, t);
        self.data.to_vec()
    }
}

impl<T> Drop for DeviceBuffer<T> {
    fn drop(&mut self) {
        self.state.free_bytes(self.bytes);
    }
}

/// A scalar that supports simulated-`atomicAdd` accumulation.
///
/// Implemented via compare-and-swap over the IEEE-754 bit pattern, exactly
/// how GPUs without native FP64 atomics implement `atomicAdd`.
pub trait AtomicScalar: Real {
    /// The backing atomic storage cell.
    type Atomic: Send + Sync;
    /// A cell holding `0.0`.
    fn atomic_zero() -> Self::Atomic;
    /// `*a += v`, atomically.
    fn atomic_add(a: &Self::Atomic, v: Self);
    /// Atomic read.
    fn atomic_load(a: &Self::Atomic) -> Self;
    /// Atomic write.
    fn atomic_store(a: &Self::Atomic, v: Self);
}

impl AtomicScalar for f64 {
    type Atomic = AtomicU64;

    fn atomic_zero() -> AtomicU64 {
        AtomicU64::new(0.0f64.to_bits())
    }

    #[inline]
    fn atomic_add(a: &AtomicU64, v: f64) {
        let mut current = a.load(Ordering::Relaxed);
        loop {
            let new = (f64::from_bits(current) + v).to_bits();
            match a.compare_exchange_weak(current, new, Ordering::Relaxed, Ordering::Relaxed) {
                Ok(_) => return,
                Err(actual) => current = actual,
            }
        }
    }

    #[inline]
    fn atomic_load(a: &AtomicU64) -> f64 {
        f64::from_bits(a.load(Ordering::Relaxed))
    }

    #[inline]
    fn atomic_store(a: &AtomicU64, v: f64) {
        a.store(v.to_bits(), Ordering::Relaxed);
    }
}

impl AtomicScalar for f32 {
    type Atomic = AtomicU32;

    fn atomic_zero() -> AtomicU32 {
        AtomicU32::new(0.0f32.to_bits())
    }

    #[inline]
    fn atomic_add(a: &AtomicU32, v: f32) {
        let mut current = a.load(Ordering::Relaxed);
        loop {
            let new = (f32::from_bits(current) + v).to_bits();
            match a.compare_exchange_weak(current, new, Ordering::Relaxed, Ordering::Relaxed) {
                Ok(_) => return,
                Err(actual) => current = actual,
            }
        }
    }

    #[inline]
    fn atomic_load(a: &AtomicU32) -> f32 {
        f32::from_bits(a.load(Ordering::Relaxed))
    }

    #[inline]
    fn atomic_store(a: &AtomicU32, v: f32) {
        a.store(v.to_bits(), Ordering::Relaxed);
    }
}

/// A device buffer kernels may update concurrently with `atomicAdd`.
pub struct AtomicBuffer<T: AtomicScalar> {
    data: Box<[T::Atomic]>,
    state: Arc<DeviceState>,
    bytes: usize,
}

impl<T: AtomicScalar> AtomicBuffer<T> {
    /// Number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if the buffer holds no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// `self[i] += v`, atomically (kernel-side `atomicAdd`).
    #[inline]
    pub fn add(&self, i: usize, v: T) {
        T::atomic_add(&self.data[i], v);
    }

    /// Reads element `i` (kernel-side).
    #[inline]
    pub fn get(&self, i: usize) -> T {
        T::atomic_load(&self.data[i])
    }

    /// Overwrites element `i` (kernel-side; no accounting).
    #[inline]
    pub fn set(&self, i: usize, v: T) {
        T::atomic_store(&self.data[i], v);
    }

    /// Resets all elements to zero (device-side `cudaMemset`).
    pub fn zero_fill(&self) {
        for cell in self.data.iter() {
            T::atomic_store(cell, T::ZERO);
        }
    }

    /// Downloads the buffer to the host (tracked D2H transfer).
    pub fn read_to_host(&self) -> Vec<T> {
        let bytes = self.bytes;
        let t = transfer_time_s(&self.state.spec, bytes as u64);
        self.state
            .perf
            .lock()
            .record_transfer(false, bytes as u64, t);
        self.data.iter().map(|c| T::atomic_load(c)).collect()
    }

    /// Uploads host data (tracked H2D transfer).
    pub fn write_from_host(&self, src: &[T]) -> Result<(), SimGpuError> {
        if src.len() != self.data.len() {
            return Err(SimGpuError::TransferSizeMismatch {
                src: src.len(),
                dst: self.data.len(),
            });
        }
        for (cell, &v) in self.data.iter().zip(src) {
            T::atomic_store(cell, v);
        }
        let bytes = self.bytes;
        let t = transfer_time_s(&self.state.spec, bytes as u64);
        self.state
            .perf
            .lock()
            .record_transfer(true, bytes as u64, t);
        Ok(())
    }
}

impl<T: AtomicScalar> Drop for AtomicBuffer<T> {
    fn drop(&mut self) {
        self.state.free_bytes(self.bytes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hw::{A100, INTEL_P630, RADEON_VII};

    fn device() -> SimDevice {
        SimDevice::new(A100, Backend::Cuda)
    }

    #[test]
    fn allocation_accounting() {
        let dev = device();
        assert_eq!(dev.allocated_bytes(), 0);
        let a = dev.alloc::<f64>(1000).unwrap();
        assert_eq!(dev.allocated_bytes(), 8000);
        let b = dev.alloc::<f32>(1000).unwrap();
        assert_eq!(dev.allocated_bytes(), 12000);
        drop(a);
        assert_eq!(dev.allocated_bytes(), 4000);
        drop(b);
        assert_eq!(dev.allocated_bytes(), 0);
        assert_eq!(dev.peak_allocated_bytes(), 12000);
    }

    #[test]
    fn out_of_memory_reported() {
        // Intel iGPU: 8 GiB budget
        let dev = SimDevice::new(INTEL_P630, Backend::OpenCl);
        let err = dev.alloc::<f64>(2 * (1usize << 30)).unwrap_err();
        match err {
            SimGpuError::OutOfMemory {
                requested,
                capacity,
                ..
            } => {
                assert_eq!(requested, 16 * (1usize << 30));
                assert_eq!(capacity, 8 * (1usize << 30));
            }
            other => panic!("unexpected error {other:?}"),
        }
        // the failed allocation must not leak accounting
        assert_eq!(dev.allocated_bytes(), 0);
    }

    #[test]
    #[should_panic(expected = "cannot drive")]
    fn cuda_on_amd_panics() {
        let _ = SimDevice::new(RADEON_VII, Backend::Cuda);
    }

    #[test]
    fn transfer_roundtrip_and_accounting() {
        let dev = device();
        let host: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let buf = dev.copy_to_device(&host).unwrap();
        assert_eq!(buf.as_slice(), &host[..]);
        let back = buf.read_to_host();
        assert_eq!(back, host);
        let r = dev.perf_report();
        assert_eq!(r.h2d_bytes, 800);
        assert_eq!(r.d2h_bytes, 800);
        assert!(r.sim_transfer_time_s > 0.0);
    }

    #[test]
    fn transfer_size_mismatch() {
        let dev = device();
        let mut buf = dev.alloc::<f64>(4).unwrap();
        assert!(matches!(
            buf.write_from_host(&[1.0; 3]),
            Err(SimGpuError::TransferSizeMismatch { src: 3, dst: 4 })
        ));
    }

    #[test]
    fn atomic_buffer_accumulates() {
        let dev = device();
        let buf = dev.alloc_atomic::<f64>(4).unwrap();
        buf.add(0, 1.5);
        buf.add(0, 2.5);
        buf.set(1, -3.0);
        assert_eq!(buf.get(0), 4.0);
        assert_eq!(buf.get(1), -3.0);
        buf.zero_fill();
        assert_eq!(buf.read_to_host(), vec![0.0; 4]);
    }

    #[test]
    fn atomic_buffer_concurrent_adds() {
        use rayon::prelude::*;
        let dev = device();
        let buf = dev.alloc_atomic::<f64>(1).unwrap();
        (0..10_000usize)
            .into_par_iter()
            .for_each(|_| buf.add(0, 1.0));
        assert_eq!(buf.get(0), 10_000.0);
    }

    #[test]
    fn atomic_buffer_f32() {
        let dev = device();
        let buf = dev.alloc_atomic::<f32>(2).unwrap();
        buf.add(1, 0.5f32);
        buf.add(1, 0.25f32);
        assert_eq!(buf.get(1), 0.75f32);
        assert_eq!(dev.allocated_bytes(), 8);
        drop(buf);
        assert_eq!(dev.allocated_bytes(), 0);
    }

    #[test]
    fn reset_perf_keeps_memory() {
        let dev = device();
        let _buf = dev.copy_to_device(&[1.0f64; 10]).unwrap();
        assert!(dev.perf_report().h2d_bytes > 0);
        dev.reset_perf();
        let r = dev.perf_report();
        assert_eq!(r.h2d_bytes, 0);
        assert_eq!(r.allocated_bytes, 80);
        assert_eq!(r.peak_allocated_bytes, 80);
    }

    #[test]
    fn clone_shares_device() {
        let dev = device();
        let dev2 = dev.clone();
        let _buf = dev.alloc::<f64>(10).unwrap();
        assert_eq!(dev2.allocated_bytes(), 80);
    }

    #[test]
    fn debug_format_mentions_hardware() {
        let dev = device();
        let s = format!("{dev:?}");
        assert!(s.contains("A100") && s.contains("CUDA"));
    }
}
