//! Property-based tests of the simulated device substrate.

use proptest::prelude::*;
use rayon::prelude::*;

use plssvm_simgpu::{
    hw, Backend, FaultKind, FaultPlan, Grid, Interconnect, LaunchConfig, Precision, SimDevice,
    SimGpuError,
};

/// One launch outcome, reduced to what fault injection may change.
#[derive(Debug, Clone, PartialEq)]
enum Outcome {
    Ok { time_s: f64 },
    Failed,
    Timeout,
}

/// Runs `launches` identical kernels against a fresh device with `plan`
/// installed and records the outcome sequence.
fn outcome_sequence(plan: &FaultPlan, device_id: usize, launches: usize) -> Vec<Outcome> {
    let dev = SimDevice::with_id(hw::A100, Backend::Cuda, device_id);
    dev.install_fault_plan(plan);
    let cfg = LaunchConfig::new("k", Grid::one_d(4), Precision::F64);
    (0..launches)
        .map(|_| match dev.launch(&cfg, |_, ctx| ctx.add_flops(100)) {
            Ok(t) => Outcome::Ok {
                time_s: t.sim_time_s,
            },
            Err(SimGpuError::DeviceFailed { .. }) => Outcome::Failed,
            Err(SimGpuError::TransientTimeout { .. }) => Outcome::Timeout,
            Err(e) => panic!("unexpected launch error: {e}"),
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Memory accounting balances over arbitrary alloc/free sequences and
    /// the peak is the true high-water mark.
    #[test]
    fn memory_accounting_balances(ops in proptest::collection::vec(0usize..4096, 1..24)) {
        let dev = SimDevice::new(hw::A100, Backend::Cuda);
        let mut live = Vec::new();
        let mut expected = 0usize;
        let mut peak = 0usize;
        for (i, &len) in ops.iter().enumerate() {
            if i % 3 == 2 && !live.is_empty() {
                // free the oldest buffer
                let (buf, bytes): (plssvm_simgpu::DeviceBuffer<f64>, usize) = live.remove(0);
                drop(buf);
                expected -= bytes;
            } else {
                let buf = dev.alloc::<f64>(len).unwrap();
                expected += len * 8;
                peak = peak.max(expected);
                live.push((buf, len * 8));
            }
            prop_assert_eq!(dev.allocated_bytes(), expected);
        }
        prop_assert!(dev.peak_allocated_bytes() >= peak);
        drop(live);
        prop_assert_eq!(dev.allocated_bytes(), 0);
    }

    /// Concurrent atomicAdd accumulation is exact for integral values
    /// regardless of scheduling.
    #[test]
    fn atomic_adds_are_exact(n in 1usize..2000, slots in 1usize..8) {
        let dev = SimDevice::new(hw::A100, Backend::Cuda);
        let buf = dev.alloc_atomic::<f64>(slots).unwrap();
        (0..n).into_par_iter().for_each(|i| buf.add(i % slots, 1.0));
        let total: f64 = buf.read_to_host().iter().sum();
        prop_assert_eq!(total, n as f64);
    }

    /// Launch tallies are deterministic: the same kernel twice produces
    /// identical per-launch counters and times.
    #[test]
    fn launch_tallies_deterministic(blocks in 1usize..32, flops in 1u64..10_000) {
        let dev = SimDevice::new(hw::V100, Backend::OpenCl);
        let cfg = LaunchConfig::new("k", Grid::one_d(blocks), Precision::F64);
        let a = dev.launch(&cfg, |_, ctx| ctx.add_flops(flops)).unwrap();
        let b = dev.launch(&cfg, |_, ctx| ctx.add_flops(flops)).unwrap();
        prop_assert_eq!(a.flops, b.flops);
        prop_assert_eq!(a.flops, flops * blocks as u64);
        prop_assert!((a.sim_time_s - b.sim_time_s).abs() < 1e-15);
        let report = dev.perf_report();
        prop_assert_eq!(report.kernel_launches, 2);
        prop_assert_eq!(report.total_flops, u128::from(flops) * 2 * blocks as u128);
    }

    /// The roofline is monotone: more work never simulates faster.
    #[test]
    fn roofline_is_monotone(f1 in 0u64..1_000_000, f2 in 0u64..1_000_000,
                            b1 in 0u64..1_000_000, b2 in 0u64..1_000_000) {
        let profile = plssvm_simgpu::backend_profile(Backend::Cuda, &hw::A100);
        let t = |f, b| plssvm_simgpu::perf::kernel_time_s(&hw::A100, &profile, Precision::F64, f, b);
        let (flo, fhi) = (f1.min(f2), f1.max(f2));
        let (blo, bhi) = (b1.min(b2), b1.max(b2));
        prop_assert!(t(flo, blo) <= t(fhi, bhi) + 1e-18);
    }

    /// Allreduce cost is monotone in bytes and in node count, and zero for
    /// one node.
    #[test]
    fn allreduce_monotone(bytes in 1u64..(1 << 30), nodes in 2usize..64) {
        let net = Interconnect::HDR_INFINIBAND;
        prop_assert_eq!(net.allreduce_time_s(bytes, 1), 0.0);
        let t = net.allreduce_time_s(bytes, nodes);
        prop_assert!(t > 0.0);
        prop_assert!(net.allreduce_time_s(bytes * 2, nodes) > t);
        prop_assert!(net.allreduce_time_s(bytes, nodes + 1) > t);
    }

    /// Fault injection is deterministic: the same plan against the same
    /// launch sequence produces the identical outcome sequence, and a
    /// tripped fail-stop is permanent.
    #[test]
    fn fault_outcomes_are_deterministic_and_fail_stop_is_permanent(
        seed in any::<u64>(),
        device_id in 0usize..3,
        launches in 1usize..24,
    ) {
        let plan = FaultPlan::seeded(seed, 3, 12);
        let a = outcome_sequence(&plan, device_id, launches);
        let b = outcome_sequence(&plan, device_id, launches);
        prop_assert_eq!(&a, &b);
        if let Some(first) = a.iter().position(|o| *o == Outcome::Failed) {
            prop_assert!(
                a[first..].iter().all(|o| *o == Outcome::Failed),
                "fail-stop must be permanent: {a:?}"
            );
        }
    }

    /// The seeded generator never fail-stops device 0 and never addresses
    /// a device outside the context, so every seeded plan is survivable.
    #[test]
    fn seeded_plans_are_always_survivable(seed in any::<u64>(), devices in 1usize..6) {
        let plan = FaultPlan::seeded(seed, devices, 16);
        prop_assert!(!plan.is_empty());
        prop_assert!(plan.max_device().is_some_and(|d| d < devices));
        prop_assert!(plan
            .events_for(0)
            .iter()
            .all(|(_, kind)| *kind != FaultKind::FailStop));
    }

    /// A transient fault fails exactly `count` consecutive attempts from
    /// its trigger and leaves every other launch untouched.
    #[test]
    fn transient_faults_fail_exactly_count_attempts(
        at in 0u64..8, count in 1u32..5, launches in 12usize..20,
    ) {
        let plan = FaultPlan::new().transient(0, at, count);
        let seq = outcome_sequence(&plan, 0, launches);
        for (i, o) in seq.iter().enumerate() {
            let faulted = (i as u64) >= at && (i as u64) < at + u64::from(count);
            prop_assert_eq!(
                matches!(o, Outcome::Timeout),
                faulted,
                "attempt {i}: {o:?}"
            );
        }
    }

    /// A slow fault stretches simulated time by its factor without
    /// changing any logical result, and failed attempts record no
    /// performance counters.
    #[test]
    fn slow_faults_scale_time_only(factor in 1.5..16.0f64) {
        let nominal = outcome_sequence(&FaultPlan::new(), 0, 1);
        let slowed = outcome_sequence(&FaultPlan::new().slow(0, 0, factor), 0, 1);
        let (Outcome::Ok { time_s: t0 }, Outcome::Ok { time_s: t1 }) =
            (&nominal[0], &slowed[0])
        else {
            return Err(TestCaseError::fail("launches must succeed"));
        };
        prop_assert!((t1 / t0 - factor).abs() < 1e-9, "{t1} / {t0} vs {factor}");

        // counters: a timed-out attempt must not record flops
        let dev = SimDevice::with_id(hw::A100, Backend::Cuda, 0);
        dev.install_fault_plan(&FaultPlan::new().transient(0, 0, 1));
        let cfg = LaunchConfig::new("k", Grid::one_d(4), Precision::F64);
        prop_assert!(dev.launch(&cfg, |_, ctx| ctx.add_flops(100)).is_err());
        prop_assert_eq!(dev.perf_report().total_flops, 0);
        prop_assert!(dev.launch(&cfg, |_, ctx| ctx.add_flops(100)).is_ok());
        prop_assert_eq!(dev.perf_report().kernel_launches, 1);
    }
}

/// Heavier randomized sweep, gated behind `--features fault-injection`
/// (adds runtime, no dependencies): hundreds of seeded plans, each checked
/// for determinism and permanence of fail-stop.
#[cfg(feature = "fault-injection")]
#[test]
fn seeded_fault_plan_stress_sweep() {
    for seed in 0..400u64 {
        let devices = 1 + (seed % 5) as usize;
        let plan = FaultPlan::seeded(seed, devices, 16);
        assert!(
            plan.max_device().is_some_and(|d| d < devices),
            "seed {seed}"
        );
        for id in 0..devices {
            let a = outcome_sequence(&plan, id, 24);
            let b = outcome_sequence(&plan, id, 24);
            assert_eq!(a, b, "seed {seed} device {id}");
            if let Some(first) = a.iter().position(|o| *o == Outcome::Failed) {
                assert!(
                    a[first..].iter().all(|o| *o == Outcome::Failed),
                    "seed {seed} device {id}: {a:?}"
                );
            }
        }
    }
}

#[test]
fn oom_failures_never_corrupt_accounting() {
    let mut spec = hw::A100;
    spec.memory_gib = 1.0 / (1 << 20) as f64; // 1 KiB budget
    let dev = SimDevice::new(spec, Backend::Cuda);
    let ok = dev.alloc::<f64>(64).unwrap(); // 512 B
    assert!(dev.alloc::<f64>(128).is_err()); // 1024 B > remaining
    assert_eq!(dev.allocated_bytes(), 512);
    drop(ok);
    assert_eq!(dev.allocated_bytes(), 0);
    // now the bigger allocation fits
    assert!(dev.alloc::<f64>(128).is_ok());
}
