//! Property-based tests of the simulated device substrate.

use proptest::prelude::*;
use rayon::prelude::*;

use plssvm_simgpu::{hw, Backend, Grid, Interconnect, LaunchConfig, Precision, SimDevice};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Memory accounting balances over arbitrary alloc/free sequences and
    /// the peak is the true high-water mark.
    #[test]
    fn memory_accounting_balances(ops in proptest::collection::vec(0usize..4096, 1..24)) {
        let dev = SimDevice::new(hw::A100, Backend::Cuda);
        let mut live = Vec::new();
        let mut expected = 0usize;
        let mut peak = 0usize;
        for (i, &len) in ops.iter().enumerate() {
            if i % 3 == 2 && !live.is_empty() {
                // free the oldest buffer
                let (buf, bytes): (plssvm_simgpu::DeviceBuffer<f64>, usize) = live.remove(0);
                drop(buf);
                expected -= bytes;
            } else {
                let buf = dev.alloc::<f64>(len).unwrap();
                expected += len * 8;
                peak = peak.max(expected);
                live.push((buf, len * 8));
            }
            prop_assert_eq!(dev.allocated_bytes(), expected);
        }
        prop_assert!(dev.peak_allocated_bytes() >= peak);
        drop(live);
        prop_assert_eq!(dev.allocated_bytes(), 0);
    }

    /// Concurrent atomicAdd accumulation is exact for integral values
    /// regardless of scheduling.
    #[test]
    fn atomic_adds_are_exact(n in 1usize..2000, slots in 1usize..8) {
        let dev = SimDevice::new(hw::A100, Backend::Cuda);
        let buf = dev.alloc_atomic::<f64>(slots).unwrap();
        (0..n).into_par_iter().for_each(|i| buf.add(i % slots, 1.0));
        let total: f64 = buf.read_to_host().iter().sum();
        prop_assert_eq!(total, n as f64);
    }

    /// Launch tallies are deterministic: the same kernel twice produces
    /// identical per-launch counters and times.
    #[test]
    fn launch_tallies_deterministic(blocks in 1usize..32, flops in 1u64..10_000) {
        let dev = SimDevice::new(hw::V100, Backend::OpenCl);
        let cfg = LaunchConfig::new("k", Grid::one_d(blocks), Precision::F64);
        let a = dev.launch(&cfg, |_, ctx| ctx.add_flops(flops)).unwrap();
        let b = dev.launch(&cfg, |_, ctx| ctx.add_flops(flops)).unwrap();
        prop_assert_eq!(a.flops, b.flops);
        prop_assert_eq!(a.flops, flops * blocks as u64);
        prop_assert!((a.sim_time_s - b.sim_time_s).abs() < 1e-15);
        let report = dev.perf_report();
        prop_assert_eq!(report.kernel_launches, 2);
        prop_assert_eq!(report.total_flops, u128::from(flops) * 2 * blocks as u128);
    }

    /// The roofline is monotone: more work never simulates faster.
    #[test]
    fn roofline_is_monotone(f1 in 0u64..1_000_000, f2 in 0u64..1_000_000,
                            b1 in 0u64..1_000_000, b2 in 0u64..1_000_000) {
        let profile = plssvm_simgpu::backend_profile(Backend::Cuda, &hw::A100);
        let t = |f, b| plssvm_simgpu::perf::kernel_time_s(&hw::A100, &profile, Precision::F64, f, b);
        let (flo, fhi) = (f1.min(f2), f1.max(f2));
        let (blo, bhi) = (b1.min(b2), b1.max(b2));
        prop_assert!(t(flo, blo) <= t(fhi, bhi) + 1e-18);
    }

    /// Allreduce cost is monotone in bytes and in node count, and zero for
    /// one node.
    #[test]
    fn allreduce_monotone(bytes in 1u64..(1 << 30), nodes in 2usize..64) {
        let net = Interconnect::HDR_INFINIBAND;
        prop_assert_eq!(net.allreduce_time_s(bytes, 1), 0.0);
        let t = net.allreduce_time_s(bytes, nodes);
        prop_assert!(t > 0.0);
        prop_assert!(net.allreduce_time_s(bytes * 2, nodes) > t);
        prop_assert!(net.allreduce_time_s(bytes, nodes + 1) > t);
    }
}

#[test]
fn oom_failures_never_corrupt_accounting() {
    let mut spec = hw::A100;
    spec.memory_gib = 1.0 / (1 << 20) as f64; // 1 KiB budget
    let dev = SimDevice::new(spec, Backend::Cuda);
    let ok = dev.alloc::<f64>(64).unwrap(); // 512 B
    assert!(dev.alloc::<f64>(128).is_err()); // 1024 B > remaining
    assert_eq!(dev.allocated_bytes(), 512);
    drop(ok);
    assert_eq!(dev.allocated_bytes(), 0);
    // now the bigger allocation fits
    assert!(dev.alloc::<f64>(128).is_ok());
}
