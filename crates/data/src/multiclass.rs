//! Multi-class data sets — the paper's §V "multi-class classifications"
//! extension.
//!
//! PLSSVM v1 supports only binary classification; LIBSVM handles
//! multi-class problems by one-vs-one decomposition over binary solvers.
//! This module provides the data side: reading LIBSVM files with more than
//! two labels and carving out the binary subproblems the decomposition
//! strategies need (`plssvm-core::multiclass` implements the solvers).

use std::path::Path;

use crate::dense::DenseMatrix;
use crate::error::{DataError, MAX_FEATURE_INDEX};
use crate::libsvm::{token_column, LabeledData};
use crate::real::Real;

/// A labeled data set with an arbitrary number of classes.
#[derive(Debug, Clone, PartialEq)]
pub struct MultiClassData<T> {
    /// The feature matrix: one row per data point.
    pub x: DenseMatrix<T>,
    /// Original integer label of every point.
    pub labels: Vec<i32>,
    /// The distinct classes, sorted ascending.
    pub classes: Vec<i32>,
}

impl<T: Real> MultiClassData<T> {
    /// Builds a data set, collecting and sorting the distinct classes.
    pub fn new(x: DenseMatrix<T>, labels: Vec<i32>) -> Result<Self, DataError> {
        if x.rows() != labels.len() {
            return Err(DataError::Invalid(format!(
                "{} data points but {} labels",
                x.rows(),
                labels.len()
            )));
        }
        let mut classes: Vec<i32> = labels.clone();
        classes.sort_unstable();
        classes.dedup();
        if classes.is_empty() {
            return Err(DataError::Invalid("no data points".into()));
        }
        Ok(Self { x, labels, classes })
    }

    /// Number of data points.
    pub fn points(&self) -> usize {
        self.x.rows()
    }

    /// Number of features.
    pub fn features(&self) -> usize {
        self.x.cols()
    }

    /// Number of distinct classes.
    pub fn num_classes(&self) -> usize {
        self.classes.len()
    }

    /// Points per class, in `classes` order.
    pub fn class_counts(&self) -> Vec<usize> {
        self.classes
            .iter()
            .map(|c| self.labels.iter().filter(|l| *l == c).count())
            .collect()
    }

    /// The binary one-vs-one subproblem of classes `a` (+1) vs `b` (−1):
    /// only points of those two classes, labels mapped to ±1 with
    /// `label_map = [a, b]`.
    pub fn pair_subset(&self, a: i32, b: i32) -> Result<LabeledData<T>, DataError> {
        if a == b {
            return Err(DataError::Invalid("pair classes must differ".into()));
        }
        let indices: Vec<usize> = (0..self.points())
            .filter(|&i| self.labels[i] == a || self.labels[i] == b)
            .collect();
        if indices.is_empty() {
            return Err(DataError::Invalid(format!(
                "no points with class {a} or {b}"
            )));
        }
        let y: Vec<T> = indices
            .iter()
            .map(|&i| if self.labels[i] == a { T::ONE } else { -T::ONE })
            .collect();
        LabeledData::with_label_map(self.x.select_rows(&indices), y, [a, b])
    }

    /// The binary one-vs-rest subproblem of class `c` (+1) vs all others
    /// (−1, marked with the sentinel `i32::MIN` in the label map).
    pub fn one_vs_rest(&self, c: i32) -> Result<LabeledData<T>, DataError> {
        if !self.classes.contains(&c) {
            return Err(DataError::Invalid(format!("class {c} not in data")));
        }
        let y: Vec<T> = self
            .labels
            .iter()
            .map(|&l| if l == c { T::ONE } else { -T::ONE })
            .collect();
        LabeledData::with_label_map(self.x.clone(), y, [c, i32::MIN])
    }

    /// Restricts the data to the binary case if exactly two classes are
    /// present (lets callers reuse the binary pipeline transparently).
    pub fn as_binary(&self) -> Option<Result<LabeledData<T>, DataError>> {
        if self.classes.len() == 2 {
            Some(self.pair_subset(self.classes[0], self.classes[1]))
        } else {
            None
        }
    }
}

/// Parses LIBSVM content with any number of integer labels.
pub fn read_libsvm_multiclass_str<T: Real>(
    content: &str,
    num_features: Option<usize>,
) -> Result<MultiClassData<T>, DataError> {
    let mut rows: Vec<(i32, Vec<(usize, T)>)> = Vec::new();
    let mut max_index = 0usize;
    for (lineno, line) in content.lines().enumerate() {
        let lineno = lineno + 1;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut tokens = line.split_ascii_whitespace();
        let label_tok = tokens
            .next()
            .ok_or_else(|| DataError::parse(lineno, "missing label"))?;
        let label: f64 = label_tok
            .parse()
            .map_err(|_| DataError::parse(lineno, format!("invalid label '{label_tok}'")))?;
        if !label.is_finite() || label.fract() != 0.0 || label.abs() > i32::MAX as f64 {
            return Err(DataError::parse(
                lineno,
                format!("classification labels must be integers, got '{label_tok}'"),
            ));
        }
        let mut entries = Vec::new();
        for tok in tokens {
            let col = token_column(line, tok);
            let (idx_s, val_s) = tok.split_once(':').ok_or_else(|| {
                DataError::parse_at(lineno, col, format!("expected 'index:value', got '{tok}'"))
            })?;
            let idx: usize = idx_s.trim().parse().map_err(|_| {
                DataError::parse_at(lineno, col, format!("invalid index '{idx_s}'"))
            })?;
            if idx == 0 {
                return Err(DataError::parse_at(
                    lineno,
                    col,
                    "feature indices are 1-based",
                ));
            }
            if idx > MAX_FEATURE_INDEX {
                return Err(DataError::parse_at(
                    lineno,
                    col,
                    format!(
                        "feature index {idx} exceeds the supported maximum {MAX_FEATURE_INDEX}"
                    ),
                ));
            }
            let val: T = val_s.trim().parse().map_err(|_| {
                DataError::parse_at(lineno, col, format!("invalid value '{val_s}'"))
            })?;
            max_index = max_index.max(idx);
            entries.push((idx - 1, val));
        }
        rows.push((label as i32, entries));
    }
    if rows.is_empty() {
        return Err(DataError::Invalid(
            "data file contains no data points".into(),
        ));
    }
    let features = match num_features {
        Some(n) if n >= max_index => n,
        Some(n) => {
            return Err(DataError::Invalid(format!(
                "requested {n} features but data contains index {max_index}"
            )))
        }
        None => max_index,
    };
    if features == 0 {
        return Err(DataError::Invalid(
            "data file contains no feature entries".into(),
        ));
    }
    let mut x = DenseMatrix::zeros(rows.len(), features);
    let mut labels = Vec::with_capacity(rows.len());
    for (p, (label, entries)) in rows.into_iter().enumerate() {
        labels.push(label);
        let row = x.row_mut(p);
        for (idx, val) in entries {
            row[idx] = val;
        }
    }
    MultiClassData::new(x, labels)
}

/// Reads a multi-class LIBSVM file from disk.
pub fn read_libsvm_multiclass_file<T: Real>(
    path: impl AsRef<Path>,
    num_features: Option<usize>,
) -> Result<MultiClassData<T>, DataError> {
    let path = path.as_ref();
    let content = std::fs::read_to_string(path).map_err(|e| DataError::io_path(path, e))?;
    read_libsvm_multiclass_str(&content, num_features)
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
3 1:1 2:0.5
1 1:-1
2 2:2
3 1:0.5 2:0.5
1 2:-1
";

    #[test]
    fn parses_three_classes() {
        let d: MultiClassData<f64> = read_libsvm_multiclass_str(SAMPLE, None).unwrap();
        assert_eq!(d.points(), 5);
        assert_eq!(d.features(), 2);
        assert_eq!(d.classes, vec![1, 2, 3]);
        assert_eq!(d.num_classes(), 3);
        assert_eq!(d.class_counts(), vec![2, 1, 2]);
        assert_eq!(d.labels, vec![3, 1, 2, 3, 1]);
    }

    #[test]
    fn pair_subset_maps_labels() {
        let d: MultiClassData<f64> = read_libsvm_multiclass_str(SAMPLE, None).unwrap();
        let pair = d.pair_subset(3, 1).unwrap();
        assert_eq!(pair.points(), 4);
        assert_eq!(pair.label_map, [3, 1]);
        assert_eq!(pair.y, vec![1.0, -1.0, 1.0, -1.0]);
        // rows preserved in order
        assert_eq!(pair.x.row(0), d.x.row(0));
        assert_eq!(pair.x.row(1), d.x.row(1));
        assert!(d.pair_subset(1, 1).is_err());
        assert!(d.pair_subset(7, 9).is_err());
    }

    #[test]
    fn one_vs_rest_covers_all_points() {
        let d: MultiClassData<f64> = read_libsvm_multiclass_str(SAMPLE, None).unwrap();
        let ovr = d.one_vs_rest(2).unwrap();
        assert_eq!(ovr.points(), 5);
        assert_eq!(ovr.y, vec![-1.0, -1.0, 1.0, -1.0, -1.0]);
        assert_eq!(ovr.label_map, [2, i32::MIN]);
        assert!(d.one_vs_rest(99).is_err());
    }

    #[test]
    fn binary_detection() {
        let d: MultiClassData<f64> =
            read_libsvm_multiclass_str("1 1:1\n-1 1:2\n1 1:3\n", None).unwrap();
        let bin = d.as_binary().unwrap().unwrap();
        assert_eq!(bin.label_map, [-1, 1]); // classes sorted ascending
        let d3: MultiClassData<f64> = read_libsvm_multiclass_str(SAMPLE, None).unwrap();
        assert!(d3.as_binary().is_none());
    }

    #[test]
    fn rejects_bad_input() {
        assert!(read_libsvm_multiclass_str::<f64>("", None).is_err());
        assert!(read_libsvm_multiclass_str::<f64>("1.5 1:1\n", None).is_err());
        assert!(read_libsvm_multiclass_str::<f64>("1 0:1\n", None).is_err());
        assert!(read_libsvm_multiclass_str::<f64>("1 1:1 2:b\n", None).is_err());
        assert!(read_libsvm_multiclass_str::<f64>("1 4:1\n", Some(2)).is_err());
        let x = DenseMatrix::from_rows(vec![vec![1.0f64]]).unwrap();
        assert!(MultiClassData::new(x, vec![1, 2]).is_err());
    }

    #[test]
    fn single_class_is_allowed_at_data_level() {
        let d: MultiClassData<f64> = read_libsvm_multiclass_str("5 1:1\n5 1:2\n", None).unwrap();
        assert_eq!(d.num_classes(), 1);
        assert!(d.as_binary().is_none());
    }
}
