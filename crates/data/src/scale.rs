//! Feature scaling — the `svm-scale` utility.
//!
//! The paper scales all SAT-6 features to `[-1, 1]` with LIBSVM's
//! `svm-scale`. This module reproduces that tool: fit per-feature
//! `min`/`max` ranges on training data, linearly map every feature into the
//! target interval, and save/restore the ranges in LIBSVM's range-file
//! format so test data can be scaled identically.

use std::fs::File;
use std::io::{BufReader, Read};
use std::path::Path;

use crate::dense::DenseMatrix;
use crate::error::{DataError, MAX_FEATURE_INDEX};
use crate::io::write_atomic;
use crate::libsvm::FmtReal;
use crate::real::Real;

/// Fitted per-feature scaling parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct ScalingParams<T> {
    /// Lower bound of the target interval.
    pub lower: T,
    /// Upper bound of the target interval.
    pub upper: T,
    /// Per-feature `(min, max)` observed on the fitting data.
    pub ranges: Vec<(T, T)>,
}

impl<T: Real> ScalingParams<T> {
    /// Computes per-feature min/max from `data` for scaling into
    /// `[lower, upper]`.
    pub fn fit(data: &DenseMatrix<T>, lower: T, upper: T) -> Result<Self, DataError> {
        if lower.to_f64() >= upper.to_f64() {
            return Err(DataError::Invalid(format!(
                "scaling interval is empty: [{lower}, {upper}]"
            )));
        }
        let mut ranges = vec![(T::ZERO, T::ZERO); data.cols()];
        for (f, range) in ranges.iter_mut().enumerate() {
            let mut lo = data.get(0, f);
            let mut hi = lo;
            for p in 1..data.rows() {
                let v = data.get(p, f);
                lo = lo.min(v);
                hi = hi.max(v);
            }
            *range = (lo, hi);
        }
        Ok(Self {
            lower,
            upper,
            ranges,
        })
    }

    /// Scales a matrix in place. Constant features (min == max) are mapped
    /// to zero, matching `svm-scale` (which drops them from its sparse
    /// output, i.e. makes them zero).
    pub fn apply(&self, data: &mut DenseMatrix<T>) -> Result<(), DataError> {
        if data.cols() != self.ranges.len() {
            return Err(DataError::Invalid(format!(
                "scaling fitted on {} features, data has {}",
                self.ranges.len(),
                data.cols()
            )));
        }
        let span = self.upper - self.lower;
        for p in 0..data.rows() {
            for (f, &(lo, hi)) in self.ranges.iter().enumerate() {
                let v = data.get(p, f);
                let scaled = if lo.to_f64() == hi.to_f64() {
                    T::ZERO
                } else {
                    self.lower + span * (v - lo) / (hi - lo)
                };
                data.set(p, f, scaled);
            }
        }
        Ok(())
    }

    /// Serializes the ranges in LIBSVM's range-file format (`svm-scale -s`).
    pub fn to_range_string(&self) -> String {
        let mut out = String::from("x\n");
        out.push_str(&format!(
            "{} {}\n",
            FmtReal(self.lower),
            FmtReal(self.upper)
        ));
        for (f, &(lo, hi)) in self.ranges.iter().enumerate() {
            out.push_str(&format!("{} {} {}\n", f + 1, FmtReal(lo), FmtReal(hi)));
        }
        out
    }

    /// Writes the range file to disk atomically and durably (temp file +
    /// fsync + rename + parent-directory fsync), so an interrupted
    /// `svm-scale -s` can never leave a truncated range file behind.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), DataError> {
        write_atomic(path, self.to_range_string().as_bytes())
    }

    /// [`ScalingParams::save`] through an explicit [`Vfs`](crate::vfs::Vfs).
    pub fn save_with(&self, vfs: &dyn crate::vfs::Vfs, path: &Path) -> Result<(), DataError> {
        crate::io::write_atomic_with(vfs, path, self.to_range_string().as_bytes())
    }

    /// Parses a range file (`svm-scale -r`).
    pub fn from_range_string(content: &str) -> Result<Self, DataError> {
        let mut lines = content.lines().enumerate();
        let (_, first) = lines
            .next()
            .ok_or_else(|| DataError::Invalid("empty range file".into()))?;
        if first.trim() != "x" {
            return Err(DataError::parse(1, "range file must start with 'x'"));
        }
        let (_, bounds) = lines
            .next()
            .ok_or_else(|| DataError::Invalid("range file misses bounds line".into()))?;
        let mut it = bounds.split_ascii_whitespace();
        let lower: T = it
            .next()
            .and_then(|t| t.parse().ok())
            .ok_or_else(|| DataError::parse(2, "invalid lower bound"))?;
        let upper: T = it
            .next()
            .and_then(|t| t.parse().ok())
            .ok_or_else(|| DataError::parse(2, "invalid upper bound"))?;

        let mut ranges: Vec<(usize, T, T)> = Vec::new();
        for (lineno, line) in lines {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let mut it = line.split_ascii_whitespace();
            let idx: usize = it
                .next()
                .and_then(|t| t.parse().ok())
                .ok_or_else(|| DataError::parse(lineno + 1, "invalid feature index"))?;
            let lo: T = it
                .next()
                .and_then(|t| t.parse().ok())
                .ok_or_else(|| DataError::parse(lineno + 1, "invalid feature min"))?;
            let hi: T = it
                .next()
                .and_then(|t| t.parse().ok())
                .ok_or_else(|| DataError::parse(lineno + 1, "invalid feature max"))?;
            if idx == 0 {
                return Err(DataError::parse(lineno + 1, "feature indices are 1-based"));
            }
            if idx > MAX_FEATURE_INDEX {
                return Err(DataError::parse(
                    lineno + 1,
                    format!(
                        "feature index {idx} exceeds the supported maximum {MAX_FEATURE_INDEX}"
                    ),
                ));
            }
            ranges.push((idx, lo, hi));
        }
        if ranges.is_empty() {
            return Err(DataError::Invalid("range file contains no features".into()));
        }
        let max_idx = ranges.iter().map(|&(i, _, _)| i).max().unwrap();
        let mut out = vec![(T::ZERO, T::ZERO); max_idx];
        for (idx, lo, hi) in ranges {
            out[idx - 1] = (lo, hi);
        }
        let params = Self {
            lower,
            upper,
            ranges: out,
        };
        if lower.to_f64() >= upper.to_f64() {
            return Err(DataError::Invalid(
                "range file has an empty interval".into(),
            ));
        }
        Ok(params)
    }

    /// Loads a range file from disk.
    pub fn load(path: impl AsRef<Path>) -> Result<Self, DataError> {
        let path = path.as_ref();
        let mut content = String::new();
        let file = File::open(path).map_err(|e| DataError::io_path(path, e))?;
        BufReader::new(file)
            .read_to_string(&mut content)
            .map_err(|e| DataError::io_path(path, e))?;
        Self::from_range_string(&content)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> DenseMatrix<f64> {
        DenseMatrix::from_rows(vec![
            vec![0.0, 10.0, 5.0],
            vec![2.0, 20.0, 5.0],
            vec![4.0, 15.0, 5.0],
        ])
        .unwrap()
    }

    #[test]
    fn fit_and_apply_maps_to_interval() {
        let mut m = sample();
        let p = ScalingParams::fit(&m, -1.0, 1.0).unwrap();
        p.apply(&mut m).unwrap();
        assert_eq!(m.get(0, 0), -1.0);
        assert_eq!(m.get(2, 0), 1.0);
        assert_eq!(m.get(1, 0), 0.0);
        assert_eq!(m.get(0, 1), -1.0);
        assert_eq!(m.get(1, 1), 1.0);
        assert_eq!(m.get(2, 1), 0.0);
        // constant feature maps to zero
        for r in 0..3 {
            assert_eq!(m.get(r, 2), 0.0);
        }
    }

    #[test]
    fn apply_to_unseen_data_can_exceed_interval() {
        let train = sample();
        let p = ScalingParams::fit(&train, 0.0, 1.0).unwrap();
        let mut test = DenseMatrix::from_rows(vec![vec![8.0, 10.0, 5.0]]).unwrap();
        p.apply(&mut test).unwrap();
        // 8 is outside the fitted [0,4] range → scaled value > 1 (LIBSVM
        // behaves the same way)
        assert_eq!(test.get(0, 0), 2.0);
    }

    #[test]
    fn rejects_empty_interval() {
        let m = sample();
        assert!(ScalingParams::fit(&m, 1.0, 1.0).is_err());
        assert!(ScalingParams::fit(&m, 2.0, -2.0).is_err());
    }

    #[test]
    fn rejects_feature_count_mismatch() {
        let m = sample();
        let p = ScalingParams::fit(&m, -1.0, 1.0).unwrap();
        let mut other = DenseMatrix::from_rows(vec![vec![1.0f64, 2.0]]).unwrap();
        assert!(p.apply(&mut other).is_err());
    }

    #[test]
    fn range_string_roundtrip() {
        let m = sample();
        let p = ScalingParams::fit(&m, -1.0, 1.0).unwrap();
        let s = p.to_range_string();
        let p2 = ScalingParams::<f64>::from_range_string(&s).unwrap();
        assert_eq!(p, p2);
    }

    #[test]
    fn range_file_roundtrip() {
        let m = sample();
        let p = ScalingParams::fit(&m, 0.0, 2.0).unwrap();
        let dir = std::env::temp_dir().join("plssvm_scale_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ranges.txt");
        p.save(&path).unwrap();
        let p2 = ScalingParams::<f64>::load(&path).unwrap();
        assert_eq!(p, p2);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn malformed_range_files_rejected() {
        assert!(ScalingParams::<f64>::from_range_string("").is_err());
        assert!(ScalingParams::<f64>::from_range_string("y\n-1 1\n1 0 1\n").is_err());
        assert!(ScalingParams::<f64>::from_range_string("x\n-1\n1 0 1\n").is_err());
        assert!(ScalingParams::<f64>::from_range_string("x\n-1 1\n").is_err());
        assert!(ScalingParams::<f64>::from_range_string("x\n-1 1\n0 0 1\n").is_err());
        assert!(ScalingParams::<f64>::from_range_string("x\n1 1\n1 0 1\n").is_err());
        assert!(ScalingParams::<f64>::from_range_string("x\n-1 1\n1 zero 1\n").is_err());
    }

    #[test]
    fn sparse_range_file_fills_missing_features_as_constant() {
        // svm-scale omits constant features from the range file; on load
        // they become (0, 0) ranges, i.e. scaled to zero.
        let p = ScalingParams::<f64>::from_range_string("x\n-1 1\n1 0 4\n3 1 2\n").unwrap();
        assert_eq!(p.ranges.len(), 3);
        assert_eq!(p.ranges[1], (0.0, 0.0));
    }
}
