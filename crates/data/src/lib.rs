//! Data handling for the PLSSVM reproduction.
//!
//! This crate provides everything "below" the solver:
//!
//! * [`real`] — the [`real::Real`] floating point abstraction
//!   (the paper's single `real_type` template parameter: `f32` or `f64`),
//! * [`dense`] — row-major [`dense::DenseMatrix`] storage and the
//!   padded, column-major (structure-of-arrays) [`dense::SoAMatrix`]
//!   device layout described in §III-A of the paper,
//! * [`libsvm`] — reading and writing the LIBSVM sparse text format (sparse
//!   input is densified, exactly as PLSSVM does),
//! * [`model`] — LIBSVM-compatible model files,
//! * [`scale`] — feature scaling to a target interval (the `svm-scale` tool),
//! * [`checkpoint`] — the durable CG checkpoint format and journal,
//! * [`io`] — atomic, durable file writes shared by all artifact writers,
//! * [`vfs`] — the virtual filesystem those writes go through, with a
//!   deterministic storage-fault injector ([`vfs::FaultVfs`]) for chaos
//!   testing the durability paths,
//! * [`synthetic`] — the `generate_data.py` "planes" problem generator built
//!   on `make_classification` semantics,
//! * [`sat6`] — a synthetic stand-in for the SAT-6 airborne data set,
//! * [`split`] — train/test splitting utilities,
//! * [`sampling`] — deterministic landmark/sketch sampling for the
//!   randomized low-rank (Nyström) solver path.

#![warn(missing_docs)]

pub mod arff;
pub mod checkpoint;
pub mod dense;
pub mod error;
pub mod io;
pub mod libsvm;
pub mod model;
pub mod multiclass;
pub mod real;
pub mod sampling;
pub mod sat6;
pub mod scale;
pub mod sparse;
pub mod split;
pub mod synthetic;
pub mod vfs;

pub use checkpoint::{CheckpointError, CheckpointJournal, Snapshot};
pub use dense::{DenseMatrix, SoAMatrix};
pub use error::{DataError, MAX_FEATURE_INDEX};
pub use io::{write_atomic, write_atomic_with};
pub use libsvm::{read_libsvm_file, read_libsvm_str, write_libsvm_file, LabeledData};
pub use real::Real;
pub use sparse::CsrMatrix;
pub use vfs::{FaultPlan, FaultVfs, RealVfs, Vfs};
