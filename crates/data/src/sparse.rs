//! Compressed sparse row (CSR) storage.
//!
//! PLSSVM v1 treats all data as dense ("sparse data sets … are treated as
//! if they would represent dense data"), and its §V names "consider sparse
//! data structures for the CG solver" as a canonical next step. This
//! module provides the CSR substrate for both the sparse LIBSVM baseline
//! (`plssvm-smo`) and the sparse CPU backend extension of `plssvm-core`.

use crate::dense::DenseMatrix;
use crate::real::Real;

/// A CSR matrix: rows of `(column, value)` pairs with explicit zeros
/// dropped.
#[derive(Debug, Clone, PartialEq)]
pub struct CsrMatrix<T> {
    rows: usize,
    cols: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<u32>,
    values: Vec<T>,
}

impl<T: Real> CsrMatrix<T> {
    /// Compresses a dense matrix, dropping explicit zeros.
    pub fn from_dense(x: &DenseMatrix<T>) -> Self {
        let mut row_ptr = Vec::with_capacity(x.rows() + 1);
        let mut col_idx = Vec::new();
        let mut values = Vec::new();
        row_ptr.push(0);
        for row in x.rows_iter() {
            for (f, &v) in row.iter().enumerate() {
                if v.to_f64() != 0.0 {
                    col_idx.push(f as u32);
                    values.push(v);
                }
            }
            row_ptr.push(values.len());
        }
        Self {
            rows: x.rows(),
            cols: x.cols(),
            row_ptr,
            col_idx,
            values,
        }
    }

    /// Number of rows (data points).
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns (features).
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored non-zeros.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Density `nnz / (rows·cols)` in `[0, 1]`.
    pub fn density(&self) -> f64 {
        if self.rows == 0 || self.cols == 0 {
            0.0
        } else {
            self.nnz() as f64 / (self.rows * self.cols) as f64
        }
    }

    /// The `(columns, values)` pair lists of row `i`.
    pub fn row(&self, i: usize) -> (&[u32], &[T]) {
        let lo = self.row_ptr[i];
        let hi = self.row_ptr[i + 1];
        (&self.col_idx[lo..hi], &self.values[lo..hi])
    }

    /// Sparse·sparse dot product of two rows by index merge (LIBSVM's
    /// `dot`).
    pub fn sparse_dot(&self, i: usize, j: usize) -> T {
        let (ia, va) = self.row(i);
        let (ib, vb) = self.row(j);
        let mut acc = T::ZERO;
        let (mut p, mut q) = (0usize, 0usize);
        while p < ia.len() && q < ib.len() {
            match ia[p].cmp(&ib[q]) {
                std::cmp::Ordering::Equal => {
                    acc = va[p].mul_add(vb[q], acc);
                    p += 1;
                    q += 1;
                }
                std::cmp::Ordering::Less => p += 1,
                std::cmp::Ordering::Greater => q += 1,
            }
        }
        acc
    }

    /// Squared euclidean distance between two rows:
    /// `‖a‖² + ‖b‖² − 2⟨a,b⟩` computed sparsely by index merge (exact,
    /// without materializing either row).
    pub fn sparse_dist_sq(&self, i: usize, j: usize) -> T {
        let (ia, va) = self.row(i);
        let (ib, vb) = self.row(j);
        let mut acc = T::ZERO;
        let (mut p, mut q) = (0usize, 0usize);
        while p < ia.len() && q < ib.len() {
            match ia[p].cmp(&ib[q]) {
                std::cmp::Ordering::Equal => {
                    let d = va[p] - vb[q];
                    acc = d.mul_add(d, acc);
                    p += 1;
                    q += 1;
                }
                std::cmp::Ordering::Less => {
                    acc = va[p].mul_add(va[p], acc);
                    p += 1;
                }
                std::cmp::Ordering::Greater => {
                    acc = vb[q].mul_add(vb[q], acc);
                    q += 1;
                }
            }
        }
        while p < ia.len() {
            acc = va[p].mul_add(va[p], acc);
            p += 1;
        }
        while q < ib.len() {
            acc = vb[q].mul_add(vb[q], acc);
            q += 1;
        }
        acc
    }

    /// Reconstructs the dense representation.
    pub fn to_dense(&self) -> DenseMatrix<T> {
        let mut out = DenseMatrix::zeros(self.rows, self.cols);
        for i in 0..self.rows {
            let (cols, vals) = self.row(i);
            let row = out.row_mut(i);
            for (&c, &v) in cols.iter().zip(vals) {
                row[c as usize] = v;
            }
        }
        out
    }

    /// Memory footprint of the CSR arrays in bytes.
    pub fn byte_size(&self) -> usize {
        self.row_ptr.len() * std::mem::size_of::<usize>()
            + self.col_idx.len() * std::mem::size_of::<u32>()
            + self.values.len() * T::BYTES
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> DenseMatrix<f64> {
        DenseMatrix::from_rows(vec![
            vec![1.0, 0.0, 2.0, 0.0],
            vec![0.0, 3.0, 4.0, 0.0],
            vec![0.0, 0.0, 0.0, 0.0],
            vec![5.0, 6.0, 7.0, 8.0],
        ])
        .unwrap()
    }

    #[test]
    fn compression_drops_zeros() {
        let csr = CsrMatrix::from_dense(&sample());
        assert_eq!(csr.rows(), 4);
        assert_eq!(csr.cols(), 4);
        assert_eq!(csr.nnz(), 8);
        assert_eq!(csr.density(), 0.5);
        let (cols, vals) = csr.row(0);
        assert_eq!(cols, &[0, 2]);
        assert_eq!(vals, &[1.0, 2.0]);
        let (cols, _) = csr.row(2);
        assert!(cols.is_empty());
    }

    #[test]
    fn roundtrip_to_dense() {
        let d = sample();
        assert_eq!(CsrMatrix::from_dense(&d).to_dense(), d);
    }

    #[test]
    fn sparse_dot_matches_dense() {
        let d = sample();
        let csr = CsrMatrix::from_dense(&d);
        for i in 0..4 {
            for j in 0..4 {
                let dense: f64 = (0..4).map(|f| d.get(i, f) * d.get(j, f)).sum();
                assert_eq!(csr.sparse_dot(i, j), dense, "dot({i},{j})");
            }
        }
    }

    #[test]
    fn sparse_dist_matches_dense() {
        let d = sample();
        let csr = CsrMatrix::from_dense(&d);
        for i in 0..4 {
            for j in 0..4 {
                let dense: f64 = (0..4)
                    .map(|f| {
                        let diff = d.get(i, f) - d.get(j, f);
                        diff * diff
                    })
                    .sum();
                assert!(
                    (csr.sparse_dist_sq(i, j) - dense).abs() < 1e-12,
                    "dist({i},{j})"
                );
            }
        }
    }

    #[test]
    fn empty_row_dots_to_zero() {
        let csr = CsrMatrix::from_dense(&sample());
        assert_eq!(csr.sparse_dot(2, 3), 0.0);
        // dist(empty, row3) = ||row3||²
        assert_eq!(csr.sparse_dist_sq(2, 3), 25.0 + 36.0 + 49.0 + 64.0);
    }

    #[test]
    fn byte_size_scales_with_nnz() {
        let dense = sample();
        let csr = CsrMatrix::from_dense(&dense);
        let dense_bytes = dense.rows() * dense.cols() * 8;
        assert!(csr.byte_size() < dense_bytes + 5 * 8 + 8);
    }
}
