//! Atomic, durable file writes shared by every artifact writer.
//!
//! A plain `File::create` + write leaves a truncated file behind when the
//! process dies mid-write, and even a completed write may not survive a
//! power loss until the data *and* the directory entry are fsynced. Every
//! artifact the workspace persists — model files, scale ranges, checkpoint
//! snapshots, telemetry JSON lines — goes through [`write_atomic`]:
//!
//! 1. write the full contents to a unique temporary file in the *same*
//!    directory (rename is only atomic within a filesystem),
//! 2. `fsync` the temporary file,
//! 3. verify the temporary file's on-disk length matches what was
//!    written (a silent short write must not be installed),
//! 4. `rename` it over the destination (atomic replace on POSIX),
//! 5. `fsync` the parent directory so the rename itself is durable.
//!
//! Readers therefore observe either the old contents or the complete new
//! contents, never a torn intermediate state.
//!
//! All filesystem access goes through a [`Vfs`] so the storage-fault
//! injector ([`crate::vfs::FaultVfs`]) can exercise every failure point;
//! [`write_atomic`] is the production entry point over [`RealVfs`], and
//! [`write_atomic_with`] takes an explicit [`Vfs`].

use std::path::{Component, Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use crate::error::DataError;
use crate::vfs::{RealVfs, Vfs};

/// Process-wide counter making concurrent temp names unique.
static TEMP_SEQ: AtomicU64 = AtomicU64::new(0);

/// The parent directory of `path`, defaulting to `.` for bare file names.
fn parent_dir(path: &Path) -> PathBuf {
    match path.parent() {
        Some(p) if p.as_os_str().is_empty() => PathBuf::from("."),
        Some(p) => p.to_path_buf(),
        None => PathBuf::from("."),
    }
}

/// A temp-file name unique across threads and processes, placed next to
/// the destination so the final rename stays within one filesystem.
fn temp_path_for(path: &Path) -> PathBuf {
    let stem = path
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_else(|| "artifact".to_owned());
    let seq = TEMP_SEQ.fetch_add(1, Ordering::Relaxed);
    parent_dir(path).join(format!(".{stem}.tmp.{}.{seq}", std::process::id()))
}

/// Atomically and durably replaces `path` with `bytes` via [`RealVfs`].
///
/// On error the destination is untouched (modulo a leftover `.tmp` file,
/// which subsequent successful writes never observe).
pub fn write_atomic(path: impl AsRef<Path>, bytes: &[u8]) -> Result<(), DataError> {
    write_atomic_with(&RealVfs, path.as_ref(), bytes)
}

/// Atomically and durably replaces `path` with `bytes` through `vfs`.
///
/// Identical guarantees to [`write_atomic`]; the explicit [`Vfs`] lets
/// fault-injection harnesses and the `--io-faults` CLI flag drive every
/// step (temp write, fsync, length check, rename, directory fsync)
/// through scheduled storage failures.
pub fn write_atomic_with(vfs: &dyn Vfs, path: &Path, bytes: &[u8]) -> Result<(), DataError> {
    let tmp = temp_path_for(path);
    let result = (|| {
        vfs.create_write(&tmp, bytes)
            .map_err(|e| DataError::io_path(&tmp, e))?;
        vfs.sync_file(&tmp)
            .map_err(|e| DataError::io_path(&tmp, e))?;
        // A short write that reported success would otherwise be renamed
        // into place as a "valid" artifact; refuse to install it.
        let on_disk = vfs
            .file_len(&tmp)
            .map_err(|e| DataError::io_path(&tmp, e))?;
        if on_disk != bytes.len() as u64 {
            return Err(DataError::io_path(
                &tmp,
                std::io::Error::other(format!(
                    "short write: {on_disk} of {} bytes reached disk",
                    bytes.len()
                )),
            ));
        }
        vfs.rename(&tmp, path)
            .map_err(|e| DataError::io_path(path, e))?;
        vfs.sync_dir(&parent_dir(path))
            .map_err(|e| DataError::io_path(parent_dir(path), e))
    })();
    if result.is_err() {
        let _ = vfs.remove_file(&tmp);
    }
    result
}

/// Durably creates a directory (and its parents), fsyncing the grandparent
/// so the new entry survives a crash. Uses [`RealVfs`].
pub fn create_dir_durable(dir: impl AsRef<Path>) -> Result<(), DataError> {
    create_dir_durable_with(&RealVfs, dir.as_ref())
}

/// [`create_dir_durable`] through an explicit [`Vfs`].
pub fn create_dir_durable_with(vfs: &dyn Vfs, dir: &Path) -> Result<(), DataError> {
    vfs.create_dir_all(dir)
        .map_err(|e| DataError::io_path(dir, e))?;
    // Walk up and fsync each ancestor we may have created. Syncing an
    // already-durable directory is harmless, so sync them all.
    let mut current = dir.to_path_buf();
    loop {
        vfs.sync_dir(&current)
            .map_err(|e| DataError::io_path(&current, e))?;
        match current.parent() {
            Some(p)
                if !p.as_os_str().is_empty()
                    && !matches!(p.components().next_back(), Some(Component::RootDir)) =>
            {
                current = p.to_path_buf();
            }
            _ => break,
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("plssvm_io_{tag}_{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn writes_new_file() {
        let dir = temp_dir("new");
        let path = dir.join("a.txt");
        write_atomic(&path, b"hello").unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"hello");
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn replaces_existing_file() {
        let dir = temp_dir("replace");
        let path = dir.join("a.txt");
        fs::write(&path, b"old").unwrap();
        write_atomic(&path, b"new contents").unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"new contents");
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn no_temp_file_left_behind() {
        let dir = temp_dir("clean");
        write_atomic(dir.join("a.txt"), b"x").unwrap();
        let leftovers: Vec<_> = fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().contains(".tmp."))
            .collect();
        assert!(leftovers.is_empty(), "{leftovers:?}");
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn error_reports_path() {
        let missing = temp_dir("err").join("nope").join("a.txt");
        let err = write_atomic(&missing, b"x").unwrap_err();
        assert!(err.to_string().contains("nope"), "{err}");
    }

    #[test]
    fn bare_file_name_resolves_to_cwd() {
        // never mutate the process CWD in a test — just check the helper
        assert_eq!(parent_dir(Path::new("bare.txt")), PathBuf::from("."));
        assert_eq!(parent_dir(Path::new("a/b.txt")), PathBuf::from("a"));
        let tmp = temp_path_for(Path::new("bare.txt"));
        assert_eq!(tmp.parent(), Some(Path::new(".")));
    }

    #[test]
    fn create_dir_durable_is_idempotent() {
        let dir = temp_dir("mkdir").join("a").join("b");
        create_dir_durable(&dir).unwrap();
        create_dir_durable(&dir).unwrap();
        assert!(dir.is_dir());
        fs::remove_dir_all(dir.parent().unwrap().parent().unwrap()).ok();
    }

    #[test]
    fn short_write_is_refused_and_old_contents_survive() {
        use crate::vfs::{FaultKind, FaultPlan, FaultVfs, OpClass};
        let dir = temp_dir("short");
        let path = dir.join("a.txt");
        fs::write(&path, b"old contents").unwrap();
        let vfs = FaultVfs::new(FaultPlan::new().fault(
            FaultKind::ShortWrite,
            OpClass::Write,
            0,
            None,
            false,
        ));
        let err = write_atomic_with(&vfs, &path, b"replacement!").unwrap_err();
        assert!(err.to_string().contains("short write"), "{err}");
        assert_eq!(fs::read(&path).unwrap(), b"old contents");
        fs::remove_dir_all(&dir).ok();
    }
}
