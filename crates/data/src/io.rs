//! Atomic, durable file writes shared by every artifact writer.
//!
//! A plain `File::create` + write leaves a truncated file behind when the
//! process dies mid-write, and even a completed write may not survive a
//! power loss until the data *and* the directory entry are fsynced. Every
//! artifact the workspace persists — model files, scale ranges, checkpoint
//! snapshots, telemetry JSON lines — goes through [`write_atomic`]:
//!
//! 1. write the full contents to a unique temporary file in the *same*
//!    directory (rename is only atomic within a filesystem),
//! 2. `fsync` the temporary file,
//! 3. `rename` it over the destination (atomic replace on POSIX),
//! 4. `fsync` the parent directory so the rename itself is durable.
//!
//! Readers therefore observe either the old contents or the complete new
//! contents, never a torn intermediate state.

use std::fs::{self, File, OpenOptions};
use std::io::Write;
use std::path::{Component, Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use crate::error::DataError;

/// Process-wide counter making concurrent temp names unique.
static TEMP_SEQ: AtomicU64 = AtomicU64::new(0);

/// The parent directory of `path`, defaulting to `.` for bare file names.
fn parent_dir(path: &Path) -> PathBuf {
    match path.parent() {
        Some(p) if p.as_os_str().is_empty() => PathBuf::from("."),
        Some(p) => p.to_path_buf(),
        None => PathBuf::from("."),
    }
}

/// A temp-file name unique across threads and processes, placed next to
/// the destination so the final rename stays within one filesystem.
fn temp_path_for(path: &Path) -> PathBuf {
    let stem = path
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_else(|| "artifact".to_owned());
    let seq = TEMP_SEQ.fetch_add(1, Ordering::Relaxed);
    parent_dir(path).join(format!(".{stem}.tmp.{}.{seq}", std::process::id()))
}

/// Fsyncs a directory so a rename inside it survives a crash. Directory
/// handles cannot be fsynced on all platforms; where the open or sync is
/// unsupported the error is reported, except on non-unix targets where
/// directory sync is silently skipped (no durable equivalent exists).
fn sync_dir(dir: &Path) -> Result<(), DataError> {
    #[cfg(unix)]
    {
        let handle = File::open(dir).map_err(|e| DataError::io_path(dir, e))?;
        handle.sync_all().map_err(|e| DataError::io_path(dir, e))?;
    }
    #[cfg(not(unix))]
    {
        let _ = dir;
    }
    Ok(())
}

/// Atomically and durably replaces `path` with `bytes`.
///
/// On error the destination is untouched (modulo a leftover `.tmp` file,
/// which subsequent successful writes never observe).
pub fn write_atomic(path: impl AsRef<Path>, bytes: &[u8]) -> Result<(), DataError> {
    let path = path.as_ref();
    let tmp = temp_path_for(path);
    let result = (|| {
        let mut file = OpenOptions::new()
            .write(true)
            .create_new(true)
            .open(&tmp)
            .map_err(|e| DataError::io_path(&tmp, e))?;
        file.write_all(bytes)
            .map_err(|e| DataError::io_path(&tmp, e))?;
        file.sync_all().map_err(|e| DataError::io_path(&tmp, e))?;
        drop(file);
        fs::rename(&tmp, path).map_err(|e| DataError::io_path(path, e))?;
        sync_dir(&parent_dir(path))
    })();
    if result.is_err() {
        let _ = fs::remove_file(&tmp);
    }
    result
}

/// Durably creates a directory (and its parents), fsyncing the grandparent
/// so the new entry survives a crash.
pub fn create_dir_durable(dir: impl AsRef<Path>) -> Result<(), DataError> {
    let dir = dir.as_ref();
    fs::create_dir_all(dir).map_err(|e| DataError::io_path(dir, e))?;
    // Walk up and fsync each ancestor we may have created. Syncing an
    // already-durable directory is harmless, so sync them all.
    let mut current = dir.to_path_buf();
    loop {
        sync_dir(&current)?;
        match current.parent() {
            Some(p)
                if !p.as_os_str().is_empty()
                    && !matches!(p.components().next_back(), Some(Component::RootDir)) =>
            {
                current = p.to_path_buf();
            }
            _ => break,
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("plssvm_io_{tag}_{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn writes_new_file() {
        let dir = temp_dir("new");
        let path = dir.join("a.txt");
        write_atomic(&path, b"hello").unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"hello");
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn replaces_existing_file() {
        let dir = temp_dir("replace");
        let path = dir.join("a.txt");
        fs::write(&path, b"old").unwrap();
        write_atomic(&path, b"new contents").unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"new contents");
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn no_temp_file_left_behind() {
        let dir = temp_dir("clean");
        write_atomic(dir.join("a.txt"), b"x").unwrap();
        let leftovers: Vec<_> = fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().contains(".tmp."))
            .collect();
        assert!(leftovers.is_empty(), "{leftovers:?}");
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn error_reports_path() {
        let missing = temp_dir("err").join("nope").join("a.txt");
        let err = write_atomic(&missing, b"x").unwrap_err();
        assert!(err.to_string().contains("nope"), "{err}");
    }

    #[test]
    fn bare_file_name_resolves_to_cwd() {
        // never mutate the process CWD in a test — just check the helper
        assert_eq!(parent_dir(Path::new("bare.txt")), PathBuf::from("."));
        assert_eq!(parent_dir(Path::new("a/b.txt")), PathBuf::from("a"));
        let tmp = temp_path_for(Path::new("bare.txt"));
        assert_eq!(tmp.parent(), Some(Path::new(".")));
    }

    #[test]
    fn create_dir_durable_is_idempotent() {
        let dir = temp_dir("mkdir").join("a").join("b");
        create_dir_durable(&dir).unwrap();
        create_dir_durable(&dir).unwrap();
        assert!(dir.is_dir());
        fs::remove_dir_all(dir.parent().unwrap().parent().unwrap()).ok();
    }
}
