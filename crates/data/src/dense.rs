//! Dense matrix storage.
//!
//! Two layouts are provided, mirroring §III-A of the paper:
//!
//! * [`DenseMatrix`] — the row-major (point-major, array-of-structures)
//!   layout the data is initially parsed into. One row per data point.
//! * [`SoAMatrix`] — the column-major (feature-major, structure-of-arrays)
//!   layout the data is *transformed* into before it is uploaded to a
//!   device. Points are padded to a multiple of the device block size so
//!   that kernels never have to check boundary conditions (§III-C-1).

use crate::error::DataError;
use crate::real::Real;

/// A dense, row-major matrix: `rows` data points with `cols` features each.
#[derive(Debug, Clone, PartialEq)]
pub struct DenseMatrix<T> {
    rows: usize,
    cols: usize,
    data: Vec<T>,
}

impl<T: Real> DenseMatrix<T> {
    /// Creates a zero-filled matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![T::ZERO; rows * cols],
        }
    }

    /// Builds a matrix from a flat row-major buffer.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<T>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "buffer length {} does not match {rows}x{cols}",
            data.len()
        );
        Self { rows, cols, data }
    }

    /// Builds a matrix from per-point rows, validating that every row has
    /// the same number of features.
    pub fn from_rows(rows: Vec<Vec<T>>) -> Result<Self, DataError> {
        if rows.is_empty() {
            return Err(DataError::Invalid("matrix needs at least one row".into()));
        }
        let cols = rows[0].len();
        if cols == 0 {
            return Err(DataError::Invalid(
                "matrix needs at least one column".into(),
            ));
        }
        let mut data = Vec::with_capacity(rows.len() * cols);
        for (i, row) in rows.iter().enumerate() {
            if row.len() != cols {
                return Err(DataError::Invalid(format!(
                    "row {i} has {} features, expected {cols}",
                    row.len()
                )));
            }
            data.extend_from_slice(row);
        }
        Ok(Self {
            rows: rows.len(),
            cols,
            data,
        })
    }

    /// Number of data points (rows).
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of features (columns).
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The flat row-major buffer.
    #[inline]
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// Mutable access to the flat row-major buffer.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// The features of data point `i` as a contiguous slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[T] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutable view of the features of data point `i`.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [T] {
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Element access: data point `row`, feature `col`.
    #[inline]
    pub fn get(&self, row: usize, col: usize) -> T {
        debug_assert!(row < self.rows && col < self.cols);
        self.data[row * self.cols + col]
    }

    /// Element mutation: data point `row`, feature `col`.
    #[inline]
    pub fn set(&mut self, row: usize, col: usize, v: T) {
        debug_assert!(row < self.rows && col < self.cols);
        self.data[row * self.cols + col] = v;
    }

    /// Iterator over the rows (data points).
    pub fn rows_iter(&self) -> impl Iterator<Item = &[T]> {
        self.data.chunks_exact(self.cols)
    }

    /// Returns a new matrix containing only the selected rows (in order).
    pub fn select_rows(&self, indices: &[usize]) -> Self {
        let mut data = Vec::with_capacity(indices.len() * self.cols);
        for &i in indices {
            data.extend_from_slice(self.row(i));
        }
        Self {
            rows: indices.len(),
            cols: self.cols,
            data,
        }
    }

    /// True if all entries are finite (no NaN / ±inf).
    pub fn all_finite(&self) -> bool {
        self.data.iter().all(|v| v.is_finite())
    }
}

/// Distributes `total` items over chunks proportionally to `weights`
/// using the largest-remainder method (the allocation behind
/// [`SoAMatrix::split_features_weighted`]; public so that analytic work
/// models share the exact same split).
pub fn weighted_allocation(total: usize, weights: &[f64]) -> Vec<usize> {
    assert!(!weights.is_empty(), "need at least one chunk");
    assert!(
        weights.iter().all(|w| *w > 0.0 && w.is_finite()),
        "weights must be positive and finite"
    );
    let sum: f64 = weights.iter().sum();
    let n = weights.len();
    let exact: Vec<f64> = weights.iter().map(|w| total as f64 * w / sum).collect();
    let mut counts: Vec<usize> = exact.iter().map(|e| e.floor() as usize).collect();
    let mut remaining = total - counts.iter().sum::<usize>();
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| (exact[b] - exact[b].floor()).total_cmp(&(exact[a] - exact[a].floor())));
    for &k in order.iter().cycle().take(remaining) {
        counts[k] += 1;
        remaining -= 1;
        if remaining == 0 {
            break;
        }
    }
    counts
}

/// A dense, column-major (structure-of-arrays) matrix with point padding.
///
/// Entry `(point, feature)` lives at `feature * padded_points + point`. All
/// padded entries are zero, which is safe for every kernel function: padded
/// points contribute nothing to scalar products and are never read as output.
#[derive(Debug, Clone, PartialEq)]
pub struct SoAMatrix<T> {
    points: usize,
    features: usize,
    padded_points: usize,
    data: Vec<T>,
}

impl<T: Real> SoAMatrix<T> {
    /// Transforms a row-major matrix into the padded SoA layout.
    ///
    /// `pad_to` is the device block granularity; the number of points is
    /// rounded up to the next multiple of it (`pad_to == 1` disables
    /// padding). This is the paper's "transform" training step.
    pub fn from_dense(dense: &DenseMatrix<T>, pad_to: usize) -> Self {
        assert!(pad_to >= 1, "padding granularity must be at least 1");
        let points = dense.rows();
        let features = dense.cols();
        let padded_points = points.div_ceil(pad_to) * pad_to;
        let mut data = vec![T::ZERO; padded_points * features];
        for p in 0..points {
            let row = dense.row(p);
            for f in 0..features {
                data[f * padded_points + p] = row[f];
            }
        }
        Self {
            points,
            features,
            padded_points,
            data,
        }
    }

    /// Number of real (unpadded) data points.
    #[inline]
    pub fn points(&self) -> usize {
        self.points
    }

    /// Number of features per data point.
    #[inline]
    pub fn features(&self) -> usize {
        self.features
    }

    /// Number of points including padding.
    #[inline]
    pub fn padded_points(&self) -> usize {
        self.padded_points
    }

    /// The flat column-major buffer (length `padded_points * features`).
    #[inline]
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// Element access: data point `point`, feature `feature`.
    #[inline]
    pub fn get(&self, point: usize, feature: usize) -> T {
        debug_assert!(point < self.padded_points && feature < self.features);
        self.data[feature * self.padded_points + point]
    }

    /// The column (all points' values) of one feature, including padding.
    #[inline]
    pub fn feature_column(&self, feature: usize) -> &[T] {
        &self.data[feature * self.padded_points..(feature + 1) * self.padded_points]
    }

    /// Scalar product of the feature vectors of two points.
    pub fn dot(&self, a: usize, b: usize) -> T {
        let mut acc = T::ZERO;
        for f in 0..self.features {
            let base = f * self.padded_points;
            acc = self.data[base + a].mul_add(self.data[base + b], acc);
        }
        acc
    }

    /// Squared euclidean distance between the feature vectors of two points.
    pub fn dist_sq(&self, a: usize, b: usize) -> T {
        let mut acc = T::ZERO;
        for f in 0..self.features {
            let base = f * self.padded_points;
            let d = self.data[base + a] - self.data[base + b];
            acc = d.mul_add(d, acc);
        }
        acc
    }

    /// Splits the matrix feature-wise into `n` parts for multi-device
    /// execution (§III-C-5): part `k` receives a contiguous chunk of the
    /// feature dimensions, every part keeps all points.
    ///
    /// The chunks differ in size by at most one feature. Parts may be empty
    /// if `n > features`; callers should clamp `n` beforehand.
    pub fn split_features(&self, n: usize) -> Vec<SoAMatrix<T>> {
        assert!(n >= 1, "need at least one device");
        let base = self.features / n;
        let extra = self.features % n;
        let mut parts = Vec::with_capacity(n);
        let mut start = 0;
        for k in 0..n {
            let len = base + usize::from(k < extra);
            let data =
                self.data[start * self.padded_points..(start + len) * self.padded_points].to_vec();
            parts.push(SoAMatrix {
                points: self.points,
                features: len,
                padded_points: self.padded_points,
                data,
            });
            start += len;
        }
        parts
    }

    /// Splits the matrix feature-wise with *weighted* chunk sizes — the
    /// load-balancing variant of [`SoAMatrix::split_features`] for
    /// heterogeneous devices (the paper's §V long-term goal: "multi-node
    /// multi-GPU execution including load balancing on heterogeneous
    /// hardware"). Chunk `k` receives a share of the features proportional
    /// to `weights[k]`, allocated by the largest-remainder method so the
    /// total is exact.
    pub fn split_features_weighted(&self, weights: &[f64]) -> Vec<SoAMatrix<T>> {
        let counts = weighted_allocation(self.features, weights);
        let mut parts = Vec::with_capacity(weights.len());
        let mut start = 0;
        for &len in &counts {
            let data =
                self.data[start * self.padded_points..(start + len) * self.padded_points].to_vec();
            parts.push(SoAMatrix {
                points: self.points,
                features: len,
                padded_points: self.padded_points,
                data,
            });
            start += len;
        }
        parts
    }

    /// Reconstructs the row-major representation (drops padding).
    pub fn to_dense(&self) -> DenseMatrix<T> {
        let mut out = DenseMatrix::zeros(self.points, self.features);
        for p in 0..self.points {
            for f in 0..self.features {
                out.set(p, f, self.get(p, f));
            }
        }
        out
    }

    /// Memory footprint of the device buffer in bytes.
    pub fn byte_size(&self) -> usize {
        self.data.len() * T::BYTES
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> DenseMatrix<f64> {
        DenseMatrix::from_rows(vec![
            vec![1.0, 2.0, 3.0],
            vec![4.0, 5.0, 6.0],
            vec![7.0, 8.0, 9.0],
            vec![10.0, 11.0, 12.0],
            vec![13.0, 14.0, 15.0],
        ])
        .unwrap()
    }

    #[test]
    fn dense_accessors() {
        let m = sample();
        assert_eq!(m.rows(), 5);
        assert_eq!(m.cols(), 3);
        assert_eq!(m.get(1, 2), 6.0);
        assert_eq!(m.row(2), &[7.0, 8.0, 9.0]);
        assert_eq!(m.rows_iter().count(), 5);
    }

    #[test]
    fn dense_set_and_mut_row() {
        let mut m = sample();
        m.set(0, 0, -1.0);
        assert_eq!(m.get(0, 0), -1.0);
        m.row_mut(4)[2] = 99.0;
        assert_eq!(m.get(4, 2), 99.0);
    }

    #[test]
    fn dense_rejects_ragged_rows() {
        let err = DenseMatrix::from_rows(vec![vec![1.0], vec![1.0, 2.0]]).unwrap_err();
        assert!(err.to_string().contains("row 1"));
    }

    #[test]
    fn dense_rejects_empty() {
        assert!(DenseMatrix::<f64>::from_rows(vec![]).is_err());
        assert!(DenseMatrix::<f64>::from_rows(vec![vec![]]).is_err());
    }

    #[test]
    #[should_panic(expected = "buffer length")]
    fn dense_from_vec_checks_len() {
        let _ = DenseMatrix::from_vec(2, 2, vec![1.0f64, 2.0, 3.0]);
    }

    #[test]
    fn dense_select_rows() {
        let m = sample();
        let s = m.select_rows(&[4, 0]);
        assert_eq!(s.rows(), 2);
        assert_eq!(s.row(0), &[13.0, 14.0, 15.0]);
        assert_eq!(s.row(1), &[1.0, 2.0, 3.0]);
    }

    #[test]
    fn dense_all_finite() {
        let mut m = sample();
        assert!(m.all_finite());
        m.set(0, 0, f64::NAN);
        assert!(!m.all_finite());
    }

    #[test]
    fn soa_roundtrip_without_padding() {
        let m = sample();
        let s = SoAMatrix::from_dense(&m, 1);
        assert_eq!(s.points(), 5);
        assert_eq!(s.padded_points(), 5);
        assert_eq!(s.to_dense(), m);
    }

    #[test]
    fn soa_padding_rounds_up() {
        let m = sample();
        let s = SoAMatrix::from_dense(&m, 4);
        assert_eq!(s.padded_points(), 8);
        // padded entries are zero
        for f in 0..3 {
            for p in 5..8 {
                assert_eq!(s.get(p, f), 0.0);
            }
        }
        assert_eq!(s.to_dense(), m);
    }

    #[test]
    fn soa_layout_is_column_major() {
        let m = sample();
        let s = SoAMatrix::from_dense(&m, 1);
        // feature 0 column holds the first feature of every point
        assert_eq!(s.feature_column(0), &[1.0, 4.0, 7.0, 10.0, 13.0]);
        assert_eq!(s.feature_column(2), &[3.0, 6.0, 9.0, 12.0, 15.0]);
    }

    #[test]
    fn soa_dot_and_dist() {
        let m = sample();
        let s = SoAMatrix::from_dense(&m, 4);
        // <row0, row1> = 1*4 + 2*5 + 3*6 = 32
        assert_eq!(s.dot(0, 1), 32.0);
        // ||row0 - row1||^2 = 9 + 9 + 9 = 27
        assert_eq!(s.dist_sq(0, 1), 27.0);
        // padded point dot anything = 0
        assert_eq!(s.dot(7, 1), 0.0);
    }

    #[test]
    fn soa_feature_split_concatenates_back() {
        let m = sample();
        let s = SoAMatrix::from_dense(&m, 4);
        let parts = s.split_features(2);
        assert_eq!(parts.len(), 2);
        assert_eq!(parts[0].features(), 2);
        assert_eq!(parts[1].features(), 1);
        // dot product is additive over the feature split (linear kernel!)
        let total = s.dot(0, 1);
        let partial: f64 = parts.iter().map(|p| p.dot(0, 1)).sum();
        assert_eq!(total, partial);
    }

    #[test]
    fn soa_split_more_devices_than_features() {
        let m = sample();
        let s = SoAMatrix::from_dense(&m, 1);
        let parts = s.split_features(5);
        assert_eq!(parts.len(), 5);
        let non_empty: usize = parts.iter().filter(|p| p.features() > 0).count();
        assert_eq!(non_empty, 3);
    }

    #[test]
    fn weighted_split_proportions_and_reassembly() {
        let m =
            DenseMatrix::from_rows(vec![(0..10).map(|f| f as f64).collect::<Vec<_>>(); 4]).unwrap();
        let s = SoAMatrix::from_dense(&m, 2);
        // weights 3:1 over 10 features → 7-8 vs 2-3 features
        let parts = s.split_features_weighted(&[3.0, 1.0]);
        assert_eq!(parts.len(), 2);
        assert_eq!(parts[0].features() + parts[1].features(), 10);
        assert!(parts[0].features() >= 7, "{}", parts[0].features());
        // dot products still sum to the full dot
        let total = s.dot(0, 1);
        let partial: f64 = parts.iter().map(|p| p.dot(0, 1)).sum();
        assert!((total - partial).abs() < 1e-12);
        // equal weights reproduce the even split
        let even = s.split_features_weighted(&[1.0, 1.0]);
        let plain = s.split_features(2);
        assert_eq!(even[0].features(), plain[0].features());
    }

    #[test]
    fn weighted_split_exact_total_with_awkward_weights() {
        let m = DenseMatrix::from_rows(vec![(0..7).map(|f| f as f64).collect::<Vec<_>>()]).unwrap();
        let s = SoAMatrix::from_dense(&m, 1);
        let parts = s.split_features_weighted(&[0.3, 0.3, 0.4]);
        let total: usize = parts.iter().map(|p| p.features()).sum();
        assert_eq!(total, 7);
    }

    #[test]
    #[should_panic(expected = "positive and finite")]
    fn weighted_split_rejects_bad_weights() {
        let m = DenseMatrix::from_rows(vec![vec![1.0f64, 2.0]]).unwrap();
        let s = SoAMatrix::from_dense(&m, 1);
        let _ = s.split_features_weighted(&[1.0, 0.0]);
    }

    #[test]
    fn soa_byte_size() {
        let m = sample();
        let s = SoAMatrix::from_dense(&m, 4);
        assert_eq!(s.byte_size(), 8 * 3 * 8);
        let s32 = SoAMatrix::from_dense(
            &DenseMatrix::<f32>::from_rows(vec![vec![1.0f32, 2.0]]).unwrap(),
            1,
        );
        assert_eq!(s32.byte_size(), 2 * 4);
    }
}
