//! A synthetic stand-in for the SAT-6 airborne data set (§IV-D).
//!
//! The real SAT-6 data set consists of 28×28 pixel, 4-channel (RGB + infra
//! red) satellite image patches in six land cover classes; the paper maps
//! the man-made classes (buildings, roads) to `-1` and the natural classes
//! (barren land, trees, grassland, water) to `+1`, yielding 3136 features
//! per point. The original imagery is not redistributable here, so this
//! module generates *SAT-6-like* patches that exercise the identical code
//! path: large dense feature vectors, class structure that is nonlinear in
//! feature space (favouring the RBF kernel, as the paper observed), and
//! realistic noise.
//!
//! Generation model per patch:
//! * **natural** (+1): a smooth low-frequency texture per channel (random
//!   cosine mixture), high infrared reflectance (vegetation), plus pixel
//!   noise;
//! * **man-made** (−1): the same textured background with a rectilinear
//!   high-contrast structure (a "building"/"road" rectangle) stamped on
//!   it and suppressed infrared.

use rand::prelude::*;
use rand::rngs::StdRng;

use crate::dense::DenseMatrix;
use crate::error::DataError;
use crate::libsvm::LabeledData;
use crate::real::Real;
use crate::synthetic::standard_normal;

/// Configuration for the SAT-6-like generator.
#[derive(Debug, Clone)]
pub struct Sat6Config {
    /// Number of image patches to generate.
    pub points: usize,
    /// Edge length of the square patch (SAT-6: 28).
    pub image_size: usize,
    /// Number of channels (SAT-6: 4 = RGB-IR).
    pub channels: usize,
    /// Fraction of man-made (label −1) patches. SAT-6's training split has
    /// 193 729 of 324 000 man-made → ≈ 0.598.
    pub man_made_fraction: f64,
    /// Per-pixel noise amplitude (relative to the [0, 1] intensity range).
    pub noise: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Sat6Config {
    /// A configuration with SAT-6 geometry (28×28×4 = 3136 features) and
    /// the paper's class balance.
    pub fn new(points: usize, seed: u64) -> Self {
        Self {
            points,
            image_size: 28,
            channels: 4,
            man_made_fraction: 193_729.0 / 324_000.0,
            noise: 0.08,
            seed,
        }
    }

    /// Shrinks the patches (fewer features) for fast tests.
    pub fn with_image_size(mut self, size: usize) -> Self {
        self.image_size = size;
        self
    }

    /// Overrides the per-pixel noise amplitude.
    pub fn with_noise(mut self, noise: f64) -> Self {
        self.noise = noise;
        self
    }

    /// Number of features per generated point.
    pub fn features(&self) -> usize {
        self.image_size * self.image_size * self.channels
    }
}

/// Generates a SAT-6-like labeled data set. Feature values land in `[0, 1]`
/// up to noise; apply [`crate::scale::ScalingParams`] for the paper's
/// `[-1, 1]` scaling.
pub fn generate_sat6<T: Real>(config: &Sat6Config) -> Result<LabeledData<T>, DataError> {
    if config.points < 2 {
        return Err(DataError::Invalid("need at least 2 patches".into()));
    }
    if config.image_size < 4 {
        return Err(DataError::Invalid("image size must be at least 4".into()));
    }
    if config.channels == 0 {
        return Err(DataError::Invalid("need at least one channel".into()));
    }
    if !(0.0..=1.0).contains(&config.man_made_fraction) {
        return Err(DataError::Invalid(
            "man-made fraction must be in [0, 1]".into(),
        ));
    }
    let mut rng = StdRng::seed_from_u64(config.seed);
    let n = config.points;
    let d = config.features();

    let man_made = ((n as f64) * config.man_made_fraction).round() as usize;
    let mut x = DenseMatrix::<T>::zeros(n, d);
    let mut y = Vec::with_capacity(n);
    let mut patch = vec![0.0f64; d];

    for p in 0..n {
        let is_man_made = p < man_made;
        render_patch(&mut rng, config, is_man_made, &mut patch);
        let row = x.row_mut(p);
        for (f, &v) in patch.iter().enumerate() {
            row[f] = T::from_f64(v);
        }
        // natural → +1, man-made → -1 (the paper's mapping)
        y.push(if is_man_made { -T::ONE } else { T::ONE });
    }

    // Shuffle so classes interleave.
    let mut order: Vec<usize> = (0..n).collect();
    order.shuffle(&mut rng);
    let x = x.select_rows(&order);
    let y: Vec<T> = order.iter().map(|&i| y[i]).collect();

    // label_map: +1 ↦ 1 (natural), -1 ↦ -1 (man-made), as in the paper.
    LabeledData::with_label_map(x, y, [1, -1])
}

/// Renders one patch into `out` (layout: channel-major, `channel*s*s +
/// row*s + col`).
fn render_patch(rng: &mut StdRng, config: &Sat6Config, man_made: bool, out: &mut [f64]) {
    let s = config.image_size;
    let c = config.channels;

    // Low-frequency background texture: per-channel random cosine mixture.
    for ch in 0..c {
        let base: f64 = rng.random_range(0.25..0.75);
        let fx: f64 = rng.random_range(0.5..2.0) * std::f64::consts::PI / s as f64;
        let fy: f64 = rng.random_range(0.5..2.0) * std::f64::consts::PI / s as f64;
        let phase_x: f64 = rng.random_range(0.0..std::f64::consts::TAU);
        let phase_y: f64 = rng.random_range(0.0..std::f64::consts::TAU);
        let amp: f64 = rng.random_range(0.05..0.20);
        // channel 3 (infrared) is bright for vegetation, dark for man-made
        let ir_shift = if ch == 3 {
            if man_made {
                -0.25
            } else {
                0.25
            }
        } else {
            0.0
        };
        for row in 0..s {
            for col in 0..s {
                let v = base
                    + ir_shift
                    + amp * ((fx * row as f64 + phase_x).cos() + (fy * col as f64 + phase_y).cos())
                        / 2.0;
                out[ch * s * s + row * s + col] = v;
            }
        }
    }

    if man_made {
        // Stamp a rectilinear structure: high-contrast rectangle with sharp
        // edges, brighter or darker than the surroundings.
        let w = rng.random_range(s / 4..=s / 2);
        let h = rng.random_range(s / 4..=s / 2);
        let r0 = rng.random_range(0..=s - h);
        let c0 = rng.random_range(0..=s - w);
        let bright = rng.random_bool(0.5);
        let level: f64 = if bright {
            rng.random_range(0.8..1.0)
        } else {
            rng.random_range(0.0..0.2)
        };
        for ch in 0..c.min(3) {
            for row in r0..r0 + h {
                for col in c0..c0 + w {
                    out[ch * s * s + row * s + col] = level;
                }
            }
        }
    }

    // Pixel noise on every channel.
    for v in out.iter_mut() {
        *v = (*v + config.noise * standard_normal(rng)).clamp(0.0, 1.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_sat6_geometry() {
        let d: LabeledData<f64> = generate_sat6(&Sat6Config::new(20, 1)).unwrap();
        assert_eq!(d.points(), 20);
        assert_eq!(d.features(), 3136);
        assert!(d.x.all_finite());
    }

    #[test]
    fn values_are_normalized() {
        let d: LabeledData<f64> =
            generate_sat6(&Sat6Config::new(10, 2).with_image_size(8)).unwrap();
        for p in 0..d.points() {
            for f in 0..d.features() {
                let v = d.x.get(p, f);
                assert!((0.0..=1.0).contains(&v), "value {v} out of range");
            }
        }
    }

    #[test]
    fn class_balance_matches_config() {
        let d: LabeledData<f64> =
            generate_sat6(&Sat6Config::new(100, 3).with_image_size(8)).unwrap();
        let (pos, neg) = d.class_counts();
        // man_made_fraction ≈ 0.598 → 60 man-made (−1) and 40 natural (+1)
        assert_eq!(neg, 60);
        assert_eq!(pos, 40);
        assert_eq!(d.label_map, [1, -1]);
    }

    #[test]
    fn deterministic_per_seed() {
        let cfg = Sat6Config::new(6, 9).with_image_size(8);
        let a: LabeledData<f64> = generate_sat6(&cfg).unwrap();
        let b: LabeledData<f64> = generate_sat6(&cfg).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn infrared_separates_classes_on_average() {
        // The IR channel must carry class signal (vegetation bright,
        // man-made dark) — this is what makes the problem learnable.
        let cfg = Sat6Config::new(60, 4).with_image_size(8);
        let d: LabeledData<f64> = generate_sat6(&cfg).unwrap();
        let s = 8 * 8;
        let ir =
            |p: usize| -> f64 { (0..s).map(|i| d.x.get(p, 3 * s + i)).sum::<f64>() / s as f64 };
        let mut nat = (0.0, 0);
        let mut man = (0.0, 0);
        for p in 0..d.points() {
            if d.y[p] > 0.0 {
                nat = (nat.0 + ir(p), nat.1 + 1);
            } else {
                man = (man.0 + ir(p), man.1 + 1);
            }
        }
        let nat_mean = nat.0 / nat.1 as f64;
        let man_mean = man.0 / man.1 as f64;
        assert!(
            nat_mean > man_mean + 0.2,
            "IR means: natural {nat_mean:.3} vs man-made {man_mean:.3}"
        );
    }

    #[test]
    fn invalid_configs_rejected() {
        assert!(generate_sat6::<f64>(&Sat6Config::new(1, 0)).is_err());
        assert!(generate_sat6::<f64>(&Sat6Config::new(10, 0).with_image_size(2)).is_err());
        let mut cfg = Sat6Config::new(10, 0);
        cfg.channels = 0;
        assert!(generate_sat6::<f64>(&cfg).is_err());
        let mut cfg = Sat6Config::new(10, 0);
        cfg.man_made_fraction = 1.2;
        assert!(generate_sat6::<f64>(&cfg).is_err());
    }
}
