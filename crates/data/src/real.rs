//! The floating point abstraction used throughout the workspace.
//!
//! The paper's C++ implementation is templated over a single `real_type`
//! parameter that may be `float` or `double`; the [`Real`] trait is the Rust
//! equivalent. All solver code is generic over it and all experiments use
//! `f64` (the paper measures everything in FP64).

use std::fmt::{Debug, Display, LowerExp};
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};
use std::str::FromStr;

/// A floating point scalar (`f32` or `f64`).
///
/// This mirrors the single `real_type` template parameter of the paper's C++
/// implementation. The trait deliberately only exposes the operations the
/// solver actually needs so that both precisions stay trivially supported.
pub trait Real:
    Copy
    + Debug
    + Display
    + LowerExp
    + PartialOrd
    + Add<Output = Self>
    + Sub<Output = Self>
    + Mul<Output = Self>
    + Div<Output = Self>
    + Neg<Output = Self>
    + AddAssign
    + SubAssign
    + MulAssign
    + DivAssign
    + Sum
    + FromStr
    + Send
    + Sync
    + 'static
{
    /// Additive identity.
    const ZERO: Self;
    /// Multiplicative identity.
    const ONE: Self;
    /// Two.
    const TWO: Self;
    /// Machine epsilon of the underlying type.
    const EPSILON: Self;
    /// The number of bytes one scalar occupies (4 or 8).
    const BYTES: usize;

    /// Lossless conversion from `f64` (lossy for `f32`, used for constants
    /// and parameters that are specified in double precision).
    fn from_f64(v: f64) -> Self;
    /// Widening conversion to `f64` for reporting and accuracy accounting.
    fn to_f64(self) -> f64;
    /// Conversion from a usize count (exact for all realistic sizes).
    fn from_usize(v: usize) -> Self;
    /// `e^self`.
    fn exp(self) -> Self;
    /// Hyperbolic tangent (the sigmoid kernel).
    fn tanh(self) -> Self;
    /// `self^v` with an integer exponent (the polynomial kernel degree).
    fn powi(self, v: i32) -> Self;
    /// Square root.
    fn sqrt(self) -> Self;
    /// Absolute value.
    fn abs(self) -> Self;
    /// Larger of two values (NaN-propagating like `f64::max` is fine here).
    fn max(self, other: Self) -> Self;
    /// Smaller of two values.
    fn min(self, other: Self) -> Self;
    /// True if the value is finite (not NaN or ±inf).
    fn is_finite(self) -> bool;
    /// Fused multiply-add `self * a + b` (maps to the hardware FMA).
    fn mul_add(self, a: Self, b: Self) -> Self;
    /// Appends the little-endian byte representation to `out`.
    ///
    /// Bit-exact (round-trips NaN payloads): checkpoint serialization must
    /// reproduce the in-memory value exactly, which a `to_f64`/`from_f64`
    /// detour would not guarantee for `f32`.
    fn write_le(self, out: &mut Vec<u8>);
    /// Reads a scalar from its little-endian byte representation.
    ///
    /// `bytes` must hold exactly [`Real::BYTES`] bytes; returns `None`
    /// otherwise.
    fn from_le(bytes: &[u8]) -> Option<Self>;
}

macro_rules! impl_real {
    ($t:ty, $bytes:expr) => {
        impl Real for $t {
            const ZERO: Self = 0.0;
            const ONE: Self = 1.0;
            const TWO: Self = 2.0;
            const EPSILON: Self = <$t>::EPSILON;
            const BYTES: usize = $bytes;

            #[inline(always)]
            fn from_f64(v: f64) -> Self {
                v as $t
            }
            #[inline(always)]
            fn to_f64(self) -> f64 {
                self as f64
            }
            #[inline(always)]
            fn from_usize(v: usize) -> Self {
                v as $t
            }
            #[inline(always)]
            fn exp(self) -> Self {
                <$t>::exp(self)
            }
            #[inline(always)]
            fn tanh(self) -> Self {
                <$t>::tanh(self)
            }
            #[inline(always)]
            fn powi(self, v: i32) -> Self {
                <$t>::powi(self, v)
            }
            #[inline(always)]
            fn sqrt(self) -> Self {
                <$t>::sqrt(self)
            }
            #[inline(always)]
            fn abs(self) -> Self {
                <$t>::abs(self)
            }
            #[inline(always)]
            fn max(self, other: Self) -> Self {
                <$t>::max(self, other)
            }
            #[inline(always)]
            fn min(self, other: Self) -> Self {
                <$t>::min(self, other)
            }
            #[inline(always)]
            fn is_finite(self) -> bool {
                <$t>::is_finite(self)
            }
            #[inline(always)]
            fn mul_add(self, a: Self, b: Self) -> Self {
                <$t>::mul_add(self, a, b)
            }
            #[inline(always)]
            fn write_le(self, out: &mut Vec<u8>) {
                out.extend_from_slice(&self.to_le_bytes());
            }
            #[inline(always)]
            fn from_le(bytes: &[u8]) -> Option<Self> {
                Some(<$t>::from_le_bytes(bytes.try_into().ok()?))
            }
        }
    };
}

impl_real!(f32, 4);
impl_real!(f64, 8);

#[cfg(test)]
mod tests {
    use super::*;

    fn ops_roundtrip<T: Real>() {
        let two = T::TWO;
        assert_eq!(two.to_f64(), 2.0);
        assert_eq!(T::from_f64(2.0).to_f64(), 2.0);
        assert_eq!(T::from_usize(7).to_f64(), 7.0);
        assert!((two.sqrt().to_f64() - std::f64::consts::SQRT_2).abs() < 1e-6);
        assert_eq!(two.powi(10).to_f64(), 1024.0);
        assert_eq!((-two).abs().to_f64(), 2.0);
        assert_eq!(two.max(T::ONE).to_f64(), 2.0);
        assert_eq!(two.min(T::ONE).to_f64(), 1.0);
        assert!(two.is_finite());
        assert!(!(two / T::ZERO).is_finite());
        assert_eq!(two.mul_add(T::TWO, T::ONE).to_f64(), 5.0);
    }

    #[test]
    fn f32_ops() {
        ops_roundtrip::<f32>();
        assert_eq!(f32::BYTES, 4);
    }

    #[test]
    fn f64_ops() {
        ops_roundtrip::<f64>();
        assert_eq!(f64::BYTES, 8);
    }

    #[test]
    fn exp_matches_std() {
        assert!((Real::exp(1.0f64) - std::f64::consts::E).abs() < 1e-12);
        assert!((Real::exp(1.0f32) - std::f32::consts::E).abs() < 1e-6);
    }

    #[test]
    fn le_bytes_roundtrip_is_bit_exact() {
        fn roundtrip<T: Real>(v: T) -> T {
            let mut buf = Vec::new();
            v.write_le(&mut buf);
            assert_eq!(buf.len(), T::BYTES);
            T::from_le(&buf).unwrap()
        }
        // NaN payload bits must survive the round trip
        let quiet = f32::from_bits(0x7fc0_1234);
        assert_eq!(roundtrip(quiet).to_bits(), quiet.to_bits());
        let quiet = f64::from_bits(0x7ff8_0000_dead_beef);
        assert_eq!(roundtrip(quiet).to_bits(), quiet.to_bits());
        assert_eq!(roundtrip(-0.0f64).to_bits(), (-0.0f64).to_bits());
        assert_eq!(roundtrip(1.5f32), 1.5f32);
        // wrong length is rejected, not a panic
        assert!(<f64 as Real>::from_le(&[0u8; 4]).is_none());
        assert!(<f32 as Real>::from_le(&[0u8; 8]).is_none());
    }

    #[test]
    fn tanh_matches_std() {
        assert!((Real::tanh(0.5f64) - 0.5f64.tanh()).abs() < 1e-15);
        assert_eq!(Real::tanh(0.0f32), 0.0);
    }
}
