//! Durable on-disk checkpoints for the CG solver.
//!
//! A long LS-SVM training run at memory capacity can be killed at any
//! moment — OOM killer, preemption, power loss. The in-memory
//! checkpoint/warm-restart machinery of `plssvm-core` loses everything
//! with the process, so this module persists each snapshot durably:
//!
//! * [`Snapshot`] — a plain, solver-agnostic view of one CG state
//!   (iterate, residual, search direction, recurrence scalars) plus the
//!   context it belongs to (problem dimension, escalation rung, a hash of
//!   the training invocation),
//! * a versioned little-endian binary format with a trailing CRC32 so
//!   torn writes and bit rot are *detected* instead of resumed from,
//! * [`CheckpointJournal`] — generation-numbered snapshot files written
//!   via temp-file + fsync + atomic rename (see [`crate::io`]), with a
//!   bounded retention window and corruption-tolerant loading that falls
//!   back to the newest generation that still verifies.
//!
//! ## On-disk format (version 1)
//!
//! ```text
//! offset  size  field
//!      0     8  magic "PLSSVMCK"
//!      8     4  format version (u32, = 1)
//!     12     1  precision in bytes per scalar (4 = f32, 8 = f64)
//!     13     1  escalation rung the snapshot belongs to
//!     14     2  reserved (zero)
//!     16     8  context hash (FNV-1a 64 of the training invocation)
//!     24     8  problem dimension n (u64)
//!     32     8  CG iteration counter (u64)
//!     40   n·p  iterate x
//!    +     n·p  residual r
//!    +     n·p  search direction d
//!    +     3·p  rho, delta, delta0
//!    +       4  CRC32 (IEEE) over all preceding bytes
//! ```
//!
//! All integers and scalars are little-endian; `p` is the precision.

use std::fmt;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use crate::error::DataError;
use crate::io::{create_dir_durable_with, write_atomic_with};
use crate::real::Real;
use crate::vfs::{RealVfs, Vfs};

/// Magic bytes opening every snapshot file.
pub const MAGIC: [u8; 8] = *b"PLSSVMCK";
/// The current snapshot format version.
pub const FORMAT_VERSION: u32 = 1;
/// Fixed header length in bytes (everything before the scalar payload).
const HEADER_LEN: usize = 40;
/// Trailing checksum length.
const CRC_LEN: usize = 4;

/// Environment variable enabling deterministic crash injection: when set
/// to a generation number, [`CheckpointJournal::append`] calls
/// [`std::process::abort`] immediately *after* that generation has been
/// durably committed. Test-harness use only.
pub const CRASH_AFTER_ENV: &str = "PLSSVM_CRASH_AFTER_GENERATION";

/// Classified failures of checkpoint persistence and recovery.
#[derive(Debug)]
pub enum CheckpointError {
    /// An I/O failure with the path it happened on.
    Io {
        /// File or directory the operation was acting on.
        path: PathBuf,
        /// Underlying OS error.
        source: std::io::Error,
    },
    /// The file is shorter or longer than its own header promises.
    Truncated {
        /// Byte length the header implies.
        expected: u64,
        /// Actual byte length found.
        found: u64,
    },
    /// The file does not start with the snapshot magic.
    BadMagic,
    /// The format version is newer than this build understands.
    UnsupportedVersion(u32),
    /// The snapshot was written with a different floating point precision.
    PrecisionMismatch {
        /// Bytes per scalar the caller expects (4 or 8).
        expected: u8,
        /// Bytes per scalar stored in the file.
        found: u8,
    },
    /// The stored CRC32 does not match the recomputed one (bit rot or a
    /// torn write that survived the length check).
    ChecksumMismatch {
        /// Checksum stored in the file.
        stored: u32,
        /// Checksum recomputed over the payload.
        computed: u32,
    },
    /// A scalar decoded to NaN or ±inf — a valid CG state is finite, so
    /// resuming from this snapshot would poison the solve.
    NonFinite {
        /// Which field held the non-finite value.
        field: &'static str,
    },
    /// The snapshot belongs to a different training invocation (data
    /// file, kernel parameters, cost or precision differ).
    ContextMismatch {
        /// Context hash stored in the snapshot.
        stored: u64,
        /// Context hash of the current invocation.
        expected: u64,
    },
    /// The snapshot's problem dimension does not match the current data.
    DimensionMismatch {
        /// Dimension stored in the snapshot.
        stored: u64,
        /// Dimension of the current problem.
        expected: u64,
    },
}

impl CheckpointError {
    /// True for failures that mean "this file is damaged or foreign" —
    /// recovery skips such generations and falls back to an older one.
    /// Context and dimension mismatches are *not* integrity failures:
    /// they mean the journal as a whole belongs to a different run, and
    /// silently skipping them would resume from the wrong training job.
    pub fn is_integrity_failure(&self) -> bool {
        !matches!(
            self,
            CheckpointError::ContextMismatch { .. } | CheckpointError::DimensionMismatch { .. }
        )
    }

    /// Short machine-readable tag for telemetry events.
    pub fn kind(&self) -> &'static str {
        match self {
            CheckpointError::Io { .. } => "io",
            CheckpointError::Truncated { .. } => "truncated",
            CheckpointError::BadMagic => "bad_magic",
            CheckpointError::UnsupportedVersion(_) => "unsupported_version",
            CheckpointError::PrecisionMismatch { .. } => "precision_mismatch",
            CheckpointError::ChecksumMismatch { .. } => "checksum_mismatch",
            CheckpointError::NonFinite { .. } => "non_finite",
            CheckpointError::ContextMismatch { .. } => "context_mismatch",
            CheckpointError::DimensionMismatch { .. } => "dimension_mismatch",
        }
    }
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Io { path, source } => {
                write!(f, "checkpoint I/O error on '{}': {source}", path.display())
            }
            CheckpointError::Truncated { expected, found } => write!(
                f,
                "checkpoint truncated: header implies {expected} bytes, found {found}"
            ),
            CheckpointError::BadMagic => write!(f, "not a PLSSVM checkpoint (bad magic)"),
            CheckpointError::UnsupportedVersion(v) => {
                write!(f, "unsupported checkpoint format version {v}")
            }
            CheckpointError::PrecisionMismatch { expected, found } => write!(
                f,
                "checkpoint precision mismatch: expected {expected}-byte scalars, found {found}"
            ),
            CheckpointError::ChecksumMismatch { stored, computed } => write!(
                f,
                "checkpoint checksum mismatch: stored {stored:#010x}, computed {computed:#010x}"
            ),
            CheckpointError::NonFinite { field } => {
                write!(f, "checkpoint holds a non-finite value in field '{field}'")
            }
            CheckpointError::ContextMismatch { stored, expected } => write!(
                f,
                "checkpoint belongs to a different training invocation \
                 (context hash {stored:#018x}, current invocation {expected:#018x}); \
                 data file, kernel parameters, cost and precision must match"
            ),
            CheckpointError::DimensionMismatch { stored, expected } => write!(
                f,
                "checkpoint dimension mismatch: snapshot has {stored} points, \
                 current problem has {expected}"
            ),
        }
    }
}

impl std::error::Error for CheckpointError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CheckpointError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl From<DataError> for CheckpointError {
    fn from(e: DataError) -> Self {
        match e {
            DataError::IoPath { path, source } => CheckpointError::Io { path, source },
            DataError::Io(source) => CheckpointError::Io {
                path: PathBuf::new(),
                source,
            },
            other => CheckpointError::Io {
                path: PathBuf::new(),
                source: std::io::Error::other(other.to_string()),
            },
        }
    }
}

/// CRC32 (IEEE 802.3, reflected, polynomial `0xEDB88320`) — the same
/// checksum gzip and PNG use. Hand rolled bitwise so the workspace needs
/// no new dependency; snapshots are small enough that table-free speed
/// is irrelevant next to the fsync.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc: u32 = 0xFFFF_FFFF;
    for &b in bytes {
        crc ^= u32::from(b);
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// FNV-1a 64-bit hash, used to fingerprint the training invocation
/// (data file contents, kernel parameters, cost, precision) so `--resume`
/// can refuse snapshots from a different run.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    fnv1a64_extend(0xcbf2_9ce4_8422_2325, bytes)
}

/// Continues an FNV-1a 64 hash over more bytes (for chaining fields).
pub fn fnv1a64_extend(mut hash: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// A solver-agnostic CG checkpoint: everything needed to continue the
/// recurrence bit-exactly, plus the context it belongs to.
#[derive(Debug, Clone, PartialEq)]
pub struct Snapshot<T> {
    /// Escalation-ladder rung this snapshot was taken on (0 = primary CG).
    pub rung: u8,
    /// FNV-1a 64 fingerprint of the training invocation.
    pub context_hash: u64,
    /// Absolute CG iteration counter at snapshot time.
    pub iterations: u64,
    /// Current iterate.
    pub x: Vec<T>,
    /// Current residual.
    pub r: Vec<T>,
    /// Current search direction.
    pub d: Vec<T>,
    /// `⟨r, r⟩` of the current residual.
    pub rho: T,
    /// Current convergence measure `‖r‖²` (or preconditioned equivalent).
    pub delta: T,
    /// Reference `‖r₀‖²` the relative termination test compares against.
    pub delta0: T,
}

impl<T: Real> Snapshot<T> {
    /// Serializes the snapshot into the version-1 binary format.
    pub fn to_bytes(&self) -> Vec<u8> {
        let n = self.x.len();
        let mut out = Vec::with_capacity(HEADER_LEN + (3 * n + 3) * T::BYTES + CRC_LEN);
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        out.push(T::BYTES as u8);
        out.push(self.rung);
        out.extend_from_slice(&[0u8; 2]);
        out.extend_from_slice(&self.context_hash.to_le_bytes());
        out.extend_from_slice(&(n as u64).to_le_bytes());
        out.extend_from_slice(&self.iterations.to_le_bytes());
        for vec in [&self.x, &self.r, &self.d] {
            for &v in vec.iter() {
                v.write_le(&mut out);
            }
        }
        self.rho.write_le(&mut out);
        self.delta.write_le(&mut out);
        self.delta0.write_le(&mut out);
        let crc = crc32(&out);
        out.extend_from_slice(&crc.to_le_bytes());
        out
    }

    /// Parses and verifies a version-1 snapshot.
    ///
    /// Never panics on malformed input: every structural defect maps to a
    /// classified [`CheckpointError`]. Non-finite scalars are rejected —
    /// a valid CG state is finite, so NaN/inf can only mean corruption
    /// that happened to leave the checksum intact (or a checksummed
    /// snapshot of a diverged state that must not be resumed).
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, CheckpointError> {
        let found = bytes.len() as u64;
        if bytes.len() < HEADER_LEN + CRC_LEN {
            return Err(CheckpointError::Truncated {
                expected: (HEADER_LEN + CRC_LEN) as u64,
                found,
            });
        }
        if bytes[0..8] != MAGIC {
            return Err(CheckpointError::BadMagic);
        }
        let version = u32::from_le_bytes(bytes[8..12].try_into().unwrap());
        if version != FORMAT_VERSION {
            return Err(CheckpointError::UnsupportedVersion(version));
        }
        let precision = bytes[12];
        if usize::from(precision) != T::BYTES {
            return Err(CheckpointError::PrecisionMismatch {
                expected: T::BYTES as u8,
                found: precision,
            });
        }
        let rung = bytes[13];
        let context_hash = u64::from_le_bytes(bytes[16..24].try_into().unwrap());
        let dim = u64::from_le_bytes(bytes[24..32].try_into().unwrap());
        let iterations = u64::from_le_bytes(bytes[32..40].try_into().unwrap());

        // The expected length is computed in u128 so a corrupt dimension
        // field cannot overflow (or drive a huge allocation: the length
        // check runs against the actual file size before any allocation).
        let expected =
            HEADER_LEN as u128 + (3 * dim as u128 + 3) * T::BYTES as u128 + CRC_LEN as u128;
        if u128::from(found) != expected {
            return Err(CheckpointError::Truncated {
                expected: expected.min(u128::from(u64::MAX)) as u64,
                found,
            });
        }
        let body_len = bytes.len() - CRC_LEN;
        let stored = u32::from_le_bytes(bytes[body_len..].try_into().unwrap());
        let computed = crc32(&bytes[..body_len]);
        if stored != computed {
            return Err(CheckpointError::ChecksumMismatch { stored, computed });
        }

        let n = dim as usize;
        let mut offset = HEADER_LEN;
        let mut read_vec = |field: &'static str| -> Result<Vec<T>, CheckpointError> {
            let mut out = Vec::with_capacity(n);
            for _ in 0..n {
                let v =
                    T::from_le(&bytes[offset..offset + T::BYTES]).expect("length verified above");
                if !v.is_finite() {
                    return Err(CheckpointError::NonFinite { field });
                }
                out.push(v);
                offset += T::BYTES;
            }
            Ok(out)
        };
        let x = read_vec("x")?;
        let r = read_vec("r")?;
        let d = read_vec("d")?;
        let mut read_scalar = |field: &'static str| -> Result<T, CheckpointError> {
            let v = T::from_le(&bytes[offset..offset + T::BYTES]).expect("length verified above");
            offset += T::BYTES;
            if !v.is_finite() {
                return Err(CheckpointError::NonFinite { field });
            }
            Ok(v)
        };
        let rho = read_scalar("rho")?;
        let delta = read_scalar("delta")?;
        let delta0 = read_scalar("delta0")?;
        Ok(Snapshot {
            rung,
            context_hash,
            iterations,
            x,
            r,
            d,
            rho,
            delta,
            delta0,
        })
    }
}

/// A snapshot recovered from the journal together with its generation.
#[derive(Debug, Clone)]
pub struct LoadedSnapshot<T> {
    /// Generation number of the file the snapshot came from.
    pub generation: u64,
    /// The verified snapshot.
    pub snapshot: Snapshot<T>,
}

/// A generation the loader had to skip, with the classified reason.
#[derive(Debug)]
pub struct SkippedGeneration {
    /// Generation number of the damaged file.
    pub generation: u64,
    /// Why it could not be used.
    pub reason: CheckpointError,
}

/// A directory of generation-numbered snapshot files.
///
/// Each [`append`](CheckpointJournal::append) writes
/// `gen-<number>.ckpt` atomically and durably, then prunes generations
/// older than the retention window. [`load_latest`]
/// (CheckpointJournal::load_latest) walks generations newest-first and
/// returns the first one that verifies, reporting every damaged file it
/// skipped on the way.
#[derive(Debug, Clone)]
pub struct CheckpointJournal {
    dir: PathBuf,
    keep: usize,
    crash_after: Option<u64>,
    vfs: Arc<dyn Vfs>,
}

impl CheckpointJournal {
    /// Opens (creating if necessary) a journal directory keeping the last
    /// `keep` generations (clamped to at least 1).
    ///
    /// Reads [`CRASH_AFTER_ENV`] once at open time for the deterministic
    /// crash-injection harness.
    pub fn open(dir: impl AsRef<Path>, keep: usize) -> Result<Self, CheckpointError> {
        Self::open_with_vfs(dir, keep, Arc::new(RealVfs))
    }

    /// [`CheckpointJournal::open`] over an explicit [`Vfs`]; every
    /// journal operation — append, retention deletion, generation
    /// listing, load — goes through it, so a
    /// [`FaultVfs`](crate::vfs::FaultVfs) can fault any of them.
    pub fn open_with_vfs(
        dir: impl AsRef<Path>,
        keep: usize,
        vfs: Arc<dyn Vfs>,
    ) -> Result<Self, CheckpointError> {
        let dir = dir.as_ref().to_path_buf();
        create_dir_durable_with(vfs.as_ref(), &dir)?;
        let crash_after = std::env::var(CRASH_AFTER_ENV)
            .ok()
            .and_then(|v| v.parse().ok());
        Ok(Self {
            dir,
            keep: keep.max(1),
            crash_after,
            vfs,
        })
    }

    /// The journal directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The retention window (number of generations kept).
    pub fn keep(&self) -> usize {
        self.keep
    }

    /// A sub-journal for one task of a composite training run (one class
    /// pair of a multiclass model, one output of a multi-output LS-SVR).
    /// Each task gets its own generation numbering under `task-<k>/`.
    pub fn for_task(&self, task: usize) -> Result<Self, CheckpointError> {
        let dir = self.dir.join(format!("task-{task:03}"));
        create_dir_durable_with(self.vfs.as_ref(), &dir)?;
        Ok(Self {
            dir,
            keep: self.keep,
            crash_after: self.crash_after,
            vfs: Arc::clone(&self.vfs),
        })
    }

    fn generation_path(&self, generation: u64) -> PathBuf {
        self.dir.join(format!("gen-{generation:08}.ckpt"))
    }

    /// All generation numbers present in the directory, ascending.
    pub fn generations(&self) -> Result<Vec<u64>, CheckpointError> {
        let names = match self.vfs.list_dir(&self.dir) {
            Ok(n) => n,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
            Err(e) => {
                return Err(CheckpointError::Io {
                    path: self.dir.clone(),
                    source: e,
                })
            }
        };
        let mut gens = Vec::new();
        for name in names {
            if let Some(num) = name
                .strip_prefix("gen-")
                .and_then(|rest| rest.strip_suffix(".ckpt"))
            {
                if let Ok(g) = num.parse::<u64>() {
                    gens.push(g);
                }
            }
        }
        gens.sort_unstable();
        Ok(gens)
    }

    /// True when the journal holds no snapshot files at all — a resume
    /// from an empty journal is a legitimate fresh start (the process
    /// died before the first checkpoint was ever written).
    pub fn is_empty(&self) -> Result<bool, CheckpointError> {
        Ok(self.generations()?.is_empty())
    }

    /// Durably appends a snapshot as the next generation, returning its
    /// generation number. Retention pruning runs after the new
    /// generation is committed; pruning failures are ignored (old
    /// generations are garbage, not state).
    pub fn append<T: Real>(&self, snapshot: &Snapshot<T>) -> Result<u64, CheckpointError> {
        let existing = self.generations()?;
        let generation = existing.last().map_or(1, |g| g + 1);
        let bytes = snapshot.to_bytes();
        write_atomic_with(self.vfs.as_ref(), &self.generation_path(generation), &bytes)?;
        if self.crash_after == Some(generation) {
            // Deterministic crash injection for the recovery harness:
            // die *after* the generation is durable, the worst possible
            // moment for every earlier generation's retention logic.
            std::process::abort();
        }
        for &old in existing.iter() {
            if old + self.keep as u64 <= generation {
                // Retention failures (e.g. injected ENOSPC/EIO on the
                // unlink) are ignored: old generations are garbage, not
                // state, and the new generation is already durable.
                let _ = self.vfs.remove_file(&self.generation_path(old));
            }
        }
        Ok(generation)
    }

    /// Loads the newest generation that passes verification.
    ///
    /// Damaged generations (torn writes, bit rot, foreign files) are
    /// skipped newest-first and reported in the second tuple element so
    /// the caller can surface `recovery` telemetry; they never panic and
    /// never abort the load. Returns `Ok((None, skipped))` when no
    /// generation verifies.
    pub fn load_latest<T: Real>(
        &self,
    ) -> Result<(Option<LoadedSnapshot<T>>, Vec<SkippedGeneration>), CheckpointError> {
        let mut skipped = Vec::new();
        for generation in self.generations()?.into_iter().rev() {
            let path = self.generation_path(generation);
            let attempt = self
                .vfs
                .read(&path)
                .map_err(|e| CheckpointError::Io {
                    path: path.clone(),
                    source: e,
                })
                .and_then(|bytes| Snapshot::<T>::from_bytes(&bytes));
            match attempt {
                Ok(snapshot) => {
                    return Ok((
                        Some(LoadedSnapshot {
                            generation,
                            snapshot,
                        }),
                        skipped,
                    ))
                }
                Err(reason) => skipped.push(SkippedGeneration { generation, reason }),
            }
        }
        Ok((None, skipped))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs;

    fn sample<T: Real>() -> Snapshot<T> {
        Snapshot {
            rung: 2,
            context_hash: 0xDEAD_BEEF_0123_4567,
            iterations: 42,
            x: vec![T::from_f64(1.5), T::from_f64(-2.25), T::from_f64(0.0)],
            r: vec![T::from_f64(0.5), T::from_f64(1e-8), T::from_f64(-3.0)],
            d: vec![T::from_f64(-0.125), T::from_f64(7.0), T::from_f64(2.5)],
            rho: T::from_f64(0.75),
            delta: T::from_f64(1e-6),
            delta0: T::from_f64(123.0),
        }
    }

    fn journal_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("plssvm_ckpt_{tag}_{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn crc32_known_vectors() {
        // standard test vector for the IEEE polynomial
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn fnv1a64_known_vectors() {
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
    }

    #[test]
    fn roundtrip_f64_and_f32() {
        let s = sample::<f64>();
        assert_eq!(Snapshot::<f64>::from_bytes(&s.to_bytes()).unwrap(), s);
        let s = sample::<f32>();
        assert_eq!(Snapshot::<f32>::from_bytes(&s.to_bytes()).unwrap(), s);
    }

    #[test]
    fn rejects_bad_magic_version_precision() {
        let good = sample::<f64>().to_bytes();

        let mut b = good.clone();
        b[0] = b'X';
        assert!(matches!(
            Snapshot::<f64>::from_bytes(&b),
            Err(CheckpointError::BadMagic)
        ));

        let mut b = good.clone();
        b[8] = 99;
        assert!(matches!(
            Snapshot::<f64>::from_bytes(&b),
            Err(CheckpointError::UnsupportedVersion(99))
        ));

        assert!(matches!(
            Snapshot::<f32>::from_bytes(&good),
            Err(CheckpointError::PrecisionMismatch {
                expected: 4,
                found: 8
            })
        ));
    }

    #[test]
    fn rejects_truncation_and_bitflips() {
        let good = sample::<f64>().to_bytes();
        // torn write: any strict prefix must be rejected
        for cut in [0, 7, 12, 39, 40, good.len() - 5, good.len() - 1] {
            assert!(
                Snapshot::<f64>::from_bytes(&good[..cut]).is_err(),
                "prefix of {cut} bytes accepted"
            );
        }
        // single bit flips anywhere in the payload or checksum are caught
        for byte in [41, good.len() / 2, good.len() - 2] {
            let mut b = good.clone();
            b[byte] ^= 0x10;
            assert!(
                Snapshot::<f64>::from_bytes(&b).is_err(),
                "bit flip at {byte} accepted"
            );
        }
    }

    #[test]
    fn rejects_non_finite_payload() {
        let mut s = sample::<f64>();
        s.r[1] = f64::NAN;
        let b = s.to_bytes();
        assert!(matches!(
            Snapshot::<f64>::from_bytes(&b),
            Err(CheckpointError::NonFinite { field: "r" })
        ));
        let mut s = sample::<f32>();
        s.delta0 = f32::INFINITY;
        assert!(matches!(
            Snapshot::<f32>::from_bytes(&s.to_bytes()),
            Err(CheckpointError::NonFinite { field: "delta0" })
        ));
    }

    #[test]
    fn journal_append_load_roundtrip() {
        let dir = journal_dir("roundtrip");
        let journal = CheckpointJournal::open(&dir, 3).unwrap();
        assert!(journal.is_empty().unwrap());
        let mut snap = sample::<f64>();
        assert_eq!(journal.append(&snap).unwrap(), 1);
        snap.iterations = 50;
        assert_eq!(journal.append(&snap).unwrap(), 2);
        let (loaded, skipped) = journal.load_latest::<f64>().unwrap();
        let loaded = loaded.unwrap();
        assert!(skipped.is_empty());
        assert_eq!(loaded.generation, 2);
        assert_eq!(loaded.snapshot, snap);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn journal_retention_prunes_old_generations() {
        let dir = journal_dir("retention");
        let journal = CheckpointJournal::open(&dir, 2).unwrap();
        let snap = sample::<f64>();
        for _ in 0..5 {
            journal.append(&snap).unwrap();
        }
        assert_eq!(journal.generations().unwrap(), vec![4, 5]);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn journal_falls_back_past_corrupt_tail() {
        let dir = journal_dir("fallback");
        let journal = CheckpointJournal::open(&dir, 5).unwrap();
        let mut snap = sample::<f64>();
        journal.append(&snap).unwrap(); // gen 1
        snap.iterations = 99;
        journal.append(&snap).unwrap(); // gen 2
        snap.iterations = 150;
        journal.append(&snap).unwrap(); // gen 3

        // corrupt gen 3 with a bit flip, truncate gen 2
        let g3 = dir.join("gen-00000003.ckpt");
        let mut bytes = fs::read(&g3).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        fs::write(&g3, &bytes).unwrap();
        let g2 = dir.join("gen-00000002.ckpt");
        let bytes = fs::read(&g2).unwrap();
        fs::write(&g2, &bytes[..bytes.len() / 3]).unwrap();

        let (loaded, skipped) = journal.load_latest::<f64>().unwrap();
        let loaded = loaded.unwrap();
        assert_eq!(loaded.generation, 1);
        assert_eq!(loaded.snapshot.iterations, 42);
        assert_eq!(skipped.len(), 2);
        assert_eq!(skipped[0].generation, 3);
        assert_eq!(skipped[0].reason.kind(), "checksum_mismatch");
        assert_eq!(skipped[1].generation, 2);
        assert_eq!(skipped[1].reason.kind(), "truncated");
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn journal_all_corrupt_reports_everything() {
        let dir = journal_dir("all_corrupt");
        let journal = CheckpointJournal::open(&dir, 5).unwrap();
        journal.append(&sample::<f64>()).unwrap();
        fs::write(dir.join("gen-00000001.ckpt"), b"garbage").unwrap();
        let (loaded, skipped) = journal.load_latest::<f64>().unwrap();
        assert!(loaded.is_none());
        assert_eq!(skipped.len(), 1);
        assert!(!journal.is_empty().unwrap());
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn task_journals_are_independent() {
        let dir = journal_dir("tasks");
        let journal = CheckpointJournal::open(&dir, 3).unwrap();
        let t0 = journal.for_task(0).unwrap();
        let t1 = journal.for_task(1).unwrap();
        t0.append(&sample::<f64>()).unwrap();
        assert!(t1.is_empty().unwrap());
        assert!(journal.is_empty().unwrap()); // root has no gen files
        let (loaded, _) = t0.load_latest::<f64>().unwrap();
        assert_eq!(loaded.unwrap().generation, 1);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn mismatch_errors_are_not_integrity_failures() {
        assert!(!CheckpointError::ContextMismatch {
            stored: 1,
            expected: 2
        }
        .is_integrity_failure());
        assert!(!CheckpointError::DimensionMismatch {
            stored: 1,
            expected: 2
        }
        .is_integrity_failure());
        assert!(CheckpointError::BadMagic.is_integrity_failure());
        assert!(CheckpointError::Truncated {
            expected: 44,
            found: 7
        }
        .is_integrity_failure());
    }
}
