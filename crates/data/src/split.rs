//! Train/test splitting utilities.

use rand::prelude::*;
use rand::rngs::StdRng;

use crate::error::DataError;
use crate::libsvm::LabeledData;
use crate::real::Real;

/// Splits a data set into a training and a test portion.
///
/// `test_fraction` of the points (rounded) go into the test set. With
/// `stratified == true` the split preserves the class ratio of the input
/// (like scikit-learn's `train_test_split(stratify=y)`); otherwise points
/// are drawn uniformly.
pub fn train_test_split<T: Real>(
    data: &LabeledData<T>,
    test_fraction: f64,
    stratified: bool,
    seed: u64,
) -> Result<(LabeledData<T>, LabeledData<T>), DataError> {
    if !(0.0..1.0).contains(&test_fraction) || test_fraction <= 0.0 {
        return Err(DataError::Invalid("test fraction must be in (0, 1)".into()));
    }
    let m = data.points();
    let n_test = ((m as f64) * test_fraction).round() as usize;
    if n_test == 0 || n_test >= m {
        return Err(DataError::Invalid(format!(
            "test fraction {test_fraction} leaves an empty split for {m} points"
        )));
    }
    let mut rng = StdRng::seed_from_u64(seed);

    let test_indices: Vec<usize> = if stratified {
        let mut pos: Vec<usize> = (0..m).filter(|&i| data.y[i].to_f64() > 0.0).collect();
        let mut neg: Vec<usize> = (0..m).filter(|&i| data.y[i].to_f64() < 0.0).collect();
        pos.shuffle(&mut rng);
        neg.shuffle(&mut rng);
        let n_pos_test = ((pos.len() as f64) * test_fraction).round() as usize;
        let n_neg_test = n_test.saturating_sub(n_pos_test).min(neg.len());
        let mut t: Vec<usize> = pos[..n_pos_test.min(pos.len())].to_vec();
        t.extend_from_slice(&neg[..n_neg_test]);
        t
    } else {
        let mut all: Vec<usize> = (0..m).collect();
        all.shuffle(&mut rng);
        all[..n_test].to_vec()
    };

    let mut is_test = vec![false; m];
    for &i in &test_indices {
        is_test[i] = true;
    }
    let train_indices: Vec<usize> = (0..m).filter(|&i| !is_test[i]).collect();
    let test_indices: Vec<usize> = (0..m).filter(|&i| is_test[i]).collect();

    let make = |idx: &[usize]| -> Result<LabeledData<T>, DataError> {
        LabeledData::with_label_map(
            data.x.select_rows(idx),
            idx.iter().map(|&i| data.y[i]).collect(),
            data.label_map,
        )
    };
    Ok((make(&train_indices)?, make(&test_indices)?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic::{generate_planes, PlanesConfig};

    fn sample() -> LabeledData<f64> {
        generate_planes(&PlanesConfig::new(100, 4, 42).with_flip_fraction(0.0)).unwrap()
    }

    #[test]
    fn split_sizes_add_up() {
        let d = sample();
        let (train, test) = train_test_split(&d, 0.25, false, 1).unwrap();
        assert_eq!(train.points(), 75);
        assert_eq!(test.points(), 25);
        assert_eq!(train.features(), d.features());
        assert_eq!(train.label_map, d.label_map);
    }

    #[test]
    fn stratified_preserves_class_ratio() {
        let d = sample();
        let (train, test) = train_test_split(&d, 0.2, true, 3).unwrap();
        let (tp, tn) = train.class_counts();
        let (sp, sn) = test.class_counts();
        assert_eq!(tp + sp, 50);
        assert_eq!(tn + sn, 50);
        assert_eq!(sp, 10);
        assert_eq!(sn, 10);
    }

    #[test]
    fn split_is_a_partition() {
        let d = sample();
        let (train, test) = train_test_split(&d, 0.3, false, 7).unwrap();
        // every original row appears exactly once across both splits
        let mut seen = std::collections::HashSet::new();
        for part in [&train, &test] {
            for p in 0..part.points() {
                let key: Vec<u64> = part.x.row(p).iter().map(|v| v.to_bits()).collect();
                assert!(seen.insert(key), "duplicate row across splits");
            }
        }
        assert_eq!(seen.len(), d.points());
    }

    #[test]
    fn deterministic_per_seed() {
        let d = sample();
        let (a, _) = train_test_split(&d, 0.2, true, 9).unwrap();
        let (b, _) = train_test_split(&d, 0.2, true, 9).unwrap();
        assert_eq!(a, b);
        let (c, _) = train_test_split(&d, 0.2, true, 10).unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn degenerate_fractions_rejected() {
        let d = sample();
        assert!(train_test_split(&d, 0.0, false, 0).is_err());
        assert!(train_test_split(&d, 1.0, false, 0).is_err());
        assert!(train_test_split(&d, -0.5, false, 0).is_err());
        assert!(train_test_split(&d, 0.001, false, 0).is_err()); // rounds to 0 test points
    }
}
