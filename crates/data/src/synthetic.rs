//! Synthetic data set generation.
//!
//! The paper's evaluation uses dense synthetic data produced by
//! scikit-learn's `make_classification` single-label generator via the
//! `generate_data.py` utility script with problem type **"planes"**: two
//! Gaussian clusters adjacent to each other, overlapping with a low
//! probability in a few points, plus 1 % randomly flipped labels to model
//! noise (§IV-B). This module reimplements that generator.

use rand::prelude::*;
use rand::rngs::StdRng;

use crate::dense::DenseMatrix;
use crate::error::DataError;
use crate::libsvm::LabeledData;
use crate::real::Real;

/// Draws one standard-normal sample via the Box–Muller transform.
///
/// `rand` 0.10 ships only uniform distributions, so we build the Gaussian
/// ourselves (two uniforms → one normal; the second output is discarded for
/// simplicity — generation is not a hot path).
pub fn standard_normal(rng: &mut impl Rng) -> f64 {
    loop {
        let u1: f64 = rng.random();
        if u1 <= f64::MIN_POSITIVE {
            continue; // avoid ln(0)
        }
        let u2: f64 = rng.random();
        return (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
    }
}

/// Fills `out` with i.i.d. standard-normal samples.
pub fn fill_standard_normal(rng: &mut impl Rng, out: &mut [f64]) {
    for v in out {
        *v = standard_normal(rng);
    }
}

/// Configuration of the "planes" problem generator.
#[derive(Debug, Clone)]
pub struct PlanesConfig {
    /// Number of data points `m` to generate (split evenly over the two
    /// classes; odd counts give the `+1` class one extra point).
    pub points: usize,
    /// Number of features `d` per data point.
    pub features: usize,
    /// Distance of each class centroid from the separating hyperplane, in
    /// units of the per-feature noise σ = 1. The paper's clusters are
    /// "adjacent … and overlap with a low probability in a few points";
    /// the default of 2.0 reproduces that.
    pub cluster_sep: f64,
    /// Fraction of labels flipped uniformly at random (paper: 1 %).
    pub flip_fraction: f64,
    /// RNG seed — every paper run regenerates fresh data, we keep it
    /// reproducible instead.
    pub seed: u64,
}

impl PlanesConfig {
    /// A new configuration with the paper's defaults (separation 2.0,
    /// 1 % label noise).
    pub fn new(points: usize, features: usize, seed: u64) -> Self {
        Self {
            points,
            features,
            cluster_sep: 2.0,
            flip_fraction: 0.01,
            seed,
        }
    }

    /// Override the cluster separation.
    pub fn with_cluster_sep(mut self, sep: f64) -> Self {
        self.cluster_sep = sep;
        self
    }

    /// Override the label flip fraction.
    pub fn with_flip_fraction(mut self, f: f64) -> Self {
        self.flip_fraction = f;
        self
    }
}

/// Generates a "planes" classification problem.
///
/// Two Gaussian clusters (unit variance per feature) sit at `±sep·ŵ` for a
/// random unit direction `ŵ`, so the optimal separator is the hyperplane
/// through the origin with normal `ŵ`. Points are shuffled, and
/// `flip_fraction` of the labels are inverted.
pub fn generate_planes<T: Real>(config: &PlanesConfig) -> Result<LabeledData<T>, DataError> {
    if config.points < 2 {
        return Err(DataError::Invalid(
            "planes generator needs at least 2 points".into(),
        ));
    }
    if config.features == 0 {
        return Err(DataError::Invalid(
            "planes generator needs at least 1 feature".into(),
        ));
    }
    if !(0.0..=1.0).contains(&config.flip_fraction) {
        return Err(DataError::Invalid(
            "flip fraction must be within [0, 1]".into(),
        ));
    }
    if config.cluster_sep < 0.0 {
        return Err(DataError::Invalid(
            "cluster separation must be non-negative".into(),
        ));
    }
    let mut rng = StdRng::seed_from_u64(config.seed);
    let d = config.features;
    let m = config.points;

    // Random unit normal direction of the separating hyperplane.
    let mut w = vec![0.0f64; d];
    loop {
        fill_standard_normal(&mut rng, &mut w);
        let norm: f64 = w.iter().map(|v| v * v).sum::<f64>().sqrt();
        if norm > 1e-12 {
            for v in &mut w {
                *v /= norm;
            }
            break;
        }
    }

    let pos = m.div_ceil(2);
    let mut x = DenseMatrix::<T>::zeros(m, d);
    let mut y = Vec::with_capacity(m);
    let mut noise = vec![0.0f64; d];
    for p in 0..m {
        let sign = if p < pos { 1.0 } else { -1.0 };
        fill_standard_normal(&mut rng, &mut noise);
        let row = x.row_mut(p);
        for f in 0..d {
            row[f] = T::from_f64(sign * config.cluster_sep * w[f] + noise[f]);
        }
        y.push(if sign > 0.0 { T::ONE } else { -T::ONE });
    }

    // Shuffle points so classes are interleaved like make_classification.
    let mut order: Vec<usize> = (0..m).collect();
    order.shuffle(&mut rng);
    let x = x.select_rows(&order);
    let mut y: Vec<T> = order.iter().map(|&i| y[i]).collect();

    // 1 % label noise: flip a uniformly random subset.
    let flips = ((m as f64) * config.flip_fraction).round() as usize;
    let mut idx: Vec<usize> = (0..m).collect();
    idx.shuffle(&mut rng);
    for &i in idx.iter().take(flips) {
        y[i] = -y[i];
    }

    LabeledData::new(x, y)
}

/// Configuration of the multi-class Gaussian blobs generator.
#[derive(Debug, Clone)]
pub struct BlobsConfig {
    /// Number of data points (distributed round-robin over the classes).
    pub points: usize,
    /// Number of features.
    pub features: usize,
    /// Number of classes (labels `1..=classes`).
    pub classes: usize,
    /// Distance of each class centroid from the origin (per-feature noise
    /// σ = 1).
    pub separation: f64,
    /// RNG seed.
    pub seed: u64,
}

impl BlobsConfig {
    /// Default separation 4.0 (well separated blobs).
    pub fn new(points: usize, features: usize, classes: usize, seed: u64) -> Self {
        Self {
            points,
            features,
            classes,
            separation: 4.0,
            seed,
        }
    }

    /// Overrides the centroid separation.
    pub fn with_separation(mut self, sep: f64) -> Self {
        self.separation = sep;
        self
    }
}

/// Generates a multi-class problem: `classes` Gaussian blobs at random
/// unit directions scaled by `separation`, unit noise. Labels are
/// `1..=classes`. Used by the multi-class extension
/// (`plssvm-core::multiclass`).
pub fn generate_blobs<T: Real>(
    config: &BlobsConfig,
) -> Result<crate::multiclass::MultiClassData<T>, DataError> {
    if config.classes < 2 {
        return Err(DataError::Invalid("need at least 2 classes".into()));
    }
    if config.points < config.classes {
        return Err(DataError::Invalid(
            "need at least one point per class".into(),
        ));
    }
    if config.features == 0 {
        return Err(DataError::Invalid("need at least 1 feature".into()));
    }
    let mut rng = StdRng::seed_from_u64(config.seed);
    let d = config.features;

    // one random unit centroid direction per class
    let mut centroids: Vec<Vec<f64>> = Vec::with_capacity(config.classes);
    for _ in 0..config.classes {
        let mut c = vec![0.0f64; d];
        loop {
            fill_standard_normal(&mut rng, &mut c);
            let norm: f64 = c.iter().map(|v| v * v).sum::<f64>().sqrt();
            if norm > 1e-12 {
                for v in &mut c {
                    *v *= config.separation / norm;
                }
                break;
            }
        }
        centroids.push(c);
    }

    let mut x = DenseMatrix::<T>::zeros(config.points, d);
    let mut labels = Vec::with_capacity(config.points);
    let mut noise = vec![0.0f64; d];
    for p in 0..config.points {
        let class = p % config.classes;
        fill_standard_normal(&mut rng, &mut noise);
        let row = x.row_mut(p);
        for f in 0..d {
            row[f] = T::from_f64(centroids[class][f] + noise[f]);
        }
        labels.push(class as i32 + 1);
    }
    // shuffle
    let mut order: Vec<usize> = (0..config.points).collect();
    order.shuffle(&mut rng);
    let x = x.select_rows(&order);
    let labels = order.iter().map(|&i| labels[i]).collect();
    crate::multiclass::MultiClassData::new(x, labels)
}

/// Configuration of the synthetic regression generator (the `sinc`
/// benchmark function classic in the LS-SVM literature).
#[derive(Debug, Clone)]
pub struct SincConfig {
    /// Number of samples.
    pub points: usize,
    /// Gaussian noise σ added to the targets.
    pub noise: f64,
    /// Input interval half-width (samples drawn uniformly from `[-w, w]`).
    pub width: f64,
    /// RNG seed.
    pub seed: u64,
}

impl SincConfig {
    /// Default: `[-10, 10]`, σ = 0.05.
    pub fn new(points: usize, seed: u64) -> Self {
        Self {
            points,
            noise: 0.05,
            width: 10.0,
            seed,
        }
    }

    /// Overrides the target noise.
    pub fn with_noise(mut self, noise: f64) -> Self {
        self.noise = noise;
        self
    }
}

/// Generates a 1D regression problem `y = sinc(x) + ε` (the standard
/// LS-SVM regression demo of Suykens & Vandewalle). Returns the feature
/// matrix (one column) and noisy targets.
pub fn generate_sinc<T: Real>(
    config: &SincConfig,
) -> Result<crate::libsvm::RegressionData<T>, DataError> {
    if config.points < 2 {
        return Err(DataError::Invalid("sinc needs at least 2 points".into()));
    }
    if config.noise < 0.0 || config.width <= 0.0 {
        return Err(DataError::Invalid(
            "sinc needs noise >= 0 and width > 0".into(),
        ));
    }
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut x = DenseMatrix::<T>::zeros(config.points, 1);
    let mut y = Vec::with_capacity(config.points);
    for p in 0..config.points {
        let xv: f64 = rng.random_range(-config.width..config.width);
        let clean = if xv.abs() < 1e-12 { 1.0 } else { xv.sin() / xv };
        x.set(p, 0, T::from_f64(xv));
        y.push(T::from_f64(
            clean + config.noise * standard_normal(&mut rng),
        ));
    }
    crate::libsvm::RegressionData::new(x, y)
}

#[cfg(test)]
// index loops in these tests mirror the paper's subscript notation
#[allow(clippy::needless_range_loop)]
mod tests {
    use super::*;

    #[test]
    fn standard_normal_moments() {
        let mut rng = StdRng::seed_from_u64(42);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| standard_normal(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "variance {var}");
    }

    #[test]
    fn generates_requested_shape() {
        let d: LabeledData<f64> = generate_planes(&PlanesConfig::new(101, 7, 1)).unwrap();
        assert_eq!(d.points(), 101);
        assert_eq!(d.features(), 7);
        assert!(d.x.all_finite());
    }

    #[test]
    fn classes_are_roughly_balanced() {
        let d: LabeledData<f64> = generate_planes(&PlanesConfig::new(1000, 4, 2)).unwrap();
        let (pos, neg) = d.class_counts();
        // 1% flips can shift the 500/500 split slightly
        assert!(pos.abs_diff(neg) <= 40, "{pos} vs {neg}");
    }

    #[test]
    fn deterministic_for_same_seed() {
        let a: LabeledData<f64> = generate_planes(&PlanesConfig::new(64, 8, 7)).unwrap();
        let b: LabeledData<f64> = generate_planes(&PlanesConfig::new(64, 8, 7)).unwrap();
        assert_eq!(a, b);
        let c: LabeledData<f64> = generate_planes(&PlanesConfig::new(64, 8, 8)).unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn separable_with_large_separation() {
        // With a huge separation and no flips, a linear classifier through
        // the origin along the centroid difference must be perfect.
        let cfg = PlanesConfig::new(400, 16, 3)
            .with_cluster_sep(20.0)
            .with_flip_fraction(0.0);
        let d: LabeledData<f64> = generate_planes(&cfg).unwrap();
        // Estimate w as mean(+1 points) - mean(-1 points).
        let mut w = vec![0.0f64; d.features()];
        for p in 0..d.points() {
            let s = d.y[p];
            for f in 0..d.features() {
                w[f] += s * d.x.get(p, f);
            }
        }
        let mut correct = 0;
        for p in 0..d.points() {
            let score: f64 = (0..d.features()).map(|f| w[f] * d.x.get(p, f)).sum();
            if score.signum() == d.y[p] {
                correct += 1;
            }
        }
        assert_eq!(correct, d.points());
    }

    #[test]
    fn flip_fraction_controls_noise() {
        let clean: LabeledData<f64> =
            generate_planes(&PlanesConfig::new(1000, 4, 5).with_flip_fraction(0.0)).unwrap();
        let noisy: LabeledData<f64> =
            generate_planes(&PlanesConfig::new(1000, 4, 5).with_flip_fraction(0.5)).unwrap();
        // same seed → same points; labels differ in about half of them
        assert_eq!(clean.x, noisy.x);
        let diff = clean.y.iter().zip(&noisy.y).filter(|(a, b)| a != b).count();
        assert_eq!(diff, 500);
    }

    #[test]
    fn invalid_configs_rejected() {
        assert!(generate_planes::<f64>(&PlanesConfig::new(1, 4, 0)).is_err());
        assert!(generate_planes::<f64>(&PlanesConfig::new(10, 0, 0)).is_err());
        assert!(
            generate_planes::<f64>(&PlanesConfig::new(10, 2, 0).with_flip_fraction(1.5)).is_err()
        );
        assert!(
            generate_planes::<f64>(&PlanesConfig::new(10, 2, 0).with_cluster_sep(-1.0)).is_err()
        );
    }

    #[test]
    fn works_in_f32() {
        let d: LabeledData<f32> = generate_planes(&PlanesConfig::new(32, 4, 11)).unwrap();
        assert_eq!(d.points(), 32);
        assert!(d.x.all_finite());
    }

    #[test]
    fn blobs_shape_and_balance() {
        let d = generate_blobs::<f64>(&BlobsConfig::new(90, 5, 3, 2)).unwrap();
        assert_eq!(d.points(), 90);
        assert_eq!(d.features(), 5);
        assert_eq!(d.classes, vec![1, 2, 3]);
        assert_eq!(d.class_counts(), vec![30, 30, 30]);
    }

    #[test]
    fn blobs_are_separable_at_high_separation() {
        // nearest-centroid classification must be near-perfect
        let d =
            generate_blobs::<f64>(&BlobsConfig::new(150, 8, 3, 3).with_separation(10.0)).unwrap();
        // estimate centroids from the labels
        let mut centroids = vec![vec![0.0; 8]; 3];
        let counts = d.class_counts();
        for p in 0..d.points() {
            let c = (d.labels[p] - 1) as usize;
            for f in 0..8 {
                centroids[c][f] += d.x.get(p, f) / counts[c] as f64;
            }
        }
        let mut correct = 0;
        for p in 0..d.points() {
            let best = (0..3)
                .min_by(|&a, &b| {
                    let da: f64 = (0..8)
                        .map(|f| (d.x.get(p, f) - centroids[a][f]).powi(2))
                        .sum();
                    let db: f64 = (0..8)
                        .map(|f| (d.x.get(p, f) - centroids[b][f]).powi(2))
                        .sum();
                    da.total_cmp(&db)
                })
                .unwrap();
            if best as i32 + 1 == d.labels[p] {
                correct += 1;
            }
        }
        assert!(correct >= 148, "{correct}/150");
    }

    #[test]
    fn blobs_invalid_configs() {
        assert!(generate_blobs::<f64>(&BlobsConfig::new(10, 4, 1, 0)).is_err());
        assert!(generate_blobs::<f64>(&BlobsConfig::new(2, 4, 3, 0)).is_err());
        assert!(generate_blobs::<f64>(&BlobsConfig::new(10, 0, 3, 0)).is_err());
    }

    #[test]
    fn sinc_targets_follow_the_function() {
        let d = generate_sinc::<f64>(&SincConfig::new(500, 7).with_noise(0.0)).unwrap();
        assert_eq!(d.points(), 500);
        assert_eq!(d.features(), 1);
        for p in 0..d.points() {
            let x = d.x.get(p, 0);
            let expected = if x.abs() < 1e-12 { 1.0 } else { x.sin() / x };
            assert!((d.y[p] - expected).abs() < 1e-12);
            assert!(x.abs() <= 10.0);
        }
    }

    #[test]
    fn sinc_noise_and_determinism() {
        let a = generate_sinc::<f64>(&SincConfig::new(100, 3)).unwrap();
        let b = generate_sinc::<f64>(&SincConfig::new(100, 3)).unwrap();
        assert_eq!(a, b);
        let clean = generate_sinc::<f64>(&SincConfig::new(100, 3).with_noise(0.0)).unwrap();
        assert_eq!(a.x, clean.x);
        assert_ne!(a.y, clean.y);
        assert!(generate_sinc::<f64>(&SincConfig::new(1, 0)).is_err());
        let mut bad = SincConfig::new(10, 0);
        bad.noise = -1.0;
        assert!(generate_sinc::<f64>(&bad).is_err());
    }
}
