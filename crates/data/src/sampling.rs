//! Deterministic landmark/sketch sampling for the randomized low-rank
//! (Nyström) solver path.
//!
//! Both samplers draw **without replacement**, are fully determined by
//! their `seed` (the vendored [`StdRng`] is platform-independent), and
//! return the chosen indices **sorted ascending** so downstream kernel
//! panel assembly walks the data in a cache-friendly, reproducible order.
//! No call touches global state, so the same seed produces bit-identical
//! landmark sets regardless of thread count or call site.

use rand::prelude::*;
use rand::rngs::StdRng;

/// Draws `k` distinct indices uniformly from `0..n` (partial
/// Fisher–Yates), sorted ascending. `k` is clamped to `n`.
pub fn sample_uniform(n: usize, k: usize, seed: u64) -> Vec<usize> {
    let k = k.min(n);
    if k == 0 {
        return Vec::new();
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut pool: Vec<usize> = (0..n).collect();
    // partial Fisher–Yates: after i swaps, pool[..i] is a uniform
    // k-subset prefix
    for i in 0..k {
        let j = rng.random_range(i..n);
        pool.swap(i, j);
    }
    let mut picked = pool[..k].to_vec();
    picked.sort_unstable();
    picked
}

/// Draws `k` distinct indices from `0..weights.len()` with probability
/// proportional to `weights[i]`, sorted ascending (Efraimidis–Spirakis
/// weighted reservoir keys: index `i` gets key `u_i^(1/w_i)`, the `k`
/// largest keys win).
///
/// Non-finite or non-positive weights participate with key `-inf`, i.e.
/// they are only chosen once every positively weighted index has been
/// taken. `k` is clamped to the number of indices.
pub fn sample_weighted(weights: &[f64], k: usize, seed: u64) -> Vec<usize> {
    let n = weights.len();
    let k = k.min(n);
    if k == 0 {
        return Vec::new();
    }
    let mut rng = StdRng::seed_from_u64(seed);
    // keys in log space for numerical robustness: ln(u)/w is monotone in
    // u^(1/w) for w > 0
    let mut keyed: Vec<(f64, usize)> = weights
        .iter()
        .enumerate()
        .map(|(i, &w)| {
            let u: f64 = rng.random();
            let key = if w.is_finite() && w > 0.0 {
                // u in [0,1): ln(0) = -inf is a valid (worst) key
                u.ln() / w
            } else {
                f64::NEG_INFINITY
            };
            (key, i)
        })
        .collect();
    // ties (e.g. several -inf keys) break by index, so the selection is a
    // total, deterministic order
    keyed.sort_unstable_by(|a, b| b.0.total_cmp(&a.0).then(a.1.cmp(&b.1)));
    let mut picked: Vec<usize> = keyed[..k].iter().map(|&(_, i)| i).collect();
    picked.sort_unstable();
    picked
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_valid(indices: &[usize], n: usize, k: usize) {
        assert_eq!(indices.len(), k.min(n));
        for w in indices.windows(2) {
            assert!(w[0] < w[1], "not sorted/distinct: {indices:?}");
        }
        for &i in indices {
            assert!(i < n);
        }
    }

    #[test]
    fn uniform_is_deterministic_sorted_distinct() {
        for (n, k, seed) in [(10, 3, 0), (100, 100, 7), (50, 1, 42), (1, 1, 9)] {
            let a = sample_uniform(n, k, seed);
            let b = sample_uniform(n, k, seed);
            assert_eq!(a, b);
            assert_valid(&a, n, k);
        }
    }

    #[test]
    fn uniform_edge_cases() {
        assert!(sample_uniform(10, 0, 1).is_empty());
        assert!(sample_uniform(0, 5, 1).is_empty());
        // k > n clamps to n and yields every index
        assert_eq!(sample_uniform(4, 99, 3), vec![0, 1, 2, 3]);
    }

    #[test]
    fn uniform_seeds_differ() {
        let a = sample_uniform(1000, 10, 1);
        let b = sample_uniform(1000, 10, 2);
        assert_ne!(a, b);
    }

    #[test]
    fn uniform_covers_the_range() {
        // over many seeds every index must appear at least once
        let mut seen = vec![false; 12];
        for seed in 0..200 {
            for i in sample_uniform(12, 3, seed) {
                seen[i] = true;
            }
        }
        assert!(seen.iter().all(|&s| s), "{seen:?}");
    }

    #[test]
    fn weighted_is_deterministic_sorted_distinct() {
        let w: Vec<f64> = (1..=20).map(|i| i as f64).collect();
        let a = sample_weighted(&w, 6, 11);
        let b = sample_weighted(&w, 6, 11);
        assert_eq!(a, b);
        assert_valid(&a, 20, 6);
    }

    #[test]
    fn weighted_prefers_heavy_indices() {
        // one index carries almost all the mass: it must (essentially)
        // always be selected
        let mut w = vec![1e-6; 50];
        w[17] = 1e6;
        let mut hits = 0;
        for seed in 0..100 {
            if sample_weighted(&w, 5, seed).contains(&17) {
                hits += 1;
            }
        }
        assert!(hits >= 99, "heavy index picked only {hits}/100 times");
    }

    #[test]
    fn weighted_handles_degenerate_weights() {
        // zero/negative/NaN weights never panic and only fill up after the
        // positive ones are exhausted
        let w = [0.0, -1.0, f64::NAN, 2.0, 3.0];
        let picked = sample_weighted(&w, 2, 5);
        assert_eq!(picked, vec![3, 4]);
        // asking for more than the positive mass still returns k indices
        let picked = sample_weighted(&w, 4, 5);
        assert_valid(&picked, 5, 4);
        assert!(picked.contains(&3) && picked.contains(&4));
        // all-degenerate weights fall back to index order
        let picked = sample_weighted(&[0.0, 0.0, 0.0], 2, 5);
        assert_eq!(picked, vec![0, 1]);
    }

    #[test]
    fn weighted_edge_cases() {
        assert!(sample_weighted(&[], 3, 1).is_empty());
        assert!(sample_weighted(&[1.0, 2.0], 0, 1).is_empty());
        assert_eq!(sample_weighted(&[1.0, 2.0], 9, 1), vec![0, 1]);
    }
}
