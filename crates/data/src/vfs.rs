//! Virtual filesystem with deterministic, seedable storage-fault injection.
//!
//! Every durability guarantee in the workspace — atomic artifact writes,
//! the checkpoint journal, model/scale/prediction writers, svm-serve's
//! hot-reload loader — ultimately rests on a filesystem that is assumed
//! to be perfect. Multi-hour, disk-resident training is exactly the
//! regime where that assumption breaks: ENOSPC mid-write, EIO on fsync,
//! torn renames, short reads from failing media. This module makes those
//! failures *reproducible*:
//!
//! * [`Vfs`] — the narrow filesystem interface every durability-bearing
//!   path goes through (create+write, fsync, rename, read, list, remove),
//! * [`RealVfs`] — the pass-through production implementation,
//! * [`FaultVfs`] — a deterministic fault injector in the spirit of the
//!   device-level `FaultPlan` of `plssvm-simgpu`: faults are scheduled at
//!   exact per-operation-class indices (no wall clock, no randomness at
//!   injection time), optionally restricted to paths containing a
//!   substring, transient (fire once) or persistent (fire from the
//!   trigger on). A failing chaos run replays bit-for-bit.
//!
//! ## Fault model
//!
//! | kind         | op classes                  | effect                                     |
//! |--------------|-----------------------------|--------------------------------------------|
//! | `enospc`     | write, sync, rename, mkdir  | half the bytes land, then "no space" error |
//! | `eio`        | any                         | the operation fails with an I/O error      |
//! | `shortwrite` | write                       | silently writes half the bytes             |
//! | `tornwrite`  | write                       | like `shortwrite`, but metadata *lies*     |
//! | `fsyncfail`  | sync                        | the fsync reports failure                  |
//! | `renamefail` | rename                      | the rename reports failure                 |
//! | `shortread`  | read                        | silently returns a prefix of the file      |
//! | `bitrot`     | read                        | silently flips one bit mid-buffer          |
//!
//! `shortwrite` is caught by [`crate::io::write_atomic_with`]'s post-sync
//! length verification; `tornwrite` additionally falsifies
//! [`Vfs::file_len`] for the damaged file (modelling a page cache that
//! acknowledges data the disk lost), so the damage is only discoverable
//! at *read* time — the scenario the checkpoint CRC and every loader's
//! validation exist for.

use std::collections::HashMap;
use std::fmt;
use std::fs::{self, File, OpenOptions};
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

use crate::error::DataError;

/// The narrow filesystem interface durability-bearing code goes through.
///
/// Implementations must be thread-safe: the checkpoint journal and the
/// serve reload loader call into one shared instance from worker threads.
pub trait Vfs: Send + Sync + fmt::Debug {
    /// Creates `path` (which must not already exist) holding `bytes`.
    fn create_write(&self, path: &Path, bytes: &[u8]) -> io::Result<()>;

    /// Fsyncs the file at `path` so its contents survive a power loss.
    fn sync_file(&self, path: &Path) -> io::Result<()>;

    /// Fsyncs the directory at `path` so renames inside it are durable.
    /// A no-op on platforms without directory fsync.
    fn sync_dir(&self, path: &Path) -> io::Result<()>;

    /// Atomically renames `from` over `to` (same filesystem).
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()>;

    /// Removes the file at `path`.
    fn remove_file(&self, path: &Path) -> io::Result<()>;

    /// Reads the whole file at `path`.
    fn read(&self, path: &Path) -> io::Result<Vec<u8>>;

    /// Reads the whole file at `path` as UTF-8 text.
    fn read_to_string(&self, path: &Path) -> io::Result<String> {
        String::from_utf8(self.read(path)?).map_err(|_| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                "stream did not contain valid UTF-8",
            )
        })
    }

    /// The file names (not full paths) inside directory `dir`.
    fn list_dir(&self, dir: &Path) -> io::Result<Vec<String>>;

    /// Creates directory `dir` and all missing parents.
    fn create_dir_all(&self, dir: &Path) -> io::Result<()>;

    /// The current length of the file at `path` in bytes. A metadata
    /// lookup, not a fault-eligible operation — but see
    /// [`FaultKind::TornWrite`], which makes it lie.
    fn file_len(&self, path: &Path) -> io::Result<u64>;
}

/// Pass-through [`Vfs`] over the real filesystem. The production default
/// everywhere: `write_atomic(path, bytes)` is
/// `write_atomic_with(&RealVfs, path, bytes)`.
#[derive(Debug, Clone, Copy, Default)]
pub struct RealVfs;

impl Vfs for RealVfs {
    fn create_write(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        let mut file = OpenOptions::new().write(true).create_new(true).open(path)?;
        file.write_all(bytes)
    }

    fn sync_file(&self, path: &Path) -> io::Result<()> {
        File::open(path)?.sync_all()
    }

    fn sync_dir(&self, path: &Path) -> io::Result<()> {
        #[cfg(unix)]
        {
            File::open(path)?.sync_all()
        }
        #[cfg(not(unix))]
        {
            let _ = path;
            Ok(())
        }
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        fs::rename(from, to)
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        fs::remove_file(path)
    }

    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        fs::read(path)
    }

    fn read_to_string(&self, path: &Path) -> io::Result<String> {
        fs::read_to_string(path)
    }

    fn list_dir(&self, dir: &Path) -> io::Result<Vec<String>> {
        let mut names = Vec::new();
        for entry in fs::read_dir(dir)? {
            names.push(entry?.file_name().to_string_lossy().into_owned());
        }
        Ok(names)
    }

    fn create_dir_all(&self, dir: &Path) -> io::Result<()> {
        fs::create_dir_all(dir)
    }

    fn file_len(&self, path: &Path) -> io::Result<u64> {
        Ok(fs::metadata(path)?.len())
    }
}

/// The class of filesystem operation a fault can trigger on. Each class
/// has its own deterministic operation counter inside [`FaultVfs`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpClass {
    /// [`Vfs::create_write`].
    Write,
    /// [`Vfs::sync_file`] and [`Vfs::sync_dir`].
    Sync,
    /// [`Vfs::rename`].
    Rename,
    /// [`Vfs::read`] / [`Vfs::read_to_string`].
    Read,
    /// [`Vfs::remove_file`].
    Remove,
    /// [`Vfs::list_dir`].
    List,
    /// [`Vfs::create_dir_all`].
    Mkdir,
}

impl OpClass {
    /// All classes, in counter order.
    pub const ALL: [OpClass; 7] = [
        OpClass::Write,
        OpClass::Sync,
        OpClass::Rename,
        OpClass::Read,
        OpClass::Remove,
        OpClass::List,
        OpClass::Mkdir,
    ];

    fn index(self) -> usize {
        match self {
            OpClass::Write => 0,
            OpClass::Sync => 1,
            OpClass::Rename => 2,
            OpClass::Read => 3,
            OpClass::Remove => 4,
            OpClass::List => 5,
            OpClass::Mkdir => 6,
        }
    }

    /// The stable lower-case name used by the spec grammar.
    pub fn as_str(self) -> &'static str {
        match self {
            OpClass::Write => "write",
            OpClass::Sync => "sync",
            OpClass::Rename => "rename",
            OpClass::Read => "read",
            OpClass::Remove => "remove",
            OpClass::List => "list",
            OpClass::Mkdir => "mkdir",
        }
    }

    fn parse(s: &str) -> Option<Self> {
        Some(match s {
            "write" => OpClass::Write,
            "sync" => OpClass::Sync,
            "rename" => OpClass::Rename,
            "read" => OpClass::Read,
            "remove" => OpClass::Remove,
            "list" => OpClass::List,
            "mkdir" => OpClass::Mkdir,
            _ => return None,
        })
    }
}

/// What an injected storage fault does. See the module-level fault table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Out of space: half the bytes land, then the op reports ENOSPC.
    Enospc,
    /// Generic I/O failure of the whole operation.
    Eio,
    /// Silent short write: half the bytes land, the op reports success.
    /// Caught by the post-sync length verification of `write_atomic`.
    ShortWrite,
    /// Torn write: like [`FaultKind::ShortWrite`] but [`Vfs::file_len`]
    /// keeps reporting the *intended* length (the page cache acknowledged
    /// data the disk lost), so the damage survives write-side
    /// verification and must be caught by the reader's validation.
    TornWrite,
    /// The fsync reports failure; data may or may not be durable.
    FsyncFail,
    /// The rename reports failure; the destination is untouched.
    RenameFail,
    /// Silent short read: the first half of the file is returned.
    ShortRead,
    /// Silent single-bit corruption in the returned buffer.
    BitRot,
}

impl FaultKind {
    /// Every fault kind, for sweep harnesses.
    pub const ALL: [FaultKind; 8] = [
        FaultKind::Enospc,
        FaultKind::Eio,
        FaultKind::ShortWrite,
        FaultKind::TornWrite,
        FaultKind::FsyncFail,
        FaultKind::RenameFail,
        FaultKind::ShortRead,
        FaultKind::BitRot,
    ];

    /// The stable lower-case name used by the spec grammar.
    pub fn as_str(self) -> &'static str {
        match self {
            FaultKind::Enospc => "enospc",
            FaultKind::Eio => "eio",
            FaultKind::ShortWrite => "shortwrite",
            FaultKind::TornWrite => "tornwrite",
            FaultKind::FsyncFail => "fsyncfail",
            FaultKind::RenameFail => "renamefail",
            FaultKind::ShortRead => "shortread",
            FaultKind::BitRot => "bitrot",
        }
    }

    fn parse(s: &str) -> Option<Self> {
        Some(match s {
            "enospc" => FaultKind::Enospc,
            "eio" => FaultKind::Eio,
            "shortwrite" => FaultKind::ShortWrite,
            "tornwrite" => FaultKind::TornWrite,
            "fsyncfail" => FaultKind::FsyncFail,
            "renamefail" => FaultKind::RenameFail,
            "shortread" => FaultKind::ShortRead,
            "bitrot" => FaultKind::BitRot,
            _ => return None,
        })
    }

    /// True when this kind can fire on operations of `class`.
    pub fn applies_to(self, class: OpClass) -> bool {
        match self {
            FaultKind::Eio => true,
            FaultKind::Enospc => matches!(
                class,
                OpClass::Write | OpClass::Sync | OpClass::Rename | OpClass::Mkdir
            ),
            FaultKind::ShortWrite | FaultKind::TornWrite => class == OpClass::Write,
            FaultKind::FsyncFail => class == OpClass::Sync,
            FaultKind::RenameFail => class == OpClass::Rename,
            FaultKind::ShortRead | FaultKind::BitRot => class == OpClass::Read,
        }
    }
}

/// One scheduled storage fault: `kind` fires on the `at_op`-th operation
/// of `class` (0-based; counted among operations whose path contains
/// `path_pattern` when one is set).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultSpec {
    /// What happens.
    pub kind: FaultKind,
    /// The operation class the fault triggers on.
    pub class: OpClass,
    /// 0-based index among matching operations at which the fault fires.
    pub at_op: u64,
    /// When set, only operations whose path contains this substring are
    /// counted (and faulted).
    pub path_pattern: Option<String>,
    /// Transient faults fire exactly once; persistent faults fire on the
    /// trigger and on every later matching operation.
    pub persistent: bool,
}

impl FaultSpec {
    /// Serializes back into the spec grammar (`kind:class@n[~pat][!]`).
    pub fn to_spec(&self) -> String {
        let mut out = format!(
            "{}:{}@{}",
            self.kind.as_str(),
            self.class.as_str(),
            self.at_op
        );
        if let Some(p) = &self.path_pattern {
            out.push('~');
            out.push_str(p);
        }
        if self.persistent {
            out.push('!');
        }
        out
    }
}

/// A deterministic schedule of storage faults.
///
/// Build explicitly with [`FaultPlan::fault`], parse a textual spec with
/// [`FaultPlan::parse`] (the CLI's `--io-faults` grammar), or generate a
/// reproducible pseudo-random plan with [`FaultPlan::seeded`].
///
/// ```
/// use plssvm_data::vfs::FaultPlan;
///
/// let plan = FaultPlan::parse("enospc:write@3; shortread:read@0~model!").unwrap();
/// let same = FaultPlan::parse(&plan.to_spec()).unwrap();
/// assert_eq!(plan, same);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    specs: Vec<FaultSpec>,
}

impl FaultPlan {
    /// An empty plan (no faults; a [`FaultVfs`] over it is a pure
    /// pass-through, byte-identical to [`RealVfs`]).
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one scheduled fault. Panics if `kind` cannot fire on
    /// `class` — schedules are authored by tests and the CLI parser,
    /// both of which validate first.
    pub fn fault(
        mut self,
        kind: FaultKind,
        class: OpClass,
        at_op: u64,
        path_pattern: Option<&str>,
        persistent: bool,
    ) -> Self {
        assert!(
            kind.applies_to(class),
            "fault kind '{}' cannot fire on '{}' operations",
            kind.as_str(),
            class.as_str()
        );
        self.specs.push(FaultSpec {
            kind,
            class,
            at_op,
            path_pattern: path_pattern.map(str::to_owned),
            persistent,
        });
        self
    }

    /// All scheduled faults, in insertion order (which is also match
    /// priority when several specs hit the same operation).
    pub fn specs(&self) -> &[FaultSpec] {
        &self.specs
    }

    /// True if the plan schedules nothing.
    pub fn is_empty(&self) -> bool {
        self.specs.is_empty()
    }

    /// Serializes the plan into the spec grammar.
    pub fn to_spec(&self) -> String {
        self.specs
            .iter()
            .map(FaultSpec::to_spec)
            .collect::<Vec<_>>()
            .join(";")
    }

    /// A reproducible pseudo-random plan: `seed` fully determines the
    /// schedule. Faults land on operation indices `0..horizon` with a mix
    /// of kinds, classes and persistence; the same seed always produces
    /// the same plan (and therefore the same injected faults on the same
    /// operation sequence).
    pub fn seeded(seed: u64, horizon: u64) -> Self {
        let mut rng = Lcg::new(seed);
        let horizon = horizon.max(1);
        let count = (horizon / 8).clamp(1, 16);
        let mut plan = FaultPlan::new();
        for _ in 0..count {
            let class = match rng.next_below(5) {
                0 => OpClass::Write,
                1 => OpClass::Sync,
                2 => OpClass::Rename,
                3 => OpClass::Read,
                _ => OpClass::Remove,
            };
            let applicable: Vec<FaultKind> = FaultKind::ALL
                .into_iter()
                .filter(|k| k.applies_to(class))
                .collect();
            let kind = applicable[rng.next_below(applicable.len() as u64) as usize];
            let at_op = rng.next_below(horizon);
            let persistent = rng.next_below(4) == 0;
            plan.specs.push(FaultSpec {
                kind,
                class,
                at_op,
                path_pattern: None,
                persistent,
            });
        }
        plan
    }

    /// Parses the `--io-faults` spec grammar. Entries are separated by
    /// `;` or `,`:
    ///
    /// * `seed:N` or `seed:N@H` — a [`FaultPlan::seeded`] plan over
    ///   operation horizon `H` (default 64),
    /// * `kind:class@n` — `kind` fires on the `n`-th operation of
    ///   `class` (0-based),
    /// * an optional `~substr` suffix counts (and faults) only
    ///   operations on paths containing `substr`,
    /// * a trailing `!` makes the fault persistent (it keeps firing).
    ///
    /// Example: `enospc:write@3;eio:read@0~gen-!`.
    pub fn parse(spec: &str) -> Result<Self, DataError> {
        let mut plan = FaultPlan::new();
        for raw in spec.split([';', ',']) {
            let entry = raw.trim();
            if entry.is_empty() {
                continue;
            }
            if let Some(rest) = entry.strip_prefix("seed:") {
                let (seed_str, horizon_str) = match rest.split_once('@') {
                    Some((s, h)) => (s, Some(h)),
                    None => (rest, None),
                };
                let seed: u64 = seed_str.parse().map_err(|_| {
                    DataError::Invalid(format!("io-faults: invalid seed in '{entry}'"))
                })?;
                let horizon: u64 = match horizon_str {
                    Some(h) => h.parse().map_err(|_| {
                        DataError::Invalid(format!("io-faults: invalid horizon in '{entry}'"))
                    })?,
                    None => 64,
                };
                plan.specs.extend(Self::seeded(seed, horizon).specs);
                continue;
            }
            let (persistent, entry) = match entry.strip_suffix('!') {
                Some(e) => (true, e),
                None => (false, entry),
            };
            let (kind_str, rest) = entry.split_once(':').ok_or_else(|| {
                DataError::Invalid(format!(
                    "io-faults: expected 'kind:class@n' or 'seed:N', got '{entry}'"
                ))
            })?;
            let kind = FaultKind::parse(kind_str).ok_or_else(|| {
                DataError::Invalid(format!("io-faults: unknown fault kind '{kind_str}'"))
            })?;
            let (class_str, rest) = rest.split_once('@').ok_or_else(|| {
                DataError::Invalid(format!("io-faults: missing '@op-index' in '{entry}'"))
            })?;
            let class = OpClass::parse(class_str).ok_or_else(|| {
                DataError::Invalid(format!("io-faults: unknown op class '{class_str}'"))
            })?;
            if !kind.applies_to(class) {
                return Err(DataError::Invalid(format!(
                    "io-faults: fault kind '{kind_str}' cannot fire on '{class_str}' operations"
                )));
            }
            let (at_str, pattern) = match rest.split_once('~') {
                Some((a, p)) => (a, Some(p.to_owned())),
                None => (rest, None),
            };
            let at_op: u64 = at_str.parse().map_err(|_| {
                DataError::Invalid(format!("io-faults: invalid op index in '{entry}'"))
            })?;
            plan.specs.push(FaultSpec {
                kind,
                class,
                at_op,
                path_pattern: pattern,
                persistent,
            });
        }
        Ok(plan)
    }
}

/// Deterministic LCG (same constants as the mutation corpora).
struct Lcg(u64);

impl Lcg {
    fn new(seed: u64) -> Self {
        Self(
            seed.wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407),
        )
    }

    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 11
    }

    fn next_below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }
}

/// One fault that actually fired, for harness assertions and telemetry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InjectedFault {
    /// What fired.
    pub kind: FaultKind,
    /// The operation class it fired on.
    pub class: OpClass,
    /// The per-class operation index at which it fired.
    pub op_index: u64,
    /// The path the operation was acting on.
    pub path: PathBuf,
}

#[derive(Debug)]
struct FaultState {
    /// Per-class operation counters (every op of the class, matched or not).
    counters: [u64; 7],
    /// Per-spec count of *matching* operations seen so far.
    seen: Vec<u64>,
    /// Per-spec count of firings (transient specs stop at 1).
    fired: Vec<u64>,
    /// Audit log of everything that fired.
    log: Vec<InjectedFault>,
    /// Lengths [`FaultKind::TornWrite`] promised for damaged files.
    torn_lens: HashMap<PathBuf, u64>,
}

/// A [`Vfs`] decorator injecting the faults scheduled by a [`FaultPlan`].
///
/// With an empty plan every operation is a pure pass-through to the
/// inner [`Vfs`] — byte-identical behaviour to [`RealVfs`], pinned by a
/// property test. All state is behind one mutex, so injection order is
/// deterministic even under concurrent use (per-class counters order
/// operations, not wall clock).
#[derive(Debug)]
pub struct FaultVfs {
    inner: Arc<dyn Vfs>,
    plan: FaultPlan,
    state: Mutex<FaultState>,
}

impl FaultVfs {
    /// Wraps [`RealVfs`] with `plan`.
    pub fn new(plan: FaultPlan) -> Self {
        Self::over(Arc::new(RealVfs), plan)
    }

    /// Wraps an arbitrary inner [`Vfs`] with `plan`.
    pub fn over(inner: Arc<dyn Vfs>, plan: FaultPlan) -> Self {
        let n = plan.specs.len();
        Self {
            inner,
            plan,
            state: Mutex::new(FaultState {
                counters: [0; 7],
                seen: vec![0; n],
                fired: vec![0; n],
                log: Vec::new(),
                torn_lens: HashMap::new(),
            }),
        }
    }

    /// Everything that fired so far, in firing order.
    pub fn injected(&self) -> Vec<InjectedFault> {
        self.state.lock().unwrap().log.clone()
    }

    /// Total number of faults that fired so far.
    pub fn total_injected(&self) -> usize {
        self.state.lock().unwrap().log.len()
    }

    /// The number of operations of `class` observed so far (faulted or
    /// not). Chaos sweeps run once fault-free to size their schedules.
    pub fn ops(&self, class: OpClass) -> u64 {
        self.state.lock().unwrap().counters[class.index()]
    }

    /// Checks the plan for a fault on this (class, path) op; returns the
    /// kind to inject, if any. Always advances the counters.
    fn check(&self, class: OpClass, path: &Path) -> Option<FaultKind> {
        let mut state = self.state.lock().unwrap();
        let state = &mut *state;
        let op_index = state.counters[class.index()];
        state.counters[class.index()] += 1;
        let path_str = path.to_string_lossy();
        let mut hit = None;
        // Visit every spec (each keeps its own matching-op count), fire
        // the first eligible one.
        for (i, spec) in self.plan.specs.iter().enumerate() {
            if spec.class != class {
                continue;
            }
            if let Some(p) = &spec.path_pattern {
                if !path_str.contains(p.as_str()) {
                    continue;
                }
            }
            let s = state.seen[i];
            state.seen[i] += 1;
            let eligible = if spec.persistent {
                s >= spec.at_op
            } else {
                s == spec.at_op && state.fired[i] == 0
            };
            if eligible && hit.is_none() {
                state.fired[i] += 1;
                hit = Some(spec.kind);
            }
        }
        if let Some(kind) = hit {
            state.log.push(InjectedFault {
                kind,
                class,
                op_index,
                path: path.to_path_buf(),
            });
        }
        hit
    }
}

fn injected_err(kind: FaultKind, class: OpClass, path: &Path) -> io::Error {
    let what = match kind {
        FaultKind::Enospc => "ENOSPC (no space left on device)",
        FaultKind::Eio => "EIO (input/output error)",
        FaultKind::FsyncFail => "EIO (fsync failed)",
        FaultKind::RenameFail => "EIO (rename failed)",
        _ => "injected fault",
    };
    io::Error::other(format!(
        "injected {what} on {} of '{}'",
        class.as_str(),
        path.display()
    ))
}

impl Vfs for FaultVfs {
    fn create_write(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        match self.check(OpClass::Write, path) {
            None => self.inner.create_write(path, bytes),
            Some(FaultKind::Eio) => Err(injected_err(FaultKind::Eio, OpClass::Write, path)),
            Some(FaultKind::Enospc) => {
                // realistic ENOSPC: a prefix lands before the error
                let _ = self.inner.create_write(path, &bytes[..bytes.len() / 2]);
                Err(injected_err(FaultKind::Enospc, OpClass::Write, path))
            }
            Some(FaultKind::ShortWrite) => self.inner.create_write(path, &bytes[..bytes.len() / 2]),
            Some(FaultKind::TornWrite) => {
                self.inner.create_write(path, &bytes[..bytes.len() / 2])?;
                self.state
                    .lock()
                    .unwrap()
                    .torn_lens
                    .insert(path.to_path_buf(), bytes.len() as u64);
                Ok(())
            }
            Some(other) => {
                debug_assert!(false, "{other:?} cannot fire on writes");
                self.inner.create_write(path, bytes)
            }
        }
    }

    fn sync_file(&self, path: &Path) -> io::Result<()> {
        match self.check(OpClass::Sync, path) {
            None => self.inner.sync_file(path),
            Some(kind) => Err(injected_err(kind, OpClass::Sync, path)),
        }
    }

    fn sync_dir(&self, path: &Path) -> io::Result<()> {
        match self.check(OpClass::Sync, path) {
            None => self.inner.sync_dir(path),
            Some(kind) => Err(injected_err(kind, OpClass::Sync, path)),
        }
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        match self.check(OpClass::Rename, to) {
            None => {
                self.inner.rename(from, to)?;
                // a torn temp file carries its lie to the destination
                let mut state = self.state.lock().unwrap();
                if let Some(len) = state.torn_lens.remove(from) {
                    state.torn_lens.insert(to.to_path_buf(), len);
                }
                Ok(())
            }
            Some(kind) => Err(injected_err(kind, OpClass::Rename, to)),
        }
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        match self.check(OpClass::Remove, path) {
            None => {
                self.inner.remove_file(path)?;
                self.state.lock().unwrap().torn_lens.remove(path);
                Ok(())
            }
            Some(kind) => Err(injected_err(kind, OpClass::Remove, path)),
        }
    }

    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        match self.check(OpClass::Read, path) {
            None => self.inner.read(path),
            Some(FaultKind::ShortRead) => {
                let mut bytes = self.inner.read(path)?;
                bytes.truncate(bytes.len() / 2);
                Ok(bytes)
            }
            Some(FaultKind::BitRot) => {
                let mut bytes = self.inner.read(path)?;
                if !bytes.is_empty() {
                    let mid = bytes.len() / 2;
                    bytes[mid] ^= 0x10;
                }
                Ok(bytes)
            }
            Some(kind) => Err(injected_err(kind, OpClass::Read, path)),
        }
    }

    fn list_dir(&self, dir: &Path) -> io::Result<Vec<String>> {
        match self.check(OpClass::List, dir) {
            None => self.inner.list_dir(dir),
            Some(kind) => Err(injected_err(kind, OpClass::List, dir)),
        }
    }

    fn create_dir_all(&self, dir: &Path) -> io::Result<()> {
        match self.check(OpClass::Mkdir, dir) {
            None => self.inner.create_dir_all(dir),
            Some(kind) => Err(injected_err(kind, OpClass::Mkdir, dir)),
        }
    }

    fn file_len(&self, path: &Path) -> io::Result<u64> {
        // metadata lookups are not fault-eligible, but a torn write's lie
        // lives here: the promised length masks the truncation
        if let Some(len) = self.state.lock().unwrap().torn_lens.get(path) {
            return Ok(*len);
        }
        self.inner.file_len(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "plssvm-vfs-{tag}-{}-{}",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .unwrap()
                .as_nanos()
        ));
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn spec_grammar_round_trips() {
        let plan = FaultPlan::parse("enospc:write@3; shortread:read@0~model!").unwrap();
        assert_eq!(plan.specs().len(), 2);
        assert_eq!(plan.specs()[0].kind, FaultKind::Enospc);
        assert_eq!(plan.specs()[0].class, OpClass::Write);
        assert_eq!(plan.specs()[0].at_op, 3);
        assert!(!plan.specs()[0].persistent);
        assert_eq!(plan.specs()[1].path_pattern.as_deref(), Some("model"));
        assert!(plan.specs()[1].persistent);
        let reparsed = FaultPlan::parse(&plan.to_spec()).unwrap();
        assert_eq!(plan, reparsed);
    }

    #[test]
    fn spec_grammar_rejects_bad_entries() {
        assert!(FaultPlan::parse("nonsense").is_err());
        assert!(FaultPlan::parse("badkind:write@0").is_err());
        assert!(FaultPlan::parse("eio:badclass@0").is_err());
        assert!(FaultPlan::parse("eio:write@x").is_err());
        assert!(FaultPlan::parse("seed:abc").is_err());
        // kind/class applicability is validated at parse time
        assert!(FaultPlan::parse("bitrot:write@0").is_err());
        assert!(FaultPlan::parse("enospc:read@0").is_err());
    }

    #[test]
    fn seeded_plans_are_deterministic() {
        let a = FaultPlan::seeded(42, 64);
        let b = FaultPlan::seeded(42, 64);
        assert_eq!(a, b);
        assert!(!a.is_empty());
        let c = FaultPlan::seeded(43, 64);
        assert_ne!(a, c, "different seeds should differ (overwhelmingly)");
        // seed entries in the grammar expand to the same plan
        let parsed = FaultPlan::parse("seed:42@64").unwrap();
        assert_eq!(parsed, a);
    }

    #[test]
    fn transient_fault_fires_exactly_once() {
        let dir = tmpdir("transient");
        let vfs =
            FaultVfs::new(FaultPlan::new().fault(FaultKind::Eio, OpClass::Write, 1, None, false));
        assert!(vfs.create_write(&dir.join("a"), b"aa").is_ok());
        assert!(vfs.create_write(&dir.join("b"), b"bb").is_err());
        assert!(vfs.create_write(&dir.join("c"), b"cc").is_ok());
        assert_eq!(vfs.total_injected(), 1);
        assert_eq!(vfs.ops(OpClass::Write), 3);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn persistent_fault_keeps_firing() {
        let dir = tmpdir("persistent");
        let vfs =
            FaultVfs::new(FaultPlan::new().fault(FaultKind::Eio, OpClass::Write, 1, None, true));
        assert!(vfs.create_write(&dir.join("a"), b"aa").is_ok());
        assert!(vfs.create_write(&dir.join("b"), b"bb").is_err());
        assert!(vfs.create_write(&dir.join("c"), b"cc").is_err());
        assert_eq!(vfs.total_injected(), 2);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn path_pattern_scopes_fault_and_counting() {
        let dir = tmpdir("pattern");
        let vfs = FaultVfs::new(FaultPlan::new().fault(
            FaultKind::Eio,
            OpClass::Write,
            0,
            Some("model"),
            false,
        ));
        // non-matching writes neither fire nor advance the spec's count
        assert!(vfs.create_write(&dir.join("data.csv"), b"x").is_ok());
        assert!(vfs.create_write(&dir.join("my.model"), b"x").is_err());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn enospc_leaves_partial_file_and_errors_with_path() {
        let dir = tmpdir("enospc");
        let target = dir.join("out.bin");
        let vfs = FaultVfs::new(FaultPlan::new().fault(
            FaultKind::Enospc,
            OpClass::Write,
            0,
            None,
            false,
        ));
        let err = vfs.create_write(&target, b"0123456789").unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("ENOSPC"), "{msg}");
        assert!(msg.contains("out.bin"), "{msg}");
        assert_eq!(fs::read(&target).unwrap(), b"01234");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn short_write_is_silent_but_len_is_truthful() {
        let dir = tmpdir("shortwrite");
        let target = dir.join("out.bin");
        let vfs = FaultVfs::new(FaultPlan::new().fault(
            FaultKind::ShortWrite,
            OpClass::Write,
            0,
            None,
            false,
        ));
        vfs.create_write(&target, b"0123456789").unwrap();
        assert_eq!(vfs.file_len(&target).unwrap(), 5);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_write_lies_about_length_until_removed() {
        let dir = tmpdir("torn");
        let target = dir.join("out.bin");
        let moved = dir.join("final.bin");
        let vfs = FaultVfs::new(FaultPlan::new().fault(
            FaultKind::TornWrite,
            OpClass::Write,
            0,
            None,
            false,
        ));
        vfs.create_write(&target, b"0123456789").unwrap();
        // metadata claims all ten bytes landed...
        assert_eq!(vfs.file_len(&target).unwrap(), 10);
        // ...but the disk truth is half of them
        assert_eq!(fs::read(&target).unwrap().len(), 5);
        // the lie follows the file through a rename
        vfs.rename(&target, &moved).unwrap();
        assert_eq!(vfs.file_len(&moved).unwrap(), 10);
        vfs.remove_file(&moved).unwrap();
        assert!(vfs.file_len(&moved).is_err());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn bit_rot_flips_one_bit_on_read() {
        let dir = tmpdir("bitrot");
        let target = dir.join("data.bin");
        fs::write(&target, b"0123456789").unwrap();
        let vfs =
            FaultVfs::new(FaultPlan::new().fault(FaultKind::BitRot, OpClass::Read, 0, None, false));
        let rotten = vfs.read(&target).unwrap();
        let clean = fs::read(&target).unwrap();
        assert_eq!(rotten.len(), clean.len());
        let diffs: Vec<usize> = (0..clean.len())
            .filter(|&i| rotten[i] != clean[i])
            .collect();
        assert_eq!(diffs.len(), 1);
        assert_eq!((rotten[diffs[0]] ^ clean[diffs[0]]).count_ones(), 1);
        // second read is clean (transient)
        assert_eq!(vfs.read(&target).unwrap(), clean);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn short_read_returns_prefix() {
        let dir = tmpdir("shortread");
        let target = dir.join("data.bin");
        fs::write(&target, b"0123456789").unwrap();
        let vfs = FaultVfs::new(FaultPlan::new().fault(
            FaultKind::ShortRead,
            OpClass::Read,
            0,
            None,
            false,
        ));
        assert_eq!(vfs.read(&target).unwrap(), b"01234");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn real_vfs_round_trip() {
        let dir = tmpdir("real");
        let vfs = RealVfs;
        let sub = dir.join("a/b");
        vfs.create_dir_all(&sub).unwrap();
        let f = sub.join("x.txt");
        vfs.create_write(&f, b"hello").unwrap();
        assert!(
            vfs.create_write(&f, b"again").is_err(),
            "create_new semantics"
        );
        vfs.sync_file(&f).unwrap();
        vfs.sync_dir(&sub).unwrap();
        assert_eq!(vfs.read(&f).unwrap(), b"hello");
        assert_eq!(vfs.read_to_string(&f).unwrap(), "hello");
        assert_eq!(vfs.file_len(&f).unwrap(), 5);
        let g = sub.join("y.txt");
        vfs.rename(&f, &g).unwrap();
        assert_eq!(vfs.list_dir(&sub).unwrap(), vec!["y.txt".to_string()]);
        vfs.remove_file(&g).unwrap();
        assert!(vfs.list_dir(&sub).unwrap().is_empty());
        fs::remove_dir_all(&dir).unwrap();
    }
}
