//! ARFF (Attribute-Relation File Format) reading and writing.
//!
//! Besides LIBSVM files, the real PLSSVM accepts Weka-style `.arff` input:
//! a header of `@RELATION` / `@ATTRIBUTE` declarations followed by
//! `@DATA`, with the **last attribute as the class**. Both dense rows
//! (`v₁,v₂,…,label`) and sparse rows (`{index value, …}` with 0-based
//! indices, missing entries zero) are supported, as are `%` comments —
//! matching the subset PLSSVM v1.0.1 parses.

use std::path::Path;

use crate::dense::DenseMatrix;
use crate::error::DataError;
use crate::libsvm::LabeledData;
use crate::real::Real;

/// Parses ARFF content into a (binary) labeled data set. The last
/// attribute is the class; the first label encountered maps to `+1`
/// (order-of-appearance semantics, like the LIBSVM reader).
pub fn read_arff_str<T: Real>(content: &str) -> Result<LabeledData<T>, DataError> {
    let mut attributes = 0usize;
    let mut in_data = false;
    let mut rows: Vec<(i32, Vec<T>)> = Vec::new();

    for (lineno, raw) in content.lines().enumerate() {
        let lineno = lineno + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('%') {
            continue;
        }
        if !in_data {
            let upper = line.to_ascii_uppercase();
            if upper.starts_with("@RELATION") {
                continue;
            }
            if upper.starts_with("@ATTRIBUTE") {
                attributes += 1;
                continue;
            }
            if upper.starts_with("@DATA") {
                if attributes < 2 {
                    return Err(DataError::parse(
                        lineno,
                        "ARFF needs at least one feature attribute plus the class attribute",
                    ));
                }
                in_data = true;
                continue;
            }
            return Err(DataError::parse(
                lineno,
                format!("unexpected ARFF header line '{line}'"),
            ));
        }

        let features = attributes - 1;
        if line.starts_with('{') {
            // sparse row: {index value, index value, ...}
            let inner = line
                .strip_prefix('{')
                .and_then(|l| l.strip_suffix('}'))
                .ok_or_else(|| DataError::parse(lineno, "unterminated sparse ARFF row"))?;
            let mut values = vec![T::ZERO; features];
            let mut label: Option<i32> = None;
            for entry in inner.split(',') {
                let entry = entry.trim();
                if entry.is_empty() {
                    continue;
                }
                let (idx_s, val_s) = entry.split_once(char::is_whitespace).ok_or_else(|| {
                    DataError::parse(lineno, format!("expected 'index value', got '{entry}'"))
                })?;
                let idx: usize = idx_s.trim().parse().map_err(|_| {
                    DataError::parse(lineno, format!("invalid sparse index '{idx_s}'"))
                })?;
                if idx == features {
                    label = Some(parse_label(val_s.trim(), lineno)?);
                } else if idx < features {
                    values[idx] = val_s.trim().parse().map_err(|_| {
                        DataError::parse(lineno, format!("invalid value '{val_s}'"))
                    })?;
                } else {
                    return Err(DataError::parse(
                        lineno,
                        format!("sparse index {idx} out of range for {attributes} attributes"),
                    ));
                }
            }
            // ARFF sparse rows may omit the class only if it is zero — for
            // a ±1 binary class that would be invalid, so require it
            let label = label.ok_or_else(|| {
                DataError::parse(lineno, "sparse ARFF row misses the class attribute")
            })?;
            rows.push((label, values));
        } else {
            let tokens: Vec<&str> = line.split(',').map(str::trim).collect();
            if tokens.len() != attributes {
                return Err(DataError::parse(
                    lineno,
                    format!(
                        "expected {attributes} comma-separated values, got {}",
                        tokens.len()
                    ),
                ));
            }
            let mut values = Vec::with_capacity(features);
            for tok in &tokens[..features] {
                values.push(
                    tok.parse()
                        .map_err(|_| DataError::parse(lineno, format!("invalid value '{tok}'")))?,
                );
            }
            let label = parse_label(tokens[features], lineno)?;
            rows.push((label, values));
        }
    }

    if !in_data {
        return Err(DataError::Invalid("ARFF file has no @DATA section".into()));
    }
    if rows.is_empty() {
        return Err(DataError::Invalid("ARFF file contains no data rows".into()));
    }

    // order-of-appearance ±1 mapping (same as the LIBSVM reader)
    let first = rows[0].0;
    let mut second: Option<i32> = None;
    for &(label, _) in &rows {
        if label != first {
            match second {
                None => second = Some(label),
                Some(s) if s == label => {}
                Some(s) => {
                    return Err(DataError::Invalid(format!(
                        "binary classification supports exactly two labels, found {first}, {s} and {label}"
                    )))
                }
            }
        }
    }
    let second = second.unwrap_or(if first == 1 { -1 } else { 1 });

    let features = attributes - 1;
    let mut x = DenseMatrix::zeros(rows.len(), features);
    let mut y = Vec::with_capacity(rows.len());
    for (p, (label, values)) in rows.into_iter().enumerate() {
        y.push(if label == first { T::ONE } else { -T::ONE });
        x.row_mut(p).copy_from_slice(&values);
    }
    LabeledData::with_label_map(x, y, [first, second])
}

fn parse_label(tok: &str, lineno: usize) -> Result<i32, DataError> {
    let v: f64 = tok
        .parse()
        .map_err(|_| DataError::parse(lineno, format!("invalid class label '{tok}'")))?;
    if !v.is_finite() || v.fract() != 0.0 {
        return Err(DataError::parse(
            lineno,
            format!("class labels must be integers, got '{tok}'"),
        ));
    }
    Ok(v as i32)
}

/// Reads an ARFF file from disk.
pub fn read_arff_file<T: Real>(path: impl AsRef<Path>) -> Result<LabeledData<T>, DataError> {
    let path = path.as_ref();
    let content = std::fs::read_to_string(path).map_err(|e| DataError::io_path(path, e))?;
    read_arff_str(&content)
}

/// Serializes a data set in ARFF format (dense rows).
pub fn write_arff_string<T: Real>(data: &LabeledData<T>, relation: &str) -> String {
    let mut out = String::new();
    out.push_str(&format!("@RELATION {relation}\n\n"));
    for f in 0..data.features() {
        out.push_str(&format!("@ATTRIBUTE feature_{f} NUMERIC\n"));
    }
    out.push_str(&format!(
        "@ATTRIBUTE class {{{},{}}}\n\n@DATA\n",
        data.label_map[0], data.label_map[1]
    ));
    for (p, row) in data.x.rows_iter().enumerate() {
        for &v in row {
            out.push_str(&format!("{},", crate::libsvm::FmtReal(v)));
        }
        out.push_str(&format!("{}\n", data.original_label(data.y[p])));
    }
    out
}

/// Writes a data set to an ARFF file atomically and durably.
pub fn write_arff_file<T: Real>(
    path: impl AsRef<Path>,
    data: &LabeledData<T>,
    relation: &str,
) -> Result<(), DataError> {
    crate::io::write_atomic(path, write_arff_string(data, relation).as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
% planes problem
@RELATION planes

@ATTRIBUTE x0 NUMERIC
@ATTRIBUTE x1 NUMERIC
@ATTRIBUTE class {-1,1}

@DATA
1.5,-2.0,1
0.0,3.25,-1
{0 2.5, 2 1}
{2 -1}
";

    #[test]
    fn parses_dense_and_sparse_rows() {
        let d: LabeledData<f64> = read_arff_str(SAMPLE).unwrap();
        assert_eq!(d.points(), 4);
        assert_eq!(d.features(), 2);
        assert_eq!(d.x.row(0), &[1.5, -2.0]);
        assert_eq!(d.x.row(2), &[2.5, 0.0]); // sparse, x1 omitted → 0
        assert_eq!(d.x.row(3), &[0.0, 0.0]);
        assert_eq!(d.y, vec![1.0, -1.0, 1.0, -1.0]);
        assert_eq!(d.label_map, [1, -1]);
    }

    #[test]
    fn case_insensitive_keywords_and_comments() {
        let content =
            "% c\n@relation r\n@attribute a numeric\n@attribute class {0,1}\n@data\n1.0,0\n2.0,1\n";
        let d: LabeledData<f64> = read_arff_str(content).unwrap();
        assert_eq!(d.points(), 2);
        assert_eq!(d.label_map, [0, 1]);
    }

    #[test]
    fn roundtrip_through_writer() {
        let d: LabeledData<f64> = read_arff_str(SAMPLE).unwrap();
        let text = write_arff_string(&d, "roundtrip");
        let back: LabeledData<f64> = read_arff_str(&text).unwrap();
        assert_eq!(d.x, back.x);
        assert_eq!(d.y, back.y);
        assert_eq!(d.label_map, back.label_map);
    }

    #[test]
    fn file_roundtrip_and_libsvm_equivalence() {
        // the same data through ARFF and LIBSVM readers gives the same set
        let d: LabeledData<f64> = read_arff_str(SAMPLE).unwrap();
        let dir = std::env::temp_dir().join("plssvm_arff_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("planes.arff");
        write_arff_file(&path, &d, "planes").unwrap();
        let back: LabeledData<f64> = read_arff_file(&path).unwrap();
        assert_eq!(d, back);
        std::fs::remove_file(&path).ok();

        let libsvm_text = crate::libsvm::write_libsvm_string(&d, true);
        let via_libsvm: LabeledData<f64> =
            crate::libsvm::read_libsvm_str(&libsvm_text, Some(d.features())).unwrap();
        assert_eq!(d.x, via_libsvm.x);
        assert_eq!(d.y, via_libsvm.y);
    }

    #[test]
    fn malformed_inputs_rejected() {
        assert!(read_arff_str::<f64>("").is_err());
        assert!(read_arff_str::<f64>("@DATA\n1,1\n").is_err()); // no attributes
        assert!(read_arff_str::<f64>("@ATTRIBUTE a NUMERIC\n@DATA\n1\n").is_err()); // 1 attr
        let hdr = "@ATTRIBUTE a NUMERIC\n@ATTRIBUTE c {0,1}\n@DATA\n";
        assert!(read_arff_str::<f64>(&format!("{hdr}1.0\n")).is_err()); // arity
        assert!(read_arff_str::<f64>(&format!("{hdr}x,1\n")).is_err()); // value
        assert!(read_arff_str::<f64>(&format!("{hdr}1.0,0.5\n")).is_err()); // frac label
        assert!(read_arff_str::<f64>(&format!("{hdr}{{0 1.0\n")).is_err()); // unterminated
        assert!(read_arff_str::<f64>(&format!("{hdr}{{5 1.0}}\n")).is_err()); // idx range
        assert!(read_arff_str::<f64>(&format!("{hdr}{{0 1.0}}\n")).is_err()); // no class
        assert!(read_arff_str::<f64>("bogus header\n").is_err());
        // three classes
        let three = format!("{hdr}1,0\n1,1\n1,2\n");
        assert!(read_arff_str::<f64>(&three).is_err());
    }

    #[test]
    fn trains_identically_to_libsvm_input() {
        use crate::synthetic::{generate_planes, PlanesConfig};
        let d = generate_planes::<f64>(&PlanesConfig::new(30, 4, 9)).unwrap();
        let arff = write_arff_string(&d, "t");
        let back: LabeledData<f64> = read_arff_str(&arff).unwrap();
        assert_eq!(d.x, back.x);
        // the ±1 mapping may flip (first label in the file ↦ +1); compare
        // in original label space
        for i in 0..d.points() {
            assert_eq!(d.original_label(d.y[i]), back.original_label(back.y[i]));
        }
    }
}
