//! LIBSVM-compatible model files.
//!
//! PLSSVM is a drop-in replacement for LIBSVM, so its model files use the
//! LIBSVM text layout: a header (`svm_type`, `kernel_type`, …, `rho`,
//! `label`, `nr_sv`) followed by an `SV` block with one
//! `coefficient index:value …` line per support vector. For an LS-SVM
//! *every* training point is a support vector.
//!
//! The decision function encoded by a model is LIBSVM's
//! `f(x) = Σ coefᵢ·k(svᵢ, x) − rho`, i.e. `rho = −b` in the paper's
//! notation (Eq. 10/15).

use std::fs::File;
use std::io::{BufRead, BufReader};
use std::path::Path;

use crate::dense::DenseMatrix;
use crate::error::{DataError, MAX_FEATURE_INDEX};
use crate::io::write_atomic;
use crate::libsvm::{token_column, FmtReal};
use crate::real::Real;

/// The kernel function selection with its hyperparameters (§II-E).
///
/// * linear: `⟨x, x'⟩`
/// * polynomial: `(γ·⟨x, x'⟩ + r)^degree`
/// * radial: `exp(−γ·‖x − x'‖²)`
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum KernelSpec<T> {
    /// The linear kernel `⟨x, x'⟩` (the only kernel with multi-GPU support
    /// in the paper).
    Linear,
    /// The polynomial kernel `(γ·⟨x, x'⟩ + r)^degree`.
    Polynomial {
        /// Exponent `d` (LIBSVM default 3).
        degree: i32,
        /// Scale `γ > 0` (LIBSVM default `1/num_features`).
        gamma: T,
        /// Offset `r` (LIBSVM `coef0`, default 0).
        coef0: T,
    },
    /// The radial basis function kernel `exp(−γ·‖x − x'‖²)`.
    Rbf {
        /// Width `γ > 0` (LIBSVM default `1/num_features`).
        gamma: T,
    },
    /// The sigmoid kernel `tanh(γ·⟨x, x'⟩ + r)` — LIBSVM/ThunderSVM
    /// parity extension (paper §IV-H). **Not a Mercer kernel** in general:
    /// the LS-SVM system may be indefinite, in which case CG stops early
    /// and reports non-convergence.
    Sigmoid {
        /// Scale `γ > 0`.
        gamma: T,
        /// Offset `r` (LIBSVM `coef0`).
        coef0: T,
    },
}

impl<T: Real> KernelSpec<T> {
    /// The LIBSVM `kernel_type` keyword.
    pub fn name(&self) -> &'static str {
        match self {
            KernelSpec::Linear => "linear",
            KernelSpec::Polynomial { .. } => "polynomial",
            KernelSpec::Rbf { .. } => "rbf",
            KernelSpec::Sigmoid { .. } => "sigmoid",
        }
    }

    /// Validates hyperparameters (γ must be positive where it is used).
    pub fn validate(&self) -> Result<(), DataError> {
        match *self {
            KernelSpec::Linear => Ok(()),
            KernelSpec::Polynomial { degree, gamma, .. } => {
                if gamma.to_f64() <= 0.0 {
                    Err(DataError::Invalid(
                        "polynomial kernel needs gamma > 0".into(),
                    ))
                } else if degree < 1 {
                    Err(DataError::Invalid(
                        "polynomial kernel needs degree >= 1".into(),
                    ))
                } else {
                    Ok(())
                }
            }
            KernelSpec::Rbf { gamma } => {
                if gamma.to_f64() <= 0.0 {
                    Err(DataError::Invalid("rbf kernel needs gamma > 0".into()))
                } else {
                    Ok(())
                }
            }
            KernelSpec::Sigmoid { gamma, .. } => {
                if gamma.to_f64() <= 0.0 {
                    Err(DataError::Invalid("sigmoid kernel needs gamma > 0".into()))
                } else {
                    Ok(())
                }
            }
        }
    }
}

/// A trained binary SVM model in LIBSVM's representation.
#[derive(Debug, Clone, PartialEq)]
pub struct SvmModel<T> {
    /// Kernel function and hyperparameters.
    pub kernel: KernelSpec<T>,
    /// Original class labels; `labels[0]` is the `+1` class.
    pub labels: [i32; 2],
    /// `rho = −b`: the negated bias of the decision function.
    pub rho: T,
    /// Support vectors, one row each.
    pub sv: DenseMatrix<T>,
    /// Per-support-vector coefficient (`αᵢ` for the LS-SVM, `yᵢαᵢ` for SMO).
    pub coef: Vec<T>,
    /// Number of support vectors per class (`labels` order).
    pub nr_sv: [usize; 2],
    /// Solver provenance (a PLSSVM extension header key, e.g.
    /// `lowrank rank=64 seed=42 strategy=uniform`): written only when the
    /// model came from a non-default solver, so exactly-solved models stay
    /// byte-compatible with LIBSVM.
    pub solver: Option<String>,
}

impl<T: Real> SvmModel<T> {
    /// Sanity checks the internal consistency of the model.
    pub fn validate(&self) -> Result<(), DataError> {
        self.kernel.validate()?;
        if self.coef.len() != self.sv.rows() {
            return Err(DataError::Invalid(format!(
                "{} coefficients for {} support vectors",
                self.coef.len(),
                self.sv.rows()
            )));
        }
        if self.nr_sv[0].checked_add(self.nr_sv[1]) != Some(self.sv.rows()) {
            return Err(DataError::Invalid("nr_sv does not sum to total_sv".into()));
        }
        Ok(())
    }

    /// Number of support vectors.
    pub fn total_sv(&self) -> usize {
        self.sv.rows()
    }

    /// Number of features per support vector.
    pub fn features(&self) -> usize {
        self.sv.cols()
    }

    /// The bias `b` of the paper's decision function (Eq. 10).
    pub fn bias(&self) -> T {
        -self.rho
    }

    /// Maps a decision value to the original class label.
    pub fn decide(&self, decision_value: T) -> i32 {
        if decision_value.to_f64() >= 0.0 {
            self.labels[0]
        } else {
            self.labels[1]
        }
    }

    /// Serializes the model into the LIBSVM text format.
    pub fn to_model_string(&self) -> String {
        let mut out = String::new();
        out.push_str("svm_type c_svc\n");
        out.push_str(&format!("kernel_type {}\n", self.kernel.name()));
        match self.kernel {
            KernelSpec::Linear => {}
            KernelSpec::Polynomial {
                degree,
                gamma,
                coef0,
            } => {
                out.push_str(&format!("degree {degree}\n"));
                out.push_str(&format!("gamma {}\n", FmtReal(gamma)));
                out.push_str(&format!("coef0 {}\n", FmtReal(coef0)));
            }
            KernelSpec::Rbf { gamma } => {
                out.push_str(&format!("gamma {}\n", FmtReal(gamma)));
            }
            KernelSpec::Sigmoid { gamma, coef0 } => {
                out.push_str(&format!("gamma {}\n", FmtReal(gamma)));
                out.push_str(&format!("coef0 {}\n", FmtReal(coef0)));
            }
        }
        out.push_str("nr_class 2\n");
        out.push_str(&format!("total_sv {}\n", self.total_sv()));
        out.push_str(&format!("rho {}\n", FmtReal(self.rho)));
        out.push_str(&format!("label {} {}\n", self.labels[0], self.labels[1]));
        out.push_str(&format!("nr_sv {} {}\n", self.nr_sv[0], self.nr_sv[1]));
        if let Some(solver) = &self.solver {
            out.push_str(&format!("solver {solver}\n"));
        }
        out.push_str("SV\n");
        for (i, row) in self.sv.rows_iter().enumerate() {
            out.push_str(&format!("{}", FmtReal(self.coef[i])));
            for (f, &v) in row.iter().enumerate() {
                if v.to_f64() != 0.0 {
                    out.push_str(&format!(" {}:{}", f + 1, FmtReal(v)));
                }
            }
            out.push('\n');
        }
        out
    }

    /// Writes the model to a file (the paper's training step 4).
    ///
    /// The write is atomic and durable (temp file + fsync + rename +
    /// parent-directory fsync): a crash mid-save leaves either the old
    /// model or the complete new one, never a truncated file.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), DataError> {
        write_atomic(path, self.to_model_string().as_bytes())
    }

    /// [`SvmModel::save`] through an explicit [`Vfs`](crate::vfs::Vfs).
    pub fn save_with(&self, vfs: &dyn crate::vfs::Vfs, path: &Path) -> Result<(), DataError> {
        crate::io::write_atomic_with(vfs, path, self.to_model_string().as_bytes())
    }

    /// Parses a model from its LIBSVM text representation.
    pub fn from_model_string(content: &str) -> Result<Self, DataError> {
        parse_model(content.lines().map(|l| Ok(l.to_owned())))
    }

    /// Loads a model from a file.
    pub fn load(path: impl AsRef<Path>) -> Result<Self, DataError> {
        let path = path.as_ref();
        let file = File::open(path).map_err(|e| DataError::io_path(path, e))?;
        parse_model(BufReader::new(file).lines()).map_err(|e| e.with_path(path))
    }
}

fn parse_model<T: Real>(
    lines: impl Iterator<Item = std::io::Result<String>>,
) -> Result<SvmModel<T>, DataError> {
    let mut kernel_type: Option<String> = None;
    let mut degree: i32 = 3;
    let mut gamma: Option<T> = None;
    let mut coef0: T = T::ZERO;
    let mut rho: Option<T> = None;
    let mut labels: Option<[i32; 2]> = None;
    let mut nr_sv: Option<[usize; 2]> = None;
    let mut total_sv: Option<usize> = None;
    let mut solver: Option<String> = None;
    let mut in_sv = false;

    let mut sv_rows: Vec<Vec<(usize, T)>> = Vec::new();
    let mut coef: Vec<T> = Vec::new();
    let mut max_index = 0usize;

    for (lineno, line) in lines.enumerate() {
        let lineno = lineno + 1;
        let line = line?;
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if !in_sv {
            let (key, rest) = match line.split_once(' ') {
                Some((k, r)) => (k, r.trim()),
                None => (line, ""),
            };
            match key {
                "svm_type" => {
                    if rest != "c_svc" {
                        return Err(DataError::parse(
                            lineno,
                            format!("unsupported svm_type '{rest}' (only c_svc)"),
                        ));
                    }
                }
                "kernel_type" => kernel_type = Some(rest.to_owned()),
                "degree" => {
                    degree = rest
                        .parse()
                        .map_err(|_| DataError::parse(lineno, "invalid degree"))?
                }
                "gamma" => {
                    gamma = Some(
                        rest.parse()
                            .map_err(|_| DataError::parse(lineno, "invalid gamma"))?,
                    )
                }
                "coef0" => {
                    coef0 = rest
                        .parse()
                        .map_err(|_| DataError::parse(lineno, "invalid coef0"))?
                }
                "nr_class" => {
                    let n: usize = rest
                        .parse()
                        .map_err(|_| DataError::parse(lineno, "invalid nr_class"))?;
                    if n != 2 {
                        return Err(DataError::parse(
                            lineno,
                            format!("only binary models supported, nr_class = {n}"),
                        ));
                    }
                }
                "total_sv" => {
                    total_sv = Some(
                        rest.parse()
                            .map_err(|_| DataError::parse(lineno, "invalid total_sv"))?,
                    )
                }
                "rho" => {
                    rho = Some(
                        rest.parse()
                            .map_err(|_| DataError::parse(lineno, "invalid rho"))?,
                    )
                }
                "label" => {
                    let parts: Vec<i32> = rest
                        .split_ascii_whitespace()
                        .map(|t| t.parse())
                        .collect::<Result<_, _>>()
                        .map_err(|_| DataError::parse(lineno, "invalid label line"))?;
                    if parts.len() != 2 {
                        return Err(DataError::parse(lineno, "expected two labels"));
                    }
                    labels = Some([parts[0], parts[1]]);
                }
                "nr_sv" => {
                    let parts: Vec<usize> = rest
                        .split_ascii_whitespace()
                        .map(|t| t.parse())
                        .collect::<Result<_, _>>()
                        .map_err(|_| DataError::parse(lineno, "invalid nr_sv line"))?;
                    if parts.len() != 2 {
                        return Err(DataError::parse(lineno, "expected two nr_sv counts"));
                    }
                    nr_sv = Some([parts[0], parts[1]]);
                }
                "solver" => solver = Some(rest.to_owned()),
                "SV" => in_sv = true,
                other => {
                    return Err(DataError::parse(
                        lineno,
                        format!("unknown model header key '{other}'"),
                    ))
                }
            }
        } else {
            let mut tokens = line.split_ascii_whitespace();
            let c: T = tokens
                .next()
                .ok_or_else(|| DataError::parse(lineno, "missing SV coefficient"))?
                .parse()
                .map_err(|_| DataError::parse(lineno, "invalid SV coefficient"))?;
            coef.push(c);
            let mut entries = Vec::new();
            for tok in tokens {
                let col = token_column(line, tok);
                let (idx_s, val_s) = tok.split_once(':').ok_or_else(|| {
                    DataError::parse_at(lineno, col, format!("expected 'index:value', got '{tok}'"))
                })?;
                let idx: usize = idx_s
                    .parse()
                    .map_err(|_| DataError::parse_at(lineno, col, "invalid SV feature index"))?;
                if idx == 0 {
                    return Err(DataError::parse_at(
                        lineno,
                        col,
                        "SV feature indices are 1-based",
                    ));
                }
                if idx > MAX_FEATURE_INDEX {
                    return Err(DataError::parse_at(
                        lineno,
                        col,
                        format!(
                            "SV feature index {idx} exceeds the supported maximum {MAX_FEATURE_INDEX}"
                        ),
                    ));
                }
                let val: T = val_s
                    .parse()
                    .map_err(|_| DataError::parse_at(lineno, col, "invalid SV feature value"))?;
                max_index = max_index.max(idx);
                entries.push((idx - 1, val));
            }
            sv_rows.push(entries);
        }
    }

    let kernel_type =
        kernel_type.ok_or_else(|| DataError::Invalid("model misses kernel_type".into()))?;
    let rho = rho.ok_or_else(|| DataError::Invalid("model misses rho".into()))?;
    let labels = labels.ok_or_else(|| DataError::Invalid("model misses label line".into()))?;
    let nr_sv = nr_sv.ok_or_else(|| DataError::Invalid("model misses nr_sv line".into()))?;
    let total = total_sv.ok_or_else(|| DataError::Invalid("model misses total_sv".into()))?;
    if sv_rows.len() != total {
        return Err(DataError::Invalid(format!(
            "total_sv says {total} support vectors but {} SV lines found",
            sv_rows.len()
        )));
    }
    if sv_rows.is_empty() {
        return Err(DataError::Invalid(
            "model contains no support vectors".into(),
        ));
    }

    let kernel = match kernel_type.as_str() {
        "linear" => KernelSpec::Linear,
        "polynomial" => KernelSpec::Polynomial {
            degree,
            gamma: gamma
                .ok_or_else(|| DataError::Invalid("polynomial model misses gamma".into()))?,
            coef0,
        },
        "rbf" => KernelSpec::Rbf {
            gamma: gamma.ok_or_else(|| DataError::Invalid("rbf model misses gamma".into()))?,
        },
        "sigmoid" => KernelSpec::Sigmoid {
            gamma: gamma.ok_or_else(|| DataError::Invalid("sigmoid model misses gamma".into()))?,
            coef0,
        },
        other => {
            return Err(DataError::Invalid(format!(
                "unsupported kernel_type '{other}'"
            )))
        }
    };

    let mut sv = DenseMatrix::zeros(sv_rows.len(), max_index.max(1));
    for (p, entries) in sv_rows.into_iter().enumerate() {
        let row = sv.row_mut(p);
        for (idx, val) in entries {
            row[idx] = val;
        }
    }

    let model = SvmModel {
        kernel,
        labels,
        rho,
        sv,
        coef,
        nr_sv,
        solver,
    };
    model.validate()?;
    Ok(model)
}

/// A trained LS-SVR (regression) model — the paper's §V "regression
/// tasks" extension.
///
/// Uses LIBSVM's `epsilon_svr` model layout: the header has no
/// `label`/`nr_sv` lines, and the decision function is the raw value
/// `f(x) = Σ coefᵢ·k(svᵢ, x) − rho` (no sign).
#[derive(Debug, Clone, PartialEq)]
pub struct SvrModel<T> {
    /// Kernel function and hyperparameters.
    pub kernel: KernelSpec<T>,
    /// `rho = −b`.
    pub rho: T,
    /// Support vectors (all training points for the LS-SVR).
    pub sv: DenseMatrix<T>,
    /// Per-support-vector coefficient `αᵢ`.
    pub coef: Vec<T>,
    /// Solver provenance; mirrors [`SvmModel::solver`].
    pub solver: Option<String>,
}

impl<T: Real> SvrModel<T> {
    /// Sanity checks the internal consistency of the model.
    pub fn validate(&self) -> Result<(), DataError> {
        self.kernel.validate()?;
        if self.coef.len() != self.sv.rows() {
            return Err(DataError::Invalid(format!(
                "{} coefficients for {} support vectors",
                self.coef.len(),
                self.sv.rows()
            )));
        }
        Ok(())
    }

    /// Number of support vectors.
    pub fn total_sv(&self) -> usize {
        self.sv.rows()
    }

    /// Number of features per support vector.
    pub fn features(&self) -> usize {
        self.sv.cols()
    }

    /// The bias `b` of the regression function.
    pub fn bias(&self) -> T {
        -self.rho
    }

    /// Serializes into LIBSVM's `epsilon_svr` text layout.
    pub fn to_model_string(&self) -> String {
        let mut out = String::new();
        out.push_str("svm_type epsilon_svr\n");
        out.push_str(&format!("kernel_type {}\n", self.kernel.name()));
        match self.kernel {
            KernelSpec::Linear => {}
            KernelSpec::Polynomial {
                degree,
                gamma,
                coef0,
            } => {
                out.push_str(&format!("degree {degree}\n"));
                out.push_str(&format!("gamma {}\n", FmtReal(gamma)));
                out.push_str(&format!("coef0 {}\n", FmtReal(coef0)));
            }
            KernelSpec::Rbf { gamma } => {
                out.push_str(&format!("gamma {}\n", FmtReal(gamma)));
            }
            KernelSpec::Sigmoid { gamma, coef0 } => {
                out.push_str(&format!("gamma {}\n", FmtReal(gamma)));
                out.push_str(&format!("coef0 {}\n", FmtReal(coef0)));
            }
        }
        out.push_str("nr_class 2\n"); // LIBSVM writes 2 for SVR as well
        out.push_str(&format!("total_sv {}\n", self.total_sv()));
        out.push_str(&format!("rho {}\n", FmtReal(self.rho)));
        if let Some(solver) = &self.solver {
            out.push_str(&format!("solver {solver}\n"));
        }
        out.push_str("SV\n");
        for (i, row) in self.sv.rows_iter().enumerate() {
            out.push_str(&format!("{}", FmtReal(self.coef[i])));
            for (f, &v) in row.iter().enumerate() {
                if v.to_f64() != 0.0 {
                    out.push_str(&format!(" {}:{}", f + 1, FmtReal(v)));
                }
            }
            out.push('\n');
        }
        out
    }

    /// Writes the model file atomically and durably (same guarantees as
    /// [`SvmModel::save`]).
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), DataError> {
        write_atomic(path, self.to_model_string().as_bytes())
    }

    /// [`SvrModel::save`] through an explicit [`Vfs`](crate::vfs::Vfs).
    pub fn save_with(&self, vfs: &dyn crate::vfs::Vfs, path: &Path) -> Result<(), DataError> {
        crate::io::write_atomic_with(vfs, path, self.to_model_string().as_bytes())
    }

    /// Parses an `epsilon_svr` model from its text form.
    pub fn from_model_string(content: &str) -> Result<Self, DataError> {
        parse_svr_model(content)
    }

    /// Loads a model from a file.
    pub fn load(path: impl AsRef<Path>) -> Result<Self, DataError> {
        let path = path.as_ref();
        let content = std::fs::read_to_string(path).map_err(|e| DataError::io_path(path, e))?;
        parse_svr_model(&content)
    }
}

/// Reads the `svm_type` header of a model file without fully parsing it —
/// lets `svm-predict` dispatch between classification and regression.
pub fn peek_svm_type(content: &str) -> Option<&str> {
    for line in content.lines() {
        if let Some(rest) = line.trim().strip_prefix("svm_type ") {
            return Some(rest.trim());
        }
    }
    None
}

fn parse_svr_model<T: Real>(content: &str) -> Result<SvrModel<T>, DataError> {
    let mut kernel_type: Option<String> = None;
    let mut degree: i32 = 3;
    let mut gamma: Option<T> = None;
    let mut coef0: T = T::ZERO;
    let mut rho: Option<T> = None;
    let mut total_sv: Option<usize> = None;
    let mut solver: Option<String> = None;
    let mut in_sv = false;
    let mut sv_rows: Vec<Vec<(usize, T)>> = Vec::new();
    let mut coef: Vec<T> = Vec::new();
    let mut max_index = 0usize;

    for (lineno, line) in content.lines().enumerate() {
        let lineno = lineno + 1;
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if !in_sv {
            let (key, rest) = match line.split_once(' ') {
                Some((k, r)) => (k, r.trim()),
                None => (line, ""),
            };
            match key {
                "svm_type" => {
                    if rest != "epsilon_svr" {
                        return Err(DataError::parse(
                            lineno,
                            format!("expected epsilon_svr, got '{rest}'"),
                        ));
                    }
                }
                "kernel_type" => kernel_type = Some(rest.to_owned()),
                "degree" => {
                    degree = rest
                        .parse()
                        .map_err(|_| DataError::parse(lineno, "invalid degree"))?
                }
                "gamma" => {
                    gamma = Some(
                        rest.parse()
                            .map_err(|_| DataError::parse(lineno, "invalid gamma"))?,
                    )
                }
                "coef0" => {
                    coef0 = rest
                        .parse()
                        .map_err(|_| DataError::parse(lineno, "invalid coef0"))?
                }
                "nr_class" => {}
                "total_sv" => {
                    total_sv = Some(
                        rest.parse()
                            .map_err(|_| DataError::parse(lineno, "invalid total_sv"))?,
                    )
                }
                "rho" => {
                    rho = Some(
                        rest.parse()
                            .map_err(|_| DataError::parse(lineno, "invalid rho"))?,
                    )
                }
                "solver" => solver = Some(rest.to_owned()),
                "SV" => in_sv = true,
                other => {
                    return Err(DataError::parse(
                        lineno,
                        format!("unknown svr model header key '{other}'"),
                    ))
                }
            }
        } else {
            let mut tokens = line.split_ascii_whitespace();
            let c: T = tokens
                .next()
                .ok_or_else(|| DataError::parse(lineno, "missing SV coefficient"))?
                .parse()
                .map_err(|_| DataError::parse(lineno, "invalid SV coefficient"))?;
            coef.push(c);
            let mut entries = Vec::new();
            for tok in tokens {
                let col = token_column(line, tok);
                let (idx_s, val_s) = tok.split_once(':').ok_or_else(|| {
                    DataError::parse_at(lineno, col, format!("expected 'index:value', got '{tok}'"))
                })?;
                let idx: usize = idx_s
                    .parse()
                    .map_err(|_| DataError::parse_at(lineno, col, "invalid SV feature index"))?;
                if idx == 0 {
                    return Err(DataError::parse_at(
                        lineno,
                        col,
                        "SV feature indices are 1-based",
                    ));
                }
                if idx > MAX_FEATURE_INDEX {
                    return Err(DataError::parse_at(
                        lineno,
                        col,
                        format!(
                            "SV feature index {idx} exceeds the supported maximum {MAX_FEATURE_INDEX}"
                        ),
                    ));
                }
                let val: T = val_s
                    .parse()
                    .map_err(|_| DataError::parse_at(lineno, col, "invalid SV feature value"))?;
                max_index = max_index.max(idx);
                entries.push((idx - 1, val));
            }
            sv_rows.push(entries);
        }
    }

    let kernel_type =
        kernel_type.ok_or_else(|| DataError::Invalid("model misses kernel_type".into()))?;
    let rho = rho.ok_or_else(|| DataError::Invalid("model misses rho".into()))?;
    let total = total_sv.ok_or_else(|| DataError::Invalid("model misses total_sv".into()))?;
    if sv_rows.len() != total {
        return Err(DataError::Invalid(format!(
            "total_sv says {total} support vectors but {} SV lines found",
            sv_rows.len()
        )));
    }
    if sv_rows.is_empty() {
        return Err(DataError::Invalid(
            "model contains no support vectors".into(),
        ));
    }
    let kernel = match kernel_type.as_str() {
        "linear" => KernelSpec::Linear,
        "polynomial" => KernelSpec::Polynomial {
            degree,
            gamma: gamma
                .ok_or_else(|| DataError::Invalid("polynomial model misses gamma".into()))?,
            coef0,
        },
        "rbf" => KernelSpec::Rbf {
            gamma: gamma.ok_or_else(|| DataError::Invalid("rbf model misses gamma".into()))?,
        },
        "sigmoid" => KernelSpec::Sigmoid {
            gamma: gamma.ok_or_else(|| DataError::Invalid("sigmoid model misses gamma".into()))?,
            coef0,
        },
        other => {
            return Err(DataError::Invalid(format!(
                "unsupported kernel_type '{other}'"
            )))
        }
    };
    let mut sv = DenseMatrix::zeros(sv_rows.len(), max_index.max(1));
    for (p, entries) in sv_rows.into_iter().enumerate() {
        let row = sv.row_mut(p);
        for (idx, val) in entries {
            row[idx] = val;
        }
    }
    let model = SvrModel {
        kernel,
        rho,
        sv,
        coef,
        solver,
    };
    model.validate()?;
    Ok(model)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_model() -> SvmModel<f64> {
        SvmModel {
            kernel: KernelSpec::Rbf { gamma: 0.25 },
            labels: [1, -1],
            rho: -0.5,
            sv: DenseMatrix::from_rows(vec![
                vec![1.0, 0.0, 3.5],
                vec![0.0, -2.0, 0.0],
                vec![0.25, 0.5, 0.75],
            ])
            .unwrap(),
            coef: vec![0.7, -1.1, 0.4],
            nr_sv: [2, 1],
            solver: None,
        }
    }

    #[test]
    fn roundtrip_rbf() {
        let m = sample_model();
        let s = m.to_model_string();
        let m2 = SvmModel::<f64>::from_model_string(&s).unwrap();
        assert_eq!(m, m2);
    }

    #[test]
    fn roundtrip_linear_and_polynomial() {
        let mut m = sample_model();
        m.kernel = KernelSpec::Linear;
        let m2 = SvmModel::<f64>::from_model_string(&m.to_model_string()).unwrap();
        assert_eq!(m, m2);

        m.kernel = KernelSpec::Polynomial {
            degree: 4,
            gamma: 0.5,
            coef0: 1.25,
        };
        let m2 = SvmModel::<f64>::from_model_string(&m.to_model_string()).unwrap();
        assert_eq!(m, m2);
    }

    #[test]
    fn roundtrip_sigmoid() {
        let mut m = sample_model();
        m.kernel = KernelSpec::Sigmoid {
            gamma: 0.125,
            coef0: -0.5,
        };
        let s = m.to_model_string();
        assert!(s.contains("kernel_type sigmoid"));
        let m2 = SvmModel::<f64>::from_model_string(&s).unwrap();
        assert_eq!(m, m2);
    }

    #[test]
    fn sigmoid_validation() {
        assert!(KernelSpec::Sigmoid {
            gamma: 0.5f64,
            coef0: -1.0
        }
        .validate()
        .is_ok());
        assert!(KernelSpec::Sigmoid {
            gamma: 0.0f64,
            coef0: 0.0
        }
        .validate()
        .is_err());
        assert_eq!(
            KernelSpec::Sigmoid {
                gamma: 1.0f64,
                coef0: 0.0
            }
            .name(),
            "sigmoid"
        );
    }

    #[test]
    fn file_roundtrip() {
        let m = sample_model();
        let dir = std::env::temp_dir().join("plssvm_model_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.libsvm");
        m.save(&path).unwrap();
        let m2 = SvmModel::<f64>::load(&path).unwrap();
        assert_eq!(m, m2);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn bias_is_negated_rho() {
        let m = sample_model();
        assert_eq!(m.bias(), 0.5);
    }

    #[test]
    fn decide_maps_sign_to_labels() {
        let m = sample_model();
        assert_eq!(m.decide(2.0), 1);
        assert_eq!(m.decide(0.0), 1);
        assert_eq!(m.decide(-0.1), -1);
    }

    #[test]
    fn header_errors() {
        assert!(SvmModel::<f64>::from_model_string("svm_type nu_svc\n").is_err());
        assert!(SvmModel::<f64>::from_model_string("nr_class 3\n").is_err());
        assert!(SvmModel::<f64>::from_model_string("bogus_key 1\n").is_err());
        // missing rho
        let s = "svm_type c_svc\nkernel_type linear\nnr_class 2\ntotal_sv 1\nlabel 1 -1\nnr_sv 1 0\nSV\n1 1:1\n";
        assert!(SvmModel::<f64>::from_model_string(s).is_err());
    }

    #[test]
    fn sv_count_mismatch_detected() {
        let m = sample_model();
        let s = m.to_model_string().replace("total_sv 3", "total_sv 4");
        assert!(SvmModel::<f64>::from_model_string(&s).is_err());
    }

    #[test]
    fn validate_catches_inconsistencies() {
        let mut m = sample_model();
        m.coef.pop();
        assert!(m.validate().is_err());
        let mut m = sample_model();
        m.nr_sv = [1, 1];
        assert!(m.validate().is_err());
        let mut m = sample_model();
        m.kernel = KernelSpec::Rbf { gamma: -1.0 };
        assert!(m.validate().is_err());
        let mut m = sample_model();
        m.kernel = KernelSpec::Polynomial {
            degree: 0,
            gamma: 1.0,
            coef0: 0.0,
        };
        assert!(m.validate().is_err());
    }

    fn sample_svr() -> SvrModel<f64> {
        SvrModel {
            kernel: KernelSpec::Rbf { gamma: 0.5 },
            rho: 1.25,
            sv: DenseMatrix::from_rows(vec![vec![0.5, -1.0], vec![2.0, 0.0]]).unwrap(),
            coef: vec![0.3, -0.7],
            solver: None,
        }
    }

    #[test]
    fn svr_roundtrip() {
        let m = sample_svr();
        let s = m.to_model_string();
        assert!(s.contains("svm_type epsilon_svr"));
        assert!(!s.contains("label"));
        let m2 = SvrModel::<f64>::from_model_string(&s).unwrap();
        assert_eq!(m, m2);
        assert_eq!(m.bias(), -1.25);
    }

    #[test]
    fn svr_file_roundtrip() {
        let m = sample_svr();
        let dir = std::env::temp_dir().join("plssvm_model_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("svr.model");
        m.save(&path).unwrap();
        let m2 = SvrModel::<f64>::load(&path).unwrap();
        assert_eq!(m, m2);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn svr_rejects_classification_models() {
        let cls = sample_model().to_model_string();
        assert!(SvrModel::<f64>::from_model_string(&cls).is_err());
        // and vice versa
        let svr = sample_svr().to_model_string();
        assert!(SvmModel::<f64>::from_model_string(&svr).is_err());
    }

    #[test]
    fn peek_svm_type_dispatch() {
        assert_eq!(
            peek_svm_type(&sample_model().to_model_string()),
            Some("c_svc")
        );
        assert_eq!(
            peek_svm_type(&sample_svr().to_model_string()),
            Some("epsilon_svr")
        );
        assert_eq!(peek_svm_type("no header here\n"), None);
    }

    #[test]
    fn svr_validate() {
        let mut m = sample_svr();
        m.coef.pop();
        assert!(m.validate().is_err());
    }

    #[test]
    fn parses_verbatim_libsvm_output() {
        // a model as LIBSVM 3.25's svm-train actually writes it:
        // scientific-notation coefficients, +1 labels, trailing spaces
        let golden = "\
svm_type c_svc
kernel_type rbf
gamma 0.25
nr_class 2
total_sv 3
rho -1.0460915e-01
label 1 -1
nr_sv 2 1
SV
1.0460915e+00 1:-7.1054273e-15 2:1 
6.3512454e-01 1:0.5 2:-0.25 
-1.6812161e+00 1:1 2:0.75 
";
        let m = SvmModel::<f64>::from_model_string(golden).unwrap();
        assert_eq!(m.total_sv(), 3);
        assert_eq!(m.labels, [1, -1]);
        assert!((m.rho + 0.10460915).abs() < 1e-12);
        assert!((m.coef[0] - 1.0460915).abs() < 1e-12);
        assert!((m.sv.get(0, 0) + 7.1054273e-15).abs() < 1e-25);
        assert_eq!(m.sv.get(2, 1), 0.75);
        assert!(matches!(m.kernel, KernelSpec::Rbf { gamma } if gamma == 0.25));
    }

    #[test]
    fn solver_provenance_roundtrips_and_defaults_absent() {
        // the default (exact) model writes no solver key at all
        let plain = sample_model().to_model_string();
        assert!(!plain.contains("solver"));

        let mut m = sample_model();
        m.solver = Some("lowrank rank=64 seed=42 strategy=uniform".into());
        let s = m.to_model_string();
        assert!(s.contains("solver lowrank rank=64 seed=42 strategy=uniform\n"));
        let m2 = SvmModel::<f64>::from_model_string(&s).unwrap();
        assert_eq!(m, m2);

        let mut r = sample_svr();
        r.solver = Some("lowrank rank=8 seed=1 strategy=leverage".into());
        let r2 = SvrModel::<f64>::from_model_string(&r.to_model_string()).unwrap();
        assert_eq!(r, r2);
    }

    #[test]
    fn kernel_names() {
        assert_eq!(KernelSpec::<f64>::Linear.name(), "linear");
        assert_eq!(
            KernelSpec::Polynomial {
                degree: 3,
                gamma: 1.0f64,
                coef0: 0.0
            }
            .name(),
            "polynomial"
        );
        assert_eq!(KernelSpec::Rbf { gamma: 1.0f64 }.name(), "rbf");
    }
}
