//! Reading and writing the LIBSVM sparse text data format.
//!
//! Each line is `label idx:value idx:value …` with 1-based feature indices.
//! PLSSVM treats all data as dense: sparse input is densified by filling the
//! missing feature entries with zeros (§I, §III). This module reproduces
//! that behaviour.

use std::fs::File;
use std::io::{BufRead, BufReader};
use std::path::Path;

use crate::dense::DenseMatrix;
use crate::error::{DataError, MAX_FEATURE_INDEX};
use crate::real::Real;

/// 1-based byte column of `tok` within `line`.
///
/// `tok` must be a subslice of `line` (as produced by `split_ascii_whitespace`);
/// for a token from any other allocation the offset is meaningless, so this
/// falls back to column 1 instead of reporting garbage.
pub(crate) fn token_column(line: &str, tok: &str) -> usize {
    let line_start = line.as_ptr() as usize;
    let tok_start = tok.as_ptr() as usize;
    if tok_start >= line_start && tok_start + tok.len() <= line_start + line.len() {
        tok_start - line_start + 1
    } else {
        1
    }
}

/// A labeled, dense, binary-classification data set.
///
/// Labels are stored as ±1 scalars in `y`; the original file labels are
/// remembered in `label_map` so that model files and predictions can be
/// written with the user's labels (`label_map[0]` maps to `+1`,
/// `label_map[1]` to `-1`).
#[derive(Debug, Clone, PartialEq)]
pub struct LabeledData<T> {
    /// The feature matrix: one row per data point.
    pub x: DenseMatrix<T>,
    /// The ±1 class labels, one per data point.
    pub y: Vec<T>,
    /// Original labels: `label_map[0]` ↦ `+1`, `label_map[1]` ↦ `-1`.
    pub label_map: [i32; 2],
}

impl<T: Real> LabeledData<T> {
    /// Builds a data set from a matrix and ±1 labels.
    pub fn new(x: DenseMatrix<T>, y: Vec<T>) -> Result<Self, DataError> {
        Self::with_label_map(x, y, [1, -1])
    }

    /// Builds a data set with an explicit original-label mapping.
    pub fn with_label_map(
        x: DenseMatrix<T>,
        y: Vec<T>,
        label_map: [i32; 2],
    ) -> Result<Self, DataError> {
        if x.rows() != y.len() {
            return Err(DataError::Invalid(format!(
                "{} data points but {} labels",
                x.rows(),
                y.len()
            )));
        }
        if let Some(bad) = y.iter().find(|v| v.to_f64() != 1.0 && v.to_f64() != -1.0) {
            return Err(DataError::Invalid(format!(
                "labels must be +1 or -1, got {bad}"
            )));
        }
        if label_map[0] == label_map[1] {
            return Err(DataError::Invalid(
                "label map must contain two distinct labels".into(),
            ));
        }
        Ok(Self { x, y, label_map })
    }

    /// Number of data points `m`.
    pub fn points(&self) -> usize {
        self.x.rows()
    }

    /// Number of features `d`.
    pub fn features(&self) -> usize {
        self.x.cols()
    }

    /// Counts of (+1, -1) labeled points.
    pub fn class_counts(&self) -> (usize, usize) {
        let pos = self.y.iter().filter(|v| v.to_f64() > 0.0).count();
        (pos, self.y.len() - pos)
    }

    /// Maps a ±1 prediction back to the original file label.
    pub fn original_label(&self, sign: T) -> i32 {
        if sign.to_f64() >= 0.0 {
            self.label_map[0]
        } else {
            self.label_map[1]
        }
    }
}

/// A regression data set: features plus real-valued targets (the §V
/// "regression tasks" extension).
#[derive(Debug, Clone, PartialEq)]
pub struct RegressionData<T> {
    /// The feature matrix: one row per data point.
    pub x: DenseMatrix<T>,
    /// Real-valued targets, one per data point.
    pub y: Vec<T>,
}

impl<T: Real> RegressionData<T> {
    /// Builds a regression set, validating dimensions.
    pub fn new(x: DenseMatrix<T>, y: Vec<T>) -> Result<Self, DataError> {
        if x.rows() != y.len() {
            return Err(DataError::Invalid(format!(
                "{} data points but {} targets",
                x.rows(),
                y.len()
            )));
        }
        if let Some(bad) = y.iter().find(|v| !v.is_finite()) {
            return Err(DataError::Invalid(format!("non-finite target {bad}")));
        }
        Ok(Self { x, y })
    }

    /// Number of data points.
    pub fn points(&self) -> usize {
        self.x.rows()
    }

    /// Number of features.
    pub fn features(&self) -> usize {
        self.x.cols()
    }
}

/// Parses LIBSVM-format content with *real-valued* labels (regression).
pub fn read_libsvm_regression_str<T: Real>(
    content: &str,
    num_features: Option<usize>,
) -> Result<RegressionData<T>, DataError> {
    let mut rows: Vec<(T, Vec<(usize, T)>)> = Vec::new();
    let mut max_index = 0usize;
    for (lineno, line) in content.lines().enumerate() {
        let lineno = lineno + 1;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut tokens = line.split_ascii_whitespace();
        let target_tok = tokens
            .next()
            .ok_or_else(|| DataError::parse(lineno, "missing target value"))?;
        let target: T = target_tok
            .parse()
            .map_err(|_| DataError::parse(lineno, format!("invalid target '{target_tok}'")))?;
        let mut entries = Vec::new();
        for tok in tokens {
            let col = token_column(line, tok);
            let (idx_s, val_s) = tok.split_once(':').ok_or_else(|| {
                DataError::parse_at(lineno, col, format!("expected 'index:value', got '{tok}'"))
            })?;
            let idx: usize = idx_s.trim().parse().map_err(|_| {
                DataError::parse_at(lineno, col, format!("invalid index '{idx_s}'"))
            })?;
            if idx == 0 {
                return Err(DataError::parse_at(
                    lineno,
                    col,
                    "feature indices are 1-based",
                ));
            }
            if idx > MAX_FEATURE_INDEX {
                return Err(DataError::parse_at(
                    lineno,
                    col,
                    format!(
                        "feature index {idx} exceeds the supported maximum {MAX_FEATURE_INDEX}"
                    ),
                ));
            }
            let val: T = val_s.trim().parse().map_err(|_| {
                DataError::parse_at(lineno, col, format!("invalid value '{val_s}'"))
            })?;
            max_index = max_index.max(idx);
            entries.push((idx - 1, val));
        }
        rows.push((target, entries));
    }
    if rows.is_empty() {
        return Err(DataError::Invalid(
            "data file contains no data points".into(),
        ));
    }
    let features = match num_features {
        Some(n) if n >= max_index => n,
        Some(n) => {
            return Err(DataError::Invalid(format!(
                "requested {n} features but data contains index {max_index}"
            )))
        }
        None => max_index,
    };
    if features == 0 {
        return Err(DataError::Invalid(
            "data file contains no feature entries".into(),
        ));
    }
    let mut x = DenseMatrix::zeros(rows.len(), features);
    let mut y = Vec::with_capacity(rows.len());
    for (p, (target, entries)) in rows.into_iter().enumerate() {
        y.push(target);
        let row = x.row_mut(p);
        for (idx, val) in entries {
            row[idx] = val;
        }
    }
    RegressionData::new(x, y)
}

/// Reads a regression file from disk. See [`read_libsvm_regression_str`].
pub fn read_libsvm_regression_file<T: Real>(
    path: impl AsRef<Path>,
    num_features: Option<usize>,
) -> Result<RegressionData<T>, DataError> {
    let path = path.as_ref();
    let content = std::fs::read_to_string(path).map_err(|e| DataError::io_path(path, e))?;
    read_libsvm_regression_str(&content, num_features)
}

/// Serializes a regression data set (targets as labels).
pub fn write_libsvm_regression_string<T: Real>(data: &RegressionData<T>, sparse: bool) -> String {
    let mut out = String::new();
    for (p, row) in data.x.rows_iter().enumerate() {
        out.push_str(&format!("{}", FmtReal(data.y[p])));
        for (f, &v) in row.iter().enumerate() {
            if sparse && v.to_f64() == 0.0 {
                continue;
            }
            out.push_str(&format!(" {}:{}", f + 1, FmtReal(v)));
        }
        out.push('\n');
    }
    out
}

/// Parses LIBSVM-format content from a string.
///
/// ```
/// use plssvm_data::libsvm::read_libsvm_str;
///
/// let data = read_libsvm_str::<f64>("1 1:0.5 3:1\n-1 2:2\n", None)?;
/// assert_eq!(data.points(), 2);
/// assert_eq!(data.features(), 3);
/// assert_eq!(data.x.row(0), &[0.5, 0.0, 1.0]); // sparse → densified
/// # Ok::<(), plssvm_data::DataError>(())
/// ```
///
/// `num_features` forces the feature count (dimensions beyond the largest
/// index seen are zero filled); pass `None` to infer it from the data. At
/// most two distinct labels may occur; the first label encountered maps to
/// `+1` and the second to `-1` (LIBSVM order-of-appearance semantics).
pub fn read_libsvm_str<T: Real>(
    content: &str,
    num_features: Option<usize>,
) -> Result<LabeledData<T>, DataError> {
    parse_lines(content.lines().map(|l| Ok(l.to_owned())), num_features)
}

/// Reads a LIBSVM-format file from disk. See [`read_libsvm_str`].
pub fn read_libsvm_file<T: Real>(
    path: impl AsRef<Path>,
    num_features: Option<usize>,
) -> Result<LabeledData<T>, DataError> {
    let path = path.as_ref();
    let file = File::open(path).map_err(|e| DataError::io_path(path, e))?;
    parse_lines(BufReader::new(file).lines(), num_features).map_err(|e| e.with_path(path))
}

fn parse_lines<T: Real>(
    lines: impl Iterator<Item = std::io::Result<String>>,
    num_features: Option<usize>,
) -> Result<LabeledData<T>, DataError> {
    // (label, sparse entries) per point; indices already 0-based.
    let mut rows: Vec<(i32, Vec<(usize, T)>)> = Vec::new();
    let mut max_index = 0usize; // exclusive upper bound of seen indices

    for (lineno, line) in lines.enumerate() {
        let lineno = lineno + 1;
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut tokens = line.split_ascii_whitespace();
        let label_tok = tokens
            .next()
            .ok_or_else(|| DataError::parse(lineno, "missing label"))?;
        let label = parse_label(label_tok)
            .ok_or_else(|| DataError::parse(lineno, format!("invalid label '{label_tok}'")))?;

        let mut entries = Vec::new();
        let mut last_index: Option<usize> = None;
        for tok in tokens {
            let col = token_column(line, tok);
            let (idx_s, val_s) = tok.split_once(':').ok_or_else(|| {
                DataError::parse_at(lineno, col, format!("expected 'index:value', got '{tok}'"))
            })?;
            let idx: usize = idx_s.trim().parse().map_err(|_| {
                DataError::parse_at(lineno, col, format!("invalid feature index '{idx_s}'"))
            })?;
            if idx == 0 {
                return Err(DataError::parse_at(
                    lineno,
                    col,
                    "feature indices are 1-based; index 0 is invalid",
                ));
            }
            if idx > MAX_FEATURE_INDEX {
                return Err(DataError::parse_at(
                    lineno,
                    col,
                    format!(
                        "feature index {idx} exceeds the supported maximum {MAX_FEATURE_INDEX}"
                    ),
                ));
            }
            let val: T = val_s.trim().parse().map_err(|_| {
                DataError::parse_at(lineno, col, format!("invalid value '{val_s}'"))
            })?;
            if let Some(prev) = last_index {
                if idx - 1 <= prev {
                    return Err(DataError::parse_at(
                        lineno,
                        col,
                        format!("feature indices must be strictly increasing (index {idx})"),
                    ));
                }
            }
            last_index = Some(idx - 1);
            max_index = max_index.max(idx);
            entries.push((idx - 1, val));
        }
        rows.push((label, entries));
    }

    if rows.is_empty() {
        return Err(DataError::Invalid(
            "data file contains no data points".into(),
        ));
    }
    let features = match num_features {
        Some(n) => {
            if n < max_index {
                return Err(DataError::Invalid(format!(
                    "requested {n} features but data contains index {max_index}"
                )));
            }
            n
        }
        None => max_index,
    };
    if features == 0 {
        return Err(DataError::Invalid(
            "data file contains no feature entries".into(),
        ));
    }

    // Order-of-appearance label mapping: first distinct label → +1.
    let first = rows[0].0;
    let mut second: Option<i32> = None;
    for &(label, _) in &rows {
        if label != first {
            match second {
                None => second = Some(label),
                Some(s) if s == label => {}
                Some(s) => {
                    return Err(DataError::Invalid(format!(
                        "binary classification supports exactly two labels, found {first}, {s} and {label}"
                    )))
                }
            }
        }
    }
    // A single-class file is accepted for prediction inputs; map -1 to the
    // complement so the map stays well-formed.
    let second = second.unwrap_or(if first == 1 { -1 } else { 1 });

    let mut x = DenseMatrix::zeros(rows.len(), features);
    let mut y = Vec::with_capacity(rows.len());
    for (p, (label, entries)) in rows.into_iter().enumerate() {
        y.push(if label == first { T::ONE } else { -T::ONE });
        let row = x.row_mut(p);
        for (idx, val) in entries {
            row[idx] = val;
        }
    }
    LabeledData::with_label_map(x, y, [first, second])
}

fn parse_label(tok: &str) -> Option<i32> {
    // LIBSVM labels are numeric but may be written as "+1", "-1.0", "2" …
    let v: f64 = tok.parse().ok()?;
    if !v.is_finite() || v.fract() != 0.0 || v.abs() > i32::MAX as f64 {
        return None;
    }
    Some(v as i32)
}

/// Serializes a data set into LIBSVM format.
///
/// With `sparse == true` zero entries are omitted (standard LIBSVM files);
/// otherwise every feature is written (dense-LIBSVM style).
pub fn write_libsvm_string<T: Real>(data: &LabeledData<T>, sparse: bool) -> String {
    let mut out = String::new();
    for (p, row) in data.x.rows_iter().enumerate() {
        let label = data.original_label(data.y[p]);
        out.push_str(&label.to_string());
        for (f, &v) in row.iter().enumerate() {
            if sparse && v.to_f64() == 0.0 {
                continue;
            }
            out.push_str(&format!(" {}:{}", f + 1, FmtReal(v)));
        }
        out.push('\n');
    }
    out
}

/// Writes a data set to a LIBSVM-format file atomically and durably (the
/// same temp-file + fsync + rename discipline as every other artifact
/// writer). See [`write_libsvm_string`].
pub fn write_libsvm_file<T: Real>(
    path: impl AsRef<Path>,
    data: &LabeledData<T>,
    sparse: bool,
) -> Result<(), DataError> {
    crate::io::write_atomic(path, write_libsvm_string(data, sparse).as_bytes())
}

/// Formats a real so that it round-trips exactly through `parse` while
/// staying human readable for integral values.
pub(crate) struct FmtReal<T>(pub T);

impl<T: Real> std::fmt::Display for FmtReal<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let v = self.0.to_f64();
        if v == v.trunc() && v.abs() < 1e15 {
            write!(f, "{v}")
        } else {
            // Shortest exact representation: `{}` on f64 is already minimal
            // round-trip in Rust.
            write!(f, "{}", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
1 1:0.5 3:-1.25
-1 2:2
1 1:1 2:1 3:1
-1
";

    #[test]
    fn parses_sparse_to_dense() {
        let d: LabeledData<f64> = read_libsvm_str(SAMPLE, None).unwrap();
        assert_eq!(d.points(), 4);
        assert_eq!(d.features(), 3);
        assert_eq!(d.x.row(0), &[0.5, 0.0, -1.25]);
        assert_eq!(d.x.row(1), &[0.0, 2.0, 0.0]);
        assert_eq!(d.x.row(3), &[0.0, 0.0, 0.0]);
        assert_eq!(d.y, vec![1.0, -1.0, 1.0, -1.0]);
        assert_eq!(d.label_map, [1, -1]);
    }

    #[test]
    fn parses_explicit_plus_labels_and_scientific_values() {
        // LIBSVM tools commonly write "+1" labels and exponent values
        let d: LabeledData<f64> = read_libsvm_str("+1 1:1.5e-3 2:-2E+1\n-1 1:1e0\n", None).unwrap();
        assert_eq!(d.label_map, [1, -1]);
        assert_eq!(d.y, vec![1.0, -1.0]);
        assert_eq!(d.x.get(0, 0), 1.5e-3);
        assert_eq!(d.x.get(0, 1), -20.0);
        assert_eq!(d.x.get(1, 0), 1.0);
    }

    #[test]
    fn first_label_maps_to_plus_one() {
        let d: LabeledData<f64> = read_libsvm_str("3 1:1\n7 1:2\n3 1:0.5\n", None).unwrap();
        assert_eq!(d.label_map, [3, 7]);
        assert_eq!(d.y, vec![1.0, -1.0, 1.0]);
        assert_eq!(d.original_label(1.0), 3);
        assert_eq!(d.original_label(-1.0), 7);
    }

    #[test]
    fn forced_feature_count_pads() {
        let d: LabeledData<f64> = read_libsvm_str("1 1:1\n-1 2:1\n", Some(5)).unwrap();
        assert_eq!(d.features(), 5);
        assert_eq!(d.x.row(0), &[1.0, 0.0, 0.0, 0.0, 0.0]);
    }

    #[test]
    fn forced_feature_count_too_small_errors() {
        let e = read_libsvm_str::<f64>("1 1:1 4:1\n", Some(2)).unwrap_err();
        assert!(e.to_string().contains("index 4"));
    }

    #[test]
    fn rejects_three_classes() {
        let e = read_libsvm_str::<f64>("1 1:1\n2 1:1\n3 1:1\n", None).unwrap_err();
        assert!(e.to_string().contains("two labels"));
    }

    #[test]
    fn rejects_bad_tokens() {
        assert!(read_libsvm_str::<f64>("x 1:1\n", None).is_err());
        assert!(read_libsvm_str::<f64>("1 1\n", None).is_err());
        assert!(read_libsvm_str::<f64>("1 0:1\n", None).is_err());
        assert!(read_libsvm_str::<f64>("1 a:1\n", None).is_err());
        assert!(read_libsvm_str::<f64>("1 1:z\n", None).is_err());
        assert!(read_libsvm_str::<f64>("1.5 1:1\n", None).is_err());
    }

    #[test]
    fn rejects_non_increasing_indices() {
        assert!(read_libsvm_str::<f64>("1 2:1 2:2\n", None).is_err());
        assert!(read_libsvm_str::<f64>("1 3:1 2:2\n", None).is_err());
    }

    #[test]
    fn rejects_empty_input() {
        assert!(read_libsvm_str::<f64>("", None).is_err());
        assert!(read_libsvm_str::<f64>("# only a comment\n\n", None).is_err());
    }

    #[test]
    fn skips_comments_and_blank_lines() {
        let d: LabeledData<f64> =
            read_libsvm_str("# header\n\n1 1:1\n\n-1 1:2\n# trailer\n", None).unwrap();
        assert_eq!(d.points(), 2);
    }

    #[test]
    fn single_class_file_is_allowed() {
        let d: LabeledData<f64> = read_libsvm_str("1 1:1\n1 1:2\n", None).unwrap();
        assert_eq!(d.class_counts(), (2, 0));
        assert_eq!(d.label_map, [1, -1]);
        let d: LabeledData<f64> = read_libsvm_str("5 1:1\n", None).unwrap();
        assert_eq!(d.label_map, [5, 1]);
    }

    #[test]
    fn roundtrip_sparse_and_dense() {
        let d: LabeledData<f64> = read_libsvm_str(SAMPLE, None).unwrap();
        for sparse in [true, false] {
            let s = write_libsvm_string(&d, sparse);
            let d2: LabeledData<f64> = read_libsvm_str(&s, Some(d.features())).unwrap();
            assert_eq!(d.x, d2.x);
            assert_eq!(d.y, d2.y);
            assert_eq!(d.label_map, d2.label_map);
        }
    }

    #[test]
    fn file_roundtrip() {
        let d: LabeledData<f64> = read_libsvm_str(SAMPLE, None).unwrap();
        let dir = std::env::temp_dir().join("plssvm_data_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("roundtrip.libsvm");
        write_libsvm_file(&path, &d, true).unwrap();
        let d2: LabeledData<f64> = read_libsvm_file(&path, Some(3)).unwrap();
        assert_eq!(d, d2);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn fractional_values_roundtrip_exactly() {
        let v = 0.123_456_789_012_345_68_f64; // not exactly representable
        let content = format!("1 1:{v}\n-1 1:1\n");
        let d: LabeledData<f64> = read_libsvm_str(&content, None).unwrap();
        let s = write_libsvm_string(&d, true);
        let d2: LabeledData<f64> = read_libsvm_str(&s, None).unwrap();
        assert_eq!(d.x.get(0, 0), d2.x.get(0, 0));
    }

    #[test]
    fn regression_roundtrip() {
        let content = "0.5 1:1 2:2\n-1.75 2:3\n3.25\n";
        let d: RegressionData<f64> = read_libsvm_regression_str(content, None).unwrap();
        assert_eq!(d.points(), 3);
        assert_eq!(d.features(), 2);
        assert_eq!(d.y, vec![0.5, -1.75, 3.25]);
        assert_eq!(d.x.row(1), &[0.0, 3.0]);
        let s = write_libsvm_regression_string(&d, true);
        let d2: RegressionData<f64> = read_libsvm_regression_str(&s, Some(2)).unwrap();
        assert_eq!(d, d2);
    }

    #[test]
    fn regression_rejects_bad_input() {
        assert!(read_libsvm_regression_str::<f64>("", None).is_err());
        assert!(read_libsvm_regression_str::<f64>("abc 1:1\n", None).is_err());
        assert!(read_libsvm_regression_str::<f64>("1.0 0:1\n", None).is_err());
        assert!(read_libsvm_regression_str::<f64>("1.0 1:x\n", None).is_err());
        assert!(read_libsvm_regression_str::<f64>("1.0 3:1\n", Some(2)).is_err());
        let x = DenseMatrix::from_rows(vec![vec![1.0f64]]).unwrap();
        assert!(RegressionData::new(x.clone(), vec![]).is_err());
        assert!(RegressionData::new(x, vec![f64::NAN]).is_err());
    }

    #[test]
    fn mismatched_label_count_rejected() {
        let x = DenseMatrix::from_rows(vec![vec![1.0f64]]).unwrap();
        assert!(LabeledData::new(x.clone(), vec![]).is_err());
        assert!(LabeledData::new(x.clone(), vec![0.5]).is_err());
        assert!(LabeledData::with_label_map(x, vec![1.0], [2, 2]).is_err());
    }
}
