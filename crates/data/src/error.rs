//! Error type shared by all data handling code.

use std::fmt;
use std::io;
use std::path::{Path, PathBuf};

/// Upper bound on 1-based feature indices accepted by all text parsers.
///
/// LIBSVM files are sparse, so a single malicious line like `1 4294967295:1`
/// would otherwise drive a multi-gigabyte dense allocation (and abort the
/// process) before any dimension sanity check can run. Real data sets sit
/// far below this bound; files exceeding it get a structured parse error.
pub const MAX_FEATURE_INDEX: usize = 1 << 24;

/// Errors produced while reading, writing or generating data sets.
#[derive(Debug)]
pub enum DataError {
    /// An underlying I/O failure (file not found, permission, …).
    Io(io::Error),
    /// An I/O failure annotated with the path it happened on. All writers
    /// that persist artifacts (models, scale ranges, checkpoints, metrics)
    /// report this variant so the user sees *which* file failed.
    IoPath {
        /// The file or directory the operation was acting on.
        path: PathBuf,
        /// The underlying OS error.
        source: io::Error,
    },
    /// A syntactically invalid input file. Carries the 1-based line number
    /// and a description of what was wrong.
    Parse {
        /// 1-based line number in the offending file.
        line: usize,
        /// 1-based byte column of the offending token, when known.
        column: Option<usize>,
        /// Human readable description of the problem.
        message: String,
    },
    /// Structurally invalid data (e.g. zero data points, inconsistent
    /// dimensions, more than two classes for binary classification).
    Invalid(String),
}

impl fmt::Display for DataError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataError::Io(e) => write!(f, "I/O error: {e}"),
            DataError::IoPath { path, source } => {
                write!(f, "I/O error on '{}': {source}", path.display())
            }
            DataError::Parse {
                line,
                column: Some(column),
                message,
            } => {
                write!(f, "parse error on line {line}, column {column}: {message}")
            }
            DataError::Parse {
                line,
                column: None,
                message,
            } => {
                write!(f, "parse error on line {line}: {message}")
            }
            DataError::Invalid(msg) => write!(f, "invalid data: {msg}"),
        }
    }
}

impl std::error::Error for DataError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DataError::Io(e) => Some(e),
            DataError::IoPath { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl From<io::Error> for DataError {
    fn from(e: io::Error) -> Self {
        DataError::Io(e)
    }
}

impl DataError {
    /// Convenience constructor for path-annotated I/O errors.
    pub fn io_path(path: impl AsRef<Path>, source: io::Error) -> Self {
        DataError::IoPath {
            path: path.as_ref().to_path_buf(),
            source,
        }
    }

    /// Convenience constructor for parse errors.
    pub fn parse(line: usize, message: impl Into<String>) -> Self {
        DataError::Parse {
            line,
            column: None,
            message: message.into(),
        }
    }

    /// Parse error with a known 1-based byte column.
    pub fn parse_at(line: usize, column: usize, message: impl Into<String>) -> Self {
        DataError::Parse {
            line,
            column: Some(column),
            message: message.into(),
        }
    }

    /// Annotates a bare [`DataError::Io`] with the path it happened on.
    /// Every other variant (including an already-annotated `IoPath`) is
    /// returned unchanged — readers call this so no I/O failure reaches
    /// the user without naming the offending file.
    pub fn with_path(self, path: impl AsRef<Path>) -> Self {
        match self {
            DataError::Io(source) => DataError::io_path(path, source),
            other => other,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        let e = DataError::parse(3, "bad token");
        assert_eq!(e.to_string(), "parse error on line 3: bad token");
        let e = DataError::parse_at(3, 7, "bad token");
        assert_eq!(e.to_string(), "parse error on line 3, column 7: bad token");
        let e = DataError::Invalid("empty".into());
        assert_eq!(e.to_string(), "invalid data: empty");
        let e = DataError::from(io::Error::new(io::ErrorKind::NotFound, "nope"));
        assert!(e.to_string().contains("nope"));
        let e = DataError::io_path("/tmp/m.model", io::Error::other("disk"));
        let msg = e.to_string();
        assert!(msg.contains("/tmp/m.model") && msg.contains("disk"));
    }

    #[test]
    fn io_source_is_preserved() {
        use std::error::Error;
        let e = DataError::from(io::Error::new(io::ErrorKind::NotFound, "gone"));
        assert!(e.source().is_some());
        let e = DataError::io_path("x", io::Error::new(io::ErrorKind::NotFound, "gone"));
        assert!(e.source().is_some());
        assert!(DataError::Invalid("x".into()).source().is_none());
    }
}
