//! Property tests of the VFS layer: a fault-free [`FaultVfs`] is
//! indistinguishable from [`RealVfs`], and seeded fault plans replay
//! identically.

use std::path::{Path, PathBuf};

use proptest::prelude::*;

use plssvm_data::vfs::{FaultPlan, FaultVfs, OpClass, RealVfs, Vfs};

/// One randomized filesystem operation over a small closed name space.
#[derive(Debug, Clone, Copy)]
struct Op {
    /// Which [`Vfs`] method to call.
    selector: u8,
    /// Primary file/dir selector.
    a: u8,
    /// Secondary file selector (rename target, content variant).
    b: u8,
}

const FILES: [&str; 4] = ["f0.txt", "f1.txt", "gen-0001.ckpt", "model.txt"];
const DIRS: [&str; 3] = ["sub", "sub/nested", "journal"];

fn file(dir: &Path, i: u8) -> PathBuf {
    dir.join(FILES[i as usize % FILES.len()])
}

fn subdir(dir: &Path, i: u8) -> PathBuf {
    dir.join(DIRS[i as usize % DIRS.len()])
}

/// Applies one op, folding the outcome into a comparable string. Paths
/// never appear in the digest (the two replay dirs differ), only the
/// operation result shape and any payload bytes.
fn apply(vfs: &dyn Vfs, dir: &Path, op: Op, step: usize) -> String {
    match op.selector % 9 {
        0 => {
            let content = format!("content-{step}-{}", op.b);
            digest(
                "create",
                vfs.create_write(&file(dir, op.a), content.as_bytes()),
            )
        }
        1 => digest("sync_file", vfs.sync_file(&file(dir, op.a))),
        2 => digest("sync_dir", vfs.sync_dir(dir)),
        3 => digest("rename", vfs.rename(&file(dir, op.a), &file(dir, op.b))),
        4 => digest("remove", vfs.remove_file(&file(dir, op.a))),
        5 => match vfs.read(&file(dir, op.a)) {
            Ok(bytes) => format!("read ok {bytes:?}"),
            Err(e) => format!("read err {:?}", e.kind()),
        },
        6 => match vfs.list_dir(dir) {
            Ok(mut names) => {
                names.sort();
                format!("list ok {names:?}")
            }
            Err(e) => format!("list err {:?}", e.kind()),
        },
        7 => digest("mkdir", vfs.create_dir_all(&subdir(dir, op.a))),
        _ => match vfs.file_len(&file(dir, op.a)) {
            Ok(n) => format!("len ok {n}"),
            Err(e) => format!("len err {:?}", e.kind()),
        },
    }
}

fn digest(what: &str, r: std::io::Result<()>) -> String {
    match r {
        Ok(()) => format!("{what} ok"),
        Err(e) => format!("{what} err {:?}", e.kind()),
    }
}

/// The observable on-disk state after a run: sorted relative paths with
/// file contents.
fn state(dir: &Path) -> Vec<String> {
    fn walk(root: &Path, dir: &Path, out: &mut Vec<String>) {
        for entry in std::fs::read_dir(dir).unwrap() {
            let entry = entry.unwrap();
            let path = entry.path();
            let rel = path
                .strip_prefix(root)
                .unwrap()
                .to_string_lossy()
                .into_owned();
            if path.is_dir() {
                out.push(format!("dir {rel}"));
                walk(root, &path, out);
            } else {
                out.push(format!("file {rel} {:?}", std::fs::read(&path).unwrap()));
            }
        }
    }
    let mut out = Vec::new();
    walk(dir, dir, &mut out);
    out.sort();
    out
}

fn fresh_dir(tag: &str, case: usize) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "plssvm_vfs_prop_{tag}_{case}_{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn ops() -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(
        (0u8..=255, 0u8..8, 0u8..8).prop_map(|(selector, a, b)| Op { selector, a, b }),
        1..40,
    )
}

static CASE: std::sync::atomic::AtomicUsize = std::sync::atomic::AtomicUsize::new(0);

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// A FaultVfs with an empty plan behaves byte-identically to RealVfs
    /// on any operation sequence: same per-op outcomes, same final
    /// on-disk state.
    #[test]
    fn empty_plan_fault_vfs_is_byte_identical_to_real_vfs(ops in ops()) {
        let case = CASE.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let real_dir = fresh_dir("real", case);
        let fault_dir = fresh_dir("fault", case);
        let real = RealVfs;
        let fault = FaultVfs::new(FaultPlan::new());
        for (step, op) in ops.iter().enumerate() {
            let a = apply(&real, &real_dir, *op, step);
            let b = apply(&fault, &fault_dir, *op, step);
            prop_assert_eq!(a, b, "diverged at step {}", step);
        }
        prop_assert_eq!(state(&real_dir), state(&fault_dir));
        prop_assert_eq!(fault.total_injected(), 0);
        let _ = std::fs::remove_dir_all(&real_dir);
        let _ = std::fs::remove_dir_all(&fault_dir);
    }

    /// Two FaultVfs instances over the same seeded plan replay the same
    /// operation sequence identically: same outcomes, same on-disk
    /// state, same injected-fault log (modulo the replay directory).
    #[test]
    fn same_seed_plans_replay_identically(ops in ops(), seed in 0u64..1000) {
        let case = CASE.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let dir_a = fresh_dir("seed_a", case);
        let dir_b = fresh_dir("seed_b", case);
        let vfs_a = FaultVfs::new(FaultPlan::seeded(seed, 32));
        let vfs_b = FaultVfs::new(FaultPlan::seeded(seed, 32));
        for (step, op) in ops.iter().enumerate() {
            let a = apply(&vfs_a, &dir_a, *op, step);
            let b = apply(&vfs_b, &dir_b, *op, step);
            prop_assert_eq!(a, b, "diverged at step {}", step);
        }
        prop_assert_eq!(state(&dir_a), state(&dir_b));
        // the injected-fault audit logs agree on everything but the dir
        let log = |v: &FaultVfs, root: &Path| -> Vec<String> {
            v.injected()
                .iter()
                .map(|f| {
                    let name = if f.path == root {
                        "<root>".to_owned()
                    } else {
                        format!("{:?}", f.path.file_name())
                    };
                    format!("{:?} {:?} @{} on {name}", f.kind, f.class, f.op_index)
                })
                .collect()
        };
        prop_assert_eq!(log(&vfs_a, &dir_a), log(&vfs_b, &dir_b));
        // per-class op counters replay too
        for class in [OpClass::Write, OpClass::Sync, OpClass::Rename, OpClass::Read,
                      OpClass::Remove, OpClass::List, OpClass::Mkdir] {
            prop_assert_eq!(vfs_a.ops(class), vfs_b.ops(class));
        }
        let _ = std::fs::remove_dir_all(&dir_a);
        let _ = std::fs::remove_dir_all(&dir_b);
    }
}
