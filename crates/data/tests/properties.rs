//! Property-based tests of the data substrate.

use proptest::prelude::*;

use plssvm_data::arff::{read_arff_str, write_arff_string};
use plssvm_data::checkpoint::Snapshot;
use plssvm_data::dense::{weighted_allocation, DenseMatrix, SoAMatrix};
use plssvm_data::libsvm::LabeledData;
use plssvm_data::scale::ScalingParams;
use plssvm_data::sparse::CsrMatrix;

fn matrix(max_rows: usize, max_cols: usize) -> impl Strategy<Value = DenseMatrix<f64>> {
    (1..max_rows, 1..max_cols)
        .prop_flat_map(|(r, c)| {
            proptest::collection::vec(proptest::collection::vec(-100.0..100.0f64, c..=c), r..=r)
        })
        .prop_map(|rows| DenseMatrix::from_rows(rows).unwrap())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Dense → SoA → dense is the identity for every padding granularity.
    #[test]
    fn soa_roundtrip(m in matrix(12, 10), pad in 1usize..70) {
        let soa = SoAMatrix::from_dense(&m, pad);
        prop_assert_eq!(soa.to_dense(), m);
        prop_assert_eq!(soa.padded_points() % pad, 0);
        prop_assert!(soa.padded_points() >= soa.points());
        prop_assert!(soa.padded_points() < soa.points() + pad);
    }

    /// Dense → CSR → dense is the identity, and CSR dots match dense dots.
    #[test]
    fn csr_roundtrip_and_dots(m in matrix(10, 8)) {
        let csr = CsrMatrix::from_dense(&m);
        prop_assert_eq!(csr.to_dense(), m.clone());
        for i in 0..m.rows() {
            for j in 0..m.rows() {
                let dense: f64 = (0..m.cols()).map(|f| m.get(i, f) * m.get(j, f)).sum();
                let scale = dense.abs().max(1.0);
                prop_assert!((csr.sparse_dot(i, j) - dense).abs() < 1e-9 * scale);
            }
        }
    }

    /// The weighted allocation always sums to the total, respects the
    /// ordering of weights (up to the one-item remainder granularity),
    /// and equals the even split for equal weights.
    #[test]
    fn weighted_allocation_properties(total in 0usize..500,
                                      weights in proptest::collection::vec(0.01..100.0f64, 1..8)) {
        let counts = weighted_allocation(total, &weights);
        prop_assert_eq!(counts.len(), weights.len());
        prop_assert_eq!(counts.iter().sum::<usize>(), total);
        // a chunk with at least twice the weight never gets fewer items
        // than a chunk it dominates, beyond remainder granularity
        for a in 0..weights.len() {
            for b in 0..weights.len() {
                if weights[a] >= 2.0 * weights[b] {
                    prop_assert!(counts[a] + 1 >= counts[b],
                        "w={weights:?} c={counts:?}");
                }
            }
        }
        let even = weighted_allocation(total, &vec![1.0; weights.len()]);
        let max = even.iter().max().unwrap();
        let min = even.iter().min().unwrap();
        prop_assert!(max - min <= 1);
    }

    /// Scaling into any non-empty interval bounds the fitted data and is
    /// idempotent on already-scaled data when ranges are refit.
    #[test]
    fn scaling_bounds(m in matrix(8, 6), lo in -5.0..4.9f64, width in 0.1..5.0f64) {
        let hi = lo + width;
        let mut scaled = m.clone();
        let params = ScalingParams::fit(&m, lo, hi).unwrap();
        params.apply(&mut scaled).unwrap();
        for p in 0..scaled.rows() {
            for f in 0..scaled.cols() {
                let v = scaled.get(p, f);
                let (fmin, fmax) = params.ranges[f];
                if fmin == fmax {
                    // constant features map to 0 (svm-scale drops them
                    // from its sparse output), even outside [lo, hi]
                    prop_assert_eq!(v, 0.0);
                } else {
                    prop_assert!(v >= lo - 1e-9 && v <= hi + 1e-9);
                }
            }
        }
        // refit + reapply is idempotent up to fp error
        let params2 = ScalingParams::fit(&scaled, lo, hi).unwrap();
        let mut twice = scaled.clone();
        params2.apply(&mut twice).unwrap();
        for p in 0..twice.rows() {
            for f in 0..twice.cols() {
                prop_assert!((twice.get(p, f) - scaled.get(p, f)).abs() < 1e-9);
            }
        }
    }

    /// ARFF serialization round-trips arbitrary binary data sets (in
    /// original label space).
    #[test]
    fn arff_roundtrip(m in matrix(8, 5),
                      labels in proptest::collection::vec(prop_oneof![Just(1.0f64), Just(-1.0)], 8)) {
        let y: Vec<f64> = (0..m.rows()).map(|i| labels[i % labels.len()]).collect();
        let data = LabeledData::new(m, y).unwrap();
        let text = write_arff_string(&data, "prop");
        let back: LabeledData<f64> = read_arff_str(&text).unwrap();
        prop_assert_eq!(&data.x, &back.x);
        for i in 0..data.points() {
            prop_assert_eq!(data.original_label(data.y[i]), back.original_label(back.y[i]));
        }
    }
}

/// Three equal-length state vectors for a checkpoint snapshot.
fn state_vecs(max_dim: usize) -> impl Strategy<Value = (Vec<f64>, Vec<f64>, Vec<f64>)> {
    (1..max_dim).prop_flat_map(|n| {
        let v = || proptest::collection::vec(-1e12..1e12f64, n..=n);
        (v(), v(), v())
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Snapshot → bytes → snapshot is the identity in double precision.
    #[test]
    fn checkpoint_snapshot_roundtrip_f64(
        rung in 0u8..4,
        context_hash in any::<u64>(),
        iterations in any::<u64>(),
        (x, r, d) in state_vecs(24),
        rho in -1e12..1e12f64,
        delta in 0.0..1e12f64,
        delta0 in 1e-12..1e12f64,
    ) {
        let snap = Snapshot { rung, context_hash, iterations, x, r, d, rho, delta, delta0 };
        let back = Snapshot::<f64>::from_bytes(&snap.to_bytes()).unwrap();
        prop_assert_eq!(back, snap);
    }

    /// The same identity in single precision, and the two precisions
    /// reject each other's files as a precision mismatch, not garbage.
    #[test]
    fn checkpoint_snapshot_roundtrip_f32(
        rung in 0u8..4,
        context_hash in any::<u64>(),
        iterations in any::<u64>(),
        (x64, r64, d64) in state_vecs(24),
        rho in -1e12..1e12f32,
        delta in 0.0..1e12f32,
        delta0 in 1e-6..1e12f32,
    ) {
        let to32 = |v: &[f64]| v.iter().map(|&a| a as f32).collect::<Vec<f32>>();
        let snap = Snapshot {
            rung,
            context_hash,
            iterations,
            x: to32(&x64),
            r: to32(&r64),
            d: to32(&d64),
            rho,
            delta,
            delta0,
        };
        let bytes = snap.to_bytes();
        let back = Snapshot::<f32>::from_bytes(&bytes).unwrap();
        prop_assert_eq!(back, snap);
        let cross_rejected = matches!(
            Snapshot::<f64>::from_bytes(&bytes),
            Err(plssvm_data::CheckpointError::PrecisionMismatch { expected: 8, found: 4 })
        );
        prop_assert!(cross_rejected);
    }

    /// CRC32 detects every single-bit flip: a snapshot file with any one
    /// bit flipped must fail to load (no silent state corruption).
    #[test]
    fn checkpoint_single_bitflip_is_always_detected(
        (x, r, d) in state_vecs(12),
        byte in any::<u64>(),
        bit in 0u8..8,
    ) {
        let snap = Snapshot {
            rung: 1,
            context_hash: 0xabcd,
            iterations: 17,
            x, r, d,
            rho: 0.5,
            delta: 0.25,
            delta0: 1.0,
        };
        let mut bytes = snap.to_bytes();
        let i = byte as usize % bytes.len();
        bytes[i] ^= 1 << bit;
        prop_assert!(Snapshot::<f64>::from_bytes(&bytes).is_err());
    }

    /// Non-finite state must be rejected at load time even though it
    /// serializes with a valid checksum: resuming NaN/inf would poison
    /// the solve.
    #[test]
    fn checkpoint_non_finite_state_is_rejected(
        (mut x, r, d) in state_vecs(12),
        poison in prop_oneof![Just(f64::NAN), Just(f64::INFINITY), Just(f64::NEG_INFINITY)],
        at in any::<u64>(),
    ) {
        let i = at as usize % x.len();
        x[i] = poison;
        let snap = Snapshot {
            rung: 0,
            context_hash: 7,
            iterations: 3,
            x, r, d,
            rho: 1.0,
            delta: 1.0,
            delta0: 1.0,
        };
        let err = Snapshot::<f64>::from_bytes(&snap.to_bytes()).unwrap_err();
        let rejected_as_non_finite =
            matches!(err, plssvm_data::CheckpointError::NonFinite { field: "x" });
        prop_assert!(rejected_as_non_finite);
    }
}
