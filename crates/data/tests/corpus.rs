//! Mutation corpus: every text parser must return a structured
//! [`DataError`](plssvm_data::DataError) on malformed input — never panic,
//! never abort on an absurd allocation.
//!
//! A tiny deterministic LCG drives byte-level and token-level mutations of
//! valid seed documents (LIBSVM data, model files, range files, ARFF). Each
//! mutant is fed through all seven parser entry points under
//! `catch_unwind`; a panic anywhere fails the test with the offending
//! parser, seed, and mutation index so the case can be replayed.

use std::panic::{catch_unwind, AssertUnwindSafe};

use plssvm_data::arff::read_arff_str;
use plssvm_data::libsvm::{read_libsvm_regression_str, read_libsvm_str};
use plssvm_data::model::{SvmModel, SvrModel};
use plssvm_data::multiclass::read_libsvm_multiclass_str;
use plssvm_data::scale::ScalingParams;

/// Deterministic 64-bit LCG (MMIX constants); no external RNG crates.
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 33
    }

    fn below(&mut self, bound: usize) -> usize {
        (self.next() % bound.max(1) as u64) as usize
    }
}

const LIBSVM_SEED: &str = "\
# comment line
1 1:0.5 3:1.25
-1 2:-2e-1 3:4
1 1:1e3
-1 1:-0.25 2:0.75 3:-1
";

const MULTICLASS_SEED: &str = "\
3 1:1 2:0.5
1 1:-1
2 2:2
3 3:-0.5
";

const REGRESSION_SEED: &str = "\
0.5 1:1 2:2
-1.25 1:0.5
3e2 2:-1
";

const MODEL_SEED: &str = "\
svm_type c_svc
kernel_type rbf
gamma 0.25
nr_class 2
total_sv 2
rho -0.5
label 1 -1
nr_sv 1 1
SV
1.5 1:0.5 2:-1
-0.75 1:2
";

const SVR_MODEL_SEED: &str = "\
svm_type epsilon_svr
kernel_type linear
nr_class 2
total_sv 2
rho 0.25
SV
1.5 1:0.5 2:-1
-0.75 1:2
";

const RANGE_SEED: &str = "\
x
-1 1
1 0 4
2 10 20
3 5 5
";

const ARFF_SEED: &str = "\
@RELATION planes
@ATTRIBUTE f0 NUMERIC
@ATTRIBUTE f1 NUMERIC
@ATTRIBUTE class NUMERIC
@DATA
0.5,1.0,1
-1.5,2.0,-1
{0 2.5, 2 1}
";

/// Hostile tokens that historically drive parsers into panics or giant
/// allocations: overflowing indices, non-finite values, truncated pairs.
const NASTY_TOKENS: &[&str] = &[
    "4294967295:1",
    "18446744073709551615:1",
    "16777217:1",
    "1e999999999",
    "1:1e999999999",
    "nan",
    "nan:nan",
    "inf",
    ":",
    "1:",
    ":1",
    "-",
    "+",
    "0:1",
    "-1:5",
    "1:1:1",
    "0x41",
    "NaN 1:NaN",
    "label",
    "nr_sv 99999999999999999999 1",
    "total_sv 18446744073709551615",
    "{",
    "{0",
    "@DATA",
];

fn mutate(seed: &str, rng: &mut Lcg) -> String {
    let mut bytes = seed.as_bytes().to_vec();
    match rng.below(6) {
        // flip a random byte
        0 => {
            if !bytes.is_empty() {
                let i = rng.below(bytes.len());
                bytes[i] ^= 1 << rng.below(8);
            }
        }
        // truncate at a random point
        1 => {
            let i = rng.below(bytes.len() + 1);
            bytes.truncate(i);
        }
        // splice a hostile token at a random position
        2 => {
            let tok = NASTY_TOKENS[rng.below(NASTY_TOKENS.len())];
            let i = rng.below(bytes.len() + 1);
            bytes.splice(i..i, tok.bytes());
        }
        // replace a whole line with a hostile token
        3 => {
            let mut lines: Vec<&str> = seed.lines().collect();
            if !lines.is_empty() {
                let i = rng.below(lines.len());
                lines[i] = NASTY_TOKENS[rng.below(NASTY_TOKENS.len())];
            }
            bytes = lines.join("\n").into_bytes();
        }
        // duplicate a random line (breaks total_sv/nr_sv consistency)
        4 => {
            let mut lines: Vec<&str> = seed.lines().collect();
            if !lines.is_empty() {
                let i = rng.below(lines.len());
                lines.insert(i, lines[i]);
            }
            bytes = lines.join("\n").into_bytes();
        }
        // delete a random line (drops headers / SV rows)
        _ => {
            let mut lines: Vec<&str> = seed.lines().collect();
            if !lines.is_empty() {
                lines.remove(rng.below(lines.len()));
            }
            bytes = lines.join("\n").into_bytes();
        }
    }
    String::from_utf8_lossy(&bytes).into_owned()
}

/// Feeds one document through every parser entry point; returns the name of
/// the first parser that panicked, if any.
fn panics_in(content: &str) -> Option<&'static str> {
    let checks: &[(&'static str, &dyn Fn())] = &[
        ("read_libsvm_str", &|| {
            let _ = read_libsvm_str::<f64>(content, None);
        }),
        ("read_libsvm_str_forced_features", &|| {
            let _ = read_libsvm_str::<f32>(content, Some(3));
        }),
        ("read_libsvm_regression_str", &|| {
            let _ = read_libsvm_regression_str::<f64>(content, None);
        }),
        ("read_libsvm_multiclass_str", &|| {
            let _ = read_libsvm_multiclass_str::<f64>(content, None);
        }),
        ("read_arff_str", &|| {
            let _ = read_arff_str::<f64>(content);
        }),
        ("SvmModel::from_model_string", &|| {
            let _ = SvmModel::<f64>::from_model_string(content);
        }),
        ("SvrModel::from_model_string", &|| {
            let _ = SvrModel::<f64>::from_model_string(content);
        }),
        ("ScalingParams::from_range_string", &|| {
            let _ = ScalingParams::<f64>::from_range_string(content);
        }),
    ];
    for (name, check) in checks {
        if catch_unwind(AssertUnwindSafe(check)).is_err() {
            return Some(name);
        }
    }
    None
}

#[test]
fn mutated_inputs_error_but_never_panic() {
    // Silence the default panic hook: an intentional panic probe would
    // otherwise spam stderr even though the test handles it.
    let prev_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));

    let seeds = [
        ("libsvm", LIBSVM_SEED),
        ("multiclass", MULTICLASS_SEED),
        ("regression", REGRESSION_SEED),
        ("model", MODEL_SEED),
        ("svr_model", SVR_MODEL_SEED),
        ("range", RANGE_SEED),
        ("arff", ARFF_SEED),
    ];
    let mut failures = Vec::new();
    for (seed_name, seed) in seeds {
        let mut rng = Lcg(0x5eed ^ seed.len() as u64);
        for round in 0..300 {
            let mutant = mutate(seed, &mut rng);
            if let Some(parser) = panics_in(&mutant) {
                failures.push(format!(
                    "{parser} panicked on seed '{seed_name}' round {round}: {mutant:?}"
                ));
            }
        }
    }

    std::panic::set_hook(prev_hook);
    assert!(failures.is_empty(), "{}", failures.join("\n"));
}

#[test]
fn double_mutations_never_panic() {
    let prev_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));

    let mut rng = Lcg(0xfeed_f00d);
    let mut failures = Vec::new();
    for round in 0..200 {
        let once = mutate(MODEL_SEED, &mut rng);
        let twice = mutate(&once, &mut rng);
        if let Some(parser) = panics_in(&twice) {
            failures.push(format!(
                "{parser} panicked on double mutant round {round}: {twice:?}"
            ));
        }
    }

    std::panic::set_hook(prev_hook);
    assert!(failures.is_empty(), "{}", failures.join("\n"));
}

/// A representative valid checkpoint snapshot for the binary mutation
/// corpus.
fn checkpoint_seed_bytes() -> Vec<u8> {
    plssvm_data::checkpoint::Snapshot {
        rung: 2,
        context_hash: 0x1234_5678_9abc_def0,
        iterations: 42,
        x: vec![0.5, -1.25, 3.0, 0.0625, -7.5],
        r: vec![1e-3, -2e-4, 5e-5, 0.0, 1e-6],
        d: vec![0.25, 0.125, -0.5, 1.0, -1.0],
        rho: 1.5e-6,
        delta: 2.5e-7,
        delta0: 4.0,
    }
    .to_bytes()
}

/// Byte-level mutations for the binary snapshot format: flips,
/// truncations, extensions, zero runs and length-field attacks.
fn mutate_bytes(seed: &[u8], rng: &mut Lcg) -> Vec<u8> {
    let mut bytes = seed.to_vec();
    match rng.below(6) {
        // flip a random bit
        0 if !bytes.is_empty() => {
            let i = rng.below(bytes.len());
            bytes[i] ^= 1 << rng.below(8);
        }
        // truncate at a random point (torn write)
        1 => {
            bytes.truncate(rng.below(bytes.len() + 1));
        }
        // append garbage (partial next write flushed into the same file)
        2 => {
            let extra = rng.below(64) + 1;
            for _ in 0..extra {
                bytes.push(rng.next() as u8);
            }
        }
        // zero out a run (sparse-file hole after a crash)
        3 if !bytes.is_empty() => {
            let start = rng.below(bytes.len());
            let len = rng.below(bytes.len() - start) + 1;
            bytes[start..start + len].iter_mut().for_each(|b| *b = 0);
        }
        // overwrite the stored dimension with a huge value: must be a
        // structured error, never a giant allocation
        4 if bytes.len() >= 32 => {
            let dim = u64::MAX - u64::from(rng.next() as u8);
            bytes[24..32].copy_from_slice(&dim.to_le_bytes());
        }
        // swap two random bytes
        _ if !bytes.is_empty() => {
            let i = rng.below(bytes.len());
            let j = rng.below(bytes.len());
            bytes.swap(i, j);
        }
        _ => {}
    }
    bytes
}

/// Every mutated checkpoint file must produce a classified
/// [`CheckpointError`](plssvm_data::CheckpointError) (or, for mutations
/// in the rare CRC-colliding blind spots, a valid snapshot) — never a
/// panic, in either precision.
#[test]
fn mutated_checkpoint_bytes_never_panic_the_loader() {
    let prev_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));

    let seed = checkpoint_seed_bytes();
    let mut rng = Lcg(0xc4ec_4b01);
    let mut failures = Vec::new();
    for round in 0..600 {
        let mut mutant = mutate_bytes(&seed, &mut rng);
        if round % 3 == 0 {
            mutant = mutate_bytes(&mutant, &mut rng);
        }
        let m = mutant.clone();
        if catch_unwind(AssertUnwindSafe(move || {
            let _ = plssvm_data::checkpoint::Snapshot::<f64>::from_bytes(&m);
        }))
        .is_err()
        {
            failures.push(format!("f64 loader panicked on round {round}: {mutant:?}"));
        }
        let m = mutant.clone();
        if catch_unwind(AssertUnwindSafe(move || {
            let _ = plssvm_data::checkpoint::Snapshot::<f32>::from_bytes(&m);
        }))
        .is_err()
        {
            failures.push(format!("f32 loader panicked on round {round}: {mutant:?}"));
        }
    }

    std::panic::set_hook(prev_hook);
    assert!(failures.is_empty(), "{}", failures.join("\n"));
}

/// A journal directory full of damaged generation files must recover
/// (skipping the damage) or report cleanly — `load_latest` never panics
/// and never errors on integrity damage alone.
#[test]
fn journals_of_mutated_generations_recover_or_report_cleanly() {
    let dir = std::env::temp_dir().join(format!("plssvm-corpus-journal-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let seed = checkpoint_seed_bytes();
    let mut rng = Lcg(0x7031_1e55);
    for round in 0..40 {
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        // generations 1..=4: some valid, some mutants
        let mut wrote_valid = false;
        for generation in 1u64..=4 {
            let content = if rng.below(2) == 0 {
                wrote_valid = true;
                seed.clone()
            } else {
                mutate_bytes(&seed, &mut rng)
            };
            std::fs::write(dir.join(format!("gen-{generation:08}.ckpt")), content).unwrap();
        }
        let journal = plssvm_data::CheckpointJournal::open(&dir, 4).unwrap();
        let (loaded, skipped) = journal
            .load_latest::<f64>()
            .unwrap_or_else(|e| panic!("round {round}: load_latest errored: {e}"));
        if wrote_valid {
            assert!(
                loaded.is_some(),
                "round {round}: a valid generation existed but was not found \
                 ({} skipped)",
                skipped.len()
            );
        }
        // every skipped generation carries a classified reason
        for s in &skipped {
            assert!(!s.reason.kind().is_empty());
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn hostile_one_liners_error_with_context() {
    // Directly check the adversarial inputs from the issue: a huge sparse
    // index must produce a structured parse error (with the line number),
    // not a multi-gigabyte allocation.
    let err = read_libsvm_str::<f64>("1 4294967295:1\n", None).unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("line 1"), "{msg}");
    assert!(msg.contains("exceeds the supported maximum"), "{msg}");

    // Overflowing exponents parse to ±inf under Rust's f64 grammar — the
    // parser must pass them through (or reject them) without panicking.
    let _ = read_libsvm_str::<f64>("1 1:1e999999999\n", None);

    // Token-level errors carry the byte column of the offending token.
    let err = read_libsvm_str::<f64>("1 1:0.5 oops\n", None).unwrap_err();
    assert!(err.to_string().contains("column 9"), "{err}");
}
