//! Storage-fault chaos harness: a fault injected at *any* operation of
//! the durable-write workload must yield a structured error or a clean
//! success — never a panic, and never a corrupt artifact that a
//! subsequent load accepts.
//!
//! The sweep first runs the workload fault-free to count how many
//! operations of each class it performs, then replays it once per
//! (class, operation index, applicable fault kind) with exactly that
//! fault scheduled. Every run checks the same invariants, so a failing
//! combination reproduces bit-for-bit from its printed label.

use std::path::{Path, PathBuf};
use std::sync::Arc;

use plssvm_data::checkpoint::{CheckpointJournal, Snapshot};
use plssvm_data::io::write_atomic_with;
use plssvm_data::scale::ScalingParams;
use plssvm_data::vfs::{FaultKind, OpClass};
use plssvm_data::{FaultPlan, FaultVfs, Vfs};

const OLD_MODEL: &[u8] = b"generation-1 model: rho 0.125\n";
const NEW_MODEL: &[u8] = b"generation-2 model: rho 0.250\n";

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("plssvm_io_faults_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// A deterministic snapshot whose content encodes its index, so a loaded
/// snapshot can be matched against exactly what was appended.
fn snap(i: u64) -> Snapshot<f64> {
    Snapshot {
        rung: 0,
        context_hash: 0x5EED,
        iterations: 10 + i,
        x: vec![i as f64, 1.5, -2.0],
        r: vec![0.5, i as f64 * 0.25, 3.0],
        d: vec![-1.0, 2.0, i as f64],
        rho: 0.75,
        delta: 1e-6,
        delta0: 100.0,
    }
}

/// What the workload observed; the invariant checks run on this.
struct RunReport {
    atomic_write: Result<(), String>,
    journal_opened: bool,
    appended: Vec<u64>,
    append_errors: Vec<String>,
    load: Result<Option<Snapshot<f64>>, String>,
}

/// The durable-write workload under test: one atomic artifact replace
/// over pre-existing contents, then a short checkpoint journal life
/// cycle (open, four appends under a retention window of two, load).
fn workload(dir: &Path, vfs: Arc<FaultVfs>) -> RunReport {
    let model = dir.join("model.txt");
    let atomic_write =
        write_atomic_with(vfs.as_ref(), &model, NEW_MODEL).map_err(|e| e.to_string());

    let mut appended = Vec::new();
    let mut append_errors = Vec::new();
    let mut journal_opened = false;
    let load = match CheckpointJournal::open_with_vfs(
        dir.join("journal"),
        2,
        Arc::clone(&vfs) as Arc<dyn Vfs>,
    ) {
        Ok(journal) => {
            journal_opened = true;
            for i in 0..4 {
                match journal.append(&snap(i)) {
                    Ok(generation) => appended.push(generation),
                    Err(e) => append_errors.push(e.to_string()),
                }
            }
            journal
                .load_latest::<f64>()
                .map(|(loaded, _skipped)| loaded.map(|l| l.snapshot))
                .map_err(|e| e.to_string())
        }
        Err(e) => Err(e.to_string()),
    };
    RunReport {
        atomic_write,
        journal_opened,
        appended,
        append_errors,
        load,
    }
}

/// The invariants every fault combination must uphold.
fn check_invariants(label: &str, dir: &Path, report: &RunReport, vfs: &FaultVfs) {
    // 1. The atomic artifact is never silently torn — with one modeled
    //    exception: a `tornwrite` fault *is* a lying page cache, the one
    //    failure mode fsync-based code cannot observe at write time. It
    //    may leave a reported success over a prefix of the new bytes;
    //    that is exactly why every structured artifact (checkpoint,
    //    model) validates at load time. Anything else: success means
    //    the new bytes, a structured error means old or new, whole.
    let torn_model_write = vfs
        .injected()
        .iter()
        .any(|f| f.kind == FaultKind::TornWrite && f.path.to_string_lossy().contains("model"));
    let on_disk = std::fs::read(dir.join("model.txt")).unwrap();
    match &report.atomic_write {
        Ok(()) if torn_model_write => assert!(
            NEW_MODEL.starts_with(&on_disk[..]),
            "{label}: a torn write must leave a prefix of the new bytes: {on_disk:?}"
        ),
        Ok(()) => assert_eq!(
            on_disk, NEW_MODEL,
            "{label}: write_atomic reported success but the new bytes are not on disk"
        ),
        Err(e) => assert!(
            on_disk == OLD_MODEL || on_disk == NEW_MODEL,
            "{label}: torn artifact after structured error '{e}': {on_disk:?}"
        ),
    }
    // 2. Append failures are structured, not silent: every append either
    //    returned a generation or an error string (when the journal
    //    failed to open at all, that open error stands in for them).
    if report.journal_opened {
        assert_eq!(
            report.appended.len() + report.append_errors.len(),
            4,
            "{label}: appends must account for every snapshot"
        );
    } else {
        assert!(
            report.load.is_err(),
            "{label}: a failed journal open must surface as a structured error"
        );
    }
    // 3. The journal never serves corrupt state: a loaded snapshot is
    //    bit-identical to one that was actually appended.
    if let Ok(Some(loaded)) = &report.load {
        let matches_appended = (0..4).map(snap).any(|s| &s == loaded);
        assert!(
            matches_appended,
            "{label}: load_latest returned a snapshot that was never appended: {loaded:?}"
        );
    }
}

/// Runs the workload with exactly one scheduled fault and checks the
/// invariants; a panic anywhere inside fails the sweep.
fn run_one(tag: &str, plan: FaultPlan, expect_injection: bool) {
    let label = format!("[{tag}: {}]", plan.to_spec());
    let dir = tmpdir(tag);
    std::fs::write(dir.join("model.txt"), OLD_MODEL).unwrap();
    let vfs = Arc::new(FaultVfs::new(plan));
    let report = workload(&dir, Arc::clone(&vfs));
    if expect_injection {
        assert!(
            vfs.total_injected() > 0,
            "{label}: the scheduled fault never fired"
        );
    }
    check_invariants(&label, &dir, &report, &vfs);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn fault_free_run_is_clean_and_counts_operations() {
    let dir = tmpdir("clean");
    std::fs::write(dir.join("model.txt"), OLD_MODEL).unwrap();
    let vfs = Arc::new(FaultVfs::new(FaultPlan::new()));
    let report = workload(&dir, Arc::clone(&vfs));
    assert!(report.atomic_write.is_ok());
    assert_eq!(report.appended, vec![1, 2, 3, 4]);
    assert!(report.append_errors.is_empty());
    assert_eq!(report.load.as_ref().unwrap().as_ref(), Some(&snap(3)));
    assert_eq!(vfs.total_injected(), 0);
    // the sweep below relies on the workload actually exercising every
    // operation class it iterates over
    for class in [
        OpClass::Write,
        OpClass::Sync,
        OpClass::Rename,
        OpClass::Read,
        OpClass::Remove,
        OpClass::List,
        OpClass::Mkdir,
    ] {
        assert!(
            vfs.ops(class) > 0,
            "workload never performs a {class:?} operation"
        );
    }
    check_invariants("[clean]", &dir, &report, &vfs);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn chaos_sweep_every_fault_kind_at_every_operation() {
    // count the fault-free operations per class once
    let dir = tmpdir("count");
    std::fs::write(dir.join("model.txt"), OLD_MODEL).unwrap();
    let counter = Arc::new(FaultVfs::new(FaultPlan::new()));
    workload(&dir, Arc::clone(&counter));
    let _ = std::fs::remove_dir_all(&dir);

    let mut runs = 0usize;
    for class in [
        OpClass::Write,
        OpClass::Sync,
        OpClass::Rename,
        OpClass::Read,
        OpClass::Remove,
        OpClass::List,
        OpClass::Mkdir,
    ] {
        let ops = counter.ops(class);
        for at_op in 0..ops {
            for kind in FaultKind::ALL {
                if !kind.applies_to(class) {
                    continue;
                }
                for persistent in [false, true] {
                    let plan = FaultPlan::new().fault(kind, class, at_op, None, persistent);
                    run_one("sweep", plan, true);
                    runs += 1;
                }
            }
        }
    }
    assert!(runs > 100, "sweep degenerated to {runs} runs");
}

#[test]
fn seeded_chaos_plans_hold_the_invariants() {
    for seed in 0..32 {
        // seeded plans may schedule beyond the workload's horizon, so an
        // injection is not guaranteed — the invariants still are
        run_one("seeded", FaultPlan::seeded(seed, 48), false);
    }
}

#[test]
fn enospc_during_retention_deletion_keeps_the_journal_serviceable() {
    let dir = tmpdir("retention");
    // every unlink of a generation file fails persistently
    let plan = FaultPlan::new().fault(FaultKind::Eio, OpClass::Remove, 0, Some("gen-"), true);
    let vfs = Arc::new(FaultVfs::new(plan));
    let journal =
        CheckpointJournal::open_with_vfs(dir.join("journal"), 2, Arc::clone(&vfs) as Arc<dyn Vfs>)
            .unwrap();
    for i in 0..6 {
        journal
            .append(&snap(i))
            .unwrap_or_else(|e| panic!("append {i} must survive a failing retention unlink: {e}"));
    }
    assert!(vfs.total_injected() > 0, "retention unlinks never faulted");
    // pruning failed, so old generations pile up beyond the window ...
    assert!(journal.generations().unwrap().len() > 2);
    // ... but the newest state is intact and loads
    let (loaded, skipped) = journal.load_latest::<f64>().unwrap();
    assert_eq!(loaded.unwrap().snapshot, snap(5));
    assert!(skipped.is_empty());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn enospc_in_the_temp_stage_leaves_the_old_artifact_loadable() {
    let dir = tmpdir("temp_stage");
    let path = dir.join("ranges.txt");
    // a fitted scaling artifact is the pre-existing good state
    let m =
        plssvm_data::dense::DenseMatrix::from_rows(vec![vec![0.0, 10.0], vec![4.0, 20.0]]).unwrap();
    let params = ScalingParams::<f64>::fit(&m, -1.0, 1.0).unwrap();
    params.save(&path).unwrap();
    let reference = std::fs::read(&path).unwrap();

    // every write (the temp-file stage of the atomic replace) hits ENOSPC
    let plan = FaultPlan::new().fault(FaultKind::Enospc, OpClass::Write, 0, None, true);
    let vfs = FaultVfs::new(plan);
    let shifted = ScalingParams::<f64>::fit(&m, 0.0, 2.0).unwrap();
    let err = shifted
        .save_with(&vfs, &path)
        .expect_err("a persistent ENOSPC must fail the save");
    assert!(err.to_string().contains("ENOSPC"), "{err}");

    // the destination was never touched: bytes identical, and it still
    // parses back into the original params
    assert_eq!(std::fs::read(&path).unwrap(), reference);
    let reloaded = ScalingParams::<f64>::load(&path).unwrap();
    let mut copy = m.clone();
    params.apply(&mut copy.clone()).unwrap();
    reloaded.apply(&mut copy).unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn torn_write_on_the_newest_generation_falls_back_to_the_previous() {
    let dir = tmpdir("torn_tail");
    // count journal writes for three appends (each atomic write is one
    // create_write on a gen- temp file)
    let counter = Arc::new(FaultVfs::new(FaultPlan::new()));
    let journal = CheckpointJournal::open_with_vfs(
        dir.join("journal"),
        4,
        Arc::clone(&counter) as Arc<dyn Vfs>,
    )
    .unwrap();
    for i in 0..3 {
        journal.append(&snap(i)).unwrap();
    }
    let writes = counter.ops(OpClass::Write);
    let _ = std::fs::remove_dir_all(&dir);

    // replay with the *last* journal write torn: the page cache lies, so
    // the append itself reports success and only the load notices
    let plan = FaultPlan::new().fault(
        FaultKind::TornWrite,
        OpClass::Write,
        writes - 1,
        Some("gen-"),
        false,
    );
    let vfs = Arc::new(FaultVfs::new(plan));
    let journal =
        CheckpointJournal::open_with_vfs(dir.join("journal"), 4, Arc::clone(&vfs) as Arc<dyn Vfs>)
            .unwrap();
    for i in 0..3 {
        journal.append(&snap(i)).unwrap();
    }
    assert_eq!(vfs.total_injected(), 1, "the torn write must have fired");
    let (loaded, skipped) = journal.load_latest::<f64>().unwrap();
    assert_eq!(
        loaded.unwrap().snapshot,
        snap(1),
        "the damaged tail must fall back to the previous generation"
    );
    assert_eq!(skipped.len(), 1);
    assert!(
        skipped[0].reason.is_integrity_failure(),
        "the skip must be classified as damage: {:?}",
        skipped[0].reason
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn read_faults_on_load_skip_to_an_intact_generation() {
    let dir = tmpdir("read_faults");
    let clean = Arc::new(FaultVfs::new(FaultPlan::new()));
    let journal = CheckpointJournal::open_with_vfs(
        dir.join("journal"),
        4,
        Arc::clone(&clean) as Arc<dyn Vfs>,
    )
    .unwrap();
    for i in 0..3 {
        journal.append(&snap(i)).unwrap();
    }

    // bit rot on the newest generation's read: CRC rejects it, the
    // previous generation serves
    let plan = FaultPlan::new().fault(FaultKind::BitRot, OpClass::Read, 0, Some("gen-"), false);
    let journal = CheckpointJournal::open_with_vfs(
        dir.join("journal"),
        4,
        Arc::new(FaultVfs::new(plan)) as Arc<dyn Vfs>,
    )
    .unwrap();
    let (loaded, skipped) = journal.load_latest::<f64>().unwrap();
    assert_eq!(loaded.unwrap().snapshot, snap(1));
    assert_eq!(skipped.len(), 1);

    // a short read truncates the newest generation: same fallback
    let plan = FaultPlan::new().fault(FaultKind::ShortRead, OpClass::Read, 0, Some("gen-"), false);
    let journal = CheckpointJournal::open_with_vfs(
        dir.join("journal"),
        4,
        Arc::new(FaultVfs::new(plan)) as Arc<dyn Vfs>,
    )
    .unwrap();
    let (loaded, skipped) = journal.load_latest::<f64>().unwrap();
    assert_eq!(loaded.unwrap().snapshot, snap(1));
    assert_eq!(skipped.len(), 1);

    // persistent read faults on every generation: a structured "nothing
    // loadable", never a panic and never garbage
    let plan = FaultPlan::new().fault(FaultKind::ShortRead, OpClass::Read, 0, Some("gen-"), true);
    let journal = CheckpointJournal::open_with_vfs(
        dir.join("journal"),
        4,
        Arc::new(FaultVfs::new(plan)) as Arc<dyn Vfs>,
    )
    .unwrap();
    let (loaded, skipped) = journal.load_latest::<f64>().unwrap();
    assert!(loaded.is_none());
    assert_eq!(skipped.len(), 3, "every generation must be reported");
    let _ = std::fs::remove_dir_all(&dir);
}
