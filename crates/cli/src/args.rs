//! Argument parsing for the CLI binaries (hand rolled, LIBSVM style).

use std::fmt;

use plssvm_core::backend::simgpu::TilingConfig;
use plssvm_core::backend::BackendSelection;
use plssvm_core::backend::CpuTilingConfig;
use plssvm_core::lowrank::{LandmarkStrategy, SolverSelection, DEFAULT_SEED};
use plssvm_data::model::KernelSpec;
use plssvm_data::vfs::FaultPlan as IoFaultPlan;
use plssvm_simgpu::hw;
use plssvm_simgpu::Backend as DeviceApi;
use plssvm_simgpu::FaultPlan;

/// Errors from command line parsing.
#[derive(Debug, PartialEq, Eq)]
pub struct CliError(pub String);

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for CliError {}

fn err(msg: impl Into<String>) -> CliError {
    CliError(msg.into())
}

/// Which solver `svm-train` runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Algorithm {
    /// The least squares SVM (PLSSVM, the default).
    LsSvm,
    /// LIBSVM-style SMO over sparse rows.
    Smo,
    /// LIBSVM-style SMO over dense rows.
    SmoDense,
    /// ThunderSVM-style batched SMO.
    Thunder,
}

/// Multi-class strategy selection for `svm-train`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum McStrategy {
    /// One-vs-one (LIBSVM's scheme, the default).
    Ovo,
    /// One-vs-rest.
    Ovr,
}

/// What `svm-train` does when the solver finishes non-converged even after
/// the escalation ladder (`--on-nonconverged`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NonConvergedAction {
    /// Refuse the model: exit with code 3 and no model file.
    Error,
    /// Write the model but print a warning with the classified outcome
    /// (the default).
    Warn,
    /// Write the model silently.
    Accept,
}

/// What `svm-train` does when the checkpoint journal degrades mid-run
/// (persistent storage faults exhausted the retry budget and
/// checkpointing was disabled) — `--on-io-degraded`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IoDegradedAction {
    /// Refuse the model: exit with code 4 and no model file.
    Error,
    /// Write the model but print a warning (the default — losing the
    /// journal costs resumability, not correctness).
    Warn,
}

/// Parsed `svm-train` invocation.
#[derive(Debug, Clone)]
pub struct TrainArgs {
    /// LIBSVM `-s`: 0 = C-SVC classification (default), 3 = epsilon-SVR
    /// regression (solved as LS-SVR).
    pub svm_type: u8,
    /// Cross-validation folds (LIBSVM `-v`); reports CV accuracy instead
    /// of writing a model.
    pub cv_folds: Option<usize>,
    /// Multi-class decomposition (`--multiclass ovo|ovr`), used when the
    /// training file has more than two classes.
    pub multiclass: McStrategy,
    /// Kernel: 0 = linear, 1 = polynomial, 2 = rbf, 3 = sigmoid (LIBSVM
    /// `-t`). Gamma defaults to `1/num_features` at run time when not
    /// given.
    pub kernel_type: u8,
    /// Polynomial degree (`-d`).
    pub degree: i32,
    /// Kernel γ (`-g`); `None` = `1/num_features`.
    pub gamma: Option<f64>,
    /// Polynomial offset (`-r`).
    pub coef0: f64,
    /// Cost `C` (`-c`).
    pub cost: f64,
    /// Termination criterion ε (`-e`).
    pub epsilon: f64,
    /// Per-label weights on `C` (LIBSVM `-wi`): `(label, weight)` pairs.
    pub label_weights: Vec<(i32, f64)>,
    /// Shrinking heuristic for the SMO algorithms (LIBSVM `-h`, default
    /// on).
    pub shrinking: bool,
    /// Kernel cache budget in MB (LIBSVM `-m`, default 100).
    pub cache_mb: usize,
    /// Solver selection (`-a`).
    pub algorithm: Algorithm,
    /// Execution backend (`--backend`), LS-SVM only.
    pub backend: BackendSelection,
    /// Write unified telemetry as JSON lines to this file
    /// (`--metrics-out`), LS-SVM / LS-SVR only.
    pub metrics_out: Option<String>,
    /// Deterministic device-fault injection plan (`--fault-plan`),
    /// simulated device backends only. Spec grammar:
    /// `fail:DEV@LAUNCH`, `transient:DEV@LAUNCH[xCOUNT]`,
    /// `slow:DEV@LAUNCH[xFACTOR]`, separated by `;` or `,`, or
    /// `seed:N` for a randomized plan.
    pub fault_plan: Option<FaultPlan>,
    /// Snapshot CG state every this many iterations
    /// (`--checkpoint-every`), LS-SVM / LS-SVR only. Defaults to 50
    /// when `--checkpoint-dir` is given without an explicit interval.
    pub checkpoint_every: Option<usize>,
    /// Durable checkpoint journal directory (`--checkpoint-dir`),
    /// LS-SVM / LS-SVR only. Solver state is snapshotted to disk so an
    /// interrupted run can be continued with `--resume`.
    pub checkpoint_dir: Option<String>,
    /// Continue from the newest loadable generation in
    /// `--checkpoint-dir` (`--resume`).
    pub resume: bool,
    /// Handling of non-converged solves (`--on-nonconverged
    /// error|warn|accept`, default warn), LS-SVM / LS-SVR only.
    pub on_nonconverged: NonConvergedAction,
    /// Deterministic storage-fault injection plan (`--io-faults`):
    /// every durable write (model, checkpoint journal, metrics) runs
    /// through a [`FaultVfs`](plssvm_data::FaultVfs) replaying this
    /// plan. Spec grammar: `kind:class@n[~substr][!]` entries separated
    /// by `;` or `,`, or `seed:N[@H]` for a randomized plan.
    pub io_faults: Option<IoFaultPlan>,
    /// Handling of a degraded checkpoint journal
    /// (`--on-io-degraded error|warn`, default warn).
    pub on_io_degraded: IoDegradedAction,
    /// Reduced-system solver (`--solver exact|lowrank`), LS-SVM / LS-SVR
    /// only. The low-rank path needs `--rank` and optionally takes
    /// `--lowrank-seed` and `--landmarks uniform|leverage`; it is
    /// incompatible with `--resume`.
    pub solver: SolverSelection,
    /// Suppress informational output (`-q` / `--quiet`).
    pub quiet: bool,
    /// Print per-kernel telemetry counters with the summary (`--verbose`).
    pub verbose: bool,
    /// Input data file.
    pub input: String,
    /// Output model file (default: `<input>.model`).
    pub model: String,
}

/// Parses `svm-train` arguments.
pub fn parse_train(args: &[String]) -> Result<TrainArgs, CliError> {
    let mut out = TrainArgs {
        svm_type: 0,
        cv_folds: None,
        multiclass: McStrategy::Ovo,
        kernel_type: 0,
        degree: 3,
        gamma: None,
        coef0: 0.0,
        cost: 1.0,
        epsilon: 1e-3,
        label_weights: Vec::new(),
        shrinking: true,
        cache_mb: 100,
        algorithm: Algorithm::LsSvm,
        backend: BackendSelection::default(),
        metrics_out: None,
        fault_plan: None,
        checkpoint_every: None,
        checkpoint_dir: None,
        resume: false,
        on_nonconverged: NonConvergedAction::Warn,
        io_faults: None,
        on_io_degraded: IoDegradedAction::Warn,
        solver: SolverSelection::Exact,
        quiet: false,
        verbose: false,
        input: String::new(),
        model: String::new(),
    };
    let mut fault_spec: Option<String> = None;
    let mut solver_name = "exact".to_owned();
    let mut rank: Option<usize> = None;
    let mut lowrank_seed: u64 = DEFAULT_SEED;
    let mut landmarks = LandmarkStrategy::Uniform;
    let mut backend_name = "openmp".to_owned();
    let mut devices = 1usize;
    let mut row_split = false;
    let mut threads: Option<usize> = None;
    let mut cpu_tile: Option<CpuTilingConfig> = None;
    let mut hardware = "a100".to_owned();
    let mut positional = Vec::new();

    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut take = |name: &str| {
            it.next()
                .map(|s| s.to_owned())
                .ok_or_else(|| err(format!("missing value for {name}")))
        };
        match arg.as_str() {
            "-s" => out.svm_type = parse_num(&take("-s")?, "-s")?,
            "-v" => out.cv_folds = Some(parse_num(&take("-v")?, "-v")?),
            "--multiclass" => {
                out.multiclass = match take("--multiclass")?.as_str() {
                    "ovo" => McStrategy::Ovo,
                    "ovr" => McStrategy::Ovr,
                    other => return Err(err(format!("unknown multiclass strategy '{other}'"))),
                }
            }
            "-t" => out.kernel_type = parse_num(&take("-t")?, "-t")?,
            "-d" => out.degree = parse_num(&take("-d")?, "-d")?,
            "-g" => out.gamma = Some(parse_num(&take("-g")?, "-g")?),
            "-r" => out.coef0 = parse_num(&take("-r")?, "-r")?,
            "-c" => out.cost = parse_num(&take("-c")?, "-c")?,
            "-e" => out.epsilon = parse_num(&take("-e")?, "-e")?,
            "-h" => {
                let v: u8 = parse_num(&take("-h")?, "-h")?;
                out.shrinking = v != 0;
            }
            "-m" => out.cache_mb = parse_num(&take("-m")?, "-m")?,
            w if w.starts_with("-w") && w.len() > 2 && w[2..].parse::<i32>().is_ok() => {
                let label: i32 = w[2..].parse().unwrap();
                let weight: f64 = parse_num(&take(w)?, w)?;
                if weight <= 0.0 {
                    return Err(err(format!("weight for label {label} must be positive")));
                }
                out.label_weights.push((label, weight));
            }
            "-a" | "--algorithm" => {
                out.algorithm = match take("-a")?.as_str() {
                    "lssvm" => Algorithm::LsSvm,
                    "smo" => Algorithm::Smo,
                    "smo-dense" => Algorithm::SmoDense,
                    "thunder" => Algorithm::Thunder,
                    other => return Err(err(format!("unknown algorithm '{other}'"))),
                }
            }
            "-b" | "--backend" => backend_name = take("--backend")?,
            "-n" | "--devices" => devices = parse_num(&take("--devices")?, "--devices")?,
            "-T" | "--threads" => threads = Some(parse_num(&take("--threads")?, "--threads")?),
            "--cpu-tile" => cpu_tile = Some(parse_cpu_tile(&take("--cpu-tile")?)?),
            "--metrics-out" => out.metrics_out = Some(take("--metrics-out")?),
            "--fault-plan" => fault_spec = Some(take("--fault-plan")?),
            "--checkpoint-every" => {
                let k: usize = parse_num(&take("--checkpoint-every")?, "--checkpoint-every")?;
                if k == 0 {
                    return Err(err("--checkpoint-every must be at least 1"));
                }
                out.checkpoint_every = Some(k);
            }
            "--checkpoint-dir" => out.checkpoint_dir = Some(take("--checkpoint-dir")?),
            "--resume" => out.resume = true,
            "--solver" => solver_name = take("--solver")?,
            "--rank" => {
                let k: usize = parse_num(&take("--rank")?, "--rank")?;
                if k == 0 {
                    return Err(err("--rank must be at least 1"));
                }
                rank = Some(k);
            }
            "--lowrank-seed" => {
                lowrank_seed = parse_num(&take("--lowrank-seed")?, "--lowrank-seed")?
            }
            "--landmarks" => {
                landmarks = take("--landmarks")?.parse().map_err(err)?;
            }
            "--on-nonconverged" => {
                out.on_nonconverged = match take("--on-nonconverged")?.as_str() {
                    "error" => NonConvergedAction::Error,
                    "warn" => NonConvergedAction::Warn,
                    "accept" => NonConvergedAction::Accept,
                    other => {
                        return Err(err(format!(
                            "unknown --on-nonconverged action '{other}' \
                             (expected error, warn or accept)"
                        )))
                    }
                }
            }
            "--io-faults" => {
                let spec = take("--io-faults")?;
                out.io_faults = Some(
                    IoFaultPlan::parse(&spec)
                        .map_err(|e| err(format!("invalid --io-faults spec '{spec}': {e}")))?,
                );
            }
            "--on-io-degraded" => {
                out.on_io_degraded = match take("--on-io-degraded")?.as_str() {
                    "error" => IoDegradedAction::Error,
                    "warn" => IoDegradedAction::Warn,
                    other => {
                        return Err(err(format!(
                            "unknown --on-io-degraded action '{other}' (expected error or warn)"
                        )))
                    }
                }
            }
            "-q" | "--quiet" => out.quiet = true,
            "--verbose" => out.verbose = true,
            "--hardware" => hardware = take("--hardware")?,
            "--split" => {
                row_split = match take("--split")?.as_str() {
                    "rows" => true,
                    "features" => false,
                    other => return Err(err(format!("unknown split '{other}'"))),
                }
            }
            flag if flag.starts_with('-')
                && flag.len() > 1
                && !flag[1..2].chars().next().unwrap().is_ascii_digit() =>
            {
                return Err(err(format!("unknown option '{flag}'")))
            }
            _ => positional.push(arg.clone()),
        }
    }

    match positional.len() {
        0 => return Err(err("missing training_set_file")),
        1 => {
            out.input = positional[0].clone();
            out.model = format!("{}.model", positional[0]);
        }
        2 => {
            out.input = positional[0].clone();
            out.model = positional[1].clone();
        }
        _ => return Err(err("too many positional arguments")),
    }
    if out.kernel_type > 3 {
        return Err(err(
            "kernel type must be 0 (linear), 1 (polynomial), 2 (rbf) or 3 (sigmoid)",
        ));
    }
    if out.svm_type != 0 && out.svm_type != 3 {
        return Err(err("svm type must be 0 (c_svc) or 3 (epsilon_svr)"));
    }
    if let Some(v) = out.cv_folds {
        if v < 2 {
            return Err(err("cross validation needs at least 2 folds"));
        }
    }
    if out.quiet && out.verbose {
        return Err(err("-q and --verbose are mutually exclusive"));
    }
    if out.resume && out.checkpoint_dir.is_none() {
        return Err(err("--resume requires --checkpoint-dir"));
    }
    if out.checkpoint_dir.is_some() && out.checkpoint_every.is_none() {
        out.checkpoint_every = Some(50);
    }
    out.solver = match solver_name.as_str() {
        "exact" => {
            if rank.is_some() {
                return Err(err("--rank requires --solver lowrank"));
            }
            SolverSelection::Exact
        }
        "lowrank" => {
            let rank = rank.ok_or_else(|| err("--solver lowrank requires --rank"))?;
            if out.resume {
                // the checkpoint journal streams exact-CG state only
                return Err(err("--resume is not supported with --solver lowrank \
                     (the checkpoint journal streams exact-CG state only)"));
            }
            if out.algorithm != Algorithm::LsSvm {
                return Err(err("--solver lowrank requires the lssvm algorithm"));
            }
            SolverSelection::LowRank {
                rank,
                seed: lowrank_seed,
                strategy: landmarks,
            }
        }
        other => return Err(err(format!("unknown solver '{other}'"))),
    };

    if cpu_tile.is_some() && backend_name != "openmp" {
        return Err(err("--cpu-tile requires --backend openmp"));
    }
    out.backend = match backend_name.as_str() {
        "serial" => BackendSelection::Serial,
        "openmp" => BackendSelection::OpenMp {
            threads,
            tiling: cpu_tile.unwrap_or_default(),
        },
        "sparse" => BackendSelection::SparseCpu { threads },
        api @ ("cuda" | "opencl" | "sycl" | "dpcpp") => {
            let api = match api {
                "cuda" => DeviceApi::Cuda,
                "opencl" => DeviceApi::OpenCl,
                "sycl" => DeviceApi::SyclHip,
                _ => DeviceApi::SyclDpcpp,
            };
            let spec = lookup_hardware(&hardware)?;
            if row_split {
                BackendSelection::SimGpuRows {
                    hardware: spec,
                    api,
                    devices,
                    tiling: TilingConfig::default(),
                }
            } else {
                BackendSelection::SimGpu {
                    hardware: spec,
                    api,
                    devices,
                    tiling: TilingConfig::default(),
                }
            }
        }
        other => return Err(err(format!("unknown backend '{other}'"))),
    };
    if let Some(spec) = fault_spec {
        let simulated = matches!(
            out.backend,
            BackendSelection::SimGpu { .. } | BackendSelection::SimGpuRows { .. }
        );
        if !simulated {
            return Err(err(
                "--fault-plan requires a simulated device backend (cuda, opencl, sycl or dpcpp)",
            ));
        }
        let plan = match spec.strip_prefix("seed:") {
            Some(seed) => {
                let seed: u64 = parse_num(seed.trim(), "--fault-plan seed")?;
                FaultPlan::seeded(seed, devices, 32)
            }
            None => FaultPlan::parse(&spec).map_err(err)?,
        };
        if plan.max_device().is_some_and(|d| d >= devices) {
            return Err(err(format!(
                "--fault-plan addresses device {} but only {devices} device(s) are configured",
                plan.max_device().unwrap()
            )));
        }
        out.fault_plan = Some(plan);
    }
    Ok(out)
}

impl TrainArgs {
    /// The `-wi` weight of a label (1.0 when not given).
    pub fn weight_of(&self, label: i32) -> f64 {
        self.label_weights
            .iter()
            .rev()
            .find(|(l, _)| *l == label)
            .map(|(_, w)| *w)
            .unwrap_or(1.0)
    }
}

/// Maps a hardware name to the simulated catalog.
pub fn lookup_hardware(name: &str) -> Result<hw::GpuSpec, CliError> {
    Ok(match name.to_ascii_lowercase().as_str() {
        "a100" => hw::A100,
        "v100" => hw::V100,
        "p100" => hw::P100,
        "gtx1080ti" | "1080ti" => hw::GTX_1080_TI,
        "rtx3080" | "3080" => hw::RTX_3080,
        "radeonvii" | "radeon7" => hw::RADEON_VII,
        "p630" | "intel" => hw::INTEL_P630,
        other => return Err(err(format!("unknown hardware '{other}'"))),
    })
}

/// Builds the kernel spec, resolving the default γ against the data.
pub fn kernel_from_args(args: &TrainArgs, num_features: usize) -> KernelSpec<f64> {
    let gamma = args
        .gamma
        .unwrap_or_else(|| 1.0 / num_features.max(1) as f64);
    match args.kernel_type {
        0 => KernelSpec::Linear,
        1 => KernelSpec::Polynomial {
            degree: args.degree,
            gamma,
            coef0: args.coef0,
        },
        2 => KernelSpec::Rbf { gamma },
        _ => KernelSpec::Sigmoid {
            gamma,
            coef0: args.coef0,
        },
    }
}

/// Parsed `svm-predict` invocation:
/// `svm-predict [options] test_file model_file output_file`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PredictArgs {
    /// Test data file (labels used for the accuracy report).
    pub test: String,
    /// Model file from `svm-train`.
    pub model: String,
    /// Output file, one predicted label per line.
    pub output: String,
    /// Write prediction telemetry as JSON lines to this file
    /// (`--metrics-out`).
    pub metrics_out: Option<String>,
    /// Suppress informational output (`-q` / `--quiet`).
    pub quiet: bool,
    /// Print timing details with the summary (`--verbose`).
    pub verbose: bool,
}

/// Parses `svm-predict` arguments.
pub fn parse_predict(args: &[String]) -> Result<PredictArgs, CliError> {
    let mut metrics_out = None;
    let mut quiet = false;
    let mut verbose = false;
    let mut positional = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--metrics-out" => {
                metrics_out = Some(
                    it.next()
                        .map(|s| s.to_owned())
                        .ok_or_else(|| err("missing value for --metrics-out"))?,
                )
            }
            "-q" | "--quiet" => quiet = true,
            "--verbose" => verbose = true,
            flag if flag.starts_with('-') && flag.len() > 1 => {
                return Err(err(format!("unknown option '{flag}'")))
            }
            _ => positional.push(arg.clone()),
        }
    }
    if quiet && verbose {
        return Err(err("-q and --verbose are mutually exclusive"));
    }
    if positional.len() != 3 {
        return Err(err(format!(
            "expected 3 positional arguments (test_file model_file output_file), got {}",
            positional.len()
        )));
    }
    Ok(PredictArgs {
        test: positional[0].clone(),
        model: positional[1].clone(),
        output: positional[2].clone(),
        metrics_out,
        quiet,
        verbose,
    })
}

/// Parsed `svm-scale` invocation.
#[derive(Debug, Clone)]
pub struct ScaleArgs {
    /// Target lower bound (`-l`, default −1).
    pub lower: f64,
    /// Target upper bound (`-u`, default +1).
    pub upper: f64,
    /// Write fitted ranges to this file (`-s`).
    pub save: Option<String>,
    /// Restore ranges from this file instead of fitting (`-r`).
    pub restore: Option<String>,
    /// Input data file; scaled data goes to stdout (LIBSVM behaviour).
    pub input: String,
}

/// Parses `svm-scale` arguments.
pub fn parse_scale(args: &[String]) -> Result<ScaleArgs, CliError> {
    let mut out = ScaleArgs {
        lower: -1.0,
        upper: 1.0,
        save: None,
        restore: None,
        input: String::new(),
    };
    let mut positional = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut take = |name: &str| {
            it.next()
                .map(|s| s.to_owned())
                .ok_or_else(|| err(format!("missing value for {name}")))
        };
        match arg.as_str() {
            "-l" => out.lower = parse_num(&take("-l")?, "-l")?,
            "-u" => out.upper = parse_num(&take("-u")?, "-u")?,
            "-s" => out.save = Some(take("-s")?),
            "-r" => out.restore = Some(take("-r")?),
            flag if flag.starts_with('-')
                && flag.len() > 1
                && !flag[1..2].chars().next().unwrap().is_ascii_digit() =>
            {
                return Err(err(format!("unknown option '{flag}'")))
            }
            _ => positional.push(arg.clone()),
        }
    }
    if positional.len() != 1 {
        return Err(err("usage: svm-scale [options] data_file"));
    }
    if out.save.is_some() && out.restore.is_some() {
        return Err(err("-s and -r are mutually exclusive"));
    }
    out.input = positional[0].clone();
    Ok(out)
}

/// Parsed `svm-serve` invocation: `svm-serve [options] model_file`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeArgs {
    /// Model file to serve (anything `svm-train` writes: binary,
    /// multiclass container, or epsilon-SVR).
    pub model: String,
    /// TCP listen address (`--listen host:port`); `None` = stdin mode.
    pub listen: Option<String>,
    /// Flush a micro-batch at this many queued requests (`--max-batch`).
    pub max_batch: usize,
    /// Flush a micro-batch once its oldest request waited this long in
    /// microseconds (`--max-wait-us`).
    pub max_wait_us: u64,
    /// Write serve telemetry as JSON lines to this file
    /// (`--metrics-out`): request/batch/queue/reload statistics.
    pub metrics_out: Option<String>,
    /// Poll the model file for hot reload every this many milliseconds
    /// (`--reload-poll-ms`); 0 disables watching.
    pub reload_poll_ms: u64,
    /// Maximum concurrent TCP connections (`--max-connections`); excess
    /// connections get one structured refusal line. 0 = unlimited.
    pub max_connections: usize,
    /// Shed requests with `overloaded` once this many are queued
    /// (`--queue-watermark`); 0 disables shedding.
    pub queue_watermark: usize,
    /// Answer `deadline_exceeded` to requests queued longer than this
    /// many microseconds (`--deadline-us`); 0 disables deadlines.
    pub deadline_us: u64,
    /// Per-line read budget in milliseconds (`--client-timeout-ms`): a
    /// client stalling mid-line longer than this is answered
    /// `client_timeout` and disconnected. 0 disables.
    pub client_timeout_ms: u64,
    /// Suppress informational output on stderr (`-q` / `--quiet`).
    pub quiet: bool,
}

/// Parses `svm-serve` arguments.
pub fn parse_serve(args: &[String]) -> Result<ServeArgs, CliError> {
    let mut out = ServeArgs {
        model: String::new(),
        listen: None,
        max_batch: 64,
        max_wait_us: 2_000,
        metrics_out: None,
        reload_poll_ms: 200,
        max_connections: 256,
        queue_watermark: 1_024,
        deadline_us: 0,
        client_timeout_ms: 10_000,
        quiet: false,
    };
    let mut stdin_explicit = false;
    let mut positional = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut take = |name: &str| {
            it.next()
                .map(|s| s.to_owned())
                .ok_or_else(|| err(format!("missing value for {name}")))
        };
        match arg.as_str() {
            "--listen" => out.listen = Some(take("--listen")?),
            "--stdin" => stdin_explicit = true,
            "--max-batch" => out.max_batch = parse_num(&take("--max-batch")?, "--max-batch")?,
            "--max-wait-us" => {
                out.max_wait_us = parse_num(&take("--max-wait-us")?, "--max-wait-us")?
            }
            "--metrics-out" => out.metrics_out = Some(take("--metrics-out")?),
            "--reload-poll-ms" => {
                out.reload_poll_ms = parse_num(&take("--reload-poll-ms")?, "--reload-poll-ms")?
            }
            "--max-connections" => {
                out.max_connections = parse_num(&take("--max-connections")?, "--max-connections")?
            }
            "--queue-watermark" => {
                out.queue_watermark = parse_num(&take("--queue-watermark")?, "--queue-watermark")?
            }
            "--deadline-us" => {
                out.deadline_us = parse_num(&take("--deadline-us")?, "--deadline-us")?
            }
            "--client-timeout-ms" => {
                out.client_timeout_ms =
                    parse_num(&take("--client-timeout-ms")?, "--client-timeout-ms")?
            }
            "-q" | "--quiet" => out.quiet = true,
            flag if flag.starts_with('-') && flag.len() > 1 => {
                return Err(err(format!("unknown option '{flag}'")))
            }
            _ => positional.push(arg.clone()),
        }
    }
    if stdin_explicit && out.listen.is_some() {
        return Err(err("--stdin and --listen are mutually exclusive"));
    }
    if out.max_batch == 0 {
        return Err(err("--max-batch must be at least 1"));
    }
    if positional.len() != 1 {
        return Err(err(format!(
            "expected 1 positional argument (model_file), got {}",
            positional.len()
        )));
    }
    out.model = positional[0].clone();
    Ok(out)
}

/// Parsed `generate-data` invocation.
#[derive(Debug, Clone)]
pub struct GenerateArgs {
    /// Number of data points.
    pub points: usize,
    /// Number of features ("planes" problem only; SAT-6 is 28×28×4).
    pub features: usize,
    /// RNG seed.
    pub seed: u64,
    /// Cluster separation ("planes").
    pub cluster_sep: f64,
    /// Label flip fraction ("planes").
    pub flip: f64,
    /// Generate the SAT-6-like image set instead of "planes".
    pub sat6: bool,
    /// Write ARFF instead of LIBSVM format.
    pub arff: bool,
    /// Output file.
    pub output: String,
}

/// Parses `generate-data` arguments.
pub fn parse_generate(args: &[String]) -> Result<GenerateArgs, CliError> {
    let mut out = GenerateArgs {
        points: 1024,
        features: 16,
        seed: 42,
        cluster_sep: 2.0,
        flip: 0.01,
        sat6: false,
        arff: false,
        output: String::new(),
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut take = |name: &str| {
            it.next()
                .map(|s| s.to_owned())
                .ok_or_else(|| err(format!("missing value for {name}")))
        };
        match arg.as_str() {
            "--points" | "-p" => out.points = parse_num(&take("--points")?, "--points")?,
            "--features" | "-f" => out.features = parse_num(&take("--features")?, "--features")?,
            "--seed" | "-s" => out.seed = parse_num(&take("--seed")?, "--seed")?,
            "--sep" => out.cluster_sep = parse_num(&take("--sep")?, "--sep")?,
            "--flip" => out.flip = parse_num(&take("--flip")?, "--flip")?,
            "--sat6" => out.sat6 = true,
            "--format" => {
                out.arff = match take("--format")?.as_str() {
                    "arff" => true,
                    "libsvm" => false,
                    other => return Err(err(format!("unknown format '{other}'"))),
                }
            }
            "-o" | "--output" => out.output = take("--output")?,
            other => return Err(err(format!("unknown option '{other}'"))),
        }
    }
    if out.output.is_empty() {
        return Err(err("missing -o output file"));
    }
    Ok(out)
}

fn parse_num<T: std::str::FromStr>(s: &str, flag: &str) -> Result<T, CliError> {
    s.parse()
        .map_err(|_| err(format!("invalid value '{s}' for {flag}")))
}

/// Parses the `--cpu-tile` spec: `R` (square tile), `RxC`, with an optional
/// `,nosym` suffix that disables the symmetric schedule.
fn parse_cpu_tile(spec: &str) -> Result<CpuTilingConfig, CliError> {
    let (dims, symmetry) = match spec.strip_suffix(",nosym") {
        Some(rest) => (rest, false),
        None => (spec, true),
    };
    let (row, col) = match dims.split_once('x') {
        Some((r, c)) => (
            parse_num::<usize>(r, "--cpu-tile")?,
            parse_num::<usize>(c, "--cpu-tile")?,
        ),
        None => {
            let r = parse_num::<usize>(dims, "--cpu-tile")?;
            (r, r)
        }
    };
    let tiling = CpuTilingConfig::new(row, col).with_symmetry(symmetry);
    tiling
        .validate()
        .map_err(|e| err(format!("invalid --cpu-tile '{spec}': {e}")))?;
    Ok(tiling)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sv(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn train_defaults() {
        let a = parse_train(&sv(&["data.txt"])).unwrap();
        assert_eq!(a.kernel_type, 0);
        assert_eq!(a.cost, 1.0);
        assert_eq!(a.epsilon, 1e-3);
        assert_eq!(a.algorithm, Algorithm::LsSvm);
        assert_eq!(a.input, "data.txt");
        assert_eq!(a.model, "data.txt.model");
        assert!(matches!(
            a.backend,
            BackendSelection::OpenMp { threads: None, .. }
        ));
    }

    #[test]
    fn train_libsvm_flags() {
        let a = parse_train(&sv(&[
            "-t",
            "2",
            "-g",
            "0.5",
            "-c",
            "10",
            "-e",
            "1e-6",
            "train.dat",
            "out.model",
        ]))
        .unwrap();
        assert_eq!(a.kernel_type, 2);
        assert_eq!(a.gamma, Some(0.5));
        assert_eq!(a.cost, 10.0);
        assert_eq!(a.epsilon, 1e-6);
        assert_eq!(a.model, "out.model");
        assert!(matches!(
            kernel_from_args(&a, 4),
            KernelSpec::Rbf { gamma } if gamma == 0.5
        ));
    }

    #[test]
    fn train_default_gamma_is_one_over_features() {
        let a = parse_train(&sv(&["-t", "2", "x.dat"])).unwrap();
        assert!(matches!(
            kernel_from_args(&a, 8),
            KernelSpec::Rbf { gamma } if gamma == 0.125
        ));
    }

    #[test]
    fn train_backend_selection() {
        let a = parse_train(&sv(&["--backend", "cuda", "-n", "4", "x.dat"])).unwrap();
        match a.backend {
            BackendSelection::SimGpu { devices, api, .. } => {
                assert_eq!(devices, 4);
                assert_eq!(api, DeviceApi::Cuda);
            }
            other => panic!("{other:?}"),
        }
        let a = parse_train(&sv(&["--backend", "openmp", "-T", "8", "x.dat"])).unwrap();
        assert!(matches!(
            a.backend,
            BackendSelection::OpenMp {
                threads: Some(8),
                ..
            }
        ));
        let a = parse_train(&sv(&["--backend", "serial", "x.dat"])).unwrap();
        assert!(matches!(a.backend, BackendSelection::Serial));
    }

    #[test]
    fn train_cpu_tile() {
        let a = parse_train(&sv(&["--cpu-tile", "32", "x.dat"])).unwrap();
        match a.backend {
            BackendSelection::OpenMp { tiling, .. } => {
                assert_eq!(tiling, CpuTilingConfig::new(32, 32));
            }
            other => panic!("{other:?}"),
        }

        let a = parse_train(&sv(&["--cpu-tile", "64x32,nosym", "x.dat"])).unwrap();
        match a.backend {
            BackendSelection::OpenMp { tiling, .. } => {
                assert_eq!(tiling, CpuTilingConfig::new(64, 32).with_symmetry(false));
            }
            other => panic!("{other:?}"),
        }

        // Default when the flag is absent.
        let a = parse_train(&sv(&["x.dat"])).unwrap();
        match a.backend {
            BackendSelection::OpenMp { tiling, .. } => {
                assert_eq!(tiling, CpuTilingConfig::default());
            }
            other => panic!("{other:?}"),
        }

        assert!(parse_train(&sv(&["--cpu-tile", "0", "x.dat"])).is_err());
        assert!(parse_train(&sv(&["--cpu-tile", "64x", "x.dat"])).is_err());
        assert!(parse_train(&sv(&["--cpu-tile", "banana", "x.dat"])).is_err());
        assert!(
            parse_train(&sv(&["--backend", "serial", "--cpu-tile", "32", "x.dat"])).is_err(),
            "--cpu-tile must be rejected for non-openmp backends"
        );
    }

    #[test]
    fn train_hardware_lookup() {
        let a = parse_train(&sv(&[
            "--backend",
            "opencl",
            "--hardware",
            "radeonvii",
            "x",
        ]))
        .unwrap();
        match a.backend {
            BackendSelection::SimGpu { hardware, .. } => {
                assert_eq!(hardware.name, "AMD Radeon VII")
            }
            other => panic!("{other:?}"),
        }
        assert!(parse_train(&sv(&["--hardware", "tpu", "--backend", "cuda", "x"])).is_err());
    }

    #[test]
    fn train_algorithms() {
        for (name, expected) in [
            ("lssvm", Algorithm::LsSvm),
            ("smo", Algorithm::Smo),
            ("smo-dense", Algorithm::SmoDense),
            ("thunder", Algorithm::Thunder),
        ] {
            let a = parse_train(&sv(&["-a", name, "x.dat"])).unwrap();
            assert_eq!(a.algorithm, expected);
        }
        assert!(parse_train(&sv(&["-a", "qp", "x.dat"])).is_err());
    }

    #[test]
    fn train_new_flags() {
        let a = parse_train(&sv(&["-s", "3", "x.dat"])).unwrap();
        assert_eq!(a.svm_type, 3);
        let a = parse_train(&sv(&["-v", "5", "x.dat"])).unwrap();
        assert_eq!(a.cv_folds, Some(5));
        let a = parse_train(&sv(&["--multiclass", "ovr", "x.dat"])).unwrap();
        assert_eq!(a.multiclass, McStrategy::Ovr);
        assert!(parse_train(&sv(&["-s", "1", "x.dat"])).is_err());
        assert!(parse_train(&sv(&["-v", "1", "x.dat"])).is_err());
        assert!(parse_train(&sv(&["--multiclass", "tree", "x.dat"])).is_err());
        // sigmoid kernel id parses
        let a = parse_train(&sv(&["-t", "3", "-r", "0.5", "x.dat"])).unwrap();
        assert!(matches!(
            kernel_from_args(&a, 4),
            KernelSpec::Sigmoid { gamma, coef0 } if gamma == 0.25 && coef0 == 0.5
        ));
        assert!(parse_train(&sv(&["-t", "4", "x.dat"])).is_err());
    }

    #[test]
    fn train_split_mode_flag() {
        let a = parse_train(&sv(&[
            "--backend",
            "cuda",
            "-n",
            "2",
            "--split",
            "rows",
            "x.dat",
        ]))
        .unwrap();
        assert!(matches!(
            a.backend,
            BackendSelection::SimGpuRows { devices: 2, .. }
        ));
        assert!(parse_train(&sv(&["--split", "diagonal", "x.dat"])).is_err());
    }

    #[test]
    fn train_weight_shrinking_cache_flags() {
        let a = parse_train(&sv(&["-w1", "5", "-w-1", "2", "x.dat"])).unwrap();
        assert_eq!(a.weight_of(1), 5.0);
        assert_eq!(a.weight_of(-1), 2.0);
        assert_eq!(a.weight_of(7), 1.0);
        assert!(parse_train(&sv(&["-w1", "-3", "x.dat"])).is_err());

        let a = parse_train(&sv(&["-h", "0", "x.dat"])).unwrap();
        assert!(!a.shrinking);
        let a = parse_train(&sv(&["-m", "250", "x.dat"])).unwrap();
        assert_eq!(a.cache_mb, 250);
        let a = parse_train(&sv(&["x.dat"])).unwrap();
        assert!(a.shrinking);
        assert_eq!(a.cache_mb, 100);
    }

    #[test]
    fn train_rejects_bad_input() {
        assert!(parse_train(&sv(&[])).is_err());
        assert!(parse_train(&sv(&["-t"])).is_err());
        assert!(parse_train(&sv(&["-t", "9", "x"])).is_err());
        assert!(parse_train(&sv(&["-z", "1", "x"])).is_err());
        assert!(parse_train(&sv(&["a", "b", "c"])).is_err());
        assert!(parse_train(&sv(&["--backend", "vulkan", "x"])).is_err());
    }

    #[test]
    fn train_negative_numbers_not_mistaken_for_flags() {
        let a = parse_train(&sv(&["-r", "-1.5", "x.dat"])).unwrap();
        assert_eq!(a.coef0, -1.5);
    }

    #[test]
    fn predict_args() {
        let a = parse_predict(&sv(&["t.dat", "m.model", "out.txt"])).unwrap();
        assert_eq!(
            a,
            PredictArgs {
                test: "t.dat".into(),
                model: "m.model".into(),
                output: "out.txt".into(),
                metrics_out: None,
                quiet: false,
                verbose: false,
            }
        );
        assert!(parse_predict(&sv(&["a", "b"])).is_err());
        assert!(parse_predict(&sv(&["-x", "a", "b", "c"])).is_err());
    }

    #[test]
    fn metrics_and_verbosity_flags() {
        let a = parse_train(&sv(&["--metrics-out", "m.jsonl", "x.dat"])).unwrap();
        assert_eq!(a.metrics_out.as_deref(), Some("m.jsonl"));
        assert!(!a.quiet && !a.verbose);
        let a = parse_train(&sv(&["-q", "x.dat"])).unwrap();
        assert!(a.quiet);
        let a = parse_train(&sv(&["--verbose", "x.dat"])).unwrap();
        assert!(a.verbose);
        assert!(parse_train(&sv(&["-q", "--verbose", "x.dat"])).is_err());
        assert!(parse_train(&sv(&["--metrics-out"])).is_err());

        let a = parse_predict(&sv(&[
            "--metrics-out",
            "m.jsonl",
            "--verbose",
            "t.dat",
            "m.model",
            "out.txt",
        ]))
        .unwrap();
        assert_eq!(a.metrics_out.as_deref(), Some("m.jsonl"));
        assert!(a.verbose);
        let a = parse_predict(&sv(&["-q", "t.dat", "m.model", "out.txt"])).unwrap();
        assert!(a.quiet);
        assert!(parse_predict(&sv(&["-q", "--verbose", "a", "b", "c"])).is_err());
        assert!(parse_predict(&sv(&["--metrics-out"])).is_err());
    }

    #[test]
    fn train_fault_plan_and_checkpoint_flags() {
        let a = parse_train(&sv(&[
            "--backend",
            "cuda",
            "-n",
            "4",
            "--fault-plan",
            "fail:1@4;transient:2@0x2",
            "--checkpoint-every",
            "8",
            "x.dat",
        ]))
        .unwrap();
        let plan = a.fault_plan.expect("plan parsed");
        assert_eq!(plan, FaultPlan::new().fail_stop(1, 4).transient(2, 0, 2));
        assert_eq!(a.checkpoint_every, Some(8));

        // seeded plans resolve against the configured device count
        let a = parse_train(&sv(&[
            "--backend",
            "cuda",
            "-n",
            "4",
            "--fault-plan",
            "seed:7",
            "x.dat",
        ]))
        .unwrap();
        let plan = a.fault_plan.expect("seeded plan");
        assert_eq!(plan, FaultPlan::seeded(7, 4, 32));
        assert!(plan.max_device().is_some_and(|d| d < 4));

        // CPU backends cannot inject device faults
        assert!(parse_train(&sv(&["--fault-plan", "fail:0@1", "x.dat"])).is_err());
        // plan must fit the device count
        assert!(parse_train(&sv(&[
            "--backend",
            "cuda",
            "-n",
            "2",
            "--fault-plan",
            "fail:5@1",
            "x.dat",
        ]))
        .is_err());
        // malformed specs and zero intervals are rejected
        assert!(parse_train(&sv(&[
            "--backend",
            "cuda",
            "--fault-plan",
            "explode:0@1",
            "x.dat",
        ]))
        .is_err());
        assert!(parse_train(&sv(&["--checkpoint-every", "0", "x.dat"])).is_err());
        // defaults stay off
        let a = parse_train(&sv(&["x.dat"])).unwrap();
        assert!(a.fault_plan.is_none() && a.checkpoint_every.is_none());
        assert!(a.checkpoint_dir.is_none() && !a.resume);
    }

    #[test]
    fn train_checkpoint_dir_and_resume_flags() {
        let a = parse_train(&sv(&["--checkpoint-dir", "ckpt", "x.dat"])).unwrap();
        assert_eq!(a.checkpoint_dir.as_deref(), Some("ckpt"));
        // a journal without an explicit interval checkpoints every 50
        assert_eq!(a.checkpoint_every, Some(50));
        assert!(!a.resume);

        let a = parse_train(&sv(&[
            "--checkpoint-dir",
            "ckpt",
            "--checkpoint-every",
            "10",
            "--resume",
            "x.dat",
        ]))
        .unwrap();
        assert_eq!(a.checkpoint_every, Some(10));
        assert!(a.resume);

        // --checkpoint-every alone keeps the in-memory behaviour
        let a = parse_train(&sv(&["--checkpoint-every", "8", "x.dat"])).unwrap();
        assert!(a.checkpoint_dir.is_none());

        // resuming without a journal directory is a usage error
        assert!(parse_train(&sv(&["--resume", "x.dat"])).is_err());
        assert!(parse_train(&sv(&["--checkpoint-dir"])).is_err());
    }

    #[test]
    fn train_solver_flags() {
        let a = parse_train(&sv(&["x.dat"])).unwrap();
        assert_eq!(a.solver, SolverSelection::Exact);

        let a = parse_train(&sv(&["--solver", "lowrank", "--rank", "64", "x.dat"])).unwrap();
        assert_eq!(
            a.solver,
            SolverSelection::LowRank {
                rank: 64,
                seed: DEFAULT_SEED,
                strategy: LandmarkStrategy::Uniform,
            }
        );

        let a = parse_train(&sv(&[
            "--solver",
            "lowrank",
            "--rank",
            "32",
            "--lowrank-seed",
            "7",
            "--landmarks",
            "leverage",
            "x.dat",
        ]))
        .unwrap();
        assert_eq!(
            a.solver,
            SolverSelection::LowRank {
                rank: 32,
                seed: 7,
                strategy: LandmarkStrategy::Leverage,
            }
        );

        // the low-rank solver needs a rank; a rank alone is meaningless
        assert!(parse_train(&sv(&["--solver", "lowrank", "x.dat"])).is_err());
        assert!(parse_train(&sv(&["--rank", "8", "x.dat"])).is_err());
        assert!(parse_train(&sv(&["--solver", "lowrank", "--rank", "0", "x.dat"])).is_err());
        assert!(parse_train(&sv(&["--solver", "cholesky", "x.dat"])).is_err());
        assert!(parse_train(&sv(&[
            "--solver",
            "lowrank",
            "--rank",
            "8",
            "--landmarks",
            "grid",
            "x.dat",
        ]))
        .is_err());
        // SMO has no reduced system to approximate
        assert!(parse_train(&sv(&[
            "-a", "smo", "--solver", "lowrank", "--rank", "8", "x.dat",
        ]))
        .is_err());
    }

    #[test]
    fn train_lowrank_resume_rejected_at_parse() {
        // the PR 5 journal streams CG state only — the combination must
        // die as a usage error (exit 2), before any training work
        let e = parse_train(&sv(&[
            "--solver",
            "lowrank",
            "--rank",
            "16",
            "--checkpoint-dir",
            "ckpt",
            "--resume",
            "x.dat",
        ]))
        .unwrap_err();
        assert!(e.0.contains("--resume"), "{e}");
        assert!(e.0.contains("lowrank"), "{e}");
    }

    #[test]
    fn train_on_nonconverged_flag() {
        let a = parse_train(&sv(&["x.dat"])).unwrap();
        assert_eq!(a.on_nonconverged, NonConvergedAction::Warn);
        for (name, expected) in [
            ("error", NonConvergedAction::Error),
            ("warn", NonConvergedAction::Warn),
            ("accept", NonConvergedAction::Accept),
        ] {
            let a = parse_train(&sv(&["--on-nonconverged", name, "x.dat"])).unwrap();
            assert_eq!(a.on_nonconverged, expected);
        }
        assert!(parse_train(&sv(&["--on-nonconverged", "panic", "x.dat"])).is_err());
        assert!(parse_train(&sv(&["--on-nonconverged"])).is_err());
    }

    #[test]
    fn train_io_faults_flag() {
        let a = parse_train(&sv(&["x.dat"])).unwrap();
        assert!(a.io_faults.is_none());
        assert_eq!(a.on_io_degraded, IoDegradedAction::Warn);

        // explicit plans parse at the arg layer (usage errors → exit 2)
        let a = parse_train(&sv(&["--io-faults", "enospc:write@2", "x.dat"])).unwrap();
        let plan = a.io_faults.expect("plan parsed");
        assert_eq!(plan.specs().len(), 1);

        // the storage plan needs no simulated device backend: it works
        // on the default CPU path (unlike --fault-plan)
        let a = parse_train(&sv(&[
            "--io-faults",
            "eio:sync@1~journal!;bitrot:read@3",
            "x.dat",
        ]))
        .unwrap();
        assert_eq!(a.io_faults.unwrap().specs().len(), 2);

        // seeded plans parse through the same grammar
        let a = parse_train(&sv(&["--io-faults", "seed:7", "x.dat"])).unwrap();
        assert!(!a.io_faults.unwrap().is_empty());

        for (name, expected) in [
            ("error", IoDegradedAction::Error),
            ("warn", IoDegradedAction::Warn),
        ] {
            let a = parse_train(&sv(&["--on-io-degraded", name, "x.dat"])).unwrap();
            assert_eq!(a.on_io_degraded, expected);
        }

        // malformed specs and unknown actions are usage errors
        assert!(parse_train(&sv(&["--io-faults", "explode:write@1", "x.dat"])).is_err());
        assert!(parse_train(&sv(&["--io-faults", "enospc:read@1", "x.dat"])).is_err());
        assert!(parse_train(&sv(&["--io-faults"])).is_err());
        assert!(parse_train(&sv(&["--on-io-degraded", "panic", "x.dat"])).is_err());
        assert!(parse_train(&sv(&["--on-io-degraded"])).is_err());
    }

    #[test]
    fn scale_args() {
        let a = parse_scale(&sv(&["-l", "0", "-u", "2", "-s", "r.txt", "d.dat"])).unwrap();
        assert_eq!(a.lower, 0.0);
        assert_eq!(a.upper, 2.0);
        assert_eq!(a.save.as_deref(), Some("r.txt"));
        assert_eq!(a.input, "d.dat");
        let a = parse_scale(&sv(&["-r", "r.txt", "d.dat"])).unwrap();
        assert_eq!(a.restore.as_deref(), Some("r.txt"));
        assert_eq!((a.lower, a.upper), (-1.0, 1.0));
        assert!(parse_scale(&sv(&["-s", "a", "-r", "b", "d.dat"])).is_err());
        assert!(parse_scale(&sv(&[])).is_err());
        // negative bound values parse
        let a = parse_scale(&sv(&["-l", "-2", "d.dat"])).unwrap();
        assert_eq!(a.lower, -2.0);
    }

    #[test]
    fn serve_args() {
        let a = parse_serve(&sv(&["m.model"])).unwrap();
        assert_eq!(a.model, "m.model");
        assert_eq!(a.listen, None);
        assert_eq!((a.max_batch, a.max_wait_us), (64, 2_000));
        assert_eq!(a.metrics_out, None);
        assert_eq!(a.reload_poll_ms, 200);
        // overload-hardening defaults: capped connections, bounded
        // queue, slow-client timeout on, per-request deadline off
        assert_eq!(a.max_connections, 256);
        assert_eq!(a.queue_watermark, 1_024);
        assert_eq!(a.deadline_us, 0);
        assert_eq!(a.client_timeout_ms, 10_000);
        assert!(!a.quiet);

        let a = parse_serve(&sv(&[
            "--listen",
            "127.0.0.1:7777",
            "--max-batch",
            "8",
            "--max-wait-us",
            "500",
            "--metrics-out",
            "m.json",
            "--reload-poll-ms",
            "0",
            "--max-connections",
            "4",
            "--queue-watermark",
            "16",
            "--deadline-us",
            "2500",
            "--client-timeout-ms",
            "250",
            "-q",
            "m.model",
        ]))
        .unwrap();
        assert_eq!(a.listen.as_deref(), Some("127.0.0.1:7777"));
        assert_eq!((a.max_batch, a.max_wait_us), (8, 500));
        assert_eq!(a.metrics_out.as_deref(), Some("m.json"));
        assert_eq!(a.reload_poll_ms, 0);
        assert_eq!(a.max_connections, 4);
        assert_eq!(a.queue_watermark, 16);
        assert_eq!(a.deadline_us, 2_500);
        assert_eq!(a.client_timeout_ms, 250);
        assert!(a.quiet);

        // 0 disables each overload knob without erroring
        let a = parse_serve(&sv(&[
            "--max-connections",
            "0",
            "--queue-watermark",
            "0",
            "--client-timeout-ms",
            "0",
            "m.model",
        ]))
        .unwrap();
        assert_eq!(a.max_connections, 0);
        assert_eq!(a.queue_watermark, 0);
        assert_eq!(a.client_timeout_ms, 0);

        // explicit stdin mode is the default, spelled out
        let a = parse_serve(&sv(&["--stdin", "m.model"])).unwrap();
        assert_eq!(a.listen, None);

        assert!(parse_serve(&sv(&[])).is_err()); // no model
        assert!(parse_serve(&sv(&["a.model", "b.model"])).is_err());
        assert!(parse_serve(&sv(&["--max-batch", "0", "m.model"])).is_err());
        assert!(parse_serve(&sv(&["--max-batch", "x", "m.model"])).is_err());
        assert!(parse_serve(&sv(&["--max-connections", "x", "m.model"])).is_err());
        assert!(parse_serve(&sv(&["--deadline-us"])).is_err()); // missing value
        assert!(parse_serve(&sv(&["--listen"])).is_err()); // missing value
        assert!(parse_serve(&sv(&["--stdin", "--listen", "h:1", "m.model"])).is_err());
        assert!(parse_serve(&sv(&["--bogus", "m.model"])).is_err());
    }

    #[test]
    fn generate_args() {
        let a = parse_generate(&sv(&[
            "--points",
            "100",
            "--features",
            "8",
            "--seed",
            "7",
            "-o",
            "out.dat",
        ]))
        .unwrap();
        assert_eq!((a.points, a.features, a.seed), (100, 8, 7));
        assert!(!a.sat6);
        let a = parse_generate(&sv(&["--sat6", "-o", "x.dat"])).unwrap();
        assert!(a.sat6);
        assert!(parse_generate(&sv(&["--points", "10"])).is_err()); // no -o
        assert!(parse_generate(&sv(&["--bogus", "-o", "x"])).is_err());
    }
}
