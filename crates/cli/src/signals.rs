//! SIGTERM/SIGINT → drain-flag bridge for `svm-serve`.
//!
//! The workspace is dependency-free by design (no `libc` crate), so the
//! unix implementation declares the two symbols it needs itself. The
//! handler does the only async-signal-safe thing possible: one atomic
//! store into a static flag, which the serve accept loop polls to begin
//! a graceful drain. On non-unix targets installation is a no-op and
//! the flag simply never flips (drain still works via the `shutdown`
//! control line).

use std::sync::atomic::AtomicBool;

/// Set by the signal handler; the accept loop treats it as its `stop`
/// flag and begins a graceful drain when it flips.
static DRAIN: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
mod imp {
    use std::sync::atomic::Ordering;

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    extern "C" {
        // signal(2): returns the previous handler (opaque here).
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }

    extern "C" fn on_signal(_signum: i32) {
        // async-signal-safe: a lone atomic store, nothing else
        super::DRAIN.store(true, Ordering::SeqCst);
    }

    pub fn install() {
        unsafe {
            signal(SIGTERM, on_signal);
            signal(SIGINT, on_signal);
        }
    }
}

#[cfg(not(unix))]
mod imp {
    pub fn install() {}
}

/// Installs the SIGTERM/SIGINT handlers (idempotent). Call before
/// entering the serve loop.
pub fn install_drain_handler() {
    imp::install();
}

/// The flag the handlers flip; wire it as the serve loop's `stop`.
pub fn drain_flag() -> &'static AtomicBool {
    &DRAIN
}
