//! Command line front ends.
//!
//! PLSSVM is "a drop-in replacement for LIBSVM": the `svm-train`,
//! `svm-predict` and `svm-scale` binaries accept LIBSVM's flags (the subset
//! PLSSVM supports) plus the PLSSVM-specific `--backend` switch. The
//! `generate-data` binary is the equivalent of the repository's
//! `generate_data.py` utility script ("planes" problem and the SAT-6-like
//! generator).
//!
//! All argument parsing lives in this library crate so it is unit-testable;
//! the binaries are thin `main` wrappers.

#![warn(missing_docs)]

pub mod args;
pub mod commands;
pub mod signals;

pub use args::CliError;
