//! Command implementations shared by the binaries (testable without
//! spawning processes).

use std::error::Error;
use std::fs;
use std::sync::Arc;
use std::time::Instant;

use plssvm_core::cg::SolveOutcome;
use plssvm_core::multiclass::{
    train_multiclass_with_outcomes, MultiClassModel, MultiClassStrategy,
};
use plssvm_core::regression::{mean_squared_error, predict_values, r_squared, LsSvr};
use plssvm_core::simd::FORCE_ISA_ENV;
use plssvm_core::svm::{accuracy, predict_labels, LsSvm};
use plssvm_core::trace::{MetricsSink, RecoveryKind, Telemetry, TelemetryReport};
use plssvm_core::validation::cross_validate;
use plssvm_core::SvmError;
use plssvm_data::arff::read_arff_file;
use plssvm_data::checkpoint::fnv1a64;
use plssvm_data::io::write_atomic_with;
use plssvm_data::libsvm::{
    read_libsvm_file, read_libsvm_regression_file, write_libsvm_string, LabeledData, RegressionData,
};
use plssvm_data::model::{peek_svm_type, SvmModel, SvrModel};
use plssvm_data::multiclass::read_libsvm_multiclass_file;
use plssvm_data::sat6::{generate_sat6, Sat6Config};
use plssvm_data::scale::ScalingParams;
use plssvm_data::synthetic::{generate_planes, PlanesConfig};
use plssvm_data::vfs::Vfs;
use plssvm_data::{write_atomic, CheckpointJournal, FaultVfs, RealVfs};

use plssvm_serve::{
    serve_lines, serve_tcp, spawn_watcher, ConnectionOptions, Engine, EngineConfig, PollTrigger,
    ServeModel, ServerControl, SystemClock,
};

use crate::args::{
    kernel_from_args, Algorithm, GenerateArgs, IoDegradedAction, McStrategy, NonConvergedAction,
    PredictArgs, ScaleArgs, ServeArgs, TrainArgs,
};

/// A durable-storage failure that survived the retry policy. The
/// binaries map it to exit code 4, distinct from generic runtime
/// errors, so operators can tell "the disk is dying" from "the solve
/// failed".
#[derive(Debug)]
pub struct StorageError(pub String);

impl std::fmt::Display for StorageError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "storage failure: {}", self.0)
    }
}

impl Error for StorageError {}

/// The VFS every durability-bearing path of this invocation runs
/// through: a passthrough normally, a deterministic [`FaultVfs`]
/// replaying `--io-faults`.
fn vfs_for(args: &TrainArgs) -> Arc<dyn Vfs> {
    match &args.io_faults {
        Some(plan) => Arc::new(FaultVfs::new(plan.clone())),
        None => Arc::new(RealVfs),
    }
}

/// Writes a final artifact (model, metrics) through the VFS, retrying
/// transient faults; an exhausted retry budget surfaces as
/// [`StorageError`] → exit code 4.
fn write_final<E: std::fmt::Display>(
    metrics: Option<&dyn MetricsSink>,
    what: &str,
    op: impl FnMut() -> Result<(), E>,
) -> Result<(), StorageError> {
    let policy = plssvm_core::resilience::IoRetryPolicy::default();
    plssvm_core::resilience::with_io_retry(&policy, metrics, what, op)
        .map_err(|e| StorageError(format!("{what}: {e}")))
}

/// Applies the `--on-io-degraded` policy when the checkpoint journal
/// was disabled mid-run by persistent storage faults: `error` refuses
/// the model (exit code 4), `warn` returns a summary line.
fn apply_io_degraded_policy(
    action: IoDegradedAction,
    degraded: bool,
) -> Result<Option<String>, Box<dyn Error>> {
    if !degraded {
        return Ok(None);
    }
    match action {
        IoDegradedAction::Error => Err(Box::new(StorageError(
            "checkpoint journal degraded (writes kept failing after retries); \
             model refused (--on-io-degraded error)"
                .into(),
        ))),
        IoDegradedAction::Warn => Ok(Some(
            "WARNING: checkpoint journal degraded; checkpointing was disabled mid-run \
             and the model cannot be resumed from it (--on-io-degraded warn)\n"
                .to_owned(),
        )),
    }
}

/// True if the path names an ARFF file (PLSSVM's second input format).
fn is_arff(path: &str) -> bool {
    std::path::Path::new(path)
        .extension()
        .is_some_and(|e| e.eq_ignore_ascii_case("arff"))
}

/// Reads a binary classification file, dispatching on the extension
/// (`.arff` → ARFF, anything else → LIBSVM format).
fn read_classification(path: &str) -> Result<LabeledData<f64>, Box<dyn Error>> {
    Ok(if is_arff(path) {
        read_arff_file::<f64>(path)?
    } else {
        read_libsvm_file::<f64>(path, None)?
    })
}

/// Fresh telemetry sink when `--metrics-out` or `--verbose` asked for one.
fn telemetry_for(args: &TrainArgs) -> Option<Arc<Telemetry>> {
    (args.metrics_out.is_some() || args.verbose).then(Telemetry::shared)
}

/// A warning line when `PLSSVM_FORCE_ISA` holds an unparseable value —
/// the engine itself silently falls back to auto-detection
/// ([`Isa::select`] never fails), so the CLI is where the typo surfaces.
fn force_isa_warning() -> Option<String> {
    plssvm_core::simd::Isa::forced()
        .err()
        .map(|e| format!("WARNING: {}: {e}; using auto-detection\n", FORCE_ISA_ENV))
}

/// Renders the SIMD dispatch decision for `--verbose` summaries and the
/// serve startup log, e.g. `avx2 (f32x8/f64x4, panel 4x4), auto-detected`.
fn isa_summary_line() -> String {
    let (isa, forced) = plssvm_core::simd::Isa::select_with_provenance();
    format!(
        "{}, {}",
        isa.summary(),
        if forced {
            "forced via PLSSVM_FORCE_ISA"
        } else {
            "auto-detected"
        }
    )
}

/// Generations retained by the on-disk checkpoint journal: the newest
/// plus fallbacks in case the tail is damaged.
const JOURNAL_KEEP: usize = 4;

/// Opens the durable checkpoint journal when `--checkpoint-dir` was
/// given. The training-file *content* hash becomes the checkpoint salt,
/// so a journal can never be resumed against a different (or edited)
/// data file even if every hyperparameter matches.
fn journal_for(
    args: &TrainArgs,
    vfs: &Arc<dyn Vfs>,
) -> Result<Option<(CheckpointJournal, u64)>, Box<dyn Error>> {
    let Some(dir) = &args.checkpoint_dir else {
        return Ok(None);
    };
    let journal = CheckpointJournal::open_with_vfs(dir, JOURNAL_KEEP, Arc::clone(vfs))?;
    let salt = fnv1a64(&fs::read(&args.input)?);
    Ok(Some((journal, salt)))
}

/// Writes the unified telemetry as JSON lines when `--metrics-out` was
/// given, and appends the per-kernel counters to the summary when
/// `--verbose` was.
fn emit_telemetry(
    args: &TrainArgs,
    vfs: &dyn Vfs,
    report: &TelemetryReport,
    summary: &mut String,
) -> Result<(), Box<dyn Error>> {
    if let Some(path) = &args.metrics_out {
        write_final(None, "metrics write", || {
            write_atomic_with(
                vfs,
                std::path::Path::new(path),
                report.to_json_lines().as_bytes(),
            )
        })?;
    }
    if args.verbose {
        if let Some(d) = &report.dispatch {
            summary.push_str(&format!(
                "simd dispatch: {} (f32x{}/f64x{}, panel {}x{}), {}\n",
                d.isa,
                d.lanes_f32,
                d.lanes_f64,
                d.panel_mr,
                d.panel_nr,
                if d.forced {
                    "forced via PLSSVM_FORCE_ISA"
                } else {
                    "auto-detected"
                }
            ));
        }
        summary.push_str(&format!(
            "telemetry: {} kernel launches, {} FLOPs, {} bytes moved\n",
            report.total_launches(),
            report.total_flops(),
            report.total_bytes()
        ));
        for (name, k) in &report.kernels {
            summary.push_str(&format!(
                "  {name}: {} launches, {} FLOPs, {} bytes, {:.3e} s simulated\n",
                k.launches, k.flops, k.bytes, k.sim_time_s
            ));
        }
    }
    Ok(())
}

/// Applies the `--on-nonconverged` policy to a finished solve: `error`
/// refuses the model with [`SvmError::NonConverged`] (the binary maps it
/// to exit code 3), `warn` returns a warning line for the summary,
/// `accept` stays silent. Converged solves pass through untouched.
fn apply_nonconverged_policy(
    action: NonConvergedAction,
    outcome: SolveOutcome,
    relative_residual: f64,
    iterations: usize,
) -> Result<Option<String>, Box<dyn Error>> {
    if outcome.is_converged() {
        return Ok(None);
    }
    match action {
        NonConvergedAction::Error => Err(Box::new(SvmError::NonConverged {
            outcome,
            relative_residual,
            iterations,
        })),
        NonConvergedAction::Warn => Ok(Some(format!(
            "WARNING: solver did not converge ({outcome}, relative residual \
             {relative_residual:.3e} after {iterations} iterations); model accepted \
             (--on-nonconverged warn)\n"
        ))),
        NonConvergedAction::Accept => Ok(None),
    }
}

/// Renders the escalation ladder for the summary (`restart ->
/// precondition -> ...`), or `None` when no rung engaged.
fn escalation_summary(escalations: &[RecoveryKind]) -> Option<String> {
    if escalations.is_empty() {
        return None;
    }
    Some(
        escalations
            .iter()
            .map(|k| k.as_str())
            .collect::<Vec<_>>()
            .join(" -> "),
    )
}

/// Runs `svm-train`; returns the human-readable summary printed to stdout.
pub fn run_train(args: &TrainArgs) -> Result<String, Box<dyn Error>> {
    match force_isa_warning() {
        Some(warning) => Ok(format!("{warning}{}", train_inner(args)?)),
        None => train_inner(args),
    }
}

fn train_inner(args: &TrainArgs) -> Result<String, Box<dyn Error>> {
    // -s 3: regression (LS-SVR)
    if args.svm_type == 3 {
        return run_train_regression(args);
    }
    // classification: detect the class count first (multi-class detection
    // applies to LIBSVM input; ARFF input is binary in PLSSVM v1 style)
    if !is_arff(&args.input) {
        let multi = read_libsvm_multiclass_file::<f64>(&args.input, None)?;
        if multi.num_classes() > 2 {
            return run_train_multiclass(args, &multi);
        }
    }
    let data = read_classification(&args.input)?;
    let kernel = kernel_from_args(args, data.features());
    let vfs = vfs_for(args);
    let mut summary = String::new();

    // -v k: cross validation instead of model training (LIBSVM behaviour)
    if let Some(folds) = args.cv_folds {
        if args.algorithm != Algorithm::LsSvm {
            return Err("cross validation is implemented for the lssvm algorithm".into());
        }
        if args.checkpoint_dir.is_some() {
            return Err("--checkpoint-dir does not apply to cross validation".into());
        }
        let trainer = LsSvm::new()
            .with_kernel(kernel)
            .with_cost(args.cost)
            .with_epsilon(args.epsilon)
            .with_backend(args.backend.clone());
        let cv = cross_validate(&data, &trainer, folds, 42)?;
        return Ok(format!(
            "Cross Validation Accuracy = {:.4}% ({folds}-fold)\n",
            100.0 * cv.accuracy
        ));
    }

    if args.fault_plan.is_some() && args.algorithm != Algorithm::LsSvm {
        return Err("--fault-plan is implemented for the lssvm algorithm".into());
    }
    if args.checkpoint_dir.is_some() && args.algorithm != Algorithm::LsSvm {
        return Err("--checkpoint-dir is implemented for the lssvm algorithm".into());
    }
    match args.algorithm {
        Algorithm::LsSvm => {
            let mut trainer = LsSvm::new()
                .with_kernel(kernel)
                .with_cost(args.cost)
                .with_epsilon(args.epsilon)
                .with_solver(args.solver)
                .with_backend(args.backend.clone());
            if let Some(plan) = &args.fault_plan {
                trainer = trainer.with_fault_plan(plan.clone());
            }
            if let Some(k) = args.checkpoint_every {
                trainer = trainer.with_checkpoint_interval(k);
            }
            if let Some((journal, salt)) = journal_for(args, &vfs)? {
                trainer = trainer
                    .with_checkpoint_journal(journal)
                    .with_checkpoint_salt(salt)
                    .with_resume(args.resume);
            }
            if !args.label_weights.is_empty() {
                // -wi: class weights become per-sample weights of the
                // weighted LS-SVM (the error term of sample i is C·wᵢ)
                let weights: Vec<f64> = (0..data.points())
                    .map(|i| args.weight_of(data.original_label(data.y[i])))
                    .collect();
                trainer = trainer.with_sample_weights(weights);
            }
            let telemetry = telemetry_for(args);
            if let Some(t) = &telemetry {
                trainer = trainer.with_metrics(Arc::clone(t));
            }
            let out = if is_arff(&args.input) {
                trainer.train(&data)?
            } else {
                trainer.train_from_file(&args.input, None)?
            };
            // --on-nonconverged error refuses the model before it is written
            let warning = apply_nonconverged_policy(
                args.on_nonconverged,
                out.outcome,
                out.relative_residual,
                out.iterations,
            )?;
            // ... and so does --on-io-degraded error when the journal died
            let degraded = apply_io_degraded_policy(args.on_io_degraded, out.io_degraded)?;
            write_final(
                telemetry.as_deref().map(|t| t as &dyn MetricsSink),
                "model write",
                || {
                    out.model
                        .save_with(vfs.as_ref(), std::path::Path::new(&args.model))
                },
            )?;
            if let Some(w) = warning {
                summary.push_str(&w);
            }
            if let Some(w) = degraded {
                summary.push_str(&w);
            }
            if !args.quiet {
                summary.push_str(&format!(
                    "PLSSVM (LS-SVM) trained on {} points x {} features\n",
                    data.points(),
                    data.features()
                ));
                summary.push_str(&format!("backend: {}\n", out.backend_name));
                if let Some(solver) = args.solver.provenance() {
                    summary.push_str(&format!("solver: {solver}\n"));
                }
                summary.push_str(&format!(
                    "CG iterations: {} (converged: {}, relative residual {:.3e})\n",
                    out.iterations, out.converged, out.relative_residual
                ));
                summary.push_str(&format!("solver outcome: {}\n", out.outcome));
                if let Some(ladder) = escalation_summary(&out.escalations) {
                    summary.push_str(&format!("recovery escalations: {ladder}\n"));
                }
                summary.push_str(&format!("timings: {}\n", out.times));
                if let Some(device) = &out.device {
                    summary.push_str(&format!(
                        "simulated device time: {:.3} s, peak memory/device: {:.3} GiB\n",
                        device.sim_parallel_time_s,
                        device.peak_memory_per_device_bytes as f64 / (1u64 << 30) as f64
                    ));
                }
            }
            if let Some(report) = &out.telemetry {
                emit_telemetry(args, vfs.as_ref(), report, &mut summary)?;
            }
            if !args.quiet {
                summary.push_str(&format!(
                    "training accuracy: {:.2}%\n",
                    100.0 * accuracy(&out.model, &data)
                ));
            }
        }
        Algorithm::Smo | Algorithm::SmoDense => {
            let config = plssvm_smo::SmoConfig {
                kernel,
                cost: args.cost,
                epsilon: args.epsilon,
                shrinking: args.shrinking,
                cache_bytes: args.cache_mb << 20,
                class_weights: [
                    args.weight_of(data.label_map[0]),
                    args.weight_of(data.label_map[1]),
                ],
                ..Default::default()
            };
            let out = if args.algorithm == Algorithm::Smo {
                plssvm_smo::solver::train_sparse(&data, &config)?
            } else {
                plssvm_smo::solver::train_dense(&data, &config)?
            };
            write_final(None, "model write", || {
                out.model
                    .save_with(vfs.as_ref(), std::path::Path::new(&args.model))
            })?;
            summary.push_str(&format!(
                "SMO ({}) trained: {} iterations, {} SVs, obj {:.6}\n",
                if args.algorithm == Algorithm::Smo {
                    "sparse"
                } else {
                    "dense"
                },
                out.iterations,
                out.model.total_sv(),
                out.objective
            ));
            summary.push_str(&format!(
                "training accuracy: {:.2}%\n",
                100.0 * accuracy(&out.model, &data)
            ));
        }
        Algorithm::Thunder => {
            let config = plssvm_smo::ThunderConfig {
                kernel,
                cost: args.cost,
                epsilon: args.epsilon,
                ..Default::default()
            };
            let out = plssvm_smo::ThunderSolver::new(config)?.train(&data)?;
            write_final(None, "model write", || {
                out.model
                    .save_with(vfs.as_ref(), std::path::Path::new(&args.model))
            })?;
            summary.push_str(&format!(
                "ThunderSVM-style trained: {} outer / {} inner iterations, {} SVs\n",
                out.outer_iterations,
                out.inner_iterations,
                out.model.total_sv()
            ));
            summary.push_str(&format!(
                "training accuracy: {:.2}%\n",
                100.0 * accuracy(&out.model, &data)
            ));
        }
    }
    Ok(summary)
}

fn run_train_regression(args: &TrainArgs) -> Result<String, Box<dyn Error>> {
    if args.algorithm != Algorithm::LsSvm {
        return Err("regression is implemented for the lssvm algorithm (LS-SVR)".into());
    }
    let data: RegressionData<f64> = read_libsvm_regression_file(&args.input, None)?;
    let kernel = kernel_from_args(args, data.features());
    let vfs = vfs_for(args);
    let mut trainer = LsSvr::new()
        .with_kernel(kernel)
        .with_cost(args.cost)
        .with_epsilon(args.epsilon)
        .with_solver(args.solver)
        .with_backend(args.backend.clone());
    if let Some(plan) = &args.fault_plan {
        trainer = trainer.with_fault_plan(plan.clone());
    }
    if let Some(k) = args.checkpoint_every {
        trainer = trainer.with_checkpoint_interval(k);
    }
    if let Some((journal, salt)) = journal_for(args, &vfs)? {
        trainer = trainer
            .with_checkpoint_journal(journal)
            .with_checkpoint_salt(salt)
            .with_resume(args.resume);
    }
    let telemetry = telemetry_for(args);
    if let Some(t) = &telemetry {
        trainer = trainer.with_metrics(Arc::clone(t));
    }
    let out = trainer.train(&data)?;
    let warning = apply_nonconverged_policy(
        args.on_nonconverged,
        out.outcome,
        out.relative_residual,
        out.iterations,
    )?;
    let degraded = apply_io_degraded_policy(args.on_io_degraded, out.io_degraded)?;
    write_final(
        telemetry.as_deref().map(|t| t as &dyn MetricsSink),
        "model write",
        || {
            out.model
                .save_with(vfs.as_ref(), std::path::Path::new(&args.model))
        },
    )?;
    let mut summary = String::new();
    if let Some(w) = warning {
        summary.push_str(&w);
    }
    if let Some(w) = degraded {
        summary.push_str(&w);
    }
    if !args.quiet {
        summary.push_str(&format!(
            "LS-SVR trained on {} points x {} features\nCG iterations: {} (converged: {})\ntraining MSE: {:.6e}, R^2: {:.4}\n",
            data.points(),
            data.features(),
            out.iterations,
            out.converged,
            mean_squared_error(&out.model, &data),
            r_squared(&out.model, &data),
        ));
        summary.push_str(&format!("solver outcome: {}\n", out.outcome));
        if let Some(solver) = args.solver.provenance() {
            summary.push_str(&format!("solver: {solver}\n"));
        }
        if let Some(ladder) = escalation_summary(&out.escalations) {
            summary.push_str(&format!("recovery escalations: {ladder}\n"));
        }
    }
    if let Some(report) = &out.telemetry {
        emit_telemetry(args, vfs.as_ref(), report, &mut summary)?;
    }
    Ok(summary)
}

fn run_train_multiclass(
    args: &TrainArgs,
    data: &plssvm_data::multiclass::MultiClassData<f64>,
) -> Result<String, Box<dyn Error>> {
    if args.algorithm != Algorithm::LsSvm {
        return Err(format!(
            "the training file has {} classes; multi-class is implemented for the lssvm algorithm",
            data.num_classes()
        )
        .into());
    }
    if args.cv_folds.is_some() {
        return Err("cross validation currently supports binary problems only".into());
    }
    let kernel = kernel_from_args(args, data.features());
    let vfs = vfs_for(args);
    let mut trainer = LsSvm::new()
        .with_kernel(kernel)
        .with_cost(args.cost)
        .with_epsilon(args.epsilon)
        .with_solver(args.solver)
        .with_backend(args.backend.clone());
    if let Some(k) = args.checkpoint_every {
        trainer = trainer.with_checkpoint_interval(k);
    }
    // each binary subproblem checkpoints into its own task-<k>/
    // sub-journal (handled by the multiclass driver)
    if let Some((journal, salt)) = journal_for(args, &vfs)? {
        trainer = trainer
            .with_checkpoint_journal(journal)
            .with_checkpoint_salt(salt)
            .with_resume(args.resume);
    }
    let strategy = match args.multiclass {
        McStrategy::Ovo => MultiClassStrategy::OneVsOne,
        McStrategy::Ovr => MultiClassStrategy::OneVsRest,
    };
    let out = train_multiclass_with_outcomes(data, &trainer, strategy)?;
    // the worst subproblem outcome drives the --on-nonconverged policy
    let mut warning = None;
    let non_converged = out.non_converged();
    if let Some(((a, b), worst)) = non_converged.first().copied() {
        let pair = if b == i32::MIN {
            format!("{a} vs rest")
        } else {
            format!("{a} vs {b}")
        };
        match args.on_nonconverged {
            NonConvergedAction::Error => {
                return Err(Box::new(SvmError::NonConverged {
                    outcome: worst,
                    relative_residual: f64::NAN,
                    iterations: out.total_iterations,
                }))
            }
            NonConvergedAction::Warn => {
                warning = Some(format!(
                    "WARNING: {} of {} binary subproblems did not converge \
                     (first: {pair}, {worst}); model accepted (--on-nonconverged warn)\n",
                    non_converged.len(),
                    out.outcomes.len()
                ));
            }
            NonConvergedAction::Accept => {}
        }
    }
    let degraded = apply_io_degraded_policy(args.on_io_degraded, out.io_degraded)?;
    let model = out.model;
    write_final(None, "model write", || {
        model.save_with(vfs.as_ref(), std::path::Path::new(&args.model))
    })?;
    let mut summary = warning.unwrap_or_default();
    if let Some(w) = degraded {
        summary.push_str(&w);
    }
    summary.push_str(&format!(
        "multi-class LS-SVM ({}) trained: {} classes, {} binary models\ntraining accuracy: {:.2}%\n",
        strategy.name(),
        model.classes.len(),
        model.num_models(),
        100.0 * model.accuracy(data),
    ));
    Ok(summary)
}

/// Runs `svm-predict`; writes one label per line and returns the summary.
pub fn run_predict(args: &PredictArgs) -> Result<String, Box<dyn Error>> {
    let start = Instant::now();
    let accuracy_summary = predict_inner(args)?;
    let wall = start.elapsed();
    if let Some(path) = &args.metrics_out {
        let telemetry = Telemetry::new();
        telemetry.record_span("predict", wall);
        write_atomic(path, telemetry.report().to_json_lines().as_bytes())?;
    }
    let mut summary = force_isa_warning().unwrap_or_default();
    if !args.quiet {
        summary.push_str(&accuracy_summary);
    }
    if args.verbose {
        // prediction resolves the tier per call (no long-lived backend),
        // so report what the panel engine will dispatch to on this host
        summary.push_str(&format!("simd dispatch: {}\n", isa_summary_line()));
        summary.push_str(&format!(
            "prediction wall time: {:.3} s\n",
            wall.as_secs_f64()
        ));
    }
    Ok(summary)
}

/// The prediction pipeline proper: dispatches on the model kind
/// (multiclass container, SVR, or binary) and returns the accuracy /
/// error report.
fn predict_inner(args: &PredictArgs) -> Result<String, Box<dyn Error>> {
    let content = fs::read_to_string(&args.model)
        .map_err(|e| format!("reading model '{}': {e}", args.model))?;
    // dispatch on the model kind: multiclass container, SVR, or binary
    if content.starts_with("plssvm_multiclass") {
        let model = MultiClassModel::<f64>::from_container_string(&content)?;
        let data = read_libsvm_multiclass_file::<f64>(&args.test, None)?;
        let labels = model.predict(&data.x);
        let mut out = String::with_capacity(labels.len() * 4);
        for l in &labels {
            out.push_str(&l.to_string());
            out.push('\n');
        }
        write_atomic(&args.output, out.as_bytes())?;
        let correct = labels
            .iter()
            .zip(&data.labels)
            .filter(|(p, l)| p == l)
            .count();
        return Ok(format!(
            "Accuracy = {:.4}% ({}/{}) (multi-class classification)\n",
            100.0 * correct as f64 / labels.len() as f64,
            correct,
            labels.len()
        ));
    }
    if peek_svm_type(&content) == Some("epsilon_svr") {
        let model = SvrModel::<f64>::from_model_string(&content)?;
        let data: RegressionData<f64> =
            read_libsvm_regression_file(&args.test, Some(model.features()))?;
        let values = predict_values(&model, &data.x);
        let mut out = String::with_capacity(values.len() * 12);
        for v in &values {
            out.push_str(&format!("{v}\n"));
        }
        write_atomic(&args.output, out.as_bytes())?;
        let mse = mean_squared_error(&model, &data);
        return Ok(format!(
            "Mean squared error = {mse:.6} (regression)\nSquared correlation coefficient R^2 = {:.6} (regression)\n",
            r_squared(&model, &data)
        ));
    }
    let model = SvmModel::<f64>::load(&args.model)?;
    let data = if is_arff(&args.test) {
        read_arff_file::<f64>(&args.test)?
    } else {
        read_libsvm_file::<f64>(&args.test, Some(model.features()))?
    };
    let labels = predict_labels(&model, &data.x);
    let mut out = String::with_capacity(labels.len() * 4);
    for l in &labels {
        out.push_str(&l.to_string());
        out.push('\n');
    }
    write_atomic(&args.output, out.as_bytes())?;

    let correct = labels
        .iter()
        .zip(&data.y)
        .filter(|(&l, &y)| {
            let truth = if y > 0.0 {
                model.labels[0]
            } else {
                model.labels[1]
            };
            l == truth
        })
        .count();
    Ok(format!(
        "Accuracy = {:.4}% ({}/{}) (classification)\n",
        100.0 * correct as f64 / labels.len() as f64,
        correct,
        labels.len()
    ))
}

/// Runs `svm-scale`; returns the scaled data set in LIBSVM format (the
/// binary prints it to stdout, like LIBSVM).
pub fn run_scale(args: &ScaleArgs) -> Result<String, Box<dyn Error>> {
    let mut data = read_libsvm_file::<f64>(&args.input, None)?;
    let params = match &args.restore {
        Some(path) => ScalingParams::<f64>::load(path)?,
        None => ScalingParams::fit(&data.x, args.lower, args.upper)?,
    };
    params.apply(&mut data.x)?;
    if let Some(path) = &args.save {
        params.save(path)?;
    }
    Ok(write_libsvm_string(&data, true))
}

/// Runs `generate-data`; writes the file and returns a summary.
pub fn run_generate(args: &GenerateArgs) -> Result<String, Box<dyn Error>> {
    let data = if args.sat6 {
        generate_sat6::<f64>(&Sat6Config::new(args.points, args.seed))?
    } else {
        generate_planes::<f64>(
            &PlanesConfig::new(args.points, args.features, args.seed)
                .with_cluster_sep(args.cluster_sep)
                .with_flip_fraction(args.flip),
        )?
    };
    if args.arff {
        plssvm_data::arff::write_arff_file(&args.output, &data, "generated")?;
    } else {
        plssvm_data::write_libsvm_file(&args.output, &data, true)?;
    }
    Ok(format!(
        "wrote {} points x {} features to {}\n",
        data.points(),
        data.features(),
        args.output
    ))
}

/// Runs `svm-serve`: loads the model, builds the micro-batching engine,
/// optionally watches the model file for hot reloads, then serves
/// newline-delimited requests from stdin (default) or TCP until the
/// input closes or a drain is requested (SIGTERM/SIGINT or the
/// `shutdown` control line). Responses go to stdout / the socket;
/// status lines go to stderr so piped output stays pure protocol.
/// A graceful drain finishes in-flight requests and returns `Ok` — the
/// process exits 0 after printing a deterministic final summary.
pub fn run_serve(args: &ServeArgs) -> Result<(), Box<dyn Error>> {
    let model =
        ServeModel::load(&args.model).map_err(|e| format!("loading '{}': {e}", args.model))?;
    // telemetry is always on: the overload counters feed the final
    // drain summary even when --metrics-out is absent
    let telemetry = Telemetry::shared();
    let engine = Arc::new(Engine::new(
        model,
        EngineConfig {
            max_batch: args.max_batch,
            max_wait_us: args.max_wait_us,
            queue_watermark: args.queue_watermark,
            deadline_us: args.deadline_us,
        },
        Arc::new(SystemClock::new()),
        Some(Arc::clone(&telemetry) as Arc<dyn MetricsSink>),
    ));
    if let Some(warning) = force_isa_warning() {
        eprint!("svm-serve: {warning}");
    }
    if !args.quiet {
        let (kind, features, total_sv) = engine.model_info();
        eprintln!(
            "svm-serve: serving {kind} model '{}' ({features} features, {total_sv} SVs), \
             max_batch={}, max_wait_us={}",
            args.model, args.max_batch, args.max_wait_us
        );
        eprintln!(
            "svm-serve: admission max_connections={} queue_watermark={} deadline_us={} \
             client_timeout_ms={}",
            args.max_connections, args.queue_watermark, args.deadline_us, args.client_timeout_ms
        );
        eprintln!("svm-serve: simd dispatch {}", isa_summary_line());
    }
    // hot reload: the watcher thread polls the model file's signature
    // and swaps generations atomically (with a failure-storm circuit
    // breaker); it lives until process exit
    if args.reload_poll_ms > 0 {
        let trigger = PollTrigger::new(
            &args.model,
            std::time::Duration::from_millis(args.reload_poll_ms),
        );
        let _watcher = spawn_watcher(
            Arc::clone(&engine),
            std::path::PathBuf::from(&args.model),
            Box::new(trigger),
        );
    }
    let snapshot = || {
        if let Some(path) = &args.metrics_out {
            if let Err(e) = write_atomic(path, telemetry.report().to_json_lines().as_bytes()) {
                eprintln!("svm-serve: failed to write metrics to '{path}': {e}");
            }
        }
    };
    let opts = ConnectionOptions {
        client_timeout: (args.client_timeout_ms > 0)
            .then(|| std::time::Duration::from_millis(args.client_timeout_ms)),
    };
    match &args.listen {
        None => {
            let stdout = std::io::stdout();
            // BufReader over Stdin (not StdinLock, which is not Send —
            // the reader moves onto a pipeline thread); BufWriter over
            // stdout because serve_lines flushes at every pipeline
            // drain, keeping interactive use prompt and bursts cheap
            serve_lines(
                &engine,
                std::io::BufReader::new(std::io::stdin()),
                std::io::BufWriter::new(stdout.lock()),
            )?;
            engine.shutdown();
            snapshot();
            if !args.quiet {
                eprintln!("svm-serve: input closed, exiting");
                eprint_drain_summary(&telemetry);
            }
        }
        Some(addr) => {
            let listener =
                std::net::TcpListener::bind(addr).map_err(|e| format!("binding '{addr}': {e}"))?;
            if !args.quiet {
                eprintln!("svm-serve: listening on {}", listener.local_addr()?);
            }
            // SIGTERM/SIGINT flip the drain flag; the accept loop then
            // stops accepting, wakes blocked readers, finishes in-flight
            // requests, and serve_tcp returns Ok — exit code 0
            crate::signals::install_drain_handler();
            let control = ServerControl::new(args.max_connections);
            serve_tcp(
                &engine,
                listener,
                &control,
                opts,
                crate::signals::drain_flag(),
                &snapshot,
            )?;
            engine.shutdown();
            snapshot();
            if !args.quiet {
                eprint_drain_summary(&telemetry);
            }
        }
    }
    Ok(())
}

/// The final deterministic drain summary: counts only (no timings), so
/// a fixed request schedule prints byte-identical lines across runs.
fn eprint_drain_summary(telemetry: &Telemetry) {
    let serve = telemetry.report().serve;
    eprintln!(
        "svm-serve: drained; requests={} errors={} shed_overloaded={} deadline_exceeded={} \
         rejected_draining={} refused_connections={} reload_backoffs={}",
        serve.requests,
        serve.request_errors,
        serve.shed_overloaded,
        serve.shed_deadline,
        serve.shed_draining,
        serve.refused_connections,
        serve.reload_backoffs.len(),
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::{parse_generate, parse_predict, parse_scale, parse_train};

    fn tmpdir(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("plssvm_cli_test").join(name);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn sv(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn end_to_end_generate_train_predict() {
        let dir = tmpdir("e2e");
        let data = dir.join("train.dat");
        let model = dir.join("train.model");
        let preds = dir.join("preds.txt");

        let gen = parse_generate(&sv(&[
            "--points",
            "80",
            "--features",
            "6",
            "--seed",
            "3",
            "--sep",
            "4.0",
            "--flip",
            "0.0",
            "-o",
            data.to_str().unwrap(),
        ]))
        .unwrap();
        let msg = run_generate(&gen).unwrap();
        assert!(msg.contains("80 points"));

        let train = parse_train(&sv(&[
            "-e",
            "1e-8",
            data.to_str().unwrap(),
            model.to_str().unwrap(),
        ]))
        .unwrap();
        let msg = run_train(&train).unwrap();
        assert!(msg.contains("PLSSVM"), "{msg}");
        assert!(model.exists());

        let predict = parse_predict(&sv(&[
            data.to_str().unwrap(),
            model.to_str().unwrap(),
            preds.to_str().unwrap(),
        ]))
        .unwrap();
        let msg = run_predict(&predict).unwrap();
        assert!(msg.contains("Accuracy"), "{msg}");
        let lines = std::fs::read_to_string(&preds).unwrap();
        assert_eq!(lines.lines().count(), 80);
        // separable data at tight epsilon → near-perfect accuracy
        let acc: f64 = msg
            .split('=')
            .nth(1)
            .unwrap()
            .trim()
            .split('%')
            .next()
            .unwrap()
            .parse()
            .unwrap();
        assert!(acc >= 97.0, "{msg}");
    }

    #[test]
    fn train_all_algorithms_produce_models() {
        let dir = tmpdir("algos");
        let data = dir.join("train.dat");
        run_generate(
            &parse_generate(&sv(&[
                "--points",
                "60",
                "--features",
                "4",
                "--seed",
                "5",
                "--sep",
                "4.0",
                "--flip",
                "0.0",
                "-o",
                data.to_str().unwrap(),
            ]))
            .unwrap(),
        )
        .unwrap();
        for algo in ["lssvm", "smo", "smo-dense", "thunder"] {
            let model = dir.join(format!("{algo}.model"));
            let train = parse_train(&sv(&[
                "-a",
                algo,
                data.to_str().unwrap(),
                model.to_str().unwrap(),
            ]))
            .unwrap();
            let msg = run_train(&train).unwrap();
            assert!(model.exists(), "{algo}: {msg}");
            let loaded = SvmModel::<f64>::load(&model).unwrap();
            assert!(loaded.total_sv() > 0);
        }
    }

    #[test]
    fn train_on_simulated_gpu_reports_device() {
        let dir = tmpdir("gpu");
        let data = dir.join("train.dat");
        run_generate(
            &parse_generate(&sv(&[
                "--points",
                "40",
                "--features",
                "8",
                "--seed",
                "9",
                "-o",
                data.to_str().unwrap(),
            ]))
            .unwrap(),
        )
        .unwrap();
        let train = parse_train(&sv(&[
            "--backend",
            "cuda",
            "-n",
            "2",
            data.to_str().unwrap(),
        ]))
        .unwrap();
        let msg = run_train(&train).unwrap();
        assert!(msg.contains("simulated device time"), "{msg}");
        assert!(msg.contains("2x"), "{msg}");
    }

    #[test]
    fn scale_fit_save_restore() {
        let dir = tmpdir("scale");
        let data = dir.join("d.dat");
        std::fs::write(&data, "1 1:0 2:10\n-1 1:4 2:20\n").unwrap();
        let ranges = dir.join("r.txt");

        let scaled = run_scale(
            &parse_scale(&sv(&[
                "-s",
                ranges.to_str().unwrap(),
                data.to_str().unwrap(),
            ]))
            .unwrap(),
        )
        .unwrap();
        assert!(scaled.contains("-1") && ranges.exists(), "{scaled}");

        // restoring on the same data gives identical output
        let restored = run_scale(
            &parse_scale(&sv(&[
                "-r",
                ranges.to_str().unwrap(),
                data.to_str().unwrap(),
            ]))
            .unwrap(),
        )
        .unwrap();
        assert_eq!(scaled, restored);
    }

    #[test]
    fn generate_sat6_shape() {
        let dir = tmpdir("sat6");
        let out = dir.join("sat.dat");
        let msg = run_generate(
            &parse_generate(&sv(&[
                "--sat6",
                "--points",
                "6",
                "-o",
                out.to_str().unwrap(),
            ]))
            .unwrap(),
        )
        .unwrap();
        assert!(msg.contains("3136 features"), "{msg}");
    }

    #[test]
    fn regression_train_and_predict() {
        let dir = tmpdir("svr");
        let data = dir.join("sinc.dat");
        let model = dir.join("sinc.model");
        let preds = dir.join("preds.txt");
        // write a tiny sinc regression file
        let sinc = plssvm_data::synthetic::generate_sinc::<f64>(
            &plssvm_data::synthetic::SincConfig::new(80, 1).with_noise(0.0),
        )
        .unwrap();
        std::fs::write(
            &data,
            plssvm_data::libsvm::write_libsvm_regression_string(&sinc, false),
        )
        .unwrap();

        let train = parse_train(&sv(&[
            "-s",
            "3",
            "-t",
            "2",
            "-g",
            "0.5",
            "-c",
            "100",
            "-e",
            "1e-8",
            data.to_str().unwrap(),
            model.to_str().unwrap(),
        ]))
        .unwrap();
        let msg = run_train(&train).unwrap();
        assert!(msg.contains("LS-SVR"), "{msg}");
        assert!(model.exists());

        let predict = parse_predict(&sv(&[
            data.to_str().unwrap(),
            model.to_str().unwrap(),
            preds.to_str().unwrap(),
        ]))
        .unwrap();
        let msg = run_predict(&predict).unwrap();
        assert!(msg.contains("Mean squared error"), "{msg}");
        let mse: f64 = msg
            .split('=')
            .nth(1)
            .unwrap()
            .split_whitespace()
            .next()
            .unwrap()
            .parse()
            .unwrap();
        assert!(mse < 1e-4, "{msg}");
        assert_eq!(std::fs::read_to_string(&preds).unwrap().lines().count(), 80);
    }

    #[test]
    fn multiclass_train_and_predict() {
        let dir = tmpdir("mc");
        let data = dir.join("blobs.dat");
        let model = dir.join("blobs.model");
        let preds = dir.join("preds.txt");
        let blobs = plssvm_data::synthetic::generate_blobs::<f64>(
            &plssvm_data::synthetic::BlobsConfig::new(90, 4, 3, 5).with_separation(6.0),
        )
        .unwrap();
        let mut content = String::new();
        for p in 0..blobs.points() {
            content.push_str(&blobs.labels[p].to_string());
            for f in 0..blobs.features() {
                content.push_str(&format!(" {}:{}", f + 1, blobs.x.get(p, f)));
            }
            content.push('\n');
        }
        std::fs::write(&data, content).unwrap();

        let train = parse_train(&sv(&[
            "-e",
            "1e-8",
            data.to_str().unwrap(),
            model.to_str().unwrap(),
        ]))
        .unwrap();
        let msg = run_train(&train).unwrap();
        assert!(msg.contains("multi-class"), "{msg}");
        assert!(msg.contains("3 binary models"), "{msg}");

        let predict = parse_predict(&sv(&[
            data.to_str().unwrap(),
            model.to_str().unwrap(),
            preds.to_str().unwrap(),
        ]))
        .unwrap();
        let msg = run_predict(&predict).unwrap();
        assert!(msg.contains("multi-class classification"), "{msg}");
        let acc: f64 = msg
            .split('=')
            .nth(1)
            .unwrap()
            .trim()
            .split('%')
            .next()
            .unwrap()
            .parse()
            .unwrap();
        assert!(acc >= 95.0, "{msg}");
    }

    #[test]
    fn cross_validation_mode() {
        let dir = tmpdir("cv");
        let data = dir.join("train.dat");
        run_generate(
            &parse_generate(&sv(&[
                "--points",
                "80",
                "--features",
                "4",
                "--seed",
                "8",
                "--sep",
                "4.0",
                "--flip",
                "0.0",
                "-o",
                data.to_str().unwrap(),
            ]))
            .unwrap(),
        )
        .unwrap();
        let train = parse_train(&sv(&["-v", "5", "-e", "1e-6", data.to_str().unwrap()])).unwrap();
        let msg = run_train(&train).unwrap();
        assert!(msg.contains("Cross Validation Accuracy"), "{msg}");
        // no model file in CV mode
        assert!(!dir.join("train.dat.model").exists());
    }

    #[test]
    fn sigmoid_kernel_via_cli() {
        let dir = tmpdir("sigmoid");
        let data = dir.join("train.dat");
        run_generate(
            &parse_generate(&sv(&[
                "--points",
                "60",
                "--features",
                "4",
                "--seed",
                "2",
                "--sep",
                "4.0",
                "--flip",
                "0.0",
                "-o",
                data.to_str().unwrap(),
            ]))
            .unwrap(),
        )
        .unwrap();
        // sigmoid works cleanly with SMO (no PSD requirement)
        let train = parse_train(&sv(&[
            "-t",
            "3",
            "-g",
            "0.1",
            "-a",
            "smo",
            data.to_str().unwrap(),
        ]))
        .unwrap();
        let msg = run_train(&train).unwrap();
        assert!(msg.contains("SMO"), "{msg}");
    }

    #[test]
    fn arff_train_and_predict() {
        let dir = tmpdir("arff");
        let data = dir.join("train.arff");
        let model = dir.join("train.model");
        let preds = dir.join("preds.txt");
        // generate directly in ARFF format
        run_generate(
            &parse_generate(&sv(&[
                "--points",
                "60",
                "--features",
                "4",
                "--seed",
                "6",
                "--sep",
                "4.0",
                "--flip",
                "0.0",
                "--format",
                "arff",
                "-o",
                data.to_str().unwrap(),
            ]))
            .unwrap(),
        )
        .unwrap();
        let content = std::fs::read_to_string(&data).unwrap();
        assert!(content.starts_with("@RELATION"), "{content}");

        let train = parse_train(&sv(&[
            "-e",
            "1e-8",
            data.to_str().unwrap(),
            model.to_str().unwrap(),
        ]))
        .unwrap();
        let msg = run_train(&train).unwrap();
        assert!(msg.contains("PLSSVM"), "{msg}");

        let predict = parse_predict(&sv(&[
            data.to_str().unwrap(),
            model.to_str().unwrap(),
            preds.to_str().unwrap(),
        ]))
        .unwrap();
        let msg = run_predict(&predict).unwrap();
        let acc: f64 = msg
            .split('=')
            .nth(1)
            .unwrap()
            .trim()
            .split('%')
            .next()
            .unwrap()
            .parse()
            .unwrap();
        assert!(acc >= 97.0, "{msg}");
    }

    #[test]
    fn metrics_out_emits_documented_json_lines_and_predict_round_trips() {
        let dir = tmpdir("metrics");
        let data = dir.join("train.dat");
        run_generate(
            &parse_generate(&sv(&[
                "--points",
                "60",
                "--features",
                "5",
                "--seed",
                "11",
                "--sep",
                "4.0",
                "--flip",
                "0.0",
                "-o",
                data.to_str().unwrap(),
            ]))
            .unwrap(),
        )
        .unwrap();

        // plain training: the reference model and accuracy
        let plain_model = dir.join("plain.model");
        let train = parse_train(&sv(&[
            "-e",
            "1e-8",
            data.to_str().unwrap(),
            plain_model.to_str().unwrap(),
        ]))
        .unwrap();
        let plain_msg = run_train(&train).unwrap();

        // instrumented training: --metrics-out writes JSON lines
        let traced_model = dir.join("traced.model");
        let metrics = dir.join("train.jsonl");
        let train = parse_train(&sv(&[
            "-e",
            "1e-8",
            "--metrics-out",
            metrics.to_str().unwrap(),
            data.to_str().unwrap(),
            traced_model.to_str().unwrap(),
        ]))
        .unwrap();
        let traced_msg = run_train(&train).unwrap();

        // golden shape: one JSON object per line, with the documented keys
        let json = std::fs::read_to_string(&metrics).unwrap();
        assert!(!json.is_empty());
        for line in json.lines() {
            assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
            assert!(line.contains("\"type\":\""), "{line}");
        }
        for key in [
            "\"type\":\"cg_start\"",
            "\"type\":\"cg_iteration\"",
            "\"type\":\"kernel\"",
            "\"type\":\"span\"",
            "\"name\":\"q_kernel\"",
            "\"name\":\"svm_kernel\"",
            "\"name\":\"w_kernel\"",
            "\"path\":\"train/cg\"",
            "\"residual_norm\":",
            "\"flops\":",
        ] {
            assert!(json.contains(key), "missing {key} in:\n{json}");
        }

        // telemetry must not change the trained model: identical
        // predictions and an identical accuracy report
        assert_eq!(
            std::fs::read_to_string(&plain_model).unwrap(),
            std::fs::read_to_string(&traced_model).unwrap()
        );
        let plain_acc = plain_msg.lines().last().unwrap().to_owned();
        let traced_acc = traced_msg.lines().last().unwrap().to_owned();
        assert_eq!(plain_acc, traced_acc);
        let preds_a = dir.join("a.txt");
        let preds_b = dir.join("b.txt");
        let pa = run_predict(
            &parse_predict(&sv(&[
                data.to_str().unwrap(),
                plain_model.to_str().unwrap(),
                preds_a.to_str().unwrap(),
            ]))
            .unwrap(),
        )
        .unwrap();
        let pb = run_predict(
            &parse_predict(&sv(&[
                data.to_str().unwrap(),
                traced_model.to_str().unwrap(),
                preds_b.to_str().unwrap(),
            ]))
            .unwrap(),
        )
        .unwrap();
        assert_eq!(pa, pb);
        assert_eq!(
            std::fs::read_to_string(&preds_a).unwrap(),
            std::fs::read_to_string(&preds_b).unwrap()
        );
    }

    #[test]
    fn quiet_and_verbose_modes() {
        let dir = tmpdir("verbosity");
        let data = dir.join("train.dat");
        run_generate(
            &parse_generate(&sv(&[
                "--points",
                "40",
                "--features",
                "4",
                "--seed",
                "13",
                "--sep",
                "4.0",
                "--flip",
                "0.0",
                "-o",
                data.to_str().unwrap(),
            ]))
            .unwrap(),
        )
        .unwrap();
        let model = dir.join("q.model");
        let train = parse_train(&sv(&[
            "-q",
            data.to_str().unwrap(),
            model.to_str().unwrap(),
        ]))
        .unwrap();
        assert_eq!(run_train(&train).unwrap(), "");
        assert!(model.exists());

        let train = parse_train(&sv(&[
            "--verbose",
            data.to_str().unwrap(),
            model.to_str().unwrap(),
        ]))
        .unwrap();
        let msg = run_train(&train).unwrap();
        assert!(msg.contains("telemetry:"), "{msg}");
        assert!(msg.contains("svm_kernel"), "{msg}");
        assert!(msg.contains("training accuracy"), "{msg}");

        // predict: --metrics-out writes a span line, -q silences the report
        let preds = dir.join("p.txt");
        let pm = dir.join("predict.jsonl");
        let predict = parse_predict(&sv(&[
            "--metrics-out",
            pm.to_str().unwrap(),
            "-q",
            data.to_str().unwrap(),
            model.to_str().unwrap(),
            preds.to_str().unwrap(),
        ]))
        .unwrap();
        assert_eq!(run_predict(&predict).unwrap(), "");
        let json = std::fs::read_to_string(&pm).unwrap();
        assert!(json.contains("\"type\":\"span\""), "{json}");
        assert!(json.contains("\"path\":\"predict\""), "{json}");
    }

    #[test]
    fn regression_metrics_out() {
        let dir = tmpdir("svr_metrics");
        let data = dir.join("sinc.dat");
        let model = dir.join("sinc.model");
        let metrics = dir.join("svr.jsonl");
        let sinc = plssvm_data::synthetic::generate_sinc::<f64>(
            &plssvm_data::synthetic::SincConfig::new(50, 1).with_noise(0.0),
        )
        .unwrap();
        std::fs::write(
            &data,
            plssvm_data::libsvm::write_libsvm_regression_string(&sinc, false),
        )
        .unwrap();
        let train = parse_train(&sv(&[
            "-s",
            "3",
            "-t",
            "2",
            "-g",
            "0.5",
            "-c",
            "100",
            "--metrics-out",
            metrics.to_str().unwrap(),
            data.to_str().unwrap(),
            model.to_str().unwrap(),
        ]))
        .unwrap();
        let msg = run_train(&train).unwrap();
        assert!(msg.contains("LS-SVR"), "{msg}");
        let json = std::fs::read_to_string(&metrics).unwrap();
        assert!(json.contains("\"type\":\"cg_iteration\""), "{json}");
        assert!(json.contains("\"name\":\"svm_kernel\""), "{json}");
    }

    #[test]
    fn fault_injected_training_recovers_and_logs_recovery_telemetry() {
        let dir = tmpdir("fault");
        let data = dir.join("train.dat");
        run_generate(
            &parse_generate(&sv(&[
                "--points",
                "60",
                "--features",
                "8",
                "--seed",
                "17",
                "--sep",
                "4.0",
                "--flip",
                "0.0",
                "-o",
                data.to_str().unwrap(),
            ]))
            .unwrap(),
        )
        .unwrap();
        let model = dir.join("fault.model");
        let metrics = dir.join("fault.jsonl");
        let train = parse_train(&sv(&[
            "--backend",
            "cuda",
            "-n",
            "4",
            "--fault-plan",
            "fail:1@4;transient:2@0x2",
            "--checkpoint-every",
            "4",
            "-e",
            "1e-8",
            "--metrics-out",
            metrics.to_str().unwrap(),
            data.to_str().unwrap(),
            model.to_str().unwrap(),
        ]))
        .unwrap();
        let msg = run_train(&train).unwrap();
        assert!(msg.contains("converged: true"), "{msg}");
        assert!(model.exists());
        let json = std::fs::read_to_string(&metrics).unwrap();
        for key in [
            "\"type\":\"recovery\"",
            "\"kind\":\"failover\"",
            "\"kind\":\"retry\"",
            "\"kind\":\"checkpoint\"",
        ] {
            assert!(json.contains(key), "missing {key} in:\n{json}");
        }
        // the recovered model still predicts the training set well
        let preds = dir.join("p.txt");
        let pm = run_predict(
            &parse_predict(&sv(&[
                data.to_str().unwrap(),
                model.to_str().unwrap(),
                preds.to_str().unwrap(),
            ]))
            .unwrap(),
        )
        .unwrap();
        let acc: f64 = pm
            .split('=')
            .nth(1)
            .unwrap()
            .trim()
            .split('%')
            .next()
            .unwrap()
            .parse()
            .unwrap();
        assert!(acc >= 97.0, "{pm}");

        // fault plans are rejected for solvers without a recovery driver
        let bad = parse_train(&sv(&[
            "-a",
            "smo",
            "--backend",
            "cuda",
            "--fault-plan",
            "fail:0@1",
            data.to_str().unwrap(),
        ]))
        .unwrap();
        assert!(run_train(&bad).is_err());
    }

    #[test]
    fn on_nonconverged_policy_gates_the_model_file() {
        let dir = tmpdir("nonconverged");
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        let data = dir.join("train.dat");
        run_generate(
            &parse_generate(&sv(&[
                "--points",
                "50",
                "--features",
                "4",
                "--seed",
                "23",
                "--sep",
                "4.0",
                "--flip",
                "0.0",
                "-o",
                data.to_str().unwrap(),
            ]))
            .unwrap(),
        )
        .unwrap();

        // epsilon 1e-16 sits below the f64 noise floor: the solve can
        // classify (stalled / iteration budget) but never converge
        let model = dir.join("refused.model");
        let train = parse_train(&sv(&[
            "-c",
            "1e12",
            "-e",
            "1e-16",
            "--on-nonconverged",
            "error",
            data.to_str().unwrap(),
            model.to_str().unwrap(),
        ]))
        .unwrap();
        let err = run_train(&train).unwrap_err();
        let svm_err = err
            .downcast_ref::<SvmError>()
            .expect("NonConverged must surface as SvmError for the exit-code mapping");
        assert!(
            matches!(svm_err, SvmError::NonConverged { .. }),
            "{svm_err}"
        );
        assert!(!model.exists(), "error mode must refuse the model file");

        // warn (the default) writes the model and flags it in the summary
        let model = dir.join("warned.model");
        let train = parse_train(&sv(&[
            "-c",
            "1e12",
            "-e",
            "1e-16",
            data.to_str().unwrap(),
            model.to_str().unwrap(),
        ]))
        .unwrap();
        let msg = run_train(&train).unwrap();
        assert!(msg.contains("WARNING: solver did not converge"), "{msg}");
        assert!(msg.contains("converged: false"), "{msg}");
        assert!(model.exists());

        // accept stays silent about it
        let model = dir.join("accepted.model");
        let train = parse_train(&sv(&[
            "-c",
            "1e12",
            "-e",
            "1e-16",
            "--on-nonconverged",
            "accept",
            data.to_str().unwrap(),
            model.to_str().unwrap(),
        ]))
        .unwrap();
        let msg = run_train(&train).unwrap();
        assert!(!msg.contains("WARNING"), "{msg}");
        assert!(model.exists());

        // a converged solve reports its outcome in the summary
        let model = dir.join("converged.model");
        let train = parse_train(&sv(&[
            "-e",
            "1e-8",
            "--on-nonconverged",
            "error",
            data.to_str().unwrap(),
            model.to_str().unwrap(),
        ]))
        .unwrap();
        let msg = run_train(&train).unwrap();
        assert!(msg.contains("solver outcome: converged"), "{msg}");
        assert!(model.exists());
    }

    #[test]
    fn checkpoint_dir_train_and_resume_round_trip() {
        let dir = tmpdir("ckpt_cli");
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        let data = dir.join("train.dat");
        run_generate(
            &parse_generate(&sv(&[
                "--points",
                "80",
                "--features",
                "6",
                "--seed",
                "29",
                "--sep",
                "4.0",
                "--flip",
                "0.0",
                "-o",
                data.to_str().unwrap(),
            ]))
            .unwrap(),
        )
        .unwrap();

        // reference: no journal at all
        let reference = dir.join("reference.model");
        let train = parse_train(&sv(&[
            "-e",
            "1e-10",
            data.to_str().unwrap(),
            reference.to_str().unwrap(),
        ]))
        .unwrap();
        run_train(&train).unwrap();

        // journaled run: byte-identical model, generations on disk
        let journal_dir = dir.join("journal");
        let journaled = dir.join("journaled.model");
        let train = parse_train(&sv(&[
            "-e",
            "1e-10",
            "--checkpoint-dir",
            journal_dir.to_str().unwrap(),
            "--checkpoint-every",
            "5",
            data.to_str().unwrap(),
            journaled.to_str().unwrap(),
        ]))
        .unwrap();
        run_train(&train).unwrap();
        assert_eq!(
            std::fs::read_to_string(&reference).unwrap(),
            std::fs::read_to_string(&journaled).unwrap(),
            "journaling must not perturb the model"
        );
        let journal = CheckpointJournal::open(&journal_dir, 4).unwrap();
        assert!(!journal.generations().unwrap().is_empty());

        // resume from the populated journal: byte-identical model again
        let resumed = dir.join("resumed.model");
        let train = parse_train(&sv(&[
            "-e",
            "1e-10",
            "--checkpoint-dir",
            journal_dir.to_str().unwrap(),
            "--checkpoint-every",
            "5",
            "--resume",
            data.to_str().unwrap(),
            resumed.to_str().unwrap(),
        ]))
        .unwrap();
        run_train(&train).unwrap();
        assert_eq!(
            std::fs::read_to_string(&reference).unwrap(),
            std::fs::read_to_string(&resumed).unwrap(),
            "resume must reproduce the reference model byte for byte"
        );

        // editing the data file changes the content salt: the journal is
        // rejected as belonging to a different run
        let mut content = std::fs::read_to_string(&data).unwrap();
        content.push_str("1 1:0.5 2:0.25 3:0 4:0 5:0 6:0\n");
        std::fs::write(&data, content).unwrap();
        let err = run_train(&train).unwrap_err();
        assert!(err.to_string().contains("checkpoint"), "{err}");
    }

    #[test]
    fn checkpoint_dir_is_refused_outside_the_lssvm_solver() {
        let dir = tmpdir("ckpt_refused");
        let data = dir.join("train.dat");
        run_generate(
            &parse_generate(&sv(&[
                "--points",
                "40",
                "--features",
                "4",
                "--seed",
                "31",
                "-o",
                data.to_str().unwrap(),
            ]))
            .unwrap(),
        )
        .unwrap();
        let journal_dir = dir.join("journal");
        let smo = parse_train(&sv(&[
            "-a",
            "smo",
            "--checkpoint-dir",
            journal_dir.to_str().unwrap(),
            data.to_str().unwrap(),
        ]))
        .unwrap();
        assert!(run_train(&smo).is_err());
        let cv = parse_train(&sv(&[
            "-v",
            "3",
            "--checkpoint-dir",
            journal_dir.to_str().unwrap(),
            data.to_str().unwrap(),
        ]))
        .unwrap();
        assert!(run_train(&cv).is_err());
    }

    #[test]
    fn multiclass_checkpoint_uses_per_task_journals() {
        let dir = tmpdir("ckpt_mc");
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        let data = dir.join("blobs.dat");
        let blobs = plssvm_data::synthetic::generate_blobs::<f64>(
            &plssvm_data::synthetic::BlobsConfig::new(90, 4, 3, 5).with_separation(6.0),
        )
        .unwrap();
        let mut content = String::new();
        for p in 0..blobs.points() {
            content.push_str(&blobs.labels[p].to_string());
            for f in 0..blobs.features() {
                content.push_str(&format!(" {}:{}", f + 1, blobs.x.get(p, f)));
            }
            content.push('\n');
        }
        std::fs::write(&data, content).unwrap();

        let journal_dir = dir.join("journal");
        let reference = dir.join("reference.model");
        let train = parse_train(&sv(&[
            "-e",
            "1e-8",
            data.to_str().unwrap(),
            reference.to_str().unwrap(),
        ]))
        .unwrap();
        run_train(&train).unwrap();

        let journaled = dir.join("journaled.model");
        let train = parse_train(&sv(&[
            "-e",
            "1e-8",
            "--checkpoint-dir",
            journal_dir.to_str().unwrap(),
            "--checkpoint-every",
            "3",
            data.to_str().unwrap(),
            journaled.to_str().unwrap(),
        ]))
        .unwrap();
        run_train(&train).unwrap();
        assert_eq!(
            std::fs::read_to_string(&reference).unwrap(),
            std::fs::read_to_string(&journaled).unwrap()
        );
        // one sub-journal per binary subproblem (3 classes OvO -> 3 pairs)
        for task in 0..3 {
            assert!(
                journal_dir.join(format!("task-{task:03}")).is_dir(),
                "missing sub-journal for task {task}"
            );
        }

        let resumed = dir.join("resumed.model");
        let train = parse_train(&sv(&[
            "-e",
            "1e-8",
            "--checkpoint-dir",
            journal_dir.to_str().unwrap(),
            "--checkpoint-every",
            "3",
            "--resume",
            data.to_str().unwrap(),
            resumed.to_str().unwrap(),
        ]))
        .unwrap();
        run_train(&train).unwrap();
        assert_eq!(
            std::fs::read_to_string(&reference).unwrap(),
            std::fs::read_to_string(&resumed).unwrap()
        );
    }

    #[test]
    fn lowrank_solver_trains_and_predicts_like_exact() {
        let dir = tmpdir("lowrank");
        let data = dir.join("train.dat");
        run_generate(
            &parse_generate(&sv(&[
                "--points",
                "120",
                "--features",
                "6",
                "--seed",
                "37",
                "--sep",
                "4.0",
                "--flip",
                "0.0",
                "-o",
                data.to_str().unwrap(),
            ]))
            .unwrap(),
        )
        .unwrap();

        let exact_model = dir.join("exact.model");
        let train = parse_train(&sv(&[
            "-e",
            "1e-8",
            data.to_str().unwrap(),
            exact_model.to_str().unwrap(),
        ]))
        .unwrap();
        run_train(&train).unwrap();

        let lr_model = dir.join("lowrank.model");
        let train = parse_train(&sv(&[
            "-e",
            "1e-8",
            "--solver",
            "lowrank",
            "--rank",
            "32",
            data.to_str().unwrap(),
            lr_model.to_str().unwrap(),
        ]))
        .unwrap();
        let msg = run_train(&train).unwrap();
        assert!(
            msg.contains("solver: lowrank rank=32 seed=42 strategy=uniform"),
            "{msg}"
        );
        assert!(msg.contains("converged: true"), "{msg}");

        // the low-rank model records its provenance in the model file
        let content = std::fs::read_to_string(&lr_model).unwrap();
        assert!(content.contains("solver lowrank rank=32"), "{content}");
        // ... while the exact model stays LIBSVM-plain
        assert!(!std::fs::read_to_string(&exact_model)
            .unwrap()
            .contains("solver "));

        // both models classify the training set equally well
        for model in [&exact_model, &lr_model] {
            let preds = dir.join("p.txt");
            let pm = run_predict(
                &parse_predict(&sv(&[
                    data.to_str().unwrap(),
                    model.to_str().unwrap(),
                    preds.to_str().unwrap(),
                ]))
                .unwrap(),
            )
            .unwrap();
            let acc: f64 = pm
                .split('=')
                .nth(1)
                .unwrap()
                .trim()
                .split('%')
                .next()
                .unwrap()
                .parse()
                .unwrap();
            assert!(acc >= 97.0, "{pm}");
        }
    }

    #[test]
    fn io_faults_transient_fault_retries_to_an_identical_model() {
        let dir = tmpdir("io_faults_transient");
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        let data = dir.join("train.dat");
        run_generate(
            &parse_generate(&sv(&[
                "--points",
                "50",
                "--features",
                "4",
                "--seed",
                "41",
                "--sep",
                "4.0",
                "--flip",
                "0.0",
                "-o",
                data.to_str().unwrap(),
            ]))
            .unwrap(),
        )
        .unwrap();

        let reference = dir.join("reference.model");
        let train = parse_train(&sv(&[
            "-e",
            "1e-8",
            data.to_str().unwrap(),
            reference.to_str().unwrap(),
        ]))
        .unwrap();
        run_train(&train).unwrap();

        // a transient EIO on the first model-write operation is retried
        // away; the written model is byte-identical to the fault-free one
        let faulted = dir.join("faulted.model");
        let train = parse_train(&sv(&[
            "-e",
            "1e-8",
            "--io-faults",
            "eio:write@0~model",
            data.to_str().unwrap(),
            faulted.to_str().unwrap(),
        ]))
        .unwrap();
        run_train(&train).unwrap();
        assert_eq!(
            std::fs::read_to_string(&reference).unwrap(),
            std::fs::read_to_string(&faulted).unwrap(),
            "a retried transient fault must not perturb the artifact"
        );
    }

    #[test]
    fn io_faults_persistent_model_write_fault_is_a_storage_error() {
        let dir = tmpdir("io_faults_persistent");
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        let data = dir.join("train.dat");
        run_generate(
            &parse_generate(&sv(&[
                "--points",
                "50",
                "--features",
                "4",
                "--seed",
                "43",
                "--sep",
                "4.0",
                "--flip",
                "0.0",
                "-o",
                data.to_str().unwrap(),
            ]))
            .unwrap(),
        )
        .unwrap();
        let model = dir.join("refused.model");
        let train = parse_train(&sv(&[
            "-e",
            "1e-8",
            "--io-faults",
            "enospc:write@0~model!",
            data.to_str().unwrap(),
            model.to_str().unwrap(),
        ]))
        .unwrap();
        let err = run_train(&train).unwrap_err();
        err.downcast_ref::<StorageError>()
            .expect("exhausted retries must surface as StorageError (exit code 4)");
        assert!(
            !model.exists(),
            "a failed atomic write must not leave a model file"
        );
    }

    #[test]
    fn io_faults_dead_journal_degrades_or_refuses_by_policy() {
        let dir = tmpdir("io_faults_degraded");
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        let data = dir.join("train.dat");
        run_generate(
            &parse_generate(&sv(&[
                "--points",
                "60",
                "--features",
                "5",
                "--seed",
                "47",
                "--sep",
                "4.0",
                "--flip",
                "0.0",
                "-o",
                data.to_str().unwrap(),
            ]))
            .unwrap(),
        )
        .unwrap();

        let reference = dir.join("reference.model");
        let train = parse_train(&sv(&[
            "-e",
            "1e-10",
            data.to_str().unwrap(),
            reference.to_str().unwrap(),
        ]))
        .unwrap();
        run_train(&train).unwrap();

        // every journal write fails persistently: checkpointing degrades,
        // training continues, and the default policy warns but still
        // writes a byte-identical model
        let journal_dir = dir.join("journal");
        let model = dir.join("degraded.model");
        let train = parse_train(&sv(&[
            "-e",
            "1e-10",
            "--checkpoint-dir",
            journal_dir.to_str().unwrap(),
            "--checkpoint-every",
            "3",
            "--io-faults",
            "eio:write@0~gen-!",
            data.to_str().unwrap(),
            model.to_str().unwrap(),
        ]))
        .unwrap();
        let msg = run_train(&train).unwrap();
        assert!(
            msg.contains("WARNING: checkpoint journal degraded"),
            "{msg}"
        );
        assert_eq!(
            std::fs::read_to_string(&reference).unwrap(),
            std::fs::read_to_string(&model).unwrap(),
            "a dead journal must not perturb the model"
        );

        // --on-io-degraded error refuses the model instead
        let journal_dir = dir.join("journal_err");
        let model = dir.join("refused.model");
        let train = parse_train(&sv(&[
            "-e",
            "1e-10",
            "--checkpoint-dir",
            journal_dir.to_str().unwrap(),
            "--checkpoint-every",
            "3",
            "--io-faults",
            "eio:write@0~gen-!",
            "--on-io-degraded",
            "error",
            data.to_str().unwrap(),
            model.to_str().unwrap(),
        ]))
        .unwrap();
        let err = run_train(&train).unwrap_err();
        err.downcast_ref::<StorageError>()
            .expect("degraded journal under error policy must be a StorageError");
        assert!(!model.exists());
    }

    #[test]
    fn missing_files_error_cleanly() {
        let train = parse_train(&sv(&["/nonexistent/file.dat"])).unwrap();
        assert!(run_train(&train).is_err());
        let predict = parse_predict(&sv(&["/no/t.dat", "/no/m.model", "/no/o.txt"])).unwrap();
        assert!(run_predict(&predict).is_err());
        let scale = parse_scale(&sv(&["/no/d.dat"])).unwrap();
        assert!(run_scale(&scale).is_err());
    }
}
