//! `svm-train` — LIBSVM-compatible training front end.

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "-h" || a == "--help") || args.is_empty() {
        eprintln!(
            "usage: svm-train [options] training_set_file [model_file]\n\
             options:\n\
             \x20 -s svm_type    : 0 C-SVC classification (default), 3 epsilon-SVR regression\n\
             \x20 -t kernel_type : 0 linear (default), 1 polynomial, 2 rbf, 3 sigmoid\n\
             \x20 -d degree      : polynomial degree (default 3)\n\
             \x20 -g gamma       : kernel gamma (default 1/num_features)\n\
             \x20 -r coef0       : polynomial coef0 (default 0)\n\
             \x20 -c cost        : C parameter (default 1)\n\
             \x20 -e epsilon     : termination criterion (default 0.001)\n\
             \x20 -a algorithm   : lssvm (default) | smo | smo-dense | thunder\n\
             \x20 -v folds       : k-fold cross validation (no model file written)\n\
             \x20 -wLABEL weight : per-class weight on C (e.g. -w1 5 -w-1 1)\n\
             \x20 -h 0|1         : shrinking heuristic for SMO algorithms (default 1)\n\
             \x20 -m megabytes   : SMO kernel cache size (default 100)\n\
             \x20 --multiclass s : ovo (default) | ovr for files with >2 classes\n\
             \x20 -b backend     : serial | openmp (default) | sparse | cuda | opencl | sycl | dpcpp\n\
             \x20 -n devices     : simulated device count (default 1)\n\
             \x20 -T threads     : openmp thread count (default all cores)\n\
             \x20 --cpu-tile t   : openmp cache tile, 'R', 'RxC' or 'RxC,nosym' (default 64x64)\n\
             \x20 --hardware hw  : a100 (default) | v100 | p100 | gtx1080ti | rtx3080 | radeonvii | p630\n\
             \x20 --split mode   : features (default, linear only) | rows (any kernel)\n\
             \x20 --metrics-out f: write solver telemetry as JSON lines (LS-SVM/LS-SVR only)\n\
             \x20 --fault-plan p : inject device faults, e.g. 'fail:1@4;transient:0@2x2;slow:2@0x4'\n\
             \x20                  or 'seed:N' for a random plan (simulated backends only)\n\
             \x20 --checkpoint-every k : snapshot CG state every k iterations (LS-SVM/LS-SVR only;\n\
             \x20                  defaults to 50 when --checkpoint-dir is set)\n\
             \x20 --checkpoint-dir d   : durable on-disk checkpoint journal; an interrupted run\n\
             \x20                  can be continued with --resume (LS-SVM/LS-SVR only)\n\
             \x20 --resume       : continue from the newest loadable checkpoint in --checkpoint-dir\n\
             \x20 --solver s     : exact (default) | lowrank randomized Nystrom solver (lssvm only,\n\
             \x20                  incompatible with --resume; requires --rank)\n\
             \x20 --rank k       : number of Nystrom landmarks for --solver lowrank (clamped to the\n\
             \x20                  system size)\n\
             \x20 --lowrank-seed n     : landmark sampling seed (default 42, deterministic)\n\
             \x20 --landmarks s  : uniform (default) | leverage landmark selection strategy\n\
             \x20 --on-nonconverged a  : error | warn (default) | accept a solve that missed epsilon\n\
             \x20 --io-faults p  : inject deterministic storage faults into every durable write\n\
             \x20                  (model, checkpoint journal, metrics), e.g.\n\
             \x20                  'enospc:write@3;eio:sync@1~journal!' or 'seed:N'\n\
             \x20 --on-io-degraded a   : error | warn (default) when the checkpoint journal\n\
             \x20                  degrades mid-run (persistent write failures)\n\
             \x20 -q, --quiet    : suppress the training summary\n\
             \x20 --verbose      : append per-kernel telemetry counters to the summary\n\
             input files: LIBSVM format, or ARFF when the extension is .arff\n\
             exit codes: 0 success, 1 runtime error, 2 usage error,\n\
             \x20           3 non-converged under --on-nonconverged error,\n\
             \x20           4 storage failure (final write failed after retries, or\n\
             \x20           degraded journal under --on-io-degraded error)"
        );
        return ExitCode::from(2);
    }
    let parsed = match plssvm_cli::args::parse_train(&args) {
        Ok(parsed) => parsed,
        Err(e) => {
            eprintln!("svm-train: {e}");
            return ExitCode::from(2);
        }
    };
    match plssvm_cli::commands::run_train(&parsed) {
        Ok(summary) => {
            print!("{summary}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("svm-train: {e}");
            let non_converged = e
                .downcast_ref::<plssvm_core::SvmError>()
                .is_some_and(|s| matches!(s, plssvm_core::SvmError::NonConverged { .. }));
            if non_converged {
                ExitCode::from(3)
            } else if e
                .downcast_ref::<plssvm_cli::commands::StorageError>()
                .is_some()
            {
                ExitCode::from(4)
            } else {
                ExitCode::FAILURE
            }
        }
    }
}
