//! `svm-scale` — LIBSVM-compatible feature scaling (scaled data on stdout).

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match plssvm_cli::args::parse_scale(&args)
        .map_err(|e| e.to_string())
        .and_then(|a| plssvm_cli::commands::run_scale(&a).map_err(|e| e.to_string()))
    {
        Ok(scaled) => {
            print!("{scaled}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("svm-scale: {e}\nusage: svm-scale [-l lower] [-u upper] [-s save_file | -r restore_file] data_file");
            ExitCode::FAILURE
        }
    }
}
