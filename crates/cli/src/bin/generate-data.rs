//! `generate-data` — synthetic data set generator (the paper's
//! `generate_data.py`): the "planes" problem and a SAT-6-like image set.

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match plssvm_cli::args::parse_generate(&args)
        .map_err(|e| e.to_string())
        .and_then(|a| plssvm_cli::commands::run_generate(&a).map_err(|e| e.to_string()))
    {
        Ok(summary) => {
            print!("{summary}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("generate-data: {e}\nusage: generate-data --points N [--features D] [--seed S] [--sep X] [--flip F] [--sat6] -o FILE");
            ExitCode::FAILURE
        }
    }
}
