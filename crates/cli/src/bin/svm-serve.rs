//! `svm-serve` — long-lived batched inference server.
//!
//! Serves any model `svm-train` can write (binary, multiclass, SVR) over
//! newline-delimited JSON or LIBSVM-format request lines, coalescing
//! concurrent requests into micro-batches. Reads stdin by default, or
//! listens on TCP with `--listen host:port`.

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let parsed = match plssvm_cli::args::parse_serve(&args) {
        Ok(parsed) => parsed,
        Err(e) => {
            eprintln!(
                "svm-serve: {e}\n\
                 usage: svm-serve [options] model_file\n\
                 options: --stdin (default) | --listen host:port\n\
                 \x20        --max-batch n (64) | --max-wait-us n (2000)\n\
                 \x20        --reload-poll-ms n (200, 0 = off)\n\
                 \x20        --metrics-out file | -q, --quiet"
            );
            return ExitCode::from(2);
        }
    };
    match plssvm_cli::commands::run_serve(&parsed) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("svm-serve: {e}");
            ExitCode::FAILURE
        }
    }
}
