//! `svm-serve` — long-lived batched inference server.
//!
//! Serves any model `svm-train` can write (binary, multiclass, SVR) over
//! newline-delimited JSON or LIBSVM-format request lines, coalescing
//! concurrent requests into micro-batches. Reads stdin by default, or
//! listens on TCP with `--listen host:port`.
//!
//! Overload hardening: `--max-connections` caps concurrency,
//! `--queue-watermark` sheds excess requests with `overloaded`,
//! `--deadline-us` answers `deadline_exceeded` to requests that queued
//! too long, and `--client-timeout-ms` disconnects stalled peers.
//! SIGTERM/SIGINT (or a `shutdown` control line) drains gracefully:
//! in-flight requests finish, new lines answer `shutting_down`, and the
//! process exits 0 after a deterministic summary.

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let parsed = match plssvm_cli::args::parse_serve(&args) {
        Ok(parsed) => parsed,
        Err(e) => {
            eprintln!(
                "svm-serve: {e}\n\
                 usage: svm-serve [options] model_file\n\
                 options: --stdin (default) | --listen host:port\n\
                 \x20        --max-batch n (64) | --max-wait-us n (2000)\n\
                 \x20        --max-connections n (256, 0 = unlimited)\n\
                 \x20        --queue-watermark n (1024, 0 = off)\n\
                 \x20        --deadline-us n (0 = off)\n\
                 \x20        --client-timeout-ms n (10000, 0 = off)\n\
                 \x20        --reload-poll-ms n (200, 0 = off)\n\
                 \x20        --metrics-out file | -q, --quiet"
            );
            return ExitCode::from(2);
        }
    };
    match plssvm_cli::commands::run_serve(&parsed) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("svm-serve: {e}");
            ExitCode::FAILURE
        }
    }
}
