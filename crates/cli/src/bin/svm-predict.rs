//! `svm-predict` — LIBSVM-compatible prediction front end.

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match plssvm_cli::args::parse_predict(&args)
        .map_err(|e| e.to_string())
        .and_then(|a| plssvm_cli::commands::run_predict(&a).map_err(|e| e.to_string()))
    {
        Ok(summary) => {
            print!("{summary}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!(
                "svm-predict: {e}\n\
                 usage: svm-predict [options] test_file model_file output_file\n\
                 options: --metrics-out file | -q, --quiet | --verbose"
            );
            ExitCode::FAILURE
        }
    }
}
