//! `svm-predict` — LIBSVM-compatible prediction front end.

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let parsed = match plssvm_cli::args::parse_predict(&args) {
        Ok(parsed) => parsed,
        Err(e) => {
            eprintln!(
                "svm-predict: {e}\n\
                 usage: svm-predict [options] test_file model_file output_file\n\
                 options: --metrics-out file | -q, --quiet | --verbose"
            );
            return ExitCode::from(2);
        }
    };
    match plssvm_cli::commands::run_predict(&parsed) {
        Ok(summary) => {
            print!("{summary}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("svm-predict: {e}");
            ExitCode::FAILURE
        }
    }
}
