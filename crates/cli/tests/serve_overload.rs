//! Real-binary drain tests: `svm-serve` under SIGTERM and the
//! `shutdown` control line must finish in-flight work, print the
//! deterministic drain summary, and exit 0 — the contract an init
//! system or rolling deploy relies on.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::process::{Child, ChildStderr, Command, Stdio};

/// f(x) = x1 - x2 on two features.
const MODEL: &str = "svm_type c_svc\nkernel_type linear\nnr_class 2\ntotal_sv 2\nrho 0\nlabel 1 -1\nnr_sv 1 1\nSV\n1 1:1\n-1 2:1\n";

fn model_file(label: &str) -> PathBuf {
    let dir = std::env::temp_dir()
        .join("plssvm_serve_overload")
        .join(format!("{}-{label}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("model.txt");
    std::fs::write(&path, MODEL).unwrap();
    path
}

/// Spawns `svm-serve --listen 127.0.0.1:0` and returns the child, its
/// buffered stderr, and the address it reported listening on.
fn spawn_server(label: &str, extra: &[&str]) -> (Child, BufReader<ChildStderr>, String) {
    let model = model_file(label);
    let mut child = Command::new(env!("CARGO_BIN_EXE_svm-serve"))
        .args(["--listen", "127.0.0.1:0", "--reload-poll-ms", "0"])
        .args(extra)
        .arg(model.to_str().unwrap())
        .stdin(Stdio::null())
        .stdout(Stdio::null())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn svm-serve");
    let mut stderr = BufReader::new(child.stderr.take().unwrap());
    let addr = loop {
        let mut line = String::new();
        assert!(
            stderr.read_line(&mut line).unwrap() > 0,
            "svm-serve exited before reporting its address"
        );
        if let Some(rest) = line.trim_end().strip_prefix("svm-serve: listening on ") {
            break rest.to_string();
        }
    };
    (child, stderr, addr)
}

fn roundtrip(stream: &mut TcpStream, line: &str) -> String {
    stream.write_all(line.as_bytes()).unwrap();
    stream.write_all(b"\n").unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut reply = String::new();
    reader.read_line(&mut reply).unwrap();
    reply.trim_end().to_string()
}

fn wait_and_collect(mut child: Child, stderr: BufReader<ChildStderr>) -> (Option<i32>, String) {
    let rest: Vec<String> = stderr.lines().map(|l| l.unwrap()).collect();
    let status = child.wait().unwrap();
    (status.code(), rest.join("\n"))
}

#[test]
fn sigterm_drains_finishes_inflight_and_exits_zero() {
    let (child, stderr, addr) = spawn_server("sigterm", &[]);
    let mut client = TcpStream::connect(&addr).unwrap();
    assert_eq!(roundtrip(&mut client, "1 1:3 2:1"), "1");

    let kill = Command::new("kill")
        .args(["-TERM", &child.id().to_string()])
        .status()
        .unwrap();
    assert!(kill.success());

    let (code, stderr) = wait_and_collect(child, stderr);
    assert_eq!(
        code,
        Some(0),
        "SIGTERM drain must exit 0; stderr:\n{stderr}"
    );
    assert!(
        stderr.contains("svm-serve: drained; requests=1 errors=0"),
        "missing drain summary in stderr:\n{stderr}"
    );
}

#[test]
fn shutdown_control_line_drains_the_binary_to_exit_zero() {
    let (child, stderr, addr) = spawn_server("ctl", &["--max-connections", "4"]);
    let mut client = TcpStream::connect(&addr).unwrap();
    assert_eq!(roundtrip(&mut client, "1 1:0 2:5"), "-1");
    assert_eq!(roundtrip(&mut client, "shutdown"), r#"{"ok":"draining"}"#);
    drop(client);

    let (code, stderr) = wait_and_collect(child, stderr);
    assert_eq!(
        code,
        Some(0),
        "control-line drain must exit 0; stderr:\n{stderr}"
    );
    assert!(
        stderr.contains("svm-serve: drained; requests=1 errors=0"),
        "missing drain summary in stderr:\n{stderr}"
    );
}
